// Real joins vs the paper's pre-join: SSB flights 1-4, normalized schema.
//
// The paper sidesteps JOIN by storing the pre-joined relation (Section III);
// this bench runs the SAME 13 SSB query texts both ways and puts the costs
// on one axis:
//
//   join      the normalized star schema (lineorder + 4 dimensions), each
//             table PIM-resident: per-table bulk-bitwise filter scans feed
//             a host-side partitioned hash join (engine/hash_join), which
//             groups and aggregates the joined survivors;
//   prejoin   the pre-joined relation on the same one-xb engine — the
//             paper's configuration.
//
// Parity is enforced, not assumed: for every query the join rows must be
// byte-identical to the pre-joined rows (dictionaries are shared through
// the pre-joiner, so group codes are directly comparable). Any divergence
// exits non-zero — this is the CI smoke for the join subsystem.
//
// Reported per query: modeled ns both ways, the join's scan/join phase
// split, fact-scan selectivity, joined row count, and simulator wall-clock.
// Emits BENCH_join_speed.json in the working directory.
//
// Env: BBPIM_SF (default 0.1), BBPIM_SIM_THREADS (default 8),
// BBPIM_SIM_REPS (best-of repetitions, default 3).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table_printer.hpp"
#include "harness.hpp"

namespace {

using namespace bbpim;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

double best_of_ms(std::size_t reps, const std::function<void()>& run) {
  using Clock = std::chrono::steady_clock;
  double best = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    run();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct QueryResult {
  std::string id;
  std::size_t rows = 0;
  double join_ns = 0;
  double prejoin_ns = 0;
  double join_scan_ns = 0;  ///< PIM filter + readback share of join_ns
  double join_host_ns = 0;  ///< hash build/probe + finalize share
  double join_selectivity = 0;
  double wall_join_ms = 0;
  double wall_prejoin_ms = 0;
};

}  // namespace

int main() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const std::uint32_t threads =
      static_cast<std::uint32_t>(env_u64("BBPIM_SIM_THREADS", 8));
  const std::size_t reps = env_u64("BBPIM_SIM_REPS", 3);

  std::cerr << "[bench] generating SSB (sf=" << cfg.scale_factor << ")...\n";
  ssb::SsbConfig gen;
  gen.scale_factor = cfg.scale_factor;
  gen.zipf_theta = cfg.zipf_theta;
  gen.seed = cfg.seed;
  const ssb::SsbData data = ssb::generate(gen);

  // Normalized catalog: every FROM name the SSB texts use is a registered
  // table, which is exactly what routes a statement through the join
  // planner. The pre-joined catalog registers only the paper's relation, so
  // the same texts fall back to the default target there.
  db::Database normalized;
  normalized.attach_table(data.lineorder);
  normalized.attach_table(data.date);
  normalized.attach_table(data.customer);
  normalized.attach_table(data.supplier);
  normalized.attach_table(data.part);

  db::Database prejoined_db;
  const rel::Table& prejoined =
      prejoined_db.register_table(ssb::prejoin_ssb(data));

  const db::SessionOptions opts = bench::bench_session_options(cfg);
  db::Session join_session(normalized, opts);
  db::Session pre_session(prejoined_db, opts);
  const db::BackendKind backend = db::BackendKind::kOneXb;

  std::cout << "=== Real joins vs pre-join: all 13 SSB queries ===\n"
            << "sf=" << cfg.scale_factor
            << ", lineorder=" << data.lineorder.row_count()
            << " rows, prejoined=" << prejoined.row_count()
            << " rows, sim threads " << threads << ", best of " << reps
            << "\n\n";

  engine::ExecOptions run_opts;
  run_opts.sim_threads = threads;

  // Warm-up: store loads, model fit (pre-joined GROUP BYs), plan and
  // compiled-filter caches for both catalogs.
  for (const ssb::SsbQuery& q : ssb::queries()) {
    join_session.execute(q.sql, backend, run_opts);
    pre_session.execute(q.sql, backend, run_opts);
  }

  TablePrinter t({"query", "rows", "join sel", "join [ms]", "prejoin [ms]",
                  "modeled", "scan share", "wall"});
  std::vector<QueryResult> results;
  bool parity_ok = true;
  double join_total = 0, prejoin_total = 0;
  double wall_join_total = 0, wall_prejoin_total = 0;

  for (const ssb::SsbQuery& q : ssb::queries()) {
    const db::ResultSet join_rs =
        join_session.execute(q.sql, backend, run_opts);
    const db::ResultSet pre_rs = pre_session.execute(q.sql, backend, run_opts);

    // --- parity: the whole point of the normalized path ------------------
    if (join_rs.rows() != pre_rs.rows()) {
      std::cerr << "FAIL: join rows diverge from pre-joined rows for q" << q.id
                << " (" << join_rs.row_count() << " vs " << pre_rs.row_count()
                << ")\n";
      parity_ok = false;
    }
    if (join_rs.table_versions().size() < 2) {
      std::cerr << "FAIL: expected one pinned version per FROM table for q"
                << q.id << "\n";
      parity_ok = false;
    }

    QueryResult r;
    r.id = std::string(q.id);
    r.rows = join_rs.row_count();
    r.join_ns = join_rs.stats().total_ns;
    r.prejoin_ns = pre_rs.stats().total_ns;
    r.join_scan_ns =
        join_rs.stats().phases.filter + join_rs.stats().phases.transfer;
    r.join_host_ns =
        join_rs.stats().phases.host_gb + join_rs.stats().phases.finalize;
    r.join_selectivity = join_rs.stats().selectivity;
    r.wall_join_ms = best_of_ms(
        reps, [&] { join_session.execute(q.sql, backend, run_opts); });
    r.wall_prejoin_ms = best_of_ms(
        reps, [&] { pre_session.execute(q.sql, backend, run_opts); });

    join_total += r.join_ns;
    prejoin_total += r.prejoin_ns;
    wall_join_total += r.wall_join_ms;
    wall_prejoin_total += r.wall_prejoin_ms;

    t.add_row({r.id, std::to_string(r.rows),
               TablePrinter::fmt(r.join_selectivity, 4),
               TablePrinter::fmt(r.join_ns / 1e6, 2),
               TablePrinter::fmt(r.prejoin_ns / 1e6, 2),
               TablePrinter::fmt(r.join_ns / r.prejoin_ns, 2) + "x",
               TablePrinter::fmt(r.join_scan_ns / r.join_ns, 2),
               TablePrinter::fmt(r.wall_join_ms / r.wall_prejoin_ms, 2) +
                   "x"});
    results.push_back(r);
  }

  t.add_row({"total", "", "", TablePrinter::fmt(join_total / 1e6, 2),
             TablePrinter::fmt(prejoin_total / 1e6, 2),
             TablePrinter::fmt(join_total / prejoin_total, 2) + "x", "",
             TablePrinter::fmt(wall_join_total / wall_prejoin_total, 2) +
                 "x"});
  t.print(std::cout);
  std::cout << "\nparity: "
            << (parity_ok ? "normalized join rows identical to pre-joined"
                          : "MISMATCH")
            << "\nmodeled cost of normalization: "
            << TablePrinter::fmt(join_total / prejoin_total, 2)
            << "x the pre-joined plan\n";

  std::ofstream json("BENCH_join_speed.json");
  json << "{\n"
       << "  \"bench\": \"join_speed\",\n"
       << "  \"scale_factor\": " << cfg.scale_factor << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"hardware_threads\": " << hardware_threads() << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"lineorder_rows\": " << data.lineorder.row_count() << ",\n"
       << "  \"parity\": " << (parity_ok ? "true" : "false") << ",\n"
       << "  \"queries\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const QueryResult& r = results[i];
    json << "    {\"id\": \"" << r.id << "\", \"rows\": " << r.rows
         << ", \"join_ns\": " << r.join_ns
         << ", \"prejoin_ns\": " << r.prejoin_ns
         << ", \"join_scan_ns\": " << r.join_scan_ns
         << ", \"join_host_ns\": " << r.join_host_ns
         << ", \"join_selectivity\": " << r.join_selectivity
         << ", \"wall_join_ms\": " << r.wall_join_ms
         << ", \"wall_prejoin_ms\": " << r.wall_prejoin_ms << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"join_total_ns\": " << join_total << ",\n"
       << "  \"prejoin_total_ns\": " << prejoin_total << "\n"
       << "}\n";

  if (!parity_ok) {
    std::cerr << "\nRESULT: FAIL (join/pre-join divergence)\n";
    return 1;
  }
  std::cout << "RESULT: OK\n";
  return 0;
}
