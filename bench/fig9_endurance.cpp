// Fig. 9: required cell endurance, running each query back-to-back for ten
// years (100% duty cycle) with row-level wear leveling.
//
// RRAM endurance is ~1e12 writes [22]; every engine must stay below it.
// The paper's lifetime headline: on the queries where one_xb and PIMDB both
// do few PIM aggregations (Q1.1-1.3, Q3.4), one_xb's cells last ~3.21x
// longer.
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table_printer.hpp"
#include "harness.hpp"

int main() {
  using namespace bbpim;
  bench::BenchWorld world;
  const auto& runs = world.run_all();
  const std::uint32_t cells = world.pim_config().crossbar_cols;

  std::cout << "=== Fig. 9: 10-year write cycles per cell (sf="
            << world.config().scale_factor << ") ===\n";
  TablePrinter t({"Q", "one_xb", "two_xb", "pimdb", "one_xb ok?"});
  bool all_ok = true;
  for (const auto& r : runs) {
    const double one = bench::QueryRun::endurance_cycles(r.one_xb.stats, cells);
    const double two = bench::QueryRun::endurance_cycles(r.two_xb.stats, cells);
    const double pdb = bench::QueryRun::endurance_cycles(r.pimdb.stats, cells);
    const bool ok = one < 1e12;
    all_ok = all_ok && ok;
    t.add_row({r.id, TablePrinter::fmt_sci(one, 2), TablePrinter::fmt_sci(two, 2),
               TablePrinter::fmt_sci(pdb, 2), ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nRRAM endurance budget: 1e12 writes per cell [22]; "
            << (all_ok ? "all one_xb queries fit." : "BUDGET EXCEEDED!")
            << "\n";

  // Lifetime comparison on the queries with few PIM aggregations for both.
  std::vector<double> one_cyc, pdb_cyc;
  for (const auto& r : runs) {
    if (r.id == "1.1" || r.id == "1.2" || r.id == "1.3" || r.id == "3.4") {
      one_cyc.push_back(
          bench::QueryRun::endurance_cycles(r.one_xb.stats, cells));
      pdb_cyc.push_back(
          bench::QueryRun::endurance_cycles(r.pimdb.stats, cells));
    }
  }
  std::cout << "Lifetime improvement (pimdb/one_xb write cycles, geo-mean "
               "over Q1.1-1.3, Q3.4): "
            << TablePrinter::fmt(geomean_ratio(pdb_cyc, one_cyc), 2)
            << "x (paper: 3.21x)\n";
  return 0;
}
