// Ablation: data skew and the hybrid GROUP-BY.
//
// Section IV's technique "relies on the fact that database data is not
// uniformly distributed" [15]: a few large subgroups go to pim-gb, the long
// tail to host-gb. This bench regenerates SSB at several Zipf exponents and
// shows how the planner's split and the hybrid's advantage over the fixed
// policies react — at theta=0 (uniform) peeling subgroups buys little; with
// heavy skew the head groups dominate r(k).
#include <iostream>
#include <memory>

#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "engine/model_fitter.hpp"
#include "engine/pim_store.hpp"
#include "engine/query_exec.hpp"
#include "pim/module.hpp"
#include "sql/parser.hpp"
#include "ssb/dbgen.hpp"
#include "ssb/queries.hpp"

int main() {
  using namespace bbpim;

  const pim::PimConfig pim_cfg;
  const host::HostConfig hcfg;
  engine::FitConfig fit;
  fit.page_counts = {2, 4};
  fit.ratios = {0.02, 0.2, 0.6};
  fit.s_values = {2, 4};
  fit.n_values = {1, 2};
  std::cerr << "[ablation_skew] fitting models once...\n";
  const engine::LatencyModels models =
      engine::fit_latency_models(engine::EngineKind::kOneXb, pim_cfg, hcfg, fit)
          .models;

  std::cout << "=== Zipf exponent sweep (SSB Q3.2, sf=0.05) ===\n";
  TablePrinter t({"theta", "sampled groups", "largest mass", "chosen k",
                  "hybrid [ms]", "k=0 [ms]", "pure-pim [ms]"});
  for (const double theta : {0.0, 0.4, 0.75, 1.1}) {
    ssb::SsbConfig gen;
    gen.scale_factor = 0.05;
    gen.zipf_theta = theta;
    std::cerr << "[ablation_skew] theta=" << theta << "...\n";
    const ssb::SsbData data = ssb::generate(gen);
    const rel::Table prejoined = ssb::prejoin_ssb(data);
    pim::PimModule module(pim_cfg);
    engine::PimStore store(module, prejoined);
    engine::PimQueryEngine eng(engine::EngineKind::kOneXb, store, hcfg,
                               models);
    const sql::BoundQuery q =
        sql::bind(sql::parse(ssb::query("3.2").sql), prejoined.schema());

    const engine::QueryOutput hybrid = eng.execute(q);
    engine::ExecOptions k0;
    k0.force_k = 0;
    const engine::QueryOutput host_only = eng.execute(q, k0);
    engine::ExecOptions kall;
    kall.force_k = hybrid.stats.total_subgroups;
    const engine::QueryOutput pim_all = eng.execute(q, kall);

    const double top_mass = hybrid.stats.candidate_masses.empty()
                                ? 0.0
                                : hybrid.stats.candidate_masses.front();
    t.add_row({TablePrinter::fmt(theta, 2),
               std::to_string(hybrid.stats.sampled_subgroups),
               TablePrinter::fmt(top_mass, 3),
               std::to_string(hybrid.stats.pim_subgroups),
               TablePrinter::fmt(units::ns_to_ms(hybrid.stats.total_ns), 3),
               TablePrinter::fmt(units::ns_to_ms(host_only.stats.total_ns), 3),
               TablePrinter::fmt(units::ns_to_ms(pim_all.stats.total_ns), 3)});
  }
  t.print(std::cout);
  std::cout << "\nHigher theta concentrates the selected records into fewer "
               "subgroups (larger head mass) — exactly the regime where "
               "peeling the head with pim-gb pays. At uniform data the "
               "hybrid degenerates to whichever fixed policy is cheaper.\n";
  return 0;
}
