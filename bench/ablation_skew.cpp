// Ablation: data skew and the hybrid GROUP-BY.
//
// Section IV's technique "relies on the fact that database data is not
// uniformly distributed" [15]: a few large subgroups go to pim-gb, the long
// tail to host-gb. This bench regenerates SSB at several Zipf exponents and
// shows how the planner's split and the hybrid's advantage over the fixed
// policies react — at theta=0 (uniform) peeling subgroups buys little; with
// heavy skew the head groups dominate r(k). One session per generated
// database; a shared ModelCache fits the latency models exactly once.
#include <iostream>
#include <memory>

#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "db/db.hpp"
#include "ssb/dbgen.hpp"
#include "ssb/queries.hpp"

int main() {
  using namespace bbpim;

  db::SessionOptions opts;
  opts.models = std::make_shared<db::ModelCache>();  // fit once, share

  std::cout << "=== Zipf exponent sweep (SSB Q3.2, sf=0.05) ===\n";
  TablePrinter t({"theta", "sampled groups", "largest mass", "chosen k",
                  "hybrid [ms]", "k=0 [ms]", "pure-pim [ms]"});
  for (const double theta : {0.0, 0.4, 0.75, 1.1}) {
    ssb::SsbConfig gen;
    gen.scale_factor = 0.05;
    gen.zipf_theta = theta;
    std::cerr << "[ablation_skew] theta=" << theta << "...\n";
    const ssb::SsbData data = ssb::generate(gen);
    db::Database database;
    database.register_table(ssb::prejoin_ssb(data));
    db::Session session(database, opts);
    const db::PreparedStatement stmt = session.prepare(ssb::query("3.2").sql);

    const db::ResultSet hybrid = stmt.execute();
    engine::ExecOptions k0;
    k0.force_k = 0;
    const db::ResultSet host_only = stmt.execute(k0);
    engine::ExecOptions kall;
    kall.force_k = hybrid.stats().total_subgroups;
    const db::ResultSet pim_all = stmt.execute(kall);

    const auto& st = hybrid.stats();
    const double top_mass =
        st.candidate_masses.empty() ? 0.0 : st.candidate_masses.front();
    t.add_row({TablePrinter::fmt(theta, 2),
               std::to_string(st.sampled_subgroups),
               TablePrinter::fmt(top_mass, 3),
               std::to_string(st.pim_subgroups),
               TablePrinter::fmt(units::ns_to_ms(st.total_ns), 3),
               TablePrinter::fmt(units::ns_to_ms(host_only.stats().total_ns), 3),
               TablePrinter::fmt(units::ns_to_ms(pim_all.stats().total_ns), 3)});
  }
  t.print(std::cout);
  std::cout << "\nHigher theta concentrates the selected records into fewer "
               "subgroups (larger head mass) — exactly the regime where "
               "peeling the head with pim-gb pays. At uniform data the "
               "hybrid degenerates to whichever fixed policy is cheaper.\n";
  return 0;
}
