// Table II: query summary.
//
// Per SSB query: selectivity (measured vs paper), total potential subgroups
// (measured vs paper), subgroups found in the 32K-record sample, and the
// number of subgroups each engine's planner assigned to PIM aggregation.
#include <iostream>

#include "common/table_printer.hpp"
#include "harness.hpp"

int main() {
  using namespace bbpim;
  bench::BenchWorld world;
  const auto& runs = world.run_all();

  std::cout << "=== Table II: query summary (sf="
            << world.config().scale_factor << ") ===\n";
  TablePrinter t({"Q", "Selectivity", "(paper)", "Total subgroups", "(paper)",
                  "In sample", "k one_xb", "k two_xb", "k pimdb"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    const auto& paper = ssb::queries()[i];
    const auto& st = r.one_xb.stats;
    t.add_row({r.id, TablePrinter::fmt_sci(st.selectivity, 1),
               TablePrinter::fmt_sci(paper.paper_selectivity, 1),
               std::to_string(st.total_subgroups),
               std::to_string(paper.paper_total_subgroups),
               std::to_string(st.sampled_subgroups),
               std::to_string(st.pim_subgroups),
               std::to_string(r.two_xb.stats.pim_subgroups),
               std::to_string(r.pimdb.stats.pim_subgroups)});
  }
  t.print(std::cout);
  std::cout << "\nPaper patterns to check: Q1.x aggregate once in PIM on all "
               "engines; one_xb assigns many/all subgroups to PIM on "
               "low-selectivity queries (Q2.2, Q2.3, Q3.3, Q3.4); two_xb "
               "prefers k=0 except Q1.x; pimdb mostly k=0.\n";

  // The pim-gb/host-gb tradeoff is driven by M (Equation 3 scales both
  // sides with the page count). Re-evaluate each query's decision with the
  // fitted models at the paper's SF = 10 size (M = 1831 pages) to check the
  // k-patterns of Table II at the scale the paper ran.
  const double paper_pages = 1831;
  std::cout << "\n=== Planner decisions extrapolated to paper scale (M="
            << paper_pages << ") ===\n";
  TablePrinter x({"Q", "k one_xb", "(paper)", "k two_xb", "(paper)",
                  "k pimdb", "(paper)"});
  const std::size_t paper_one[] = {1, 1, 1, 4, 56, 7, 150, 27, 24, 4, 35, 50, 3};
  const std::size_t paper_two[] = {1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  const std::size_t paper_pdb[] = {1, 1, 1, 0, 0, 7, 0, 0, 0, 4, 35, 0, 0};
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::vector<std::string> row{r.id};
    const engine::QueryOutput* outs[] = {&r.one_xb, &r.two_xb, &r.pimdb};
    const std::size_t* paper_k[] = {paper_one, paper_two, paper_pdb};
    for (int e = 0; e < 3; ++e) {
      const engine::EngineKind kind = engine::kAllEngineKinds[e];
      const auto& st = outs[e]->stats;
      if (st.total_subgroups <= 1) {  // Q1.x: single PIM aggregation
        row.push_back("1");
        row.push_back(std::to_string(paper_k[e][i]));
        continue;
      }
      engine::GroupByPlanInput in;
      in.pages = paper_pages;
      in.n = st.n_chunks;
      in.s = st.s_chunks;
      in.selectivity_est = st.selectivity_estimate;
      in.candidates_complete = st.candidates_complete;
      for (const double m : st.candidate_masses) {
        engine::GroupCandidate c;
        c.est_mass = m;
        in.candidates.push_back(c);
      }
      const engine::GroupByPlan plan =
          engine::choose_k(world.models(kind), in);
      row.push_back(std::to_string(plan.k));
      row.push_back(std::to_string(paper_k[e][i]));
    }
    x.add_row(std::move(row));
  }
  x.print(std::cout);
  std::cout << "\nShape target: one_xb flips to large/full k on the "
               "low-selectivity GROUP-BY queries at paper scale; two_xb and "
               "pimdb mostly stay at k=0 (their per-subgroup PIM cost is "
               "higher).\n";
  return 0;
}
