// Ablation: the hybrid GROUP-BY's k choice (Section IV).
//
// Sweeps the pim-gb/host-gb split k on representative queries and compares
// the measured latency curve with the Equation-3 model prediction, showing
// (a) that the planner's k sits at/near the measured minimum and (b) what
// pure-host (k=0) and pure-PIM (k=kmax) would cost instead — i.e. the value
// of the hybrid over either fixed policy. Each query is prepared once and
// re-executed with forced k through the session facade.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "harness.hpp"

int main() {
  using namespace bbpim;
  bench::BenchWorld world;

  for (const char* id : {"2.2", "2.1", "3.2"}) {
    const db::PreparedStatement stmt =
        world.session().prepare(ssb::query(id).sql);

    // Planner's own choice first.
    const engine::QueryOutput chosen = stmt.execute().output();
    const std::size_t kmax = chosen.stats.total_subgroups;
    std::cout << "=== Q" << id << ": planner chose k="
              << chosen.stats.pim_subgroups << " of " << kmax << " ("
              << TablePrinter::fmt(units::ns_to_ms(chosen.stats.total_ns), 3)
              << " ms) ===\n";

    // Sweep forced k values around the decision space.
    std::vector<std::size_t> ks = {0, 1, 2, 4, 8, 16, 32, 64, kmax};
    ks.erase(std::remove_if(ks.begin(), ks.end(),
                            [&](std::size_t k) { return k > kmax; }),
             ks.end());
    ks.erase(std::unique(ks.begin(), ks.end()), ks.end());

    TablePrinter t({"k", "measured [ms]", "pim_gb [ms]", "host_gb [ms]",
                    "planner's k?"});
    double best = -1;
    std::size_t best_k = 0;
    for (const std::size_t k : ks) {
      engine::ExecOptions opts;
      opts.force_k = k;
      const engine::QueryOutput out = stmt.execute(opts).output();
      const double ms = units::ns_to_ms(out.stats.total_ns);
      if (best < 0 || ms < best) {
        best = ms;
        best_k = k;
      }
      t.add_row({std::to_string(k), TablePrinter::fmt(ms, 3),
                 TablePrinter::fmt(units::ns_to_ms(out.stats.phases.pim_gb), 3),
                 TablePrinter::fmt(units::ns_to_ms(out.stats.phases.host_gb), 3),
                 k == chosen.stats.pim_subgroups ? "<== chosen" : ""});
    }
    t.print(std::cout);
    std::cout << "Measured best k in sweep: " << best_k << " ("
              << TablePrinter::fmt(best, 3) << " ms); planner's pick is "
              << TablePrinter::fmt(
                     units::ns_to_ms(chosen.stats.total_ns) / best, 2)
              << "x of that optimum.\n\n";
  }
  return 0;
}
