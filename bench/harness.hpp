// Shared world for the benchmark binaries, built on the bbpim::db facade.
//
// Builds the SSB database (scale factor from BBPIM_SF, default 0.1),
// registers the pre-joined relation with a db::Database, and opens one
// db::Session configured with the bench fitting grid and an on-disk model
// cache (so repeated bench runs skip the fitting campaign). The session
// owns the three PIM engines; the MonetDB-like baseline is kept alongside
// for the mnt-reg star-schema plans the facade does not model. Each bench
// binary regenerates one paper table/figure from the same runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baseline/monet.hpp"
#include "db/db.hpp"
#include "engine/model_fitter.hpp"
#include "engine/query_exec.hpp"
#include "ssb/dbgen.hpp"
#include "ssb/queries.hpp"

namespace bbpim::bench {

/// Ten years of back-to-back execution, the Fig. 9 horizon.
inline constexpr double kTenYearsNs = 10 * 365.25 * 24 * 3600 * 1e9;

struct BenchConfig {
  double scale_factor = 0.1;   ///< BBPIM_SF
  double zipf_theta = 0.75;    ///< BBPIM_THETA
  std::uint64_t seed = 42;     ///< BBPIM_SEED
  bool verbose = true;

  static BenchConfig from_env();
};

/// One query, every system (Fig. 6's five bars).
struct QueryRun {
  std::string id;
  engine::QueryOutput one_xb;
  engine::QueryOutput two_xb;
  engine::QueryOutput pimdb;
  baseline::BaselineRun mnt_join;
  baseline::BaselineRun mnt_reg;

  /// Fig. 9 metric: per-cell write cycles over ten years of back-to-back
  /// execution with row-level wear leveling across `row_cells` cells.
  static double endurance_cycles(const engine::QueryStats& s,
                                 std::uint32_t row_cells);
};

class BenchWorld {
 public:
  explicit BenchWorld(BenchConfig cfg = BenchConfig::from_env());

  const BenchConfig& config() const { return cfg_; }
  const pim::PimConfig& pim_config() const { return session_.options().pim; }
  const host::HostConfig& host_config() const {
    return session_.options().host;
  }
  const ssb::SsbData& data() const { return data_; }
  const rel::Table& prejoined() const { return db_.default_target(); }

  db::Database& database() { return db_; }
  db::Session& session() { return session_; }

  engine::PimQueryEngine& engine_of(engine::EngineKind kind) {
    return session_.pim_engine(kind);
  }
  baseline::MonetLikeEngine& monet() { return *monet_; }

  /// Fitted models for an engine kind (disk-cached fitting campaign).
  const engine::LatencyModels& models(engine::EngineKind kind) {
    return session_.models(kind);
  }

  /// Raw fit observations (Fig. 4); runs the campaign without the cache.
  engine::ModelFitResult fit_result(engine::EngineKind kind);

  /// Runs all 13 queries through every system (results cached in memory).
  const std::vector<QueryRun>& run_all();

  /// Pages M of the pre-joined relation (per part).
  std::size_t pages() {
    return engine_of(engine::EngineKind::kOneXb).store().pages_per_part();
  }

 private:
  BenchConfig cfg_;
  ssb::SsbData data_;
  db::Database db_;
  db::Session session_;
  std::unique_ptr<baseline::MonetLikeEngine> monet_;
  std::vector<QueryRun> runs_;
};

/// The fit grid used by all benches (kept moderate so fitting stays fast).
engine::FitConfig bench_fit_config();

/// The session options every bench shares: bench fitting grid, disk model
/// cache in the working directory, verbosity from the config.
db::SessionOptions bench_session_options(const BenchConfig& cfg);

}  // namespace bbpim::bench
