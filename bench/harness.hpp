// Shared world for the benchmark binaries.
//
// Builds the SSB database (scale factor from BBPIM_SF, default 0.1), the
// pre-joined relation, the three PIM engines with fitted latency models
// (cached on disk under the working directory so repeated bench runs skip
// the fitting campaign), and the MonetDB-like baseline. Each bench binary
// regenerates one paper table/figure from the same runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baseline/monet.hpp"
#include "engine/model_fitter.hpp"
#include "engine/pim_store.hpp"
#include "engine/query_exec.hpp"
#include "pim/module.hpp"
#include "ssb/dbgen.hpp"
#include "ssb/queries.hpp"

namespace bbpim::bench {

/// Ten years of back-to-back execution, the Fig. 9 horizon.
inline constexpr double kTenYearsNs = 10 * 365.25 * 24 * 3600 * 1e9;

struct BenchConfig {
  double scale_factor = 0.1;   ///< BBPIM_SF
  double zipf_theta = 0.75;    ///< BBPIM_THETA
  std::uint64_t seed = 42;     ///< BBPIM_SEED
  bool verbose = true;

  static BenchConfig from_env();
};

/// One query, every system (Fig. 6's five bars).
struct QueryRun {
  std::string id;
  engine::QueryOutput one_xb;
  engine::QueryOutput two_xb;
  engine::QueryOutput pimdb;
  baseline::BaselineRun mnt_join;
  baseline::BaselineRun mnt_reg;

  /// Fig. 9 metric: per-cell write cycles over ten years of back-to-back
  /// execution with row-level wear leveling across `row_cells` cells.
  static double endurance_cycles(const engine::QueryStats& s,
                                 std::uint32_t row_cells);
};

class BenchWorld {
 public:
  explicit BenchWorld(BenchConfig cfg = BenchConfig::from_env());

  const BenchConfig& config() const { return cfg_; }
  const pim::PimConfig& pim_config() const { return pim_cfg_; }
  const host::HostConfig& host_config() const { return host_cfg_; }
  const ssb::SsbData& data() const { return data_; }
  const rel::Table& prejoined() const { return prejoined_; }

  engine::PimQueryEngine& engine_of(engine::EngineKind kind);
  baseline::MonetLikeEngine& monet() { return *monet_; }

  /// Fitted models for an engine kind (disk-cached fitting campaign).
  const engine::LatencyModels& models(engine::EngineKind kind);

  /// Raw fit observations (Fig. 4); runs the campaign without the cache.
  engine::ModelFitResult fit_result(engine::EngineKind kind);

  /// Runs all 13 queries through every system (results cached in memory).
  const std::vector<QueryRun>& run_all();

  /// Pages M of the pre-joined relation (per part).
  std::size_t pages() const { return store_one_->pages_per_part(); }

 private:
  engine::LatencyModels fit_or_load(engine::EngineKind kind);

  BenchConfig cfg_;
  pim::PimConfig pim_cfg_;
  host::HostConfig host_cfg_;
  ssb::SsbData data_;
  rel::Table prejoined_;

  std::unique_ptr<pim::PimModule> module_one_, module_two_, module_pimdb_;
  std::unique_ptr<engine::PimStore> store_one_, store_two_, store_pimdb_;
  std::unique_ptr<engine::PimQueryEngine> one_xb_, two_xb_, pimdb_;
  std::unique_ptr<baseline::MonetLikeEngine> monet_;
  std::vector<QueryRun> runs_;
};

/// The fit grid used by all benches (kept moderate so fitting stays fast).
engine::FitConfig bench_fit_config();

}  // namespace bbpim::bench
