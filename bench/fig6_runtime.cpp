// Fig. 6: execution latency for the SSB queries, all five systems.
//
// one_xb / two_xb / pimdb report simulated time from the PIM cost model;
// mnt_join / mnt_reg report the deterministic server model (their functional
// wall time on this machine is shown for reference). Geo-mean speedups
// reproduce the paper's headline comparisons.
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "harness.hpp"

int main() {
  using namespace bbpim;
  bench::BenchWorld world;
  const auto& runs = world.run_all();

  std::cout << "=== Fig. 6: SSB query run time [ms] (sf="
            << world.config().scale_factor << ") ===\n";
  TablePrinter t({"Q", "one_xb", "two_xb", "pimdb", "mnt_join", "mnt_reg",
                  "mnt_join wall"});
  std::vector<double> one, two, pdb, mj, mr;
  for (const auto& r : runs) {
    one.push_back(r.one_xb.stats.total_ns);
    two.push_back(r.two_xb.stats.total_ns);
    pdb.push_back(r.pimdb.stats.total_ns);
    mj.push_back(r.mnt_join.model_ns);
    mr.push_back(r.mnt_reg.model_ns);
    t.add_row({r.id, TablePrinter::fmt(units::ns_to_ms(one.back()), 3),
               TablePrinter::fmt(units::ns_to_ms(two.back()), 3),
               TablePrinter::fmt(units::ns_to_ms(pdb.back()), 3),
               TablePrinter::fmt(units::ns_to_ms(mj.back()), 3),
               TablePrinter::fmt(units::ns_to_ms(mr.back()), 3),
               TablePrinter::fmt(units::ns_to_ms(r.mnt_join.wall_ns), 3)});
  }
  t.print(std::cout);

  std::cout << "\n=== Geo-mean comparisons (paper values in parentheses) ===\n";
  TablePrinter s({"Comparison", "This build", "Paper"});
  s.add_row({"one_xb speedup vs mnt_reg",
             TablePrinter::fmt(geomean_ratio(mr, one), 2) + "x", "7.46x"});
  s.add_row({"one_xb speedup vs mnt_join",
             TablePrinter::fmt(geomean_ratio(mj, one), 2) + "x", "4.65x"});
  s.add_row({"pimdb slowdown vs one_xb",
             TablePrinter::fmt(geomean_ratio(pdb, one), 2) + "x", "1.83x"});
  s.add_row({"two_xb slowdown vs one_xb",
             TablePrinter::fmt(geomean_ratio(two, one), 2) + "x", "3.39x"});
  s.add_row({"two_xb speedup vs mnt_join",
             TablePrinter::fmt(geomean_ratio(mj, two), 2) + "x", "1.37x"});
  s.print(std::cout);

  // The paper's crossover: on the highest-selectivity GROUP-BY queries the
  // 32x read amplification erases the PIM advantage.
  std::cout << "\nHigh-selectivity crossovers (Q2.1/Q3.1/Q4.1 in the paper):\n";
  for (const auto& r : runs) {
    if (r.id == "2.1" || r.id == "3.1" || r.id == "4.1") {
      const bool pim_loses_or_ties =
          r.two_xb.stats.total_ns > 0.8 * r.mnt_join.model_ns;
      std::cout << "  Q" << r.id << ": two_xb/mnt_join = "
                << TablePrinter::fmt(
                       r.two_xb.stats.total_ns / r.mnt_join.model_ns, 2)
                << (pim_loses_or_ties ? " (PIM advantage gone, as in paper)"
                                      : "")
                << "\n";
    }
  }
  return 0;
}
