// Headline numbers: every geo-mean comparison the paper's abstract and
// conclusion quote, computed from this build's runs, side by side with the
// published values.
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table_printer.hpp"
#include "harness.hpp"

int main() {
  using namespace bbpim;
  bench::BenchWorld world;
  const auto& runs = world.run_all();
  const std::uint32_t cells = world.pim_config().crossbar_cols;

  std::vector<double> one, two, pdb, mj, mr;
  std::vector<double> e_one_agg, e_pdb_agg;   // energy where pimdb PIM-aggs
  std::vector<double> w_one, w_pdb;           // endurance on Q1.x + Q3.4
  for (const auto& r : runs) {
    one.push_back(r.one_xb.stats.total_ns);
    two.push_back(r.two_xb.stats.total_ns);
    pdb.push_back(r.pimdb.stats.total_ns);
    mj.push_back(r.mnt_join.model_ns);
    mr.push_back(r.mnt_reg.model_ns);
    if (r.pimdb.stats.pim_subgroups > 0) {
      e_one_agg.push_back(r.one_xb.stats.energy_j);
      e_pdb_agg.push_back(r.pimdb.stats.energy_j);
    }
    if (r.id == "1.1" || r.id == "1.2" || r.id == "1.3" || r.id == "3.4") {
      w_one.push_back(bench::QueryRun::endurance_cycles(r.one_xb.stats, cells));
      w_pdb.push_back(bench::QueryRun::endurance_cycles(r.pimdb.stats, cells));
    }
  }

  std::cout << "=== Headline geo-means (sf=" << world.config().scale_factor
            << ") ===\n";
  TablePrinter t({"Metric", "This build", "Paper", "Direction"});
  t.add_row({"Runtime: one_xb vs PIMDB",
             TablePrinter::fmt(geomean_ratio(pdb, one), 2) + "x", "1.83x",
             "one_xb faster"});
  t.add_row({"Energy: one_xb vs PIMDB (PIM-agg queries)",
             e_pdb_agg.empty()
                 ? "n/a"
                 : TablePrinter::fmt(geomean_ratio(e_pdb_agg, e_one_agg), 2) +
                       "x",
             "4.31x", "one_xb cheaper"});
  t.add_row({"Lifetime: one_xb vs PIMDB (Q1.x, Q3.4)",
             TablePrinter::fmt(geomean_ratio(w_pdb, w_one), 2) + "x", "3.21x",
             "one_xb lasts longer"});
  t.add_row({"Runtime: one_xb vs MonetDB pre-joined",
             TablePrinter::fmt(geomean_ratio(mj, one), 2) + "x", "4.65x",
             "one_xb faster"});
  t.add_row({"Runtime: one_xb vs MonetDB standard",
             TablePrinter::fmt(geomean_ratio(mr, one), 2) + "x", "7.46x",
             "one_xb faster"});
  t.add_row({"Runtime: two_xb vs one_xb",
             TablePrinter::fmt(geomean_ratio(two, one), 2) + "x", "3.39x",
             "one_xb faster"});
  t.add_row({"Runtime: two_xb vs MonetDB pre-joined",
             TablePrinter::fmt(geomean_ratio(mj, two), 2) + "x", "1.37x",
             "two_xb faster"});
  t.print(std::cout);
  std::cout << "\nAbsolute factors shift with the scale factor and the "
               "modeled-server constants; the directions and relative "
               "orderings are the reproduction target (see EXPERIMENTS.md).\n";
  return 0;
}
