// Overload-safe serving: open-loop offered load swept across saturation.
//
// A calibration pass measures the pool's closed-loop service rate; the
// bench then offers Poisson-free deterministic arrivals at 0.5x, 1x, and 2x
// that rate against a bounded queue with the shed-oldest policy. Under
// overload an unbounded service grows its queue (and its p99) without
// limit; bounded admission converts the excess into typed sheds, so the
// latency of everything actually served stays bounded by
// queue_depth x service_time. Per-query latency is the service's own
// accounting (queue_wait_us + service_us), shed and timeout rates come from
// the typed errors, and every completed result must be row-identical to a
// serial single-session reference or the bench exits non-zero.
//
// Emits BENCH_overload_qps.json in the working directory.
//
// Env: BBPIM_SF (scale factor, default 0.1), BBPIM_OVERLOAD_QUERIES
// (statements issued per load point, default 60), BBPIM_OVERLOAD_WORKERS
// (service workers, default 1), BBPIM_OVERLOAD_DEPTH (max_queue_depth,
// default 8), BBPIM_OVERLOAD_DEADLINE_MS (per-query deadline, default 0 =
// none).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/table_printer.hpp"
#include "engine/cancel.hpp"
#include "harness.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

/// FNV digest of one result's rows (order within a result is deterministic).
std::uint64_t row_digest(const bbpim::db::ResultSet& rs) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& row : rs.rows()) {
    for (const std::uint64_t g : row.group) h = (h ^ g) * 1099511628211ULL;
    h = (h ^ static_cast<std::uint64_t>(row.agg)) * 1099511628211ULL;
  }
  h = (h ^ rs.row_count()) * 1099511628211ULL;
  return h;
}

/// Deterministic hot-skewed arrival stream over the SSB mix (LCG, weights
/// proportional to 1/(rank+1)) — the same shape batch_qps serves.
std::vector<std::size_t> arrival_stream(std::size_t count,
                                        std::size_t n_queries) {
  std::vector<double> cdf(n_queries);
  double mass = 0;
  for (std::size_t i = 0; i < n_queries; ++i) {
    mass += 1.0 / static_cast<double>(i + 1);
    cdf[i] = mass;
  }
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  std::vector<std::size_t> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>(state >> 11) / 9007199254740992.0 * mass;
    std::size_t idx = 0;
    while (idx + 1 < n_queries && cdf[idx] < u) ++idx;
    stream.push_back(idx);
  }
  return stream;
}

struct RunResult {
  double offered_x = 0;      ///< offered load as a multiple of saturation
  double offered_qps = 0;
  double achieved_qps = 0;   ///< completed / wall
  double p50_ms = 0;         ///< queue wait + service, completed only
  double p95_ms = 0;
  double p99_ms = 0;
  double p99_wait_ms = 0;    ///< queue-wait share of the latency tail
  std::size_t issued = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;      ///< settled with OverloadError
  std::size_t timed_out = 0; ///< settled with QueryTimeout
  std::size_t peak_queue_depth = 0;
  std::size_t parity_failures = 0;
};

double percentile(std::vector<double>& v, std::size_t num, std::size_t den) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, v.size() * num / den)];
}

}  // namespace

int main() {
  using namespace bbpim;
  using Clock = std::chrono::steady_clock;

  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const std::size_t issued = env_u64("BBPIM_OVERLOAD_QUERIES", 60);
  const std::size_t workers = env_u64("BBPIM_OVERLOAD_WORKERS", 1);
  const std::size_t depth = env_u64("BBPIM_OVERLOAD_DEPTH", 8);
  const std::uint64_t deadline_ms = env_u64("BBPIM_OVERLOAD_DEADLINE_MS", 0);

  std::cerr << "[bench] generating SSB (sf=" << cfg.scale_factor << ")...\n";
  ssb::SsbConfig gen;
  gen.scale_factor = cfg.scale_factor;
  gen.zipf_theta = cfg.zipf_theta;
  gen.seed = cfg.seed;
  const ssb::SsbData data = ssb::generate(gen);

  std::vector<std::string> sqls;
  for (const auto& q : ssb::queries()) sqls.emplace_back(q.sql);

  db::SessionOptions session_opts = bench::bench_session_options(cfg);
  session_opts.verbose = false;
  auto models = std::make_shared<db::ModelCache>(session_opts.model_cache_dir,
                                                 session_opts.model_cache_tag);
  session_opts.models = models;

  // Serial single-session reference: the row oracle every completed result
  // must match.
  std::vector<std::uint64_t> reference(sqls.size());
  {
    db::Database database;
    database.register_table(ssb::prejoin_ssb(data));
    db::Session session(database, session_opts);
    for (std::size_t i = 0; i < sqls.size(); ++i) {
      reference[i] = row_digest(session.execute(sqls[i]));
    }
  }

  // --- calibration: closed-loop service rate of the pool -------------------
  double saturation_qps = 0;
  {
    db::Database database;
    database.register_table(ssb::prejoin_ssb(data));
    db::QueryServiceOptions opts;
    opts.workers = workers;
    opts.session = session_opts;
    db::QueryService service(database, opts);
    service.warm_up(db::BackendKind::kOneXb);
    for (const std::string& sql : sqls) service.submit(sql).get();  // caches
    const std::size_t probes = 2 * sqls.size();
    const std::vector<std::size_t> stream = arrival_stream(probes, sqls.size());
    const auto t0 = Clock::now();
    for (const std::size_t qi : stream) service.submit(sqls[qi]).get();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    saturation_qps = static_cast<double>(workers) *
                     static_cast<double>(probes) / secs;
  }

  std::cout << "=== Overload-safe serving: bounded admission across "
               "saturation ===\nworkers: "
            << workers << ", max queue depth: " << depth
            << " (shed-oldest), deadline: "
            << (deadline_ms > 0 ? std::to_string(deadline_ms) + " ms" : "none")
            << ", saturation ~" << TablePrinter::fmt(saturation_qps, 1)
            << " qps, sf=" << cfg.scale_factor << "\n\n";

  const auto run_leg = [&](double offered_x) {
    RunResult run;
    run.offered_x = offered_x;
    run.offered_qps = saturation_qps * offered_x;
    run.issued = issued;

    db::Database database;
    database.register_table(ssb::prejoin_ssb(data));
    db::QueryServiceOptions opts;
    opts.workers = workers;
    opts.session = session_opts;
    opts.admission.max_queue_depth = depth;
    opts.admission.policy = db::OverloadPolicy::kShedOldest;
    db::QueryService service(database, opts);
    service.warm_up(db::BackendKind::kOneXb);
    for (const std::string& sql : sqls) service.submit(sql).get();

    engine::ExecOptions eopts;
    eopts.deadline_us = deadline_ms * 1000;

    // Open loop: arrival i is released at i / offered_qps, whether or not
    // earlier statements finished — exactly the traffic a closed-loop
    // client can never generate and the reason admission must be bounded.
    const std::vector<std::size_t> stream = arrival_stream(issued, sqls.size());
    std::vector<std::future<db::ResultSet>> futures;
    std::vector<std::size_t> which;
    futures.reserve(issued);
    which.reserve(issued);
    const auto start = Clock::now();
    for (std::size_t i = 0; i < issued; ++i) {
      std::this_thread::sleep_until(
          start + std::chrono::duration<double>(
                      static_cast<double>(i) / run.offered_qps));
      futures.push_back(service.submit(sqls[stream[i]], eopts));
      which.push_back(stream[i]);
    }
    std::vector<double> latencies;
    std::vector<double> waits;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        const db::ResultSet rs = futures[i].get();
        ++run.completed;
        latencies.push_back(
            static_cast<double>(rs.queue_wait_us() + rs.service_us()) / 1e3);
        waits.push_back(static_cast<double>(rs.queue_wait_us()) / 1e3);
        if (row_digest(rs) != reference[which[i]]) ++run.parity_failures;
      } catch (const db::OverloadError&) {
        ++run.shed;
      } catch (const engine::QueryTimeout&) {
        ++run.timed_out;
      }
    }
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    service.shutdown();
    run.achieved_qps = static_cast<double>(run.completed) / wall_s;
    run.p50_ms = percentile(latencies, 1, 2);
    run.p95_ms = percentile(latencies, 95, 100);
    run.p99_ms = percentile(latencies, 99, 100);
    run.p99_wait_ms = percentile(waits, 99, 100);
    run.peak_queue_depth = service.counters().peak_queue_depth;
    return run;
  };

  const std::vector<double> loads = {0.5, 1.0, 2.0};
  std::vector<RunResult> runs;
  for (const double x : loads) runs.push_back(run_leg(x));

  TablePrinter t({"offered", "offered qps", "served qps", "completed", "shed",
                  "timed out", "p50 [ms]", "p95 [ms]", "p99 [ms]",
                  "p99 wait [ms]"});
  for (const RunResult& r : runs) {
    t.add_row({TablePrinter::fmt(r.offered_x, 1) + "x",
               TablePrinter::fmt(r.offered_qps, 1),
               TablePrinter::fmt(r.achieved_qps, 1),
               std::to_string(r.completed), std::to_string(r.shed),
               std::to_string(r.timed_out), TablePrinter::fmt(r.p50_ms, 1),
               TablePrinter::fmt(r.p95_ms, 1), TablePrinter::fmt(r.p99_ms, 1),
               TablePrinter::fmt(r.p99_wait_ms, 1)});
  }
  t.print(std::cout);
  std::cout << "\nAt 2x saturation the bounded queue keeps p99 near "
               "depth x service time; the excess arrives as typed sheds, "
               "never as unbounded queueing.\n";

  std::size_t parity_failures = 0;
  bool consistent = true;
  for (const RunResult& r : runs) {
    parity_failures += r.parity_failures;
    consistent &= r.completed + r.shed + r.timed_out == r.issued;
  }
  if (parity_failures > 0 || !consistent) {
    std::cerr << "FAIL: " << parity_failures
              << " completed result(s) diverged from the serial reference"
              << (consistent ? "" : "; issued != completed + shed + timed_out")
              << "\n";
    return 1;
  }

  std::ofstream json("BENCH_overload_qps.json");
  json << "{\n"
       << "  \"bench\": \"overload_qps\",\n"
       << "  \"scale_factor\": " << cfg.scale_factor << ",\n"
       << "  \"service_workers\": " << workers << ",\n"
       << "  \"max_queue_depth\": " << depth << ",\n"
       << "  \"policy\": \"shed-oldest\",\n"
       << "  \"deadline_ms\": " << deadline_ms << ",\n"
       << "  \"saturation_qps\": " << saturation_qps << ",\n"
       << "  \"hardware_threads\": " << hardware_threads() << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    json << "    {\"offered_x\": " << r.offered_x
         << ", \"offered_qps\": " << r.offered_qps
         << ", \"achieved_qps\": " << r.achieved_qps
         << ", \"issued\": " << r.issued << ", \"completed\": " << r.completed
         << ", \"shed\": " << r.shed << ", \"timed_out\": " << r.timed_out
         << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
         << ", \"p99_ms\": " << r.p99_ms
         << ", \"p99_wait_ms\": " << r.p99_wait_ms
         << ", \"peak_queue_depth\": " << r.peak_queue_depth << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"row_parity\": \"identical\"\n"
       << "}\n";

  std::cout << "wrote BENCH_overload_qps.json\n"
            << "Every completed result matched the serial reference rows.\n";
  return 0;
}
