// Concurrent query-serving throughput: queries/sec and wall-clock scaling
// of db::QueryService at 1/2/4/8 workers over a mixed SSB query set.
//
// Unlike the paper-figure benches (simulated latency of ONE query at a
// time), this measures the host-side serving capacity of the facade: many
// independent queries drained by a worker pool, each worker pinning the
// table's shared immutable snapshot store through a private Session over
// the shared catalog and the shared fit-once ModelCache. Setup costs (SSB
// generation, the one shared snapshot-store load, the model fit) happen in
// warm_up, outside the timed region; the timed region is pure query
// execution, which is embarrassingly parallel across workers.
//
// Result correctness is cross-checked: every worker-count run must produce
// the same result checksum as the single-threaded reference pass.
//
// Emits BENCH_throughput_qps.json in the working directory.
//
// Env: BBPIM_SF (scale factor, default 0.1), BBPIM_QPS_ROUNDS (repetitions
// of the 13-query set per run, default 4), BBPIM_QPS_MAX_WORKERS (default 8).
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table_printer.hpp"
#include "harness.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

/// Order-independent digest of a batch's rows (the pool does not guarantee
/// completion order across runs, only per-future identity).
std::uint64_t checksum(const std::vector<bbpim::db::ResultSet>& results) {
  std::uint64_t sum = 0;
  for (const bbpim::db::ResultSet& rs : results) {
    for (const auto& row : rs.rows()) {
      std::uint64_t h = 1469598103934665603ULL;
      for (const std::uint64_t g : row.group) {
        h = (h ^ g) * 1099511628211ULL;
      }
      h = (h ^ static_cast<std::uint64_t>(row.agg)) * 1099511628211ULL;
      sum += h;
    }
    sum += rs.row_count() * 31;
  }
  return sum;
}

}  // namespace

int main() {
  using namespace bbpim;
  using Clock = std::chrono::steady_clock;

  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const std::size_t rounds = env_u64("BBPIM_QPS_ROUNDS", 4);
  const std::size_t max_workers = env_u64("BBPIM_QPS_MAX_WORKERS", 8);

  std::cerr << "[bench] generating SSB (sf=" << cfg.scale_factor << ")...\n";
  ssb::SsbConfig gen;
  gen.scale_factor = cfg.scale_factor;
  gen.zipf_theta = cfg.zipf_theta;
  gen.seed = cfg.seed;
  const ssb::SsbData data = ssb::generate(gen);

  // One fit-once cache for every pool size: the fitting campaign runs once
  // for the whole bench (disk-cached across bench invocations, too).
  db::SessionOptions session_opts = bench::bench_session_options(cfg);
  session_opts.verbose = false;
  auto models = std::make_shared<db::ModelCache>(session_opts.model_cache_dir,
                                                 session_opts.model_cache_tag);
  session_opts.models = models;

  // The mixed workload: the 13 SSB queries, interleaved, `rounds` times.
  std::vector<std::string> workload;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const auto& q : ssb::queries()) workload.emplace_back(q.sql);
  }

  std::cout << "=== Throughput: QueryService over the mixed SSB set ===\n"
            << "queries/run: " << workload.size() << " (13 queries x "
            << rounds << " rounds), sf=" << cfg.scale_factor
            << ", hardware threads: " << hardware_threads() << "\n\n";

  struct RunResult {
    std::size_t workers;
    double wall_ms;
    double qps;
    double speedup;
  };
  std::vector<RunResult> runs;

  TablePrinter t({"workers", "wall [ms]", "qps", "speedup", "efficiency"});
  double base_qps = 0;
  std::uint64_t reference_checksum = 0;
  for (std::size_t workers = 1; workers <= max_workers; workers *= 2) {
    // Fresh catalog per pool size: otherwise the first run warms the shared
    // snapshot-store filter cache for every later one, and pool sizes stop
    // being comparable (the model fit IS shared — it is data-independent).
    db::Database database;
    database.register_table(ssb::prejoin_ssb(data));
    db::QueryServiceOptions opts;
    opts.workers = workers;
    opts.session = session_opts;
    db::QueryService service(database, opts);
    // Outside the clock: the one shared snapshot-store load + model fit.
    service.warm_up(db::BackendKind::kOneXb);

    const auto start = Clock::now();
    const std::vector<db::ResultSet> results =
        service.execute_batch(workload);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    service.shutdown();

    const std::uint64_t digest = checksum(results);
    if (workers == 1) {
      reference_checksum = digest;
    } else if (digest != reference_checksum) {
      std::cerr << "FAIL: checksum mismatch at " << workers
                << " workers — concurrent results differ from the "
                   "single-threaded reference\n";
      return 1;
    }

    const double qps = workload.size() / (wall_ms / 1000.0);
    if (workers == 1) base_qps = qps;
    const double speedup = qps / base_qps;
    runs.push_back({workers, wall_ms, qps, speedup});
    t.add_row({std::to_string(workers), TablePrinter::fmt(wall_ms, 1),
               TablePrinter::fmt(qps, 2), TablePrinter::fmt(speedup, 2) + "x",
               TablePrinter::fmt(100.0 * speedup / workers, 0) + "%"});
  }
  t.print(std::cout);

  std::ofstream json("BENCH_throughput_qps.json");
  json << "{\n"
       << "  \"bench\": \"throughput_qps\",\n"
       << "  \"scale_factor\": " << cfg.scale_factor << ",\n"
       << "  \"queries_per_run\": " << workload.size() << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"hardware_threads\": " << hardware_threads() << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    json << "    {\"workers\": " << r.workers << ", \"wall_ms\": " << r.wall_ms
         << ", \"qps\": " << r.qps << ", \"speedup\": " << r.speedup << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"checksums\": \"identical\"\n"
       << "}\n";

  std::cout << "\nwrote BENCH_throughput_qps.json\n"
            << "All worker counts produced identical result checksums.\n"
            << "(Scaling requires >= " << max_workers
            << " hardware threads; single-core machines serialize the "
               "workers.)\n";
  return 0;
}
