// Google-benchmark microbenchmarks of the simulator's hot paths.
//
// These measure this library's own execution speed (how fast the functional
// simulation runs on the build machine), not simulated PIM time — useful
// when tuning the simulator itself.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "pim/agg_circuit.hpp"
#include "pim/controller.hpp"
#include "pim/crossbar.hpp"
#include "pim/microcode.hpp"
#include "pim/module.hpp"

namespace {

using namespace bbpim;

pim::Crossbar make_filled_crossbar(std::uint32_t rows = 1024,
                                   std::uint32_t cols = 512) {
  pim::Crossbar xb(rows, cols);
  Rng rng(1);
  for (std::uint32_t r = 0; r < rows; ++r) {
    xb.write_row_bits(r, 0, 64, rng.next_u64());
  }
  return xb;
}

void BM_CrossbarNorCycle(benchmark::State& state) {
  pim::Crossbar xb = make_filled_crossbar();
  const pim::MicroOp op = pim::MicroOp::nor_op(0, 1, 100);
  for (auto _ : state) {
    xb.execute(op);
    benchmark::DoNotOptimize(xb);
  }
  state.SetItemsProcessed(state.iterations() * xb.rows());
}
BENCHMARK(BM_CrossbarNorCycle);

void BM_BuildEqProgram(benchmark::State& state) {
  const std::uint16_t width = static_cast<std::uint16_t>(state.range(0));
  for (auto _ : state) {
    pim::ColumnAlloc alloc(256, 512);
    pim::ProgramBuilder pb(alloc);
    const std::uint16_t col = pb.emit_eq_const(pim::Field{0, width}, 12345);
    pb.release(col);
    benchmark::DoNotOptimize(pb.program());
  }
}
BENCHMARK(BM_BuildEqProgram)->Arg(8)->Arg(16)->Arg(32);

void BM_ExecuteBetweenFilter(benchmark::State& state) {
  pim::Crossbar xb = make_filled_crossbar();
  pim::ColumnAlloc alloc(256, 512);
  pim::ProgramBuilder pb(alloc);
  const std::uint16_t col =
      pb.emit_between_const(pim::Field{0, 20}, 1000, 500000);
  const pim::MicroProgram prog = pb.program();
  for (auto _ : state) {
    xb.execute(prog);
    benchmark::DoNotOptimize(xb);
  }
  pb.release(col);
  state.SetItemsProcessed(state.iterations() * xb.rows());
  state.counters["cycles"] = static_cast<double>(prog.size());
}
BENCHMARK(BM_ExecuteBetweenFilter);

void BM_AggCircuitPass(benchmark::State& state) {
  pim::PimConfig cfg;
  pim::Crossbar xb = make_filled_crossbar();
  Rng rng(2);
  for (std::uint32_t r = 0; r < xb.rows(); ++r) {
    xb.set_bit(r, 200, rng.next_double() < 0.5);
  }
  for (auto _ : state) {
    pim::AggCircuitCost cost;
    const std::uint64_t v = pim::run_agg_circuit(
        xb, pim::Field{0, 20}, 200, pim::AggOp::kSum, pim::Field{300, 31}, 0,
        cfg, &cost);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * xb.rows());
}
BENCHMARK(BM_AggCircuitPass);

void BM_ReadBitColumn(benchmark::State& state) {
  pim::PimConfig cfg;
  pim::PimModule module(cfg);
  module.allocate_pages(1);
  for (auto _ : state) {
    BitVec bits;
    pim::read_bit_column(module.page(0), 100, 50.0, cfg, nullptr, &bits);
    benchmark::DoNotOptimize(bits);
  }
  state.SetItemsProcessed(state.iterations() *
                          module.page(0).records());
}
BENCHMARK(BM_ReadBitColumn);

}  // namespace

BENCHMARK_MAIN();
