// Zone-map pruning: modeled work and simulator wall-clock, prune off vs on.
//
// Zone maps pay off when data is clustered on the filtered attributes, so
// this bench loads a DATE-CLUSTERED copy of the pre-joined relation (rows
// stable-sorted by lo_orderdate — the layout a warehouse ingesting facts
// chronologically gets for free) and runs the selective SSB subset, flights
// 1 and 3. Flight-1 queries carry tight date predicates (a year, a month, a
// week), flight-3 queries group by d_year, so both the filter phase and the
// per-subgroup pim-gb phase can skip most pages.
//
// Two arms per query — ExecOptions::prune off (the default) and on — at 1
// and N simulation threads:
//
//   work      modeled PIM-module energy (thread-count-invariant): the
//             operations the modeled hardware no longer performs. Energy is
//             the honest work metric here — modeled *latency* at bench
//             scale is dominated by the fixed per-phase barrier
//             (HostConfig::phase_overhead_ns) and by reading true
//             survivors, neither of which data skipping can remove;
//   modeled   total simulated nanoseconds (also reported; improves less,
//             for the reason above);
//   wall      how long the simulation itself takes on this machine: the
//             pages the simulator no longer loops over.
//
// Parity is enforced, not assumed: for every query the pruned rows must be
// byte-identical to the unpruned rows, the result-semantic stats (selected
// records, subgroup counts, planner inputs) must match exactly, and the
// pruned modeled cost must never exceed the unpruned one. Any divergence
// exits non-zero — this is the CI smoke for the pruning subsystem.
//
// Emits BENCH_prune_speed.json in the working directory.
//
// Env: BBPIM_SF (default 0.1), BBPIM_SIM_THREADS (default 8),
// BBPIM_SIM_REPS (best-of repetitions, default 3).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table_printer.hpp"
#include "harness.hpp"

namespace {

using namespace bbpim;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

/// Stable re-sort of a relation by one attribute's codes (the clustering a
/// chronological fact load produces for the date hierarchy).
rel::Table cluster_by(const rel::Table& t, const std::string& attr) {
  const std::size_t a = *t.schema().index_of(attr);
  std::vector<std::size_t> order(t.row_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t i, std::size_t j) {
                     return t.value(i, a) < t.value(j, a);
                   });
  rel::Table out(t.schema(), t.name());
  out.reserve(t.row_count());
  const std::size_t nattrs = t.schema().attribute_count();
  std::vector<std::uint64_t> row(nattrs);
  for (const std::size_t r : order) {
    for (std::size_t k = 0; k < nattrs; ++k) row[k] = t.value(r, k);
    out.append_row(row);
  }
  return out;
}

double best_of_ms(std::size_t reps, const std::function<void()>& run) {
  using Clock = std::chrono::steady_clock;
  double best = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    run();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

bool semantic_stats_equal(const engine::QueryStats& a,
                          const engine::QueryStats& b) {
  return a.selected_records == b.selected_records &&
         a.selectivity == b.selectivity &&
         a.total_subgroups == b.total_subgroups &&
         a.sampled_subgroups == b.sampled_subgroups &&
         a.pim_subgroups == b.pim_subgroups && a.n_chunks == b.n_chunks &&
         a.s_chunks == b.s_chunks &&
         a.selectivity_estimate == b.selectivity_estimate &&
         a.candidates_complete == b.candidates_complete &&
         a.candidate_masses == b.candidate_masses;
}

struct QueryResult {
  std::string id;
  double modeled_off_ns = 0;
  double modeled_on_ns = 0;
  double energy_off_j = 0;
  double energy_on_j = 0;
  double wall1_off_ms = 0, wall1_on_ms = 0;
  double walln_off_ms = 0, walln_on_ms = 0;
  std::size_t pages_skipped = 0;
  std::size_t group_pages_skipped = 0;
  std::size_t predicates_short_circuited = 0;
};

}  // namespace

int main() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const std::uint32_t threads =
      static_cast<std::uint32_t>(env_u64("BBPIM_SIM_THREADS", 8));
  const std::size_t reps = env_u64("BBPIM_SIM_REPS", 3);
  const std::vector<std::string> flight_ids = {"1.1", "1.2", "1.3", "3.1",
                                               "3.2", "3.3", "3.4"};

  std::cerr << "[bench] generating SSB (sf=" << cfg.scale_factor << ")...\n";
  ssb::SsbConfig gen;
  gen.scale_factor = cfg.scale_factor;
  gen.zipf_theta = cfg.zipf_theta;
  gen.seed = cfg.seed;
  const ssb::SsbData data = ssb::generate(gen);

  std::cerr << "[bench] clustering the pre-joined relation on lo_orderdate"
            << "...\n";
  db::Database database;
  const rel::Table& clustered = database.register_table(
      cluster_by(ssb::prejoin_ssb(data), "lo_orderdate"));

  db::SessionOptions opts = bench::bench_session_options(cfg);
  db::Session session(database, opts);
  const db::BackendKind backend = db::BackendKind::kOneXb;

  std::cout << "=== Zone-map pruning: SSB flights 1+3 on date-clustered data "
            << "===\n"
            << "sf=" << cfg.scale_factor << ", records="
            << clustered.row_count() << ", sim threads 1/" << threads
            << ", best of " << reps << "\n\n";

  // Warm everything outside the timed region (store load, model fit, plan
  // and compiled-filter caches for both predicate orders).
  for (const std::string& id : flight_ids) {
    const auto& q = ssb::query(id);
    session.execute(q.sql, backend);
    engine::ExecOptions on;
    on.prune = true;
    session.execute(q.sql, backend, on);
  }

  TablePrinter t({"query", "work off [uJ]", "work on [uJ]", "work", "modeled",
                  "wall-1t", "wall-" + std::to_string(threads) + "t",
                  "pages skipped"});
  std::vector<QueryResult> results;
  bool parity_ok = true;
  double modeled_off_total = 0, modeled_on_total = 0;
  double energy_off_total = 0, energy_on_total = 0;
  double wall1_off_total = 0, wall1_on_total = 0;
  double walln_off_total = 0, walln_on_total = 0;

  for (const std::string& id : flight_ids) {
    const auto& q = ssb::query(id);
    QueryResult r;
    r.id = id;

    engine::ExecOptions off1, on1, offn, onn;
    off1.sim_threads = 1;
    on1.sim_threads = 1;
    on1.prune = true;
    offn.sim_threads = threads;
    onn.sim_threads = threads;
    onn.prune = true;

    const db::ResultSet ref = session.execute(q.sql, backend, off1);
    const db::ResultSet pruned = session.execute(q.sql, backend, on1);

    // --- parity: rows byte-identical, semantic stats exact, cost <= -------
    if (pruned.rows() != ref.rows()) {
      std::cerr << "FAIL: pruned rows diverge for q" << id << "\n";
      parity_ok = false;
    }
    if (!semantic_stats_equal(pruned.stats(), ref.stats())) {
      std::cerr << "FAIL: pruned semantic stats diverge for q" << id << "\n";
      parity_ok = false;
    }
    if (pruned.stats().total_ns > ref.stats().total_ns ||
        pruned.stats().energy_j > ref.stats().energy_j) {
      std::cerr << "FAIL: pruning increased modeled cost for q" << id << "\n";
      parity_ok = false;
    }
    // Thread-count invariance of both arms.
    const db::ResultSet refn = session.execute(q.sql, backend, offn);
    const db::ResultSet prunedn = session.execute(q.sql, backend, onn);
    if (refn.rows() != ref.rows() || prunedn.rows() != ref.rows() ||
        refn.stats().total_ns != ref.stats().total_ns ||
        prunedn.stats().total_ns != pruned.stats().total_ns) {
      std::cerr << "FAIL: thread-count variance for q" << id << "\n";
      parity_ok = false;
    }

    r.modeled_off_ns = ref.stats().total_ns;
    r.modeled_on_ns = pruned.stats().total_ns;
    r.energy_off_j = ref.stats().energy_j;
    r.energy_on_j = pruned.stats().energy_j;
    r.pages_skipped = pruned.stats().pages_skipped;
    r.group_pages_skipped = pruned.stats().group_pages_skipped;
    r.predicates_short_circuited = pruned.stats().predicates_short_circuited;

    r.wall1_off_ms =
        best_of_ms(reps, [&] { session.execute(q.sql, backend, off1); });
    r.wall1_on_ms =
        best_of_ms(reps, [&] { session.execute(q.sql, backend, on1); });
    r.walln_off_ms =
        best_of_ms(reps, [&] { session.execute(q.sql, backend, offn); });
    r.walln_on_ms =
        best_of_ms(reps, [&] { session.execute(q.sql, backend, onn); });

    modeled_off_total += r.modeled_off_ns;
    modeled_on_total += r.modeled_on_ns;
    energy_off_total += r.energy_off_j;
    energy_on_total += r.energy_on_j;
    wall1_off_total += r.wall1_off_ms;
    wall1_on_total += r.wall1_on_ms;
    walln_off_total += r.walln_off_ms;
    walln_on_total += r.walln_on_ms;

    t.add_row({r.id, TablePrinter::fmt(r.energy_off_j * 1e6, 2),
               TablePrinter::fmt(r.energy_on_j * 1e6, 2),
               TablePrinter::fmt(r.energy_off_j / r.energy_on_j, 2) + "x",
               TablePrinter::fmt(r.modeled_off_ns / r.modeled_on_ns, 2) + "x",
               TablePrinter::fmt(r.wall1_off_ms / r.wall1_on_ms, 2) + "x",
               TablePrinter::fmt(r.walln_off_ms / r.walln_on_ms, 2) + "x",
               std::to_string(r.pages_skipped)});
    results.push_back(r);
  }

  const double work_speedup = energy_off_total / energy_on_total;
  const double modeled_speedup = modeled_off_total / modeled_on_total;
  const double wall1_speedup = wall1_off_total / wall1_on_total;
  const double walln_speedup = walln_off_total / walln_on_total;
  t.add_row({"total", TablePrinter::fmt(energy_off_total * 1e6, 2),
             TablePrinter::fmt(energy_on_total * 1e6, 2),
             TablePrinter::fmt(work_speedup, 2) + "x",
             TablePrinter::fmt(modeled_speedup, 2) + "x",
             TablePrinter::fmt(wall1_speedup, 2) + "x",
             TablePrinter::fmt(walln_speedup, 2) + "x", ""});
  t.print(std::cout);
  std::cout << "\nparity: "
            << (parity_ok ? "rows and semantic stats identical" : "MISMATCH")
            << "\nmodeled-work (module energy) reduction: "
            << TablePrinter::fmt(work_speedup, 2)
            << "x, modeled-latency reduction: "
            << TablePrinter::fmt(modeled_speedup, 2)
            << "x\nwall-clock reduction: "
            << TablePrinter::fmt(wall1_speedup, 2) << "x (1t) / "
            << TablePrinter::fmt(walln_speedup, 2) << "x (" << threads
            << "t)\n";

  std::ofstream json("BENCH_prune_speed.json");
  json << "{\n"
       << "  \"bench\": \"prune_speed\",\n"
       << "  \"scale_factor\": " << cfg.scale_factor << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"hardware_threads\": " << hardware_threads() << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"clustered_on\": \"lo_orderdate\",\n"
       << "  \"queries\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const QueryResult& r = results[i];
    json << "    {\"id\": \"" << r.id << "\", \"modeled_off_ns\": "
         << r.modeled_off_ns << ", \"modeled_on_ns\": " << r.modeled_on_ns
         << ", \"modeled_speedup\": " << r.modeled_off_ns / r.modeled_on_ns
         << ", \"energy_off_j\": " << r.energy_off_j
         << ", \"energy_on_j\": " << r.energy_on_j
         << ", \"work_speedup\": " << r.energy_off_j / r.energy_on_j
         << ", \"wall1_off_ms\": " << r.wall1_off_ms
         << ", \"wall1_on_ms\": " << r.wall1_on_ms
         << ", \"walln_off_ms\": " << r.walln_off_ms
         << ", \"walln_on_ms\": " << r.walln_on_ms
         << ", \"pages_skipped\": " << r.pages_skipped
         << ", \"group_pages_skipped\": " << r.group_pages_skipped
         << ", \"predicates_short_circuited\": "
         << r.predicates_short_circuited << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"modeled_total_off_ns\": " << modeled_off_total << ",\n"
       << "  \"modeled_total_on_ns\": " << modeled_on_total << ",\n"
       << "  \"modeled_speedup\": " << modeled_speedup << ",\n"
       << "  \"energy_total_off_j\": " << energy_off_total << ",\n"
       << "  \"energy_total_on_j\": " << energy_on_total << ",\n"
       << "  \"modeled_work_speedup\": " << work_speedup << ",\n"
       << "  \"wall1_speedup\": " << wall1_speedup << ",\n"
       << "  \"walln_speedup\": " << walln_speedup << ",\n"
       << "  \"parity_ok\": " << (parity_ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote BENCH_prune_speed.json\n";
  return parity_ok ? 0 : 1;
}
