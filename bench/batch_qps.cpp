// Shared-scan batched serving: queries/sec of db::QueryService with the
// batch former ON versus OFF, under concurrent closed-loop "flights".
//
// Each flight is a client thread that submits one statement, waits for its
// result, and submits the next — a hot-skewed stream over the 13 SSB
// queries (weights proportional to 1/(rank+1), per-flight deterministic
// LCG). With batching off, the worker serves the in-flight statements one
// by one. With batching on, the worker's batch former gathers whatever the
// flights have in the queue into ONE fused pass per table: duplicate
// statements execute once, distinct ones share each page visit.
//
// Correctness is enforced, not sampled: every result — both modes — must be
// row-identical to a serial single-session reference, or the bench exits
// non-zero. Modeled per-query cost stays deterministic either way; this
// bench measures host wall-clock serving capacity.
//
// Emits BENCH_batch_qps.json in the working directory.
//
// Env: BBPIM_SF (scale factor, default 0.1), BBPIM_BATCH_FLIGHTS (client
// threads, default 8), BBPIM_BATCH_QUERIES (total statements per run,
// default 104), BBPIM_BATCH_WORKERS (service workers, default 1),
// BBPIM_BATCH_WINDOW_US (gather window, default 1000).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/table_printer.hpp"
#include "harness.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

/// FNV digest of one result's rows (order within a result is deterministic).
std::uint64_t row_digest(const bbpim::db::ResultSet& rs) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& row : rs.rows()) {
    for (const std::uint64_t g : row.group) h = (h ^ g) * 1099511628211ULL;
    h = (h ^ static_cast<std::uint64_t>(row.agg)) * 1099511628211ULL;
  }
  h = (h ^ rs.row_count()) * 1099511628211ULL;
  return h;
}

/// Per-flight deterministic hot-skewed query stream: rank r drawn with
/// probability proportional to 1/(r+1) from a per-flight LCG. Flights share
/// the hot head of the distribution — the duplicate traffic a shared scan
/// deduplicates — while the tail keeps the batches mixed.
std::vector<std::size_t> flight_stream(std::size_t flight, std::size_t count,
                                       std::size_t n_queries) {
  std::vector<double> cdf(n_queries);
  double mass = 0;
  for (std::size_t i = 0; i < n_queries; ++i) {
    mass += 1.0 / static_cast<double>(i + 1);
    cdf[i] = mass;
  }
  std::uint64_t state = 0x9e3779b97f4a7c15ULL * (flight + 1) + 12345;
  std::vector<std::size_t> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>(state >> 11) / 9007199254740992.0 * mass;
    std::size_t idx = 0;
    while (idx + 1 < n_queries && cdf[idx] < u) ++idx;
    stream.push_back(idx);
  }
  return stream;
}

struct ModeResult {
  double wall_ms = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::size_t parity_failures = 0;
  std::size_t batched_results = 0;  ///< results served by a shared execution
};

}  // namespace

int main() {
  using namespace bbpim;
  using Clock = std::chrono::steady_clock;

  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const std::size_t flights = env_u64("BBPIM_BATCH_FLIGHTS", 8);
  const std::size_t total_queries = env_u64("BBPIM_BATCH_QUERIES", 104);
  const std::size_t workers = env_u64("BBPIM_BATCH_WORKERS", 1);
  const std::uint64_t window_us = env_u64("BBPIM_BATCH_WINDOW_US", 1000);
  const std::size_t per_flight = std::max<std::size_t>(1, total_queries / flights);

  std::cerr << "[bench] generating SSB (sf=" << cfg.scale_factor << ")...\n";
  ssb::SsbConfig gen;
  gen.scale_factor = cfg.scale_factor;
  gen.zipf_theta = cfg.zipf_theta;
  gen.seed = cfg.seed;
  const ssb::SsbData data = ssb::generate(gen);

  std::vector<std::string> sqls;
  for (const auto& q : ssb::queries()) sqls.emplace_back(q.sql);

  // Fit-once for the whole bench (disk-cached across invocations too).
  db::SessionOptions session_opts = bench::bench_session_options(cfg);
  session_opts.verbose = false;
  auto models = std::make_shared<db::ModelCache>(session_opts.model_cache_dir,
                                                 session_opts.model_cache_tag);
  session_opts.models = models;

  // Serial single-session reference: the row oracle both modes must match.
  std::vector<std::uint64_t> reference(sqls.size());
  {
    db::Database database;
    database.register_table(ssb::prejoin_ssb(data));
    db::Session session(database, session_opts);
    for (std::size_t i = 0; i < sqls.size(); ++i) {
      reference[i] = row_digest(session.execute(sqls[i]));
    }
  }

  std::cout << "=== Shared-scan batching: serving qps, batched vs unbatched ==="
            << "\nflights: " << flights << " (closed loop, " << per_flight
            << " queries each), service workers: " << workers
            << ", gather window: " << window_us
            << " us, sf=" << cfg.scale_factor
            << ", hardware threads: " << hardware_threads() << "\n\n";

  const auto run_mode = [&](bool batched) {
    db::Database database;
    database.register_table(ssb::prejoin_ssb(data));
    db::QueryServiceOptions opts;
    opts.workers = workers;
    opts.session = session_opts;
    opts.shared_scan.enabled = batched;
    opts.shared_scan.max_batch = flights;
    opts.shared_scan.gather_window_us = window_us;
    db::QueryService service(database, opts);
    service.warm_up(db::BackendKind::kOneXb);
    // Warm the store's filter/classification caches identically in both
    // modes so the timed region compares serving, not first-touch compiles.
    for (const std::string& sql : sqls) service.submit(sql).get();

    ModeResult mode;
    std::vector<std::vector<double>> latencies(flights);
    std::vector<std::size_t> failures(flights, 0);
    std::vector<std::size_t> shared_served(flights, 0);
    const auto start = Clock::now();
    std::vector<std::thread> threads;
    for (std::size_t f = 0; f < flights; ++f) {
      threads.emplace_back([&, f] {
        const std::vector<std::size_t> stream =
            flight_stream(f, per_flight, sqls.size());
        for (const std::size_t qi : stream) {
          const auto t0 = Clock::now();
          const db::ResultSet rs = service.submit(sqls[qi]).get();
          latencies[f].push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count());
          if (row_digest(rs) != reference[qi]) ++failures[f];
          if (rs.batched_queries() >= 2) ++shared_served[f];
        }
      });
    }
    for (std::thread& t : threads) t.join();
    mode.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    service.shutdown();

    std::vector<double> all;
    for (std::size_t f = 0; f < flights; ++f) {
      all.insert(all.end(), latencies[f].begin(), latencies[f].end());
      mode.parity_failures += failures[f];
      mode.batched_results += shared_served[f];
    }
    std::sort(all.begin(), all.end());
    mode.qps = all.size() / (mode.wall_ms / 1000.0);
    mode.p50_ms = all[all.size() / 2];
    mode.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
    return mode;
  };

  const ModeResult unbatched = run_mode(false);
  const ModeResult batched = run_mode(true);
  const double speedup = batched.qps / unbatched.qps;

  TablePrinter t({"mode", "wall [ms]", "qps", "p50 [ms]", "p99 [ms]",
                  "shared-served"});
  t.add_row({"unbatched", TablePrinter::fmt(unbatched.wall_ms, 1),
             TablePrinter::fmt(unbatched.qps, 2),
             TablePrinter::fmt(unbatched.p50_ms, 1),
             TablePrinter::fmt(unbatched.p99_ms, 1),
             std::to_string(unbatched.batched_results)});
  t.add_row({"batched", TablePrinter::fmt(batched.wall_ms, 1),
             TablePrinter::fmt(batched.qps, 2),
             TablePrinter::fmt(batched.p50_ms, 1),
             TablePrinter::fmt(batched.p99_ms, 1),
             std::to_string(batched.batched_results)});
  t.print(std::cout);
  std::cout << "\nbatched/unbatched qps: " << TablePrinter::fmt(speedup, 2)
            << "x\n";

  if (unbatched.parity_failures + batched.parity_failures > 0) {
    std::cerr << "FAIL: " << unbatched.parity_failures << " unbatched and "
              << batched.parity_failures
              << " batched result(s) diverged from the serial reference\n";
    return 1;
  }

  std::ofstream json("BENCH_batch_qps.json");
  json << "{\n"
       << "  \"bench\": \"batch_qps\",\n"
       << "  \"scale_factor\": " << cfg.scale_factor << ",\n"
       << "  \"flights\": " << flights << ",\n"
       << "  \"queries_per_flight\": " << per_flight << ",\n"
       << "  \"service_workers\": " << workers << ",\n"
       << "  \"gather_window_us\": " << window_us << ",\n"
       << "  \"hardware_threads\": " << hardware_threads() << ",\n"
       << "  \"runs\": [\n"
       << "    {\"mode\": \"unbatched\", \"wall_ms\": " << unbatched.wall_ms
       << ", \"qps\": " << unbatched.qps
       << ", \"p50_ms\": " << unbatched.p50_ms
       << ", \"p99_ms\": " << unbatched.p99_ms
       << ", \"shared_served\": " << unbatched.batched_results << "},\n"
       << "    {\"mode\": \"batched\", \"wall_ms\": " << batched.wall_ms
       << ", \"qps\": " << batched.qps << ", \"p50_ms\": " << batched.p50_ms
       << ", \"p99_ms\": " << batched.p99_ms
       << ", \"shared_served\": " << batched.batched_results << "}\n"
       << "  ],\n"
       << "  \"batched_speedup\": " << speedup << ",\n"
       << "  \"row_parity\": \"identical\"\n"
       << "}\n";

  std::cout << "wrote BENCH_batch_qps.json\n"
            << "Every result in both modes matched the serial reference "
               "rows.\n";
  return 0;
}
