// Ablation: the outstanding-PIM-request window.
//
// Page controllers are independent, so the host can pipeline macro requests
// arbitrarily deep — which is what makes phase latency linear in M but also
// what stacks concurrent bulk-logic power (Fig. 8). This bench sweeps the
// per-thread window — one session per host configuration over one shared
// catalog — and reports the latency/peak-power tradeoff on a logic-heavy
// query (Q1.1: product decomposition + filter on every page), the knob a
// deployment would use to enforce a chip power budget.
#include <iostream>

#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "db/db.hpp"
#include "harness.hpp"
#include "ssb/dbgen.hpp"
#include "ssb/queries.hpp"

int main() {
  using namespace bbpim;

  bench::BenchConfig wcfg = bench::BenchConfig::from_env();
  ssb::SsbConfig gen;
  gen.scale_factor = wcfg.scale_factor;
  gen.zipf_theta = wcfg.zipf_theta;
  gen.seed = wcfg.seed;
  std::cerr << "[ablation_window] generating SSB sf=" << gen.scale_factor
            << "...\n";
  const ssb::SsbData data = ssb::generate(gen);

  db::Database database;
  database.register_table(ssb::prejoin_ssb(data));

  std::cout << "=== Outstanding-request window sweep (SSB Q1.1) ===\n";
  TablePrinter t({"window/thread", "runtime [ms]", "peak power [W/chip]",
                  "energy [mJ]"});
  for (const std::uint32_t window : {1u, 2u, 4u, 8u, 16u, 0u}) {
    db::SessionOptions opts;
    opts.host.request_window = window;
    db::Session session(database, opts);
    const db::ResultSet out =
        session.execute(ssb::query("1.1").sql, db::BackendKind::kOneXb);
    t.add_row({window == 0 ? "unlimited" : std::to_string(window),
               TablePrinter::fmt(units::ns_to_ms(out.stats().total_ns), 3),
               TablePrinter::fmt(out.stats().peak_chip_w, 3),
               TablePrinter::fmt(out.stats().energy_j * 1e3, 3)});
  }
  t.print(std::cout);
  std::cout << "\nEnergy is window-independent (same work); the window only "
               "trades peak power against latency. The paper's <44 W/chip "
               "bound holds even unlimited because host issue rate already "
               "spaces the requests.\n";
  return 0;
}
