// Ablation: the outstanding-PIM-request window.
//
// Page controllers are independent, so the host can pipeline macro requests
// arbitrarily deep — which is what makes phase latency linear in M but also
// what stacks concurrent bulk-logic power (Fig. 8). This bench sweeps the
// per-thread window and reports the latency/peak-power tradeoff on a
// logic-heavy query (Q1.1: product decomposition + filter on every page),
// the knob a deployment would use to enforce a chip power budget.
#include <iostream>

#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "engine/model_fitter.hpp"
#include "engine/pim_store.hpp"
#include "engine/query_exec.hpp"
#include "pim/module.hpp"
#include "sql/parser.hpp"
#include "harness.hpp"
#include "ssb/dbgen.hpp"
#include "ssb/queries.hpp"

int main() {
  using namespace bbpim;

  bench::BenchConfig wcfg = bench::BenchConfig::from_env();
  ssb::SsbConfig gen;
  gen.scale_factor = wcfg.scale_factor;
  gen.zipf_theta = wcfg.zipf_theta;
  gen.seed = wcfg.seed;
  std::cerr << "[ablation_window] generating SSB sf=" << gen.scale_factor
            << "...\n";
  const ssb::SsbData data = ssb::generate(gen);
  const rel::Table prejoined = ssb::prejoin_ssb(data);
  pim::PimModule module;
  engine::PimStore store(module, prejoined);
  const sql::BoundQuery q =
      sql::bind(sql::parse(ssb::query("1.1").sql), prejoined.schema());

  std::cout << "=== Outstanding-request window sweep (SSB Q1.1, M="
            << store.pages_per_part() << ") ===\n";
  TablePrinter t({"window/thread", "runtime [ms]", "peak power [W/chip]",
                  "energy [mJ]"});
  for (const std::uint32_t window : {1u, 2u, 4u, 8u, 16u, 0u}) {
    host::HostConfig hcfg;
    hcfg.request_window = window;
    engine::PimQueryEngine eng(engine::EngineKind::kOneXb, store, hcfg);
    const engine::QueryOutput out = eng.execute(q);
    t.add_row({window == 0 ? "unlimited" : std::to_string(window),
               TablePrinter::fmt(units::ns_to_ms(out.stats.total_ns), 3),
               TablePrinter::fmt(out.stats.peak_chip_w, 3),
               TablePrinter::fmt(out.stats.energy_j * 1e3, 3)});
  }
  t.print(std::cout);
  std::cout << "\nEnergy is window-independent (same work); the window only "
               "trades peak power against latency. The paper's <44 W/chip "
               "bound holds even unlimited because host issue rate already "
               "spaces the requests.\n";
  return 0;
}
