// Simulator wall-clock: the SSB query set, serial vs N-thread.
//
// Unlike every other bench (which reports MODELED nanoseconds), this one
// measures how long the simulation itself takes on the machine running it —
// the quantity PR 3's page-parallel substrate and vectorized kernels
// optimize. Three arms per query, all producing byte-identical rows and
// stats (verified here, proven in tests/test_sim_determinism.cpp):
//
//   serial    — the scalar baseline: pre-vectorization kernels (per-op
//               interpreter, bit-granular column IO, row-streaming
//               aggregation, no compiled-filter cache) on one thread, i.e.
//               the execution substrate this PR replaced;
//   vec-1t    — vectorized kernels, one simulation thread;
//   vec-Nt    — vectorized kernels, N simulation threads (default 8).
//
// The headline speedup is serial / vec-Nt: the total wall-clock win of the
// PR at the given thread budget. vec-1t isolates how much of it comes from
// the kernels alone (all of it on a single-core host, where extra threads
// cannot add parallelism).
//
// Emits BENCH_sim_speed.json next to the working directory to seed the
// performance trajectory.
//
// Env: BBPIM_SF (default 0.1), BBPIM_SIM_THREADS (default 8),
// BBPIM_SIM_REPS (best-of repetitions, default 3).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table_printer.hpp"
#include "harness.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

struct QueryTiming {
  std::string id;
  double serial_ms = 0;   // scalar kernels, 1 thread
  double vec1_ms = 0;     // vectorized kernels, 1 thread
  double vecn_ms = 0;     // vectorized kernels, N threads
};

/// Byte-exact equality over every QueryStats field (the determinism
/// guarantee is bit-identity, so doubles compare with ==).
bool stats_equal(const bbpim::engine::QueryStats& a,
                 const bbpim::engine::QueryStats& b) {
  return a.total_ns == b.total_ns && a.phases.filter == b.phases.filter &&
         a.phases.transfer == b.phases.transfer &&
         a.phases.sample == b.phases.sample && a.phases.plan == b.phases.plan &&
         a.phases.pim_gb == b.phases.pim_gb &&
         a.phases.host_gb == b.phases.host_gb &&
         a.phases.finalize == b.phases.finalize && a.energy_j == b.energy_j &&
         a.energy_logic_j == b.energy_logic_j &&
         a.energy_read_j == b.energy_read_j &&
         a.energy_write_j == b.energy_write_j &&
         a.energy_controller_j == b.energy_controller_j &&
         a.energy_agg_circuit_j == b.energy_agg_circuit_j &&
         a.peak_chip_w == b.peak_chip_w &&
         a.wear_row_writes == b.wear_row_writes &&
         a.selectivity == b.selectivity &&
         a.selected_records == b.selected_records &&
         a.total_subgroups == b.total_subgroups &&
         a.sampled_subgroups == b.sampled_subgroups &&
         a.pim_subgroups == b.pim_subgroups && a.host_lines == b.host_lines &&
         a.pim_requests == b.pim_requests && a.n_chunks == b.n_chunks &&
         a.s_chunks == b.s_chunks &&
         a.selectivity_estimate == b.selectivity_estimate &&
         a.candidates_complete == b.candidates_complete &&
         a.candidate_masses == b.candidate_masses;
}

double best_of_ms(std::size_t reps, const std::function<void()>& run) {
  using Clock = std::chrono::steady_clock;
  double best = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    run();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  using namespace bbpim;

  const std::uint32_t threads =
      static_cast<std::uint32_t>(env_u64("BBPIM_SIM_THREADS", 8));
  const std::size_t reps = env_u64("BBPIM_SIM_REPS", 3);

  bench::BenchWorld world;
  db::Session& session = world.session();
  const db::BackendKind backend = db::BackendKind::kOneXb;

  std::cout << "=== Simulator wall-clock: SSB set, serial vs " << threads
            << "-thread ===\n"
            << "sf=" << world.config().scale_factor << ", pages/part="
            << world.pages() << ", hardware threads=" << hardware_threads()
            << ", best of " << reps << "\n\n";

  // Warm everything outside the timed region: PIM store load, the fitting
  // campaign (grouped queries consult the planner), the plan cache, and the
  // compiled-filter cache — the steady prepared-statement serving state.
  for (const auto& q : ssb::queries()) {
    session.execute(q.sql, backend);
  }

  TablePrinter t({"query", "serial [ms]", "vec-1t [ms]",
                  "vec-" + std::to_string(threads) + "t [ms]", "kernels",
                  "threads", "total"});
  std::vector<QueryTiming> timings;
  double serial_total = 0, vec1_total = 0, vecn_total = 0;
  for (const auto& q : ssb::queries()) {
    engine::ExecOptions scalar_opts;
    scalar_opts.sim_scalar = true;
    scalar_opts.sim_threads = 1;
    engine::ExecOptions vec1_opts;
    vec1_opts.sim_threads = 1;
    engine::ExecOptions vecn_opts;
    vecn_opts.sim_threads = threads;

    // Reference rows + stats from the serial scalar arm; the optimized arms
    // must reproduce them exactly (simulation-thread determinism).
    const db::ResultSet reference = session.execute(q.sql, backend, scalar_opts);

    QueryTiming qt;
    qt.id = q.id;
    qt.serial_ms = best_of_ms(reps, [&] {
      session.execute(q.sql, backend, scalar_opts);
    });
    qt.vec1_ms = best_of_ms(reps, [&] {
      const db::ResultSet rs = session.execute(q.sql, backend, vec1_opts);
      if (rs.rows() != reference.rows() ||
          !stats_equal(rs.stats(), reference.stats())) {
        std::cerr << "FAIL: vec-1t output differs for q" << q.id << "\n";
        std::exit(1);
      }
    });
    qt.vecn_ms = best_of_ms(reps, [&] {
      const db::ResultSet rs = session.execute(q.sql, backend, vecn_opts);
      if (rs.rows() != reference.rows() ||
          !stats_equal(rs.stats(), reference.stats())) {
        std::cerr << "FAIL: vec-" << threads << "t output differs for q"
                  << q.id << "\n";
        std::exit(1);
      }
    });

    serial_total += qt.serial_ms;
    vec1_total += qt.vec1_ms;
    vecn_total += qt.vecn_ms;
    t.add_row({qt.id, TablePrinter::fmt(qt.serial_ms, 1),
               TablePrinter::fmt(qt.vec1_ms, 1),
               TablePrinter::fmt(qt.vecn_ms, 1),
               TablePrinter::fmt(qt.serial_ms / qt.vec1_ms, 2) + "x",
               TablePrinter::fmt(qt.vec1_ms / qt.vecn_ms, 2) + "x",
               TablePrinter::fmt(qt.serial_ms / qt.vecn_ms, 2) + "x"});
    timings.push_back(qt);
  }
  const double speedup = serial_total / vecn_total;
  t.add_row({"total", TablePrinter::fmt(serial_total, 1),
             TablePrinter::fmt(vec1_total, 1), TablePrinter::fmt(vecn_total, 1),
             TablePrinter::fmt(serial_total / vec1_total, 2) + "x",
             TablePrinter::fmt(vec1_total / vecn_total, 2) + "x",
             TablePrinter::fmt(speedup, 2) + "x"});
  t.print(std::cout);
  std::cout << "\nAll arms produced identical rows and stats.\n"
            << "speedup (serial -> vec-" << threads
            << "t): " << TablePrinter::fmt(speedup, 2) << "x\n";

  std::ofstream json("BENCH_sim_speed.json");
  json << "{\n"
       << "  \"bench\": \"sim_speed\",\n"
       << "  \"scale_factor\": " << world.config().scale_factor << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"hardware_threads\": " << hardware_threads() << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"queries\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const QueryTiming& qt = timings[i];
    json << "    {\"id\": \"" << qt.id << "\", \"serial_ms\": " << qt.serial_ms
         << ", \"vec1_ms\": " << qt.vec1_ms << ", \"vecn_ms\": " << qt.vecn_ms
         << ", \"speedup\": " << qt.serial_ms / qt.vecn_ms << "}"
         << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"serial_total_ms\": " << serial_total << ",\n"
       << "  \"vec1_total_ms\": " << vec1_total << ",\n"
       << "  \"vecn_total_ms\": " << vecn_total << ",\n"
       << "  \"speedup_kernels\": " << serial_total / vec1_total << ",\n"
       << "  \"speedup_threads\": " << vec1_total / vecn_total << ",\n"
       << "  \"speedup\": " << speedup << "\n"
       << "}\n";
  std::cout << "wrote BENCH_sim_speed.json\n";
  return 0;
}
