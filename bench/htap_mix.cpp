// Concurrent HTAP serving: a Zipf-skewed read/update mix over the SSB set
// through db::QueryService at 1/2/4/8 workers, checksum-cross-validated
// against a serial oracle.
//
// Reads are the 13 SSB queries drawn with Zipf-skewed popularity; updates
// are Algorithm-1 city renames on the pre-joined relation (UPDATE
// ssb_prejoined SET s_city = <to> WHERE s_city = <from>) with the source
// city drawn Zipf-skewed over the dictionary — a hot-key write pattern on
// top of an analytical scan mix, i.e. the workload shape the paper's
// in-place UPDATE exists for.
//
// Validation, per worker count: every committed update's position in the
// table's log and every read's observed data version (ResultSet::
// data_version) are recorded; a serial oracle then replays the updates in
// committed order on a fresh database, executing each read at the version
// the concurrent run observed. Row checksums and headline stats must match
// exactly, and the final store contents (FNV over every record) must equal
// the oracle's. This is the concurrent-vs-serial equivalence argument of
// the snapshot design — reads serve immutable epoch-pinned snapshots,
// updates copy-on-write a successor version — measured rather than
// asserted.
//
// Emits BENCH_htap_mix.json in the working directory.
//
// Env: BBPIM_SF (default 0.05), BBPIM_HTAP_OPS (statements per run, default
// 64), BBPIM_HTAP_UPDATE_PCT (default 25), BBPIM_HTAP_MAX_WORKERS (default
// 8), BBPIM_THETA (workload skew, default 0.75).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "common/zipf.hpp"
#include "harness.hpp"

namespace {

using namespace bbpim;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

struct Op {
  std::string sql;
  bool is_update = false;
};

struct Done {
  const Op* op;
  db::ResultSet result;
};

/// Order-independent digest of one result's rows.
std::uint64_t row_checksum(const db::ResultSet& rs) {
  std::uint64_t sum = 0;
  for (const auto& row : rs.rows()) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::uint64_t g : row.group) h = (h ^ g) * 1099511628211ULL;
    h = (h ^ static_cast<std::uint64_t>(row.agg)) * 1099511628211ULL;
    sum += h;
  }
  return sum + rs.row_count() * 31;
}

}  // namespace

int main() {
  using Clock = std::chrono::steady_clock;

  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const std::size_t ops = env_u64("BBPIM_HTAP_OPS", 64);
  const std::size_t update_pct = env_u64("BBPIM_HTAP_UPDATE_PCT", 25);
  const std::size_t max_workers = env_u64("BBPIM_HTAP_MAX_WORKERS", 8);

  std::cerr << "[bench] generating SSB (sf=" << cfg.scale_factor << ")...\n";
  ssb::SsbConfig gen;
  gen.scale_factor = cfg.scale_factor;
  gen.zipf_theta = cfg.zipf_theta;
  gen.seed = cfg.seed;
  const ssb::SsbData data = ssb::generate(gen);
  const rel::Table prejoined = ssb::prejoin_ssb(data);
  const std::size_t s_city = *prejoined.schema().index_of("s_city");
  const auto& city_dict = *prejoined.schema().attribute(s_city).dict;

  db::SessionOptions session_opts = bench::bench_session_options(cfg);
  session_opts.verbose = false;
  auto models = std::make_shared<db::ModelCache>(session_opts.model_cache_dir,
                                                 session_opts.model_cache_tag);
  session_opts.models = models;

  // The mixed workload: deterministic Zipf draws over queries and cities.
  const ZipfSampler query_skew(ssb::queries().size(), cfg.zipf_theta);
  const ZipfSampler city_skew(city_dict.size(), cfg.zipf_theta);
  Rng rng(cfg.seed * 1000003 + 17);
  std::vector<Op> workload;
  std::size_t n_updates = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    Op op;
    op.is_update = rng.next_below(100) < update_pct;
    if (op.is_update) {
      const std::string from = city_dict.value(city_skew.sample(rng));
      const std::string to =
          city_dict.value(rng.next_below(city_dict.size()));
      op.sql = "UPDATE ssb_prejoined SET s_city = '" + to +
               "' WHERE s_city = '" + from + "'";
      ++n_updates;
    } else {
      op.sql = std::string(ssb::queries()[query_skew.sample(rng)].sql);
    }
    workload.push_back(std::move(op));
  }

  std::cout << "=== HTAP mix: QueryService reads + Algorithm-1 updates ===\n"
            << "ops/run: " << ops << " (" << n_updates << " updates, "
            << ops - n_updates << " reads), sf=" << cfg.scale_factor
            << ", theta=" << cfg.zipf_theta
            << ", hardware threads: " << std::thread::hardware_concurrency()
            << "\n\n";

  struct RunResult {
    std::size_t workers;
    double wall_ms;
    double qps;
    double read_sim_ms;    ///< mean simulated read latency
    double update_sim_ms;  ///< mean simulated update latency
    std::uint64_t final_version;
    std::uint64_t final_checksum;
    bool parity_ok;
  };
  std::vector<RunResult> runs;

  TablePrinter t({"workers", "wall [ms]", "ops/s", "sim read [ms]",
                  "sim update [ms]", "parity"});
  for (std::size_t workers = 1; workers <= max_workers; workers *= 2) {
    // Fresh catalog per worker count: every run starts from pristine data.
    db::Database database;
    database.register_table(ssb::prejoin_ssb(data));
    db::QueryServiceOptions service_opts;
    service_opts.workers = workers;
    service_opts.session = session_opts;
    db::QueryService service(database, service_opts);
    // Outside the clock: the one shared snapshot-store load + model fit.
    service.warm_up(db::BackendKind::kOneXb);

    const auto start = Clock::now();
    std::vector<std::future<db::ResultSet>> futures;
    futures.reserve(workload.size());
    for (const Op& op : workload) futures.push_back(service.submit(op.sql));
    std::vector<Done> done;
    done.reserve(workload.size());
    for (std::size_t i = 0; i < workload.size(); ++i) {
      done.push_back({&workload[i], futures[i].get()});
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();

    // --- serial-oracle cross-validation ---------------------------------
    // Recover the committed update order, then replay it single-threaded on
    // a fresh database, executing each read at the version it observed.
    std::map<std::uint64_t, const Done*> updates_by_version;
    std::vector<const Done*> reads;
    double read_sim_ns = 0, update_sim_ns = 0;
    for (const Done& d : done) {
      if (d.op->is_update) {
        updates_by_version.emplace(d.result.data_version(), &d);
        update_sim_ns += d.result.update_stats().total_ns;
      } else {
        reads.push_back(&d);
        read_sim_ns += d.result.stats().total_ns;
      }
    }
    std::stable_sort(reads.begin(), reads.end(),
                     [](const Done* a, const Done* b) {
                       return a->result.data_version() <
                              b->result.data_version();
                     });

    db::Database oracle_db;
    oracle_db.register_table(ssb::prejoin_ssb(data));
    db::Session oracle(oracle_db, session_opts);
    bool parity_ok = true;
    std::uint64_t version = 0;
    std::size_t next_read = 0;
    const std::uint64_t final_version = updates_by_version.size();
    while (true) {
      for (; next_read < reads.size() &&
             reads[next_read]->result.data_version() == version;
           ++next_read) {
        const Done& d = *reads[next_read];
        const db::ResultSet serial =
            oracle.execute(d.op->sql, db::BackendKind::kOneXb);
        parity_ok &= row_checksum(serial) == row_checksum(d.result) &&
                     serial.stats().total_ns == d.result.stats().total_ns &&
                     serial.stats().selected_records ==
                         d.result.stats().selected_records;
      }
      if (version == final_version) break;
      const Done& up = *updates_by_version.at(version + 1);
      const db::ResultSet serial_up =
          oracle.execute(up.op->sql, db::BackendKind::kOneXb);
      parity_ok &= serial_up.update_stats().updated_records ==
                       up.result.update_stats().updated_records &&
                   serial_up.update_stats().total_ns ==
                       up.result.update_stats().total_ns;
      ++version;
    }

    // Final contents: a fresh session over the concurrent database replays
    // the full log; its store must equal the oracle's.
    db::Session replayer(database, session_opts);
    replayer.execute("SELECT COUNT(*) FROM ssb_prejoined",
                     db::BackendKind::kOneXb);
    const std::uint64_t concurrent_final =
        replayer.pim_engine(engine::EngineKind::kOneXb)
            .store()
            .contents_checksum();
    const std::uint64_t oracle_final =
        oracle.pim_engine(engine::EngineKind::kOneXb).store().contents_checksum();
    parity_ok &= concurrent_final == oracle_final;
    service.shutdown();

    RunResult run;
    run.workers = workers;
    run.wall_ms = wall_ms;
    run.qps = ops / (wall_ms / 1000.0);
    run.read_sim_ms =
        reads.empty() ? 0 : read_sim_ns / 1e6 / static_cast<double>(reads.size());
    run.update_sim_ms = updates_by_version.empty()
                            ? 0
                            : update_sim_ns / 1e6 /
                                  static_cast<double>(updates_by_version.size());
    run.final_version = final_version;
    run.final_checksum = concurrent_final;
    run.parity_ok = parity_ok;
    runs.push_back(run);

    t.add_row({std::to_string(workers), TablePrinter::fmt(wall_ms, 1),
               TablePrinter::fmt(run.qps, 2),
               TablePrinter::fmt(run.read_sim_ms, 3),
               TablePrinter::fmt(run.update_sim_ms, 3),
               parity_ok ? "ok" : "MISMATCH"});
    if (!parity_ok) {
      std::cerr << "FAIL: serial-oracle parity mismatch at " << workers
                << " workers\n";
      t.print(std::cout);
      return 1;
    }
  }
  t.print(std::cout);

  std::ofstream json("BENCH_htap_mix.json");
  json << "{\n"
       << "  \"bench\": \"htap_mix\",\n"
       << "  \"scale_factor\": " << cfg.scale_factor << ",\n"
       << "  \"ops\": " << ops << ",\n"
       << "  \"updates\": " << n_updates << ",\n"
       << "  \"update_pct\": " << update_pct << ",\n"
       << "  \"zipf_theta\": " << cfg.zipf_theta << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    json << "    {\"workers\": " << r.workers << ", \"wall_ms\": " << r.wall_ms
         << ", \"ops_per_s\": " << r.qps
         << ", \"read_sim_ms\": " << r.read_sim_ms
         << ", \"update_sim_ms\": " << r.update_sim_ms
         << ", \"final_version\": " << r.final_version
         << ", \"final_checksum\": \"" << std::hex << r.final_checksum
         << std::dec << "\", \"parity\": \""
         << (r.parity_ok ? "ok" : "mismatch") << "\"}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"parity\": \"ok\"\n"
       << "}\n";
  std::cout << "\nwrote BENCH_htap_mix.json\n"
            << "Every worker count matched its serial oracle: identical "
               "rows, stats, and final store contents at the observed data "
               "versions.\n";
  return 0;
}
