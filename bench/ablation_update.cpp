// Ablation: UPDATE on the pre-joined relation (Section III, Algorithm 1).
//
// Pre-joining duplicates dimension values into every matching fact record;
// the paper's answer is a pure-PIM read-free update (filter + MUX). This
// bench updates s_city for all records of one city and compares the PIM
// path against the modeled host read-modify-write path across update
// selectivities.
#include <iostream>

#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "engine/prejoin.hpp"
#include "harness.hpp"
#include "sql/parser.hpp"

int main() {
  using namespace bbpim;
  bench::BenchWorld world;
  auto& store = world.engine_of(engine::EngineKind::kOneXb).store();
  const rel::Schema& schema = world.prejoined().schema();
  const std::size_t s_city = *schema.index_of("s_city");
  const auto& dict = *schema.attribute(s_city).dict;

  std::cout << "=== UPDATE via Algorithm 1 vs host read-modify-write ===\n";
  std::cout << "UPDATE prejoined SET s_city = <other> WHERE s_city = <city>\n\n";
  TablePrinter t({"city", "records", "share", "PIM [ms]", "host est. [ms]",
                  "PIM cycles", "host lines read by PIM"});

  // A mix of hot (Zipf head) and cold cities.
  for (const char* city : {"ALGERIA  0", "UNITED ST0", "UNITED KI1",
                           "CHINA    9"}) {
    const auto code = dict.code(city);
    if (!code) continue;
    sql::BoundPredicate where;
    where.kind = sql::BoundPredicate::Kind::kEq;
    where.attr = s_city;
    where.v1 = *code;
    // Rewrite the same code: identical cost (Algorithm 1's work does not
    // depend on the value), and the store stays pristine for other runs.
    const engine::UpdateStats st = engine::pim_update(
        store, world.host_config(), {where}, s_city, *code);
    t.add_row({city, std::to_string(st.updated_records),
               TablePrinter::fmt(100.0 * st.updated_records /
                                     world.prejoined().row_count(),
                                 2) + "%",
               TablePrinter::fmt(units::ns_to_ms(st.total_ns), 3),
               TablePrinter::fmt(units::ns_to_ms(st.host_path_estimate_ns), 3),
               std::to_string(st.cycles), std::to_string(st.host_lines_read)});
  }
  t.print(std::cout);
  std::cout << "\nThe PIM path reads nothing from memory (Algorithm 1's "
               "point); the host path pays the filter-result read plus two "
               "random lines per matching record.\n";
  return 0;
}
