// Ablation: UPDATE on the pre-joined relation (Section III, Algorithm 1).
//
// Pre-joining duplicates dimension values into every matching fact record;
// the paper's answer is a pure-PIM read-free update (filter + MUX). This
// bench drives the full SQL surface — UPDATE ... SET ... WHERE through the
// db facade's prepare/execute path and writer gate — updating s_city for
// all records of one city, and compares the PIM path against the modeled
// host read-modify-write path across update selectivities.
#include <iostream>
#include <string>

#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "harness.hpp"

int main() {
  using namespace bbpim;
  bench::BenchWorld world;
  db::Session& session = world.session();
  const rel::Schema& schema = world.prejoined().schema();
  const std::size_t s_city = *schema.index_of("s_city");
  const auto& dict = *schema.attribute(s_city).dict;

  std::cout << "=== UPDATE via Algorithm 1 vs host read-modify-write ===\n";
  std::cout << "UPDATE ssb_prejoined SET s_city = <city> WHERE s_city = "
               "<city>\n\n";
  TablePrinter t({"city", "records", "share", "PIM [ms]", "host est. [ms]",
                  "PIM cycles", "host lines read by PIM"});

  // A mix of hot (Zipf head) and cold cities. Rewriting the same code has
  // identical cost (Algorithm 1's work does not depend on the value) and
  // keeps the store pristine for other selectivity points.
  for (const char* city : {"ALGERIA  0", "UNITED ST0", "UNITED KI1",
                           "CHINA    9"}) {
    if (!dict.code(city)) continue;
    const std::string sql = std::string("UPDATE ssb_prejoined SET s_city = '") +
                            city + "' WHERE s_city = '" + city + "'";
    const db::ResultSet rs = session.execute(sql, db::BackendKind::kOneXb);
    const engine::UpdateStats& st = rs.update_stats();
    t.add_row({city, std::to_string(st.updated_records),
               TablePrinter::fmt(100.0 * st.updated_records /
                                     world.prejoined().row_count(),
                                 2) + "%",
               TablePrinter::fmt(units::ns_to_ms(st.total_ns), 3),
               TablePrinter::fmt(units::ns_to_ms(st.host_path_estimate_ns), 3),
               std::to_string(st.cycles), std::to_string(st.host_lines_read)});
  }
  t.print(std::cout);
  std::cout << "\nThe PIM path reads nothing from memory (Algorithm 1's "
               "point); the host path pays the filter-result read plus two "
               "random lines per matching record.\nEvery update above "
               "committed through the facade's writer gate (final data "
               "version: "
            << world.database().update_version(world.prejoined()) << ").\n";
  return 0;
}
