// Ablation: memory technology (RRAM vs DRAM vs PCM substrates).
//
// Bulk-bitwise PIM exists on several substrates (Section II-B's citations:
// MAGIC-RRAM [1,3,5], Ambit/SIMDRAM DRAM [2,4], Pinatubo PCM [6]). This
// bench re-runs two representative SSB queries on each technology preset —
// one session per substrate, same geometry, same forced plans, different
// cycle/energy constants — and checks whether the paper's conclusions
// survive the substrate swap, including the ten-year endurance budget of
// each technology.
#include <iostream>

#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "db/db.hpp"
#include "pim/endurance.hpp"
#include "pim/technology.hpp"
#include "ssb/dbgen.hpp"
#include "ssb/queries.hpp"

int main() {
  using namespace bbpim;

  ssb::SsbConfig gen;
  gen.scale_factor = 0.05;
  std::cerr << "[ablation_technology] generating SSB sf=" << gen.scale_factor
            << "...\n";
  const ssb::SsbData data = ssb::generate(gen);

  db::Database database;
  database.register_table(ssb::prejoin_ssb(data));

  for (const char* id : {"1.1", "2.2"}) {
    std::cout << "=== SSB Q" << id << " across technologies ===\n";
    TablePrinter t({"tech", "runtime [ms]", "energy [mJ]", "peak [W/chip]",
                    "10y writes/cell", "budget", "lifetime"});
    for (const pim::Technology tech :
         {pim::Technology::kRram, pim::Technology::kDram,
          pim::Technology::kPcm}) {
      db::SessionOptions opts;
      opts.pim = pim::technology_config(tech);
      db::Session session(database, opts);
      engine::ExecOptions exec;
      exec.force_k = 0;  // identical plans across technologies
      const db::ResultSet out =
          session.execute(ssb::query(id).sql, db::BackendKind::kOneXb, exec);
      const pim::EnduranceReport rep = pim::endurance_report(
          out.stats().wear_row_writes, out.stats().total_ns, opts.pim, 10.0,
          pim::technology_endurance_writes(tech));
      t.add_row({pim::technology_name(tech),
                 TablePrinter::fmt(units::ns_to_ms(out.stats().total_ns), 3),
                 TablePrinter::fmt(out.stats().energy_j * 1e3, 3),
                 TablePrinter::fmt(out.stats().peak_chip_w, 3),
                 TablePrinter::fmt_sci(rep.writes_over_horizon, 2),
                 TablePrinter::fmt_sci(
                     pim::technology_endurance_writes(tech), 0),
                 rep.within_budget
                     ? TablePrinter::fmt(rep.lifetime_years, 0) + " y"
                     : "EXCEEDED"});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "DRAM trades a 3.5x slower logic cycle for unlimited "
               "endurance and cheaper ops; PCM pays heavily on writes. The "
               "paper's RRAM sits between — fast logic, finite but "
               "sufficient endurance.\n";
  return 0;
}
