// Table I: architecture and system configuration.
//
// Prints the PIM module, host, and modeled-server parameters this build
// evaluates, next to the values the paper lists.
#include <iostream>

#include "baseline/monet.hpp"
#include "common/table_printer.hpp"
#include "host/config.hpp"
#include "pim/config.hpp"

int main() {
  using bbpim::TablePrinter;
  const bbpim::pim::PimConfig cfg;
  const bbpim::host::HostConfig hcfg;
  const bbpim::baseline::ServerConfig server;

  std::cout << "=== Table I: Single RRAM PIM Module ===\n";
  TablePrinter pim({"Parameter", "Value", "Paper"});
  pim.add_row({"Total capacity", std::to_string(cfg.capacity_bytes >> 30) + " GB", "32 GB"});
  pim.add_row({"Huge page size", std::to_string(cfg.page_bytes() >> 20) + " MB", "2 MB"});
  pim.add_row({"Memory ranks", "1", "1"});
  pim.add_row({"PIM chips", std::to_string(cfg.chips), "8"});
  pim.add_row({"Crossbar rows", std::to_string(cfg.crossbar_rows), "1024"});
  pim.add_row({"Crossbar columns", std::to_string(cfg.crossbar_cols), "512"});
  pim.add_row({"Crossbar read", std::to_string(cfg.read_bits) + " bit", "16 bit"});
  pim.add_row({"Bulk-bitwise logic cycle", TablePrinter::fmt(cfg.logic_cycle_ns, 0) + " ns", "30 ns"});
  pim.add_row({"Crossbar read energy", TablePrinter::fmt(cfg.read_energy_pj_per_bit, 2) + " pJ/bit", "0.84 pJ/bit"});
  pim.add_row({"Crossbar write energy", TablePrinter::fmt(cfg.write_energy_pj_per_bit, 2) + " pJ/bit", "6.9 pJ/bit"});
  pim.add_row({"Bulk-bitwise logic energy", TablePrinter::fmt(cfg.logic_energy_fj_per_bit, 1) + " fJ/bit", "81.6 fJ/bit"});
  pim.add_row({"Single agg. circuit power", TablePrinter::fmt(cfg.agg_circuit_power_uw, 1) + " uW", "25.4 uW"});
  pim.add_row({"Single PIM controller power", TablePrinter::fmt(cfg.controller_power_uw, 0) + " uW", "126 uW"});
  pim.add_row({"Pages in module", std::to_string(cfg.pages_in_module()), "16384"});
  pim.add_row({"Records per page", std::to_string(cfg.records_per_page()), "32K"});
  pim.print(std::cout);

  std::cout << "\n=== Table I: Evaluation System (host model) ===\n";
  TablePrinter host({"Parameter", "Value", "Paper"});
  host.add_row({"Worker threads", std::to_string(hcfg.threads), "4 (of 6 cores)"});
  host.add_row({"Line transfer (stream)", TablePrinter::fmt(hcfg.line_stream_ns, 0) + " ns", "DDR4-2400"});
  host.add_row({"Line transfer (random)", TablePrinter::fmt(hcfg.line_random_ns, 0) + " ns", "DDR4-2400"});
  host.add_row({"PIM request issue", TablePrinter::fmt(hcfg.issue_ns, 0) + " ns", "uncached store+fence"});
  host.add_row({"Phase overhead", TablePrinter::fmt(hcfg.phase_overhead_ns / 1000.0, 0) + " us", "barrier+fence [18]"});
  host.add_row({"Host agg CPU / record", TablePrinter::fmt(hcfg.cpu_ns_per_record, 0) + " ns", "-"});
  host.print(std::cout);

  std::cout << "\n=== Modeled comparison server (MonetDB host) ===\n";
  TablePrinter srv({"Parameter", "Value", "Paper"});
  srv.add_row({"Column scan rate", TablePrinter::fmt(server.scan_gbps, 0) + " GB/s", "2x16-core Xeon, 256 GB DDR4"});
  srv.add_row({"Hash build / row", TablePrinter::fmt(server.hash_build_ns, 0) + " ns", "-"});
  srv.add_row({"Hash probe / row", TablePrinter::fmt(server.hash_probe_ns, 0) + " ns", "-"});
  srv.add_row({"Agg update / row", TablePrinter::fmt(server.agg_update_ns, 0) + " ns", "-"});
  srv.add_row({"Query startup", TablePrinter::fmt(server.fixed_ns / 1e6, 1) + " ms", "exec-only timing"});
  srv.print(std::cout);
  return 0;
}
