// Fig. 7: PIM memory energy for the SSB queries.
//
// Per-query module energy for the three PIM engines, a category breakdown
// for one_xb, and the paper's headline: when PIMDB aggregates in PIM
// (Q1.1-1.3, Q2.3, Q3.4, Q4.1) it burns ~4.31x more energy than one_xb.
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "harness.hpp"

int main() {
  using namespace bbpim;
  bench::BenchWorld world;
  const auto& runs = world.run_all();

  std::cout << "=== Fig. 7: PIM module energy [mJ] (sf="
            << world.config().scale_factor << ") ===\n";
  TablePrinter t({"Q", "one_xb", "two_xb", "pimdb"});
  for (const auto& r : runs) {
    t.add_row({r.id, TablePrinter::fmt(r.one_xb.stats.energy_j * 1e3, 3),
               TablePrinter::fmt(r.two_xb.stats.energy_j * 1e3, 3),
               TablePrinter::fmt(r.pimdb.stats.energy_j * 1e3, 3)});
  }
  t.print(std::cout);

  std::cout << "\n=== one_xb energy breakdown [mJ] ===\n";
  TablePrinter b({"Q", "logic", "reads", "writes", "controllers", "agg circuit"});
  for (const auto& r : runs) {
    const auto& s = r.one_xb.stats;
    b.add_row({r.id, TablePrinter::fmt(s.energy_logic_j * 1e3, 3),
               TablePrinter::fmt(s.energy_read_j * 1e3, 3),
               TablePrinter::fmt(s.energy_write_j * 1e3, 3),
               TablePrinter::fmt(s.energy_controller_j * 1e3, 3),
               TablePrinter::fmt(s.energy_agg_circuit_j * 1e3, 3)});
  }
  b.print(std::cout);

  // Queries where pimdb's planner chose PIM aggregation.
  std::vector<double> pim_agg_one, pim_agg_pimdb;
  std::cout << "\nQueries where pimdb aggregates in PIM:";
  for (const auto& r : runs) {
    if (r.pimdb.stats.pim_subgroups > 0) {
      std::cout << " Q" << r.id;
      pim_agg_one.push_back(r.one_xb.stats.energy_j);
      pim_agg_pimdb.push_back(r.pimdb.stats.energy_j);
    }
  }
  std::cout << "\n";
  if (!pim_agg_one.empty()) {
    std::cout << "Geo-mean pimdb/one_xb energy on those queries: "
              << TablePrinter::fmt(geomean_ratio(pim_agg_pimdb, pim_agg_one), 2)
              << "x (paper: 4.31x)\n";
  }
  return 0;
}
