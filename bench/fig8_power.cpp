// Fig. 8: peak power drawn by a single PIM chip per SSB query.
//
// The paper's bound: every query stays under 44 W per chip, PIMDB draws
// more than one_xb when both aggregate in PIM, and two_xb's extra pages
// raise the Q1.x peaks.
#include <algorithm>
#include <iostream>

#include "common/table_printer.hpp"
#include "harness.hpp"

int main() {
  using namespace bbpim;
  bench::BenchWorld world;
  const auto& runs = world.run_all();

  std::cout << "=== Fig. 8: peak power per PIM chip [W] (sf="
            << world.config().scale_factor << ") ===\n";
  TablePrinter t({"Q", "one_xb", "two_xb", "pimdb"});
  double worst = 0;
  for (const auto& r : runs) {
    worst = std::max({worst, r.one_xb.stats.peak_chip_w,
                      r.two_xb.stats.peak_chip_w, r.pimdb.stats.peak_chip_w});
    t.add_row({r.id, TablePrinter::fmt(r.one_xb.stats.peak_chip_w, 3),
               TablePrinter::fmt(r.two_xb.stats.peak_chip_w, 3),
               TablePrinter::fmt(r.pimdb.stats.peak_chip_w, 3)});
  }
  t.print(std::cout);
  std::cout << "\nWorst peak across all queries/engines: "
            << TablePrinter::fmt(worst, 2)
            << " W per chip (paper bound: < 44 W)\n";
  std::cout << "Note: peaks scale with concurrently active pages; at small "
               "scale factors (few pages) they sit well below the paper's "
               "SF=10 values. Shape to check: two_xb > one_xb on Q1.x; "
               "pimdb > one_xb where both use PIM aggregation.\n";
  return 0;
}
