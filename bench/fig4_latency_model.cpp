// Fig. 4: empirical latency modeling (Section IV).
//
// Runs the measurement campaign on synthetic relations and prints the three
// panels: (a) T_host-gb vs page count M for (s, r) combinations,
// (b) dT_host-gb/dM vs r per s with the fitted a(s)*sqrt(r)+b(s) curve,
// (c) per-subgroup T_pim-gb vs M per n with the fitted line.
#include <iostream>
#include <map>

#include "common/fit.hpp"
#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "harness.hpp"

int main() {
  using namespace bbpim;
  using engine::EngineKind;

  bench::BenchConfig cfg = bench::BenchConfig::from_env();
  cfg.verbose = false;
  const host::HostConfig hcfg;
  const pim::PimConfig pim_cfg;

  std::cerr << "[fig4] running the fitting campaign (one_xb)...\n";
  const engine::ModelFitResult res = engine::fit_latency_models(
      EngineKind::kOneXb, pim_cfg, hcfg, bench::bench_fit_config());

  // --- Fig. 4a: T_host-gb vs M -------------------------------------------
  std::cout << "=== Fig. 4a: T_host-gb [ms] vs page count M (one_xb) ===\n";
  {
    std::map<std::pair<std::uint32_t, double>, std::map<double, double>> series;
    for (const auto& o : res.host_obs) {
      series[{o.s_or_n, o.r}][o.pages] = o.measured_ns;
    }
    TablePrinter t({"s", "r", "M=2", "M=4", "M=6", "M=8"});
    for (const auto& [key, points] : series) {
      std::vector<std::string> row{std::to_string(key.first),
                                   TablePrinter::fmt(key.second, 3)};
      for (const auto& [m, ns] : points) {
        row.push_back(TablePrinter::fmt(units::ns_to_ms(ns), 3));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  // --- Fig. 4b: slope vs r per s, with the sqrt fit -----------------------
  std::cout << "\n=== Fig. 4b: dT_host-gb/dM [ms/page] vs r, fit a(s)*sqrt(r)+b(s) ===\n";
  {
    TablePrinter t({"s", "r", "measured slope", "fitted", "a(s)", "b(s)", "R^2"});
    for (const auto& [s, fit] : res.models.host_slope) {
      // Recompute the measured slopes from the raw observations.
      std::map<double, std::pair<std::vector<double>, std::vector<double>>> by_r;
      for (const auto& o : res.host_obs) {
        if (o.s_or_n != s) continue;
        by_r[o.r].first.push_back(o.pages);
        by_r[o.r].second.push_back(o.measured_ns);
      }
      for (const auto& [r, mt] : by_r) {
        const LinearFit lf = fit_linear(mt.first, mt.second);
        t.add_row({std::to_string(s), TablePrinter::fmt(r, 3),
                   TablePrinter::fmt(units::ns_to_ms(lf.slope), 4),
                   TablePrinter::fmt(units::ns_to_ms(fit.eval(r)), 4),
                   TablePrinter::fmt(units::ns_to_ms(fit.a), 4),
                   TablePrinter::fmt(units::ns_to_ms(fit.b), 4),
                   TablePrinter::fmt(fit.r2, 3)});
      }
    }
    t.print(std::cout);
  }

  // --- Fig. 4c: T_pim-gb vs M per n ---------------------------------------
  std::cout << "\n=== Fig. 4c: per-subgroup T_pim-gb [ms] vs M, linear fit ===\n";
  {
    TablePrinter t({"n", "M", "measured", "fitted", "slope [ms/page]",
                    "intercept [ms]", "R^2"});
    for (const auto& [n, fit] : res.models.pim_gb) {
      for (const auto& o : res.pim_obs) {
        if (o.s_or_n != n) continue;
        t.add_row({std::to_string(n), TablePrinter::fmt(o.pages, 0),
                   TablePrinter::fmt(units::ns_to_ms(o.measured_ns), 4),
                   TablePrinter::fmt(units::ns_to_ms(fit.eval(o.pages)), 4),
                   TablePrinter::fmt(units::ns_to_ms(fit.slope), 5),
                   TablePrinter::fmt(units::ns_to_ms(fit.intercept), 4),
                   TablePrinter::fmt(fit.r2, 3)});
      }
    }
    t.print(std::cout);
  }

  // --- Engine-kind comparison (the paper refits for two-xb; Section V-A) --
  std::cout << "\n=== Fitted coefficients per engine kind ===\n";
  {
    TablePrinter t({"engine", "model", "key", "a / slope [ms]",
                    "b / const [ms]", "R^2"});
    for (const EngineKind kind : engine::kAllEngineKinds) {
      std::cerr << "[fig4] fitting " << engine_kind_name(kind) << "...\n";
      const engine::ModelFitResult r = engine::fit_latency_models(
          kind, pim_cfg, hcfg, bench::bench_fit_config());
      for (const auto& [s, f] : r.models.host_slope) {
        if (s != 2 && s != 4) continue;  // keep the table compact
        t.add_row({engine_kind_name(kind), "host slope(r)",
                   "s=" + std::to_string(s),
                   TablePrinter::fmt(units::ns_to_ms(f.a), 4),
                   TablePrinter::fmt(units::ns_to_ms(f.b), 4),
                   TablePrinter::fmt(f.r2, 3)});
      }
      for (const auto& [n, f] : r.models.pim_gb) {
        if (n != 1 && n != 2) continue;
        t.add_row({engine_kind_name(kind), "pim-gb T(M)",
                   "n=" + std::to_string(n),
                   TablePrinter::fmt(units::ns_to_ms(f.slope), 5),
                   TablePrinter::fmt(units::ns_to_ms(f.intercept), 4),
                   TablePrinter::fmt(f.r2, 3)});
      }
    }
    t.print(std::cout);
  }
  std::cout << "\nPaper shape checks: T_host-gb linear in M with concave "
               "slope(r); T_pim-gb linear in M, slope increasing with n; "
               "two_xb's pim-gb constant carries the inter-part transfer; "
               "pimdb's carries the bit-serial reduction.\n";
  return 0;
}
