// Fig. 5: PIM chip area breakdown.
//
// Prints the NVSim-style analytic breakdown next to the paper's published
// percentages, plus the no-aggregation-circuit (PIMDB) chip as an ablation.
#include <iostream>
#include <map>
#include <string>

#include "common/table_printer.hpp"
#include "pim/area_model.hpp"

int main() {
  using namespace bbpim;
  const pim::PimConfig cfg;
  const pim::AreaBreakdown full = pim::compute_area(cfg);

  const std::map<std::string, double> paper_percent = {
      {"Crossbar peripherals", 40.4}, {"Crossbars", 19.24},
      {"Bank peripherals", 18.83},    {"Aggregation circuits", 13.9},
      {"PIM controllers", 6.84},      {"Wires", 0.76},
  };

  std::cout << "=== Fig. 5: PIM chip area breakdown ===\n";
  TablePrinter t({"Component", "Area [mm^2]", "Share [%]", "Paper [%]"});
  for (const auto& c : full.components) {
    const auto it = paper_percent.find(c.name);
    t.add_row({c.name, TablePrinter::fmt(c.area_mm2, 1),
               TablePrinter::fmt(c.percent, 2),
               it != paper_percent.end() ? TablePrinter::fmt(it->second, 2)
                                         : "-"});
  }
  t.print(std::cout);
  std::cout << "Chip total: " << TablePrinter::fmt(full.chip_total_mm2, 1)
            << " mm^2 (paper: 346 mm^2); module ("
            << cfg.chips << " chips): "
            << TablePrinter::fmt(full.module_total_mm2, 0) << " mm^2\n";

  // Ablation: the PIMDB chip drops the per-crossbar ALUs.
  pim::AreaParams no_agg;
  no_agg.include_agg_circuit = false;
  const pim::AreaBreakdown pimdb = pim::compute_area(cfg, no_agg);
  std::cout << "\n=== Ablation: chip without aggregation circuits (PIMDB) ===\n";
  std::cout << "Chip total: " << TablePrinter::fmt(pimdb.chip_total_mm2, 1)
            << " mm^2 -> the aggregation circuits cost "
            << TablePrinter::fmt(full.chip_total_mm2 - pimdb.chip_total_mm2, 1)
            << " mm^2 ("
            << TablePrinter::fmt(
                   100.0 * (full.chip_total_mm2 - pimdb.chip_total_mm2) /
                       full.chip_total_mm2,
                   1)
            << "% of the chip)\n";
  return 0;
}
