#include "harness.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "pim/endurance.hpp"
#include "sql/parser.hpp"

namespace bbpim::bench {
namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

std::string model_cache_path(engine::EngineKind kind, const BenchConfig& cfg) {
  std::ostringstream ss;
  ss << "bbpim_models_" << engine_kind_name(kind) << "_sf"
     << cfg.scale_factor << ".txt";
  return ss.str();
}

}  // namespace

BenchConfig BenchConfig::from_env() {
  BenchConfig cfg;
  cfg.scale_factor = env_double("BBPIM_SF", cfg.scale_factor);
  cfg.zipf_theta = env_double("BBPIM_THETA", cfg.zipf_theta);
  cfg.seed = env_u64("BBPIM_SEED", cfg.seed);
  return cfg;
}

double QueryRun::endurance_cycles(const engine::QueryStats& s,
                                  std::uint32_t row_cells) {
  if (s.total_ns <= 0) return 0;
  pim::PimConfig cfg;
  cfg.crossbar_cols = row_cells;
  return pim::endurance_report(s.wear_row_writes, s.total_ns, cfg)
      .writes_over_horizon;
}

engine::FitConfig bench_fit_config() {
  engine::FitConfig fit;
  fit.page_counts = {2, 4, 6, 8};
  fit.ratios = {0.005, 0.02, 0.08, 0.2, 0.5, 0.8};
  fit.s_values = {2, 3, 4, 5};
  fit.n_values = {1, 2, 3};
  return fit;
}

BenchWorld::BenchWorld(BenchConfig cfg) : cfg_(cfg) {
  if (cfg_.verbose) {
    std::cerr << "[bench] generating SSB (sf=" << cfg_.scale_factor
              << ", theta=" << cfg_.zipf_theta << ", seed=" << cfg_.seed
              << ")...\n";
  }
  ssb::SsbConfig gen;
  gen.scale_factor = cfg_.scale_factor;
  gen.zipf_theta = cfg_.zipf_theta;
  gen.seed = cfg_.seed;
  data_ = ssb::generate(gen);
  prejoined_ = ssb::prejoin_ssb(data_);
  if (cfg_.verbose) {
    std::cerr << "[bench] pre-joined relation: " << prejoined_.row_count()
              << " records, " << prejoined_.schema().record_bits()
              << " bits/record\n";
  }

  module_one_ = std::make_unique<pim::PimModule>(pim_cfg_);
  store_one_ = std::make_unique<engine::PimStore>(*module_one_, prejoined_);
  module_two_ = std::make_unique<pim::PimModule>(pim_cfg_);
  engine::PimStore::Options two_opt;
  two_opt.two_crossbar = true;
  store_two_ =
      std::make_unique<engine::PimStore>(*module_two_, prejoined_, two_opt);
  module_pimdb_ = std::make_unique<pim::PimModule>(pim_cfg_);
  store_pimdb_ = std::make_unique<engine::PimStore>(*module_pimdb_, prejoined_);

  one_xb_ = std::make_unique<engine::PimQueryEngine>(
      engine::EngineKind::kOneXb, *store_one_, host_cfg_,
      fit_or_load(engine::EngineKind::kOneXb));
  two_xb_ = std::make_unique<engine::PimQueryEngine>(
      engine::EngineKind::kTwoXb, *store_two_, host_cfg_,
      fit_or_load(engine::EngineKind::kTwoXb));
  pimdb_ = std::make_unique<engine::PimQueryEngine>(
      engine::EngineKind::kPimdb, *store_pimdb_, host_cfg_,
      fit_or_load(engine::EngineKind::kPimdb));
  monet_ = std::make_unique<baseline::MonetLikeEngine>(data_, prejoined_);
}

engine::LatencyModels BenchWorld::fit_or_load(engine::EngineKind kind) {
  const std::string path = model_cache_path(kind, cfg_);
  if (std::ifstream in(path); in.good()) {
    if (cfg_.verbose) {
      std::cerr << "[bench] loading cached models from " << path << "\n";
    }
    return engine::LatencyModels::load(in);
  }
  if (cfg_.verbose) {
    std::cerr << "[bench] fitting latency models for "
              << engine_kind_name(kind) << " (cached to " << path << ")...\n";
  }
  const engine::ModelFitResult res =
      engine::fit_latency_models(kind, pim_cfg_, host_cfg_, bench_fit_config());
  if (std::ofstream out(path); out.good()) res.models.save(out);
  return res.models;
}

engine::PimQueryEngine& BenchWorld::engine_of(engine::EngineKind kind) {
  switch (kind) {
    case engine::EngineKind::kOneXb: return *one_xb_;
    case engine::EngineKind::kTwoXb: return *two_xb_;
    case engine::EngineKind::kPimdb: return *pimdb_;
  }
  throw std::logic_error("engine_of: bad kind");
}

const engine::LatencyModels& BenchWorld::models(engine::EngineKind kind) {
  return engine_of(kind).models();
}

engine::ModelFitResult BenchWorld::fit_result(engine::EngineKind kind) {
  return engine::fit_latency_models(kind, pim_cfg_, host_cfg_,
                                    bench_fit_config());
}

const std::vector<QueryRun>& BenchWorld::run_all() {
  if (!runs_.empty()) return runs_;
  for (const auto& q : ssb::queries()) {
    if (cfg_.verbose) std::cerr << "[bench] running Q" << q.id << "...\n";
    QueryRun run;
    run.id = std::string(q.id);
    const sql::BoundQuery bound =
        sql::bind(sql::parse(q.sql), prejoined_.schema());
    run.one_xb = one_xb_->execute(bound);
    run.two_xb = two_xb_->execute(bound);
    run.pimdb = pimdb_->execute(bound);
    run.mnt_join = monet_->execute_prejoined(bound);
    run.mnt_reg = monet_->execute_star(bound);
    runs_.push_back(std::move(run));
  }
  return runs_;
}

}  // namespace bbpim::bench
