#include "harness.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "pim/endurance.hpp"

namespace bbpim::bench {
namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

ssb::SsbData generate_data(const BenchConfig& cfg) {
  if (cfg.verbose) {
    std::cerr << "[bench] generating SSB (sf=" << cfg.scale_factor
              << ", theta=" << cfg.zipf_theta << ", seed=" << cfg.seed
              << ")...\n";
  }
  ssb::SsbConfig gen;
  gen.scale_factor = cfg.scale_factor;
  gen.zipf_theta = cfg.zipf_theta;
  gen.seed = cfg.seed;
  return ssb::generate(gen);
}

db::Database make_database(const ssb::SsbData& data, const BenchConfig& cfg) {
  db::Database db;
  const rel::Table& prejoined = db.register_table(ssb::prejoin_ssb(data));
  if (cfg.verbose) {
    std::cerr << "[bench] pre-joined relation: " << prejoined.row_count()
              << " records, " << prejoined.schema().record_bits()
              << " bits/record\n";
  }
  return db;
}

}  // namespace

BenchConfig BenchConfig::from_env() {
  BenchConfig cfg;
  cfg.scale_factor = env_double("BBPIM_SF", cfg.scale_factor);
  cfg.zipf_theta = env_double("BBPIM_THETA", cfg.zipf_theta);
  cfg.seed = env_u64("BBPIM_SEED", cfg.seed);
  return cfg;
}

double QueryRun::endurance_cycles(const engine::QueryStats& s,
                                  std::uint32_t row_cells) {
  if (s.total_ns <= 0) return 0;
  pim::PimConfig cfg;
  cfg.crossbar_cols = row_cells;
  return pim::endurance_report(s.wear_row_writes, s.total_ns, cfg)
      .writes_over_horizon;
}

engine::FitConfig bench_fit_config() {
  engine::FitConfig fit;
  fit.page_counts = {2, 4, 6, 8};
  fit.ratios = {0.005, 0.02, 0.08, 0.2, 0.5, 0.8};
  fit.s_values = {2, 3, 4, 5};
  fit.n_values = {1, 2, 3};
  return fit;
}

db::SessionOptions bench_session_options(const BenchConfig& cfg) {
  db::SessionOptions opts;
  opts.fit = bench_fit_config();
  opts.model_cache_dir = ".";
  std::ostringstream tag;
  tag << "_sf" << cfg.scale_factor;
  opts.model_cache_tag = tag.str();
  opts.verbose = cfg.verbose;
  return opts;
}

BenchWorld::BenchWorld(BenchConfig cfg)
    : cfg_(cfg),
      data_(generate_data(cfg_)),
      db_(make_database(data_, cfg_)),
      session_(db_, bench_session_options(cfg_)) {
  monet_ = std::make_unique<baseline::MonetLikeEngine>(data_, prejoined());
}

engine::ModelFitResult BenchWorld::fit_result(engine::EngineKind kind) {
  return engine::fit_latency_models(kind, pim_config(), host_config(),
                                    bench_fit_config());
}

const std::vector<QueryRun>& BenchWorld::run_all() {
  if (!runs_.empty()) return runs_;
  for (const auto& q : ssb::queries()) {
    if (cfg_.verbose) std::cerr << "[bench] running Q" << q.id << "...\n";
    const db::PreparedStatement stmt = session_.prepare(q.sql);
    QueryRun run;
    run.id = std::string(q.id);
    run.one_xb = stmt.execute(db::BackendKind::kOneXb).output();
    run.two_xb = stmt.execute(db::BackendKind::kTwoXb).output();
    run.pimdb = stmt.execute(db::BackendKind::kPimdb).output();
    run.mnt_join = monet_->execute_prejoined(stmt.bound());
    run.mnt_reg = monet_->execute_star(stmt.bound());
    if (cfg_.verbose) {
      // FilterCache and zone-map effectiveness of the one-xb run (the
      // counters are all-zero unless ExecOptions::prune was on).
      const engine::QueryStats& s = run.one_xb.stats;
      std::cerr << "[bench]   filter-cache hits/misses="
                << s.filter_cache_hits << "/" << s.filter_cache_misses
                << ", crossbars skipped=" << s.crossbars_skipped
                << " (pages " << s.pages_skipped << "+"
                << s.group_pages_skipped << " gb), predicates short-circuited="
                << s.predicates_short_circuited << "\n";
    }
    runs_.push_back(std::move(run));
  }
  return runs_;
}

}  // namespace bbpim::bench
