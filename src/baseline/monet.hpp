// MonetDB-like in-memory columnar baseline (the paper's comparison system).
//
// The paper compares against MonetDB on a 2x16-core Xeon server in two
// configurations: mnt-reg (original star schema, hash equi-joins) and
// mnt-join (scanning the same pre-joined relation the PIM engines use).
// We rebuild that comparator as (a) a functional columnar executor — which
// doubles as the correctness oracle — and (b) a deterministic cost model of
// a column-at-a-time engine on such a server: full-column predicate scans,
// hash builds on qualifying dimension rows, FK probe cascades ordered by
// selectivity, and per-survivor aggregation. Deterministic modeled time
// keeps the benchmark machine-independent; real wall time is also reported
// for reference (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <string>

#include "baseline/reference.hpp"
#include "common/units.hpp"
#include "relational/table.hpp"
#include "sql/logical_plan.hpp"
#include "ssb/dbgen.hpp"

namespace bbpim::baseline {

/// Cost parameters of the modeled 32-core DDR4 server.
struct ServerConfig {
  double scan_gbps = 12.0;        ///< effective aggregate column-scan rate
  TimeNs hash_build_ns = 18.0;    ///< per qualifying dimension row
  TimeNs hash_probe_ns = 25.0;    ///< per surviving fact row, per join
  TimeNs agg_update_ns = 10.0;    ///< per fully-qualified row
  TimeNs output_ns = 120.0;       ///< per result group
  TimeNs fixed_ns = 1.0e6;        ///< query startup (execution only)
  std::uint32_t value_bytes = 4;  ///< columnar width of encoded values
};

struct BaselineRun {
  std::vector<engine::ResultRow> rows;
  TimeNs model_ns = 0;       ///< deterministic modeled execution time
  TimeNs wall_ns = 0;        ///< measured wall time of the functional scan
  std::size_t selected_records = 0;
  std::uint64_t scanned_bytes = 0;
  std::uint64_t hash_probes = 0;
};

class MonetLikeEngine {
 public:
  /// `data` supplies the dimension tables for mnt-reg join costing;
  /// `prejoined` is the denormalized relation (also used functionally).
  MonetLikeEngine(const ssb::SsbData& data, const rel::Table& prejoined,
                  ServerConfig cfg = {});

  /// mnt-join: scan the pre-joined relation.
  BaselineRun execute_prejoined(const sql::BoundQuery& q) const;

  /// mnt-reg: star-schema plan with hash joins against the dimensions.
  BaselineRun execute_star(const sql::BoundQuery& q) const;

  const ServerConfig& config() const { return cfg_; }

 private:
  /// Fraction of `table` rows matching the query predicates that target it.
  double table_selectivity(const rel::Table& table, const sql::BoundQuery& q,
                           std::size_t* pred_attr_count) const;

  const ssb::SsbData* data_;
  const rel::Table* prejoined_;
  ServerConfig cfg_;
};

}  // namespace bbpim::baseline
