#include "baseline/reference.hpp"

#include <algorithm>
#include <unordered_map>

namespace bbpim::baseline {
namespace {

struct KeyHash {
  std::size_t operator()(const std::vector<std::uint64_t>& k) const {
    std::size_t h = 1469598103934665603ULL;
    for (const std::uint64_t v : k) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace

ReferenceRun scan_execute(const rel::Table& table, const sql::BoundQuery& q) {
  ReferenceRun run;
  std::unordered_map<std::vector<std::uint64_t>, std::int64_t, KeyHash> groups;
  std::int64_t no_group_acc = 0;
  bool no_group_any = false;

  for (std::size_t r = 0; r < table.row_count(); ++r) {
    bool pass = true;
    for (const sql::BoundPredicate& p : q.filters) {
      if (p.kind == sql::BoundPredicate::Kind::kAlways) continue;
      if (!p.matches(table.value(r, p.attr))) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    ++run.selected_records;

    std::int64_t v = 1;
    if (q.agg_func != sql::AggFunc::kCount) {
      const std::uint64_t va = table.value(r, q.agg_expr.a);
      const std::uint64_t vb = q.agg_expr.kind == sql::Expr::Kind::kColumn
                                   ? 0
                                   : table.value(r, q.agg_expr.b);
      v = static_cast<std::int64_t>(q.agg_expr.eval(va, vb));
    }

    if (!q.has_group_by()) {
      if (q.agg_func == sql::AggFunc::kMin) {
        no_group_acc = no_group_any ? std::min(no_group_acc, v) : v;
      } else if (q.agg_func == sql::AggFunc::kMax) {
        no_group_acc = no_group_any ? std::max(no_group_acc, v) : v;
      } else {
        no_group_acc += v;
      }
      no_group_any = true;
      continue;
    }

    std::vector<std::uint64_t> key;
    key.reserve(q.group_by.size());
    for (const std::size_t a : q.group_by) key.push_back(table.value(r, a));
    auto [it, fresh] = groups.try_emplace(std::move(key), 0);
    if (q.agg_func == sql::AggFunc::kMin) {
      it->second = fresh ? v : std::min(it->second, v);
    } else if (q.agg_func == sql::AggFunc::kMax) {
      it->second = fresh ? v : std::max(it->second, v);
    } else {
      it->second += v;
    }
  }

  if (!q.has_group_by()) {
    // One row always, 0 on empty selection (matching the PIM engine).
    run.rows.push_back(engine::ResultRow{{}, no_group_any ? no_group_acc : 0});
    return run;
  }

  for (auto& [key, agg] : groups) {
    run.rows.push_back(engine::ResultRow{key, agg});
  }
  std::sort(run.rows.begin(), run.rows.end(),
            [&](const engine::ResultRow& a, const engine::ResultRow& b) {
              for (const sql::BoundOrderItem& o : q.order_by) {
                if (o.is_agg) {
                  if (a.agg != b.agg) {
                    return o.desc ? a.agg > b.agg : a.agg < b.agg;
                  }
                } else {
                  const std::uint64_t va = a.group[o.group_pos];
                  const std::uint64_t vb = b.group[o.group_pos];
                  if (va != vb) return o.desc ? va > vb : va < vb;
                }
              }
              return a.group < b.group;
            });
  return run;
}

}  // namespace bbpim::baseline
