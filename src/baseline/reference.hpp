// Scalar reference executor: the semantics oracle.
//
// Executes a bound query by scanning a host-resident table row by row.
// Every PIM engine variant must produce byte-identical result rows — the
// property tests enforce it. Also the functional core of the MonetDB-like
// baseline.
#pragma once

#include <vector>

#include "engine/query_exec.hpp"
#include "relational/table.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::baseline {

struct ReferenceRun {
  std::vector<engine::ResultRow> rows;
  std::size_t selected_records = 0;
};

/// Exact scan-based execution over the (pre-joined) relation.
ReferenceRun scan_execute(const rel::Table& table, const sql::BoundQuery& q);

}  // namespace bbpim::baseline
