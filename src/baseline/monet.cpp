#include "baseline/monet.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace bbpim::baseline {
namespace {

/// Routes a pre-joined attribute name to its source table by SSB prefix.
const rel::Table* source_table(const ssb::SsbData& data,
                               const std::string& name) {
  if (name.rfind("lo_", 0) == 0) return &data.lineorder;
  if (name.rfind("d_", 0) == 0) return &data.date;
  if (name.rfind("c_", 0) == 0) return &data.customer;
  if (name.rfind("s_", 0) == 0) return &data.supplier;
  if (name.rfind("p_", 0) == 0) return &data.part;
  return nullptr;
}

BaselineRun run_functional(const rel::Table& prejoined,
                           const sql::BoundQuery& q) {
  BaselineRun run;
  const auto t0 = std::chrono::steady_clock::now();
  ReferenceRun ref = scan_execute(prejoined, q);
  const auto t1 = std::chrono::steady_clock::now();
  run.rows = std::move(ref.rows);
  run.selected_records = ref.selected_records;
  run.wall_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return run;
}

}  // namespace

MonetLikeEngine::MonetLikeEngine(const ssb::SsbData& data,
                                 const rel::Table& prejoined, ServerConfig cfg)
    : data_(&data), prejoined_(&prejoined), cfg_(cfg) {}

double MonetLikeEngine::table_selectivity(const rel::Table& table,
                                          const sql::BoundQuery& q,
                                          std::size_t* pred_attr_count) const {
  // Collect the query predicates that bind to attributes of `table`.
  struct Bound {
    std::size_t col;  // column in `table`
    const sql::BoundPredicate* pred;
  };
  std::vector<Bound> preds;
  for (const sql::BoundPredicate& p : q.filters) {
    if (p.kind == sql::BoundPredicate::Kind::kAlways) continue;
    const std::string& name = prejoined_->schema().attribute(p.attr).name;
    const auto col = table.schema().index_of(name);
    if (col) preds.push_back({*col, &p});
  }
  if (pred_attr_count != nullptr) *pred_attr_count = preds.size();
  if (preds.empty()) return 1.0;

  std::size_t pass = 0;
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    bool ok = true;
    for (const Bound& b : preds) {
      if (!b.pred->matches(table.value(r, b.col))) {
        ok = false;
        break;
      }
    }
    pass += ok;
  }
  return table.row_count() > 0
             ? static_cast<double>(pass) / static_cast<double>(table.row_count())
             : 0.0;
}

BaselineRun MonetLikeEngine::execute_prejoined(const sql::BoundQuery& q) const {
  BaselineRun run = run_functional(*prejoined_, q);

  // Column-at-a-time scan: every referenced column is read in full; the
  // aggregation input is fetched only for survivors.
  std::size_t scanned_cols = 0;
  for (const sql::BoundPredicate& p : q.filters) {
    if (p.kind != sql::BoundPredicate::Kind::kAlways) ++scanned_cols;
  }
  scanned_cols += q.group_by.size();
  std::size_t agg_cols = 0;
  if (q.agg_func != sql::AggFunc::kCount) {
    agg_cols = q.agg_expr.kind == sql::Expr::Kind::kColumn ? 1 : 2;
  }
  const std::uint64_t rows = prejoined_->row_count();
  run.scanned_bytes =
      rows * scanned_cols * cfg_.value_bytes +
      static_cast<std::uint64_t>(run.selected_records) * agg_cols *
          cfg_.value_bytes;

  run.model_ns = cfg_.fixed_ns +
                 static_cast<double>(run.scanned_bytes) / cfg_.scan_gbps +
                 static_cast<double>(run.selected_records) * cfg_.agg_update_ns +
                 static_cast<double>(run.rows.size()) * cfg_.output_ns;
  return run;
}

BaselineRun MonetLikeEngine::execute_star(const sql::BoundQuery& q) const {
  BaselineRun run = run_functional(*prejoined_, q);

  const std::uint64_t fact_rows = data_->lineorder.row_count();
  std::uint64_t scanned = 0;

  // Fact-local predicates: full-column scans, then the surviving fraction.
  std::size_t fact_pred_cols = 0;
  const double fact_sel =
      table_selectivity(data_->lineorder, q, &fact_pred_cols);
  scanned += fact_rows * fact_pred_cols * cfg_.value_bytes;

  // Dimensions touched by predicates or group columns join via hash.
  struct DimJoin {
    const rel::Table* dim;
    double sel;
    std::size_t pred_cols;
    std::size_t payload_cols;
  };
  std::vector<DimJoin> joins;
  const rel::Table* const dims[] = {&data_->date, &data_->customer,
                                    &data_->supplier, &data_->part};
  for (const rel::Table* dim : dims) {
    DimJoin j{dim, 1.0, 0, 0};
    j.sel = table_selectivity(*dim, q, &j.pred_cols);
    for (const std::size_t g : q.group_by) {
      const std::string& name = prejoined_->schema().attribute(g).name;
      if (dim->schema().index_of(name)) ++j.payload_cols;
    }
    if (j.pred_cols > 0 || j.payload_cols > 0) joins.push_back(j);
  }
  // Most selective join first (standard star-join ordering).
  std::sort(joins.begin(), joins.end(),
            [](const DimJoin& a, const DimJoin& b) { return a.sel < b.sel; });

  TimeNs join_ns = 0;
  double surviving = static_cast<double>(fact_rows) * fact_sel;
  for (const DimJoin& j : joins) {
    const std::uint64_t dim_rows = j.dim->row_count();
    // Scan predicate columns + key, build hash of qualifying rows.
    scanned += dim_rows * (j.pred_cols + 1 + j.payload_cols) * cfg_.value_bytes;
    join_ns += dim_rows * j.sel * cfg_.hash_build_ns;
    // Scan the FK column, probe for the current candidate set.
    scanned += fact_rows * cfg_.value_bytes;
    join_ns += surviving * cfg_.hash_probe_ns;
    run.hash_probes += static_cast<std::uint64_t>(surviving);
    surviving *= j.sel;
  }

  // Aggregation-input fetch for fully-qualified rows.
  std::size_t agg_cols = 0;
  if (q.agg_func != sql::AggFunc::kCount) {
    agg_cols = q.agg_expr.kind == sql::Expr::Kind::kColumn ? 1 : 2;
  }
  scanned += static_cast<std::uint64_t>(run.selected_records) *
             (agg_cols + q.group_by.size()) * cfg_.value_bytes;

  run.scanned_bytes = scanned;
  run.model_ns = cfg_.fixed_ns + static_cast<double>(scanned) / cfg_.scan_gbps +
                 join_ns +
                 static_cast<double>(run.selected_records) * cfg_.agg_update_ns +
                 static_cast<double>(run.rows.size()) * cfg_.output_ns;
  return run;
}

}  // namespace bbpim::baseline
