#include "engine/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bbpim::engine {

std::function<int(const std::string&)> PartitionPlan::to_part_function(
    const rel::Schema& schema) const {
  // Capture a name->part map by value so the function outlives the plan.
  std::vector<std::pair<std::string, int>> mapping;
  mapping.reserve(part_of.size());
  for (std::size_t a = 0; a < part_of.size(); ++a) {
    mapping.emplace_back(schema.attribute(a).name, part_of[a]);
  }
  return [mapping](const std::string& name) {
    for (const auto& [n, p] : mapping) {
      if (n == name) return p;
    }
    throw std::invalid_argument("partition: unknown attribute '" + name + "'");
  };
}

PartitionPlan plan_vertical_partition(const rel::Schema& schema,
                                      const pim::PimConfig& cfg,
                                      std::span<const std::size_t> hot_attrs,
                                      std::uint32_t scratch_reserve) {
  const std::size_t n = schema.attribute_count();
  if (n == 0) throw std::invalid_argument("partition: empty schema");
  if (scratch_reserve + 1 >= cfg.crossbar_cols) {
    throw std::invalid_argument("partition: scratch reserve exceeds the row");
  }
  // Capacity per part: the row minus the validity bit and scratch headroom.
  const std::uint32_t capacity = cfg.crossbar_cols - 1 - scratch_reserve;
  for (std::size_t a = 0; a < n; ++a) {
    if (schema.attribute(a).bits > capacity) {
      throw std::invalid_argument("partition: attribute '" +
                                  schema.attribute(a).name +
                                  "' is wider than a part's capacity");
    }
  }

  // Placement order: hot attributes first (priority order), then the rest
  // by descending width (classic first-fit-decreasing).
  std::vector<bool> is_hot(n, false);
  std::vector<std::size_t> order;
  for (const std::size_t a : hot_attrs) {
    if (a >= n) throw std::out_of_range("partition: bad hot attribute index");
    if (!is_hot[a]) {
      is_hot[a] = true;
      order.push_back(a);
    }
  }
  std::vector<std::size_t> cold;
  for (std::size_t a = 0; a < n; ++a) {
    if (!is_hot[a]) cold.push_back(a);
  }
  std::sort(cold.begin(), cold.end(), [&](std::size_t x, std::size_t y) {
    const std::uint32_t bx = schema.attribute(x).bits;
    const std::uint32_t by = schema.attribute(y).bits;
    if (bx != by) return bx > by;
    return x < y;
  });
  order.insert(order.end(), cold.begin(), cold.end());

  PartitionPlan plan;
  plan.part_of.assign(n, -1);
  std::vector<std::uint32_t> used;
  for (const std::size_t a : order) {
    const std::uint32_t bits = schema.attribute(a).bits;
    int placed = -1;
    // First-fit; hot attributes were ordered first, so they claim part 0
    // until it fills — the Section III locality heuristic.
    for (std::size_t p = 0; p < used.size(); ++p) {
      if (used[p] + bits <= capacity) {
        placed = static_cast<int>(p);
        break;
      }
    }
    if (placed < 0) {
      used.push_back(0);
      placed = static_cast<int>(used.size() - 1);
    }
    used[static_cast<std::size_t>(placed)] += bits;
    plan.part_of[a] = placed;
  }
  plan.parts = static_cast<int>(used.size());
  plan.bits_used = std::move(used);
  return plan;
}

}  // namespace bbpim::engine
