#include "engine/latency_model.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace bbpim::engine {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kOneXb: return "one_xb";
    case EngineKind::kTwoXb: return "two_xb";
    case EngineKind::kPimdb: return "pimdb";
  }
  return "?";
}

std::optional<EngineKind> parse_engine_kind(std::string_view name) {
  for (const EngineKind kind : kAllEngineKinds) {
    if (name == engine_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

namespace {

/// Nearest key in a lookup table (s and n are small discrete sets).
template <typename V>
const V& nearest(const std::map<std::uint32_t, V>& table, std::uint32_t key,
                 const char* what) {
  if (table.empty()) throw std::logic_error(std::string(what) + ": empty model");
  auto it = table.lower_bound(key);
  if (it == table.end()) return std::prev(it)->second;
  if (it->first == key || it == table.begin()) return it->second;
  const auto below = std::prev(it);
  return (key - below->first) <= (it->first - key) ? below->second : it->second;
}

}  // namespace

TimeNs LatencyModels::host_gb_ns(double pages, std::uint32_t s, double r) const {
  const SqrtFit& slope = nearest(host_slope, s, "host_gb_ns");
  if (r < 0) r = 0;
  if (r > 1) r = 1;
  return pages * slope.eval(r);
}

TimeNs LatencyModels::pim_gb_ns(double pages, std::uint32_t n) const {
  const LinearFit& fit = nearest(pim_gb, n, "pim_gb_ns");
  return fit.eval(pages);
}

void LatencyModels::save(std::ostream& os, std::uint64_t fingerprint) const {
  os.precision(17);
  if (fingerprint != 0) os << "fingerprint " << fingerprint << '\n';
  for (const auto& [s, f] : host_slope) {
    os << "host " << s << ' ' << f.a << ' ' << f.b << ' ' << f.r2 << '\n';
  }
  for (const auto& [n, f] : pim_gb) {
    os << "pim " << n << ' ' << f.slope << ' ' << f.intercept << ' ' << f.r2
       << '\n';
  }
}

LatencyModels LatencyModels::load(std::istream& is,
                                  std::uint64_t* fingerprint) {
  if (fingerprint != nullptr) *fingerprint = 0;
  LatencyModels m;
  std::string kind;
  while (is >> kind) {
    std::uint32_t key = 0;
    if (kind == "fingerprint") {
      std::uint64_t value = 0;
      if (!(is >> value)) {
        throw std::runtime_error("LatencyModels::load: bad fingerprint line");
      }
      if (fingerprint != nullptr) *fingerprint = value;
    } else if (kind == "host") {
      SqrtFit f;
      if (!(is >> key >> f.a >> f.b >> f.r2)) {
        throw std::runtime_error("LatencyModels::load: bad host line");
      }
      m.host_slope.emplace(key, f);
    } else if (kind == "pim") {
      LinearFit f;
      if (!(is >> key >> f.slope >> f.intercept >> f.r2)) {
        throw std::runtime_error("LatencyModels::load: bad pim line");
      }
      m.pim_gb.emplace(key, f);
    } else {
      throw std::runtime_error("LatencyModels::load: unknown record '" +
                               kind + "'");
    }
  }
  return m;
}

}  // namespace bbpim::engine
