// Fitting the empirical latency models (Section IV, Fig. 4).
//
// Like the paper, the models are obtained by measurement, not derivation:
// we build synthetic relations of M pages, run the executor with a forced
// GROUP-BY split, record the host-gb and pim-gb phase latencies, and fit
//   dT_host-gb/dM (r; s)  =  a(s) * sqrt(r) + b(s)          (Fig. 4b)
//   T_pim-gb (M; n)       =  slope(n) * M + const(n)        (Fig. 4c)
// with a(s), b(s), slope(n), const(n) as lookup tables over the discrete
// chunk counts s and n. The raw observations are returned so the Fig. 4
// bench can print measurement-vs-fit series.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/latency_model.hpp"
#include "host/config.hpp"
#include "pim/config.hpp"

namespace bbpim::engine {

struct FitConfig {
  std::vector<std::size_t> page_counts = {4, 8, 12, 16};
  std::vector<double> ratios = {0.005, 0.02, 0.08, 0.2, 0.4, 0.8};
  std::vector<std::uint32_t> s_values = {2, 3, 4, 5};
  std::vector<std::uint32_t> n_values = {1, 2, 3, 4};
  std::uint64_t seed = 7;
};

struct FitObservation {
  double pages = 0;
  std::uint32_t s_or_n = 0;
  double r = 0;            ///< selectivity (host observations only)
  TimeNs measured_ns = 0;
};

struct ModelFitResult {
  LatencyModels models;
  std::vector<FitObservation> host_obs;  ///< (M, s, r) -> T_host-gb
  std::vector<FitObservation> pim_obs;   ///< (M, n)    -> T_pim-gb
};

/// Runs the measurement campaign for one engine variant.
ModelFitResult fit_latency_models(EngineKind kind, const pim::PimConfig& cfg,
                                  const host::HostConfig& hcfg,
                                  const FitConfig& fit = {});

/// Stable hash over every (pim, host, fit) field the fitted models depend
/// on. Written into model cache files (LatencyModels::save) so a cache
/// entry fitted under one configuration is never served to another; always
/// non-zero (0 is reserved for "no fingerprint").
std::uint64_t config_fingerprint(const pim::PimConfig& cfg,
                                 const host::HostConfig& hcfg,
                                 const FitConfig& fit);

}  // namespace bbpim::engine
