// The PIM OLAP query executor — the paper's system in one class.
//
// Executes a bound SELECT against a PIM-resident pre-joined relation in the
// paper's phase structure:
//
//   1. filter      — WHERE conjunction as bulk-bitwise programs on every
//                    page (both parts for two-xb, then a host transfer
//                    combines part results);
//   2. sample      — read one 2 MB page's filter bits + group attributes,
//                    estimate subgroup sizes (Section IV);
//   3. plan        — Equation 3 picks k, the number of subgroups for pim-gb;
//   4. pim-gb      — per subgroup: equality match AND filter result, then
//                    aggregation (circuit for one-xb/two-xb, bit-serial
//                    bulk-bitwise for the PIMDB baseline), host reads one
//                    result line set per page;
//   5. host-gb     — read the residual filter bit-vector and s chunks of
//                    each remaining record (unique-line accounting captures
//                    the 32x read amplification), hash-aggregate on CPU;
//   6. finalize    — merge, ORDER BY.
//
// SUM over a product decomposes into per-multiplier-bit masked aggregation
// passes (SUM(a*b) = sum_i 2^i * SUM(a | b_i AND R)); SUM over +- decomposes
// by linearity. Every phase advances a simulated clock and accounts energy,
// peak power, and cell wear; all results are exact and are checked against a
// scalar reference executor in the tests.
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "engine/cancel.hpp"
#include "engine/groupby.hpp"
#include "engine/latency_model.hpp"
#include "engine/pim_store.hpp"
#include "host/config.hpp"
#include "pim/trackers.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::engine {

struct QueryPhaseBreakdown {
  TimeNs filter = 0;    ///< bulk-bitwise WHERE evaluation (+ arithmetic)
  TimeNs transfer = 0;  ///< two-xb inter-part bit-column transfers
  TimeNs sample = 0;    ///< GROUP-BY sampling reads
  TimeNs plan = 0;      ///< model evaluation / k selection
  TimeNs pim_gb = 0;    ///< per-subgroup PIM aggregation
  TimeNs host_gb = 0;   ///< residual host aggregation (incl. bit-vector read)
  TimeNs finalize = 0;  ///< merge + sort

  TimeNs total() const {
    return filter + transfer + sample + plan + pim_gb + host_gb + finalize;
  }
};

struct QueryStats {
  TimeNs total_ns = 0;
  QueryPhaseBreakdown phases;

  EnergyJ energy_j = 0;          ///< PIM module energy (Fig. 7)
  EnergyJ energy_logic_j = 0;
  EnergyJ energy_read_j = 0;
  EnergyJ energy_write_j = 0;
  EnergyJ energy_controller_j = 0;
  EnergyJ energy_agg_circuit_j = 0;
  PowerW peak_chip_w = 0;        ///< peak power of one PIM chip (Fig. 8)
  std::uint64_t wear_row_writes = 0;  ///< worst per-row writes (Fig. 9 input)

  double selectivity = 0;
  std::size_t selected_records = 0;
  std::size_t total_subgroups = 0;    ///< kmax (Table II "total subgroups")
  std::size_t sampled_subgroups = 0;  ///< Table II "subgroups in sample"
  std::size_t pim_subgroups = 0;      ///< chosen k (Table II "PIM agg")
  std::size_t host_lines = 0;         ///< unique record lines read by host-gb
  std::size_t pim_requests = 0;

  // Planner inputs (exported so benches can re-evaluate Equation 3 at other
  // relation sizes, e.g. the paper's M = 1831 pages at SF = 10).
  std::uint32_t n_chunks = 1;
  std::uint32_t s_chunks = 2;
  double selectivity_estimate = 0;
  bool candidates_complete = false;
  /// Estimated subgroup masses, descending (sampled groups then zeros).
  std::vector<double> candidate_masses;

  // --- zone-map pruning effectiveness (all zero with pruning off) ----------
  /// Filter-phase pages skipped outright (no gate program, no readback).
  std::size_t pages_skipped = 0;
  /// (part, page) filter programs replaced by a synthesized validity copy.
  std::size_t pages_synthesized = 0;
  /// Valid crossbars inside the skipped pages.
  std::size_t crossbars_skipped = 0;
  /// (predicate, page) evaluations resolved statically by the sketches.
  std::size_t predicates_short_circuited = 0;
  /// (subgroup, page) pim-gb aggregations skipped because the sketches
  /// refute the subgroup key on every crossbar of the page.
  std::size_t group_pages_skipped = 0;

  // --- compiled-filter cache traffic of this execution ---------------------
  std::size_t filter_cache_hits = 0;
  std::size_t filter_cache_misses = 0;

  // --- shared-scan batching (all zero for solo executions) -----------------
  /// Queries fused into the batch this query executed with (incl. itself).
  std::size_t batched_queries = 0;
  /// Page visits of this query's filter pass that also served at least one
  /// other batch member (the shared-scan savings, per query).
  std::size_t fused_page_passes = 0;
  /// Pages whose zone-map classification was reused from the classification
  /// memo instead of recomputed (batch members sharing a WHERE, or repeated
  /// executions against the same store version).
  std::size_t classification_memo_hits = 0;

  // --- serving-layer wall timings and robustness (set by db::QueryService;
  // --- zero for direct engine/session executions) --------------------------
  /// Wall-clock the statement spent queued before a worker picked it up.
  std::uint64_t queue_wait_us = 0;
  /// Wall-clock of the serving attempt(s): execution plus any retry backoff.
  std::uint64_t service_us = 0;
  /// 1 when this result came from the shared-scan member-failure fallback:
  /// the fused pass aborted and this member was re-executed solo.
  std::size_t batch_fallbacks = 0;
};

struct ResultRow {
  std::vector<std::uint64_t> group;  ///< group-attribute codes
  std::int64_t agg = 0;

  bool operator==(const ResultRow&) const = default;
};

struct QueryOutput {
  std::vector<ResultRow> rows;
  QueryStats stats;
};

/// Survivors of a filter-only scan (the feeder of the host hash join):
/// global record ids plus the requested attribute codes, aligned so that
/// columns[i][k] is attribute attrs[i] of record row_ids[k]. Rows appear in
/// page order — deterministic at any sim thread count.
struct ScanOutput {
  std::vector<std::uint64_t> row_ids;
  std::vector<std::vector<std::uint64_t>> columns;
  QueryStats stats;
};

struct ExecOptions {
  /// Bypass the planner and aggregate exactly this many subgroups with PIM
  /// (clamped to the candidate count). Used by the model fitter and the
  /// ablation benches.
  std::optional<std::size_t> force_k;
  /// Skip the host-gb phase (measurement of pure pim-gb cost).
  bool skip_host_gb = false;
  /// Simulation worker threads for this execution; unset defers to
  /// HostConfig::sim_threads (0 there = all hardware threads). Any value
  /// produces bit-identical rows and stats — the knob only changes how much
  /// wall-clock the simulation itself takes.
  std::optional<std::uint32_t> sim_threads;
  /// Run the scalar (pre-vectorization) simulation kernels and bypass the
  /// compiled-filter cache: the measured baseline of bench/sim_speed and
  /// the oracle of the kernel-equivalence tests. Same results, slower.
  bool sim_scalar = false;
  /// Zone-map pruning: skip pages the sketches prove cannot match, replace
  /// provably all-true per-part filter programs by a synthesized validity
  /// copy, skip refuted (subgroup, page) pairs in pim-gb, and early-exit
  /// aggregation when every page is statically skipped. Result rows are
  /// byte-identical with pruning on or off, and pages that do execute run
  /// the exact same programs at the exact same modeled cost — pruning only
  /// removes work, which is why it is excluded from the model-cache config
  /// fingerprint. Unset defers to HostConfig::prune.
  std::optional<bool> prune;

  /// Wall-clock budget for this statement in microseconds; 0 = none. The
  /// clock starts at submission (db::QueryService arms it in submit()) or at
  /// execution start for direct Session/engine use. Expiry unwinds the query
  /// with engine::QueryTimeout at the next cooperative checkpoint.
  std::uint64_t deadline_us = 0;
  /// Cooperative cancellation handle; empty = never cancelled, all checks
  /// free. See engine/cancel.hpp.
  CancelToken cancel;

  /// Batch admission groups only executions with identical simulation knobs.
  /// deadline_us and cancel are deliberately excluded: statements with
  /// different deadlines still fuse into one shared scan (each member checks
  /// its own token).
  bool operator==(const ExecOptions& o) const {
    return force_k == o.force_k && skip_host_gb == o.skip_host_gb &&
           sim_threads == o.sim_threads && sim_scalar == o.sim_scalar &&
           prune == o.prune;
  }
};

/// The effective token of an execution: the explicit token when set (arming
/// its deadline from deadline_us if it carries none), else a fresh token
/// armed deadline_us from now, else the empty (free) token.
CancelToken resolve_cancel(const ExecOptions& opts);

class PimQueryEngine {
 public:
  /// `models` may be empty when every execution passes force_k.
  PimQueryEngine(EngineKind kind, PimStore& store, host::HostConfig hcfg,
                 LatencyModels models = {});

  QueryOutput execute(const sql::BoundQuery& q, const ExecOptions& opts = {});

  /// Result of one shared-scan batch: outputs[i]/errors[i] belong to
  /// queries[i]. Exactly one of the pair is set per member — a query that
  /// would throw when executed solo (e.g. an unsupported aggregate) gets its
  /// exception captured here so one bad member cannot fail its batchmates.
  struct BatchOutput {
    std::vector<QueryOutput> outputs;
    std::vector<std::exception_ptr> errors;
  };

  /// Shared-scan batched execution: evaluates every query's WHERE in one
  /// fused pass over the store — each (part, page) crossbar visit runs all
  /// members' gate programs back to back, zone-map classification is
  /// computed once per (page, predicate list) through the classification
  /// memo, and per-query survivors, group-by state and stats are demuxed on
  /// readback. Each member's result rows and semantic stats (selectivity,
  /// subgroup counts, planner inputs, prune counters) are byte-identical to
  /// a solo execute() of the same query; modeled time/energy are attributed
  /// per query from that query's own request traces (a member is never
  /// billed for a batchmate's work) and stay deterministic at any
  /// sim_threads. A single-member batch degenerates to execute().
  /// `cancels`, when non-empty, carries one CancelToken per member (aligned
  /// with `queries`), overriding opts.cancel member-by-member: a cancelled
  /// or expired member aborts the fused pass, which falls back to solo
  /// re-execution of every member — batchmates get their exact solo rows
  /// and stats (with stats.batch_fallbacks = 1), the aborted member gets
  /// its typed QueryTimeout/QueryCancelled.
  BatchOutput execute_batch(const std::vector<const sql::BoundQuery*>& queries,
                            const ExecOptions& opts = {},
                            const std::vector<CancelToken>& cancels = {});

  /// Filter-only scan: runs the WHERE conjunction as the usual bulk-bitwise
  /// filter phase (zone-map pruning and selectivity ordering included), then
  /// reads back the `attrs` columns of the survivors with the host-gb
  /// walk's unique-line accounting. Modeled cost = filter phase + residual
  /// bit-vector read + record-line streaming + per-record CPU time. This is
  /// the per-table operator a multi-table join plan composes on the host.
  ScanOutput execute_scan(const std::vector<sql::BoundPredicate>& filters,
                          const std::vector<std::size_t>& attrs,
                          const ExecOptions& opts = {});

  EngineKind kind() const { return kind_; }
  const LatencyModels& models() const { return models_; }
  void set_models(LatencyModels m) { models_ = std::move(m); }
  PimStore& store() { return *store_; }
  const host::HostConfig& host_config() const { return hcfg_; }

 private:
  EngineKind kind_;
  PimStore* store_;
  host::HostConfig hcfg_;
  LatencyModels models_;
};

}  // namespace bbpim::engine
