#include "engine/filter_compiler.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "engine/pim_store.hpp"

namespace bbpim::engine {
namespace {

/// Emits one predicate; returns the owned result column.
/// Field of a predicate's attribute, or a dummy for the constant kinds —
/// a kNever can name an attribute of *another* part (it is compiled on
/// every part so each result column is statically false), whose field this
/// layout cannot resolve.
pim::Field predicate_field(const RecordLayout& layout,
                           const sql::BoundPredicate& p) {
  using Kind = sql::BoundPredicate::Kind;
  if (p.kind == Kind::kNever || p.kind == Kind::kAlways) return pim::Field{};
  return layout.field(p.attr);
}

std::uint16_t emit_predicate(pim::ProgramBuilder& pb, const RecordLayout& layout,
                             const sql::BoundPredicate& p) {
  using Kind = sql::BoundPredicate::Kind;
  const pim::Field f = predicate_field(layout, p);
  switch (p.kind) {
    case Kind::kEq: return pb.emit_eq_const(f, p.v1);
    case Kind::kLt: return pb.emit_lt_const(f, p.v1);
    case Kind::kLe: return pb.emit_le_const(f, p.v1);
    case Kind::kGt: return pb.emit_gt_const(f, p.v1);
    case Kind::kGe: return pb.emit_ge_const(f, p.v1);
    case Kind::kBetween: return pb.emit_between_const(f, p.v1, p.v2);
    case Kind::kIn: return pb.emit_in_set(f, p.in_values);
    case Kind::kNever: return pb.emit_const(false);
    case Kind::kAlways: return pb.emit_const(true);
  }
  throw std::logic_error("emit_predicate: unhandled kind");
}

}  // namespace

CompiledFilter compile_filter(const std::vector<sql::BoundPredicate>& filters,
                              const RecordLayout& layout,
                              pim::ColumnAlloc& alloc) {
  pim::ProgramBuilder pb(alloc);
  pim::WordProgram words;
  std::uint16_t acc = 0;
  bool have_acc = false;
  std::size_t compiled = 0;

  for (const sql::BoundPredicate& p : filters) {
    if (p.kind == sql::BoundPredicate::Kind::kAlways) continue;
    if (p.kind != sql::BoundPredicate::Kind::kNever && !layout.has(p.attr)) {
      continue;  // another part's predicate
    }
    const std::uint16_t term = emit_predicate(pb, layout, p);
    words.push_back(pim::word_predicate(p, predicate_field(layout, p), term));
    ++compiled;
    if (!have_acc) {
      acc = term;
      have_acc = true;
    } else {
      const std::uint16_t next = pb.emit_and(acc, term);
      words.push_back(pim::WordOp::and_op(acc, term, next));
      pb.release(acc);
      pb.release(term);
      acc = next;
    }
  }

  // Fold in validity: padding rows must never pass.
  std::uint16_t result;
  if (have_acc) {
    result = pb.emit_and(acc, layout.valid_col());
    words.push_back(pim::WordOp::and_op(acc, layout.valid_col(), result));
    pb.release(acc);
  } else {
    result = pb.emit_copy(layout.valid_col());
    words.push_back(pim::WordOp::copy(layout.valid_col(), result));
  }

  CompiledFilter out;
  out.program = pb.take();
  out.words = std::move(words);
  out.result_col = result;
  out.predicate_count = compiled;
  return out;
}

namespace {

/// Exact (collision-free) serialization of every predicate field, in order.
void append_predicates(std::ostringstream& key,
                       const std::vector<sql::BoundPredicate>& filters) {
  for (const sql::BoundPredicate& p : filters) {
    key << '|' << static_cast<int>(p.kind) << ',' << p.attr << ',' << p.v1
        << ',' << p.v2;
    for (const std::uint64_t v : p.in_values) key << ';' << v;
  }
}

/// Key over everything compilation reads: the part, the verbatim allocator
/// state, and every predicate field.
std::string filter_cache_key(const std::vector<sql::BoundPredicate>& filters,
                             int part, const std::string& alloc_state) {
  std::ostringstream key;
  key << part << '#' << alloc_state;
  append_predicates(key, filters);
  return key.str();
}

/// Key over everything classification reads beyond the store itself (the
/// memo is scoped to one store version, so data and layout are implicit).
std::string classification_memo_key(
    const std::vector<sql::BoundPredicate>& filters) {
  std::ostringstream key;
  append_predicates(key, filters);
  return key.str();
}

}  // namespace

std::shared_ptr<const CompiledFilter> FilterCache::get_or_compile(
    const std::vector<sql::BoundPredicate>& filters, int part,
    const RecordLayout& layout, pim::ColumnAlloc& alloc) {
  std::string key = filter_cache_key(filters, part, alloc.state_key());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      std::shared_ptr<const CompiledFilter> hit = it->second.filter;
      // Replay outside the map lookup scope is fine: the entry is immutable.
      alloc.acquire(hit->result_col);
      return hit;
    }
    ++misses_;
  }
  auto compiled = std::make_shared<const CompiledFilter>(
      compile_filter(filters, layout, alloc));
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= kMaxEntries) entries_.clear();
  entries_.emplace(std::move(key), Entry{part, compiled});
  return compiled;
}

void FilterCache::invalidate(int part) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++invalidations_;
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = it->second.part == part ? entries_.erase(it) : std::next(it);
  }
}

std::size_t FilterCache::hit_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t FilterCache::miss_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t FilterCache::invalidation_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invalidations_;
}

// --- zone-map static analysis ----------------------------------------------

namespace {

/// Does the predicate compile into `part`'s program? Mirrors the skip rule
/// of compile_filter: kAlways never compiles, kNever compiles on every part
/// (a statically-false column), everything else follows its attribute.
bool predicate_in_part(const sql::BoundPredicate& p, int part,
                       const PimStore& store) {
  if (p.kind == sql::BoundPredicate::Kind::kAlways) return false;
  if (p.kind == sql::BoundPredicate::Kind::kNever) return true;
  return store.part_of_attr(p.attr) == part;
}

}  // namespace

FilterPruneAnalysis analyze_filters(
    const std::vector<sql::BoundPredicate>& filters, const PimStore& store) {
  const ZoneMaps& zones = store.zone_maps();
  const std::size_t pages = store.pages_per_part();
  const std::uint32_t xpp =
      static_cast<std::uint32_t>(zones.crossbar_count() / pages);
  const int parts = store.parts();

  FilterPruneAnalysis out;
  out.page_skip.assign(pages, 0);
  out.page_synth.assign(pages, {0, 0});

  // Compiled predicate counts per part (for the short-circuit counter).
  std::array<std::size_t, 2> part_preds{0, 0};
  std::size_t compiled_preds = 0;
  for (const sql::BoundPredicate& p : filters) {
    for (int part = 0; part < parts; ++part) {
      if (predicate_in_part(p, part, store)) ++part_preds[part];
    }
    if (p.kind != sql::BoundPredicate::Kind::kAlways) ++compiled_preds;
  }

  for (std::size_t pg = 0; pg < pages; ++pg) {
    bool all_false = true;
    std::array<bool, 2> part_true{true, true};
    std::size_t valid_crossbars = 0;
    for (std::uint32_t x = 0; x < xpp; ++x) {
      const std::size_t xb = pg * xpp + x;
      // A crossbar with no valid records (tail of the last page) has empty
      // sketches; it contributes nothing and constrains nothing — the
      // validity column already rejects its rows.
      if (zones.sketch(0, xb).empty()) continue;
      ++valid_crossbars;
      bool xb_false = false;
      for (const sql::BoundPredicate& p : filters) {
        if (p.kind == sql::BoundPredicate::Kind::kAlways) continue;
        const ZoneClass cls =
            p.kind == sql::BoundPredicate::Kind::kNever
                ? ZoneClass::kAlwaysFalse
                : classify_predicate(p, zones.sketch(p.attr, xb),
                                     zones.bitmap_attr(p.attr));
        if (cls == ZoneClass::kAlwaysFalse) {
          xb_false = true;
          break;  // conjunction dead on this crossbar
        }
        if (cls != ZoneClass::kAlwaysTrue) {
          // Residual here is never kNever (that classified false above).
          part_true[store.part_of_attr(p.attr)] = false;
        }
      }
      if (!xb_false) all_false = false;
    }
    if (all_false) {
      out.page_skip[pg] = 1;
      ++out.pages_skipped;
      out.crossbars_skipped += valid_crossbars;
      out.predicates_short_circuited += compiled_preds;
      continue;
    }
    // Synthesis needs EVERY valid crossbar of the page all-true for the
    // part (a single residual or refuted crossbar forces the real program —
    // its true select differs from the validity column). Crossbars with no
    // valid records are fine: their validity column zeroes the synthesized
    // copy. part_true is only a cheap pre-filter; the first pass breaks out
    // of refuted crossbars early, so it can be optimistically true and the
    // loop below re-checks every crossbar exhaustively.
    for (int part = 0; part < parts; ++part) {
      if (part_preds[part] == 0) {
        // Vacuously true: the part's program would be a bare validity copy.
        out.page_synth[pg][part] = 1;
        ++out.pages_synthesized;
        continue;
      }
      if (!part_true[part]) continue;
      bool synth = true;
      for (std::uint32_t x = 0; x < xpp && synth; ++x) {
        const std::size_t xb = pg * xpp + x;
        if (zones.sketch(0, xb).empty()) continue;
        for (const sql::BoundPredicate& p : filters) {
          if (!predicate_in_part(p, part, store)) continue;
          const ZoneClass cls =
              p.kind == sql::BoundPredicate::Kind::kNever
                  ? ZoneClass::kAlwaysFalse
                  : classify_predicate(p, zones.sketch(p.attr, xb),
                                       zones.bitmap_attr(p.attr));
          if (cls != ZoneClass::kAlwaysTrue) {
            synth = false;
            break;
          }
        }
      }
      if (synth) {
        out.page_synth[pg][part] = 1;
        ++out.pages_synthesized;
        out.predicates_short_circuited += part_preds[part];
      }
    }
  }
  return out;
}

std::shared_ptr<const FilterPruneAnalysis> analyze_filters_cached(
    const std::vector<sql::BoundPredicate>& filters, const PimStore& store,
    std::size_t* memo_pages_reused) {
  ClassificationMemo& memo = store.classification_memo();
  const std::string key = classification_memo_key(filters);
  if (std::shared_ptr<const FilterPruneAnalysis> hit = memo.find(key)) {
    if (memo_pages_reused != nullptr) {
      *memo_pages_reused += hit->page_skip.size();
    }
    return hit;
  }
  auto fresh = std::make_shared<const FilterPruneAnalysis>(
      analyze_filters(filters, store));
  memo.insert(key, fresh);
  return fresh;
}

std::vector<std::uint8_t> analyze_group_match(
    const std::vector<std::size_t>& group_attrs,
    const std::vector<std::uint64_t>& key, const PimStore& store,
    const std::vector<std::size_t>* candidate_pages) {
  const ZoneMaps& zones = store.zone_maps();
  const std::size_t pages = store.pages_per_part();
  const std::uint32_t xpp =
      static_cast<std::uint32_t>(zones.crossbar_count() / pages);

  std::vector<std::size_t> all;
  if (candidate_pages == nullptr) {
    all.resize(pages);
    std::iota(all.begin(), all.end(), 0);
  }
  const std::vector<std::size_t>& candidates =
      candidate_pages != nullptr ? *candidate_pages : all;

  std::vector<std::uint8_t> possible(pages, 0);
  for (const std::size_t pg : candidates) {
    for (std::uint32_t x = 0; x < xpp; ++x) {
      const std::size_t xb = pg * xpp + x;
      if (zones.sketch(0, xb).empty()) continue;
      bool match = true;
      for (std::size_t i = 0; i < group_attrs.size(); ++i) {
        sql::BoundPredicate eq;
        eq.kind = sql::BoundPredicate::Kind::kEq;
        eq.attr = group_attrs[i];
        eq.v1 = key[i];
        if (classify_predicate(eq, zones.sketch(eq.attr, xb),
                               zones.bitmap_attr(eq.attr)) ==
            ZoneClass::kAlwaysFalse) {
          match = false;
          break;
        }
      }
      if (match) {
        possible[pg] = 1;
        break;
      }
    }
  }
  return possible;
}

std::vector<sql::BoundPredicate> order_by_selectivity(
    std::vector<sql::BoundPredicate> filters, const PimStore& store,
    std::vector<double>* estimates) {
  const ZoneMaps& zones = store.zone_maps();
  const std::size_t n = filters.size();

  // Mean of the per-crossbar sketch estimates over valid (non-empty)
  // crossbars; each crossbar counts once regardless of how many records it
  // holds (only the partial tail crossbar could differ anyway).
  std::vector<double> est(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const sql::BoundPredicate& p = filters[i];
    if (p.kind == sql::BoundPredicate::Kind::kAlways) {
      est[i] = 1.0;
      continue;
    }
    if (p.kind == sql::BoundPredicate::Kind::kNever) {
      est[i] = 0.0;
      continue;
    }
    double sum = 0;
    std::size_t counted = 0;
    for (std::size_t xb = 0; xb < zones.crossbar_count(); ++xb) {
      const ZoneSketch& s = zones.sketch(p.attr, xb);
      if (s.empty()) continue;
      sum += sketch_selectivity(p, s, zones.bitmap_attr(p.attr));
      ++counted;
    }
    est[i] = counted > 0 ? sum / static_cast<double>(counted) : 0.0;
  }

  // Rough per-predicate gate cost, for the "cheapest first" tiebreak.
  auto cost_of = [](const sql::BoundPredicate& p) -> std::size_t {
    switch (p.kind) {
      case sql::BoundPredicate::Kind::kIn:
        return 2 + p.in_values.size();
      case sql::BoundPredicate::Kind::kBetween:
        return 3;
      case sql::BoundPredicate::Kind::kNever:
      case sql::BoundPredicate::Kind::kAlways:
        return 0;
      default:
        return 2;
    }
  };

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (est[a] != est[b]) return est[a] < est[b];
                     const std::size_t ca = cost_of(filters[a]);
                     const std::size_t cb = cost_of(filters[b]);
                     if (ca != cb) return ca < cb;
                     return a < b;
                   });

  std::vector<sql::BoundPredicate> out;
  out.reserve(n);
  if (estimates != nullptr) {
    estimates->clear();
    estimates->reserve(n);
  }
  for (const std::size_t i : order) {
    out.push_back(std::move(filters[i]));
    if (estimates != nullptr) estimates->push_back(est[i]);
  }
  return out;
}

CompiledFilter compile_group_match(const std::vector<std::size_t>& group_attrs,
                                   const std::vector<std::uint64_t>& key,
                                   const RecordLayout& layout,
                                   pim::ColumnAlloc& alloc) {
  if (group_attrs.size() != key.size()) {
    throw std::invalid_argument("compile_group_match: key arity mismatch");
  }
  pim::ProgramBuilder pb(alloc);
  pim::WordProgram words;
  std::uint16_t acc = 0;
  bool have_acc = false;
  std::size_t compiled = 0;
  for (std::size_t i = 0; i < group_attrs.size(); ++i) {
    if (!layout.has(group_attrs[i])) continue;
    const pim::Field f = layout.field(group_attrs[i]);
    const std::uint16_t eq = pb.emit_eq_const(f, key[i]);
    words.push_back(
        pim::WordOp::predicate(pim::WordOp::Kind::kEq, f, key[i], 0, eq));
    ++compiled;
    if (!have_acc) {
      acc = eq;
      have_acc = true;
    } else {
      const std::uint16_t next = pb.emit_and(acc, eq);
      words.push_back(pim::WordOp::and_op(acc, eq, next));
      pb.release(acc);
      pb.release(eq);
      acc = next;
    }
  }
  if (!have_acc) {
    acc = pb.emit_const(true);
    words.push_back(pim::WordOp::const1(acc));
  }

  CompiledFilter out;
  out.program = pb.take();
  out.words = std::move(words);
  out.result_col = acc;
  out.predicate_count = compiled;
  return out;
}

}  // namespace bbpim::engine
