#include "engine/filter_compiler.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace bbpim::engine {
namespace {

/// Emits one predicate; returns the owned result column.
/// Field of a predicate's attribute, or a dummy for the constant kinds —
/// a kNever can name an attribute of *another* part (it is compiled on
/// every part so each result column is statically false), whose field this
/// layout cannot resolve.
pim::Field predicate_field(const RecordLayout& layout,
                           const sql::BoundPredicate& p) {
  using Kind = sql::BoundPredicate::Kind;
  if (p.kind == Kind::kNever || p.kind == Kind::kAlways) return pim::Field{};
  return layout.field(p.attr);
}

std::uint16_t emit_predicate(pim::ProgramBuilder& pb, const RecordLayout& layout,
                             const sql::BoundPredicate& p) {
  using Kind = sql::BoundPredicate::Kind;
  const pim::Field f = predicate_field(layout, p);
  switch (p.kind) {
    case Kind::kEq: return pb.emit_eq_const(f, p.v1);
    case Kind::kLt: return pb.emit_lt_const(f, p.v1);
    case Kind::kLe: return pb.emit_le_const(f, p.v1);
    case Kind::kGt: return pb.emit_gt_const(f, p.v1);
    case Kind::kGe: return pb.emit_ge_const(f, p.v1);
    case Kind::kBetween: return pb.emit_between_const(f, p.v1, p.v2);
    case Kind::kIn: return pb.emit_in_set(f, p.in_values);
    case Kind::kNever: return pb.emit_const(false);
    case Kind::kAlways: return pb.emit_const(true);
  }
  throw std::logic_error("emit_predicate: unhandled kind");
}

}  // namespace

CompiledFilter compile_filter(const std::vector<sql::BoundPredicate>& filters,
                              const RecordLayout& layout,
                              pim::ColumnAlloc& alloc) {
  pim::ProgramBuilder pb(alloc);
  pim::WordProgram words;
  std::uint16_t acc = 0;
  bool have_acc = false;
  std::size_t compiled = 0;

  for (const sql::BoundPredicate& p : filters) {
    if (p.kind == sql::BoundPredicate::Kind::kAlways) continue;
    if (p.kind != sql::BoundPredicate::Kind::kNever && !layout.has(p.attr)) {
      continue;  // another part's predicate
    }
    const std::uint16_t term = emit_predicate(pb, layout, p);
    words.push_back(pim::word_predicate(p, predicate_field(layout, p), term));
    ++compiled;
    if (!have_acc) {
      acc = term;
      have_acc = true;
    } else {
      const std::uint16_t next = pb.emit_and(acc, term);
      words.push_back(pim::WordOp::and_op(acc, term, next));
      pb.release(acc);
      pb.release(term);
      acc = next;
    }
  }

  // Fold in validity: padding rows must never pass.
  std::uint16_t result;
  if (have_acc) {
    result = pb.emit_and(acc, layout.valid_col());
    words.push_back(pim::WordOp::and_op(acc, layout.valid_col(), result));
    pb.release(acc);
  } else {
    result = pb.emit_copy(layout.valid_col());
    words.push_back(pim::WordOp::copy(layout.valid_col(), result));
  }

  CompiledFilter out;
  out.program = pb.take();
  out.words = std::move(words);
  out.result_col = result;
  out.predicate_count = compiled;
  return out;
}

namespace {

/// Exact (collision-free) textual key over everything compilation reads:
/// the part, the verbatim allocator state, and every predicate field.
std::string filter_cache_key(const std::vector<sql::BoundPredicate>& filters,
                             int part, const std::string& alloc_state) {
  std::ostringstream key;
  key << part << '#' << alloc_state;
  for (const sql::BoundPredicate& p : filters) {
    key << '|' << static_cast<int>(p.kind) << ',' << p.attr << ',' << p.v1
        << ',' << p.v2;
    for (const std::uint64_t v : p.in_values) key << ';' << v;
  }
  return key.str();
}

}  // namespace

std::shared_ptr<const CompiledFilter> FilterCache::get_or_compile(
    const std::vector<sql::BoundPredicate>& filters, int part,
    const RecordLayout& layout, pim::ColumnAlloc& alloc) {
  std::string key = filter_cache_key(filters, part, alloc.state_key());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      std::shared_ptr<const CompiledFilter> hit = it->second.filter;
      // Replay outside the map lookup scope is fine: the entry is immutable.
      alloc.acquire(hit->result_col);
      return hit;
    }
    ++misses_;
  }
  auto compiled = std::make_shared<const CompiledFilter>(
      compile_filter(filters, layout, alloc));
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= kMaxEntries) entries_.clear();
  entries_.emplace(std::move(key), Entry{part, compiled});
  return compiled;
}

void FilterCache::invalidate(int part) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++invalidations_;
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = it->second.part == part ? entries_.erase(it) : std::next(it);
  }
}

std::size_t FilterCache::hit_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t FilterCache::miss_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t FilterCache::invalidation_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invalidations_;
}

CompiledFilter compile_group_match(const std::vector<std::size_t>& group_attrs,
                                   const std::vector<std::uint64_t>& key,
                                   const RecordLayout& layout,
                                   pim::ColumnAlloc& alloc) {
  if (group_attrs.size() != key.size()) {
    throw std::invalid_argument("compile_group_match: key arity mismatch");
  }
  pim::ProgramBuilder pb(alloc);
  pim::WordProgram words;
  std::uint16_t acc = 0;
  bool have_acc = false;
  std::size_t compiled = 0;
  for (std::size_t i = 0; i < group_attrs.size(); ++i) {
    if (!layout.has(group_attrs[i])) continue;
    const pim::Field f = layout.field(group_attrs[i]);
    const std::uint16_t eq = pb.emit_eq_const(f, key[i]);
    words.push_back(
        pim::WordOp::predicate(pim::WordOp::Kind::kEq, f, key[i], 0, eq));
    ++compiled;
    if (!have_acc) {
      acc = eq;
      have_acc = true;
    } else {
      const std::uint16_t next = pb.emit_and(acc, eq);
      words.push_back(pim::WordOp::and_op(acc, eq, next));
      pb.release(acc);
      pb.release(eq);
      acc = next;
    }
  }
  if (!have_acc) {
    acc = pb.emit_const(true);
    words.push_back(pim::WordOp::const1(acc));
  }

  CompiledFilter out;
  out.program = pb.take();
  out.words = std::move(words);
  out.result_col = acc;
  out.predicate_count = compiled;
  return out;
}

}  // namespace bbpim::engine
