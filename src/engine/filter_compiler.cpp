#include "engine/filter_compiler.hpp"

#include <stdexcept>

namespace bbpim::engine {
namespace {

/// Emits one predicate; returns the owned result column.
std::uint16_t emit_predicate(pim::ProgramBuilder& pb, const RecordLayout& layout,
                             const sql::BoundPredicate& p) {
  using Kind = sql::BoundPredicate::Kind;
  const pim::Field f = layout.field(p.attr);
  switch (p.kind) {
    case Kind::kEq: return pb.emit_eq_const(f, p.v1);
    case Kind::kLt: return pb.emit_lt_const(f, p.v1);
    case Kind::kLe: return pb.emit_le_const(f, p.v1);
    case Kind::kGt: return pb.emit_gt_const(f, p.v1);
    case Kind::kGe: return pb.emit_ge_const(f, p.v1);
    case Kind::kBetween: return pb.emit_between_const(f, p.v1, p.v2);
    case Kind::kIn: return pb.emit_in_set(f, p.in_values);
    case Kind::kNever: return pb.emit_const(false);
    case Kind::kAlways: return pb.emit_const(true);
  }
  throw std::logic_error("emit_predicate: unhandled kind");
}

}  // namespace

CompiledFilter compile_filter(const std::vector<sql::BoundPredicate>& filters,
                              const RecordLayout& layout,
                              pim::ColumnAlloc& alloc) {
  pim::ProgramBuilder pb(alloc);
  std::uint16_t acc = 0;
  bool have_acc = false;
  std::size_t compiled = 0;

  for (const sql::BoundPredicate& p : filters) {
    if (p.kind == sql::BoundPredicate::Kind::kAlways) continue;
    if (p.kind != sql::BoundPredicate::Kind::kNever && !layout.has(p.attr)) {
      continue;  // another part's predicate
    }
    const std::uint16_t term = emit_predicate(pb, layout, p);
    ++compiled;
    if (!have_acc) {
      acc = term;
      have_acc = true;
    } else {
      const std::uint16_t next = pb.emit_and(acc, term);
      pb.release(acc);
      pb.release(term);
      acc = next;
    }
  }

  // Fold in validity: padding rows must never pass.
  std::uint16_t result;
  if (have_acc) {
    result = pb.emit_and(acc, layout.valid_col());
    pb.release(acc);
  } else {
    result = pb.emit_copy(layout.valid_col());
  }

  CompiledFilter out;
  out.program = pb.take();
  out.result_col = result;
  out.predicate_count = compiled;
  return out;
}

CompiledFilter compile_group_match(const std::vector<std::size_t>& group_attrs,
                                   const std::vector<std::uint64_t>& key,
                                   const RecordLayout& layout,
                                   pim::ColumnAlloc& alloc) {
  if (group_attrs.size() != key.size()) {
    throw std::invalid_argument("compile_group_match: key arity mismatch");
  }
  pim::ProgramBuilder pb(alloc);
  std::uint16_t acc = 0;
  bool have_acc = false;
  std::size_t compiled = 0;
  for (std::size_t i = 0; i < group_attrs.size(); ++i) {
    if (!layout.has(group_attrs[i])) continue;
    const std::uint16_t eq =
        pb.emit_eq_const(layout.field(group_attrs[i]), key[i]);
    ++compiled;
    if (!have_acc) {
      acc = eq;
      have_acc = true;
    } else {
      const std::uint16_t next = pb.emit_and(acc, eq);
      pb.release(acc);
      pb.release(eq);
      acc = next;
    }
  }
  if (!have_acc) acc = pb.emit_const(true);

  CompiledFilter out;
  out.program = pb.take();
  out.result_col = acc;
  out.predicate_count = compiled;
  return out;
}

}  // namespace bbpim::engine
