#include "engine/pim_store.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

namespace bbpim::engine {

PimStore::PimStore(pim::PimModule& module, const rel::Table& table, Options opt)
    : PimStore(module, table, std::move(opt), nullptr) {}

PimStore::PimStore(pim::PimModule& module, const rel::Table& table, Options opt,
                   std::shared_ptr<const StoreSnapshot> snap)
    : module_(&module), table_(&table), two_crossbar_(opt.two_crossbar) {
  const rel::Schema& schema = table.schema();
  const std::size_t nattrs = schema.attribute_count();
  if (nattrs == 0) throw std::invalid_argument("PimStore: empty schema");

  // Part assignment.
  attr_part_.resize(nattrs, 0);
  if (two_crossbar_) {
    auto default_rule = [](const std::string& name) {
      return name.rfind("lo_", 0) == 0 ? 0 : 1;
    };
    for (std::size_t a = 0; a < nattrs; ++a) {
      attr_part_[a] = opt.part_of ? opt.part_of(schema.attribute(a).name)
                                  : default_rule(schema.attribute(a).name);
      if (attr_part_[a] < 0 || attr_part_[a] > 1) {
        throw std::invalid_argument("PimStore: part must be 0 or 1");
      }
    }
  }

  // Layouts per part.
  const pim::PimConfig& cfg = module.config();
  for (int part = 0; part < parts(); ++part) {
    std::vector<std::size_t> attrs;
    for (std::size_t a = 0; a < nattrs; ++a) {
      if (attr_part_[a] == part) attrs.push_back(a);
    }
    if (attrs.empty()) {
      throw std::invalid_argument("PimStore: a part has no attributes");
    }
    layouts_.push_back(RecordLayout::build(schema, attrs, cfg));
  }

  // Page allocation: all parts span the same number of pages so that record
  // coordinates align across parts.
  records_ = table.row_count();
  if (records_ == 0) throw std::invalid_argument("PimStore: empty relation");
  records_per_page_ = cfg.records_per_page();
  pages_per_part_ = (records_ + records_per_page_ - 1) / records_per_page_;
  for (int part = 0; part < parts(); ++part) {
    // Data columns (attributes + validity, [0, scratch_begin)) form the
    // shareable CoW segment of every crossbar; scratch stays private.
    base_page_.push_back(
        module.allocate_pages(pages_per_part_, layouts_[part].scratch_begin()));
  }
  rows_per_crossbar_ = cfg.crossbar_rows;
  max_distinct_ = opt.max_distinct;
  attr_mutated_.assign(nattrs, false);
  distinct_stale_.assign(nattrs, false);
  distinct_.resize(nattrs);

  if (snap != nullptr) {
    // View mode: data comes from the snapshot's shared segments — nothing
    // to load, and every derived structure delegates to the snapshot.
    adopt(std::move(snap));
    return;
  }

  for (int part = 0; part < parts(); ++part) load_part(part);

  // Zone-map sketches, accumulated from the backing table (record r lives
  // in crossbar r / rows; the partial last crossbar's sketch covers only
  // its valid records).
  {
    std::vector<std::uint32_t> attr_bits;
    attr_bits.reserve(nattrs);
    for (std::size_t a = 0; a < nattrs; ++a) {
      attr_bits.push_back(schema.attribute(a).bits);
    }
    const std::size_t crossbars =
        pages_per_part_ * cfg.crossbars_per_page;
    zones_ = ZoneMaps(crossbars, attr_bits);
    for (std::size_t a = 0; a < nattrs; ++a) {
      const std::vector<std::uint64_t>& col = table.column(a);
      for (std::size_t r = 0; r < records_; ++r) {
        zones_.add(a, r / rows_per_crossbar_, col[r]);
      }
    }
  }

  // Distinct stats for GROUP-BY candidate enumeration.
  for (std::size_t a = 0; a < nattrs; ++a) {
    std::unordered_set<std::uint64_t> seen;
    bool capped = false;
    for (const std::uint64_t v : table.column(a)) {
      seen.insert(v);
      if (seen.size() > opt.max_distinct) {
        capped = true;
        break;
      }
    }
    if (!capped) {
      std::vector<std::uint64_t> vals(seen.begin(), seen.end());
      std::sort(vals.begin(), vals.end());
      distinct_[a] = std::move(vals);
    }
  }
}

void PimStore::adopt(std::shared_ptr<const StoreSnapshot> snap) {
  if (snap == nullptr) {
    throw std::invalid_argument("PimStore::adopt: null snapshot");
  }
  if (snap->pages_per_part() != pages_per_part_) {
    throw std::invalid_argument("PimStore::adopt: geometry mismatch");
  }
  for (int part = 0; part < parts(); ++part) {
    for (std::size_t p = 0; p < pages_per_part_; ++p) {
      pim::Page& pg = page(part, p);
      for (std::uint32_t x = 0; x < pg.crossbar_count(); ++x) {
        pg.crossbar(x).adopt_data(snap->segment(part, p, x));
      }
    }
  }
  snap_ = std::move(snap);
}

void PimStore::load_part(int part) {
  const RecordLayout& layout = layouts_[part];
  for (std::size_t p = 0; p < pages_per_part_; ++p) {
    pim::Page& pg = page(part, p);
    const std::size_t first = p * records_per_page_;
    const std::uint32_t count = page_records(p);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::size_t r = first + i;
      const pim::Page::RecordCoord c = pg.locate(i);
      pim::Crossbar& xb = pg.crossbar(c.crossbar);
      for (const std::size_t a : layout.attrs()) {
        const pim::Field f = layout.field(a);
        xb.write_row_bits(c.row, f.offset, f.width, table_->value(r, a));
      }
      xb.write_row_bits(c.row, layout.valid_col(), 1, 1);
    }
  }
}

pim::Page& PimStore::page(int part, std::size_t i) {
  return module_->page(module_page_index(part, i));
}

std::size_t PimStore::module_page_index(int part, std::size_t i) const {
  if (i >= pages_per_part_) throw std::out_of_range("PimStore: page index");
  return base_page_.at(part) + i;
}

std::uint32_t PimStore::page_records(std::size_t i) const {
  const std::size_t first = i * records_per_page_;
  if (first >= records_) return 0;
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(records_per_page_, records_ - first));
}

const std::unordered_map<std::uint64_t, std::uint64_t>*
PimStore::functional_dependency(std::size_t attr_a, std::size_t attr_b) const {
  if (snap_ != nullptr) {
    return snap_->stats().functional_dependency(attr_a, attr_b, *this);
  }
  if (attr_a == attr_b) return nullptr;
  // Through the refreshing accessor: mutation can change the capped status.
  if (!distinct_values(attr_a) || !distinct_values(attr_b)) return nullptr;
  const auto key = std::make_pair(attr_a, attr_b);
  const auto it = fd_cache_.find(key);
  if (it != fd_cache_.end()) {
    return it->second ? &*it->second : nullptr;
  }
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  map.reserve(distinct_[attr_a]->size());
  for (std::size_t r = 0; r < records_; ++r) {
    const std::uint64_t va = current_value(r, attr_a);
    const std::uint64_t vb = current_value(r, attr_b);
    const auto [entry, fresh] = map.try_emplace(va, vb);
    if (!fresh && entry->second != vb) {
      fd_cache_.emplace(key, std::nullopt);  // violated: not a dependency
      return nullptr;
    }
  }
  auto [stored, ignored] = fd_cache_.emplace(key, std::move(map));
  (void)ignored;
  return &*stored->second;
}

const std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>*
PimStore::co_occurrence(std::size_t attr_a, std::size_t attr_b) const {
  if (snap_ != nullptr) {
    return snap_->stats().co_occurrence(attr_a, attr_b, *this);
  }
  if (attr_a == attr_b) return nullptr;
  if (!distinct_values(attr_a) || !distinct_values(attr_b)) return nullptr;
  const auto key = std::make_pair(attr_a, attr_b);
  const auto it = co_cache_.find(key);
  if (it != co_cache_.end()) return &it->second;

  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> map;
  map.reserve(distinct_[attr_a]->size());
  for (std::size_t r = 0; r < records_; ++r) {
    std::vector<std::uint64_t>& vals = map[current_value(r, attr_a)];
    const std::uint64_t vb = current_value(r, attr_b);
    if (std::find(vals.begin(), vals.end(), vb) == vals.end()) {
      vals.push_back(vb);
    }
  }
  for (auto& [a, vals] : map) std::sort(vals.begin(), vals.end());
  auto [stored, fresh] = co_cache_.emplace(key, std::move(map));
  (void)fresh;
  return &stored->second;
}

std::uint64_t PimStore::read_attr(std::size_t record, std::size_t attr) const {
  const int part = attr_part_.at(attr);
  const std::size_t p = record / records_per_page_;
  const std::uint32_t in_page = static_cast<std::uint32_t>(record % records_per_page_);
  return module_->read_record_field(module_page_index(part, p), in_page,
                                    layouts_[part].field(attr));
}

std::uint64_t PimStore::current_value(std::size_t record,
                                      std::size_t attr) const {
  return attr_mutated_[attr] ? read_attr(record, attr)
                             : table_->column(attr)[record];
}

const std::optional<std::vector<std::uint64_t>>& PimStore::distinct_values(
    std::size_t attr) const {
  if (snap_ != nullptr) return snap_->stats().distinct_values(attr, *this);
  if (distinct_stale_.at(attr)) {
    // Rebuild from the crossbars (the backing table column no longer
    // reflects the stored values). Same capping rule as load time. Lazy so
    // a burst of replayed updates pays one rescan at the next consumer.
    std::unordered_set<std::uint64_t> seen;
    bool capped = false;
    for (std::size_t r = 0; r < records_; ++r) {
      seen.insert(read_attr(r, attr));
      if (seen.size() > max_distinct_) {
        capped = true;
        break;
      }
    }
    if (capped) {
      distinct_[attr].reset();
    } else {
      std::vector<std::uint64_t> vals(seen.begin(), seen.end());
      std::sort(vals.begin(), vals.end());
      distinct_[attr] = std::move(vals);
    }
    distinct_stale_[attr] = false;
  }
  return distinct_.at(attr);
}

std::uint64_t PimStore::contents_checksum() const {
  std::uint64_t h = 1469598103934665603ULL;
  const std::size_t nattrs = table_->schema().attribute_count();
  for (std::size_t r = 0; r < records_; ++r) {
    for (std::size_t a = 0; a < nattrs; ++a) {
      h = (h ^ read_attr(r, a)) * 1099511628211ULL;
    }
  }
  return h;
}

void PimStore::rebuild_zone_crossbar(std::size_t attr,
                                     std::size_t crossbar) const {
  zones_.clear(attr, crossbar);
  const std::size_t first = crossbar * rows_per_crossbar_;
  const std::size_t last =
      std::min<std::size_t>(first + rows_per_crossbar_, records_);
  for (std::size_t r = first; r < last; ++r) {
    zones_.add(attr, crossbar, read_attr(r, attr));
  }
}

const ZoneMaps& PimStore::zone_maps() const {
  if (snap_ != nullptr) return snap_->zone_maps();
  if (zones_.any_stale()) {
    for (std::size_t a = 0; a < zones_.attr_count(); ++a) {
      if (!zones_.stale(a)) continue;
      for (std::size_t x = 0; x < zones_.crossbar_count(); ++x) {
        rebuild_zone_crossbar(a, x);
      }
      zones_.clear_stale(a);
    }
  }
  return zones_;
}

void PimStore::note_mutation(std::size_t attr,
                             const std::vector<std::uint32_t>* touched_crossbars) {
  if (snap_ != nullptr) {
    throw std::logic_error(
        "PimStore: view stores are immutable; apply updates through the "
        "builder (db::SnapshotManager) and adopt the published snapshot");
  }
  assert(mutation_locked_by_caller() &&
         "PimStore::note_mutation requires the mutation lock");
  attr_mutated_.at(attr) = true;
  distinct_stale_.at(attr) = true;
  data_version_.fetch_add(1, std::memory_order_acq_rel);

  // Zone sketches: rebuild exactly the crossbars the mutation touched when
  // the caller knows them (pim_update popcounts the select column per
  // crossbar anyway); an attribute already marked stale keeps its lazy
  // full rebuild — a partial refresh could not clear it.
  if (touched_crossbars != nullptr && !zones_.stale(attr)) {
    for (const std::uint32_t x : *touched_crossbars) {
      rebuild_zone_crossbar(attr, x);
    }
  } else {
    zones_.mark_stale(attr);
  }

  // Derived-statistics caches involving the attribute are stale; drop them
  // so the next consumer recomputes from current data (current_value reads
  // mutated attributes through the crossbars).
  for (auto it = fd_cache_.begin(); it != fd_cache_.end();) {
    it = (it->first.first == attr || it->first.second == attr)
             ? fd_cache_.erase(it)
             : std::next(it);
  }
  for (auto it = co_cache_.begin(); it != co_cache_.end();) {
    it = (it->first.first == attr || it->first.second == attr)
             ? co_cache_.erase(it)
             : std::next(it);
  }

  // Compiled-filter programs for the mutated part: the programs themselves
  // are pure functions of (predicates, layout), but the cache key cannot
  // observe data mutation — per-part invalidation keeps the contract simple
  // and is what the regression tests pin.
  filter_cache_.invalidate(part_of_attr(attr));

  // Page classifications summarize the mutated data; drop them wholesale
  // (keys do not name attributes, and mutation is rare on the builder).
  class_memo_.invalidate();
}

}  // namespace bbpim::engine
