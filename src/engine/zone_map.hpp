// Zone-map sketches: per-crossbar small materialized aggregates for data
// skipping.
//
// A crossbar holds up to 1024 records; for every (attribute, crossbar) pair
// the store keeps the min/max attribute code over the crossbar's valid
// records, plus — for low-cardinality attributes whose codes fit a 64-bit
// bitmap — the exact set of distinct codes present. A compiled WHERE
// conjunction can then be classified statically per crossbar:
//
//   always-false  no code in the sketch can satisfy some predicate — the
//                 crossbar provably contributes zero selected rows;
//   always-true   every code in the sketch satisfies every predicate — the
//                 select column equals the validity column, no gate program
//                 needed;
//   residual      anything else: run the program as usual.
//
// Sketches are an over-approximation of the value set (a superset never
// under-reports), which makes BOTH classifications sound: an empty
// intersection with a superset implies no real value matches, and a superset
// fully inside the predicate implies every real value matches.
//
// The sketches also drive the selectivity estimates used to order residual
// predicates (most-selective-first) and the EXPLAIN rendering of both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sql/logical_plan.hpp"

namespace bbpim::engine {

struct FilterPruneAnalysis;

/// Codes of an attribute fit the distinct-code bitmap when they are < 64.
/// Codes are < 2^bits by construction, so the packed width decides.
inline constexpr std::uint32_t kZoneBitmapMaxBits = 6;

/// Min/max (+ optional distinct-code bitmap) over one crossbar's valid
/// records of one attribute. Default state is empty (no valid records).
struct ZoneSketch {
  std::uint64_t min = ~0ULL;
  std::uint64_t max = 0;
  /// Bit i set <=> code i present; maintained only for bitmap attributes.
  std::uint64_t codes = 0;

  bool empty() const { return min > max; }

  void add(std::uint64_t v, bool bitmap) {
    if (v < min) min = v;
    if (v > max) max = v;
    if (bitmap) codes |= 1ULL << v;
  }
};

enum class ZoneClass : std::uint8_t { kAlwaysFalse, kAlwaysTrue, kResidual };

/// Classifies one predicate against one sketch. `bitmap` selects the exact
/// distinct-code test; otherwise only the min/max range is consulted.
/// An empty sketch (crossbar with no valid records) is always-false: the
/// validity bit already rejects every row there.
ZoneClass classify_predicate(const sql::BoundPredicate& p, const ZoneSketch& s,
                             bool bitmap);

/// Estimated fraction of the crossbar's records matching the predicate, in
/// [0, 1]. Exact for bitmap attributes under a uniform-within-code
/// assumption; a range-overlap ratio otherwise. Deterministic.
double sketch_selectivity(const sql::BoundPredicate& p, const ZoneSketch& s,
                          bool bitmap);

/// The sketch store: one ZoneSketch per (attribute, crossbar). Crossbar
/// indices are global within a part — record r lives in crossbar r /
/// crossbar_rows — and parts share coordinates (vertical partitioning keeps
/// record i at the same crossbar/row in every part), so one index space
/// covers all attributes.
class ZoneMaps {
 public:
  ZoneMaps() = default;
  /// `attr_bits[a]` is attribute a's packed width (decides bitmap mode).
  ZoneMaps(std::size_t crossbars, const std::vector<std::uint32_t>& attr_bits);

  bool enabled() const { return crossbars_ > 0; }
  std::size_t crossbar_count() const { return crossbars_; }
  std::size_t attr_count() const { return bitmap_.size(); }
  bool bitmap_attr(std::size_t attr) const { return bitmap_.at(attr); }

  const ZoneSketch& sketch(std::size_t attr, std::size_t crossbar) const {
    return sketches_[attr * crossbars_ + crossbar];
  }

  /// Widens the sketch with one observed value (load-time accumulation).
  void add(std::size_t attr, std::size_t crossbar, std::uint64_t v) {
    sketches_[attr * crossbars_ + crossbar].add(v, bitmap_[attr]);
  }

  /// Resets one (attr, crossbar) sketch to empty before an exact rebuild.
  void clear(std::size_t attr, std::size_t crossbar) {
    sketches_[attr * crossbars_ + crossbar] = ZoneSketch{};
  }

  // --- staleness (mutation protocol) ---------------------------------------
  /// An in-place UPDATE that could not name the touched crossbars marks the
  /// attribute stale; the owning store rebuilds it from the crossbars on
  /// next access (PimStore::zone_maps).
  bool stale(std::size_t attr) const { return stale_.at(attr); }
  void mark_stale(std::size_t attr) { stale_.at(attr) = true; }
  void clear_stale(std::size_t attr) { stale_.at(attr) = false; }
  bool any_stale() const;

 private:
  std::size_t crossbars_ = 0;
  std::vector<bool> bitmap_;           // per attr
  std::vector<bool> stale_;            // per attr
  std::vector<ZoneSketch> sketches_;   // [attr * crossbars_ + crossbar]
};

/// Memoized static page classifications: the full FilterPruneAnalysis of one
/// ordered predicate list against one store version, shared by every query
/// whose WHERE normalizes to the same predicates. Classification is a pure
/// function of (predicates, sketches), so a batch of N queries sharing a
/// filter — or one prepared statement re-executed — classifies each (page,
/// predicate) pair once instead of N times. Keys are the textual predicate
/// serialization (see classification_memo_key); entries are shared_ptrs so a
/// hit costs one refcount bump. Thread-safe; the builder store invalidates
/// the memo under its mutation protocol, and per-snapshot memos die with
/// their (immutable) snapshot, so a query can never observe a stale
/// classification.
class ClassificationMemo {
 public:
  /// The memoized analysis for `key`, or nullptr on miss. Counts the lookup.
  std::shared_ptr<const FilterPruneAnalysis> find(const std::string& key) const;
  /// Publishes an analysis; first writer wins on a racing double-compute.
  void insert(const std::string& key,
              std::shared_ptr<const FilterPruneAnalysis> analysis);
  /// Drops every entry (builder-store mutation protocol).
  void invalidate();

  std::uint64_t hit_count() const;
  std::uint64_t miss_count() const;
  std::size_t size() const;

 private:
  /// Distinct WHERE shapes per table version are few; overflow just resets.
  static constexpr std::size_t kMaxEntries = 256;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const FilterPruneAnalysis>>
      entries_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace bbpim::engine
