#include "engine/explain.hpp"

#include <iomanip>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>

#include "engine/filter_compiler.hpp"
#include "pim/agg_circuit.hpp"

namespace bbpim::engine {
namespace {

const char* op_name(pim::MicroOpKind kind) {
  switch (kind) {
    case pim::MicroOpKind::kInit0: return "INIT0";
    case pim::MicroOpKind::kInit1: return "INIT1";
    case pim::MicroOpKind::kNot: return "NOT  ";
    case pim::MicroOpKind::kNor: return "NOR  ";
  }
  return "?";
}

std::string pred_text(const sql::BoundPredicate& p, const rel::Schema& schema) {
  const std::string name = schema.attribute(p.attr).name;
  using Kind = sql::BoundPredicate::Kind;
  std::ostringstream ss;
  switch (p.kind) {
    case Kind::kEq: ss << name << " == " << p.v1; break;
    case Kind::kLt: ss << name << " < " << p.v1; break;
    case Kind::kLe: ss << name << " <= " << p.v1; break;
    case Kind::kGt: ss << name << " > " << p.v1; break;
    case Kind::kGe: ss << name << " >= " << p.v1; break;
    case Kind::kBetween:
      ss << p.v1 << " <= " << name << " <= " << p.v2;
      break;
    case Kind::kIn: {
      ss << name << " IN {";
      for (std::size_t i = 0; i < p.in_values.size(); ++i) {
        ss << (i ? "," : "") << p.in_values[i];
      }
      ss << "}";
      break;
    }
    case Kind::kNever: ss << "FALSE"; break;
    case Kind::kAlways: ss << "TRUE"; break;
  }
  return ss.str();
}

/// FILTER + ZONE MAP sections shared by explain_query and explain_scan.
void filter_section(const std::vector<sql::BoundPredicate>& filters,
                    const PimStore& store, std::ostream& os) {
  const rel::Schema& schema = store.table().schema();
  const pim::PimConfig& cfg = store.module_config();

  // Predicates in actual execution order (selectivity-ordered: the engine
  // compiles most-selective-first) with their sketch-estimated
  // selectivities.
  std::vector<double> estimates;
  const std::vector<sql::BoundPredicate> ordered =
      order_by_selectivity(filters, store, &estimates);
  for (int part = 0; part < store.parts(); ++part) {
    pim::ColumnAlloc alloc = store.layout(part).make_alloc();
    const CompiledFilter f = compile_filter(ordered, store.layout(part), alloc);
    os << "FILTER part " << part << ": " << f.predicate_count
       << " predicate(s), " << f.program.size() << " cycles ("
       << f.program.size() * cfg.logic_cycle_ns / 1000.0 << " us/page)\n";
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      const sql::BoundPredicate& p = ordered[i];
      if (p.kind == sql::BoundPredicate::Kind::kAlways) continue;
      if (p.kind != sql::BoundPredicate::Kind::kNever &&
          !store.layout(part).has(p.attr)) {
        continue;
      }
      os << "    " << pred_text(p, schema) << "  [est sel "
         << std::setprecision(3) << estimates[i] << std::setprecision(6)
         << "]\n";
    }
  }

  // Zone-map classification: what pruning (ExecOptions::prune) would skip.
  // Routed through the store's classification memo, so explaining a query a
  // pruned execution already classified reuses the cached analysis — and
  // the memo line below reports exactly that reuse.
  std::size_t memo_pages_reused = 0;
  const std::shared_ptr<const FilterPruneAnalysis> analysis =
      analyze_filters_cached(ordered, store, &memo_pages_reused);
  const FilterPruneAnalysis& zones = *analysis;
  os << "ZONE MAP: " << zones.pages_skipped << "/" << store.pages_per_part()
     << " pages skipped (" << zones.crossbars_skipped << " crossbars), "
     << zones.pages_synthesized << " always-true part-page program(s) "
     << "synthesized, " << zones.predicates_short_circuited
     << " predicate evaluation(s) short-circuited"
     << (zones.pages_skipped + zones.pages_synthesized > 0 ? " [with prune on]"
                                                           : "")
     << "\n";
  os << "ZONE MAP MEMO: "
     << (memo_pages_reused > 0
             ? "hit — " + std::to_string(memo_pages_reused) +
                   " page classification(s) reused"
             : "miss — classification computed and cached")
     << " (store memo: " << store.classification_memo().hit_count() << " hit(s), "
     << store.classification_memo().miss_count() << " miss(es))\n";
}

}  // namespace

void disassemble(const pim::MicroProgram& prog, std::ostream& os) {
  for (std::size_t i = 0; i < prog.size(); ++i) {
    const pim::MicroOp& op = prog[i];
    os << std::setw(4) << std::setfill('0') << i << ' ' << op_name(op.kind);
    switch (op.kind) {
      case pim::MicroOpKind::kInit0:
      case pim::MicroOpKind::kInit1:
        os << "              -> c" << op.out;
        break;
      case pim::MicroOpKind::kNot:
        os << " c" << std::setw(3) << op.a << "       -> c" << op.out;
        break;
      case pim::MicroOpKind::kNor:
        os << " c" << std::setw(3) << op.a << " c" << std::setw(3) << op.b
           << " -> c" << op.out;
        break;
    }
    os << '\n';
  }
  os << std::setfill(' ');
}

void explain_query(const sql::BoundQuery& q, const PimStore& store,
                   std::ostream& os) {
  const rel::Schema& schema = store.table().schema();
  const pim::PimConfig& cfg = store.module_config();

  os << "== physical plan (" << (store.parts() == 2 ? "two-xb" : "one-xb")
     << ", M=" << store.pages_per_part() << " pages/part, "
     << store.record_count() << " records) ==\n";

  // Phase 1: filter programs per part + zone-map classification.
  filter_section(q.filters, store, os);
  if (store.parts() == 2) {
    os << "TRANSFER: part-1 result column -> host -> part-0 ("
       << cfg.crossbar_rows << " lines/page each way), AND on part 0\n";
  }

  // Aggregation passes (mirrors build_agg_passes).
  os << "AGGREGATE: ";
  if (q.agg_func == sql::AggFunc::kCount) {
    os << "COUNT via SUM of the select column (1 pass, n=1)\n";
  } else {
    const std::string a = schema.attribute(q.agg_expr.a).name;
    switch (q.agg_expr.kind) {
      case sql::Expr::Kind::kColumn:
        os << (q.agg_func == sql::AggFunc::kMin   ? "MIN("
               : q.agg_func == sql::AggFunc::kMax ? "MAX("
                                                  : "SUM(")
           << a << "): 1 circuit pass, n="
           << pim::chunk_span(store.field(q.agg_expr.a), cfg) << "\n";
        break;
      case sql::Expr::Kind::kSub:
      case sql::Expr::Kind::kAdd:
        os << "SUM(" << a
           << (q.agg_expr.kind == sql::Expr::Kind::kSub ? " - " : " + ")
           << schema.attribute(q.agg_expr.b).name
           << "): 2 passes by linearity\n";
        break;
      case sql::Expr::Kind::kMul: {
        const std::string b = schema.attribute(q.agg_expr.b).name;
        const auto fa = store.field(q.agg_expr.a);
        const auto fb = store.field(q.agg_expr.b);
        const auto narrow = fa.width <= fb.width ? fa : fb;
        os << "SUM(" << a << " * " << b << "): " << narrow.width
           << " masked passes (one per multiplier bit) + 1 count pass\n";
        break;
      }
    }
  }

  // GROUP BY.
  if (q.has_group_by()) {
    os << "GROUP BY:";
    for (const std::size_t g : q.group_by) {
      os << " " << schema.attribute(g).name << "(part "
         << store.part_of_attr(g) << ")";
    }
    os << "\n  hybrid split: sample 1 page -> Equation 3 picks k\n";
  } else {
    os << "NO GROUP BY: single PIM aggregation over the filter result\n";
  }
}

std::string explain_query(const sql::BoundQuery& q, const PimStore& store) {
  std::ostringstream ss;
  explain_query(q, store, ss);
  return ss.str();
}

void explain_scan(const std::vector<sql::BoundPredicate>& filters,
                  const PimStore& store, std::ostream& os) {
  os << "== scan (" << (store.parts() == 2 ? "two-xb" : "one-xb")
     << ", M=" << store.pages_per_part() << " pages/part, "
     << store.record_count() << " records) ==\n";
  filter_section(filters, store, os);
  os << "READBACK: residual bit-vector + survivor record lines "
     << "(unique-line accounting)\n";
}

std::string explain_scan(const std::vector<sql::BoundPredicate>& filters,
                         const PimStore& store) {
  std::ostringstream ss;
  explain_scan(filters, store, ss);
  return ss.str();
}

void explain_join_tree(const sql::BoundJoin& plan,
                       const std::vector<const rel::Table*>& tables,
                       std::ostream& os) {
  const auto attr_name = [&](std::size_t table, std::size_t attr) {
    return plan.table_names[table] + "." +
           tables[table]->schema().attribute(attr).name;
  };
  os << "== join plan: star over fact '" << plan.table_names[plan.fact]
     << "' (" << plan.table_names.size() << " tables) ==\n";
  for (const sql::BoundBuildSide& b : plan.builds) {
    os << "BUILD " << plan.table_names[b.table] << " (partitioned hash, "
       << tables[b.table]->row_count() << " rows, "
       << plan.filters[b.table].size() << " filter(s)):";
    for (std::size_t i = 0; i < b.dim_attrs.size(); ++i) {
      os << (i ? " AND " : " ") << attr_name(plan.fact, b.fact_attrs[i])
         << " = " << attr_name(b.table, b.dim_attrs[i]);
    }
    os << "\n";
  }
  os << "PROBE " << plan.table_names[plan.fact] << " ("
     << tables[plan.fact]->row_count() << " rows, "
     << plan.filters[plan.fact].size() << " filter(s)): survivors cascade "
     << "through " << plan.builds.size() << " build side(s)\n";
  os << "AGGREGATE ";
  switch (plan.agg_func) {
    case sql::AggFunc::kSum: os << "SUM"; break;
    case sql::AggFunc::kMin: os << "MIN"; break;
    case sql::AggFunc::kMax: os << "MAX"; break;
    default: os << "COUNT"; break;
  }
  os << "(";
  if (plan.agg_func == sql::AggFunc::kCount) {
    os << "*";
  } else {
    os << attr_name(plan.agg_a.table, plan.agg_a.attr);
    if (plan.agg_kind == sql::Expr::Kind::kMul) os << " * ";
    if (plan.agg_kind == sql::Expr::Kind::kSub) os << " - ";
    if (plan.agg_kind == sql::Expr::Kind::kAdd) os << " + ";
    if (plan.agg_kind != sql::Expr::Kind::kColumn) {
      os << attr_name(plan.agg_b.table, plan.agg_b.attr);
    }
  }
  os << ") over joined rows";
  if (!plan.agg_alias.empty()) os << " AS " << plan.agg_alias;
  os << "\n";
  if (plan.has_group_by()) {
    os << "GROUP BY:";
    for (const sql::BoundColumnRef& g : plan.group_by) {
      os << " " << attr_name(g.table, g.attr);
    }
    os << "\n";
  }
}

}  // namespace bbpim::engine
