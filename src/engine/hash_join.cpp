#include "engine/hash_join.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace bbpim::engine {
namespace {

using GroupKey = std::vector<std::uint64_t>;

struct KeyHash {
  std::size_t operator()(const GroupKey& k) const {
    std::size_t h = 1469598103934665603ULL;
    for (const std::uint64_t v : k) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// splitmix64 finalizer: spreads dense dictionary codes across partitions.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::size_t kPartitions = 16;

}  // namespace

std::vector<std::vector<std::size_t>> join_scan_attrs(
    const sql::BoundJoin& plan) {
  std::vector<std::vector<std::size_t>> attrs(plan.table_names.size());
  for (const sql::BoundBuildSide& b : plan.builds) {
    for (const std::size_t a : b.fact_attrs) attrs[plan.fact].push_back(a);
    for (const std::size_t a : b.dim_attrs) attrs[b.table].push_back(a);
  }
  for (const sql::BoundColumnRef& g : plan.group_by) {
    attrs[g.table].push_back(g.attr);
  }
  if (plan.agg_func != sql::AggFunc::kCount) {
    attrs[plan.agg_a.table].push_back(plan.agg_a.attr);
    if (plan.agg_kind != sql::Expr::Kind::kColumn) {
      attrs[plan.agg_b.table].push_back(plan.agg_b.attr);
    }
  }
  for (std::vector<std::size_t>& v : attrs) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return attrs;
}

JoinOutput hash_join_execute(const sql::BoundJoin& plan,
                             const std::vector<JoinScanInput>& scans,
                             const host::HostConfig& hcfg,
                             const CancelToken& cancel) {
  if (scans.size() != plan.table_names.size()) {
    throw std::invalid_argument("hash_join_execute: one scan per table");
  }
  JoinOutput out;
  JoinStats& js = out.stats;
  js.partitions = kPartitions;
  const double threads = hcfg.threads == 0 ? 1.0 : hcfg.threads;

  const auto attrs = join_scan_attrs(plan);
  std::vector<std::unordered_map<std::size_t, std::size_t>> pos(attrs.size());
  for (std::size_t t = 0; t < attrs.size(); ++t) {
    for (std::size_t i = 0; i < attrs[t].size(); ++i) pos[t][attrs[t][i]] = i;
  }

  // --- build: one partitioned hash table per filtered dimension ------------
  struct Build {
    const sql::BoundBuildSide* side = nullptr;
    bool single = true;  ///< one key attribute (fast path; all of SSB)
    std::vector<std::size_t> fact_pos;  ///< probe key columns in the fact scan
    std::vector<std::size_t> dim_pos;   ///< build key columns in the dim scan
    std::vector<std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>>
        parts_single;
    std::vector<std::unordered_map<GroupKey, std::vector<std::uint32_t>,
                                   KeyHash>>
        parts_multi;
  };
  std::vector<Build> builds;
  builds.reserve(plan.builds.size());
  std::size_t build_total = 0;
  for (const sql::BoundBuildSide& side : plan.builds) {
    cancel.check();  // per build side: each is a full pass over one dim scan
    Build b;
    b.side = &side;
    b.single = side.dim_attrs.size() == 1;
    for (const std::size_t a : side.fact_attrs) {
      b.fact_pos.push_back(pos[plan.fact].at(a));
    }
    for (const std::size_t a : side.dim_attrs) {
      b.dim_pos.push_back(pos[side.table].at(a));
    }
    const JoinScanInput& dim = scans[side.table];
    const std::size_t rows = dim.row_count();
    js.build_rows.push_back(rows);
    build_total += rows;
    if (b.single) {
      b.parts_single.resize(kPartitions);
      const std::vector<std::uint64_t>& col = dim.columns[b.dim_pos[0]];
      for (std::size_t r = 0; r < rows; ++r) {
        const std::uint64_t k = col[r];
        b.parts_single[mix(k) & (kPartitions - 1)][k].push_back(
            static_cast<std::uint32_t>(r));
      }
    } else {
      b.parts_multi.resize(kPartitions);
      GroupKey key(b.dim_pos.size(), 0);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t i = 0; i < b.dim_pos.size(); ++i) {
          key[i] = dim.columns[b.dim_pos[i]][r];
        }
        b.parts_multi[mix(KeyHash{}(key)) & (kPartitions - 1)][key].push_back(
            static_cast<std::uint32_t>(r));
      }
    }
    builds.push_back(std::move(b));
  }
  js.build_ns = static_cast<double>(build_total) * hcfg.cpu_ns_per_record /
                threads;

  // --- probe: fact survivors cascade through the build sides ---------------
  const JoinScanInput& fact = scans[plan.fact];
  js.probe_rows = fact.row_count();

  // Group/aggregate column access for a joined combination.
  struct RefSlot {
    bool on_fact = true;
    std::size_t build = 0;  ///< index into `builds` when !on_fact
    std::size_t col = 0;    ///< column position in that table's scan
  };
  auto slot_of = [&](const sql::BoundColumnRef& ref) {
    RefSlot s;
    if (ref.table == plan.fact) {
      s.col = pos[plan.fact].at(ref.attr);
      return s;
    }
    s.on_fact = false;
    for (std::size_t b = 0; b < builds.size(); ++b) {
      if (builds[b].side->table == ref.table) s.build = b;
    }
    s.col = pos[ref.table].at(ref.attr);
    return s;
  };
  std::vector<RefSlot> group_slots;
  group_slots.reserve(plan.group_by.size());
  for (const sql::BoundColumnRef& g : plan.group_by) {
    group_slots.push_back(slot_of(g));
  }
  const bool want_values = plan.agg_func != sql::AggFunc::kCount;
  const bool have_b = plan.agg_kind != sql::Expr::Kind::kColumn;
  RefSlot agg_a, agg_b;
  if (want_values) {
    agg_a = slot_of(plan.agg_a);
    if (have_b) agg_b = slot_of(plan.agg_b);
  }
  sql::BoundAggExpr agg_eval;  // eval() dispatches on kind alone
  agg_eval.kind = plan.agg_kind;

  auto combine = [&](std::int64_t& slot, std::int64_t v) {
    if (plan.agg_func == sql::AggFunc::kMin) {
      slot = std::min(slot, v);
    } else if (plan.agg_func == sql::AggFunc::kMax) {
      slot = std::max(slot, v);
    } else {
      slot += v;
    }
  };

  std::unordered_map<GroupKey, std::int64_t, KeyHash> groups;
  std::int64_t total = 0;
  bool any = false;
  std::size_t joined = 0;
  std::vector<const std::vector<std::uint32_t>*> matches(builds.size());
  GroupKey probe_key;
  for (std::size_t r = 0; r < js.probe_rows; ++r) {
    // Periodic checkpoint: one clock read per 64K probed rows.
    if ((r & 0xFFFF) == 0) cancel.check();
    bool ok = true;
    for (std::size_t b = 0; b < builds.size(); ++b) {
      Build& bd = builds[b];
      if (bd.single) {
        const std::uint64_t k = fact.columns[bd.fact_pos[0]][r];
        const auto& part = bd.parts_single[mix(k) & (kPartitions - 1)];
        const auto it = part.find(k);
        if (it == part.end()) {
          ok = false;
          break;
        }
        matches[b] = &it->second;
      } else {
        probe_key.assign(bd.fact_pos.size(), 0);
        for (std::size_t i = 0; i < bd.fact_pos.size(); ++i) {
          probe_key[i] = fact.columns[bd.fact_pos[i]][r];
        }
        const auto& part =
            bd.parts_multi[mix(KeyHash{}(probe_key)) & (kPartitions - 1)];
        const auto it = part.find(probe_key);
        if (it == part.end()) {
          ok = false;
          break;
        }
        matches[b] = &it->second;
      }
    }
    if (!ok) continue;

    // Odometer over the per-dimension match lists: duplicate build keys
    // yield the cross product (unique SSB keys make this one iteration).
    std::vector<std::size_t> idx(builds.size(), 0);
    while (true) {
      ++joined;
      auto value_of = [&](const RefSlot& s) -> std::uint64_t {
        if (s.on_fact) return fact.columns[s.col][r];
        const std::uint32_t dim_row = (*matches[s.build])[idx[s.build]];
        return scans[builds[s.build].side->table].columns[s.col][dim_row];
      };
      std::int64_t v = 1;
      if (want_values) {
        const std::uint64_t va = value_of(agg_a);
        const std::uint64_t vb = have_b ? value_of(agg_b) : 0;
        v = static_cast<std::int64_t>(agg_eval.eval(va, vb));
      }
      if (plan.has_group_by()) {
        GroupKey key(group_slots.size());
        for (std::size_t i = 0; i < group_slots.size(); ++i) {
          key[i] = value_of(group_slots[i]);
        }
        const auto [it, fresh] = groups.try_emplace(std::move(key), v);
        if (!fresh) combine(it->second, v);
      } else if (!any) {
        total = v;
        any = true;
      } else {
        combine(total, v);
      }
      std::size_t d = 0;
      for (; d < builds.size(); ++d) {
        if (++idx[d] < matches[d]->size()) break;
        idx[d] = 0;
      }
      if (d == builds.size()) break;
    }
  }
  js.joined_rows = joined;
  js.probe_ns = static_cast<double>(js.probe_rows) *
                static_cast<double>(builds.size()) * hcfg.cpu_ns_per_record /
                threads;

  // --- finalize: the single-table engine's exact ordering -------------------
  if (plan.has_group_by()) {
    out.rows.reserve(groups.size());
    for (auto& [key, v] : groups) out.rows.push_back(ResultRow{key, v});
    std::sort(out.rows.begin(), out.rows.end(),
              [&](const ResultRow& a, const ResultRow& b) {
                for (const sql::BoundOrderItem& o : plan.order_by) {
                  if (o.is_agg) {
                    if (a.agg != b.agg) {
                      return o.desc ? a.agg > b.agg : a.agg < b.agg;
                    }
                  } else {
                    const std::uint64_t va = a.group[o.group_pos];
                    const std::uint64_t vb = b.group[o.group_pos];
                    if (va != vb) return o.desc ? va > vb : va < vb;
                  }
                }
                return a.group < b.group;  // deterministic tiebreak
              });
  } else {
    out.rows.push_back(ResultRow{{}, any ? total : 0});
  }
  js.finalize_ns = static_cast<double>(out.rows.size()) * 50.0;
  return out;
}

}  // namespace bbpim::engine
