// PimStore: a relation resident in the PIM module.
//
// Loads a (pre-joined) relation into hugepages, one record per crossbar row.
// Supports the paper's two placements: one-xb (whole record in one crossbar
// row) and two-xb (vertical partitioning of Section III/V-A: fact attributes
// in one aligned page set, dimension attributes in another; record i lives
// at the same crossbar/row coordinate in both parts).
//
// Also computes per-attribute distinct-value statistics used by the
// GROUP-BY planner to enumerate candidate subgroups ("total number of
// potential subgroups according to query and database details", Table II).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/filter_compiler.hpp"
#include "engine/layout.hpp"
#include "engine/snapshot_store.hpp"
#include "engine/zone_map.hpp"
#include "pim/module.hpp"
#include "relational/table.hpp"

namespace bbpim::engine {

// A PimStore runs in one of two modes:
//
//   builder — the classic mutable store: loads the relation into its
//     module's crossbars, owns zone maps, distinct/FD/co-occurrence stats
//     and the compiled-filter cache, and accepts in-place mutation through
//     the lock + note_mutation protocol. db::SnapshotManager keeps exactly
//     one builder per table and publishes its state as StoreSnapshots.
//
//   view — an immutable serving store over one published StoreSnapshot:
//     its crossbars' data segments point at the snapshot's shared segments
//     (zero copy; see Crossbar::adopt_data), and zone maps, derived stats
//     and the filter cache delegate to the snapshot. Views skip loading
//     entirely, never mutate (note_mutation throws), and re-point to a
//     newer snapshot in O(crossbars) shared_ptr assignments via adopt().
class PimStore {
 public:
  struct Options {
    bool two_crossbar = false;
    /// Part assignment for two-crossbar mode; defaults to the SSB rule
    /// (fact attributes "lo_*" in part 0, dimension attributes in part 1 —
    /// the paper's worst-case partitioning).
    std::function<int(const std::string&)> part_of;
    /// Distinct-value stats are kept only up to this cardinality; higher
    /// attributes never qualify for pure-PIM group enumeration anyway.
    std::size_t max_distinct = 4096;
  };

  PimStore(pim::PimModule& module, const rel::Table& table, Options opt);
  /// One-crossbar store with default options.
  PimStore(pim::PimModule& module, const rel::Table& table)
      : PimStore(module, table, Options()) {}
  /// View store over a published snapshot: allocates pages in `module`
  /// (scratch only — the data segments are adopted from `snap`, not
  /// loaded) and serves queries against that immutable version. `opt` must
  /// describe the same placement the builder used.
  PimStore(pim::PimModule& module, const rel::Table& table, Options opt,
           std::shared_ptr<const StoreSnapshot> snap);

  /// Re-points a view store at a newer snapshot of the same geometry
  /// (O(crossbars) shared_ptr assignments; nothing is copied or replayed).
  void adopt(std::shared_ptr<const StoreSnapshot> snap);

  bool is_view() const { return snap_ != nullptr; }
  /// The pinned snapshot (views only; nullptr for builders).
  const std::shared_ptr<const StoreSnapshot>& snapshot() const {
    return snap_;
  }

  pim::PimModule& module() { return *module_; }
  const pim::PimConfig& module_config() const { return module_->config(); }
  const rel::Table& table() const { return *table_; }

  int parts() const { return two_crossbar_ ? 2 : 1; }
  std::size_t record_count() const { return records_; }
  /// Pages per part (the paper's M counts pages per copy of the records).
  std::size_t pages_per_part() const { return pages_per_part_; }
  std::uint32_t records_per_page() const { return records_per_page_; }

  int part_of_attr(std::size_t attr) const { return attr_part_.at(attr); }
  const RecordLayout& layout(int part) const { return layouts_.at(part); }
  pim::Field field(std::size_t attr) const {
    return layouts_.at(attr_part_.at(attr)).field(attr);
  }

  /// Module page holding page `i` of `part`.
  pim::Page& page(int part, std::size_t i);
  std::size_t module_page_index(int part, std::size_t i) const;

  /// Valid records in page i (the last page may be partial).
  std::uint32_t page_records(std::size_t i) const;

  /// Functional host read of one attribute of one record.
  std::uint64_t read_attr(std::size_t record, std::size_t attr) const;

  /// Sorted distinct values of an attribute, or nullopt when cardinality
  /// exceeded Options::max_distinct. After an in-place mutation the stats
  /// are rebuilt lazily from the crossbars on first access, so a burst of
  /// catch-up-replayed updates costs one rescan, not one per update.
  const std::optional<std::vector<std::uint64_t>>& distinct_values(
      std::size_t attr) const;

  /// Full-store FNV-1a digest over every record's attribute codes, read
  /// through the crossbars — the store-equivalence checksum the HTAP bench
  /// and determinism tests compare against their serial oracles.
  std::uint64_t contents_checksum() const;

  /// Value map of the functional dependency attr_a -> attr_b, or nullptr
  /// when it does not hold (or either side's cardinality is uncapped).
  /// SSB's hierarchies (brand -> category -> mfgr, city -> nation -> region)
  /// are what let the planner derive Table II's "total subgroups according
  /// to query and database details". Computed lazily, cached.
  const std::unordered_map<std::uint64_t, std::uint64_t>*
  functional_dependency(std::size_t attr_a, std::size_t attr_b) const;

  /// Sorted attr_b values co-occurring with each attr_a value (the general
  /// form of the above: d_yearmonth = 'Dec1997' leaves d_year = {1997} even
  /// though year does not determine yearmonth). nullptr when either side's
  /// cardinality is uncapped. Computed lazily, cached.
  const std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>*
  co_occurrence(std::size_t attr_a, std::size_t attr_b) const;

  /// Memoized WHERE compilations against this store's layouts (repeated
  /// prepared-statement executions skip recompilation). Views share the
  /// builder's cache through their snapshot: programs are pure functions of
  /// (predicates, layout, allocator state), so one memo serves every worker
  /// and every version, and the builder's mutation invalidation reaches all
  /// of them.
  FilterCache& filter_cache() {
    return snap_ != nullptr ? snap_->filter_cache() : filter_cache_;
  }

  /// Memoized static page classifications (see ClassificationMemo). Views
  /// delegate to their snapshot's per-version memo; builders own one that
  /// note_mutation invalidates, so classifications never outlive the data
  /// they summarize.
  ClassificationMemo& classification_memo() const {
    return snap_ != nullptr ? snap_->classification_memo() : class_memo_;
  }

  /// Options::max_distinct (the distinct-stats cardinality cap).
  std::size_t max_distinct() const { return max_distinct_; }
  /// True once `attr`'s stored values diverged from the backing table.
  bool attr_mutated(std::size_t attr) const { return attr_mutated_.at(attr); }

  /// Zone-map sketches: per (attribute, crossbar) min/max code plus a
  /// distinct-code bitmap for low-cardinality attributes. Built from the
  /// backing table at load time; kept exact across in-place mutation
  /// (pim_update refreshes the touched crossbars incrementally, and any
  /// attribute marked stale by a blanket note_mutation is rebuilt from the
  /// crossbars here, on first access). Crossbar index = record / rows —
  /// parts share coordinates, so one index space covers both layouts.
  const ZoneMaps& zone_maps() const;

  // --- mutation (Algorithm-1 UPDATE) ---------------------------------------
  // Crossbar data can be rewritten in place (engine::pim_update). Everything
  // this store caches about the data — distinct-value stats, functional
  // dependencies, co-occurrence maps, compiled-filter programs — observes
  // mutation through the protocol below: take the mutation lock, mutate,
  // call note_mutation(attr). Queries racing a mutation on the SAME store
  // are the caller's bug (the db facade's per-table writer gate enforces
  // exclusion); the lock exists so that bug is caught, not silently raced.

  /// RAII exclusive mutation lock. pim_update asserts (debug builds) that
  /// the calling thread holds it.
  class MutationLock {
   public:
    explicit MutationLock(PimStore& store) : store_(&store) {
      store_->mutation_mutex_.lock();
      store_->mutation_owner_.store(std::this_thread::get_id(),
                                    std::memory_order_release);
    }
    ~MutationLock() {
      if (store_ != nullptr) {
        store_->mutation_owner_.store(std::thread::id{},
                                      std::memory_order_release);
        store_->mutation_mutex_.unlock();
      }
    }
    MutationLock(MutationLock&& other) noexcept : store_(other.store_) {
      other.store_ = nullptr;
    }
    MutationLock(const MutationLock&) = delete;
    MutationLock& operator=(const MutationLock&) = delete;
    MutationLock& operator=(MutationLock&&) = delete;

   private:
    PimStore* store_;
  };

  MutationLock lock_mutation() { return MutationLock(*this); }

  /// True when the calling thread holds the mutation lock.
  bool mutation_locked_by_caller() const {
    return mutation_owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  /// Bumped once per data mutation (note_mutation); lets callers detect
  /// that cached derivations of store contents are stale. Views report
  /// their snapshot's published version (the update-log prefix length).
  std::uint64_t data_version() const {
    return snap_ != nullptr ? snap_->version()
                            : data_version_.load(std::memory_order_acquire);
  }

  /// Records that `attr`'s stored values changed in place: bumps
  /// data_version, rebuilds the attribute's distinct-value stats from the
  /// crossbars, drops the functional-dependency and co-occurrence cache
  /// entries that involve the attribute, and invalidates the compiled-filter
  /// cache for the attribute's part. Caller must hold the mutation lock.
  ///
  /// `touched_crossbars` (global crossbar indices whose rows were rewritten)
  /// enables incremental zone-map maintenance: only those sketches are
  /// rebuilt, exactly, from the crossbars. Passing nullptr marks the whole
  /// attribute's sketches stale for a lazy full rebuild on next access —
  /// sound either way, a query can never observe a sketch that is narrower
  /// than the stored data.
  void note_mutation(std::size_t attr,
                     const std::vector<std::uint32_t>* touched_crossbars =
                         nullptr);

 private:
  void load_part(int part);
  /// Current value of one attribute of one record: the crossbars once the
  /// attribute was mutated, the (cheaper) backing table column before.
  std::uint64_t current_value(std::size_t record, std::size_t attr) const;
  /// Exact sketch rebuild of one (attr, crossbar) from the crossbar data.
  void rebuild_zone_crossbar(std::size_t attr, std::size_t crossbar) const;

  pim::PimModule* module_;
  const rel::Table* table_;
  bool two_crossbar_ = false;
  std::size_t records_ = 0;
  std::uint32_t records_per_page_ = 0;
  std::size_t pages_per_part_ = 0;
  std::vector<int> attr_part_;               // attr -> part
  std::vector<RecordLayout> layouts_;        // per part
  std::vector<std::size_t> base_page_;       // per part
  /// Lazily refreshed after mutation (see distinct_values), hence mutable.
  mutable std::vector<std::optional<std::vector<std::uint64_t>>> distinct_;
  /// (a, b) -> value map when the FD holds, nullopt when checked and absent.
  mutable std::map<std::pair<std::size_t, std::size_t>,
                   std::optional<std::unordered_map<std::uint64_t, std::uint64_t>>>
      fd_cache_;
  mutable std::map<std::pair<std::size_t, std::size_t>,
                   std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>>
      co_cache_;
  FilterCache filter_cache_;
  /// Builder-owned classification memo (views use their snapshot's).
  mutable ClassificationMemo class_memo_;
  /// Lazily rebuilt for attributes marked stale (see zone_maps), hence
  /// mutable.
  mutable ZoneMaps zones_;
  std::uint32_t rows_per_crossbar_ = 0;

  std::size_t max_distinct_ = 0;      ///< Options::max_distinct (for refresh)
  std::vector<bool> attr_mutated_;    ///< attr diverged from the table column
  /// Distinct stats invalidated by note_mutation, rebuilt on next access.
  mutable std::vector<bool> distinct_stale_;
  mutable std::mutex mutation_mutex_;
  std::atomic<std::thread::id> mutation_owner_{};
  std::atomic<std::uint64_t> data_version_{0};
  /// Set iff this store is a view; pins the snapshot it serves.
  std::shared_ptr<const StoreSnapshot> snap_;
};

}  // namespace bbpim::engine
