#include "engine/snapshot_store.hpp"

#include <algorithm>
#include <unordered_set>

#include "engine/pim_store.hpp"

namespace bbpim::engine {

SnapshotStats::SnapshotStats(const PimStore& builder)
    : table_(&builder.table()),
      records_(builder.record_count()),
      max_distinct_(builder.max_distinct()) {
  const std::size_t nattrs = table_->schema().attribute_count();
  attr_mutated_.resize(nattrs);
  distinct_.resize(nattrs);
  distinct_stale_.assign(nattrs, false);
  for (std::size_t a = 0; a < nattrs; ++a) {
    attr_mutated_[a] = builder.attr_mutated(a);
    // The accessor settles any staleness in the builder before we copy.
    distinct_[a] = builder.distinct_values(a);
  }
}

SnapshotStats::SnapshotStats(const SnapshotStats& prev,
                             const std::vector<std::size_t>& touched_attrs)
    : table_(prev.table_),
      records_(prev.records_),
      max_distinct_(prev.max_distinct_) {
  // prev may be concurrently filling lazily; copy under its lock.
  std::lock_guard<std::mutex> lock(prev.mutex_);
  attr_mutated_ = prev.attr_mutated_;
  distinct_ = prev.distinct_;
  distinct_stale_ = prev.distinct_stale_;
  fd_cache_ = prev.fd_cache_;
  co_cache_ = prev.co_cache_;
  for (const std::size_t a : touched_attrs) {
    attr_mutated_.at(a) = true;
    distinct_stale_.at(a) = true;
    for (auto it = fd_cache_.begin(); it != fd_cache_.end();) {
      it = (it->first.first == a || it->first.second == a)
               ? fd_cache_.erase(it)
               : std::next(it);
    }
    for (auto it = co_cache_.begin(); it != co_cache_.end();) {
      it = (it->first.first == a || it->first.second == a)
               ? co_cache_.erase(it)
               : std::next(it);
    }
  }
}

std::uint64_t SnapshotStats::value_locked(const PimStore& reader,
                                          std::size_t record,
                                          std::size_t attr) const {
  return attr_mutated_.at(attr) ? reader.read_attr(record, attr)
                                : table_->column(attr)[record];
}

const std::optional<std::vector<std::uint64_t>>& SnapshotStats::distinct_locked(
    std::size_t attr, const PimStore& reader) const {
  if (distinct_stale_.at(attr)) {
    // Same capping rule as the builder's load-time scan, read through the
    // snapshot's crossbars.
    std::unordered_set<std::uint64_t> seen;
    bool capped = false;
    for (std::size_t r = 0; r < records_; ++r) {
      seen.insert(reader.read_attr(r, attr));
      if (seen.size() > max_distinct_) {
        capped = true;
        break;
      }
    }
    if (capped) {
      distinct_[attr].reset();
    } else {
      std::vector<std::uint64_t> vals(seen.begin(), seen.end());
      std::sort(vals.begin(), vals.end());
      distinct_[attr] = std::move(vals);
    }
    distinct_stale_[attr] = false;
  }
  return distinct_.at(attr);
}

const std::optional<std::vector<std::uint64_t>>& SnapshotStats::distinct_values(
    std::size_t attr, const PimStore& reader) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return distinct_locked(attr, reader);
}

const std::unordered_map<std::uint64_t, std::uint64_t>*
SnapshotStats::functional_dependency(std::size_t attr_a, std::size_t attr_b,
                                     const PimStore& reader) const {
  if (attr_a == attr_b) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!distinct_locked(attr_a, reader) || !distinct_locked(attr_b, reader)) {
    return nullptr;
  }
  const auto key = std::make_pair(attr_a, attr_b);
  const auto it = fd_cache_.find(key);
  if (it != fd_cache_.end()) {
    return it->second ? &*it->second : nullptr;
  }
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  map.reserve(distinct_[attr_a]->size());
  for (std::size_t r = 0; r < records_; ++r) {
    const std::uint64_t va = value_locked(reader, r, attr_a);
    const std::uint64_t vb = value_locked(reader, r, attr_b);
    const auto [entry, fresh] = map.try_emplace(va, vb);
    if (!fresh && entry->second != vb) {
      fd_cache_.emplace(key, std::nullopt);  // violated: not a dependency
      return nullptr;
    }
  }
  auto [stored, ignored] = fd_cache_.emplace(key, std::move(map));
  (void)ignored;
  return &*stored->second;
}

const std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>*
SnapshotStats::co_occurrence(std::size_t attr_a, std::size_t attr_b,
                             const PimStore& reader) const {
  if (attr_a == attr_b) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!distinct_locked(attr_a, reader) || !distinct_locked(attr_b, reader)) {
    return nullptr;
  }
  const auto key = std::make_pair(attr_a, attr_b);
  const auto it = co_cache_.find(key);
  if (it != co_cache_.end()) return &it->second;

  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> map;
  map.reserve(distinct_[attr_a]->size());
  for (std::size_t r = 0; r < records_; ++r) {
    std::vector<std::uint64_t>& vals = map[value_locked(reader, r, attr_a)];
    const std::uint64_t vb = value_locked(reader, r, attr_b);
    if (std::find(vals.begin(), vals.end(), vb) == vals.end()) {
      vals.push_back(vb);
    }
  }
  for (auto& [a, vals] : map) std::sort(vals.begin(), vals.end());
  auto [stored, fresh] = co_cache_.emplace(key, std::move(map));
  (void)fresh;
  return &stored->second;
}

StoreSnapshot::StoreSnapshot(
    std::uint64_t version,
    std::vector<std::vector<pim::CrossbarSegment>> segments,
    std::size_t pages_per_part, std::shared_ptr<const ZoneMaps> zones,
    std::shared_ptr<SnapshotStats> stats, FilterCache* filter_cache,
    std::shared_ptr<std::atomic<std::int64_t>> live_counter)
    : version_(version),
      segments_(std::move(segments)),
      pages_per_part_(pages_per_part),
      zones_(std::move(zones)),
      stats_(std::move(stats)),
      filter_cache_(filter_cache),
      live_counter_(std::move(live_counter)) {
  if (live_counter_) live_counter_->fetch_add(1, std::memory_order_acq_rel);
}

StoreSnapshot::~StoreSnapshot() {
  if (live_counter_) live_counter_->fetch_sub(1, std::memory_order_acq_rel);
}

std::shared_ptr<const StoreSnapshot> freeze_snapshot(
    PimStore& builder, std::uint64_t version, const StoreSnapshot* prev,
    const std::vector<std::size_t>& touched_attrs,
    std::shared_ptr<std::atomic<std::int64_t>> live_counter) {
  std::vector<std::vector<pim::CrossbarSegment>> segments;
  segments.reserve(static_cast<std::size_t>(builder.parts()) *
                   builder.pages_per_part());
  for (int part = 0; part < builder.parts(); ++part) {
    for (std::size_t p = 0; p < builder.pages_per_part(); ++p) {
      pim::Page& page = builder.page(part, p);
      std::vector<pim::CrossbarSegment> xbs;
      xbs.reserve(page.crossbar_count());
      for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
        xbs.push_back(page.crossbar(x).data_segment());
      }
      segments.push_back(std::move(xbs));
    }
  }
  // The accessor settles staleness, so the copy is exact for this version.
  auto zones = std::make_shared<const ZoneMaps>(builder.zone_maps());
  auto stats = prev != nullptr
                   ? std::make_shared<SnapshotStats>(prev->stats(),
                                                     touched_attrs)
                   : std::make_shared<SnapshotStats>(builder);
  return std::make_shared<StoreSnapshot>(
      version, std::move(segments), builder.pages_per_part(),
      std::move(zones), std::move(stats), &builder.filter_cache(),
      std::move(live_counter));
}

}  // namespace bbpim::engine
