#include "engine/model_fitter.hpp"

#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "engine/pim_store.hpp"
#include "engine/query_exec.hpp"
#include "pim/module.hpp"
#include "relational/table.hpp"

namespace bbpim::engine {
namespace {

constexpr std::uint32_t kKeyBits = 20;
constexpr std::uint32_t kGidValues = 64;

/// Synthetic relation: key (filter target) | pad | gid | val.
/// The pad aligns gid to a chunk boundary so that the host reads exactly
/// 1 + val_chunks chunks per record, giving precise control over s and n.
rel::Table make_synthetic(std::size_t records, std::uint32_t val_bits,
                          Rng& rng) {
  std::vector<rel::Attribute> attrs;
  attrs.push_back({"key", rel::DataType::kInt, kKeyBits, nullptr});
  attrs.push_back({"pad", rel::DataType::kInt, 12, nullptr});
  attrs.push_back({"gid", rel::DataType::kInt, 16, nullptr});
  attrs.push_back({"val", rel::DataType::kInt, val_bits, nullptr});
  rel::Table t(rel::Schema(std::move(attrs)), "synthetic");
  t.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    const std::uint64_t row[4] = {
        rng.next_below(1ULL << kKeyBits),
        0,
        i % kGidValues,
        rng.next_below(1ULL << 14),  // small values: sums never overflow
    };
    t.append_row(row);
  }
  return t;
}

sql::BoundQuery make_query(double ratio) {
  sql::BoundQuery q;
  sql::BoundPredicate p;
  p.kind = sql::BoundPredicate::Kind::kLt;
  p.attr = 0;  // key
  p.v1 = static_cast<std::uint64_t>(ratio * (1ULL << kKeyBits));
  q.filters.push_back(p);
  q.group_by = {2};  // gid
  q.agg_func = sql::AggFunc::kSum;
  q.agg_expr.kind = sql::Expr::Kind::kColumn;
  q.agg_expr.a = 3;  // val
  return q;
}

struct Fixture {
  std::unique_ptr<pim::PimModule> module;
  std::unique_ptr<rel::Table> table;
  std::unique_ptr<PimStore> store;
  std::unique_ptr<PimQueryEngine> engine;
};

Fixture make_fixture(EngineKind kind, const pim::PimConfig& cfg,
                     const host::HostConfig& hcfg, std::size_t pages,
                     std::uint32_t val_bits, Rng& rng) {
  Fixture f;
  f.module = std::make_unique<pim::PimModule>(cfg);
  f.table = std::make_unique<rel::Table>(
      make_synthetic(pages * cfg.records_per_page(), val_bits, rng));
  PimStore::Options opt;
  if (kind == EngineKind::kTwoXb) {
    opt.two_crossbar = true;
    // Worst-case partitioning, as in the paper: the group identifier lives
    // in the dimension part, the aggregated value in the fact part.
    opt.part_of = [](const std::string& name) {
      return name == "gid" ? 1 : 0;
    };
  }
  f.store = std::make_unique<PimStore>(*f.module, *f.table, opt);
  f.engine = std::make_unique<PimQueryEngine>(kind, *f.store, hcfg);
  return f;
}

}  // namespace

ModelFitResult fit_latency_models(EngineKind kind, const pim::PimConfig& cfg,
                                  const host::HostConfig& hcfg,
                                  const FitConfig& fit) {
  if (fit.page_counts.size() < 2) {
    throw std::invalid_argument("fit_latency_models: need >= 2 page counts");
  }
  Rng rng(fit.seed);
  ModelFitResult out;

  // --- host-gb: measure T_host-gb(M, s, r), fit slope(r) per s ------------
  for (const std::uint32_t s : fit.s_values) {
    if (s < 2) throw std::invalid_argument("s must be >= 2 (gid + value)");
    const std::uint32_t val_bits = 16 * (s - 1);
    // slope for each r: linear fit of T over M.
    std::vector<double> rs, slopes;
    for (const double r : fit.ratios) {
      std::vector<double> ms, ts;
      for (const std::size_t pages : fit.page_counts) {
        Fixture f = make_fixture(kind, cfg, hcfg, pages, val_bits, rng);
        ExecOptions opts;
        opts.force_k = 0;
        const QueryOutput q = f.engine->execute(make_query(r), opts);
        ms.push_back(static_cast<double>(pages));
        ts.push_back(q.stats.phases.host_gb);
        out.host_obs.push_back(
            {static_cast<double>(pages), s, r, q.stats.phases.host_gb});
      }
      slopes.push_back(fit_linear(ms, ts).slope);
      rs.push_back(r);
    }
    out.models.host_slope.emplace(s, fit_sqrt(rs, slopes));
  }

  // --- pim-gb: measure per-subgroup T_pim-gb(M, n), linear fit over M -----
  for (const std::uint32_t n : fit.n_values) {
    const std::uint32_t val_bits = 16 * n;
    std::vector<double> ms, ts;
    for (const std::size_t pages : fit.page_counts) {
      Fixture f = make_fixture(kind, cfg, hcfg, pages, val_bits, rng);
      ExecOptions opts;
      opts.force_k = 1;
      opts.skip_host_gb = true;
      // Moderate selectivity: pim-gb cost is selection-independent.
      const QueryOutput q = f.engine->execute(make_query(0.2), opts);
      ms.push_back(static_cast<double>(pages));
      ts.push_back(q.stats.phases.pim_gb);
      out.pim_obs.push_back(
          {static_cast<double>(pages), n, 0.2, q.stats.phases.pim_gb});
    }
    out.models.pim_gb.emplace(n, fit_linear(ms, ts));
  }
  return out;
}

std::uint64_t config_fingerprint(const pim::PimConfig& cfg,
                                 const host::HostConfig& hcfg,
                                 const FitConfig& fit) {
  // FNV-1a over a canonical textual dump of every field either latency
  // model depends on. Text (max precision) sidesteps double-representation
  // pitfalls while staying stable across platforms and runs.
  // Deliberately excluded: HostConfig::sim_threads (simulation speed only)
  // and HostConfig::prune (zone-map pruning never changes the modeled
  // per-page cost of a page that executes, so fitted models stay valid
  // with it on or off).
  std::ostringstream dump;
  dump.precision(17);
  dump << cfg.crossbar_rows << ' ' << cfg.crossbar_cols << ' '
       << cfg.crossbars_per_page << ' ' << cfg.chips << ' '
       << cfg.capacity_bytes << ' ' << cfg.read_bits << ' '
       << cfg.logic_cycle_ns << ' ' << cfg.read_cycle_ns << ' '
       << cfg.write_cycle_ns << ' ' << cfg.logic_energy_fj_per_bit << ' '
       << cfg.read_energy_pj_per_bit << ' ' << cfg.write_energy_pj_per_bit
       << ' ' << cfg.agg_circuit_power_uw << ' ' << cfg.controller_power_uw
       << " | " << hcfg.threads << ' ' << hcfg.line_stream_ns << ' '
       << hcfg.line_random_ns << ' ' << hcfg.issue_ns << ' '
       << hcfg.phase_overhead_ns << ' ' << hcfg.request_window << ' '
       << hcfg.cpu_ns_per_record << ' ' << hcfg.cpu_ns_per_sample << ' '
       << hcfg.plan_overhead_ns << " |";
  for (const std::size_t m : fit.page_counts) dump << ' ' << m;
  dump << " |";
  for (const double r : fit.ratios) dump << ' ' << r;
  dump << " |";
  for (const std::uint32_t s : fit.s_values) dump << ' ' << s;
  dump << " |";
  for (const std::uint32_t n : fit.n_values) dump << ' ' << n;
  dump << " | " << fit.seed;

  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : dump.str()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash != 0 ? hash : 1;  // 0 means "no fingerprint" in cache files
}

}  // namespace bbpim::engine
