#include "engine/prejoin.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "engine/filter_compiler.hpp"
#include "host/pipeline.hpp"
#include "pim/controller.hpp"
#include "pim/trackers.hpp"

namespace bbpim::engine {

rel::Table prejoin(const rel::Table& fact, std::span<const DimensionSpec> dims,
                   std::string name) {
  // Output schema: fact attributes, then each dimension's carried attributes.
  std::vector<rel::Attribute> attrs = fact.schema().attributes();

  struct DimPlan {
    const rel::Table* dim;
    std::size_t fk_idx;                     // in fact
    std::size_t key_idx;                    // in dim
    std::vector<std::size_t> carried;       // dim attribute indices
    std::unordered_map<std::uint64_t, std::size_t> key_to_row;
  };
  std::vector<DimPlan> plans;

  for (const DimensionSpec& spec : dims) {
    if (spec.dim == nullptr) throw std::invalid_argument("prejoin: null dim");
    DimPlan plan;
    plan.dim = spec.dim;
    const auto fk = fact.schema().index_of(spec.fact_fk);
    if (!fk) throw std::invalid_argument("prejoin: unknown fk " + spec.fact_fk);
    plan.fk_idx = *fk;
    const auto key = spec.dim->schema().index_of(spec.dim_key);
    if (!key) throw std::invalid_argument("prejoin: unknown key " + spec.dim_key);
    plan.key_idx = *key;

    for (std::size_t a = 0; a < spec.dim->schema().attribute_count(); ++a) {
      const std::string& aname = spec.dim->schema().attribute(a).name;
      if (a == plan.key_idx) continue;
      bool excluded = false;
      for (const std::string& e : spec.exclude) {
        if (e == aname) {
          excluded = true;
          break;
        }
      }
      if (excluded) continue;
      plan.carried.push_back(a);
      attrs.push_back(spec.dim->schema().attribute(a));
    }

    plan.key_to_row.reserve(spec.dim->row_count());
    for (std::size_t r = 0; r < spec.dim->row_count(); ++r) {
      if (!plan.key_to_row.emplace(spec.dim->value(r, plan.key_idx), r).second) {
        throw std::invalid_argument("prejoin: duplicate dimension key in " +
                                    spec.dim->name());
      }
    }
    plans.push_back(std::move(plan));
  }

  rel::Table out(rel::Schema(std::move(attrs)), std::move(name));
  out.reserve(fact.row_count());
  std::vector<std::uint64_t> row;
  for (std::size_t r = 0; r < fact.row_count(); ++r) {
    row.clear();
    for (std::size_t a = 0; a < fact.schema().attribute_count(); ++a) {
      row.push_back(fact.value(r, a));
    }
    for (const DimPlan& plan : plans) {
      const auto it = plan.key_to_row.find(fact.value(r, plan.fk_idx));
      if (it == plan.key_to_row.end()) {
        throw std::runtime_error("prejoin: dangling foreign key in row " +
                                 std::to_string(r));
      }
      for (const std::size_t a : plan.carried) {
        row.push_back(plan.dim->value(it->second, a));
      }
    }
    out.append_row(row);
  }
  return out;
}

UpdateStats pim_update(PimStore& store, const host::HostConfig& hcfg,
                       const std::vector<sql::BoundPredicate>& where,
                       std::size_t attr, std::uint64_t new_value) {
  assert(store.mutation_locked_by_caller() &&
         "pim_update requires the store's mutation lock "
         "(PimStore::lock_mutation); the db facade's writer gate takes it");
  const int part = store.part_of_attr(attr);
  for (const sql::BoundPredicate& p : where) {
    if (p.kind != sql::BoundPredicate::Kind::kAlways &&
        p.kind != sql::BoundPredicate::Kind::kNever &&
        store.part_of_attr(p.attr) != part) {
      throw std::invalid_argument(
          "pim_update: predicates must share the updated attribute's part");
    }
  }
  const RecordLayout& layout = store.layout(part);
  const pim::Field target = layout.field(attr);
  const std::uint64_t max_v =
      target.width >= 64 ? ~0ULL : (1ULL << target.width) - 1;
  if (new_value > max_v) {
    throw std::invalid_argument("pim_update: value overflows attribute");
  }
  // Raw width is not enough: a dictionary of 6 values packs into 3 bits,
  // so code 7 fits the field yet decodes to nothing. Validate through the
  // encoding so an undecodable record can never be written.
  const rel::Attribute& attr_meta = store.table().schema().attribute(attr);
  if (attr_meta.dict != nullptr && new_value >= attr_meta.dict->size()) {
    throw std::invalid_argument(
        "pim_update: value " + std::to_string(new_value) +
        " has no dictionary code for attribute '" + attr_meta.name + "'");
  }

  // One program: filter -> select bit -> Algorithm 1 MUX. No host reads.
  pim::ColumnAlloc alloc = layout.make_alloc();
  CompiledFilter filter = compile_filter(where, layout, alloc);
  pim::ProgramBuilder pb(alloc);
  pb.emit_mux_const(target, new_value, filter.result_col);
  pim::MicroProgram program = filter.program;
  for (const pim::MicroOp& op : pb.program()) program.push_back(op);

  const pim::PimConfig& cfg = store.module().config();
  store.module().reset_wear();  // per-request wear, like the query path
  pim::EnergyMeter meter;
  pim::PowerTracker tracker;
  std::vector<pim::RequestTrace> traces;
  std::size_t updated = 0;
  // Crossbars with at least one rewritten row: the zone-map sketches of
  // exactly these are rebuilt below (incremental maintenance).
  std::vector<std::uint32_t> touched_crossbars;
  for (std::size_t p = 0; p < store.pages_per_part(); ++p) {
    pim::Page& page = store.page(part, p);
    traces.push_back(pim::execute_program(page, program, cfg, &meter));
    for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
      const std::size_t selected =
          page.crossbar(x).column(filter.result_col).popcount();
      if (selected > 0) {
        touched_crossbars.push_back(
            static_cast<std::uint32_t>(p * cfg.crossbars_per_page + x));
      }
      updated += selected;
    }
  }
  host::ScheduleParams params;
  params.threads = hcfg.threads;
  params.window = hcfg.request_window;
  params.issue_gap_ns = hcfg.issue_ns;
  const TimeNs end = host::schedule_requests(traces, params, 0.0, &tracker);

  UpdateStats stats;
  stats.total_ns = end + hcfg.phase_overhead_ns;
  const pim::EnergyBreakdown energy = pim::energy_breakdown(meter);
  stats.energy_j = energy.total;
  stats.energy_logic_j = energy.logic;
  stats.energy_write_j = energy.write;
  stats.energy_controller_j = energy.controller;
  stats.peak_chip_w = tracker.peak_module_w() / cfg.chips;
  stats.wear_row_writes = store.module().max_row_writes();
  stats.cycles = program.size();
  stats.updated_records = updated;

  // Host alternative: read the filter bit-vector (one line per page row),
  // then read-modify-write the record chunk of every match.
  const double bitvec_lines = static_cast<double>(store.pages_per_part()) *
                              cfg.crossbar_rows / hcfg.threads;
  const double rmw_lines = 2.0 * static_cast<double>(updated) / hcfg.threads;
  stats.host_path_estimate_ns = bitvec_lines * hcfg.line_stream_ns +
                                rmw_lines * hcfg.line_random_ns +
                                2 * hcfg.phase_overhead_ns;

  alloc.release(filter.result_col);

  // Cached derivations of store contents (distinct stats, FD/co-occurrence
  // maps, compiled-filter programs of this part, zone-map sketches of the
  // touched crossbars) observed old data; refresh them while the mutation
  // lock is still held. A no-match update changed nothing, so its caches
  // stay warm.
  if (updated > 0) store.note_mutation(attr, &touched_crossbars);
  return stats;
}

}  // namespace bbpim::engine
