// Compiling WHERE conjunctions into bulk-bitwise micro-programs.
//
// Each predicate lowers to the NOR-only comparison builders of
// pim/microcode.hpp; the conjunction is an AND chain ending with the
// validity bit, producing one result bit per record. For vertically
// partitioned relations the conjunction is compiled per part; the engine
// combines part results via a host transfer (Section V-A).
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/layout.hpp"
#include "pim/microcode.hpp"
#include "pim/wordeval.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::engine {

class PimStore;

struct CompiledFilter {
  pim::MicroProgram program;
  /// Semantic twin of `program` for the fast word-level evaluator: same
  /// output columns, same boolean functions, no gate-by-gate simulation.
  /// The gate program remains what the cost model charges.
  pim::WordProgram words;
  /// Result bit column (stays allocated in the caller's ColumnAlloc until
  /// released).
  std::uint16_t result_col = 0;
  /// Number of this part's predicates actually compiled (kAlways excluded).
  std::size_t predicate_count = 0;
};

/// Compiles the predicates that touch attributes of `layout` (others are
/// another part's business). The result column evaluates to
/// AND(predicates) AND valid. A part with no predicates yields a copy of the
/// validity column so that downstream code can treat all parts uniformly.
CompiledFilter compile_filter(const std::vector<sql::BoundPredicate>& filters,
                              const RecordLayout& layout,
                              pim::ColumnAlloc& alloc);

// --- zone-map static analysis (data skipping) ------------------------------
// Evaluates a compiled predicate tree against the store's per-crossbar
// zone-map sketches (engine/zone_map.hpp) BEFORE any gate program runs, and
// classifies what each page can skip. All decisions are host-static: no PIM
// request, readback, or modeled cost is needed to make them, which is what
// keeps the pruned cost model honest.

/// Page-level classification of one WHERE conjunction against a store.
struct FilterPruneAnalysis {
  /// page_skip[p] = 1: no crossbar of page p can satisfy the conjunction —
  /// the page is skipped outright (no gate program, no modeled cost, no
  /// readback; its select column is statically empty).
  std::vector<std::uint8_t> page_skip;
  /// page_synth[p][part] = 1: every valid record of page p satisfies the
  /// part's predicate subset — the part's gate program is skipped on that
  /// page and the select column is synthesized as a copy of the validity
  /// column (all-ones over real records).
  std::vector<std::array<std::uint8_t, 2>> page_synth;

  // Effectiveness counters (surfaced through QueryStats / EXPLAIN).
  std::size_t pages_skipped = 0;
  std::size_t pages_synthesized = 0;  ///< (part, page) programs skipped
  std::size_t crossbars_skipped = 0;  ///< valid crossbars inside skipped pages
  /// (predicate, page) evaluations resolved statically by the sketches.
  std::size_t predicates_short_circuited = 0;
};

/// Runs the analyzer over every page of the store. Sound under the sketch
/// over-approximation: a skipped page provably selects zero records, a
/// synthesized (part, page) provably selects exactly its valid records.
FilterPruneAnalysis analyze_filters(
    const std::vector<sql::BoundPredicate>& filters, const PimStore& store);

/// analyze_filters through the store's ClassificationMemo: queries whose
/// WHERE normalizes to the same ordered predicate list — batch members
/// sharing a filter, repeated prepared-statement executions — classify each
/// (page, predicate) pair once per store version instead of once per query.
/// On a memo hit, `*memo_pages_reused` (when non-null) is incremented by the
/// number of pages whose classification was reused (the per-query
/// `classification_memo_hits` stat). The returned analysis is immutable and
/// shared; it stays valid for the lifetime of the pinned snapshot (views) or
/// until the next mutation (builder stores).
std::shared_ptr<const FilterPruneAnalysis> analyze_filters_cached(
    const std::vector<sql::BoundPredicate>& filters, const PimStore& store,
    std::size_t* memo_pages_reused = nullptr);

/// Pages where an equality match on `group_attrs` == `key` could select at
/// least one record (out[p] = 1). Used by pim-gb to skip pages that cannot
/// contain a subgroup — the per-subgroup analogue of analyze_filters. Only
/// the pages in `candidate_pages` are inspected (the caller intersects with
/// its filter-active set anyway; nullptr = every page).
std::vector<std::uint8_t> analyze_group_match(
    const std::vector<std::size_t>& group_attrs,
    const std::vector<std::uint64_t>& key, const PimStore& store,
    const std::vector<std::size_t>* candidate_pages = nullptr);

/// Returns `filters` reordered most-selective-first by the sketch-estimated
/// selectivity (ties: cheaper compiled predicate first, then original
/// position — fully deterministic). AND is commutative and every predicate
/// costs the same cycles at any position, so ordering changes neither rows
/// nor modeled stats; it exists so EXPLAIN can show a meaningful evaluation
/// order and page-level classification meets the most-selective predicates
/// first. `estimates`, when given, receives the per-predicate selectivity
/// estimates aligned with the returned order.
std::vector<sql::BoundPredicate> order_by_selectivity(
    std::vector<sql::BoundPredicate> filters, const PimStore& store,
    std::vector<double>* estimates = nullptr);

/// Compiles an equality match on a subgroup's identifier values:
/// result = AND_i (group_attr_i == key_i) for the attrs present in `layout`.
/// Used by pim-gb (Section IV). Attrs absent from this part are skipped.
CompiledFilter compile_group_match(const std::vector<std::size_t>& group_attrs,
                                   const std::vector<std::uint64_t>& key,
                                   const RecordLayout& layout,
                                   pim::ColumnAlloc& alloc);

/// Thread-safe memo of compiled WHERE programs, keyed by the exact predicate
/// list, the part, and the scratch allocator's state fingerprint. Compiling
/// is a pure function of (predicates, layout, allocator state), so a hit
/// returns the cached program and merely replays its allocator effect
/// (acquiring the result column) — repeated prepared-statement executions
/// skip recompilation entirely. One cache lives in each PimStore; the
/// layouts the key refers to are the store's own.
class FilterCache {
 public:
  /// On miss, compiles via compile_filter (mutating `alloc` exactly as a
  /// direct call would) and caches the result; on hit, re-acquires the
  /// cached program's result column from `alloc`. Either way the returned
  /// program's result column is owned by the caller until released.
  std::shared_ptr<const CompiledFilter> get_or_compile(
      const std::vector<sql::BoundPredicate>& filters, int part,
      const RecordLayout& layout, pim::ColumnAlloc& alloc);

  /// Drops every entry compiled for `part`. Called by
  /// PimStore::note_mutation when an in-place UPDATE rewrites the part's
  /// crossbar data: the cache key (predicates, part, allocator state) does
  /// not observe data mutation, so mutation-time invalidation is what keeps
  /// the cache's behavior indistinguishable from compiling fresh.
  void invalidate(int part);

  std::size_t hit_count() const;
  std::size_t miss_count() const;
  /// invalidate() calls observed (regression-test observability).
  std::size_t invalidation_count() const;

 private:
  /// Bounded so adversarial workloads (every query a distinct filter set)
  /// cannot grow the cache without limit; overflowing resets it.
  static constexpr std::size_t kMaxEntries = 512;

  struct Entry {
    int part = 0;
    std::shared_ptr<const CompiledFilter> filter;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t invalidations_ = 0;
};

}  // namespace bbpim::engine
