// Compiling WHERE conjunctions into bulk-bitwise micro-programs.
//
// Each predicate lowers to the NOR-only comparison builders of
// pim/microcode.hpp; the conjunction is an AND chain ending with the
// validity bit, producing one result bit per record. For vertically
// partitioned relations the conjunction is compiled per part; the engine
// combines part results via a host transfer (Section V-A).
#pragma once

#include <vector>

#include "engine/layout.hpp"
#include "pim/microcode.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::engine {

struct CompiledFilter {
  pim::MicroProgram program;
  /// Result bit column (stays allocated in the caller's ColumnAlloc until
  /// released).
  std::uint16_t result_col = 0;
  /// Number of this part's predicates actually compiled (kAlways excluded).
  std::size_t predicate_count = 0;
};

/// Compiles the predicates that touch attributes of `layout` (others are
/// another part's business). The result column evaluates to
/// AND(predicates) AND valid. A part with no predicates yields a copy of the
/// validity column so that downstream code can treat all parts uniformly.
CompiledFilter compile_filter(const std::vector<sql::BoundPredicate>& filters,
                              const RecordLayout& layout,
                              pim::ColumnAlloc& alloc);

/// Compiles an equality match on a subgroup's identifier values:
/// result = AND_i (group_attr_i == key_i) for the attrs present in `layout`.
/// Used by pim-gb (Section IV). Attrs absent from this part are skipped.
CompiledFilter compile_group_match(const std::vector<std::size_t>& group_attrs,
                                   const std::vector<std::uint64_t>& key,
                                   const RecordLayout& layout,
                                   pim::ColumnAlloc& alloc);

}  // namespace bbpim::engine
