// Compiling WHERE conjunctions into bulk-bitwise micro-programs.
//
// Each predicate lowers to the NOR-only comparison builders of
// pim/microcode.hpp; the conjunction is an AND chain ending with the
// validity bit, producing one result bit per record. For vertically
// partitioned relations the conjunction is compiled per part; the engine
// combines part results via a host transfer (Section V-A).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/layout.hpp"
#include "pim/microcode.hpp"
#include "pim/wordeval.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::engine {

struct CompiledFilter {
  pim::MicroProgram program;
  /// Semantic twin of `program` for the fast word-level evaluator: same
  /// output columns, same boolean functions, no gate-by-gate simulation.
  /// The gate program remains what the cost model charges.
  pim::WordProgram words;
  /// Result bit column (stays allocated in the caller's ColumnAlloc until
  /// released).
  std::uint16_t result_col = 0;
  /// Number of this part's predicates actually compiled (kAlways excluded).
  std::size_t predicate_count = 0;
};

/// Compiles the predicates that touch attributes of `layout` (others are
/// another part's business). The result column evaluates to
/// AND(predicates) AND valid. A part with no predicates yields a copy of the
/// validity column so that downstream code can treat all parts uniformly.
CompiledFilter compile_filter(const std::vector<sql::BoundPredicate>& filters,
                              const RecordLayout& layout,
                              pim::ColumnAlloc& alloc);

/// Compiles an equality match on a subgroup's identifier values:
/// result = AND_i (group_attr_i == key_i) for the attrs present in `layout`.
/// Used by pim-gb (Section IV). Attrs absent from this part are skipped.
CompiledFilter compile_group_match(const std::vector<std::size_t>& group_attrs,
                                   const std::vector<std::uint64_t>& key,
                                   const RecordLayout& layout,
                                   pim::ColumnAlloc& alloc);

/// Thread-safe memo of compiled WHERE programs, keyed by the exact predicate
/// list, the part, and the scratch allocator's state fingerprint. Compiling
/// is a pure function of (predicates, layout, allocator state), so a hit
/// returns the cached program and merely replays its allocator effect
/// (acquiring the result column) — repeated prepared-statement executions
/// skip recompilation entirely. One cache lives in each PimStore; the
/// layouts the key refers to are the store's own.
class FilterCache {
 public:
  /// On miss, compiles via compile_filter (mutating `alloc` exactly as a
  /// direct call would) and caches the result; on hit, re-acquires the
  /// cached program's result column from `alloc`. Either way the returned
  /// program's result column is owned by the caller until released.
  std::shared_ptr<const CompiledFilter> get_or_compile(
      const std::vector<sql::BoundPredicate>& filters, int part,
      const RecordLayout& layout, pim::ColumnAlloc& alloc);

  /// Drops every entry compiled for `part`. Called by
  /// PimStore::note_mutation when an in-place UPDATE rewrites the part's
  /// crossbar data: the cache key (predicates, part, allocator state) does
  /// not observe data mutation, so mutation-time invalidation is what keeps
  /// the cache's behavior indistinguishable from compiling fresh.
  void invalidate(int part);

  std::size_t hit_count() const;
  std::size_t miss_count() const;
  /// invalidate() calls observed (regression-test observability).
  std::size_t invalidation_count() const;

 private:
  /// Bounded so adversarial workloads (every query a distinct filter set)
  /// cannot grow the cache without limit; overflowing resets it.
  static constexpr std::size_t kMaxEntries = 512;

  struct Entry {
    int part = 0;
    std::shared_ptr<const CompiledFilter> filter;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t invalidations_ = 0;
};

}  // namespace bbpim::engine
