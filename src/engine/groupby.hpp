// The hybrid GROUP-BY planner (Section IV).
//
// After the query filter runs, the engine samples one 2 MB page (32 K
// records) of filter survivors, estimates each subgroup's share of the
// selected records, and uses the fitted latency models to decide how many
// subgroups (k, by estimated size) to aggregate with the PIM aggregation
// circuit, leaving the rest to the host:
//
//   T_gb(k) = k * T_pim-gb(M, n)
//           + (1 - delta_{k,kmax}) * T_host-gb(M, s, r(k))     (Equation 3)
//
// where r(k) is the estimated ratio of records left for the host after the
// k largest subgroups are peeled off. Choosing k = kmax drops the host path
// entirely — including the filter-result read — which is why aggregating
// every *potential* subgroup can win even when the sample saw only a few
// (Table II: Q3.3, Q3.4).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/latency_model.hpp"

namespace bbpim::engine {

/// One candidate subgroup, sampled or enumerated from attribute domains.
struct GroupCandidate {
  std::vector<std::uint64_t> key;  ///< group-attribute codes
  double est_mass = 0.0;  ///< estimated share of selected records (0 if unseen)
  bool sampled = false;
  std::uint64_t sample_count = 0;
};

struct GroupByPlanInput {
  double pages = 0;          ///< M
  std::uint32_t n = 1;       ///< aggregated-value chunks per crossbar read
  std::uint32_t s = 2;       ///< chunks the host reads per record
  double selectivity_est = 0;
  /// Candidates sorted by descending estimated size (sampled first).
  std::vector<GroupCandidate> candidates;
  /// True when the candidate list covers every potential subgroup; required
  /// for the delta term (pure pim-gb) to be applicable.
  bool candidates_complete = true;
};

struct GroupByPlan {
  std::size_t k = 0;             ///< subgroups assigned to pim-gb
  TimeNs predicted_ns = 0;       ///< model prediction at the chosen k
  std::vector<TimeNs> t_of_k;    ///< full curve (diagnostics / ablation)
};

/// Sorts candidates in place (descending estimated mass, sampled before
/// unsampled, then lexicographic key for determinism).
void sort_candidates(std::vector<GroupCandidate>& candidates);

/// Evaluates Equation 3 for every k and returns the argmin.
GroupByPlan choose_k(const LatencyModels& models, const GroupByPlanInput& in);

}  // namespace bbpim::engine
