#include "engine/fault_injector.hpp"

#include <chrono>
#include <thread>

namespace bbpim::engine {

namespace detail {
std::atomic<FaultInjector*> g_fault_injector{nullptr};
}

const char* fault_seam_name(FaultSeam seam) {
  switch (seam) {
    case FaultSeam::kPlanBind:
      return "plan-bind";
    case FaultSeam::kSnapshotPin:
      return "snapshot-pin";
    case FaultSeam::kCrossbarVisit:
      return "crossbar-visit";
    case FaultSeam::kUpdateCommit:
      return "update-commit";
    case FaultSeam::kReadback:
      return "readback";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed) {
  // Independent deterministic draw sequence per seam: arming one seam's
  // probabilistic rule never perturbs another's.
  Rng root(seed);
  for (std::size_t i = 0; i < kFaultSeamCount; ++i) {
    seams_[i].rng = root.fork(i);
  }
}

void FaultInjector::arm(FaultSeam seam, FaultRule rule) {
  SeamState& s = seams_[static_cast<std::size_t>(seam)];
  std::lock_guard lock(s.mutex);
  s.rule = rule;
}

void FaultInjector::disarm(FaultSeam seam) { arm(seam, FaultRule{}); }

std::uint64_t FaultInjector::traversals(FaultSeam seam) const {
  return seams_[static_cast<std::size_t>(seam)].traversals.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(FaultSeam seam) const {
  return seams_[static_cast<std::size_t>(seam)].fired.load(
      std::memory_order_relaxed);
}

void FaultInjector::traverse(FaultSeam seam) {
  SeamState& s = seams_[static_cast<std::size_t>(seam)];
  bool fire = false;
  bool transient = true;
  std::uint64_t stall_us = 0;
  std::uint64_t n = 0;
  {
    std::lock_guard lock(s.mutex);
    n = s.traversals.fetch_add(1, std::memory_order_relaxed) + 1;
    const FaultRule& rule = s.rule;
    if (rule.nth != 0) {
      fire = n == rule.nth || (rule.every != 0 && n > rule.nth &&
                               (n - rule.nth) % rule.every == 0);
    }
    if (!fire && rule.probability > 0.0) {
      fire = s.rng.next_double() < rule.probability;
    }
    transient = rule.transient;
    stall_us = rule.stall_us;
    if (fire) s.fired.fetch_add(1, std::memory_order_relaxed);
  }
  // Stall outside the lock so a slow seam never serializes other seams'
  // (or other threads') traversals through this injector.
  if (stall_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
  }
  if (fire) {
    const std::string what = std::string("injected fault at seam ") +
                             fault_seam_name(seam) + " (traversal " +
                             std::to_string(n) + ")";
    if (transient) throw InjectedFault(what);
    throw InjectedFatalFault(what);
  }
}

ScopedFaultInjection::ScopedFaultInjection(FaultInjector& injector)
    : previous_(detail::g_fault_injector.exchange(&injector,
                                                  std::memory_order_acq_rel)) {}

ScopedFaultInjection::~ScopedFaultInjection() {
  detail::g_fault_injector.store(previous_, std::memory_order_release);
}

}  // namespace bbpim::engine
