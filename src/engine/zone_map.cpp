#include "engine/zone_map.hpp"

#include <algorithm>
#include <bit>

namespace bbpim::engine {
namespace {

/// Bitmap of the sketch's codes that satisfy the predicate. Only meaningful
/// for bitmap attributes (codes < 64).
std::uint64_t matching_codes(const sql::BoundPredicate& p, std::uint64_t codes) {
  std::uint64_t match = 0;
  for (std::uint64_t rest = codes; rest != 0; rest &= rest - 1) {
    const std::uint64_t v =
        static_cast<std::uint64_t>(std::countr_zero(rest));
    if (p.matches(v)) match |= 1ULL << v;
  }
  return match;
}

}  // namespace

ZoneClass classify_predicate(const sql::BoundPredicate& p, const ZoneSketch& s,
                             bool bitmap) {
  using Kind = sql::BoundPredicate::Kind;
  if (p.kind == Kind::kAlways) return ZoneClass::kAlwaysTrue;
  // No valid record in the crossbar: nothing can match (the validity column
  // rejects padding rows anyway, so skipping is exact).
  if (s.empty() || p.kind == Kind::kNever) return ZoneClass::kAlwaysFalse;

  if (bitmap) {
    const std::uint64_t match = matching_codes(p, s.codes);
    if (match == 0) return ZoneClass::kAlwaysFalse;
    if (match == s.codes) return ZoneClass::kAlwaysTrue;
    return ZoneClass::kResidual;
  }

  switch (p.kind) {
    case Kind::kEq:
      if (p.v1 < s.min || p.v1 > s.max) return ZoneClass::kAlwaysFalse;
      if (s.min == s.max) return ZoneClass::kAlwaysTrue;  // == p.v1 here
      return ZoneClass::kResidual;
    case Kind::kLt:
      if (s.min >= p.v1) return ZoneClass::kAlwaysFalse;
      if (s.max < p.v1) return ZoneClass::kAlwaysTrue;
      return ZoneClass::kResidual;
    case Kind::kLe:
      if (s.min > p.v1) return ZoneClass::kAlwaysFalse;
      if (s.max <= p.v1) return ZoneClass::kAlwaysTrue;
      return ZoneClass::kResidual;
    case Kind::kGt:
      if (s.max <= p.v1) return ZoneClass::kAlwaysFalse;
      if (s.min > p.v1) return ZoneClass::kAlwaysTrue;
      return ZoneClass::kResidual;
    case Kind::kGe:
      if (s.max < p.v1) return ZoneClass::kAlwaysFalse;
      if (s.min >= p.v1) return ZoneClass::kAlwaysTrue;
      return ZoneClass::kResidual;
    case Kind::kBetween:
      if (p.v2 < p.v1 || s.max < p.v1 || s.min > p.v2) {
        return ZoneClass::kAlwaysFalse;
      }
      if (p.v1 <= s.min && s.max <= p.v2) return ZoneClass::kAlwaysTrue;
      return ZoneClass::kResidual;
    case Kind::kIn: {
      bool any_inside = false;
      for (const std::uint64_t v : p.in_values) {
        if (v >= s.min && v <= s.max) {
          any_inside = true;
          break;
        }
      }
      if (!any_inside) return ZoneClass::kAlwaysFalse;
      // Exact only when the range is a single code (min == max).
      if (s.min == s.max) return ZoneClass::kAlwaysTrue;
      return ZoneClass::kResidual;
    }
    case Kind::kNever:
    case Kind::kAlways:
      break;  // handled above
  }
  return ZoneClass::kResidual;
}

double sketch_selectivity(const sql::BoundPredicate& p, const ZoneSketch& s,
                          bool bitmap) {
  using Kind = sql::BoundPredicate::Kind;
  if (p.kind == Kind::kAlways) return 1.0;
  if (s.empty() || p.kind == Kind::kNever) return 0.0;

  if (bitmap) {
    const int present = std::popcount(s.codes);
    if (present == 0) return 0.0;
    const int match = std::popcount(matching_codes(p, s.codes));
    return static_cast<double>(match) / static_cast<double>(present);
  }

  // Codes matching the predicate within [s.min, s.max], as a fraction of
  // the sketch span. All interval arithmetic is on clamped closed ranges
  // (b >= a before the +1), so nothing wraps even at the u64 extremes.
  const double span = static_cast<double>(s.max - s.min) + 1.0;
  auto clamp01 = [](double x) { return std::min(1.0, std::max(0.0, x)); };
  auto overlap = [&](std::uint64_t lo, std::uint64_t hi) -> double {
    const std::uint64_t a = std::max(lo, s.min);
    const std::uint64_t b = std::min(hi, s.max);
    if (b < a) return 0.0;
    return static_cast<double>(b - a) + 1.0;
  };
  constexpr std::uint64_t kMax = ~0ULL;
  switch (p.kind) {
    case Kind::kEq:
      return clamp01(overlap(p.v1, p.v1) / span);
    case Kind::kLt:
      return p.v1 == 0 ? 0.0 : clamp01(overlap(0, p.v1 - 1) / span);
    case Kind::kLe:
      return clamp01(overlap(0, p.v1) / span);
    case Kind::kGt:
      return p.v1 == kMax ? 0.0 : clamp01(overlap(p.v1 + 1, kMax) / span);
    case Kind::kGe:
      return clamp01(overlap(p.v1, kMax) / span);
    case Kind::kBetween:
      return p.v2 < p.v1 ? 0.0 : clamp01(overlap(p.v1, p.v2) / span);
    case Kind::kIn: {
      double inside = 0;
      for (const std::uint64_t v : p.in_values) {
        if (v >= s.min && v <= s.max) inside += 1.0;
      }
      return clamp01(inside / span);
    }
    case Kind::kNever:
    case Kind::kAlways:
      break;  // handled above
  }
  return 1.0;
}

ZoneMaps::ZoneMaps(std::size_t crossbars,
                   const std::vector<std::uint32_t>& attr_bits)
    : crossbars_(crossbars),
      stale_(attr_bits.size(), false),
      sketches_(attr_bits.size() * crossbars) {
  bitmap_.reserve(attr_bits.size());
  for (const std::uint32_t bits : attr_bits) {
    bitmap_.push_back(bits <= kZoneBitmapMaxBits);
  }
}

bool ZoneMaps::any_stale() const {
  return std::find(stale_.begin(), stale_.end(), true) != stale_.end();
}

std::shared_ptr<const FilterPruneAnalysis> ClassificationMemo::find(
    const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void ClassificationMemo::insert(
    const std::string& key,
    std::shared_ptr<const FilterPruneAnalysis> analysis) {
  std::lock_guard lock(mutex_);
  if (entries_.size() >= kMaxEntries) entries_.clear();
  entries_.emplace(key, std::move(analysis));
}

void ClassificationMemo::invalidate() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

std::uint64_t ClassificationMemo::hit_count() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t ClassificationMemo::miss_count() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

std::size_t ClassificationMemo::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace bbpim::engine
