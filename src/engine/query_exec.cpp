#include "engine/query_exec.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "common/parallel.hpp"
#include "engine/fault_injector.hpp"
#include "engine/filter_compiler.hpp"
#include "host/pipeline.hpp"
#include "host/read_set.hpp"
#include "pim/agg_circuit.hpp"
#include "pim/controller.hpp"
#include "pimdb/bitserial.hpp"

namespace bbpim::engine {
namespace {

using GroupKey = std::vector<std::uint64_t>;

struct KeyHash {
  std::size_t operator()(const GroupKey& k) const {
    std::size_t h = 1469598103934665603ULL;
    for (const std::uint64_t v : k) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// One aggregation pass (product/linearity decomposition; see header).
struct AggPass {
  bool use_select_as_value = false;  ///< value = the select bit column
  pim::Field value{};                ///< on part 0
  std::int64_t scale = 1;            ///< host-side multiplier for pass total
  /// AND this attribute bit column into the select (mul decomposition).
  std::optional<std::uint16_t> mask_attr_col;
  pim::AggOp op = pim::AggOp::kSum;
  bool carries_count = false;        ///< circuit also reports the row count
};

constexpr std::size_t kCandidateCap = 65536;
constexpr std::uint16_t kMulDecompositionMaxBits = 12;

}  // namespace

// ===========================================================================
// Execution context: one query run.
// ===========================================================================

namespace {

class Execution {
 public:
  /// `shared_allocs` (one ColumnAlloc per part) switches this execution into
  /// batch mode: scratch columns come from the batch's shared allocators —
  /// private allocators would hand different queries the same physical
  /// columns — and nothing else changes. nullptr (solo) builds private ones.
  /// `cancel_override` (batch mode) replaces the token resolve_cancel would
  /// derive from `opts` — each fused member checks its own token.
  Execution(EngineKind kind, PimStore& store, const host::HostConfig& hcfg,
            const LatencyModels& models, const sql::BoundQuery& q,
            const ExecOptions& opts,
            std::vector<pim::ColumnAlloc>* shared_allocs = nullptr,
            const CancelToken* cancel_override = nullptr)
      : kind_(kind),
        store_(store),
        cfg_(store.module().config()),
        hcfg_(hcfg),
        models_(models),
        q_(q),
        opts_(opts),
        sim_threads_(resolve_threads(opts.sim_threads.value_or(hcfg.sim_threads))),
        vectorized_(!opts.sim_scalar),
        prune_(opts.prune.value_or(hcfg.prune)),
        wallprof_(std::getenv("BBPIM_SIM_WALLPROF") != nullptr) {
    cancel_ = cancel_override != nullptr ? *cancel_override
                                         : resolve_cancel(opts);
    if (shared_allocs != nullptr) {
      alloc_src_ = shared_allocs;
    } else {
      for (int part = 0; part < store_.parts(); ++part) {
        allocs_.push_back(store_.layout(part).make_alloc());
      }
      alloc_src_ = &allocs_;
    }
    // Selectivity-ordered execution: predicates compile most-selective
    // first (sketch-estimated; deterministic). AND is commutative and each
    // predicate costs the same cycles at any position, so rows and modeled
    // stats are unchanged — the order is what EXPLAIN shows and what the
    // zone-map classifier meets first.
    filters_ = order_by_selectivity(q.filters, store);
    all_pages_.resize(store.pages_per_part());
    for (std::size_t p = 0; p < all_pages_.size(); ++p) all_pages_[p] = p;
    if (prune_) {
      // Memoized classification: batch members sharing a WHERE — and
      // repeated executions against the same store version — reuse one
      // analysis instead of re-classifying every (page, predicate) pair.
      analysis_ = analyze_filters_cached(filters_, store,
                                         &stats_.classification_memo_hits);
      for (std::size_t p = 0; p < all_pages_.size(); ++p) {
        if (!analysis_->page_skip[p]) active_pages_.push_back(p);
      }
    } else {
      active_pages_ = all_pages_;
    }
    mask_ready_.assign(all_pages_.size(), 0);
  }

  QueryOutput run();

  /// Filter-only scan: filter phase, residual bit-vector read, survivor
  /// walk reading back `attrs` (see PimQueryEngine::execute_scan).
  ScanOutput run_scan(const std::vector<std::size_t>& attrs);

  // --- shared-scan batching -------------------------------------------------
  // A batch executes in three stages. Stage 1, per member in batch order:
  // batch_prepare() analyzes and compiles the member's WHERE (no gate
  // program runs). Stage 2, once: run_fused_filter() walks the store page by
  // page and runs every member's gate program back to back per crossbar
  // visit, journaling energy and traces per (visit, member). Stage 3, per
  // member in batch order: batch_finish() schedules the member's own traces
  // into its own clock and runs the rest of the query exactly as run()
  // would. Per-member meters, trackers, and clocks mean a member's modeled
  // cost comes entirely from its own work — a batchmate is never billed.

  /// Stage 1: predicate analysis, program compilation (through the shared
  /// filter cache), always-true page synthesis. Caller resets module wear
  /// once per batch before any stage-2 program runs.
  void batch_prepare() { filter_compile(); }

  /// Stage 2: the fused pass. Visits every (part, page) some member runs
  /// on, in part-major page-ascending order — each member's subsequence is
  /// exactly its solo job order, which is what keeps its meter replay and
  /// trace schedule bit-identical in shape to a solo run. Members' programs
  /// within one visit run sequentially in batch order (programs may share
  /// released temp columns; sequencing makes the reuse safe), visits run in
  /// parallel under the batch's sim-thread budget with per-(visit, member)
  /// journal meters replayed deterministically afterwards.
  static void run_fused_filter(const std::vector<Execution*>& execs);

  /// Stage 3: schedules this member's fused traces (same order and window
  /// parameters its solo logic_phase would use), combines part results,
  /// builds the aggregation plan, and finishes the query. Releases every
  /// scratch column still held so the shared allocator is clean for the
  /// next member's tail.
  QueryOutput batch_finish();

 private:
  // --- small helpers --------------------------------------------------------
  std::size_t pages() const { return store_.pages_per_part(); }
  std::uint32_t rows() const { return cfg_.crossbar_rows; }
  pim::ColumnAlloc& alloc(int part) { return (*alloc_src_)[part]; }

  /// Wall-clock phase instrumentation of the simulation itself (not the
  /// modeled time), printed to stderr when BBPIM_SIM_WALLPROF is set.
  template <typename Fn>
  void wall(const char* name, Fn&& fn) {
    if (!wallprof_) {
      fn();
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    std::fprintf(stderr, "[sim-wall] %-12s %8.3f ms\n", name,
                 std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }

  void advance_clock(TimeNs phase_end, TimeNs* slot) {
    const TimeNs dur = phase_end - clock_ + hcfg_.phase_overhead_ns;
    *slot += dur;
    clock_ += dur;
  }

  /// Schedules one phase of per-page requests and advances the clock.
  void schedule_phase(const std::vector<pim::RequestTrace>& traces,
                      std::uint32_t window, TimeNs issue_gap, TimeNs* slot) {
    host::ScheduleParams params;
    params.threads = hcfg_.threads;
    params.window = window;
    params.issue_gap_ns = issue_gap;
    const TimeNs end =
        host::schedule_requests(traces, params, clock_, &tracker_);
    stats_.pim_requests += traces.size();
    advance_clock(end, slot);
  }

  /// Runs fn(job_index, meter) for every index in [0, n), split across the
  /// simulation thread budget. Jobs must be independent (each touches its
  /// own page and writes its own output slots). Parallel workers accumulate
  /// energy into per-chunk journaling meters that are replayed into meter_
  /// in chunk (== job) order afterwards, so every run — serial or parallel,
  /// any thread count — performs the identical sequence of meter adds and
  /// stays bit-identical.
  template <typename Fn>
  void run_jobs(std::size_t n, Fn&& fn) {
    if (sim_threads_ <= 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i, meter_);
      return;
    }
    const std::size_t chunks = parallel_chunks(n, sim_threads_);
    std::vector<pim::EnergyMeter> meters(chunks,
                                         pim::EnergyMeter(/*journal=*/true));
    parallel_for(n, sim_threads_,
                 [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     fn(i, meters[chunk]);
                   }
                 });
    for (const pim::EnergyMeter& m : meters) m.replay_into(meter_);
  }

  /// One program of a logic phase: the gate program (costed) plus its
  /// optional word-level semantic twin (fast functional evaluation), run on
  /// `run_pages` (nullptr = every page).
  struct PhaseProg {
    int part;
    const pim::MicroProgram* prog;
    const pim::WordProgram* words = nullptr;
    const std::vector<std::size_t>* run_pages = nullptr;
  };

  /// Runs a micro-program on the selected pages of selected parts as one
  /// phase. Pages absent from a program's run list get no request, no
  /// modeled cost, and no functional effect — zone-map pruning in action.
  void logic_phase(const std::vector<PhaseProg>& part_programs, TimeNs* slot) {
    struct Job {
      const PhaseProg* pp;
      std::size_t page;
    };
    std::vector<Job> jobs;
    for (const PhaseProg& pp : part_programs) {
      if (pp.prog == nullptr || pp.prog->empty()) continue;
      const std::vector<std::size_t>& run =
          pp.run_pages != nullptr ? *pp.run_pages : all_pages_;
      for (const std::size_t p : run) jobs.push_back({&pp, p});
    }
    if (jobs.empty()) return;
    // Cooperative checkpoint + fault seam at page-loop entry: unwinding here
    // is clean (no job has touched a crossbar yet), and the check stays off
    // the per-page kernels.
    cancel_.check();
    fault_point(FaultSeam::kCrossbarVisit);
    std::vector<pim::RequestTrace> traces(jobs.size());
    run_jobs(jobs.size(), [&](std::size_t i, pim::EnergyMeter& meter) {
      const Job& j = jobs[i];
      traces[i] =
          pim::execute_program(store_.page(j.pp->part, j.page), *j.pp->prog,
                               cfg_, &meter, vectorized_, j.pp->words);
    });
    schedule_phase(traces, hcfg_.request_window, hcfg_.issue_ns, slot);
  }

  /// Reads one bit column of the listed pages of a part (host streaming
  /// reads; nullptr = every page). The returned vector is indexed by page;
  /// unread pages hold empty BitVecs — their select is statically empty, so
  /// no readback is modeled (or performed) for them.
  std::vector<BitVec> read_column_phase(
      int part, std::uint16_t col, TimeNs* slot,
      const std::vector<std::size_t>* pages_list = nullptr) {
    const std::vector<std::size_t>& run =
        pages_list != nullptr ? *pages_list : all_pages_;
    cancel_.check();
    fault_point(FaultSeam::kReadback);
    std::vector<BitVec> out(pages());
    std::vector<pim::RequestTrace> traces(run.size());
    run_jobs(run.size(), [&](std::size_t i, pim::EnergyMeter& meter) {
      const std::size_t p = run[i];
      traces[i] =
          pim::read_bit_column(store_.page(part, p), col, hcfg_.line_stream_ns,
                               cfg_, &meter, &out[p], vectorized_);
    });
    // Plain loads: the issuing thread is occupied for the whole stream.
    schedule_phase(traces, /*window=*/1, /*issue_gap=*/0.0, slot);
    return out;
  }

  /// Writes per-page bit vectors into a column of a part (two-xb transfer);
  /// `bits` is indexed by page, only the listed pages are written.
  void write_column_phase(int part, std::uint16_t col,
                          const std::vector<BitVec>& bits, TimeNs* slot,
                          const std::vector<std::size_t>* pages_list = nullptr) {
    const std::vector<std::size_t>& run =
        pages_list != nullptr ? *pages_list : all_pages_;
    std::vector<pim::RequestTrace> traces(run.size());
    run_jobs(run.size(), [&](std::size_t i, pim::EnergyMeter& meter) {
      const std::size_t p = run[i];
      traces[i] = pim::write_bit_column(store_.page(part, p), col, bits[p],
                                        hcfg_.line_stream_ns, cfg_, &meter,
                                        vectorized_);
    });
    schedule_phase(traces, /*window=*/1, /*issue_gap=*/0.0, slot);
  }

  /// Host-known-constant column synthesis: functionally fills `col` of the
  /// listed pages with a copy of the part's validity column. Used when the
  /// zone-map analyzer proved the page's predicate subset always-true (the
  /// select IS the validity column) and when zeroing the pim-gb mask on
  /// pages a pruned subgroup never touched. The host knows these values
  /// statically, so nothing is modeled: no request, no energy, no wear.
  void synthesize_column(int part, std::uint16_t col,
                         const std::vector<std::size_t>& pages_list,
                         bool valid_copy) {
    const std::uint16_t valid = store_.layout(part).valid_col();
    for (const std::size_t p : pages_list) {
      pim::Page& page = store_.page(part, p);
      for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
        pim::Crossbar& xb = page.crossbar(x);
        std::uint64_t* dst = xb.column_data_mut(col);
        const std::uint32_t words = xb.words_per_column();
        if (valid_copy) {
          const std::uint64_t* src = xb.column_data(valid);
          for (std::uint32_t w = 0; w < words; ++w) dst[w] = src[w];
        } else {
          for (std::uint32_t w = 0; w < words; ++w) dst[w] = 0;
        }
      }
    }
  }

  /// Zeroes the pim-gb mask column on any listed page whose mask was never
  /// initialized by a subgroup program (the subgroup's select is provably
  /// empty there, so zero IS its value).
  void ensure_mask_zero(const std::vector<std::size_t>& pages_list) {
    std::vector<std::size_t> missing;
    for (const std::size_t p : pages_list) {
      if (!mask_ready_[p]) missing.push_back(p);
    }
    if (!missing.empty()) {
      synthesize_column(0, mask_col_, missing, /*valid_copy=*/false);
      for (const std::size_t p : missing) mask_ready_[p] = 1;
    }
  }

  /// Charges a host read of `total_lines` result lines (streaming).
  void line_read_phase(std::size_t total_lines, TimeNs* slot) {
    const double per_thread =
        std::ceil(static_cast<double>(total_lines) / hcfg_.threads);
    meter_.add(pim::EnergyCat::kRead,
               static_cast<double>(total_lines) * cfg_.line_bytes() * 8 *
                   cfg_.read_energy_pj_per_bit * units::kJoulePerPj);
    advance_clock(clock_ + per_thread * hcfg_.line_stream_ns, slot);
  }

  // --- phases ---------------------------------------------------------------
  /// Filter front half: prune stats, program compilation (filter cache),
  /// per-part run-page and pending-synthesis lists. No gate program runs.
  void filter_compile();
  /// Copies the validity column into the result column of every page queued
  /// in synth_pages_ (see that member for why this runs after the gate
  /// programs, never before).
  void synthesize_pending();
  /// Filter back half: part combination (two-xb transfer + AND) and the
  /// selected-record popcount. Requires the gate programs to have run and
  /// synthesize_pending() to have been called.
  void filter_combine();
  /// filter_compile + the solo gate-program phase + filter_combine; the
  /// batch path replaces the middle step with the fused pass.
  void filter_phase();
  /// Everything run() does after the filter phase: aggregation, planning,
  /// group-by, finalize, planner-input export, stats epilogue.
  QueryOutput finish_run();
  void build_agg_passes();
  void no_groupby_aggregate();
  void sample_phase();
  void build_candidates();
  void plan_phase();
  void pim_gb_phase();
  void host_gb_phase();
  void finalize_phase();
  /// Stats epilogue shared by run() and run_scan(): modeled total, energy
  /// breakdown, peak chip power, wear.
  void finish_stats();

  /// Aggregates one pass over `select_col` on the listed pages; returns the
  /// combined value across crossbars and pages (SUM adds, MIN/MAX fold);
  /// `out_count` receives the circuit count when the pass carries it.
  /// Unlisted pages provably contribute the fold identity (their select is
  /// statically empty), so skipping them is exact.
  std::uint64_t run_agg_pass(const AggPass& pass, std::uint16_t select_col,
                             std::uint64_t* out_count, TimeNs* slot,
                             const std::vector<std::size_t>& on_pages);

  /// Aggregates one subgroup (all passes); returns {agg value, count}.
  std::pair<std::int64_t, std::uint64_t> aggregate_group(const GroupKey& key,
                                                         bool update_mask);

  std::vector<std::uint64_t> group_attr_key(std::size_t record) const {
    std::vector<std::uint64_t> key;
    key.reserve(q_.group_by.size());
    for (const std::size_t a : q_.group_by) {
      key.push_back(store_.read_attr(record, a));
    }
    return key;
  }

  /// (part, chunk) pairs the host touches per record for the given attrs.
  std::set<std::pair<int, std::uint32_t>> chunk_set(
      const std::vector<std::size_t>& attrs) const {
    std::set<std::pair<int, std::uint32_t>> chunks;
    for (const std::size_t a : attrs) {
      const int part = store_.part_of_attr(a);
      const pim::Field f = store_.field(a);
      const std::uint32_t first = f.offset / cfg_.read_bits;
      const std::uint32_t last = (f.offset + f.width - 1) / cfg_.read_bits;
      for (std::uint32_t c = first; c <= last; ++c) chunks.insert({part, c});
    }
    return chunks;
  }

  std::vector<std::size_t> host_read_attrs() const {
    std::vector<std::size_t> attrs(q_.group_by);
    if (!(q_.agg_func == sql::AggFunc::kCount)) {
      attrs.push_back(q_.agg_expr.a);
      if (q_.agg_expr.kind != sql::Expr::Kind::kColumn) {
        attrs.push_back(q_.agg_expr.b);
      }
    }
    return attrs;
  }

  // --- members ---------------------------------------------------------------
  EngineKind kind_;
  PimStore& store_;
  const pim::PimConfig& cfg_;
  const host::HostConfig& hcfg_;
  const LatencyModels& models_;
  const sql::BoundQuery& q_;
  const ExecOptions& opts_;

  std::vector<pim::ColumnAlloc> allocs_;   ///< private scratch (solo mode)
  /// Where alloc() draws from: &allocs_ solo, the batch's shared set fused.
  std::vector<pim::ColumnAlloc>* alloc_src_ = nullptr;
  unsigned sim_threads_ = 1;  ///< resolved simulation thread budget
  bool vectorized_ = true;    ///< fast kernels (off for the scalar baseline)
  bool prune_ = false;        ///< zone-map data skipping for this execution
  bool wallprof_ = false;     ///< BBPIM_SIM_WALLPROF phase instrumentation
  /// q_.filters reordered most-selective-first (what actually compiles).
  std::vector<sql::BoundPredicate> filters_;
  /// Shared (memoized) when prune_; nullptr otherwise.
  std::shared_ptr<const FilterPruneAnalysis> analysis_;
  std::vector<std::size_t> all_pages_;     ///< 0 .. pages()-1
  std::vector<std::size_t> active_pages_;  ///< pages the filter executes on
  std::vector<std::uint8_t> mask_ready_;   ///< mask_col_ initialized per page
  /// Compiled per-part WHERE programs (filter_compile -> combine/fused pass).
  std::vector<std::shared_ptr<const CompiledFilter>> compiled_;
  /// Per-part pages whose gate program actually runs (active minus synth).
  std::vector<std::vector<std::size_t>> run_pages_;
  /// Per-part pages whose predicate subset is provably always-true, awaiting
  /// validity-copy synthesis. Deferred until after the gate programs ran:
  /// in a batch, a batchmate's program may reuse this member's result column
  /// as a released temp on pages this member never visits — synthesizing
  /// before the fused pass would let that trample the copied bits. (Solo
  /// runs synthesize between compile and the logic phase, as always.)
  std::vector<std::vector<std::size_t>> synth_pages_;
  bool skip_transfer_ = false;  ///< two-xb: part 1 provably all-true
  /// Fused-pass traces of THIS member, in its solo job order; scheduled by
  /// batch_finish into the member's own clock.
  std::vector<pim::RequestTrace> pending_traces_;
  pim::EnergyMeter meter_;
  pim::PowerTracker tracker_;
  TimeNs clock_ = 0;
  QueryStats stats_;
  /// Effective abort token (empty = every check free); see the ctor.
  CancelToken cancel_;

  std::uint16_t r_col_ = 0;          ///< filter result on part 0
  std::uint16_t mask_col_ = 0;       ///< OR of pim-gb subgroup selects
  bool mask_valid_ = false;
  std::optional<pim::Field> transfer_chunk_;  ///< part-0 chunk for transfers

  std::vector<AggPass> passes_;
  pim::Field result_field_{};
  pim::Field count_field_{};
  std::uint32_t n_chunks_ = 1;  ///< model parameter n
  std::uint32_t s_chunks_ = 2;  ///< model parameter s

  std::vector<GroupCandidate> candidates_;
  bool candidates_complete_ = true;
  double selectivity_est_ = 0;
  std::size_t chosen_k_ = 0;

  std::unordered_map<GroupKey, std::pair<std::int64_t, bool>, KeyHash>
      results_;  ///< key -> (agg, from_pim)
  std::vector<ResultRow> rows_;
};

// ---------------------------------------------------------------------------
// Phase 1: filter
// ---------------------------------------------------------------------------

void Execution::filter_compile() {
  if (prune_) {
    stats_.pages_skipped = analysis_->pages_skipped;
    stats_.pages_synthesized = analysis_->pages_synthesized;
    stats_.crossbars_skipped = analysis_->crossbars_skipped;
    stats_.predicates_short_circuited = analysis_->predicates_short_circuited;
  }

  // Memoized compilation: the key covers (predicates, part, allocator
  // state), so repeated prepared-statement executions reuse the program and
  // only replay its result-column allocation. The scalar baseline compiles
  // from scratch, matching the pre-cache behavior it measures.
  const std::size_t cache_h0 = store_.filter_cache().hit_count();
  const std::size_t cache_m0 = store_.filter_cache().miss_count();
  for (int part = 0; part < store_.parts(); ++part) {
    if (vectorized_) {
      compiled_.push_back(store_.filter_cache().get_or_compile(
          filters_, part, store_.layout(part), alloc(part)));
    } else {
      compiled_.push_back(std::make_shared<const CompiledFilter>(
          compile_filter(filters_, store_.layout(part), alloc(part))));
    }
  }
  if (vectorized_) {
    stats_.filter_cache_hits = store_.filter_cache().hit_count() - cache_h0;
    stats_.filter_cache_misses =
        store_.filter_cache().miss_count() - cache_m0;
  }

  // Per-part gate-program page lists: active pages minus the pages whose
  // part subset is provably always-true — those get the validity column
  // synthesized into the result column instead (no gate program).
  run_pages_.assign(store_.parts(), {});
  // two-xb: when every active page of part 1 is synthesizable, its result
  // column would be exactly the validity column, which part 0's program
  // already folds in — the whole inter-part transfer is skipped.
  skip_transfer_ =
      prune_ && store_.parts() == 2 &&
      [&] {
        for (const std::size_t p : active_pages_) {
          if (!analysis_->page_synth[p][1]) return false;
        }
        return true;
      }();
  synth_pages_.assign(store_.parts(), {});
  for (int part = 0; part < store_.parts(); ++part) {
    if (part == 1 && skip_transfer_) continue;  // program never needed
    for (const std::size_t p : active_pages_) {
      if (prune_ && analysis_->page_synth[p][part]) {
        synth_pages_[part].push_back(p);
      } else {
        run_pages_[part].push_back(p);
      }
    }
  }
}

void Execution::synthesize_pending() {
  for (int part = 0; part < store_.parts(); ++part) {
    if (!synth_pages_[part].empty()) {
      synthesize_column(part, compiled_[part]->result_col, synth_pages_[part],
                        /*valid_copy=*/true);
      synth_pages_[part].clear();
    }
  }
}

void Execution::filter_combine() {
  if (store_.parts() == 1) {
    r_col_ = compiled_[0]->result_col;
  } else if (skip_transfer_) {
    alloc(1).release(compiled_[1]->result_col);
    r_col_ = compiled_[0]->result_col;
  } else {
    // two-xb: ship part 1's bits through the host and AND them into part 0.
    transfer_chunk_ = alloc(0).alloc_aligned_chunk(cfg_.read_bits);
    const std::vector<BitVec> bits = read_column_phase(
        1, compiled_[1]->result_col, &stats_.phases.transfer, &active_pages_);
    write_column_phase(0, transfer_chunk_->offset, bits,
                       &stats_.phases.transfer, &active_pages_);
    pim::ProgramBuilder pb(alloc(0));
    const std::uint16_t combined =
        pb.emit_and(compiled_[0]->result_col, transfer_chunk_->offset);
    const pim::WordProgram wp = {pim::WordOp::and_op(
        compiled_[0]->result_col, transfer_chunk_->offset, combined)};
    const pim::MicroProgram prog = pb.take();
    logic_phase({{0, &prog, &wp, &active_pages_}}, &stats_.phases.transfer);
    alloc(0).release(compiled_[0]->result_col);
    alloc(1).release(compiled_[1]->result_col);
    r_col_ = combined;
  }

  // Free introspection: exact selected-record count for the stats tables.
  // Copy-free column popcounts, active pages in parallel, reduced in page
  // order; skipped pages provably select nothing and contribute zero.
  std::vector<std::size_t> page_selected(pages(), 0);
  run_jobs(active_pages_.size(), [&](std::size_t i, pim::EnergyMeter&) {
    const std::size_t p = active_pages_[i];
    pim::Page& page = store_.page(0, p);
    std::size_t n = 0;
    for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
      n += vectorized_ ? page.crossbar(x).column_popcount(r_col_)
                       : page.crossbar(x).column(r_col_).popcount();
    }
    page_selected[p] = n;
  });
  std::size_t selected = 0;
  for (const std::size_t n : page_selected) selected += n;
  stats_.selected_records = selected;
  stats_.selectivity =
      static_cast<double>(selected) / static_cast<double>(store_.record_count());
}

void Execution::filter_phase() {
  filter_compile();
  {
    std::vector<PhaseProg> progs;
    for (int part = 0; part < store_.parts(); ++part) {
      if (part == 1 && skip_transfer_) continue;
      progs.push_back({part, &compiled_[part]->program, &compiled_[part]->words,
                       &run_pages_[part]});
    }
    logic_phase(progs, &stats_.phases.filter);
  }
  synthesize_pending();
  filter_combine();
}

// ---------------------------------------------------------------------------
// Aggregation pass construction
// ---------------------------------------------------------------------------

void Execution::build_agg_passes() {
  using sql::AggFunc;
  using sql::Expr;

  const rel::Schema& schema = store_.table().schema();
  auto part0_field = [&](std::size_t attr) {
    if (store_.part_of_attr(attr) != 0) {
      throw std::runtime_error(
          "aggregated attribute '" + schema.attribute(attr).name +
          "' must reside in the fact partition");
    }
    return store_.field(attr);
  };

  std::uint32_t max_value_bits = 1;
  if (q_.agg_func == AggFunc::kCount) {
    AggPass p;
    p.use_select_as_value = true;
    p.carries_count = false;  // the pass value IS the count
    passes_.push_back(p);
  } else if (q_.agg_expr.kind == Expr::Kind::kColumn) {
    AggPass p;
    p.value = part0_field(q_.agg_expr.a);
    p.op = q_.agg_func == AggFunc::kMin   ? pim::AggOp::kMin
           : q_.agg_func == AggFunc::kMax ? pim::AggOp::kMax
                                          : pim::AggOp::kSum;
    p.carries_count = true;
    passes_.push_back(p);
    max_value_bits = p.value.width;
  } else if (q_.agg_expr.kind == Expr::Kind::kSub ||
             q_.agg_expr.kind == Expr::Kind::kAdd) {
    if (q_.agg_func != AggFunc::kSum) {
      throw std::runtime_error("MIN/MAX over expressions is not supported");
    }
    // SUM(a +- b) = SUM(a) +- SUM(b).
    AggPass pa;
    pa.value = part0_field(q_.agg_expr.a);
    pa.carries_count = true;
    passes_.push_back(pa);
    AggPass pb;
    pb.value = part0_field(q_.agg_expr.b);
    pb.scale = q_.agg_expr.kind == Expr::Kind::kSub ? -1 : 1;
    passes_.push_back(pb);
    max_value_bits = std::max(pa.value.width, pb.value.width);
  } else {  // kMul
    if (q_.agg_func != AggFunc::kSum) {
      throw std::runtime_error("MIN/MAX over expressions is not supported");
    }
    pim::Field fa = part0_field(q_.agg_expr.a);
    pim::Field fb = part0_field(q_.agg_expr.b);
    if (fb.width > fa.width) std::swap(fa, fb);  // fb is the narrow one
    if (fb.width > kMulDecompositionMaxBits) {
      throw std::runtime_error(
          "SUM of a product needs one operand of <= 12 bits");
    }
    // SUM(a*b) = sum_i 2^i * SUM(a | b_i AND select).
    for (std::uint16_t i = 0; i < fb.width; ++i) {
      AggPass p;
      p.value = fa;
      p.scale = static_cast<std::int64_t>(1) << i;
      p.mask_attr_col = static_cast<std::uint16_t>(fb.offset + i);
      passes_.push_back(p);
    }
    // All passes are masked; a dedicated pass recovers the subgroup count.
    AggPass pc;
    pc.use_select_as_value = true;
    pc.scale = 0;
    passes_.push_back(pc);
    max_value_bits = fa.width;
  }

  // Result slots: sums over 1024 rows add log2(rows) bits.
  const std::uint32_t result_bits = std::min<std::uint32_t>(
      64, max_value_bits + rel::bits_for_max(rows() - 1));
  result_field_ = alloc(0).alloc_field(static_cast<std::uint16_t>(result_bits));
  count_field_ =
      alloc(0).alloc_field(static_cast<std::uint16_t>(rel::bits_for_max(rows())));

  for (const AggPass& p : passes_) {
    const std::uint32_t n =
        p.use_select_as_value ? 1 : pim::chunk_span(p.value, cfg_);
    n_chunks_ = std::max(n_chunks_, n);
  }
  s_chunks_ = static_cast<std::uint32_t>(chunk_set(host_read_attrs()).size());
}

// ---------------------------------------------------------------------------
// One aggregation pass over a select column
// ---------------------------------------------------------------------------

std::uint64_t Execution::run_agg_pass(const AggPass& pass,
                                      std::uint16_t select_col,
                                      std::uint64_t* out_count, TimeNs* slot,
                                      const std::vector<std::size_t>& on_pages) {
  const bool want_count = pass.carries_count && out_count != nullptr;
  pim::AggRequest req;
  req.select_col = select_col;
  req.value = pass.use_select_as_value ? pim::Field{select_col, 1} : pass.value;
  req.op = pass.op;
  req.result = result_field_;
  req.result_row = 0;
  req.with_count = want_count;
  req.count = count_field_;

  // Per-page partial folds, combined in page order at the end: SUM is exact
  // modular u64 addition and MIN/MAX are associative, so the split cannot
  // change the result. In vectorized mode the partials are captured while
  // the circuits run (the written result fields read back to exactly the
  // captured masked values, so re-reading them is pure overhead); the
  // scalar baseline reads them back from the crossbars like the host would.
  struct Partial {
    std::uint64_t acc;
    std::uint64_t count;
  };
  const std::uint64_t value_max =
      req.value.width >= 64 ? ~0ULL : (1ULL << req.value.width) - 1;
  std::vector<Partial> partials(
      on_pages.size(), Partial{req.op == pim::AggOp::kMin ? value_max : 0, 0});
  bool folded = false;

  if (kind_ == EngineKind::kPimdb) {
    // Pure bulk-bitwise reduction: identical result, very different price.
    // Each tree level is a separate macro request per page (the host must
    // fence between levels), so the reduction costs one scheduled phase per
    // level — the issue-cost multiplier behind PIMDB's Table II column.
    std::vector<std::uint64_t> phases =
        pimdb::bitserial_agg_phases(req.value.width, rows(), req.op);
    if (want_count) {
      const std::vector<std::uint64_t> count_phases =
          pimdb::bitserial_agg_phases(1, rows(), pim::AggOp::kSum);
      phases.insert(phases.end(), count_phases.begin(), count_phases.end());
    }
    std::uint64_t total_cycles = 0;
    for (const std::uint64_t c : phases) total_cycles += c;

    run_jobs(on_pages.size(), [&](std::size_t i, pim::EnergyMeter&) {
      pim::Page& page = store_.page(0, on_pages[i]);
      Partial& part = partials[i];
      for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
        pim::Crossbar& xb = page.crossbar(x);
        std::uint64_t count = 0;
        const std::uint64_t v = pim::compute_aggregate(
            xb, req.value, select_col, req.op, &count, vectorized_);
        const std::uint64_t rmask =
            req.result.width >= 64 ? ~0ULL : (1ULL << req.result.width) - 1;
        xb.write_row_bits(0, req.result.offset, req.result.width, v & rmask);
        if (want_count) {
          xb.write_row_bits(0, req.count.offset, req.count.width, count);
        }
        xb.add_uniform_wear(total_cycles);
        if (vectorized_) {
          part.acc = pim::agg_fold(req.op, part.acc, v & rmask);
          const std::uint64_t cmask =
              req.count.width >= 64 ? ~0ULL : (1ULL << req.count.width) - 1;
          if (want_count) part.count += count & cmask;
        }
      }
    });
    folded = vectorized_;
    for (const std::uint64_t cycles : phases) {
      std::vector<pim::RequestTrace> traces;
      traces.reserve(on_pages.size());
      for (const std::size_t p : on_pages) {
        pim::RequestTrace t = pim::logic_trace_cost(
            cfg_, cycles, store_.page(0, p).crossbar_count());
        meter_.add(pim::EnergyCat::kLogic, t.energy_j);
        traces.push_back(t);
      }
      schedule_phase(traces, hcfg_.request_window, hcfg_.issue_ns, slot);
    }
  } else {
    std::vector<pim::RequestTrace> traces(on_pages.size());
    std::vector<pim::PageAggResult> page_results(on_pages.size());
    run_jobs(on_pages.size(), [&](std::size_t i, pim::EnergyMeter& meter) {
      traces[i] =
          pim::execute_aggregate(store_.page(0, on_pages[i]), req, cfg_,
                                 &meter, vectorized_,
                                 vectorized_ ? &page_results[i] : nullptr);
    });
    if (vectorized_) {
      for (std::size_t i = 0; i < on_pages.size(); ++i) {
        partials[i] = Partial{page_results[i].value, page_results[i].count};
      }
      folded = true;
    }
    schedule_phase(traces, hcfg_.request_window, hcfg_.issue_ns, slot);
  }

  // Host fetches each crossbar's result (and count) line(s) — only from
  // pages that ran the pass.
  std::uint32_t lines_per_page = pim::chunk_span(result_field_, cfg_);
  if (want_count) lines_per_page += pim::chunk_span(count_field_, cfg_);
  line_read_phase(on_pages.size() * lines_per_page, slot);

  if (!folded) {
    run_jobs(on_pages.size(), [&](std::size_t i, pim::EnergyMeter&) {
      pim::Page& page = store_.page(0, on_pages[i]);
      Partial& part = partials[i];
      for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
        const std::uint64_t v = page.crossbar(x).read_row_bits(
            0, result_field_.offset, result_field_.width);
        part.acc = pim::agg_fold(req.op, part.acc, v);
        if (want_count) {
          part.count += page.crossbar(x).read_row_bits(0, count_field_.offset,
                                                       count_field_.width);
        }
      }
    });
  }
  std::uint64_t acc = req.op == pim::AggOp::kMin ? value_max : 0;
  std::uint64_t count = 0;
  for (const Partial& part : partials) {
    acc = pim::agg_fold(req.op, acc, part.acc);
    count += part.count;
  }
  if (want_count) *out_count = count;
  return acc;
}

// ---------------------------------------------------------------------------
// Subgroup aggregation (pim-gb)
// ---------------------------------------------------------------------------

std::pair<std::int64_t, std::uint64_t> Execution::aggregate_group(
    const GroupKey& key, bool update_mask) {
  TimeNs* slot = &stats_.phases.pim_gb;

  // Zone-map pruning, per subgroup: pages where the sketches refute the
  // group key on every crossbar cannot hold a member, so the group match,
  // the aggregation passes, and the result readback are all skipped there.
  // The subgroup select is provably all-zero on those pages, which is
  // exactly what the mask bookkeeping below synthesizes when needed.
  std::vector<std::size_t> group_pages;
  const std::vector<std::size_t>* on = &active_pages_;
  if (prune_) {
    const std::vector<std::uint8_t> possible =
        analyze_group_match(q_.group_by, key, store_, &active_pages_);
    for (const std::size_t p : active_pages_) {
      if (possible[p]) group_pages.push_back(p);
    }
    stats_.group_pages_skipped += active_pages_.size() - group_pages.size();
    on = &group_pages;
    if (on->empty()) return {0, 0};  // no page can hold this subgroup
  }

  // Part-1 group match (two-xb): compute, then transfer to part 0.
  bool have_transfer = false;
  if (store_.parts() == 2) {
    CompiledFilter match1 =
        compile_group_match(q_.group_by, key, store_.layout(1), alloc(1));
    if (match1.predicate_count > 0) {
      logic_phase({{1, &match1.program, &match1.words, on}}, slot);
      const std::vector<BitVec> bits =
          read_column_phase(1, match1.result_col, slot, on);
      if (!transfer_chunk_) {
        transfer_chunk_ = alloc(0).alloc_aligned_chunk(cfg_.read_bits);
      }
      write_column_phase(0, transfer_chunk_->offset, bits, slot, on);
      have_transfer = true;
    }
    alloc(1).release(match1.result_col);
  }

  // Part-0 program: group match AND filter result (AND transferred bits),
  // plus mask bookkeeping and per-pass masked selects, in one request.
  pim::ProgramBuilder pb(alloc(0));
  pim::WordProgram wp;
  std::uint16_t acc = 0;
  bool have_acc = false;
  for (std::size_t i = 0; i < q_.group_by.size(); ++i) {
    if (!store_.layout(0).has(q_.group_by[i])) continue;
    const pim::Field f = store_.layout(0).field(q_.group_by[i]);
    const std::uint16_t eq = pb.emit_eq_const(f, key[i]);
    wp.push_back(
        pim::WordOp::predicate(pim::WordOp::Kind::kEq, f, key[i], 0, eq));
    if (!have_acc) {
      acc = eq;
      have_acc = true;
    } else {
      const std::uint16_t next = pb.emit_and(acc, eq);
      wp.push_back(pim::WordOp::and_op(acc, eq, next));
      pb.release(acc);
      pb.release(eq);
      acc = next;
    }
  }
  std::uint16_t sg;
  if (have_acc) {
    sg = pb.emit_and(acc, r_col_);
    wp.push_back(pim::WordOp::and_op(acc, r_col_, sg));
    pb.release(acc);
  } else {
    sg = pb.emit_copy(r_col_);
    wp.push_back(pim::WordOp::copy(r_col_, sg));
  }
  if (have_transfer) {
    const std::uint16_t next = pb.emit_and(sg, transfer_chunk_->offset);
    wp.push_back(pim::WordOp::and_op(sg, transfer_chunk_->offset, next));
    pb.release(sg);
    sg = next;
  }
  if (update_mask) {
    if (!mask_valid_) {
      mask_col_ = alloc(0).alloc();
      pb.emit_copy_into(sg, mask_col_);
      wp.push_back(pim::WordOp::copy(sg, mask_col_));
      mask_valid_ = true;
    } else {
      // Pages this subgroup runs on may have been pruned out of every
      // earlier subgroup — their mask was never written. Zero it there
      // (host-known: the pruned subgroups' selects are provably empty)
      // before the OR below reads it.
      ensure_mask_zero(*on);
      const std::uint16_t m = pb.emit_or(mask_col_, sg);
      pb.emit_copy_into(m, mask_col_);
      wp.push_back(pim::WordOp::or_op(mask_col_, sg, m));
      wp.push_back(pim::WordOp::copy(m, mask_col_));
      pb.release(m);
    }
  }
  // Per-pass masked selects (mul decomposition).
  std::vector<std::uint16_t> pass_select(passes_.size(), sg);
  std::vector<std::uint16_t> owned_selects;
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    if (passes_[i].mask_attr_col) {
      pass_select[i] = pb.emit_and(sg, *passes_[i].mask_attr_col);
      wp.push_back(
          pim::WordOp::and_op(sg, *passes_[i].mask_attr_col, pass_select[i]));
      owned_selects.push_back(pass_select[i]);
    }
  }
  {
    const pim::MicroProgram prog = pb.take();
    logic_phase({{0, &prog, &wp, on}}, slot);
  }
  if (update_mask) {
    for (const std::size_t p : *on) mask_ready_[p] = 1;
  }

  // Aggregation passes.
  std::int64_t total = 0;
  std::uint64_t count = 0;
  bool have_minmax = false;
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    const AggPass& pass = passes_[i];
    std::uint64_t pass_count = 0;
    const std::uint64_t v = run_agg_pass(
        pass, pass_select[i], pass.carries_count ? &pass_count : nullptr, slot,
        *on);
    if (pass.carries_count) count = pass_count;
    if (q_.agg_func == sql::AggFunc::kCount) {
      total = static_cast<std::int64_t>(v);
      count = v;
    } else if (pass.op == pim::AggOp::kSum) {
      if (pass.use_select_as_value && pass.scale == 0) {
        count = v;  // dedicated count pass
      } else {
        total += pass.scale * static_cast<std::int64_t>(v);
      }
    } else {
      total = static_cast<std::int64_t>(v);  // single MIN/MAX pass
      have_minmax = true;
    }
  }
  if (have_minmax && count == 0) total = 0;

  for (const std::uint16_t c : owned_selects) alloc(0).release(c);
  alloc(0).release(sg);
  return {total, count};
}

// ---------------------------------------------------------------------------
// Phase 2: sampling (Section IV)
// ---------------------------------------------------------------------------

void Execution::sample_phase() {
  TimeNs* slot = &stats_.phases.sample;

  // Read the filter bits of one page (32 K records), single thread. When
  // the zone maps skipped page 0, its select is statically empty — the
  // sampled survivor set is known to be empty at zero modeled cost, and
  // (because the unpruned run would have read an all-zero column) the
  // resulting estimates, candidates, and plan are identical either way.
  BitVec bits;
  const bool page0_skipped = prune_ && analysis_->page_skip[0] != 0;
  if (!page0_skipped) {
    pim::RequestTrace t =
        pim::read_bit_column(store_.page(0, 0), r_col_, hcfg_.line_stream_ns,
                             cfg_, &meter_, &bits, vectorized_);
    advance_clock(clock_ + t.duration_ns, slot);
    ++stats_.pim_requests;
  }

  // Read the group attributes of every sampled survivor. The dense read-set
  // variant dedupes lines on a bitmap instead of a hash set.
  host::ReadSet rs =
      vectorized_
          ? host::ReadSet(1, rows(),
                          static_cast<std::uint32_t>(store_.parts()) *
                              cfg_.chunks_per_row())
          : host::ReadSet(1);
  const auto chunks = chunk_set(q_.group_by);
  std::unordered_map<GroupKey, std::uint64_t, KeyHash> counts;
  std::size_t hits = 0;
  const std::uint32_t valid = store_.page_records(0);
  for (std::size_t i = bits.find_next(0); i < bits.size();
       i = bits.find_next(i + 1)) {
    if (i >= valid) break;
    ++hits;
    const pim::Page::RecordCoord c = store_.page(0, 0).locate(
        static_cast<std::uint32_t>(i));
    for (const auto& [part, chunk] : chunks) {
      rs.touch(0, c.row,
               static_cast<std::uint32_t>(part) * cfg_.chunks_per_row() + chunk);
    }
    ++counts[group_attr_key(i)];
  }
  // Single-threaded sample walk (shared across threads, Section V-A).
  const TimeNs read_ns =
      static_cast<double>(rs.unique_lines()) * hcfg_.line_random_ns +
      static_cast<double>(hits) * hcfg_.cpu_ns_per_sample;
  meter_.add(pim::EnergyCat::kRead,
             static_cast<double>(rs.unique_lines()) * cfg_.line_bytes() * 8 *
                 cfg_.read_energy_pj_per_bit * units::kJoulePerPj);
  advance_clock(clock_ + read_ns, slot);

  stats_.sampled_subgroups = counts.size();
  selectivity_est_ = valid > 0 ? static_cast<double>(hits) / valid : 0.0;

  for (auto& [key, count] : counts) {
    GroupCandidate c;
    c.key = key;
    c.sampled = true;
    c.sample_count = count;
    c.est_mass = hits > 0 ? static_cast<double>(count) / hits : 0.0;
    candidates_.push_back(std::move(c));
  }
}

// ---------------------------------------------------------------------------
// Candidate enumeration ("total subgroups", Table II)
// ---------------------------------------------------------------------------

void Execution::build_candidates() {
  // Candidate values per group attribute: distinct values consistent with
  // the query's own predicates on that attribute.
  std::vector<std::vector<std::uint64_t>> domains;
  candidates_complete_ = true;
  double product = 1.0;
  for (const std::size_t attr : q_.group_by) {
    const auto& dv = store_.distinct_values(attr);
    if (!dv) {
      candidates_complete_ = false;
      break;
    }
    // Per-predicate state hoisted out of the value loop: the co-occurrence
    // lookup is a cache-map access and used to run once per (value,
    // predicate) — the dominant cost of candidate enumeration for
    // high-cardinality group attributes.
    struct PredDomain {
      const sql::BoundPredicate* p;
      /// Co-occurring values per candidate value; null when the predicate
      /// is on `attr` itself or no co-occurrence stats exist.
      const std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>* co;
    };
    std::vector<PredDomain> preds;
    for (const sql::BoundPredicate& p : q_.filters) {
      if (p.kind == sql::BoundPredicate::Kind::kAlways) continue;
      // Predicates on co-occurring attributes constrain the candidate
      // domain too (e.g. p_category = 'MFGR#12' leaves only that
      // category's brands; d_yearmonth = 'Dec1997' leaves d_year = 1997 —
      // Table II's "subgroups according to query and database details").
      preds.push_back(
          {&p, p.attr == attr ? nullptr : store_.co_occurrence(attr, p.attr)});
    }
    std::vector<std::uint64_t> vals;
    for (const std::uint64_t v : *dv) {
      bool ok = true;
      for (const PredDomain& pd : preds) {
        const sql::BoundPredicate& p = *pd.p;
        if (p.attr == attr) {
          if (!p.matches(v)) {
            ok = false;
            break;
          }
          continue;
        }
        if (pd.co != nullptr) {
          const auto dep = pd.co->find(v);
          if (dep != pd.co->end()) {
            bool any = false;
            for (const std::uint64_t w : dep->second) {
              if (p.matches(w)) {
                any = true;
                break;
              }
            }
            if (!any) {
              ok = false;
              break;
            }
          }
        }
      }
      if (ok) vals.push_back(v);
    }
    product *= static_cast<double>(vals.size());
    domains.push_back(std::move(vals));
  }

  if (candidates_complete_ && product <= static_cast<double>(kCandidateCap)) {
    stats_.total_subgroups = static_cast<std::size_t>(product);
    // Enumerate the cartesian product; merge with sampled candidates.
    std::unordered_map<GroupKey, std::size_t, KeyHash> sampled_index;
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      sampled_index.emplace(candidates_[i].key, i);
    }
    GroupKey key(domains.size(), 0);
    std::vector<std::size_t> idx(domains.size(), 0);
    const std::size_t total = stats_.total_subgroups;
    for (std::size_t count = 0; count < total; ++count) {
      for (std::size_t d = 0; d < domains.size(); ++d) key[d] = domains[d][idx[d]];
      if (!sampled_index.contains(key)) {
        GroupCandidate c;
        c.key = key;
        candidates_.push_back(std::move(c));
      }
      // Odometer increment.
      for (std::size_t d = domains.size(); d-- > 0;) {
        if (++idx[d] < domains[d].size()) break;
        idx[d] = 0;
      }
    }
    // Sampled keys outside the enumerated domain (shouldn't happen: sampled
    // records satisfied the filters) are kept — harmless.
  } else {
    candidates_complete_ = false;
    stats_.total_subgroups =
        product > static_cast<double>(kCandidateCap) || !candidates_complete_
            ? static_cast<std::size_t>(
                  std::min(product, 1e18))
            : candidates_.size();
  }
  sort_candidates(candidates_);
}

// ---------------------------------------------------------------------------
// Phase 3: planning (Equation 3)
// ---------------------------------------------------------------------------

void Execution::plan_phase() {
  if (opts_.force_k) {
    chosen_k_ = std::min(*opts_.force_k, candidates_.size());
    return;
  }
  GroupByPlanInput in;
  in.pages = static_cast<double>(pages());
  in.n = n_chunks_;
  in.s = s_chunks_;
  in.selectivity_est = selectivity_est_;
  in.candidates = candidates_;
  in.candidates_complete = candidates_complete_;
  const GroupByPlan plan = choose_k(models_, in);
  chosen_k_ = plan.k;
  advance_clock(clock_ + hcfg_.plan_overhead_ns, &stats_.phases.plan);
}

// ---------------------------------------------------------------------------
// Phase 4: pim-gb
// ---------------------------------------------------------------------------

void Execution::pim_gb_phase() {
  const bool host_side_needed =
      !opts_.skip_host_gb &&
      !(candidates_complete_ && chosen_k_ == candidates_.size());
  for (std::size_t g = 0; g < chosen_k_; ++g) {
    cancel_.check();  // per-subgroup boundary: each group is a full PIM pass
    const auto [value, count] =
        aggregate_group(candidates_[g].key, /*update_mask=*/host_side_needed);
    if (count > 0) {
      results_[candidates_[g].key] = {value, true};
    }
  }
  stats_.pim_subgroups = chosen_k_;
}

// ---------------------------------------------------------------------------
// Phase 5: host-gb
// ---------------------------------------------------------------------------

void Execution::host_gb_phase() {
  TimeNs* slot = &stats_.phases.host_gb;

  // Residual selection R' = R AND NOT mask (mask = union of pim-gb groups).
  std::uint16_t residual = r_col_;
  bool residual_owned = false;
  if (mask_valid_) {
    // Pages every pim-gb subgroup was pruned off never wrote their mask;
    // zero it there (those subgroups provably selected nothing) so the
    // AND-NOT below reads a defined value on every active page.
    ensure_mask_zero(active_pages_);
    pim::ProgramBuilder pb(alloc(0));
    residual = pb.emit_andnot(r_col_, mask_col_);
    const pim::WordProgram wp = {
        pim::WordOp::andnot_op(r_col_, mask_col_, residual)};
    residual_owned = true;
    const pim::MicroProgram prog = pb.take();
    logic_phase({{0, &prog, &wp, &active_pages_}}, slot);
  }

  const std::vector<BitVec> bits =
      read_column_phase(0, residual, slot, &active_pages_);

  const auto chunks = chunk_set(host_read_attrs());
  std::size_t processed = 0;
  std::vector<std::uint32_t> page_lines(pages(), 0);

  if (!vectorized_) {
    // Scalar baseline: the seed's record-at-a-time walk (hash-set line
    // dedupe, a key vector per record).
    host::ReadSet rs(pages());
    for (std::size_t p = 0; p < pages(); ++p) {
      const std::uint32_t valid = store_.page_records(p);
      for (std::size_t i = bits[p].find_next(0); i < bits[p].size();
           i = bits[p].find_next(i + 1)) {
        if (i >= valid) break;
        ++processed;
        const std::size_t record = p * store_.records_per_page() + i;
        const pim::Page::RecordCoord c =
            store_.page(0, p).locate(static_cast<std::uint32_t>(i));
        for (const auto& [part, chunk] : chunks) {
          rs.touch(static_cast<std::uint32_t>(p), c.row,
                   static_cast<std::uint32_t>(part) * cfg_.chunks_per_row() +
                       chunk);
        }
        // Classify + aggregate on the CPU.
        GroupKey key = group_attr_key(record);
        std::int64_t v = 1;
        if (q_.agg_func != sql::AggFunc::kCount) {
          const std::uint64_t va = store_.read_attr(record, q_.agg_expr.a);
          const std::uint64_t vb =
              q_.agg_expr.kind == sql::Expr::Kind::kColumn
                  ? 0
                  : store_.read_attr(record, q_.agg_expr.b);
          v = static_cast<std::int64_t>(q_.agg_expr.eval(va, vb));
        }
        auto [it, fresh] = results_.try_emplace(
            std::move(key), std::pair<std::int64_t, bool>{0, false});
        if (q_.agg_func == sql::AggFunc::kMin) {
          it->second.first = fresh ? v : std::min(it->second.first, v);
        } else if (q_.agg_func == sql::AggFunc::kMax) {
          it->second.first = fresh ? v : std::max(it->second.first, v);
        } else {
          it->second.first += v;
        }
      }
    }
    page_lines.assign(rs.per_page_lines().begin(), rs.per_page_lines().end());
  } else {
    // Page-parallel walk: every page classifies into a private group map
    // with a reused key buffer and counts unique lines in a page-local
    // bitmap; partials are merged into results_ in page order. Per-key
    // combines are exact integer ops, so the split is invisible: the merged
    // map — and after the total-order sort, the rows — match the
    // record-at-a-time walk bit for bit.
    struct PagePartial {
      std::unordered_map<GroupKey, std::int64_t, KeyHash> groups;
      /// Bit-packed variant used when the group attributes fit in 64 bits
      /// (the common case): no vector hashing/compares per record.
      std::unordered_map<std::uint64_t, std::int64_t> packed;
      std::size_t processed = 0;
      std::uint32_t lines = 0;
    };
    std::vector<PagePartial> partials(pages());
    // Hoisted attribute access: (part, field) resolved once, the page
    // reference once per page — the walk reads crossbar words directly
    // instead of going through PimStore::read_attr per record per attr.
    struct WalkAttr {
      int part;
      pim::Field f;
    };
    std::vector<WalkAttr> group_attrs;
    group_attrs.reserve(q_.group_by.size());
    std::uint32_t key_bits = 0;
    for (const std::size_t a : q_.group_by) {
      group_attrs.push_back({store_.part_of_attr(a), store_.field(a)});
      key_bits += store_.field(a).width;
    }
    // Field values are < 2^width by construction, so concatenating them is
    // a lossless key encoding whenever the total width fits a word.
    const bool pack_keys = key_bits <= 64;
    const bool want_values = q_.agg_func != sql::AggFunc::kCount;
    const bool have_b = q_.agg_expr.kind != sql::Expr::Kind::kColumn;
    WalkAttr attr_a{0, {}};
    WalkAttr attr_b{0, {}};
    if (want_values) {
      attr_a = {store_.part_of_attr(q_.agg_expr.a), store_.field(q_.agg_expr.a)};
      if (have_b) {
        attr_b = {store_.part_of_attr(q_.agg_expr.b),
                  store_.field(q_.agg_expr.b)};
      }
    }
    run_jobs(active_pages_.size(), [&](std::size_t job, pim::EnergyMeter&) {
      const std::size_t p = active_pages_[job];
      PagePartial& part = partials[p];
      const std::uint32_t valid = store_.page_records(p);
      // Dense single-page read set: same line dedupe as the scalar walk,
      // bitmap-backed (see host::ReadSet's dense variant).
      host::ReadSet page_rs(1, rows(),
                            static_cast<std::uint32_t>(store_.parts()) *
                                cfg_.chunks_per_row());
      GroupKey key(q_.group_by.size(), 0);
      pim::Page* part_pages[2] = {&store_.page(0, p), nullptr};
      if (store_.parts() == 2) part_pages[1] = &store_.page(1, p);
      auto read_field = [&](const WalkAttr& wa, const pim::Page::RecordCoord& c) {
        return part_pages[wa.part]->crossbar(c.crossbar).read_row_bits(
            c.row, wa.f.offset, wa.f.width);
      };
      for (std::size_t i = bits[p].find_next(0); i < bits[p].size();
           i = bits[p].find_next(i + 1)) {
        if (i >= valid) break;
        ++part.processed;
        const pim::Page::RecordCoord c =
            part_pages[0]->locate(static_cast<std::uint32_t>(i));
        for (const auto& [cpart, chunk] : chunks) {
          page_rs.touch(0, c.row,
                        static_cast<std::uint32_t>(cpart) *
                                cfg_.chunks_per_row() +
                            chunk);
        }
        std::int64_t v = 1;
        if (want_values) {
          const std::uint64_t va = read_field(attr_a, c);
          const std::uint64_t vb = have_b ? read_field(attr_b, c) : 0;
          v = static_cast<std::int64_t>(q_.agg_expr.eval(va, vb));
        }
        auto combine = [&](std::int64_t& slot) {
          if (q_.agg_func == sql::AggFunc::kMin) {
            slot = std::min(slot, v);
          } else if (q_.agg_func == sql::AggFunc::kMax) {
            slot = std::max(slot, v);
          } else {
            slot += v;
          }
        };
        if (pack_keys) {
          std::uint64_t pk = 0;
          std::uint32_t shift = 0;
          for (const WalkAttr& wa : group_attrs) {
            pk |= read_field(wa, c) << shift;
            shift += wa.f.width;
          }
          const auto [it, fresh] = part.packed.try_emplace(pk, v);
          if (!fresh) combine(it->second);
        } else {
          for (std::size_t a = 0; a < group_attrs.size(); ++a) {
            key[a] = read_field(group_attrs[a], c);
          }
          const auto it = part.groups.find(key);
          if (it == part.groups.end()) {
            part.groups.emplace(key, v);  // key copied only on first sighting
          } else {
            combine(it->second);
          }
        }
      }
      part.lines = static_cast<std::uint32_t>(page_rs.unique_lines());
    });
    GroupKey unpacked(q_.group_by.size(), 0);
    for (std::size_t p = 0; p < pages(); ++p) {
      processed += partials[p].processed;
      page_lines[p] = partials[p].lines;
      auto merge = [&](const GroupKey& key, std::int64_t v) {
        auto [it, fresh] = results_.try_emplace(
            key, std::pair<std::int64_t, bool>{0, false});
        if (q_.agg_func == sql::AggFunc::kMin) {
          it->second.first = fresh ? v : std::min(it->second.first, v);
        } else if (q_.agg_func == sql::AggFunc::kMax) {
          it->second.first = fresh ? v : std::max(it->second.first, v);
        } else {
          it->second.first += v;
        }
      };
      for (const auto& [pk, v] : partials[p].packed) {
        std::uint64_t rest = pk;
        for (std::size_t a = 0; a < group_attrs.size(); ++a) {
          const std::uint32_t w = group_attrs[a].f.width;
          unpacked[a] = w >= 64 ? rest : rest & ((1ULL << w) - 1);
          rest = w >= 64 ? 0 : rest >> w;
        }
        merge(unpacked, v);
      }
      for (const auto& [key, v] : partials[p].groups) merge(key, v);
    }
  }

  std::size_t unique_lines = 0;
  for (const std::uint32_t n : page_lines) unique_lines += n;
  stats_.host_lines = unique_lines;
  meter_.add(pim::EnergyCat::kRead,
             static_cast<double>(unique_lines) * cfg_.line_bytes() * 8 *
                 cfg_.read_energy_pj_per_bit * units::kJoulePerPj);
  const TimeNs cpu = static_cast<double>(processed) * hcfg_.cpu_ns_per_record /
                     hcfg_.threads;
  advance_clock(clock_ + host::lines_phase_time_ns(page_lines, hcfg_) + cpu,
                slot);

  if (residual_owned) alloc(0).release(residual);
}

// ---------------------------------------------------------------------------
// No-GROUP-BY fast path (Q1.x): a single aggregation over R
// ---------------------------------------------------------------------------

void Execution::no_groupby_aggregate() {
  TimeNs* slot = &stats_.phases.pim_gb;

  // Per-pass masked selects.
  std::vector<std::uint16_t> pass_select(passes_.size(), r_col_);
  std::vector<std::uint16_t> owned;
  {
    pim::ProgramBuilder pb(alloc(0));
    pim::WordProgram wp;
    bool any = false;
    for (std::size_t i = 0; i < passes_.size(); ++i) {
      if (passes_[i].mask_attr_col) {
        pass_select[i] = pb.emit_and(r_col_, *passes_[i].mask_attr_col);
        wp.push_back(pim::WordOp::and_op(r_col_, *passes_[i].mask_attr_col,
                                         pass_select[i]));
        owned.push_back(pass_select[i]);
        any = true;
      }
    }
    if (any) {
      const pim::MicroProgram prog = pb.take();
      logic_phase({{0, &prog, &wp, &active_pages_}}, slot);
    }
  }

  std::int64_t total = 0;
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    const AggPass& pass = passes_[i];
    const std::uint64_t v =
        run_agg_pass(pass, pass_select[i], nullptr, slot, active_pages_);
    if (q_.agg_func == sql::AggFunc::kCount) {
      total = static_cast<std::int64_t>(v);
    } else if (pass.op == pim::AggOp::kSum) {
      if (!(pass.use_select_as_value && pass.scale == 0)) {
        total += pass.scale * static_cast<std::int64_t>(v);
      }
    } else {
      total = stats_.selected_records > 0 ? static_cast<std::int64_t>(v) : 0;
    }
  }
  rows_.push_back(ResultRow{{}, total});
}

// ---------------------------------------------------------------------------
// Phase 6: finalize
// ---------------------------------------------------------------------------

void Execution::finalize_phase() {
  for (auto& [key, value] : results_) {
    rows_.push_back(ResultRow{key, value.first});
  }
  std::sort(rows_.begin(), rows_.end(), [&](const ResultRow& a,
                                            const ResultRow& b) {
    for (const sql::BoundOrderItem& o : q_.order_by) {
      if (o.is_agg) {
        if (a.agg != b.agg) return o.desc ? a.agg > b.agg : a.agg < b.agg;
      } else {
        const std::uint64_t va = a.group[o.group_pos];
        const std::uint64_t vb = b.group[o.group_pos];
        if (va != vb) return o.desc ? va > vb : va < vb;
      }
    }
    return a.group < b.group;  // deterministic tiebreak
  });
  advance_clock(clock_ + static_cast<double>(rows_.size()) * 50.0,
                &stats_.phases.finalize);
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

QueryOutput Execution::run() {
  cancel_.check();
  store_.module().reset_wear();
  wall("agg_passes", [&] { build_agg_passes(); });
  wall("filter", [&] { filter_phase(); });
  return finish_run();
}

QueryOutput Execution::finish_run() {
  cancel_.check();
  // Early-exit aggregation on statically empty selects: every page was
  // skipped by the zone maps, so the host knows — without one PIM request —
  // that zero records survive. The plan-semantic stats (candidates, chosen
  // k, estimates) are still produced, identically to the unpruned run; only
  // the per-subgroup and host aggregation work is dropped, and the rows
  // (none for GROUP BY, the zero aggregate otherwise) match exactly.
  const bool statically_empty = prune_ && active_pages_.empty();

  if (!q_.has_group_by()) {
    if (statically_empty) {
      rows_.push_back(ResultRow{{}, 0});
    } else {
      wall("no_gb_agg", [&] { no_groupby_aggregate(); });
    }
    stats_.total_subgroups = 1;  // Table II: Q1.x aggregate once, in PIM
    stats_.pim_subgroups = 1;
  } else {
    wall("sample", [&] { sample_phase(); });
    wall("candidates", [&] { build_candidates(); });
    wall("plan", [&] { plan_phase(); });
    if (statically_empty) {
      stats_.pim_subgroups = chosen_k_;
    } else {
      wall("pim_gb", [&] { pim_gb_phase(); });
      const bool pure_pim =
          candidates_complete_ && chosen_k_ == candidates_.size();
      if (!pure_pim && !opts_.skip_host_gb) {
        wall("host_gb", [&] { host_gb_phase(); });
      }
    }
    wall("finalize", [&] { finalize_phase(); });
  }

  // Export the planner inputs for offline Equation-3 re-evaluation.
  stats_.n_chunks = n_chunks_;
  stats_.s_chunks = s_chunks_;
  stats_.selectivity_estimate = selectivity_est_;
  stats_.candidates_complete = candidates_complete_;
  stats_.candidate_masses.reserve(candidates_.size());
  for (const GroupCandidate& c : candidates_) {
    stats_.candidate_masses.push_back(c.est_mass);
  }

  finish_stats();

  QueryOutput out;
  out.rows = std::move(rows_);
  out.stats = stats_;
  return out;
}

void Execution::finish_stats() {
  stats_.total_ns = clock_;
  const pim::EnergyBreakdown energy = pim::energy_breakdown(meter_);
  stats_.energy_j = energy.total;
  stats_.energy_logic_j = energy.logic;
  stats_.energy_read_j = energy.read;
  stats_.energy_write_j = energy.write;
  stats_.energy_controller_j = energy.controller;
  stats_.energy_agg_circuit_j = energy.agg_circuit;
  stats_.peak_chip_w = tracker_.peak_module_w() / cfg_.chips;
  stats_.wear_row_writes = store_.module().max_row_writes();
}

// ---------------------------------------------------------------------------
// Shared-scan batching (stages 2 and 3; see the public section above)
// ---------------------------------------------------------------------------

void Execution::run_fused_filter(const std::vector<Execution*>& execs) {
  struct MemberProg {
    Execution* exec;
    const pim::MicroProgram* prog;
    const pim::WordProgram* words;
  };
  struct Visit {
    int part;
    std::size_t page;
    std::vector<MemberProg> progs;  ///< batch order
  };

  Execution& lead = *execs.front();
  const int parts = lead.store_.parts();
  const std::size_t pages = lead.pages();

  // Visit assembly, part-major page-ascending: a member's subsequence of
  // visits is then exactly its solo job order (run_pages_ lists ascend), so
  // its meter replay and trace schedule below match a solo run's shape.
  std::vector<Visit> visits;
  for (int part = 0; part < parts; ++part) {
    std::vector<std::vector<std::uint8_t>> member_runs(execs.size());
    for (std::size_t m = 0; m < execs.size(); ++m) {
      Execution* e = execs[m];
      if (part == 1 && e->skip_transfer_) continue;
      if (e->compiled_[part]->program.empty()) continue;
      if (e->run_pages_[part].empty()) continue;
      member_runs[m].assign(pages, 0);
      for (const std::size_t p : e->run_pages_[part]) member_runs[m][p] = 1;
    }
    for (std::size_t pg = 0; pg < pages; ++pg) {
      Visit v{part, pg, {}};
      for (std::size_t m = 0; m < execs.size(); ++m) {
        if (member_runs[m].empty() || !member_runs[m][pg]) continue;
        v.progs.push_back({execs[m], &execs[m]->compiled_[part]->program,
                           &execs[m]->compiled_[part]->words});
      }
      if (!v.progs.empty()) visits.push_back(std::move(v));
    }
  }
  if (visits.empty()) return;

  // A member cancelled before the fused pass aborts the whole batch here;
  // PimQueryEngine::execute_batch's fallback then re-runs every member solo,
  // so batchmates still get their exact rows and stats. The fused pass is a
  // crossbar-visit seam of its own: an injected fault here exercises the
  // same fallback.
  for (Execution* e : execs) e->cancel_.check();
  fault_point(FaultSeam::kCrossbarVisit);

  // Flat (visit, member) slots. Journal meters always — even single-thread —
  // so every run performs the identical per-member sequence of meter adds
  // regardless of how visits were scheduled across simulation threads.
  std::vector<std::size_t> off(visits.size() + 1, 0);
  for (std::size_t v = 0; v < visits.size(); ++v) {
    off[v + 1] = off[v] + visits[v].progs.size();
  }
  std::vector<pim::EnergyMeter> meters(off.back(),
                                       pim::EnergyMeter(/*journal=*/true));
  std::vector<pim::RequestTrace> traces(off.back());

  auto run_visit = [&](std::size_t vi) {
    const Visit& v = visits[vi];
    pim::Page& page = lead.store_.page(v.part, v.page);
    // Members run back to back within the visit — the shared-scan locality
    // win, and what makes released-temp-column reuse across members safe
    // (every program writes its temps before reading them).
    for (std::size_t i = 0; i < v.progs.size(); ++i) {
      const MemberProg& mp = v.progs[i];
      traces[off[vi] + i] =
          pim::execute_program(page, *mp.prog, lead.cfg_, &meters[off[vi] + i],
                               mp.exec->vectorized_, mp.words);
    }
  };
  // Visits touch disjoint (part, page) state, so they parallelize exactly
  // like solo filter jobs do. The batch shares one thread budget (admission
  // only groups executions with identical options).
  const unsigned threads = lead.sim_threads_;
  if (threads <= 1 || visits.size() <= 1) {
    for (std::size_t vi = 0; vi < visits.size(); ++vi) run_visit(vi);
  } else {
    parallel_for(visits.size(), threads,
                 [&](std::size_t, std::size_t begin, std::size_t end) {
                   for (std::size_t vi = begin; vi < end; ++vi) run_visit(vi);
                 });
  }

  // Demux: each slot's energy replays into its member's own meter and its
  // trace joins the member's own pending list, in visit order — a member is
  // billed for exactly the work its solo run would have done. A visit that
  // served two or more members counts as a fused page pass for each.
  for (std::size_t vi = 0; vi < visits.size(); ++vi) {
    const bool shared = visits[vi].progs.size() > 1;
    for (std::size_t i = 0; i < visits[vi].progs.size(); ++i) {
      Execution* e = visits[vi].progs[i].exec;
      meters[off[vi] + i].replay_into(e->meter_);
      e->pending_traces_.push_back(traces[off[vi] + i]);
      if (shared) ++e->stats_.fused_page_passes;
    }
  }
}

QueryOutput Execution::batch_finish() {
  // The member's fused traces schedule exactly as its solo logic_phase
  // would have: same order, same window parameters, its own clock from 0.
  // An empty list (everything synthesized or pruned) means no phase at all,
  // matching logic_phase's early return.
  if (!pending_traces_.empty()) {
    schedule_phase(pending_traces_, hcfg_.request_window, hcfg_.issue_ns,
                   &stats_.phases.filter);
    pending_traces_.clear();
  }
  // Synthesis waits until the member's own tail: every batchmate program
  // that could reuse this member's result column as a temp has already run.
  synthesize_pending();
  filter_combine();
  // Deferred from run()'s prologue: allocating every member's result/count
  // fields up front would exhaust the shared scratch space; allocating in
  // the tail reuses the columns released by the previous member's tail.
  build_agg_passes();
  QueryOutput out = finish_run();

  // Return held scratch to the shared allocator for the next member's tail.
  alloc(0).release(r_col_);
  if (transfer_chunk_) {
    alloc(0).release_field(*transfer_chunk_);
    transfer_chunk_.reset();
  }
  alloc(0).release_field(result_field_);
  alloc(0).release_field(count_field_);
  if (mask_valid_) {
    alloc(0).release(mask_col_);
    mask_valid_ = false;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Filter-only scan (join feeder)
// ---------------------------------------------------------------------------

ScanOutput Execution::run_scan(const std::vector<std::size_t>& attrs) {
  cancel_.check();
  store_.module().reset_wear();
  filter_phase();

  ScanOutput out;
  out.columns.resize(attrs.size());

  // Statically empty: every page refuted by the zone maps — the host knows
  // there are no survivors without a single readback.
  if (!(prune_ && active_pages_.empty())) {
    TimeNs* slot = &stats_.phases.host_gb;
    const std::vector<BitVec> bits =
        read_column_phase(0, r_col_, slot, &active_pages_);

    // Page-parallel survivor walk: each page collects its row ids and
    // attribute codes privately (hoisted field access, dense per-page
    // line accounting — the host-gb idiom), concatenated in page order.
    const auto chunks = chunk_set(attrs);
    struct PageOut {
      std::vector<std::uint64_t> ids;
      std::vector<std::vector<std::uint64_t>> cols;
      std::size_t processed = 0;
      std::uint32_t lines = 0;
    };
    std::vector<PageOut> partials(pages());
    struct WalkAttr {
      int part;
      pim::Field f;
    };
    std::vector<WalkAttr> walk;
    walk.reserve(attrs.size());
    for (const std::size_t a : attrs) {
      walk.push_back({store_.part_of_attr(a), store_.field(a)});
    }
    run_jobs(active_pages_.size(), [&](std::size_t job, pim::EnergyMeter&) {
      const std::size_t p = active_pages_[job];
      PageOut& po = partials[p];
      po.cols.resize(walk.size());
      const std::uint32_t valid = store_.page_records(p);
      host::ReadSet page_rs(1, rows(),
                            static_cast<std::uint32_t>(store_.parts()) *
                                cfg_.chunks_per_row());
      pim::Page* part_pages[2] = {&store_.page(0, p), nullptr};
      if (store_.parts() == 2) part_pages[1] = &store_.page(1, p);
      for (std::size_t i = bits[p].find_next(0); i < bits[p].size();
           i = bits[p].find_next(i + 1)) {
        if (i >= valid) break;
        ++po.processed;
        const pim::Page::RecordCoord c =
            part_pages[0]->locate(static_cast<std::uint32_t>(i));
        for (const auto& [cpart, chunk] : chunks) {
          page_rs.touch(0, c.row,
                        static_cast<std::uint32_t>(cpart) *
                                cfg_.chunks_per_row() +
                            chunk);
        }
        po.ids.push_back(p * store_.records_per_page() + i);
        for (std::size_t a = 0; a < walk.size(); ++a) {
          po.cols[a].push_back(
              part_pages[walk[a].part]->crossbar(c.crossbar).read_row_bits(
                  c.row, walk[a].f.offset, walk[a].f.width));
        }
      }
      po.lines = static_cast<std::uint32_t>(page_rs.unique_lines());
    });

    std::size_t processed = 0;
    std::size_t unique_lines = 0;
    std::vector<std::uint32_t> page_lines(pages(), 0);
    for (std::size_t p = 0; p < pages(); ++p) {
      PageOut& po = partials[p];
      processed += po.processed;
      page_lines[p] = po.lines;
      unique_lines += po.lines;
      out.row_ids.insert(out.row_ids.end(), po.ids.begin(), po.ids.end());
      for (std::size_t a = 0; a < po.cols.size(); ++a) {
        out.columns[a].insert(out.columns[a].end(), po.cols[a].begin(),
                              po.cols[a].end());
      }
    }
    stats_.host_lines = unique_lines;
    meter_.add(pim::EnergyCat::kRead,
               static_cast<double>(unique_lines) * cfg_.line_bytes() * 8 *
                   cfg_.read_energy_pj_per_bit * units::kJoulePerPj);
    const TimeNs cpu = static_cast<double>(processed) *
                       hcfg_.cpu_ns_per_record / hcfg_.threads;
    advance_clock(clock_ + host::lines_phase_time_ns(page_lines, hcfg_) + cpu,
                  slot);
  }

  finish_stats();
  out.stats = stats_;
  return out;
}

}  // namespace

CancelToken resolve_cancel(const ExecOptions& opts) {
  if (opts.cancel.state != nullptr) {
    // Arm the caller's token from deadline_us exactly once: a token that
    // already carries a deadline (e.g. armed at submission so queue wait
    // counts against the budget) keeps it.
    if (opts.deadline_us > 0 && !opts.cancel.state->has_deadline()) {
      opts.cancel.state->set_deadline(
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(opts.deadline_us));
    }
    return opts.cancel;
  }
  if (opts.deadline_us == 0) return {};
  CancelToken token = make_cancel_token();
  token.state->set_deadline(std::chrono::steady_clock::now() +
                            std::chrono::microseconds(opts.deadline_us));
  return token;
}

// ===========================================================================
// PimQueryEngine
// ===========================================================================

PimQueryEngine::PimQueryEngine(EngineKind kind, PimStore& store,
                               host::HostConfig hcfg, LatencyModels models)
    : kind_(kind), store_(&store), hcfg_(hcfg), models_(std::move(models)) {
  if (kind == EngineKind::kTwoXb && store.parts() != 2) {
    throw std::invalid_argument("two-xb engine needs a two-part store");
  }
  if (kind != EngineKind::kTwoXb && store.parts() != 1) {
    throw std::invalid_argument("one-xb/pimdb engines need a one-part store");
  }
}

QueryOutput PimQueryEngine::execute(const sql::BoundQuery& q,
                                    const ExecOptions& opts) {
  Execution exec(kind_, *store_, hcfg_, models_, q, opts);
  return exec.run();
}

PimQueryEngine::BatchOutput PimQueryEngine::execute_batch(
    const std::vector<const sql::BoundQuery*>& queries,
    const ExecOptions& opts, const std::vector<CancelToken>& cancels) {
  BatchOutput out;
  out.outputs.resize(queries.size());
  out.errors.resize(queries.size());
  if (queries.empty()) return out;
  // Per-member effective tokens: the aligned override when given, else the
  // one token `opts` resolves to (shared by every member, as for a solo run).
  std::vector<CancelToken> tokens;
  tokens.reserve(queries.size());
  if (cancels.empty()) {
    const CancelToken shared_token = resolve_cancel(opts);
    tokens.assign(queries.size(), shared_token);
  } else {
    for (const CancelToken& t : cancels) {
      tokens.push_back(t.valid() ? t : resolve_cancel(opts));
    }
  }
  const auto solo = [&](std::size_t i) {
    Execution exec(kind_, *store_, hcfg_, models_, *queries[i], opts,
                   /*shared_allocs=*/nullptr, &tokens[i]);
    return exec.run();
  };
  if (queries.size() == 1) {
    // Degenerate batch: exactly today's solo path, stats included
    // (batched_queries stays 0).
    try {
      out.outputs[0] = solo(0);
    } catch (...) {
      out.errors[0] = std::current_exception();
    }
    return out;
  }
  try {
    // Shared scratch allocators, one per part and spanning the whole batch:
    // no two members are ever handed the same physical column, and a
    // member's tail reuses whatever its released predecessors occupied.
    std::vector<pim::ColumnAlloc> shared;
    shared.reserve(static_cast<std::size_t>(store_->parts()));
    for (int part = 0; part < store_->parts(); ++part) {
      shared.push_back(store_->layout(part).make_alloc());
    }
    // One wear epoch per batch (solo run() resets per query; the tails must
    // not reset it again or they would erase the fused pass's writes).
    store_->module().reset_wear();

    std::vector<std::unique_ptr<Execution>> execs;
    execs.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      execs.push_back(std::make_unique<Execution>(
          kind_, *store_, hcfg_, models_, *queries[i], opts, &shared,
          &tokens[i]));
    }
    std::vector<Execution*> raw;
    raw.reserve(execs.size());
    for (const std::unique_ptr<Execution>& e : execs) raw.push_back(e.get());
    for (Execution* e : raw) e->batch_prepare();
    Execution::run_fused_filter(raw);
    // Tails run sequentially in batch order: they mutate shared crossbar
    // scratch (aggregation passes) and the shared allocators.
    for (std::size_t i = 0; i < raw.size(); ++i) {
      out.outputs[i] = raw[i]->batch_finish();
      out.outputs[i].stats.batched_queries = queries.size();
    }
  } catch (...) {
    // Any failure in the fused path — a member whose aggregate the engine
    // does not support, scratch exhaustion on an oversized batch — falls
    // back to executing every member solo, which reproduces each member's
    // own result or error without a batchmate in the blast radius.
    // Leftover shared-scratch garbage is harmless: programs initialize
    // their own columns, and solo run() resets wear.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      out.outputs[i] = QueryOutput{};
      out.errors[i] = nullptr;
      try {
        out.outputs[i] = solo(i);
        out.outputs[i].stats.batch_fallbacks = 1;
      } catch (...) {
        out.errors[i] = std::current_exception();
      }
    }
  }
  return out;
}

ScanOutput PimQueryEngine::execute_scan(
    const std::vector<sql::BoundPredicate>& filters,
    const std::vector<std::size_t>& attrs, const ExecOptions& opts) {
  // A filters-only query shell: the Execution ctor orders and analyzes the
  // predicates; no aggregation plan is ever built for a scan.
  sql::BoundQuery q;
  q.filters = filters;
  q.agg_func = sql::AggFunc::kCount;
  Execution exec(kind_, *store_, hcfg_, models_, q, opts);
  return exec.run_scan(attrs);
}

}  // namespace bbpim::engine
