// Host-side partitioned hash join over PIM scan survivors.
//
// The PIM store filters each table of a star query independently (bulk-
// bitwise WHERE, zone-map pruning); the host then joins the survivors:
// build a partitioned hash table per filtered dimension keyed by its join
// attributes, probe with the fact survivors in build order (most filtered
// dimension first, so misses drop rows out of the cascade early), and
// aggregate/group the joined rows with the exact semantics — and the exact
// final sort — of the single-table engine, so a normalized-schema query
// returns row-identical results to the same query on the pre-joined
// relation. Build and probe cost is modeled with the host CPU parameters
// (cpu_ns_per_record across `threads` workers), the same knobs the host-gb
// phase uses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "engine/query_exec.hpp"
#include "host/config.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::engine {

/// The attributes each table's scan must read back for `plan`: its join
/// keys plus the group/aggregate columns living on it. Sorted and deduped,
/// indexed like plan.table_names — the contract between the per-table
/// ScanOutput columns and JoinScanInput.
std::vector<std::vector<std::size_t>> join_scan_attrs(
    const sql::BoundJoin& plan);

/// One table's filtered survivors: columns[i] holds the codes of
/// join_scan_attrs(plan)[t][i], aligned across i (one entry per survivor).
struct JoinScanInput {
  std::vector<std::vector<std::uint64_t>> columns;

  std::size_t row_count() const {
    return columns.empty() ? 0 : columns.front().size();
  }
};

struct JoinStats {
  std::vector<std::size_t> build_rows;  ///< per build side, plan.builds order
  std::size_t probe_rows = 0;           ///< fact survivors entering the probe
  std::size_t joined_rows = 0;          ///< rows surviving every probe
  std::size_t partitions = 0;           ///< hash partitions per build side
  TimeNs build_ns = 0;
  TimeNs probe_ns = 0;
  TimeNs finalize_ns = 0;
};

struct JoinOutput {
  std::vector<ResultRow> rows;
  JoinStats stats;
};

/// Executes the join tree over per-table scan survivors (`scans` aligned
/// with plan.table_names). Duplicate build keys produce the full cross
/// product, matching SQL join semantics. `cancel` is checked per build side
/// and periodically inside the probe loop, so an expired or cancelled join
/// unwinds with the usual engine::QueryTimeout/QueryCancelled instead of
/// probing to completion.
JoinOutput hash_join_execute(const sql::BoundJoin& plan,
                             const std::vector<JoinScanInput>& scans,
                             const host::HostConfig& hcfg,
                             const CancelToken& cancel = {});

}  // namespace bbpim::engine
