#include "engine/groupby.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbpim::engine {

void sort_candidates(std::vector<GroupCandidate>& candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const GroupCandidate& a, const GroupCandidate& b) {
              if (a.est_mass != b.est_mass) return a.est_mass > b.est_mass;
              if (a.sampled != b.sampled) return a.sampled;
              return a.key < b.key;
            });
}

GroupByPlan choose_k(const LatencyModels& models, const GroupByPlanInput& in) {
  if (!models.fitted()) {
    throw std::logic_error("choose_k: latency models not fitted");
  }
  const std::size_t kmax = in.candidates.size();
  const TimeNs t_pim_one = models.pim_gb_ns(in.pages, in.n);

  GroupByPlan plan;
  plan.t_of_k.reserve(kmax + 1);
  double cum_mass = 0.0;
  TimeNs best = -1.0;
  for (std::size_t k = 0; k <= kmax; ++k) {
    if (k > 0) cum_mass += in.candidates[k - 1].est_mass;
    const double r = in.selectivity_est * std::max(0.0, 1.0 - cum_mass);
    const bool pure_pim = in.candidates_complete && k == kmax;
    const TimeNs t = static_cast<double>(k) * t_pim_one +
                     (pure_pim ? 0.0 : models.host_gb_ns(in.pages, in.s, r));
    plan.t_of_k.push_back(t);
    if (best < 0 || t < best) {
      best = t;
      plan.k = k;
      plan.predicted_ns = t;
    }
  }
  return plan;
}

}  // namespace bbpim::engine
