// Cooperative cancellation and per-query deadlines.
//
// A CancelToken is a shared handle to one query's abort state: the service
// (or any caller) arms a wall-clock deadline and/or flips the cancelled
// flag, and the execution paths check the token at phase boundaries and
// page-loop entries — the points where unwinding is safe and prompt. A
// query never observes a torn state: cancellation only ever takes effect
// between simulator phases, so a cancelled execution either completed a
// phase entirely or never started it.
//
// The empty token is the common case and is free: every check is one null
// test. Deadline checks read the monotonic clock, which is why they live at
// phase granularity rather than inside the per-page kernels.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace bbpim::engine {

/// Base of the cooperative-abort taxonomy: a query that unwound because the
/// caller no longer wants the answer (deadline or explicit cancel), not
/// because anything about the query or the store is wrong.
class QueryAborted : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The query's wall-clock deadline expired before it finished.
class QueryTimeout : public QueryAborted {
 public:
  QueryTimeout() : QueryAborted("query deadline exceeded") {}
  explicit QueryTimeout(const std::string& what) : QueryAborted(what) {}
};

/// The query was explicitly cancelled through its CancelToken.
class QueryCancelled : public QueryAborted {
 public:
  QueryCancelled() : QueryAborted("query cancelled") {}
  explicit QueryCancelled(const std::string& what) : QueryAborted(what) {}
};

/// Shared abort state of one statement. Thread-safe: the submitter (or the
/// service) writes, the executing worker reads.
class CancelState {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Arms (or moves) the wall-clock deadline; epoch-zero clears it.
  void set_deadline(std::chrono::steady_clock::time_point tp) noexcept {
    deadline_ns_.store(tp.time_since_epoch().count(),
                       std::memory_order_release);
  }
  bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }
  bool expired() const noexcept {
    const auto d = deadline_ns_.load(std::memory_order_acquire);
    return d != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= d;
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// steady_clock ticks since epoch; 0 = no deadline.
  std::atomic<std::chrono::steady_clock::rep> deadline_ns_{0};
};

/// Value-type handle threaded through ExecOptions. Default-constructed
/// tokens have no state and every check is a no-op, which is what keeps
/// deadline-free serving byte-identical to the pre-cancellation engine.
struct CancelToken {
  std::shared_ptr<CancelState> state;

  bool valid() const noexcept { return state != nullptr; }

  /// True when the query should unwind at the next safe point.
  bool should_stop() const noexcept {
    return state != nullptr && (state->cancelled() || state->expired());
  }

  /// The cooperative checkpoint: throws QueryCancelled / QueryTimeout.
  /// Cancellation wins over expiry when both apply (the caller asked first).
  void check() const {
    if (state == nullptr) return;
    if (state->cancelled()) throw QueryCancelled();
    if (state->expired()) throw QueryTimeout();
  }
};

inline CancelToken make_cancel_token() {
  return CancelToken{std::make_shared<CancelState>()};
}

}  // namespace bbpim::engine
