// Automatic vertical partitioning (Section III).
//
// When a pre-joined record exceeds one crossbar row, the relation must be
// split into attribute groups stored on aligned page sets — and Section III
// notes the partition "should locate the commonly used attributes together
// in a single crossbar, preventing intermediate result transfers in the
// common case". This planner does exactly that: a greedy first-fit that
// places workload-hot attributes into the primary part first, keeps scratch
// headroom for filter programs and aggregation results, and falls back to
// width-descending packing for the rest.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "pim/config.hpp"
#include "relational/schema.hpp"

namespace bbpim::engine {

struct PartitionPlan {
  /// Part index per schema attribute.
  std::vector<int> part_of;
  int parts = 1;
  /// Data bits used per part (excluding validity and scratch).
  std::vector<std::uint32_t> bits_used;

  /// Adapter for PimStore::Options::part_of.
  std::function<int(const std::string&)> to_part_function(
      const rel::Schema& schema) const;
};

/// Plans a vertical partition of `schema` into as few parts as possible.
///
/// `hot_attrs` (optional, in priority order) are packed into part 0 first —
/// typically the attributes the workload filters and aggregates, so the
/// common case avoids inter-part transfers. `scratch_reserve` columns per
/// crossbar row are kept free for query scratch (filter temporaries,
/// aggregation results). Throws when any single attribute cannot fit.
PartitionPlan plan_vertical_partition(const rel::Schema& schema,
                                      const pim::PimConfig& cfg,
                                      std::span<const std::size_t> hot_attrs = {},
                                      std::uint32_t scratch_reserve = 96);

}  // namespace bbpim::engine
