// EXPLAIN: human-readable physical plans and micro-program disassembly.
//
// `explain_query` renders what the executor will do for a bound query on a
// given store — which predicates compile to which part, the micro-program
// cycle budget per phase, the aggregation passes (including the product
// decomposition), and the model parameters (n, s) fed to the GROUP-BY
// planner. `disassemble` prints a MicroProgram cycle by cycle. Both exist
// for the same reason EXPLAIN exists in databases: trusting a 2000-cycle
// NOR program requires being able to read it.
#pragma once

#include <iosfwd>
#include <string>

#include "engine/pim_store.hpp"
#include "pim/microop.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::engine {

/// One micro-op per line: "0003 NOR  c041 c120 -> c200".
void disassemble(const pim::MicroProgram& prog, std::ostream& os);

/// Renders the physical plan for `q` on `store`.
void explain_query(const sql::BoundQuery& q, const PimStore& store,
                   std::ostream& os);

/// Convenience: explain to a string.
std::string explain_query(const sql::BoundQuery& q, const PimStore& store);

/// Renders a filter-only scan (the per-table half of a join plan): compiled
/// predicate order with estimated selectivities plus the zone-map summary,
/// exactly as explain_query prints them.
void explain_scan(const std::vector<sql::BoundPredicate>& filters,
                  const PimStore& store, std::ostream& os);
std::string explain_scan(const std::vector<sql::BoundPredicate>& filters,
                         const PimStore& store);

/// Renders the logical join tree of a bound multi-table query: build sides
/// in probe order with their keys, the probe (fact) side, and the
/// grouping/aggregation over joined rows. `tables` is the catalog tables
/// aligned with plan.table_names (attribute names come from their schemas).
void explain_join_tree(const sql::BoundJoin& plan,
                       const std::vector<const rel::Table*>& tables,
                       std::ostream& os);

}  // namespace bbpim::engine
