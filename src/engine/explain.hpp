// EXPLAIN: human-readable physical plans and micro-program disassembly.
//
// `explain_query` renders what the executor will do for a bound query on a
// given store — which predicates compile to which part, the micro-program
// cycle budget per phase, the aggregation passes (including the product
// decomposition), and the model parameters (n, s) fed to the GROUP-BY
// planner. `disassemble` prints a MicroProgram cycle by cycle. Both exist
// for the same reason EXPLAIN exists in databases: trusting a 2000-cycle
// NOR program requires being able to read it.
#pragma once

#include <iosfwd>
#include <string>

#include "engine/pim_store.hpp"
#include "pim/microop.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::engine {

/// One micro-op per line: "0003 NOR  c041 c120 -> c200".
void disassemble(const pim::MicroProgram& prog, std::ostream& os);

/// Renders the physical plan for `q` on `store`.
void explain_query(const sql::BoundQuery& q, const PimStore& store,
                   std::ostream& os);

/// Convenience: explain to a string.
std::string explain_query(const sql::BoundQuery& q, const PimStore& store);

}  // namespace bbpim::engine
