#include "engine/layout.hpp"

#include <stdexcept>

namespace bbpim::engine {

RecordLayout RecordLayout::build(const rel::Schema& schema,
                                 std::span<const std::size_t> attrs,
                                 const pim::PimConfig& cfg) {
  RecordLayout l;
  l.pos_.assign(schema.attribute_count(), -1);
  std::uint32_t offset = 0;
  for (const std::size_t a : attrs) {
    const rel::Attribute& attr = schema.attribute(a);
    l.pos_.at(a) = static_cast<std::int32_t>(l.attrs_.size());
    l.attrs_.push_back(a);
    l.fields_.push_back(pim::Field{static_cast<std::uint16_t>(offset),
                                   static_cast<std::uint16_t>(attr.bits)});
    offset += attr.bits;
  }
  l.valid_col_ = static_cast<std::uint16_t>(offset);
  offset += 1;
  if (offset > cfg.crossbar_cols) {
    throw std::runtime_error(
        "RecordLayout: record exceeds crossbar row (" + std::to_string(offset) +
        " > " + std::to_string(cfg.crossbar_cols) +
        " bits); vertical partitioning required");
  }
  l.scratch_begin_ = static_cast<std::uint16_t>(offset);
  l.total_cols_ = static_cast<std::uint16_t>(cfg.crossbar_cols);
  // A usable layout needs scratch room for filter temporaries; 16 columns is
  // the practical floor (predicate chains hold ~6 temporaries plus results).
  if (l.scratch_cols() < 16) {
    throw std::runtime_error("RecordLayout: fewer than 16 scratch columns");
  }
  return l;
}

bool RecordLayout::has(std::size_t attr) const {
  return attr < pos_.size() && pos_[attr] >= 0;
}

pim::Field RecordLayout::field(std::size_t attr) const {
  if (attr >= pos_.size() || pos_[attr] < 0) {
    throw std::out_of_range("RecordLayout::field: attribute not in this part");
  }
  return fields_[static_cast<std::size_t>(pos_[attr])];
}

}  // namespace bbpim::engine
