// Immutable store snapshots: the engine half of MVCC serving.
//
// A StoreSnapshot is one published version of a PIM-resident relation: the
// reference-counted data segments of every crossbar (see Crossbar's
// copy-on-write split), a settled copy of the zone-map sketches, and the
// derived statistics (distinct values, functional dependencies,
// co-occurrence maps) the GROUP-BY planner consults. Snapshots are
// immutable once published: an UPDATE builds the next version by detaching
// only the crossbar segments it actually rewrites (value-aware CoW), so
// untouched crossbars — and their sketches and statistics — are shared
// between consecutive versions at shared_ptr cost.
//
// Readers pin a snapshot by holding its shared_ptr; that reference IS the
// epoch. A retired version is reclaimed the moment its last pinned reader
// drains (shared_ptr deferred destruction), which the owning manager
// observes through a live-snapshot counter. Readers therefore never block
// writers, and writers never block already-pinned readers.
//
// The db-layer counterpart (db/snapshot_manager) owns the mutable builder
// store, decides when to publish, and hands snapshots to executors.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/zone_map.hpp"
#include "pim/crossbar.hpp"

namespace bbpim::rel {
class Table;
}

namespace bbpim::engine {

class PimStore;
class FilterCache;

/// Derived statistics of one snapshot: the lazily-computed, internally
/// synchronized counterpart of the builder PimStore's distinct/FD/
/// co-occurrence caches. Carried forward across versions — an UPDATE to one
/// attribute invalidates only the entries involving that attribute, so a
/// planner-warmed cache survives unrelated writes.
///
/// Lazy computation reads current values through a `reader` view store (the
/// caller's PimStore over this snapshot): the crossbars for attributes that
/// have diverged from the backing table, the cheaper table column otherwise.
/// All accessors are safe to call from any number of reader threads.
class SnapshotStats {
 public:
  /// Seeds version-0 stats from the freshly loaded builder store (its
  /// load-time distinct stats are copied; FD/co-occurrence start empty and
  /// fill on demand).
  explicit SnapshotStats(const PimStore& builder);
  /// Carries `prev` forward across an UPDATE that touched `touched_attrs`:
  /// their distinct stats are marked stale and every FD/co-occurrence entry
  /// involving them is dropped; everything else is shared by copy.
  SnapshotStats(const SnapshotStats& prev,
                const std::vector<std::size_t>& touched_attrs);

  /// Mirrors PimStore::distinct_values. The returned reference is stable:
  /// entries settle exactly once and the slot vector never resizes.
  const std::optional<std::vector<std::uint64_t>>& distinct_values(
      std::size_t attr, const PimStore& reader) const;

  /// Mirrors PimStore::functional_dependency.
  const std::unordered_map<std::uint64_t, std::uint64_t>* functional_dependency(
      std::size_t attr_a, std::size_t attr_b, const PimStore& reader) const;

  /// Mirrors PimStore::co_occurrence.
  const std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>*
  co_occurrence(std::size_t attr_a, std::size_t attr_b,
                const PimStore& reader) const;

  /// True once the attribute's stored values diverged from the backing
  /// table column (cumulative across all versions up to this one).
  bool attr_mutated(std::size_t attr) const { return attr_mutated_.at(attr); }

 private:
  /// distinct_values body; caller holds mutex_.
  const std::optional<std::vector<std::uint64_t>>& distinct_locked(
      std::size_t attr, const PimStore& reader) const;
  /// Current value of (record, attr); caller holds mutex_.
  std::uint64_t value_locked(const PimStore& reader, std::size_t record,
                             std::size_t attr) const;

  const rel::Table* table_;
  std::size_t records_ = 0;
  std::size_t max_distinct_ = 0;
  std::vector<bool> attr_mutated_;

  mutable std::mutex mutex_;
  mutable std::vector<std::optional<std::vector<std::uint64_t>>> distinct_;
  mutable std::vector<bool> distinct_stale_;
  mutable std::map<
      std::pair<std::size_t, std::size_t>,
      std::optional<std::unordered_map<std::uint64_t, std::uint64_t>>>
      fd_cache_;
  mutable std::map<
      std::pair<std::size_t, std::size_t>,
      std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>>
      co_cache_;
};

/// One immutable published version of a PIM-resident relation.
class StoreSnapshot {
 public:
  /// `segments[part * pages_per_part + page][xb]` is that crossbar's data
  /// segment. `live_counter` (shared with the owning manager) is bumped
  /// here and dropped in the destructor, making reclamation observable.
  StoreSnapshot(std::uint64_t version,
                std::vector<std::vector<pim::CrossbarSegment>> segments,
                std::size_t pages_per_part,
                std::shared_ptr<const ZoneMaps> zones,
                std::shared_ptr<SnapshotStats> stats,
                FilterCache* filter_cache,
                std::shared_ptr<std::atomic<std::int64_t>> live_counter);
  ~StoreSnapshot();
  StoreSnapshot(const StoreSnapshot&) = delete;
  StoreSnapshot& operator=(const StoreSnapshot&) = delete;

  /// Position in the table's update log this snapshot reflects (log-prefix
  /// length, i.e. TableWrites::committed at publish time).
  std::uint64_t version() const { return version_; }

  std::size_t pages_per_part() const { return pages_per_part_; }
  const pim::CrossbarSegment& segment(int part, std::size_t page,
                                      std::uint32_t xb) const {
    return segments_.at(static_cast<std::size_t>(part) * pages_per_part_ +
                        page)[xb];
  }

  const ZoneMaps& zone_maps() const { return *zones_; }
  const SnapshotStats& stats() const { return *stats_; }
  /// The compiled-WHERE memo shared across every version of this table's
  /// store (programs depend on layout and predicates, not data; mutation
  /// invalidation is handled by the builder). Thread-safe by construction.
  FilterCache& filter_cache() const { return *filter_cache_; }
  /// Static page classifications memoized per snapshot version.
  /// Classification depends on the sketches, so unlike the filter cache the
  /// memo cannot outlive its data version — each snapshot owns its own,
  /// which dies (trivially correct invalidation) with the snapshot.
  ClassificationMemo& classification_memo() const { return class_memo_; }

 private:
  std::uint64_t version_;
  std::vector<std::vector<pim::CrossbarSegment>> segments_;
  std::size_t pages_per_part_;
  std::shared_ptr<const ZoneMaps> zones_;
  std::shared_ptr<SnapshotStats> stats_;
  FilterCache* filter_cache_;
  mutable ClassificationMemo class_memo_;
  std::shared_ptr<std::atomic<std::int64_t>> live_counter_;
};

/// Publishes the builder store's current contents as version `version`.
/// Capturing a crossbar's segment bumps its reference count, which is what
/// arms the builder's copy-on-write: its next functional change to that
/// crossbar detaches a private copy, leaving this snapshot untouched.
/// `prev` carries derived statistics forward (nullptr seeds from the
/// builder); `touched_attrs` lists the attributes updated since `prev`.
std::shared_ptr<const StoreSnapshot> freeze_snapshot(
    PimStore& builder, std::uint64_t version, const StoreSnapshot* prev,
    const std::vector<std::size_t>& touched_attrs,
    std::shared_ptr<std::atomic<std::int64_t>> live_counter);

}  // namespace bbpim::engine
