// Deterministic fault injection for the serving and execution paths.
//
// Production code is sprinkled with named seams — fault_point(FaultSeam::X)
// calls at the places real deployments fail: binding a plan, pinning a
// snapshot, visiting a crossbar, committing an update, reading results
// back. With no injector installed a seam is one relaxed atomic load, so
// the shipping binary pays nothing. Tests install a seeded FaultInjector
// and arm per-seam rules that fire on the N-th traversal (optionally every
// K traversals after that), probabilistically from a seeded RNG, or merely
// stall the seam to simulate a slow device — so every retry, fallback, and
// shed path in db::QueryService is exercised by construction, not luck.
//
// Faults are typed by recoverability: InjectedFault derives from
// TransientFault (the retry-classified base the service's backoff loop
// catches); InjectedFatalFault does not, and must surface to the caller on
// the first throw.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"

namespace bbpim::engine {

/// The named injection seams. Order is the array index; keep
/// fault_seam_name in sync.
enum class FaultSeam : std::size_t {
  kPlanBind = 0,     ///< Session::build_plan (parse/bind front end)
  kSnapshotPin,      ///< SnapshotManager::acquire (reader pin / re-pin)
  kCrossbarVisit,    ///< filter-phase crossbar visits (solo and fused)
  kUpdateCommit,     ///< SnapshotManager::apply_update (writer commit)
  kReadback,         ///< result/column readback into the host
};
inline constexpr std::size_t kFaultSeamCount = 5;

const char* fault_seam_name(FaultSeam seam);

/// Base of everything the service's retry loop may transparently re-run:
/// the failed attempt provably left no partial state behind (every seam
/// sits before its operation mutates anything shared).
class TransientFault : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A transient injected fault (retry-classified).
class InjectedFault : public TransientFault {
  using TransientFault::TransientFault;
};

/// A non-retryable injected fault: surfaces on the first throw.
class InjectedFatalFault : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// When and how one seam misbehaves. All triggers compose: a rule may both
/// stall (always) and fire (when its counters/probability say so).
struct FaultRule {
  /// Fire on the nth traversal of the seam (1-based); 0 disables counting.
  std::uint64_t nth = 0;
  /// After `nth` fired, fire again every `every` traversals (0 = once).
  std::uint64_t every = 0;
  /// Independent per-traversal firing probability from the injector's
  /// seeded RNG (deterministic draw sequence per seam).
  double probability = 0.0;
  /// Classification of the thrown fault: transient (InjectedFault, the
  /// retry loop eats it) or fatal (InjectedFatalFault, surfaces at once).
  bool transient = true;
  /// Sleep this long on EVERY traversal, firing or not — a slow-device
  /// model the overload tests use to build queues deterministically.
  std::uint64_t stall_us = 0;
};

/// Seeded per-process injector. arm()/disarm() are test-setup operations;
/// traverse() is called concurrently from workers and is thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x5eedf417ULL);

  void arm(FaultSeam seam, FaultRule rule);
  void disarm(FaultSeam seam);

  /// Times the seam was crossed / times it threw, since construction.
  std::uint64_t traversals(FaultSeam seam) const;
  std::uint64_t fired(FaultSeam seam) const;

  /// Called by fault_point: counts the traversal, applies the stall, and
  /// throws the configured fault when the rule says this crossing fails.
  void traverse(FaultSeam seam);

 private:
  struct SeamState {
    mutable std::mutex mutex;  ///< guards rule + rng (counters are atomic)
    FaultRule rule;
    bbpim::Rng rng{0};
    std::atomic<std::uint64_t> traversals{0};
    std::atomic<std::uint64_t> fired{0};
  };
  std::array<SeamState, kFaultSeamCount> seams_;
};

namespace detail {
extern std::atomic<FaultInjector*> g_fault_injector;
}

/// The seam itself: free when no injector is installed.
inline void fault_point(FaultSeam seam) {
  FaultInjector* fi = detail::g_fault_injector.load(std::memory_order_acquire);
  if (fi != nullptr) fi->traverse(seam);
}

/// RAII install/uninstall of the process-wide injector. Tests scope one of
/// these around the traffic they want to disturb; nesting restores the
/// previous injector on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector& injector);
  ~ScopedFaultInjection();
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace bbpim::engine
