// Pre-joined relations (Section III).
//
// JOIN needs data-dependent movement that bulk-bitwise PIM cannot do, so the
// engine stores the equi-join of the fact relation with its dimension
// relations. Because dimension keys are unique, the join is one-to-one from
// the fact side: the output has exactly the fact's row count, and the added
// dimension attributes fit the crossbar row space the fact relation was
// underusing — no extra memory in the common case.
//
// The UPDATE drawback of pre-joining (a dimension value duplicated into many
// fact rows) is mitigated with Algorithm 1: filter the rows holding the old
// value with PIM, then MUX-write the new value under that select bit —
// no host reads at all.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "engine/pim_store.hpp"
#include "host/config.hpp"
#include "relational/table.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::engine {

/// One dimension to fold into the fact relation.
struct DimensionSpec {
  const rel::Table* dim = nullptr;
  std::string fact_fk;   ///< fact attribute holding the dimension key
  std::string dim_key;   ///< unique key attribute of the dimension
  /// Dimension attributes left out of the pre-join (the paper drops the
  /// long NAME/ADDRESS texts of CUSTOMER and SUPPLIER).
  std::vector<std::string> exclude;
};

/// Equi-joins the fact relation with every dimension on its key.
/// The output keeps all fact attributes (including the foreign keys) and
/// appends each dimension's attributes except its key and the excluded ones.
/// Throws when a foreign key has no match (SSB guarantees referential
/// integrity).
rel::Table prejoin(const rel::Table& fact, std::span<const DimensionSpec> dims,
                   std::string name = "prejoined");

/// Statistics of one PIM UPDATE (Algorithm 1). Energy, peak power, and
/// wear account with the same trackers the query path uses, so the HTAP
/// benches can put reads and writes on one axis.
struct UpdateStats {
  TimeNs total_ns = 0;
  EnergyJ energy_j = 0;
  EnergyJ energy_logic_j = 0;
  EnergyJ energy_write_j = 0;
  EnergyJ energy_controller_j = 0;
  PowerW peak_chip_w = 0;             ///< peak power of one PIM chip
  std::uint64_t wear_row_writes = 0;  ///< worst per-row write cycles
  std::size_t cycles = 0;          ///< bulk-bitwise cycles executed per page
  std::size_t updated_records = 0;
  std::size_t host_lines_read = 0; ///< always 0 — the point of Algorithm 1

  /// What the same update would cost without PIM: read the filter result,
  /// then read-modify-write each matching record through the host.
  TimeNs host_path_estimate_ns = 0;
};

/// UPDATE <store> SET attr = value WHERE <where> executed entirely in PIM:
/// a filter program computes the select bit, then the MUX of Algorithm 1
/// overwrites the attribute only where selected. The predicates and the
/// updated attribute must live in the same part.
///
/// The new value is validated through the attribute's encoding: a
/// dictionary-encoded attribute rejects codes outside the dictionary even
/// when they fit the field's raw bit width (such a write would produce
/// records no decode can read), and integer attributes reject values beyond
/// the packed width.
///
/// Mutation protocol: the caller must hold the store's mutation lock
/// (PimStore::lock_mutation; asserted in debug builds). On a successful
/// update that changed at least one record, the store's cached derivations
/// are refreshed via PimStore::note_mutation. The db facade routes every
/// SQL UPDATE through the Database-level writer gate, which additionally
/// excludes in-flight reads on the same table.
UpdateStats pim_update(PimStore& store, const host::HostConfig& hcfg,
                       const std::vector<sql::BoundPredicate>& where,
                       std::size_t attr, std::uint64_t new_value);

}  // namespace bbpim::engine
