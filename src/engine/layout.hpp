// Record layout: packing a relation's record into a crossbar row.
//
// Attributes are bit-packed back to back from column 0 (Section II-B: "each
// record is set as a single crossbar row, attributes aligned on crossbar
// columns"). One extra validity bit marks real records — the last page of a
// relation is rarely full, and padding rows must fail every filter. The
// remaining columns form the scratch region used by filter programs,
// aggregation results, and Algorithm 1 updates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pim/config.hpp"
#include "pim/microcode.hpp"
#include "relational/schema.hpp"

namespace bbpim::engine {

class RecordLayout {
 public:
  /// Lays out the given schema attributes (a subset for vertical
  /// partitioning). Throws std::runtime_error when the record exceeds the
  /// crossbar row — the caller must partition vertically (Section III).
  static RecordLayout build(const rel::Schema& schema,
                            std::span<const std::size_t> attrs,
                            const pim::PimConfig& cfg);

  bool has(std::size_t attr) const;
  /// Field of an attribute; throws std::out_of_range when not placed here.
  pim::Field field(std::size_t attr) const;

  std::uint16_t valid_col() const { return valid_col_; }
  std::uint16_t scratch_begin() const { return scratch_begin_; }
  std::uint16_t total_cols() const { return total_cols_; }
  std::uint16_t scratch_cols() const {
    return static_cast<std::uint16_t>(total_cols_ - scratch_begin_);
  }
  const std::vector<std::size_t>& attrs() const { return attrs_; }

  /// Fresh scratch allocator over [scratch_begin, total_cols).
  pim::ColumnAlloc make_alloc() const {
    return pim::ColumnAlloc(scratch_begin_, total_cols_);
  }

 private:
  std::vector<std::size_t> attrs_;            // placed attribute indices
  std::vector<pim::Field> fields_;            // parallel to attrs_
  /// attr -> index into fields_, -1 when absent: has()/field() are O(1) —
  /// they sit on the per-record host read path (host-gb, sampling).
  std::vector<std::int32_t> pos_;
  std::uint16_t valid_col_ = 0;
  std::uint16_t scratch_begin_ = 0;
  std::uint16_t total_cols_ = 0;
};

}  // namespace bbpim::engine
