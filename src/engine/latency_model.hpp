// Empirical latency models of Section IV (Equations 1-3).
//
// The hybrid GROUP-BY needs to predict, for a candidate split of subgroups,
// (a) T_host-gb(M, s, r): the host-side path — reading the filter result
//     bit-vector plus s 16-bit chunks of each selected record (ratio r of
//     the relation) — modeled as M * (a(s)*sqrt(r) + b(s));
// (b) T_pim-gb(M, n): the PIM-side cost of aggregating ONE subgroup whose
//     value field spans n 16-bit reads — modeled as slope(n)*M + const(n).
// a, b, slope, const are lookup tables over the (few, discrete) values of s
// and n, obtained by measuring the simulator on synthetic relations
// (model_fitter.hpp), exactly as the paper fits its Fig. 4.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string_view>

#include "common/fit.hpp"
#include "common/units.hpp"

namespace bbpim::engine {

/// Which engine variant a model (or executor) describes.
enum class EngineKind : std::uint8_t {
  kOneXb,  ///< pre-joined record in a single crossbar row + agg circuit
  kTwoXb,  ///< vertical partitioning across two aligned pages + agg circuit
  kPimdb,  ///< single row, aggregation via pure bulk-bitwise logic [1]
};

/// Every engine variant, in paper order — the canonical iteration set for
/// benches and tests ("for each engine kind ...").
inline constexpr EngineKind kAllEngineKinds[] = {
    EngineKind::kOneXb, EngineKind::kTwoXb, EngineKind::kPimdb};

const char* engine_kind_name(EngineKind kind);

/// Inverse of engine_kind_name; nullopt for unknown names.
std::optional<EngineKind> parse_engine_kind(std::string_view name);

struct LatencyModels {
  /// Per s: slope of T_host-gb in M as a function of r (Equation 1).
  std::map<std::uint32_t, SqrtFit> host_slope;
  /// Per n: T_pim-gb as a function of M (Equation 2).
  std::map<std::uint32_t, LinearFit> pim_gb;

  bool fitted() const { return !host_slope.empty() && !pim_gb.empty(); }

  /// Equation 1: T_host-gb(M, s, r) in ns. `s` snaps to the nearest fitted
  /// lookup entry (s is discrete; queries may fall between grid points).
  TimeNs host_gb_ns(double pages, std::uint32_t s, double r) const;

  /// Equation 2: per-subgroup T_pim-gb(M, n) in ns.
  TimeNs pim_gb_ns(double pages, std::uint32_t n) const;

  /// Plain-text (de)serialization so benches can cache a fitting campaign.
  /// A non-zero `fingerprint` (config_fingerprint of the pim/host/fit
  /// configuration the models were fitted under) is written as a header
  /// record so readers can reject models fitted under other configurations.
  void save(std::ostream& os, std::uint64_t fingerprint = 0) const;
  /// Throws std::runtime_error on malformed input. When `fingerprint` is
  /// non-null it receives the file's fingerprint header (0 if absent — the
  /// pre-fingerprint format).
  static LatencyModels load(std::istream& is,
                            std::uint64_t* fingerprint = nullptr);
};

}  // namespace bbpim::engine
