#include "pimdb/bitserial.hpp"

#include <bit>
#include <stdexcept>

namespace bbpim::pimdb {
namespace {

// Matches the measured costs of the NOR-only builders in pim/microcode.cpp
// (each gate is an INIT cycle plus a NOR/NOT cycle).
constexpr std::uint64_t kCyclesPerAdderBit = 38;   // XNOR+XNOR+MAJ+store
constexpr std::uint64_t kCyclesPerCopyBit = 4;     // two NOTs
constexpr std::uint64_t kCyclesPerCompareBit = 12; // lt scan step
constexpr std::uint64_t kCyclesPerMuxBit = 10;     // select via Alg.1 gates

}  // namespace

std::vector<std::uint64_t> bitserial_agg_phases(std::uint32_t value_bits,
                                                std::uint32_t rows,
                                                pim::AggOp op) {
  if (value_bits == 0 || value_bits > 64) {
    throw std::invalid_argument("bitserial_agg_phases: bad width");
  }
  if (rows < 2 || (rows & (rows - 1)) != 0) {
    throw std::invalid_argument(
        "bitserial_agg_phases: rows must be a power of two");
  }
  const std::uint32_t levels =
      static_cast<std::uint32_t>(std::countr_zero(rows));
  std::vector<std::uint64_t> phases;
  phases.reserve(levels + 1);
  // The selected-value mask is applied once: value AND select per bit.
  phases.push_back(static_cast<std::uint64_t>(value_bits) * 6);
  for (std::uint32_t l = 0; l < levels; ++l) {
    // Width of the partial results entering level l.
    const std::uint64_t w =
        op == pim::AggOp::kSum ? value_bits + l : value_bits;
    // Align operand rows (copy one operand next to the other), then combine.
    std::uint64_t cycles = w * kCyclesPerCopyBit;
    if (op == pim::AggOp::kSum) {
      cycles += (w + 1) * kCyclesPerAdderBit;
    } else {
      cycles += w * kCyclesPerCompareBit + w * kCyclesPerMuxBit;
    }
    phases.push_back(cycles);
  }
  return phases;
}

std::uint64_t bitserial_agg_cycles(std::uint32_t value_bits,
                                   std::uint32_t rows, pim::AggOp op) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : bitserial_agg_phases(value_bits, rows, op)) {
    total += c;
  }
  return total;
}

double bitserial_agg_duration_ns(std::uint32_t value_bits, std::uint32_t rows,
                                 pim::AggOp op, const pim::PimConfig& cfg) {
  return static_cast<double>(bitserial_agg_cycles(value_bits, rows, op)) *
         cfg.logic_cycle_ns;
}

}  // namespace bbpim::pimdb
