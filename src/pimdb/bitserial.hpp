// PIMDB-style pure bulk-bitwise aggregation: the baseline the paper beats.
//
// PIMDB [1] aggregates without any peripheral ALU: the selected values are
// reduced inside the crossbar with a binary tree of row-aligned additions,
// every addition built from MAGIC NOR full adders (plus the row copies that
// align operands between tree levels). That costs thousands of 30 ns logic
// cycles — and every cycle drives a full output column, so it also burns
// energy and endurance. This module prices that sequence; the paper's
// aggregation circuit (src/pim/agg_circuit) replaces it with serial reads.
//
// Cycle constants mirror the column-parallel builders of pim/microcode.cpp:
// a full adder costs ~38 cycles/bit there (init+gate pairs), a copy 4.
#pragma once

#include <cstdint>
#include <vector>

#include "pim/agg_circuit.hpp"
#include "pim/config.hpp"

namespace bbpim::pimdb {

/// Cycle cost of one in-crossbar reduction over `rows` values of
/// `value_bits` width. SUM grows one bit per tree level; MIN/MAX compare and
/// select at constant width.
std::uint64_t bitserial_agg_cycles(std::uint32_t value_bits,
                                   std::uint32_t rows, pim::AggOp op);

/// Per-request cycle counts of the same reduction: the select-mask pass
/// followed by one entry per tree level. Each entry is a separate PIM macro
/// request — the level l+1 operands are level l outputs, and the PIM
/// controller's broadcast sequencer only covers one row-aligned step, so
/// the host must issue (and fence) every level. This per-level issue cost
/// is what makes PIMDB's aggregation unattractive to the planner on most
/// GROUP-BY queries (Table II's pimdb column).
std::vector<std::uint64_t> bitserial_agg_phases(std::uint32_t value_bits,
                                                std::uint32_t rows,
                                                pim::AggOp op);

/// Convenience: duration of the reduction on one page (all crossbars run the
/// broadcast sequence concurrently).
double bitserial_agg_duration_ns(std::uint32_t value_bits, std::uint32_t rows,
                                 pim::AggOp op, const pim::PimConfig& cfg);

}  // namespace bbpim::pimdb
