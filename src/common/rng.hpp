// Deterministic pseudo-random number generation.
//
// Every stochastic component of the repository (data generation, sampling)
// uses this generator so that benchmark tables are bit-for-bit reproducible
// across runs and machines. The engine itself is deterministic.
#pragma once

#include <cstdint>

namespace bbpim {

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Used directly and
/// to seed derived streams. Reference: Steele, Lea, Flood (OOPSLA'14).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64 * bound
    // which is negligible for simulation purposes.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Derives an independent stream for a labeled sub-component.
  Rng fork(std::uint64_t stream_id) {
    Rng child(state_ ^ (0xa0761d6478bd642fULL * (stream_id + 1)));
    child.next_u64();
    return child;
  }

 private:
  std::uint64_t state_;
};

}  // namespace bbpim
