// Least-squares curve fitting for the empirical latency models of Section IV.
//
// The paper fits T_host-gb slopes to a(s)*sqrt(r) + b(s) and T_pim-gb to a
// straight line in the page count M. Both are linear least squares in the
// coefficients, solved in closed form.
#pragma once

#include <cstddef>
#include <span>

namespace bbpim {

/// Result of fitting y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination (1 = perfect fit).
  double r2 = 0.0;

  double eval(double x) const { return slope * x + intercept; }
};

/// Fits y = slope*x + intercept by ordinary least squares.
/// Requires xs.size() == ys.size() >= 2.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Result of fitting y = a * sqrt(x) + b.
struct SqrtFit {
  double a = 0.0;
  double b = 0.0;
  double r2 = 0.0;

  double eval(double x) const;
};

/// Fits y = a*sqrt(x) + b (linear least squares in the basis {sqrt(x), 1}).
/// Requires xs.size() == ys.size() >= 2 and xs[i] >= 0.
SqrtFit fit_sqrt(std::span<const double> xs, std::span<const double> ys);

}  // namespace bbpim
