#include "common/fit.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace bbpim {
namespace {

double r_squared(std::span<const double> ys, std::span<const double> fitted) {
  double mean = 0.0;
  for (double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());
  double ss_tot = 0.0, ss_res = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    ss_tot += (ys[i] - mean) * (ys[i] - mean);
    ss_res += (ys[i] - fitted[i]) * (ys[i] - fitted[i]);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_linear: need >= 2 matched points");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double det = n * sxx - sx * sx;
  LinearFit f;
  if (det == 0.0) {
    // Degenerate: all x equal; fall back to constant fit.
    f.slope = 0.0;
    f.intercept = sy / n;
  } else {
    f.slope = (n * sxy - sx * sy) / det;
    f.intercept = (sy - f.slope * sx) / n;
  }
  std::vector<double> fitted(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) fitted[i] = f.eval(xs[i]);
  f.r2 = r_squared(ys, fitted);
  return f;
}

double SqrtFit::eval(double x) const { return a * std::sqrt(x) + b; }

SqrtFit fit_sqrt(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_sqrt: need >= 2 matched points");
  }
  std::vector<double> roots(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] < 0.0) throw std::invalid_argument("fit_sqrt: negative x");
    roots[i] = std::sqrt(xs[i]);
  }
  const LinearFit lin = fit_linear(roots, ys);
  SqrtFit f;
  f.a = lin.slope;
  f.b = lin.intercept;
  std::vector<double> fitted(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) fitted[i] = f.eval(xs[i]);
  f.r2 = r_squared(ys, fitted);
  return f;
}

}  // namespace bbpim
