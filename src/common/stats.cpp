#include "common/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace bbpim {

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty input");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("geomean: empty input");
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean: non-positive value");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double geomean_ratio(std::span<const double> numer,
                     std::span<const double> denom) {
  if (numer.size() != denom.size() || numer.empty()) {
    throw std::invalid_argument("geomean_ratio: size mismatch");
  }
  double log_sum = 0.0;
  for (std::size_t i = 0; i < numer.size(); ++i) {
    if (numer[i] <= 0.0 || denom[i] <= 0.0) {
      throw std::invalid_argument("geomean_ratio: non-positive value");
    }
    log_sum += std::log(numer[i] / denom[i]);
  }
  return std::exp(log_sum / static_cast<double>(numer.size()));
}

}  // namespace bbpim
