#include "common/bitvec.hpp"

#include <bit>
#include <stdexcept>

namespace bbpim {

BitVec::BitVec(std::size_t nbits, bool value)
    : nbits_(nbits),
      words_((nbits + 63) / 64, value ? ~0ULL : 0ULL) {
  clear_tail();
}

void BitVec::clear_tail() {
  const std::size_t tail = nbits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  if (other.nbits_ != nbits_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  if (other.nbits_ != nbits_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  if (other.nbits_ != nbits_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

void BitVec::flip() {
  for (std::uint64_t& w : words_) w = ~w;
  clear_tail();
}

bool BitVec::operator==(const BitVec& other) const {
  return nbits_ == other.nbits_ && words_ == other.words_;
}

std::size_t BitVec::find_next(std::size_t from) const {
  if (from >= nbits_) return nbits_;
  std::size_t wi = from >> 6;
  std::uint64_t w = words_[wi] & (~0ULL << (from & 63));
  while (true) {
    if (w != 0) {
      const std::size_t bit = (wi << 6) +
          static_cast<std::size_t>(std::countr_zero(w));
      return bit < nbits_ ? bit : nbits_;
    }
    if (++wi == words_.size()) return nbits_;
    w = words_[wi];
  }
}

}  // namespace bbpim
