// Small statistics helpers used by the benchmark harnesses
// (geometric-mean speedups are how the paper reports all headline numbers).
#pragma once

#include <span>

namespace bbpim {

/// Arithmetic mean; requires a non-empty span.
double mean(std::span<const double> xs);

/// Geometric mean; requires a non-empty span of positive values.
double geomean(std::span<const double> xs);

/// Geometric-mean ratio of a/b element-wise (the paper's "geo-mean speedup").
/// Requires equal non-empty sizes and positive values.
double geomean_ratio(std::span<const double> numer,
                     std::span<const double> denom);

}  // namespace bbpim
