// Dynamic bit vector with word-level bulk operations.
//
// Used for host-side filter results (one bit per record) and as the reference
// implementation that PIM bit-column results are checked against in tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bbpim {

/// A fixed-size-after-construction vector of bits, packed into 64-bit words.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool value = false);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  /// Number of set bits.
  std::size_t popcount() const;

  /// In-place logical ops; operands must have equal size.
  BitVec& operator&=(const BitVec& other);
  BitVec& operator|=(const BitVec& other);
  BitVec& operator^=(const BitVec& other);
  /// Flips every bit (tail bits beyond size stay clear).
  void flip();

  bool operator==(const BitVec& other) const;

  /// Index of the first set bit at or after `from`, or size() if none.
  std::size_t find_next(std::size_t from) const;

  /// Direct word access for bulk transfer into/out of crossbars.
  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t>& words() { return words_; }

 private:
  void clear_tail();

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bbpim
