#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bbpim {

ZipfSampler::ZipfSampler(std::size_t n, double theta) : theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty domain");
  if (theta < 0.0) throw std::invalid_argument("ZipfSampler: negative theta");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = acc;
  }
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::mass(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::mass");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace bbpim
