#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bbpim {
namespace {

/// One parallel_for invocation: chunks are claimed with an atomic ticket so
/// any mix of pool workers and the calling thread can drain them.
struct Batch {
  Batch(const ChunkFn& f, std::size_t items, std::size_t chunk_count)
      : fn(&f), n(items), chunks(chunk_count) {}

  const ChunkFn* fn;
  std::size_t n;
  std::size_t chunks;
  std::atomic<std::size_t> next{0};

  std::mutex m;                 // guards done / error
  std::condition_variable done_cv;
  std::size_t done = 0;
  std::exception_ptr error;
};

/// Claims and runs chunks until the batch has none left to hand out.
void drain(Batch& b) {
  while (true) {
    const std::size_t c = b.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= b.chunks) return;
    std::exception_ptr err;
    try {
      const auto [begin, end] = chunk_bounds(b.n, b.chunks, c);
      (*b.fn)(c, begin, end);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(b.m);
    if (err && !b.error) b.error = err;
    if (++b.done == b.chunks) b.done_cv.notify_all();
  }
}

class WorkPool {
 public:
  explicit WorkPool(unsigned workers) {
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Leaked on purpose: workers park in a condition wait for the process
  /// lifetime, and tearing them down during static destruction would race
  /// exit-time code for no benefit.
  static WorkPool& instance() {
    static WorkPool* pool = new WorkPool(hardware_threads());
    return *pool;
  }

  void run(const std::shared_ptr<Batch>& batch) {
    {
      std::lock_guard<std::mutex> lock(m_);
      queue_.push_back(batch);
    }
    cv_.notify_all();
    drain(*batch);  // the caller always participates
    {
      std::unique_lock<std::mutex> lock(batch->m);
      batch->done_cv.wait(lock, [&] { return batch->done == batch->chunks; });
    }
    remove(batch.get());
    if (batch->error) std::rethrow_exception(batch->error);
  }

 private:
  void remove(const Batch* batch) {
    std::lock_guard<std::mutex> lock(m_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->get() == batch) {
        queue_.erase(it);
        return;
      }
    }
  }

  void worker_loop() {
    while (true) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [&] { return !queue_.empty(); });
        batch = queue_.front();
      }
      drain(*batch);
      remove(batch.get());
    }
  }

  std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  std::vector<std::thread> threads_;
};

}  // namespace

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;
}

unsigned resolve_threads(unsigned requested) {
  return requested == 0 ? hardware_threads() : requested;
}

std::size_t parallel_chunks(std::size_t n, unsigned threads) {
  if (n == 0) return 0;
  return std::min<std::size_t>(n, threads > 0 ? threads : 1);
}

std::pair<std::size_t, std::size_t> chunk_bounds(std::size_t n,
                                                 std::size_t chunks,
                                                 std::size_t chunk) {
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  const std::size_t begin = chunk * base + std::min(chunk, rem);
  return {begin, begin + base + (chunk < rem ? 1 : 0)};
}

void parallel_for(std::size_t n, unsigned threads, const ChunkFn& fn) {
  if (n == 0) return;
  const std::size_t chunks = parallel_chunks(n, threads);
  if (chunks <= 1) {
    fn(0, 0, n);
    return;
  }
  auto batch = std::make_shared<Batch>(fn, n, chunks);
  WorkPool::instance().run(batch);
}

}  // namespace bbpim
