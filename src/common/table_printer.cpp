#include "common/table_printer.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bbpim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: no columns");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("TablePrinter: too many cells in row");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 != row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TablePrinter::fmt_sci(double v, int precision) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace bbpim
