// Deterministic-chunking work pool for the simulator's page-parallel phases.
//
// The PIM model is embarrassingly parallel across pages — every crossbar of
// every page evolves independently between host synchronization points — so
// the engine splits its per-page loops into contiguous chunks and runs them
// on a shared pool of worker threads. Determinism is the design constraint:
// chunk boundaries depend only on (item count, thread budget), never on
// execution timing, and callers write into per-chunk or per-item slots and
// reduce in chunk order afterwards, so a parallel run is bit-identical to
// the serial one at any thread count.
//
// The pool is process-global and lazily created; the calling thread always
// participates (a 1-thread budget never touches the pool at all), and
// concurrent parallel_for calls from different threads (e.g. QueryService
// workers) interleave safely on the shared workers.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

namespace bbpim {

/// Hardware thread count as the runtime reports it; never less than 1.
unsigned hardware_threads();

/// Resolves a thread-budget knob: 0 means "all hardware threads".
unsigned resolve_threads(unsigned requested);

/// Number of chunks parallel_for uses for `n` items under `threads`:
/// min(threads, n), at least 1 for non-empty ranges.
std::size_t parallel_chunks(std::size_t n, unsigned threads);

/// [begin, end) of chunk `chunk` when [0, n) is split into `chunks`
/// contiguous chunks. Purely arithmetic: earlier chunks are one item larger
/// when n % chunks != 0.
std::pair<std::size_t, std::size_t> chunk_bounds(std::size_t n,
                                                 std::size_t chunks,
                                                 std::size_t chunk);

/// Chunk body: fn(chunk_index, begin, end) over the item range [begin, end).
using ChunkFn = std::function<void(std::size_t, std::size_t, std::size_t)>;

/// Runs `fn` over [0, n) split into parallel_chunks(n, threads) chunks.
/// threads <= 1 (or n <= 1) runs inline on the caller. Chunks may execute in
/// any order and interleaving; the first exception thrown by any chunk is
/// rethrown on the caller after every claimed chunk finished.
void parallel_for(std::size_t n, unsigned threads, const ChunkFn& fn);

}  // namespace bbpim
