// Console table rendering for the benchmark harnesses.
//
// Every bench binary prints the same rows/series the paper's table or figure
// reports; this helper keeps those tables aligned and diff-friendly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bbpim {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells throw.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header underline and two-space column gaps.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with the given precision (fixed notation).
  static std::string fmt(double v, int precision = 3);
  /// Formats a double in scientific notation (paper-style selectivities).
  static std::string fmt_sci(double v, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bbpim
