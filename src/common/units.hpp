// Physical units used throughout the simulator.
//
// All quantities are carried as doubles in fixed base units (documented in
// the alias names) so the cost model stays simple to audit against Table I
// of the paper. Helper constants convert to/from the unit prefixes the paper
// quotes (fJ/bit, pJ/bit, uW, ns, ...).
#pragma once

namespace bbpim {

/// Simulated time in nanoseconds.
using TimeNs = double;
/// Energy in joules.
using EnergyJ = double;
/// Power in watts.
using PowerW = double;
/// Silicon area in square millimeters.
using AreaMm2 = double;

namespace units {

inline constexpr double kNsPerUs = 1e3;
inline constexpr double kNsPerMs = 1e6;
inline constexpr double kNsPerSec = 1e9;

inline constexpr double kJoulePerFj = 1e-15;
inline constexpr double kJoulePerPj = 1e-12;
inline constexpr double kJoulePerNj = 1e-9;
inline constexpr double kJoulePerMj = 1e-3;

inline constexpr double kWattPerUw = 1e-6;
inline constexpr double kWattPerMw = 1e-3;

inline constexpr double kSecondsPerYear = 365.25 * 24 * 3600;

/// Converts nanoseconds to seconds.
constexpr double ns_to_sec(TimeNs ns) { return ns / kNsPerSec; }
/// Converts nanoseconds to milliseconds.
constexpr double ns_to_ms(TimeNs ns) { return ns / kNsPerMs; }
/// Converts seconds to nanoseconds.
constexpr TimeNs sec_to_ns(double sec) { return sec * kNsPerSec; }

}  // namespace units
}  // namespace bbpim
