// Zipf-distributed sampling over a finite domain.
//
// Used by the SSB data generator to produce skewed GROUP-BY subgroup sizes
// (Rabl et al., "Variations of the Star Schema Benchmark to Test the Effects
// of Data Skew on Query Performance", ICPE'13). See DESIGN.md for how rank
// interleaving keeps coarse selectivities uniform while leaf subgroups skew.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace bbpim {

/// Samples ranks in [0, n) with probability proportional to 1/(rank+1)^theta.
///
/// theta = 0 degenerates to uniform; theta around 0.5-1.0 matches the skew
/// levels studied by Rabl et al. The CDF is precomputed, sampling is a binary
/// search (O(log n)).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta);

  /// Draws one rank in [0, n).
  std::size_t sample(Rng& rng) const;

  /// Probability mass of a given rank.
  double mass(std::size_t rank) const;

  std::size_t domain_size() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  double theta_ = 0.0;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace bbpim
