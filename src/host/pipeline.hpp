// Deterministic scheduler for PIM macro requests.
//
// The paper's query execution partitions the relation's pages into four
// contiguous groups, one per thread (Section V-A). Each thread issues its
// pages' requests in order; a request occupies the target page's controller
// for its duration, and at most `window` requests per thread are in flight
// (power-bounded pipelining). This little queueing model is what makes
// phase latency linear in the page count M — exactly the behaviour the
// paper's empirical models fit in Fig. 4.
#pragma once

#include <cstdint>
#include <span>

#include "common/units.hpp"
#include "pim/controller.hpp"
#include "pim/trackers.hpp"

namespace bbpim::host {

struct ScheduleParams {
  std::uint32_t threads = 4;
  std::uint32_t window = 0;     ///< max outstanding requests/thread; 0 = unbounded
  TimeNs issue_gap_ns = 800.0;  ///< host cost to issue one request
};

/// Schedules one phase of per-page requests (traces[i] targets page i of the
/// phase, pages split contiguously across threads). Power intervals are
/// recorded against `tracker` (if non-null) offset by `phase_start_ns`.
/// Returns the phase end time (== phase_start_ns when no requests).
TimeNs schedule_requests(std::span<const pim::RequestTrace> traces,
                         const ScheduleParams& params, TimeNs phase_start_ns,
                         pim::PowerTracker* tracker);

}  // namespace bbpim::host
