#include "host/read_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbpim::host {

void ReadSet::touch(std::uint32_t page, std::uint32_t row, std::uint32_t chunk) {
  if (page >= per_page_lines_.size()) {
    throw std::out_of_range("ReadSet::touch: page out of range");
  }
  if (page_bits_ != 0) {
    const std::size_t line =
        static_cast<std::size_t>(row) * chunks_per_row_ + chunk;
    if (line >= page_bits_) {
      throw std::out_of_range("ReadSet::touch: line out of range");
    }
    std::vector<std::uint64_t>& bits = dense_pages_[page];
    if (bits.empty()) bits.resize((page_bits_ + 63) / 64, 0);
    const std::uint64_t mask = 1ULL << (line & 63);
    std::uint64_t& word = bits[line >> 6];
    if ((word & mask) == 0) {
      word |= mask;
      ++per_page_lines_[page];
      ++unique_lines_;
    }
    return;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(page) << 40) |
                            (static_cast<std::uint64_t>(row) << 8) | chunk;
  if (seen_.insert(key).second) {
    ++per_page_lines_[page];
    ++unique_lines_;
  }
}

TimeNs lines_phase_time_ns(std::span<const std::uint32_t> per_page_lines,
                           const HostConfig& cfg) {
  const std::size_t pages = per_page_lines.size();
  if (pages == 0) return 0;
  const std::size_t per_thread = (pages + cfg.threads - 1) / cfg.threads;
  TimeNs worst = 0;
  for (std::size_t begin = 0; begin < pages; begin += per_thread) {
    const std::size_t end = std::min(pages, begin + per_thread);
    std::uint64_t lines = 0;
    for (std::size_t p = begin; p < end; ++p) lines += per_page_lines[p];
    worst = std::max(worst, static_cast<double>(lines) * cfg.line_random_ns);
  }
  return worst;
}

TimeNs ReadSet::phase_time_ns(const HostConfig& cfg) const {
  return lines_phase_time_ns(per_page_lines_, cfg);
}

}  // namespace bbpim::host
