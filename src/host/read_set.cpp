#include "host/read_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbpim::host {

void ReadSet::touch(std::uint32_t page, std::uint32_t row, std::uint32_t chunk) {
  if (page >= per_page_lines_.size()) {
    throw std::out_of_range("ReadSet::touch: page out of range");
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(page) << 40) |
                            (static_cast<std::uint64_t>(row) << 8) | chunk;
  if (seen_.insert(key).second) {
    ++per_page_lines_[page];
  }
}

TimeNs ReadSet::phase_time_ns(const HostConfig& cfg) const {
  const std::size_t pages = per_page_lines_.size();
  if (pages == 0) return 0;
  const std::size_t per_thread = (pages + cfg.threads - 1) / cfg.threads;
  TimeNs worst = 0;
  for (std::size_t begin = 0; begin < pages; begin += per_thread) {
    const std::size_t end = std::min(pages, begin + per_thread);
    std::uint64_t lines = 0;
    for (std::size_t p = begin; p < end; ++p) lines += per_page_lines_[p];
    worst = std::max(worst, static_cast<double>(lines) * cfg.line_random_ns);
  }
  return worst;
}

}  // namespace bbpim::host
