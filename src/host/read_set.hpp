// Unique-line accounting for host reads from the PIM module.
//
// A 64 B line holds one 16-bit chunk of the records at one row of all 32
// crossbars of a page. Reading a single record therefore drags 31 other
// records' chunks along (the paper's read amplification), and conversely two
// selected records in the same page row share their lines. host-gb latency
// is driven by the number of *unique* lines touched — this set computes it
// and converts it to time under the page-per-thread partitioning.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"
#include "host/config.hpp"

namespace bbpim::host {

class ReadSet {
 public:
  /// `pages` is the number of pages the relation spans (for per-thread
  /// partitioning when converting to time).
  explicit ReadSet(std::size_t pages) : per_page_lines_(pages, 0) {}

  /// Registers a read of chunk `chunk` of the record at row `row` of page
  /// `page`; dedupes against previous touches of the same line.
  void touch(std::uint32_t page, std::uint32_t row, std::uint32_t chunk);

  std::size_t unique_lines() const { return seen_.size(); }
  const std::vector<std::uint32_t>& per_page_lines() const {
    return per_page_lines_;
  }

  /// Phase latency: pages are split contiguously across threads; each thread
  /// streams its pages' unique lines at line_ns apiece; the phase ends when
  /// the slowest thread finishes.
  TimeNs phase_time_ns(const HostConfig& cfg) const;

 private:
  std::unordered_set<std::uint64_t> seen_;
  std::vector<std::uint32_t> per_page_lines_;
};

}  // namespace bbpim::host
