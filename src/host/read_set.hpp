// Unique-line accounting for host reads from the PIM module.
//
// A 64 B line holds one 16-bit chunk of the records at one row of all 32
// crossbars of a page. Reading a single record therefore drags 31 other
// records' chunks along (the paper's read amplification), and conversely two
// selected records in the same page row share their lines. host-gb latency
// is driven by the number of *unique* lines touched — this set computes it
// and converts it to time under the page-per-thread partitioning.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"
#include "host/config.hpp"

namespace bbpim::host {

/// Phase latency of streaming per-page unique-line counts under the
/// page-per-thread partitioning (ReadSet::phase_time_ns and the engine's
/// page-parallel host-gb walk, which counts lines without a ReadSet).
TimeNs lines_phase_time_ns(std::span<const std::uint32_t> per_page_lines,
                           const HostConfig& cfg);

class ReadSet {
 public:
  /// `pages` is the number of pages the relation spans (for per-thread
  /// partitioning when converting to time). Dedupe uses a hash set.
  explicit ReadSet(std::size_t pages) : per_page_lines_(pages, 0) {}

  /// Dense variant: when the per-page line-id space (rows x chunks) is known
  /// and small — it always is, a page has a fixed geometry — dedupe uses
  /// lazily allocated per-page bitmaps instead of a hash set. O(1) with no
  /// hashing per touch; identical observable behavior.
  ReadSet(std::size_t pages, std::uint32_t rows_per_page,
          std::uint32_t chunks_per_row)
      : per_page_lines_(pages, 0),
        page_bits_(static_cast<std::size_t>(rows_per_page) * chunks_per_row),
        chunks_per_row_(chunks_per_row),
        dense_pages_(pages) {}

  /// Registers a read of chunk `chunk` of the record at row `row` of page
  /// `page`; dedupes against previous touches of the same line.
  void touch(std::uint32_t page, std::uint32_t row, std::uint32_t chunk);

  std::size_t unique_lines() const { return unique_lines_; }
  const std::vector<std::uint32_t>& per_page_lines() const {
    return per_page_lines_;
  }

  /// Phase latency: pages are split contiguously across threads; each thread
  /// streams its pages' unique lines at line_ns apiece; the phase ends when
  /// the slowest thread finishes.
  TimeNs phase_time_ns(const HostConfig& cfg) const;

 private:
  std::unordered_set<std::uint64_t> seen_;
  std::vector<std::uint32_t> per_page_lines_;
  std::size_t unique_lines_ = 0;
  /// Dense mode state (page_bits_ == 0 selects the hash set).
  std::size_t page_bits_ = 0;
  std::uint32_t chunks_per_row_ = 0;
  std::vector<std::vector<std::uint64_t>> dense_pages_;
};

}  // namespace bbpim::host
