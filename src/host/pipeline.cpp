#include "host/pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace bbpim::host {

TimeNs schedule_requests(std::span<const pim::RequestTrace> traces,
                         const ScheduleParams& params, TimeNs phase_start_ns,
                         pim::PowerTracker* tracker) {
  if (params.threads == 0) {
    throw std::invalid_argument("schedule_requests: zero threads");
  }
  if (traces.empty()) return phase_start_ns;

  const std::size_t n = traces.size();
  const std::size_t per_thread = (n + params.threads - 1) / params.threads;
  TimeNs phase_end = phase_start_ns;

  for (std::uint32_t t = 0; t < params.threads; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * per_thread;
    if (begin >= n) break;
    const std::size_t end = std::min(n, begin + per_thread);

    // Completion times of this thread's last `window` requests.
    std::vector<TimeNs> completions;
    completions.reserve(end - begin);
    TimeNs prev_issue = phase_start_ns;
    for (std::size_t i = begin; i < end; ++i) {
      TimeNs issue = (i == begin) ? phase_start_ns
                                  : prev_issue + params.issue_gap_ns;
      const std::size_t in_flight_idx = i - begin;
      if (params.window != 0 && in_flight_idx >= params.window) {
        issue = std::max(issue, completions[in_flight_idx - params.window]);
      }
      const TimeNs done = issue + traces[i].duration_ns;
      completions.push_back(done);
      prev_issue = issue;
      if (tracker != nullptr && traces[i].avg_power_w > 0) {
        tracker->add_interval(issue, done, traces[i].avg_power_w);
      }
      phase_end = std::max(phase_end, done);
    }
  }
  return phase_end;
}

}  // namespace bbpim::host
