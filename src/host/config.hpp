// Host-side system model (Table I, "Evaluation System").
//
// The host is a 6-core out-of-order x86 at 3.6 GHz with DDR4-2400 main
// memory; the PIM module sits on the memory bus next to a regular DRAM rank.
// Query execution uses 4 worker threads, each owning a contiguous quarter of
// the relation's pages (Section V-A). We model the host at the level that
// drives the paper's results: cache-line transfer costs (streaming vs.
// dependent random), PIM request issue cost (uncacheable store + fence), a
// fixed per-phase synchronization overhead (threads join between query
// phases), and per-record CPU costs for host-side aggregation.
//
// Reading PIM data always moves 64 B lines; one line carries one 16-bit
// chunk from each of the 32 crossbars of a page row. Reading a bit column
// (a filter result) therefore costs one line per page row — the "filter
// latency is dominated by the filter result reads" effect of Section IV.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace bbpim::host {

struct HostConfig {
  /// Worker threads executing a query (the paper uses 4 of the 6 cores).
  std::uint32_t threads = 4;

  /// Per-thread cost of one sequential line transfer from the PIM module,
  /// e.g. sweeping a page's filter-result rows. PIM-resident pages are read
  /// around the cache hierarchy to preserve the scope-consistency model of
  /// [18], so streaming gains little over the raw memory latency.
  TimeNs line_stream_ns = 160.0;

  /// Per-thread cost of one dependent random line read (host-gb record
  /// fetches; dominated by full memory latency, little overlap).
  TimeNs line_random_ns = 200.0;

  /// Cost for the host to issue one PIM macro request: an uncacheable
  /// store carrying the request descriptor plus the ordering fence.
  TimeNs issue_ns = 800.0;

  /// Fixed cost of one PIM phase (thread barrier + kernel interaction for
  /// the scope-consistency fence of [18]).
  TimeNs phase_overhead_ns = 50000.0;

  /// Outstanding-request window per thread; 0 = unlimited (page controllers
  /// are independent, so issuance is the only serialization). Non-zero
  /// values exist for the power-throttling ablation bench.
  std::uint32_t request_window = 0;

  /// CPU cost to classify + hash-aggregate one record during host-gb.
  TimeNs cpu_ns_per_record = 14.0;

  /// CPU cost per sampled record during GROUP-BY estimation (Section IV).
  TimeNs cpu_ns_per_sample = 8.0;

  /// Fixed cost of evaluating the latency model / choosing k for one query.
  TimeNs plan_overhead_ns = 5000.0;

  /// Worker threads for the *simulator's* page-parallel execution (how fast
  /// the simulation itself runs on this machine — NOT the modeled host
  /// threads above, and deliberately excluded from the model-cache config
  /// fingerprint). 0 = all hardware threads, 1 = serial. Results, modeled
  /// times, energy, wear, and traces are bit-identical at any value.
  std::uint32_t sim_threads = 0;

  /// Default for ExecOptions::prune (zone-map data skipping). Like
  /// sim_threads, deliberately excluded from the model-cache config
  /// fingerprint: pruning never changes the modeled per-page cost of a page
  /// that executes, so models fitted without pruning stay valid with it.
  bool prune = false;
};

}  // namespace bbpim::host
