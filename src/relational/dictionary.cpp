#include "relational/dictionary.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace bbpim::rel {

Dictionary Dictionary::from_values(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Dictionary d;
  d.sorted_ = std::move(values);
  d.index_.reserve(d.sorted_.size());
  for (std::size_t i = 0; i < d.sorted_.size(); ++i) {
    d.index_.emplace(d.sorted_[i], i);
  }
  return d;
}

std::optional<std::uint64_t> Dictionary::code(std::string_view value) const {
  const auto it = index_.find(std::string(value));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Dictionary::code_lower_bound(std::string_view value) const {
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), value);
  return static_cast<std::uint64_t>(it - sorted_.begin());
}

std::uint64_t Dictionary::code_upper_bound(std::string_view value) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), value);
  return static_cast<std::uint64_t>(it - sorted_.begin());
}

const std::string& Dictionary::value(std::uint64_t code) const {
  if (code >= sorted_.size()) throw std::out_of_range("Dictionary::value");
  return sorted_[code];
}

std::uint32_t Dictionary::code_bits() const {
  if (sorted_.size() <= 1) return 1;
  return 64 - std::countl_zero(static_cast<std::uint64_t>(sorted_.size() - 1));
}

}  // namespace bbpim::rel
