#include "relational/csv.hpp"

#include <algorithm>
#include <istream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace bbpim::rel {
namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void write_field(std::ostream& os, const std::string& s) {
  if (!needs_quoting(s)) {
    os << s;
    return;
  }
  os << '"';
  for (const char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

/// Splits one CSV record (handles quoted fields spanning commas; a record
/// never spans lines in our exports, and import rejects embedded newlines
/// for simplicity).
std::vector<std::string> split_record(const std::string& line,
                                      std::size_t line_no) {
  std::vector<std::string> out;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  if (quoted) {
    throw std::invalid_argument("read_csv: unterminated quote on line " +
                                std::to_string(line_no));
  }
  out.push_back(std::move(field));
  return out;
}

bool parse_uint(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 19) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

void write_csv(const Table& table, std::ostream& os) {
  const Schema& schema = table.schema();
  for (std::size_t a = 0; a < schema.attribute_count(); ++a) {
    if (a) os << ',';
    write_field(os, schema.attribute(a).name);
  }
  os << '\n';
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    for (std::size_t a = 0; a < schema.attribute_count(); ++a) {
      if (a) os << ',';
      write_field(os, table.display(r, a));
    }
    os << '\n';
  }
}

Table read_csv(std::istream& is, std::string table_name) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("read_csv: missing header");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::vector<std::string> header = split_record(line, 1);
  if (header.empty() || (header.size() == 1 && header[0].empty())) {
    throw std::invalid_argument("read_csv: empty header");
  }
  const std::size_t ncols = header.size();

  std::vector<std::vector<std::string>> rows;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> rec = split_record(line, line_no);
    if (rec.size() != ncols) {
      throw std::invalid_argument("read_csv: line " + std::to_string(line_no) +
                                  " has " + std::to_string(rec.size()) +
                                  " fields, expected " + std::to_string(ncols));
    }
    rows.push_back(std::move(rec));
  }

  // Infer per-column types.
  std::vector<rel::Attribute> attrs(ncols);
  std::vector<bool> is_int(ncols, true);
  std::vector<std::uint64_t> max_val(ncols, 0);
  for (std::size_t c = 0; c < ncols; ++c) {
    for (const auto& row : rows) {
      std::uint64_t v = 0;
      if (!parse_uint(row[c], &v)) {
        is_int[c] = false;
        break;
      }
      max_val[c] = std::max(max_val[c], v);
    }
  }
  for (std::size_t c = 0; c < ncols; ++c) {
    attrs[c].name = header[c];
    if (is_int[c]) {
      attrs[c].type = DataType::kInt;
      attrs[c].bits = bits_for_max(max_val[c]);
    } else {
      std::vector<std::string> values;
      values.reserve(rows.size());
      for (const auto& row : rows) values.push_back(row[c]);
      attrs[c].type = DataType::kString;
      attrs[c].dict = std::make_shared<const Dictionary>(
          Dictionary::from_values(std::move(values)));
      attrs[c].bits = attrs[c].dict->code_bits();
    }
  }

  Table t(Schema(std::move(attrs)), std::move(table_name));
  t.reserve(rows.size());
  std::vector<std::uint64_t> codes(ncols);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < ncols; ++c) {
      if (is_int[c]) {
        std::uint64_t v = 0;
        parse_uint(row[c], &v);
        codes[c] = v;
      } else {
        codes[c] = *t.schema().attribute(c).dict->code(row[c]);
      }
    }
    t.append_row(codes);
  }
  return t;
}

}  // namespace bbpim::rel
