// Column-major in-memory tables.
//
// The canonical host-side representation of a relation: one uint64 code
// vector per attribute. Used by the data generator, the pre-joiner, the
// MonetDB-like baseline, and as the loading source for the PIM store.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "relational/schema.hpp"

namespace bbpim::rel {

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema, std::string name = {});

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  std::size_t row_count() const { return rows_; }

  /// Appends one record; values.size() must equal the attribute count and
  /// each value must fit its attribute's bit width.
  void append_row(std::span<const std::uint64_t> values);

  /// Reserves row capacity in every column.
  void reserve(std::size_t rows);

  std::uint64_t value(std::size_t row, std::size_t attr) const {
    return columns_.at(attr).at(row);
  }
  const std::vector<std::uint64_t>& column(std::size_t attr) const {
    return columns_.at(attr);
  }

  /// Renders a value for display (decodes through the dictionary when the
  /// attribute is a string).
  std::string display(std::size_t row, std::size_t attr) const;

 private:
  Schema schema_;
  std::string name_;
  std::size_t rows_ = 0;
  std::vector<std::vector<std::uint64_t>> columns_;
};

}  // namespace bbpim::rel
