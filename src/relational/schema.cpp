#include "relational/schema.hpp"

#include <bit>
#include <stdexcept>
#include <unordered_set>

namespace bbpim::rel {

Schema::Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {
  std::unordered_set<std::string> seen;
  for (const Attribute& a : attrs_) {
    if (a.bits == 0 || a.bits > 64) {
      throw std::invalid_argument("Schema: attribute '" + a.name +
                                  "' has invalid bit width");
    }
    if (a.type == DataType::kString && !a.dict) {
      throw std::invalid_argument("Schema: string attribute '" + a.name +
                                  "' lacks a dictionary");
    }
    if (!seen.insert(a.name).second) {
      throw std::invalid_argument("Schema: duplicate attribute '" + a.name + "'");
    }
  }
}

std::optional<std::size_t> Schema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return std::nullopt;
}

std::uint32_t Schema::record_bits() const {
  std::uint32_t total = 0;
  for (const Attribute& a : attrs_) total += a.bits;
  return total;
}

std::uint32_t bits_for_max(std::uint64_t max_value) {
  if (max_value == 0) return 1;
  return 64 - std::countl_zero(max_value);
}

}  // namespace bbpim::rel
