#include "relational/table.hpp"

#include <stdexcept>

namespace bbpim::rel {

Table::Table(Schema schema, std::string name)
    : schema_(std::move(schema)),
      name_(std::move(name)),
      columns_(schema_.attribute_count()) {}

void Table::append_row(std::span<const std::uint64_t> values) {
  if (values.size() != schema_.attribute_count()) {
    throw std::invalid_argument("Table::append_row: arity mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const Attribute& a = schema_.attribute(i);
    if (a.bits < 64 && values[i] >> a.bits) {
      throw std::invalid_argument("Table::append_row: value overflows '" +
                                  a.name + "'");
    }
    columns_[i].push_back(values[i]);
  }
  ++rows_;
}

void Table::reserve(std::size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
}

std::string Table::display(std::size_t row, std::size_t attr) const {
  const Attribute& a = schema_.attribute(attr);
  const std::uint64_t v = value(row, attr);
  if (a.type == DataType::kString) return a.dict->value(v);
  return std::to_string(v);
}

}  // namespace bbpim::rel
