// Relation schemas: attributes with types, bit widths, and dictionaries.
//
// Every attribute value is carried as a uint64 code: integers directly,
// strings through an order-preserving dictionary. `bits` is the packed
// width used when the relation is laid out in crossbar rows.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/dictionary.hpp"

namespace bbpim::rel {

enum class DataType : std::uint8_t { kInt, kString };

struct Attribute {
  std::string name;
  DataType type = DataType::kInt;
  std::uint32_t bits = 0;  ///< packed width (covers the attribute's domain)
  /// Present for kString attributes; shared because several relations can
  /// reference one domain (e.g. city appears in customer and supplier).
  std::shared_ptr<const Dictionary> dict;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs);

  std::size_t attribute_count() const { return attrs_.size(); }
  const Attribute& attribute(std::size_t i) const { return attrs_.at(i); }
  const std::vector<Attribute>& attributes() const { return attrs_; }

  /// Index of an attribute by name (case-sensitive); nullopt when absent.
  std::optional<std::size_t> index_of(const std::string& name) const;

  /// Total packed bits of one record.
  std::uint32_t record_bits() const;

 private:
  std::vector<Attribute> attrs_;
};

/// Helper for integer attributes: bits to cover [0, max_value].
std::uint32_t bits_for_max(std::uint64_t max_value);

}  // namespace bbpim::rel
