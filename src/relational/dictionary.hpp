// Order-preserving dictionary encoding for string attributes.
//
// Bulk-bitwise PIM compares bit-packed codes, so string predicates must map
// to integer predicates. The dictionary assigns codes in lexicographic
// order, which keeps range predicates (e.g. SSB Q2.2's
// p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228') exact on codes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bbpim::rel {

class Dictionary {
 public:
  Dictionary() = default;

  /// Builds from a value domain (deduplicated and sorted internally).
  static Dictionary from_values(std::vector<std::string> values);

  /// Exact-match code; nullopt when absent.
  std::optional<std::uint64_t> code(std::string_view value) const;

  /// First code whose value is >= `value` (dictionary size when none).
  std::uint64_t code_lower_bound(std::string_view value) const;
  /// One past the last code whose value is <= `value` (0 when none).
  std::uint64_t code_upper_bound(std::string_view value) const;

  const std::string& value(std::uint64_t code) const;
  std::size_t size() const { return sorted_.size(); }

  /// Bits needed to store any code.
  std::uint32_t code_bits() const;

 private:
  std::vector<std::string> sorted_;
  std::unordered_map<std::string, std::uint64_t> index_;
};

}  // namespace bbpim::rel
