// CSV import/export for relational tables.
//
// Export writes dictionary-decoded values (human-readable, round-trips
// through import). Import infers the schema: a column whose every value
// parses as a non-negative integer becomes kInt (width sized to the max),
// anything else becomes a dictionary-encoded string attribute. Quoting
// follows RFC 4180 (double quotes, doubled to escape).
#pragma once

#include <iosfwd>
#include <string>

#include "relational/table.hpp"

namespace bbpim::rel {

/// Writes header + rows; string attributes are decoded through their
/// dictionaries.
void write_csv(const Table& table, std::ostream& os);

/// Reads header + rows, inferring the schema as documented above.
/// Throws std::invalid_argument on ragged rows or an empty header.
Table read_csv(std::istream& is, std::string table_name = "csv");

}  // namespace bbpim::rel
