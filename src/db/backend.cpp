#include "db/backend.hpp"

namespace bbpim::db {
namespace {

constexpr BackendKind kAll[] = {BackendKind::kOneXb, BackendKind::kTwoXb,
                                BackendKind::kPimdb, BackendKind::kColumnar,
                                BackendKind::kReference};
constexpr BackendKind kPim[] = {BackendKind::kOneXb, BackendKind::kTwoXb,
                                BackendKind::kPimdb};

}  // namespace

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kOneXb:
    case BackendKind::kTwoXb:
    case BackendKind::kPimdb:
      return engine::engine_kind_name(*engine_kind_of(kind));
    case BackendKind::kColumnar: return "columnar";
    case BackendKind::kReference: return "reference";
  }
  return "?";
}

std::optional<BackendKind> parse_backend(std::string_view name) {
  if (const auto kind = engine::parse_engine_kind(name)) {
    return backend_of(*kind);
  }
  if (name == "columnar") return BackendKind::kColumnar;
  if (name == "reference") return BackendKind::kReference;
  return std::nullopt;
}

std::span<const BackendKind> all_backends() { return kAll; }

std::span<const BackendKind> pim_backends() { return kPim; }

std::optional<engine::EngineKind> engine_kind_of(BackendKind kind) {
  switch (kind) {
    case BackendKind::kOneXb: return engine::EngineKind::kOneXb;
    case BackendKind::kTwoXb: return engine::EngineKind::kTwoXb;
    case BackendKind::kPimdb: return engine::EngineKind::kPimdb;
    case BackendKind::kColumnar:
    case BackendKind::kReference: return std::nullopt;
  }
  return std::nullopt;
}

BackendKind backend_of(engine::EngineKind kind) {
  switch (kind) {
    case engine::EngineKind::kOneXb: return BackendKind::kOneXb;
    case engine::EngineKind::kTwoXb: return BackendKind::kTwoXb;
    case engine::EngineKind::kPimdb: return BackendKind::kPimdb;
  }
  return BackendKind::kOneXb;
}

}  // namespace bbpim::db
