// Umbrella header for the bbpim::db facade: Database (catalog + PIM load
// policy), Session (configs, fitted models, executor registry),
// PreparedStatement (parse/bind once, re-execute cheaply), and the typed
// dictionary-decoding ResultSet.
#pragma once

#include "db/backend.hpp"      // IWYU pragma: export
#include "db/database.hpp"     // IWYU pragma: export
#include "db/result_set.hpp"   // IWYU pragma: export
#include "db/session.hpp"      // IWYU pragma: export
#include "db/statement.hpp"    // IWYU pragma: export
