// Umbrella header for the bbpim::db facade: Database (catalog + PIM load
// policy), Session (configs, fitted models, executor registry),
// PreparedStatement (parse/bind once, re-execute cheaply), the typed
// dictionary-decoding ResultSet, and the QueryService worker pool for
// concurrent serving.
#pragma once

#include "db/backend.hpp"      // IWYU pragma: export
#include "db/database.hpp"     // IWYU pragma: export
#include "db/errors.hpp"       // IWYU pragma: export
#include "db/result_set.hpp"   // IWYU pragma: export
#include "db/service.hpp"      // IWYU pragma: export
#include "db/session.hpp"      // IWYU pragma: export
#include "db/statement.hpp"    // IWYU pragma: export
