// Session: one facade over parsing, binding, PIM loading, model fitting,
// and multi-backend execution — "SQL in, results + simulated costs out".
//
// A session connects to a Database catalog and owns everything the seed's
// call sites used to wire by hand: the host/PIM configuration, the fitted
// Section-IV latency models (fit once, cached in memory and optionally on
// disk), and a lazily built registry of executors keyed by backend and
// target relation. The low-level PimQueryEngine API stays intact underneath
// — the session is a layer, not a fork — and is reachable through
// pim_engine() for benches that need forced-k sweeps or direct store access.
//
//   db::Database database;
//   database.register_table(std::move(sales));
//   db::Session session(database);
//   db::ResultSet rs = session.execute(
//       "SELECT region, SUM(qty) FROM sales GROUP BY region");
#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "db/backend.hpp"
#include "db/database.hpp"
#include "db/result_set.hpp"
#include "db/statement.hpp"
#include "engine/model_fitter.hpp"
#include "engine/query_exec.hpp"
#include "host/config.hpp"
#include "pim/config.hpp"

namespace bbpim::db {

/// The facade's default fitting grid: small enough that a first GROUP-BY
/// query fits in seconds, dense enough for sane planner decisions (the
/// grid every seed example hand-rolled). Benches override it.
engine::FitConfig quick_fit_config();

/// Fit-once-and-cache registry for the Section-IV latency models, keyed by
/// engine kind. Shareable across sessions whose pim/host/fit configurations
/// match (the models depend on those, not on the data); optionally backed
/// by a directory of plain-text cache files.
///
/// Thread-safe: N threads calling get_or_fit for the same engine kind run
/// exactly one fitting campaign — the first caller fits outside the lock
/// while the rest block until the slot is ready. Cache files carry a
/// fingerprint of the (pim, host, fit) configuration that produced them; a
/// mismatching, truncated, or otherwise unreadable file is a cache miss
/// (refit and overwrite), never an error.
class ModelCache {
 public:
  ModelCache() = default;
  /// `dir` of "" disables disk persistence; `tag` disambiguates cache files
  /// fitted under different configurations.
  explicit ModelCache(std::string dir, std::string tag = {});

  bool contains(engine::EngineKind kind) const;
  /// Injects externally fitted models for `kind`, bypassing the campaign;
  /// they win over (and pre-empt) any get_or_fit for that kind. Injection
  /// is a setup-time operation: a second put for the same kind throws
  /// std::logic_error, because resident models are immutable — threads may
  /// hold references into them.
  void put(engine::EngineKind kind, engine::LatencyModels models);

  /// Memory hit, else disk hit, else runs the fitting campaign (and saves).
  /// In-memory entries are keyed by (kind, config fingerprint) just like
  /// the disk files, so callers with different configurations sharing one
  /// cache never see each other's models.
  const engine::LatencyModels& get_or_fit(engine::EngineKind kind,
                                          const pim::PimConfig& pim,
                                          const host::HostConfig& host,
                                          const engine::FitConfig& fit,
                                          bool verbose = false);

  /// Fitting campaigns this cache actually ran (memory and valid disk hits
  /// don't count) — the observable half of the fit-once guarantee.
  std::size_t fit_count() const;

 private:
  /// One (kind, fingerprint) cache line; fingerprint 0 holds put()-injected
  /// models. `busy` marks a thread loading/fitting it; `models` is immutable
  /// once `ready` flips (map nodes are stable, so the reference returned by
  /// get_or_fit stays valid for the cache's lifetime).
  struct Slot {
    bool ready = false;
    bool busy = false;
    engine::LatencyModels models;
  };
  using SlotKey = std::pair<engine::EngineKind, std::uint64_t>;

  /// One file per (kind, tag, fingerprint): configurations sharing a cache
  /// dir coexist on disk instead of overwriting each other's campaigns.
  std::string cache_path(engine::EngineKind kind,
                         std::uint64_t fingerprint) const;
  /// Validated disk load, else fitting campaign. Runs unlocked; sets
  /// `did_fit` when a campaign ran.
  engine::LatencyModels load_or_fit(engine::EngineKind kind,
                                    std::uint64_t fingerprint,
                                    const pim::PimConfig& pim,
                                    const host::HostConfig& host,
                                    const engine::FitConfig& fit, bool verbose,
                                    bool& did_fit) const;

  std::string dir_;
  std::string tag_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<SlotKey, Slot> slots_;
  std::size_t fits_ = 0;
};

struct SessionOptions {
  host::HostConfig host;
  pim::PimConfig pim;
  engine::FitConfig fit = quick_fit_config();
  BackendKind default_backend = BackendKind::kOneXb;
  /// Shared fit-once cache; a private one is created when null.
  std::shared_ptr<ModelCache> models;
  /// Disk cache location/tag for the private ModelCache ("" = memory only).
  /// Ignored when `models` is provided.
  std::string model_cache_dir;
  std::string model_cache_tag;
  bool verbose = false;
};

/// Result of one facade UPDATE execution.
struct UpdateResult {
  engine::UpdateStats stats;
  /// The update's position in the table's log (its new data version).
  std::uint64_t data_version = 0;
};

/// Uniform execution interface over one (backend, relation) pair.
///
/// Mutation-safe serving contract: PIM executors serve every read against
/// an immutable epoch-pinned snapshot of the table's shared store
/// (db::SnapshotManager). A read whose pinned version is current runs
/// entirely lock-free; a stale reader re-pins the newest snapshot first
/// (O(crossbars) pointer swings, no replay). Updates route through the
/// manager's single builder, which copy-on-writes only the crossbars whose
/// bits change and atomically publishes the successor version. Every
/// result therefore reflects a prefix of the table's update log, and
/// last_data_version() reports which one.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual BackendKind backend() const = 0;
  virtual const rel::Table& target() const = 0;
  virtual engine::QueryOutput execute(const sql::BoundQuery& q,
                                      const engine::ExecOptions& opts) = 0;
  /// Executes several bound SELECTs over this executor's relation in one
  /// call: outputs[i]/errors[i] pair with queries[i], exactly one of each
  /// set per member. The default runs the queries one by one (the host
  /// baselines have no page pass to share); PIM executors override it with
  /// the engine's shared-scan fused pass, serving every member from ONE
  /// pinned snapshot version. `cancels`, when non-empty, aligns with
  /// `queries` and carries each member's own cancellation token.
  virtual engine::PimQueryEngine::BatchOutput execute_many(
      const std::vector<const sql::BoundQuery*>& queries,
      const engine::ExecOptions& opts,
      const std::vector<engine::CancelToken>& cancels = {});
  /// Applies a bound UPDATE (Algorithm 1) and commits it to the table's
  /// update log. Throws std::invalid_argument for backends that cannot
  /// mutate (the host baselines read the immutable catalog table).
  virtual UpdateResult execute_update(const sql::BoundUpdate& update,
                                      const engine::ExecOptions& opts);
  /// Data version observed by the most recent execute()/execute_update()
  /// through this executor (sessions are single-threaded per the threading
  /// model, so this pairs with the call that just returned).
  virtual std::uint64_t last_data_version() const { return 0; }
  /// Physical-plan rendering; throws std::invalid_argument for backends
  /// without one (the host baselines).
  virtual std::string explain(const sql::BoundQuery& q);
  /// Filter-only scan feeding the host hash join: survivor row ids plus the
  /// requested attribute columns, snapshot-pinned exactly like execute().
  /// Throws std::invalid_argument for backends without a scan path (the
  /// columnar baseline models pre-joined plans only).
  virtual engine::ScanOutput execute_scan(
      const std::vector<sql::BoundPredicate>& filters,
      const std::vector<std::size_t>& attrs, const engine::ExecOptions& opts);
  /// Per-table scan half of a join EXPLAIN; throws like explain().
  virtual std::string explain_scan(
      const std::vector<sql::BoundPredicate>& filters);
};

/// Threading model: a session's plan cache, executor registry, and model
/// lookups are mutex-guarded, so concurrent prepare()/models() calls — and
/// sessions sharing one Database and ModelCache across threads — are safe.
/// Executing queries concurrently *through one session* is not: executors
/// are stateful (private scratch pages, the pinned snapshot), so concurrent
/// execute() on a single session requires external synchronization. Use one
/// session per thread (or QueryService, which does exactly that): sessions
/// sharing a Database then serve reads from the SAME immutable snapshot
/// store — readers never block writers, and a writer never blocks readers
/// pinned to the current version.
class Session {
 public:
  explicit Session(Database& db, SessionOptions opts = {});
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- statements ---------------------------------------------------------
  /// Parses, resolves the target against the catalog, binds, and caches
  /// the plan by SQL text — first in this session, then in the Database's
  /// shared plan cache, so N workers preparing the same statement bind it
  /// once. Accepts SELECT and UPDATE statements (an UPDATE resolves its
  /// table name like a one-element FROM list); a SELECT whose FROM list
  /// names two or more registered tables binds through the star-join
  /// planner (sql::bind_join). Throws std::invalid_argument on syntax
  /// errors, unknown/ambiguous columns, type mismatches, multiple
  /// aggregates, non-star join graphs, or unencodable SET values.
  PreparedStatement prepare(std::string_view sql_text);
  ResultSet execute(std::string_view sql_text,
                    const engine::ExecOptions& opts = {});
  ResultSet execute(std::string_view sql_text, BackendKind backend,
                    const engine::ExecOptions& opts = {});

  /// One statement's outcome in execute_batch: exactly one of `result` /
  /// `error` is set (per-statement errors never fail batchmates).
  struct BatchItem {
    ResultSet result;
    std::exception_ptr error;
  };
  /// Shared-scan batched execution: prepares every statement, groups the
  /// single-table non-join SELECTs by target table — duplicates of one plan
  /// execute once and share the ResultSet — and runs each group through the
  /// executor's fused pass (Executor::execute_many), so a group's members
  /// read one snapshot version in one pass over its pages. Statements that
  /// cannot share a scan (UPDATEs, joins) run after the groups, in
  /// statement order, exactly as today. Results align with `sqls`; each
  /// item's rows and semantic stats are byte-identical to a solo execute()
  /// of the same text.
  /// `cancels`, when non-empty, aligns with `sqls` and carries each
  /// statement's own cancellation token (the QueryService threads per-
  /// submission tokens through here). Statements with distinct tokens are
  /// not interned into one execution — a cancelled member must never take a
  /// duplicate's result (or fate) with it.
  std::vector<BatchItem> execute_batch(
      const std::vector<std::string>& sqls,
      const engine::ExecOptions& opts = {},
      const std::vector<engine::CancelToken>& cancels = {});
  std::vector<BatchItem> execute_batch(
      const std::vector<std::string>& sqls, BackendKind backend,
      const engine::ExecOptions& opts = {},
      const std::vector<engine::CancelToken>& cancels = {});

  /// EXPLAIN on the default (or given) PIM backend.
  std::string explain(std::string_view sql_text);
  std::string explain(std::string_view sql_text, BackendKind backend);

  // --- backends -----------------------------------------------------------
  BackendKind default_backend() const { return opts_.default_backend; }
  void set_default_backend(BackendKind backend);
  /// The executor of `backend` over the default target relation.
  Executor& executor(BackendKind backend);
  Executor& executor(BackendKind backend, std::string_view table);
  Executor& executor_for(BackendKind backend, const rel::Table& table);

  // --- models (fit-once-and-cache) ----------------------------------------
  const engine::LatencyModels& models(engine::EngineKind kind);
  void set_models(engine::EngineKind kind, engine::LatencyModels m);
  const std::shared_ptr<ModelCache>& model_cache() { return model_cache_; }

  // --- low-level escape hatches ------------------------------------------
  /// The engine (store loaded) behind a PIM backend over the default target
  /// relation. Models are fitted lazily when a facade execution needs the
  /// GROUP-BY planner; to run grouped queries directly on the returned
  /// engine, seed it first: `eng.set_models(session.models(kind))`.
  engine::PimQueryEngine& pim_engine(engine::EngineKind kind);
  engine::PimQueryEngine& pim_engine(engine::EngineKind kind,
                                     std::string_view table);

  Database& database() { return *db_; }
  const SessionOptions& options() const { return opts_; }

 private:
  friend class PreparedStatement;

  /// Parses and binds `sql_text` against the current catalog: UPDATE, the
  /// multi-table join path (every FROM name registered), or the seed's
  /// single-table resolution. Front-end only — no executors touched.
  std::shared_ptr<const Plan> build_plan(std::string_view sql_text);
  /// Runs a bound join plan: one snapshot-pinned scan per touched table,
  /// then the host hash join (engine/hash_join) over the survivors.
  ResultSet execute_join(const Plan& plan, BackendKind backend,
                         const engine::ExecOptions& opts);

  Database* db_;
  SessionOptions opts_;
  std::shared_ptr<ModelCache> model_cache_;
  /// Guards plans_ and catalog_version_.
  std::mutex plans_mutex_;
  /// Guards executors_; held across executor construction so a backend's
  /// first touch (PIM store load) happens exactly once per (backend, table).
  std::mutex executors_mutex_;
  std::uint64_t catalog_version_ = 0;
  std::map<std::string, std::shared_ptr<const Plan>, std::less<>> plans_;
  std::map<std::pair<BackendKind, const rel::Table*>,
           std::unique_ptr<Executor>>
      executors_;
};

}  // namespace bbpim::db
