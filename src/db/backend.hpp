// Backend registry of the bbpim::db facade.
//
// A session routes every query to one of five executors: the three PIM
// engine variants of the paper (one-xb, two-xb, and the PIMDB baseline of
// [1]), the MonetDB-like columnar cost model, and the scalar reference
// executor that serves as the semantics oracle. Backend selection is a
// runtime choice — the PIMDB comparison of the paper only makes sense when
// the same bound query can be replayed against any of them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "engine/latency_model.hpp"

namespace bbpim::db {

enum class BackendKind : std::uint8_t {
  kOneXb,      ///< record in one crossbar row + aggregation circuit
  kTwoXb,      ///< vertical partitioning across two aligned page sets
  kPimdb,      ///< bit-serial bulk-bitwise aggregation (PIMDB baseline)
  kColumnar,   ///< MonetDB-like columnar scan cost model (mnt-join)
  kReference,  ///< scalar scan oracle (exact rows, no cost model)
};

const char* backend_name(BackendKind kind);

/// Inverse of backend_name; nullopt for unknown names.
std::optional<BackendKind> parse_backend(std::string_view name);

/// Every backend, in the order of the paper's Fig. 6 bars.
std::span<const BackendKind> all_backends();

/// The three PIM-resident backends only.
std::span<const BackendKind> pim_backends();

/// The engine variant behind a PIM backend; nullopt for the host baselines.
std::optional<engine::EngineKind> engine_kind_of(BackendKind kind);

/// The backend wrapping an engine variant.
BackendKind backend_of(engine::EngineKind kind);

}  // namespace bbpim::db
