#include "db/service.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "engine/fault_injector.hpp"

namespace bbpim::db {
namespace {

/// Rendezvous for warm_up: each worker executes exactly one warm task
/// because no worker can finish its task before every worker has one.
/// Cancellable: when warm_up fails to enqueue the full set (shutdown raced
/// it), the workers already parked here must be released or the drain in
/// shutdown() would join forever.
struct WarmBarrier {
  explicit WarmBarrier(std::size_t n) : remaining(n) {}

  void arrive_and_wait() {
    std::unique_lock lock(mutex);
    if (--remaining == 0 || cancelled) {
      cv.notify_all();
    } else {
      cv.wait(lock, [&] { return remaining == 0 || cancelled; });
    }
  }

  void cancel() {
    std::lock_guard lock(mutex);
    cancelled = true;
    cv.notify_all();
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining;
  bool cancelled = false;
};

std::uint64_t wall_us(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

QueryService::QueryService(Database& db, QueryServiceOptions opts)
    : db_(&db), opts_(std::move(opts)) {
  std::size_t workers = opts_.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }

  // One ModelCache across the pool: either the caller's, or one built from
  // the template's disk-cache settings. Without this, every worker would run
  // its own fitting campaign — the exact duplication fit-once exists to stop.
  model_cache_ = opts_.session.models;
  if (model_cache_ == nullptr) {
    model_cache_ = std::make_shared<ModelCache>(opts_.session.model_cache_dir,
                                                opts_.session.model_cache_tag);
  }

  sessions_.reserve(workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    SessionOptions worker_opts = opts_.session;
    worker_opts.models = model_cache_;
    sessions_.push_back(std::make_unique<Session>(*db_, std::move(worker_opts)));
  }
  try {
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  } catch (...) {
    // Thread creation failed partway (e.g. EAGAIN): shut the partial pool
    // down before rethrowing, or destroying the joinable threads would
    // std::terminate.
    {
      std::lock_guard lock(mutex_);
      accepting_ = false;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

QueryService::~QueryService() { shutdown(); }

std::future<ResultSet> QueryService::enqueue(Task task) {
  std::future<ResultSet> result = task.result.get_future();
  const AdmissionOptions& adm = opts_.admission;
  std::optional<Task> shed_victim;
  {
    std::unique_lock lock(mutex_);
    if (!accepting_) {
      throw ServiceStopped("QueryService: submit after shutdown");
    }
    if (!task.internal && adm.max_queue_depth > 0 &&
        external_queued_ >= adm.max_queue_depth) {
      switch (adm.policy) {
        case OverloadPolicy::kReject:
          ++counters_.rejected;
          throw OverloadError("QueryService: queue full (policy kReject)");
        case OverloadPolicy::kBlock: {
          const bool room = queue_not_full_.wait_for(
              lock, std::chrono::microseconds(adm.block_timeout_us), [&] {
                return !accepting_ ||
                       external_queued_ < adm.max_queue_depth;
              });
          if (!accepting_) {
            throw ServiceStopped(
                "QueryService: shutdown while blocked on admission");
          }
          if (!room) {
            ++counters_.rejected;
            throw OverloadError(
                "QueryService: queue full (kBlock wait timed out)");
          }
          break;
        }
        case OverloadPolicy::kShedOldest: {
          // The head of the queue is the longest-waiting statement; sweep
          // past internal tasks (they bypass admission and must run).
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->internal) continue;
            shed_victim = std::move(*it);
            queue_.erase(it);
            --external_queued_;
            ++counters_.shed;
            break;
          }
          break;
        }
      }
    }
    task.enqueued = std::chrono::steady_clock::now();
    if (!task.internal) {
      ++external_queued_;
      counters_.peak_queue_depth =
          std::max(counters_.peak_queue_depth, external_queued_);
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  // Settle outside the lock: the submitter waiting on this future may react
  // by grabbing service state.
  if (shed_victim.has_value()) {
    shed_victim->result.set_exception(std::make_exception_ptr(OverloadError(
        "QueryService: shed by a newer submission (policy kShedOldest)")));
  }
  return result;
}

std::future<ResultSet> QueryService::submit(std::string sql_text,
                                            const engine::ExecOptions& opts) {
  Task task;
  task.batchable = true;
  task.sql = std::move(sql_text);
  // Arm the deadline NOW: queue wait counts against it. The armed token
  // rides inside the options the worker executes with.
  engine::ExecOptions eopts = opts;
  eopts.cancel = engine::resolve_cancel(opts);
  task.opts = eopts;
  task.cancel = eopts.cancel;
  task.run = [sql = task.sql, eopts](Session& session) {
    return session.execute(sql, eopts);
  };
  return enqueue(std::move(task));
}

std::future<ResultSet> QueryService::submit(std::string sql_text,
                                            BackendKind backend,
                                            const engine::ExecOptions& opts) {
  Task task;
  task.batchable = true;
  task.sql = std::move(sql_text);
  task.has_backend = true;
  task.backend = backend;
  engine::ExecOptions eopts = opts;
  eopts.cancel = engine::resolve_cancel(opts);
  task.opts = eopts;
  task.cancel = eopts.cancel;
  task.run = [sql = task.sql, backend, eopts](Session& session) {
    return session.execute(sql, backend, eopts);
  };
  return enqueue(std::move(task));
}

std::vector<ResultSet> QueryService::drain(
    std::vector<std::future<ResultSet>> futures) {
  std::vector<ResultSet> out;
  out.reserve(futures.size());
  std::exception_ptr first_error;
  for (std::future<ResultSet>& f : futures) {
    try {
      out.push_back(f.get());
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
      out.emplace_back();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return out;
}

std::vector<ResultSet> QueryService::execute_batch(
    std::span<const std::string> sqls) {
  std::vector<std::future<ResultSet>> futures;
  futures.reserve(sqls.size());
  for (const std::string& sql : sqls) futures.push_back(submit(sql));
  return drain(std::move(futures));
}

std::vector<ResultSet> QueryService::execute_batch(
    std::span<const std::string> sqls, BackendKind backend) {
  std::vector<std::future<ResultSet>> futures;
  futures.reserve(sqls.size());
  for (const std::string& sql : sqls) futures.push_back(submit(sql, backend));
  return drain(std::move(futures));
}

void QueryService::warm_up(BackendKind backend) {
  // One warm-up at a time: two interleaved barriers on one FIFO queue could
  // each capture half the workers and park them forever.
  std::lock_guard warm_lock(warm_mutex_);
  const auto barrier = std::make_shared<WarmBarrier>(sessions_.size());
  std::vector<std::future<ResultSet>> futures;
  futures.reserve(sessions_.size());
  try {
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      Task warm_task;
      warm_task.internal = true;
      warm_task.run = [backend, barrier](Session& session) {
        // Always arrive, even on failure: a worker that threw before the
        // barrier would otherwise park its siblings forever.
        std::exception_ptr error;
        try {
          // First touch: the worker pins the table's current snapshot (the
          // shared store loads once, on whichever worker gets there first)
          // and allocates its private scratch pages — outside the caller's
          // timed region. No replay happens here or later: serving a newer
          // version is a snapshot re-pin, not a log replay.
          session.executor(backend);
          if (const auto kind = engine_kind_of(backend)) {
            session.models(*kind);  // fit-once across the pool
          }
        } catch (...) {
          error = std::current_exception();
        }
        barrier->arrive_and_wait();
        if (error != nullptr) std::rethrow_exception(error);
        return ResultSet();
      };
      futures.push_back(enqueue(std::move(warm_task)));
    }
  } catch (...) {
    // shutdown() raced us mid-enqueue: a partial barrier can never fill, so
    // release the workers already parked in it, let the queued remainder
    // finish, then surface the shutdown error.
    barrier->cancel();
    for (std::future<ResultSet>& f : futures) {
      try {
        f.get();
      } catch (...) {
        // already reporting the enqueue failure
      }
    }
    throw;
  }
  for (std::future<ResultSet>& f : futures) f.get();
}

void QueryService::shutdown() {
  // Sweep still-queued external statements out before the workers drain:
  // their submitters get a prompt typed answer instead of a shutdown-length
  // wait. Internal (warm-up) tasks stay queued — each holds a seat in a
  // WarmBarrier that must fill before any of its siblings can finish.
  std::vector<Task> orphans;
  {
    std::lock_guard lock(mutex_);
    accepting_ = false;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->internal) {
        ++it;
        continue;
      }
      orphans.push_back(std::move(*it));
      it = queue_.erase(it);
      --external_queued_;
    }
  }
  work_available_.notify_all();
  queue_not_full_.notify_all();
  for (Task& t : orphans) {
    t.result.set_exception(std::make_exception_ptr(
        ServiceStopped("QueryService: shutdown before execution")));
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mutex_);
    workers.swap(workers_);  // first caller joins; later calls are no-ops
  }
  for (std::thread& w : workers) w.join();
}

std::size_t QueryService::executed_count() const {
  std::lock_guard lock(mutex_);
  return executed_;
}

std::size_t QueryService::queue_depth() const {
  std::lock_guard lock(mutex_);
  return external_queued_;
}

QueryService::Counters QueryService::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

void QueryService::settle_success(Task& task, ResultSet rs) {
  if (!task.internal) {
    const auto now = std::chrono::steady_clock::now();
    rs.set_service_timing(wall_us(task.enqueued, task.dequeued),
                          wall_us(task.dequeued, now));
  }
  // Count before fulfilling the promise: a caller that drained its future
  // must never read an executed_count below what it submitted.
  {
    std::lock_guard lock(mutex_);
    ++executed_;
  }
  task.result.set_value(std::move(rs));
}

void QueryService::settle_error(Task& task, std::exception_ptr error) {
  {
    std::lock_guard lock(mutex_);
    ++executed_;
    try {
      std::rethrow_exception(error);
    } catch (const engine::QueryCancelled&) {
      ++counters_.cancelled;
    } catch (const engine::QueryTimeout&) {
      ++counters_.timed_out;
    } catch (...) {
    }
  }
  task.result.set_exception(std::move(error));
}

void QueryService::run_task(Session& session, Task& task,
                            std::size_t consumed_attempts) {
  const RetryOptions& retry = opts_.retry;
  for (std::size_t attempt = consumed_attempts;; ++attempt) {
    try {
      // A deadline that expired during backoff (or while queued) settles
      // here instead of burning a full execution.
      if (task.cancel.valid()) task.cancel.check();
      settle_success(task, task.run(session));
      return;
    } catch (const engine::TransientFault&) {
      if (attempt >= retry.max_retries) {
        settle_error(task, std::current_exception());
        return;
      }
      {
        std::lock_guard lock(mutex_);
        ++counters_.retries;
      }
      const std::uint64_t backoff = std::min(
          retry.backoff_base_us << attempt, retry.backoff_cap_us);
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      }
    } catch (...) {
      settle_error(task, std::current_exception());
      return;
    }
  }
}

void QueryService::worker_loop(std::size_t index) {
  Session& session = *sessions_[index];
  const SharedScanOptions& shared = opts_.shared_scan;
  const AdmissionOptions& adm = opts_.admission;
  for (;;) {
    std::vector<Task> batch;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [&] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) return;  // shutdown requested and queue drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      batch.front().dequeued = std::chrono::steady_clock::now();
      if (!batch.front().internal) {
        --external_queued_;
        queue_not_full_.notify_one();
      }
      // Batch former: gather the other in-flight statements whose admission
      // signature matches the one just popped. The queue is drained of
      // compatible tasks first; when it runs dry the worker waits out the
      // remainder of the gather window for stragglers. Incompatible tasks
      // stay queued for other workers (or for this one's next iteration).
      if (shared.enabled && shared.max_batch > 1 && batch.front().batchable) {
        // Copies, not references: gathering grows `batch`, which would
        // invalidate a reference into it.
        const bool head_has_backend = batch.front().has_backend;
        const BackendKind head_backend = batch.front().backend;
        const engine::ExecOptions head_opts = batch.front().opts;
        std::uint64_t window_us = shared.gather_window_us;
        // Graceful degradation: a queue past half its bound widens the
        // window so more statements fuse into each page pass — throughput
        // over latency, before admission has to shed anything.
        if (adm.max_queue_depth > 0 && shared.overload_window_boost > 1 &&
            external_queued_ >= (adm.max_queue_depth + 1) / 2) {
          window_us *= shared.overload_window_boost;
          ++counters_.degraded_gathers;
        }
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::microseconds(window_us);
        while (batch.size() < shared.max_batch) {
          bool gathered = false;
          for (auto it = queue_.begin();
               it != queue_.end() && batch.size() < shared.max_batch;) {
            if (it->batchable && it->has_backend == head_has_backend &&
                it->backend == head_backend && it->opts == head_opts) {
              it->dequeued = std::chrono::steady_clock::now();
              if (!it->internal) {
                --external_queued_;
                queue_not_full_.notify_one();
              }
              batch.push_back(std::move(*it));
              it = queue_.erase(it);
              gathered = true;
            } else {
              ++it;
            }
          }
          if (batch.size() >= shared.max_batch) break;
          if (!accepting_) break;  // never stall shutdown for the window
          if (!gathered &&
              work_available_.wait_until(lock, deadline) ==
                  std::cv_status::timeout) {
            break;
          }
        }
      }
    }
    // Statements already dead at dequeue (deadline spent in the queue,
    // caller cancelled) settle typed without costing an execution — and
    // without dragging live batchmates through a doomed fused pass.
    std::vector<Task> live;
    live.reserve(batch.size());
    for (Task& t : batch) {
      if (!t.internal && t.cancel.valid() && t.cancel.should_stop()) {
        try {
          t.cancel.check();
        } catch (...) {
          settle_error(t, std::current_exception());
        }
      } else {
        live.push_back(std::move(t));
      }
    }
    if (live.empty()) continue;
    if (live.size() > 1) {
      serve_batch(session, live);
      continue;
    }
    run_task(session, live.front());
  }
}

void QueryService::serve_batch(Session& session, std::vector<Task>& batch) {
  std::vector<std::string> sqls;
  std::vector<engine::CancelToken> cancels;
  sqls.reserve(batch.size());
  cancels.reserve(batch.size());
  bool any_token = false;
  for (const Task& t : batch) {
    sqls.push_back(t.sql);
    cancels.push_back(t.cancel);
    any_token |= t.cancel.valid();
  }
  if (!any_token) cancels.clear();
  // The head's armed token must not leak into the shared options: members
  // carry their own (or none) through `cancels`.
  engine::ExecOptions shared_opts = batch.front().opts;
  shared_opts.cancel = engine::CancelToken{};
  shared_opts.deadline_us = 0;

  std::vector<Session::BatchItem> items;
  try {
    items = batch.front().has_backend
                ? session.execute_batch(sqls, batch.front().backend,
                                        shared_opts, cancels)
                : session.execute_batch(sqls, shared_opts, cancels);
  } catch (const engine::TransientFault&) {
    // The batch entry point failed before per-statement isolation (snapshot
    // pin, plan-cache claim) on something retryable: re-run every member
    // solo; run_task retries within the budget and settles each promise.
    for (Task& t : batch) {
      {
        std::lock_guard lock(mutex_);
        ++counters_.retries;
      }
      run_task(session, t, /*consumed_attempts=*/1);
    }
    return;
  } catch (...) {
    // Permanent service-level fault (per-statement problems come back as
    // items): every member gets it.
    const std::exception_ptr error = std::current_exception();
    for (Task& t : batch) settle_error(t, error);
    return;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (items[i].error == nullptr) {
      settle_success(batch[i], std::move(items[i].result));
      continue;
    }
    bool transient = false;
    try {
      std::rethrow_exception(items[i].error);
    } catch (const engine::TransientFault&) {
      transient = true;
    } catch (...) {
    }
    if (transient && opts_.retry.max_retries > 0) {
      // This member already burned one transient attempt inside the batch;
      // its solo re-execution is retry #1 against the same budget.
      {
        std::lock_guard lock(mutex_);
        ++counters_.retries;
      }
      run_task(session, batch[i], /*consumed_attempts=*/1);
    } else {
      settle_error(batch[i], items[i].error);
    }
  }
}

}  // namespace bbpim::db
