#include "db/service.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

namespace bbpim::db {
namespace {

/// Rendezvous for warm_up: each worker executes exactly one warm task
/// because no worker can finish its task before every worker has one.
/// Cancellable: when warm_up fails to enqueue the full set (shutdown raced
/// it), the workers already parked here must be released or the drain in
/// shutdown() would join forever.
struct WarmBarrier {
  explicit WarmBarrier(std::size_t n) : remaining(n) {}

  void arrive_and_wait() {
    std::unique_lock lock(mutex);
    if (--remaining == 0 || cancelled) {
      cv.notify_all();
    } else {
      cv.wait(lock, [&] { return remaining == 0 || cancelled; });
    }
  }

  void cancel() {
    std::lock_guard lock(mutex);
    cancelled = true;
    cv.notify_all();
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining;
  bool cancelled = false;
};

}  // namespace

QueryService::QueryService(Database& db, QueryServiceOptions opts)
    : db_(&db), opts_(std::move(opts)) {
  std::size_t workers = opts_.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }

  // One ModelCache across the pool: either the caller's, or one built from
  // the template's disk-cache settings. Without this, every worker would run
  // its own fitting campaign — the exact duplication fit-once exists to stop.
  model_cache_ = opts_.session.models;
  if (model_cache_ == nullptr) {
    model_cache_ = std::make_shared<ModelCache>(opts_.session.model_cache_dir,
                                                opts_.session.model_cache_tag);
  }

  sessions_.reserve(workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    SessionOptions worker_opts = opts_.session;
    worker_opts.models = model_cache_;
    sessions_.push_back(std::make_unique<Session>(*db_, std::move(worker_opts)));
  }
  try {
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  } catch (...) {
    // Thread creation failed partway (e.g. EAGAIN): shut the partial pool
    // down before rethrowing, or destroying the joinable threads would
    // std::terminate.
    {
      std::lock_guard lock(mutex_);
      accepting_ = false;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

QueryService::~QueryService() { shutdown(); }

std::future<ResultSet> QueryService::enqueue(Task task) {
  std::future<ResultSet> result = task.result.get_future();
  {
    std::lock_guard lock(mutex_);
    if (!accepting_) {
      throw std::runtime_error("QueryService: submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return result;
}

std::future<ResultSet> QueryService::submit(std::string sql_text,
                                            const engine::ExecOptions& opts) {
  Task task;
  task.batchable = true;
  task.sql = std::move(sql_text);
  task.opts = opts;
  task.run = [sql = task.sql, opts](Session& session) {
    return session.execute(sql, opts);
  };
  return enqueue(std::move(task));
}

std::future<ResultSet> QueryService::submit(std::string sql_text,
                                            BackendKind backend,
                                            const engine::ExecOptions& opts) {
  Task task;
  task.batchable = true;
  task.sql = std::move(sql_text);
  task.has_backend = true;
  task.backend = backend;
  task.opts = opts;
  task.run = [sql = task.sql, backend, opts](Session& session) {
    return session.execute(sql, backend, opts);
  };
  return enqueue(std::move(task));
}

std::vector<ResultSet> QueryService::drain(
    std::vector<std::future<ResultSet>> futures) {
  std::vector<ResultSet> out;
  out.reserve(futures.size());
  std::exception_ptr first_error;
  for (std::future<ResultSet>& f : futures) {
    try {
      out.push_back(f.get());
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
      out.emplace_back();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return out;
}

std::vector<ResultSet> QueryService::execute_batch(
    std::span<const std::string> sqls) {
  std::vector<std::future<ResultSet>> futures;
  futures.reserve(sqls.size());
  for (const std::string& sql : sqls) futures.push_back(submit(sql));
  return drain(std::move(futures));
}

std::vector<ResultSet> QueryService::execute_batch(
    std::span<const std::string> sqls, BackendKind backend) {
  std::vector<std::future<ResultSet>> futures;
  futures.reserve(sqls.size());
  for (const std::string& sql : sqls) futures.push_back(submit(sql, backend));
  return drain(std::move(futures));
}

void QueryService::warm_up(BackendKind backend) {
  // One warm-up at a time: two interleaved barriers on one FIFO queue could
  // each capture half the workers and park them forever.
  std::lock_guard warm_lock(warm_mutex_);
  const auto barrier = std::make_shared<WarmBarrier>(sessions_.size());
  std::vector<std::future<ResultSet>> futures;
  futures.reserve(sessions_.size());
  try {
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      Task warm_task;
      warm_task.run = [backend, barrier](Session& session) {
        // Always arrive, even on failure: a worker that threw before the
        // barrier would otherwise park its siblings forever.
        std::exception_ptr error;
        try {
          // First touch: the worker pins the table's current snapshot (the
          // shared store loads once, on whichever worker gets there first)
          // and allocates its private scratch pages — outside the caller's
          // timed region. No replay happens here or later: serving a newer
          // version is a snapshot re-pin, not a log replay.
          session.executor(backend);
          if (const auto kind = engine_kind_of(backend)) {
            session.models(*kind);  // fit-once across the pool
          }
        } catch (...) {
          error = std::current_exception();
        }
        barrier->arrive_and_wait();
        if (error != nullptr) std::rethrow_exception(error);
        return ResultSet();
      };
      futures.push_back(enqueue(std::move(warm_task)));
    }
  } catch (...) {
    // shutdown() raced us mid-enqueue: a partial barrier can never fill, so
    // release the workers already parked in it, let the queued remainder
    // finish, then surface the shutdown error.
    barrier->cancel();
    for (std::future<ResultSet>& f : futures) {
      try {
        f.get();
      } catch (...) {
        // already reporting the enqueue failure
      }
    }
    throw;
  }
  for (std::future<ResultSet>& f : futures) f.get();
}

void QueryService::shutdown() {
  {
    std::lock_guard lock(mutex_);
    accepting_ = false;
  }
  work_available_.notify_all();
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mutex_);
    workers.swap(workers_);  // first caller joins; later calls are no-ops
  }
  for (std::thread& w : workers) w.join();
}

std::size_t QueryService::executed_count() const {
  std::lock_guard lock(mutex_);
  return executed_;
}

void QueryService::worker_loop(std::size_t index) {
  Session& session = *sessions_[index];
  const SharedScanOptions& shared = opts_.shared_scan;
  for (;;) {
    std::vector<Task> batch;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [&] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) return;  // shutdown requested and queue drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Batch former: gather the other in-flight statements whose admission
      // signature matches the one just popped. The queue is drained of
      // compatible tasks first; when it runs dry the worker waits out the
      // remainder of the gather window for stragglers. Incompatible tasks
      // stay queued for other workers (or for this one's next iteration).
      if (shared.enabled && shared.max_batch > 1 && batch.front().batchable) {
        // Copies, not references: gathering grows `batch`, which would
        // invalidate a reference into it.
        const bool head_has_backend = batch.front().has_backend;
        const BackendKind head_backend = batch.front().backend;
        const engine::ExecOptions head_opts = batch.front().opts;
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::microseconds(shared.gather_window_us);
        while (batch.size() < shared.max_batch) {
          bool gathered = false;
          for (auto it = queue_.begin();
               it != queue_.end() && batch.size() < shared.max_batch;) {
            if (it->batchable && it->has_backend == head_has_backend &&
                it->backend == head_backend && it->opts == head_opts) {
              batch.push_back(std::move(*it));
              it = queue_.erase(it);
              gathered = true;
            } else {
              ++it;
            }
          }
          if (batch.size() >= shared.max_batch) break;
          if (!accepting_) break;  // never stall shutdown for the window
          if (!gathered &&
              work_available_.wait_until(lock, deadline) ==
                  std::cv_status::timeout) {
            break;
          }
        }
      }
    }
    if (batch.size() > 1) {
      serve_batch(session, batch);
      continue;
    }
    Task task = std::move(batch.front());
    // Count before fulfilling the promise: a caller that drained its future
    // must never read an executed_count below what it submitted.
    try {
      ResultSet rs = task.run(session);
      {
        std::lock_guard lock(mutex_);
        ++executed_;
      }
      task.result.set_value(std::move(rs));
    } catch (...) {
      {
        std::lock_guard lock(mutex_);
        ++executed_;
      }
      task.result.set_exception(std::current_exception());
    }
  }
}

void QueryService::serve_batch(Session& session, std::vector<Task>& batch) {
  std::vector<std::string> sqls;
  sqls.reserve(batch.size());
  for (const Task& t : batch) sqls.push_back(t.sql);
  std::vector<Session::BatchItem> items;
  try {
    items = batch.front().has_backend
                ? session.execute_batch(sqls, batch.front().backend,
                                        batch.front().opts)
                : session.execute_batch(sqls, batch.front().opts);
  } catch (...) {
    // The batch entry point itself failed (per-statement problems come back
    // as items, so this is a service-level fault): every member gets it.
    const std::exception_ptr error = std::current_exception();
    for (Task& t : batch) {
      {
        std::lock_guard lock(mutex_);
        ++executed_;
      }
      t.result.set_exception(error);
    }
    return;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    {
      std::lock_guard lock(mutex_);
      ++executed_;
    }
    if (items[i].error != nullptr) {
      batch[i].result.set_exception(items[i].error);
    } else {
      batch[i].result.set_value(std::move(items[i].result));
    }
  }
}

}  // namespace bbpim::db
