// SnapshotManager: one shared builder store + published MVCC snapshots per
// (table, PIM placement/config).
//
// This is the db half of the snapshot subsystem (engine/snapshot_store has
// the immutable bodies). The manager owns the single mutable builder
// PimStore for a table and turns the shared update log (Database's
// TableWrites) into a sequence of immutable StoreSnapshots:
//
//   acquire()       returns the snapshot reflecting the committed log
//                   prefix, replaying any suffix into the builder first and
//                   publishing once per burst. Executors call this only
//                   when their pinned version is behind — the per-read fast
//                   path is a lock-free atomic check they do themselves.
//   apply_update()  the writer path: exclusive gate, catch-up, Algorithm-1
//                   update on the builder (copy-on-write detaches only the
//                   crossbars whose bits change), log append, atomic
//                   commit, publish.
//
// Reclamation is epoch-by-refcount: executors pin a snapshot by holding
// its shared_ptr, publishing drops the manager's reference to the previous
// version, and the retired snapshot (plus every crossbar segment only it
// still references) is destroyed when the last pinned reader drains.
// live_snapshots() observes that for the lifecycle tests.
//
// Lock order everywhere: manager mutex_ -> TableWrites::gate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "db/database.hpp"
#include "engine/pim_store.hpp"
#include "engine/prejoin.hpp"
#include "engine/snapshot_store.hpp"
#include "host/config.hpp"
#include "pim/config.hpp"

namespace bbpim::db {

class SnapshotManager {
 public:
  /// `policy` and `writes` must outlive the manager (they live in the
  /// Database that owns it).
  SnapshotManager(const rel::Table& table, const LoadPolicy& policy,
                  TableWrites& writes, bool two_crossbar,
                  const pim::PimConfig& pim_cfg);

  /// The snapshot reflecting the currently committed update-log prefix.
  /// Builds the builder store on first call (lazy, like executor stores
  /// were); replays any unapplied committed suffix and publishes a new
  /// version when behind. `hcfg` parameterizes replayed updates' simulated
  /// cost only — the functional result is config-independent.
  std::shared_ptr<const engine::StoreSnapshot> acquire(
      const host::HostConfig& hcfg);

  /// Applies one UPDATE: exclusive writer gate, catch-up, Algorithm-1
  /// rewrite of the builder (CoW leaves pinned snapshots untouched), log
  /// append + atomic commit, publish. Returns the update's simulated stats;
  /// `version_out` (if non-null) receives its position in the log.
  engine::UpdateStats apply_update(const sql::BoundUpdate& update,
                                   const host::HostConfig& hcfg,
                                   std::uint64_t* version_out);

  /// PimStore options a view over this manager's snapshots must use
  /// (placement and stats cap must match the builder's).
  engine::PimStore::Options store_options() const;

  const rel::Table& table() const { return *table_; }

  /// Snapshots currently alive (published by this manager and not yet
  /// reclaimed). At quiescence with N pinned executors on the current
  /// version this is 1; it exceeds 1 only while stale readers still pin
  /// retired versions.
  std::int64_t live_snapshots() const {
    return live_->load(std::memory_order_acquire);
  }
  /// Versions published so far (monotone; diagnostics/tests).
  std::uint64_t published_count() const {
    return published_.load(std::memory_order_acquire);
  }

 private:
  void ensure_builder_locked();
  /// Replays the committed suffix into the builder, appending each entry's
  /// updated attribute to `touched`. Caller holds mutex_ and the gate.
  void catch_up_locked(const host::HostConfig& hcfg,
                       std::vector<std::size_t>* touched);
  /// Publishes the builder's state as version `applied_`. Caller holds
  /// mutex_; `touched` lists attributes updated since the previous publish.
  void publish_locked(const std::vector<std::size_t>& touched);
  /// Part of an attribute under the table's load policy (the builder's
  /// vertical split rule; used to validate updates for every engine kind).
  int policy_part(const std::string& attr_name) const;
  void validate_parts(const sql::BoundUpdate& update) const;

  const rel::Table* table_;
  const LoadPolicy* policy_;
  TableWrites* writes_;
  bool two_crossbar_;
  pim::PimConfig pim_cfg_;

  std::mutex mutex_;
  std::unique_ptr<pim::PimModule> module_;      ///< builder's module
  std::unique_ptr<engine::PimStore> builder_;   ///< lazily built
  std::uint64_t applied_ = 0;   ///< log prefix applied to the builder
  std::shared_ptr<const engine::StoreSnapshot> current_;
  std::shared_ptr<std::atomic<std::int64_t>> live_;
  std::atomic<std::uint64_t> published_{0};
};

}  // namespace bbpim::db
