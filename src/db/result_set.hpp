// ResultSet: typed, dictionary-decoding view of a query result.
//
// The engines return group-attribute codes (engine::ResultRow); the facade
// wraps them with the column metadata of the bound query so callers read
// strings and integers without touching schemas or dictionaries. The
// simulated execution costs (QueryStats) ride along. Self-contained value
// type: safe to keep after the session that produced it is gone.
//
// An UPDATE statement also yields a ResultSet: zero rows, is_update() true,
// and update_stats() carrying the Algorithm-1 cost record. Both kinds carry
// data_version() — the number of updates the producing execution observed
// on its target table — which is what the HTAP benches use to match
// concurrent results against a serial oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "db/backend.hpp"
#include "engine/prejoin.hpp"
#include "engine/query_exec.hpp"
#include "relational/dictionary.hpp"

namespace bbpim::db {

class ResultSet {
 public:
  struct Column {
    std::string name;
    bool is_agg = false;
    /// Present for dictionary-encoded (string) group columns.
    std::shared_ptr<const rel::Dictionary> dict;
  };

  ResultSet() = default;
  ResultSet(engine::QueryOutput out, std::vector<Column> columns,
            BackendKind backend);
  /// UPDATE result: no rows/columns, stats of the Algorithm-1 execution.
  ResultSet(engine::UpdateStats update, BackendKind backend);

  std::size_t row_count() const { return out_.rows.size(); }
  std::size_t column_count() const { return columns_.size(); }
  const std::string& column_name(std::size_t col) const;
  bool is_agg_column(std::size_t col) const;
  std::optional<std::size_t> column_index(std::string_view name) const;
  const std::vector<Column>& columns() const { return columns_; }

  /// Raw attribute code of a group column; the aggregate cast to uint64.
  std::uint64_t code(std::size_t row, std::size_t col) const;
  /// Signed value: the aggregate, or a group code (exact for int columns).
  std::int64_t integer(std::size_t row, std::size_t col) const;
  /// Display form: dictionary-decoded for string columns, numeric otherwise.
  std::string text(std::size_t row, std::size_t col) const;

  BackendKind backend() const { return backend_; }
  /// Simulated query costs; throws std::logic_error on UPDATE results
  /// (symmetric with update_stats() — a silent all-zero QueryStats would
  /// skew any mixed-workload aggregate that forgot to branch).
  const engine::QueryStats& stats() const;
  const std::vector<engine::ResultRow>& rows() const { return out_.rows; }
  const engine::QueryOutput& output() const { return out_; }

  // --- UPDATE results ------------------------------------------------------
  bool is_update() const { return update_stats_.has_value(); }
  /// Algorithm-1 cost record; throws std::logic_error on SELECT results.
  const engine::UpdateStats& update_stats() const;
  /// Records rewritten (0 for SELECT results).
  std::size_t updated_records() const {
    return update_stats_ ? update_stats_->updated_records : 0;
  }

  // --- zone-map pruning effectiveness (0 for UPDATEs / host baselines) ----
  /// Pages the filter phase skipped outright via zone-map sketches.
  std::size_t pages_skipped() const {
    return is_update() ? 0 : out_.stats.pages_skipped;
  }
  /// Valid crossbars inside those pages.
  std::size_t crossbars_skipped() const {
    return is_update() ? 0 : out_.stats.crossbars_skipped;
  }
  /// (predicate, page) evaluations resolved statically.
  std::size_t predicates_short_circuited() const {
    return is_update() ? 0 : out_.stats.predicates_short_circuited;
  }

  // --- shared-scan batching (0 for UPDATEs / solo executions) --------------
  /// Queries fused into the batch this query executed with, itself included
  /// (0 = executed solo, today's path).
  std::size_t batched_queries() const {
    return is_update() ? 0 : out_.stats.batched_queries;
  }
  /// Filter-phase page visits that also served at least one batchmate.
  std::size_t fused_page_passes() const {
    return is_update() ? 0 : out_.stats.fused_page_passes;
  }
  /// Pages whose zone-map classification was reused from the store's
  /// classification memo instead of recomputed.
  std::size_t classification_memo_hits() const {
    return is_update() ? 0 : out_.stats.classification_memo_hits;
  }
  /// Shared-scan members re-executed solo after a batchmate failed the
  /// fused pass (1 on such a result, else 0).
  std::size_t batch_fallbacks() const {
    return is_update() ? 0 : out_.stats.batch_fallbacks;
  }

  // --- serving-layer wall timings (0 unless served by db::QueryService) ----
  /// Wall microseconds between submit() and a worker dequeuing the statement.
  std::uint64_t queue_wait_us() const { return queue_wait_us_; }
  /// Wall microseconds the worker spent executing it (retries included).
  std::uint64_t service_us() const { return service_us_; }
  /// Facade-internal (set by db::QueryService when it settles the future).
  void set_service_timing(std::uint64_t queue_wait_us,
                          std::uint64_t service_us) {
    queue_wait_us_ = queue_wait_us;
    service_us_ = service_us;
    if (!is_update()) {
      out_.stats.queue_wait_us = queue_wait_us;
      out_.stats.service_us = service_us;
    }
  }

  /// Target-table data version this execution observed: the number of
  /// committed updates replayed into the executing store (for an UPDATE,
  /// including itself — its position in the table's update log). 0 for
  /// backends without update support and for pre-update-era results.
  std::uint64_t data_version() const { return data_version_; }
  /// Facade-internal (set by PreparedStatement::execute).
  void set_data_version(std::uint64_t version) { data_version_ = version; }

  /// Join results: the (table name, data version) pair each per-table scan
  /// was pinned to — exactly one consistent snapshot per touched table.
  /// Empty for single-table results. data_version() is the fact table's.
  const std::vector<std::pair<std::string, std::uint64_t>>& table_versions()
      const {
    return table_versions_;
  }
  void set_table_versions(
      std::vector<std::pair<std::string, std::uint64_t>> versions) {
    table_versions_ = std::move(versions);
  }

 private:
  const engine::ResultRow& row(std::size_t r) const;

  engine::QueryOutput out_;
  std::vector<Column> columns_;
  BackendKind backend_ = BackendKind::kReference;
  std::optional<engine::UpdateStats> update_stats_;
  std::uint64_t data_version_ = 0;
  std::uint64_t queue_wait_us_ = 0;
  std::uint64_t service_us_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> table_versions_;
};

}  // namespace bbpim::db
