// ResultSet: typed, dictionary-decoding view of a query result.
//
// The engines return group-attribute codes (engine::ResultRow); the facade
// wraps them with the column metadata of the bound query so callers read
// strings and integers without touching schemas or dictionaries. The
// simulated execution costs (QueryStats) ride along. Self-contained value
// type: safe to keep after the session that produced it is gone.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "db/backend.hpp"
#include "engine/query_exec.hpp"
#include "relational/dictionary.hpp"

namespace bbpim::db {

class ResultSet {
 public:
  struct Column {
    std::string name;
    bool is_agg = false;
    /// Present for dictionary-encoded (string) group columns.
    std::shared_ptr<const rel::Dictionary> dict;
  };

  ResultSet() = default;
  ResultSet(engine::QueryOutput out, std::vector<Column> columns,
            BackendKind backend);

  std::size_t row_count() const { return out_.rows.size(); }
  std::size_t column_count() const { return columns_.size(); }
  const std::string& column_name(std::size_t col) const;
  bool is_agg_column(std::size_t col) const;
  std::optional<std::size_t> column_index(std::string_view name) const;
  const std::vector<Column>& columns() const { return columns_; }

  /// Raw attribute code of a group column; the aggregate cast to uint64.
  std::uint64_t code(std::size_t row, std::size_t col) const;
  /// Signed value: the aggregate, or a group code (exact for int columns).
  std::int64_t integer(std::size_t row, std::size_t col) const;
  /// Display form: dictionary-decoded for string columns, numeric otherwise.
  std::string text(std::size_t row, std::size_t col) const;

  BackendKind backend() const { return backend_; }
  const engine::QueryStats& stats() const { return out_.stats; }
  const std::vector<engine::ResultRow>& rows() const { return out_.rows; }
  const engine::QueryOutput& output() const { return out_; }

 private:
  const engine::ResultRow& row(std::size_t r) const;

  engine::QueryOutput out_;
  std::vector<Column> columns_;
  BackendKind backend_ = BackendKind::kReference;
};

}  // namespace bbpim::db
