// PreparedStatement: parse/bind once, execute many times.
//
// A cheap copyable handle over an immutable plan in the session's cache
// (keyed by SQL text). Re-execution skips the front-end entirely; the
// simulator is deterministic, so re-running a statement reproduces rows
// and stats exactly.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "db/backend.hpp"
#include "db/result_set.hpp"
#include "engine/query_exec.hpp"
#include "relational/table.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::db {

class Session;

/// A parsed and bound query pinned to its target relation. Immutable and
/// shared between the session's plan cache and every statement handle.
struct Plan {
  std::string sql;
  sql::BoundQuery bound;
  const rel::Table* target = nullptr;
};

class PreparedStatement {
 public:
  PreparedStatement() = default;

  /// Executes on the session's default backend.
  ResultSet execute(const engine::ExecOptions& opts = {}) const;
  /// Executes on an explicit backend.
  ResultSet execute(BackendKind backend,
                    const engine::ExecOptions& opts = {}) const;

  const std::string& sql() const { return plan().sql; }
  const sql::BoundQuery& bound() const { return plan().bound; }
  const rel::Table& target() const { return *plan().target; }

 private:
  friend class Session;

  const Plan& plan() const {
    if (plan_ == nullptr) {
      throw std::logic_error("PreparedStatement: not prepared by a session");
    }
    return *plan_;
  }
  PreparedStatement(Session& session, std::shared_ptr<const Plan> plan)
      : session_(&session), plan_(std::move(plan)) {}

  Session* session_ = nullptr;
  std::shared_ptr<const Plan> plan_;
};

}  // namespace bbpim::db
