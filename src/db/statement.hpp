// PreparedStatement: parse/bind once, execute many times.
//
// A cheap copyable handle over an immutable plan in the session's cache
// (keyed by SQL text). Re-execution skips the front-end entirely; the
// simulator is deterministic, so re-running a statement reproduces rows
// and stats exactly. A plan is either a SELECT (bound query) or an UPDATE
// (bound mutation); executing an UPDATE returns an UpdateStats-backed
// ResultSet and advances the target table's data version.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "db/backend.hpp"
#include "db/result_set.hpp"
#include "engine/query_exec.hpp"
#include "relational/table.hpp"
#include "sql/ast.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::db {

class Session;

/// A parsed and bound statement pinned to its target relation(s). Immutable
/// and shared between the Database-scope plan cache, every session's local
/// cache, and every statement handle.
struct Plan {
  std::string sql;
  sql::Statement::Kind kind = sql::Statement::Kind::kSelect;
  sql::BoundQuery bound;        ///< single-table kSelect only
  sql::BoundUpdate update;      ///< kUpdate only
  const rel::Table* target = nullptr;  ///< single-table target / join fact

  /// Multi-table SELECT over registered tables: the star join plan and the
  /// catalog tables it touches, aligned with join.table_names. Empty for
  /// single-table plans.
  sql::BoundJoin join;
  std::vector<const rel::Table*> join_tables;

  bool is_join() const { return !join_tables.empty(); }
};

class PreparedStatement {
 public:
  PreparedStatement() = default;

  /// Executes on the session's default backend.
  ResultSet execute(const engine::ExecOptions& opts = {}) const;
  /// Executes on an explicit backend. UPDATE statements require a PIM
  /// backend (the host baselines read the immutable catalog table and
  /// cannot observe crossbar mutation).
  ResultSet execute(BackendKind backend,
                    const engine::ExecOptions& opts = {}) const;

  const std::string& sql() const { return plan().sql; }
  bool is_update() const {
    return plan().kind == sql::Statement::Kind::kUpdate;
  }
  /// Multi-table SELECT bound through the join planner?
  bool is_join() const { return plan().is_join(); }
  /// Bound single-table SELECT; throws std::logic_error for UPDATE and
  /// multi-table statements.
  const sql::BoundQuery& bound() const {
    if (is_update()) {
      throw std::logic_error("PreparedStatement::bound: UPDATE statement");
    }
    if (is_join()) {
      throw std::logic_error(
          "PreparedStatement::bound: multi-table statement (use join())");
    }
    return plan().bound;
  }
  /// Bound join plan; throws std::logic_error for single-table statements.
  const sql::BoundJoin& join() const {
    if (!is_join()) {
      throw std::logic_error("PreparedStatement::join: single-table statement");
    }
    return plan().join;
  }
  /// Bound UPDATE; throws std::logic_error for SELECT statements.
  const sql::BoundUpdate& bound_update() const {
    if (!is_update()) {
      throw std::logic_error(
          "PreparedStatement::bound_update: SELECT statement");
    }
    return plan().update;
  }
  const rel::Table& target() const { return *plan().target; }

 private:
  friend class Session;

  const Plan& plan() const {
    if (plan_ == nullptr) {
      throw std::logic_error("PreparedStatement: not prepared by a session");
    }
    return *plan_;
  }
  PreparedStatement(Session& session, std::shared_ptr<const Plan> plan)
      : session_(&session), plan_(std::move(plan)) {}

  Session* session_ = nullptr;
  std::shared_ptr<const Plan> plan_;
};

}  // namespace bbpim::db
