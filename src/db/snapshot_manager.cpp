#include "db/snapshot_manager.hpp"

#include <shared_mutex>
#include <stdexcept>
#include <utility>

#include "engine/fault_injector.hpp"

namespace bbpim::db {

SnapshotManager::SnapshotManager(const rel::Table& table,
                                 const LoadPolicy& policy, TableWrites& writes,
                                 bool two_crossbar,
                                 const pim::PimConfig& pim_cfg)
    : table_(&table),
      policy_(&policy),
      writes_(&writes),
      two_crossbar_(two_crossbar),
      pim_cfg_(pim_cfg),
      live_(std::make_shared<std::atomic<std::int64_t>>(0)) {}

engine::PimStore::Options SnapshotManager::store_options() const {
  engine::PimStore::Options o;
  o.two_crossbar = two_crossbar_;
  o.max_distinct = policy_->max_distinct;
  if (policy_->part_of) o.part_of = policy_->part_of;
  return o;
}

void SnapshotManager::ensure_builder_locked() {
  if (builder_ != nullptr) return;
  module_ = std::make_unique<pim::PimModule>(pim_cfg_);
  builder_ =
      std::make_unique<engine::PimStore>(*module_, *table_, store_options());
}

void SnapshotManager::catch_up_locked(const host::HostConfig& hcfg,
                                      std::vector<std::size_t>* touched) {
  if (applied_ == writes_->log.size()) return;
  const auto mutation = builder_->lock_mutation();
  for (; applied_ < writes_->log.size(); ++applied_) {
    const sql::BoundUpdate& u = writes_->log[applied_];
    engine::pim_update(*builder_, hcfg, u.filters, u.attr, u.value);
    touched->push_back(u.attr);
  }
}

void SnapshotManager::publish_locked(const std::vector<std::size_t>& touched) {
  current_ = engine::freeze_snapshot(*builder_, applied_, current_.get(),
                                     touched, live_);
  published_.fetch_add(1, std::memory_order_acq_rel);
}

std::shared_ptr<const engine::StoreSnapshot> SnapshotManager::acquire(
    const host::HostConfig& hcfg) {
  // Fault seam: before the lock, so nothing is pinned or half-replayed when
  // an injected pin failure unwinds — a retry starts from scratch.
  engine::fault_point(engine::FaultSeam::kSnapshotPin);
  std::lock_guard<std::mutex> lock(mutex_);
  ensure_builder_locked();
  if (current_ != nullptr &&
      applied_ == writes_->committed.load(std::memory_order_acquire)) {
    return current_;
  }
  // Behind (or never published): replay the committed suffix under the
  // reader side of the gate, then publish once for the whole burst.
  std::shared_lock gate(writes_->gate);
  std::vector<std::size_t> touched;
  catch_up_locked(hcfg, &touched);
  if (current_ == nullptr || !touched.empty()) publish_locked(touched);
  return current_;
}

engine::UpdateStats SnapshotManager::apply_update(
    const sql::BoundUpdate& update, const host::HostConfig& hcfg,
    std::uint64_t* version_out) {
  // Fault seam: at entry, before any builder mutation or log append — an
  // injected commit failure leaves the store untouched, so a service retry
  // applies the update exactly once.
  engine::fault_point(engine::FaultSeam::kUpdateCommit);
  std::lock_guard<std::mutex> lock(mutex_);
  ensure_builder_locked();
  // Writer side: the exclusive gate totally orders log appends across every
  // manager sharing this table's log (one per engine placement).
  std::unique_lock gate(writes_->gate);
  std::vector<std::size_t> touched;
  catch_up_locked(hcfg, &touched);
  validate_parts(update);
  engine::UpdateStats stats;
  {
    const auto mutation = builder_->lock_mutation();
    stats = engine::pim_update(*builder_, hcfg, update.filters, update.attr,
                               update.value);
  }
  // Commit only after the local application succeeded: a throwing update
  // (validation, scratch exhaustion) must not poison the log for replicas.
  writes_->log.push_back(update);
  writes_->committed.store(writes_->log.size(), std::memory_order_release);
  ++applied_;
  touched.push_back(update.attr);
  publish_locked(touched);
  if (version_out != nullptr) *version_out = applied_;
  return stats;
}

int SnapshotManager::policy_part(const std::string& attr_name) const {
  if (policy_->part_of) return policy_->part_of(attr_name);
  return attr_name.rfind("lo_", 0) == 0 ? 0 : 1;  // PimStore's default rule
}

void SnapshotManager::validate_parts(const sql::BoundUpdate& update) const {
  // The cross-engine replayability rule: updates are validated against the
  // table's policy split regardless of which engine executes them, so the
  // shared update log stays replayable on EVERY engine variant of the table
  // (a one-part store would happily apply a cross-part update that a two-xb
  // replica then chokes on).
  const rel::Schema& schema = table_->schema();
  const int part = policy_part(schema.attribute(update.attr).name);
  for (const sql::BoundPredicate& p : update.filters) {
    if (p.kind == sql::BoundPredicate::Kind::kAlways ||
        p.kind == sql::BoundPredicate::Kind::kNever) {
      continue;
    }
    if (policy_part(schema.attribute(p.attr).name) != part) {
      throw std::invalid_argument(
          "execute_update: WHERE predicates must live in the updated "
          "attribute's part under the table's load policy (Algorithm 1 "
          "computes the select bit in-part)");
    }
  }
}

}  // namespace bbpim::db
