// Typed error taxonomy of the serving layer.
//
// Callers of db::QueryService can branch on what went wrong instead of
// string-matching runtime_error texts: OverloadError means admission
// control refused (or shed) the statement under load and the statement
// never executed; ServiceStopped means shutdown() won the race and the
// statement never executed. Execution-side aborts (deadline, cancel) come
// back as engine::QueryTimeout / engine::QueryCancelled from
// engine/cancel.hpp, and injected/transient device faults as the
// engine/fault_injector.hpp hierarchy.
#pragma once

#include <stdexcept>

namespace bbpim::db {

class ServiceError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Admission control refused or shed the statement: the bounded queue was
/// full under kReject, the bounded producer wait timed out under kBlock, or
/// the statement was the longest-waiting victim under kShedOldest. The
/// statement did not execute; retrying later (or against a less loaded
/// service) is safe.
class OverloadError : public ServiceError {
  using ServiceError::ServiceError;
};

/// The service stopped before the statement could run: submit() after
/// shutdown(), or the statement was still queued when shutdown() settled
/// the backlog. The statement did not execute.
class ServiceStopped : public ServiceError {
  using ServiceError::ServiceError;
};

}  // namespace bbpim::db
