#include "db/result_set.hpp"

#include <stdexcept>
#include <utility>

namespace bbpim::db {

ResultSet::ResultSet(engine::QueryOutput out, std::vector<Column> columns,
                     BackendKind backend)
    : out_(std::move(out)), columns_(std::move(columns)), backend_(backend) {}

ResultSet::ResultSet(engine::UpdateStats update, BackendKind backend)
    : backend_(backend), update_stats_(update) {}

const engine::UpdateStats& ResultSet::update_stats() const {
  if (!update_stats_) {
    throw std::logic_error("ResultSet::update_stats: not an UPDATE result");
  }
  return *update_stats_;
}

const engine::QueryStats& ResultSet::stats() const {
  if (update_stats_) {
    throw std::logic_error(
        "ResultSet::stats: UPDATE result (use update_stats())");
  }
  return out_.stats;
}

const std::string& ResultSet::column_name(std::size_t col) const {
  return columns_.at(col).name;
}

bool ResultSet::is_agg_column(std::size_t col) const {
  return columns_.at(col).is_agg;
}

std::optional<std::size_t> ResultSet::column_index(
    std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

const engine::ResultRow& ResultSet::row(std::size_t r) const {
  return out_.rows.at(r);
}

std::uint64_t ResultSet::code(std::size_t r, std::size_t col) const {
  const Column& c = columns_.at(col);
  if (c.is_agg) return static_cast<std::uint64_t>(row(r).agg);
  return row(r).group.at(col);
}

std::int64_t ResultSet::integer(std::size_t r, std::size_t col) const {
  const Column& c = columns_.at(col);
  if (c.is_agg) return row(r).agg;
  return static_cast<std::int64_t>(row(r).group.at(col));
}

std::string ResultSet::text(std::size_t r, std::size_t col) const {
  const Column& c = columns_.at(col);
  if (c.is_agg) return std::to_string(row(r).agg);
  const std::uint64_t v = row(r).group.at(col);
  if (c.dict != nullptr) return c.dict->value(v);
  return std::to_string(v);
}

}  // namespace bbpim::db
