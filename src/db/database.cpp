#include "db/database.hpp"

#include <stdexcept>
#include <utility>

#include "db/session.hpp"

namespace bbpim::db {

const rel::Table& Database::add(Entry entry) {
  const std::string& name = entry.table->name();
  if (name.empty()) {
    throw std::invalid_argument("Database::register_table: table has no name");
  }
  if (tables_.count(name) != 0) {
    throw std::invalid_argument("Database::register_table: duplicate table '" +
                                name + "'");
  }
  const rel::Table& ref = *entry.table;
  tables_.emplace(name, std::move(entry));
  order_.push_back(name);
  if (default_target_.empty()) default_target_ = name;
  ++version_;
  return ref;
}

const rel::Table& Database::register_table(rel::Table table,
                                           LoadPolicy policy) {
  Entry e;
  e.owned = std::make_unique<rel::Table>(std::move(table));
  e.table = e.owned.get();
  e.policy = std::move(policy);
  return add(std::move(e));
}

const rel::Table& Database::attach_table(const rel::Table& table,
                                         LoadPolicy policy) {
  Entry e;
  e.table = &table;
  e.policy = std::move(policy);
  return add(std::move(e));
}

const Database::Entry& Database::entry(std::string_view name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::invalid_argument("Database: unknown table '" +
                                std::string(name) + "'");
  }
  return it->second;
}

bool Database::has_table(std::string_view name) const {
  return tables_.find(name) != tables_.end();
}

const rel::Table& Database::table(std::string_view name) const {
  return *entry(name).table;
}

const LoadPolicy& Database::policy(std::string_view name) const {
  return entry(name).policy;
}

const LoadPolicy& Database::policy_of(const rel::Table& table) const {
  for (const auto& [name, e] : tables_) {
    if (e.table == &table) return e.policy;
  }
  throw std::invalid_argument("Database::policy_of: table not registered");
}

std::vector<std::string> Database::table_names() const { return order_; }

void Database::set_default_target(std::string_view name) {
  default_target_ = entry(name).table->name();
  ++version_;
}

const rel::Table& Database::default_target() const {
  if (default_target_.empty()) {
    throw std::invalid_argument("Database: no tables registered");
  }
  return table(default_target_);
}

const rel::Table& Database::resolve_target(
    const std::vector<std::string>& from) const {
  for (const std::string& name : from) {
    if (has_table(name)) return table(name);
  }
  return default_target();
}

Session Database::connect() { return Session(*this); }

Session Database::connect(SessionOptions opts) {
  return Session(*this, std::move(opts));
}

}  // namespace bbpim::db
