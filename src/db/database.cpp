#include "db/database.hpp"

#include <cstring>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "db/session.hpp"
#include "db/snapshot_manager.hpp"
#include "db/statement.hpp"

namespace bbpim::db {

namespace {

/// FNV-1a over a PimConfig's fields: distinguishes snapshot managers when
/// tests run the same table under different module geometries or timings.
/// Doubles hash by bit pattern — config equality, not numeric tolerance.
std::uint64_t pim_config_fingerprint(const pim::PimConfig& cfg) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  const auto mix_double = [&mix](double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(cfg.crossbar_rows);
  mix(cfg.crossbar_cols);
  mix(cfg.crossbars_per_page);
  mix(cfg.chips);
  mix(cfg.capacity_bytes);
  mix(cfg.read_bits);
  mix_double(cfg.logic_cycle_ns);
  mix_double(cfg.read_cycle_ns);
  mix_double(cfg.write_cycle_ns);
  mix_double(cfg.logic_energy_fj_per_bit);
  mix_double(cfg.read_energy_pj_per_bit);
  mix_double(cfg.write_energy_pj_per_bit);
  mix_double(cfg.agg_circuit_power_uw);
  mix_double(cfg.controller_power_uw);
  return h;
}

}  // namespace

// Out of line: SnapshotManager is forward-declared in the header, so the
// unique_ptr map's destructor must be instantiated here.
Database::Database() = default;
Database::~Database() = default;

Database::Database(Database&& other) noexcept {
  std::unique_lock lock(other.mutex_);
  tables_ = std::move(other.tables_);
  order_ = std::move(other.order_);
  default_target_ = std::move(other.default_target_);
  version_.store(other.version_.load(std::memory_order_acquire),
                 std::memory_order_release);
  writes_ = std::move(other.writes_);
  snapshots_ = std::move(other.snapshots_);
  plans_ = std::move(other.plans_);
  plans_version_ = other.plans_version_;
  plan_hits_.store(other.plan_hits_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  binding_ = std::move(other.binding_);
}

Database& Database::operator=(Database&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mutex_, other.mutex_);
    tables_ = std::move(other.tables_);
    order_ = std::move(other.order_);
    default_target_ = std::move(other.default_target_);
    version_.store(other.version_.load(std::memory_order_acquire),
                   std::memory_order_release);
    writes_ = std::move(other.writes_);
    snapshots_ = std::move(other.snapshots_);
    plans_ = std::move(other.plans_);
    plans_version_ = other.plans_version_;
    plan_hits_.store(other.plan_hits_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    binding_ = std::move(other.binding_);
  }
  return *this;
}

const rel::Table& Database::add(Entry entry) {
  const std::string& name = entry.table->name();
  if (name.empty()) {
    throw std::invalid_argument("Database::register_table: table has no name");
  }
  std::unique_lock lock(mutex_);
  if (tables_.count(name) != 0) {
    throw std::invalid_argument("Database::register_table: duplicate table '" +
                                name + "'");
  }
  const rel::Table& ref = *entry.table;
  tables_.emplace(name, std::move(entry));
  order_.push_back(name);
  if (default_target_.empty()) default_target_ = name;
  version_.fetch_add(1, std::memory_order_acq_rel);
  return ref;
}

const rel::Table& Database::register_table(rel::Table table,
                                           LoadPolicy policy) {
  Entry e;
  e.owned = std::make_unique<rel::Table>(std::move(table));
  e.table = e.owned.get();
  e.policy = std::move(policy);
  return add(std::move(e));
}

const rel::Table& Database::attach_table(const rel::Table& table,
                                         LoadPolicy policy) {
  Entry e;
  e.table = &table;
  e.policy = std::move(policy);
  return add(std::move(e));
}

const Database::Entry& Database::entry_locked(std::string_view name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::invalid_argument("Database: unknown table '" +
                                std::string(name) + "'");
  }
  return it->second;
}

bool Database::has_table(std::string_view name) const {
  std::shared_lock lock(mutex_);
  return tables_.find(name) != tables_.end();
}

const rel::Table& Database::table(std::string_view name) const {
  std::shared_lock lock(mutex_);
  return *entry_locked(name).table;
}

const LoadPolicy& Database::policy(std::string_view name) const {
  std::shared_lock lock(mutex_);
  return entry_locked(name).policy;
}

const LoadPolicy& Database::policy_of(const rel::Table& table) const {
  std::shared_lock lock(mutex_);
  for (const auto& [name, e] : tables_) {
    if (e.table == &table) return e.policy;
  }
  throw std::invalid_argument("Database::policy_of: table not registered");
}

std::vector<std::string> Database::table_names() const {
  std::shared_lock lock(mutex_);
  return order_;
}

void Database::set_default_target(std::string_view name) {
  std::unique_lock lock(mutex_);
  default_target_ = entry_locked(name).table->name();
  version_.fetch_add(1, std::memory_order_acq_rel);
}

const rel::Table& Database::default_target() const {
  std::shared_lock lock(mutex_);
  if (default_target_.empty()) {
    throw std::invalid_argument("Database: no tables registered");
  }
  return *entry_locked(default_target_).table;
}

const rel::Table& Database::resolve_target(
    const std::vector<std::string>& from) const {
  std::shared_lock lock(mutex_);
  for (const std::string& name : from) {
    const auto it = tables_.find(name);
    if (it != tables_.end()) return *it->second.table;
  }
  if (default_target_.empty()) {
    throw std::invalid_argument("Database: no tables registered");
  }
  return *entry_locked(default_target_).table;
}

TableWrites& Database::writes(const rel::Table& table) {
  std::lock_guard lock(writes_mutex_);
  std::unique_ptr<TableWrites>& slot = writes_[&table];
  if (slot == nullptr) slot = std::make_unique<TableWrites>();
  return *slot;
}

std::uint64_t Database::update_version(const rel::Table& table) {
  return writes(table).committed.load(std::memory_order_acquire);
}

SnapshotManager& Database::snapshot_manager(const rel::Table& table,
                                            bool two_crossbar,
                                            const pim::PimConfig& pim) {
  // Resolve the policy reference and write state BEFORE taking
  // snapshots_mutex_ (both take their own locks; keep the order acyclic).
  const LoadPolicy& policy = policy_of(table);
  TableWrites& writes_state = writes(table);
  const auto key =
      std::make_tuple(&table, two_crossbar, pim_config_fingerprint(pim));
  std::lock_guard lock(snapshots_mutex_);
  std::unique_ptr<SnapshotManager>& slot = snapshots_[key];
  if (slot == nullptr) {
    slot = std::make_unique<SnapshotManager>(table, policy, writes_state,
                                             two_crossbar, pim);
  }
  return *slot;
}

std::shared_ptr<const Plan> Database::find_plan(std::string_view sql) {
  const std::uint64_t version = catalog_version();
  std::lock_guard lock(plans_mutex_);
  if (plans_version_ != version) {
    plans_.clear();
    plans_version_ = version;
  }
  const auto it = plans_.find(sql);
  if (it == plans_.end()) return nullptr;
  plan_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void Database::cache_plan(std::shared_ptr<const Plan> plan) {
  if (plan == nullptr) return;
  const std::uint64_t version = catalog_version();
  std::lock_guard lock(plans_mutex_);
  if (plans_version_ != version) {
    plans_.clear();
    plans_version_ = version;
  }
  // First writer wins: two sessions that raced the same bind publish
  // equivalent plans, and handles to the loser stay valid (shared_ptr).
  plans_.emplace(plan->sql, std::move(plan));
}

std::shared_ptr<const Plan> Database::find_or_bind(
    std::string_view sql,
    const std::function<std::shared_ptr<const Plan>()>& bind) {
  std::uint64_t claim_version = 0;
  {
    std::unique_lock lock(plans_mutex_);
    for (;;) {
      claim_version = catalog_version();
      if (plans_version_ != claim_version) {
        plans_.clear();
        plans_version_ = claim_version;
      }
      const auto it = plans_.find(sql);
      if (it != plans_.end()) {
        plan_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
      if (binding_.insert(std::string(sql)).second) break;  // our claim
      // Another worker is binding this text; wait for its publish (or
      // failure) and re-check from the top — the catalog may have moved.
      plans_cv_.wait(lock);
    }
  }
  std::shared_ptr<const Plan> plan;
  try {
    plan = bind();  // unlocked: binding may be expensive
  } catch (...) {
    std::lock_guard lock(plans_mutex_);
    binding_.erase(binding_.find(sql));
    plans_cv_.notify_all();
    throw;
  }
  std::lock_guard lock(plans_mutex_);
  binding_.erase(binding_.find(sql));
  // Publish only if the catalog has not moved since the claim: a plan bound
  // against a superseded catalog must not outlive it in the cache.
  if (plan != nullptr && plans_version_ == claim_version &&
      catalog_version() == claim_version) {
    plans_.emplace(plan->sql, plan);
  }
  plans_cv_.notify_all();
  return plan;
}

std::size_t Database::plan_cache_size() {
  const std::uint64_t version = catalog_version();
  std::lock_guard lock(plans_mutex_);
  if (plans_version_ != version) {
    plans_.clear();
    plans_version_ = version;
  }
  return plans_.size();
}

Session Database::connect() { return Session(*this); }

Session Database::connect(SessionOptions opts) {
  return Session(*this, std::move(opts));
}

}  // namespace bbpim::db
