#include "db/session.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <shared_mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "baseline/monet.hpp"
#include "baseline/reference.hpp"
#include "engine/explain.hpp"
#include "engine/pim_store.hpp"
#include "engine/prejoin.hpp"
#include "pim/module.hpp"
#include "sql/parser.hpp"
#include "ssb/dbgen.hpp"

namespace bbpim::db {
namespace {

std::vector<ResultSet::Column> result_columns(const sql::BoundQuery& q,
                                              const rel::Schema& schema) {
  std::vector<ResultSet::Column> cols;
  for (const std::size_t attr : q.group_by) {
    const rel::Attribute& a = schema.attribute(attr);
    cols.push_back({a.name, false, a.dict});
  }
  ResultSet::Column agg;
  agg.name = q.agg_alias.empty() ? "agg" : q.agg_alias;
  agg.is_agg = true;
  cols.push_back(std::move(agg));
  return cols;
}

/// Part of an attribute under a table's load policy — the vertical split a
/// two-xb store of this table would use. Updates are validated against it
/// regardless of which engine executes them, so the shared update log stays
/// replayable on EVERY engine variant of the table (a one-part store would
/// happily apply a cross-part update that a two-xb replica then chokes on).
int policy_part(const LoadPolicy& policy, const std::string& attr_name) {
  if (policy.part_of) return policy.part_of(attr_name);
  return attr_name.rfind("lo_", 0) == 0 ? 0 : 1;  // PimStore's default rule
}

/// PIM backends: module + store built at first touch, models fitted only
/// when a query actually needs the GROUP-BY planner.
class PimExecutor final : public Executor {
 public:
  PimExecutor(Session& session, engine::EngineKind kind,
              const rel::Table& table, const LoadPolicy& policy)
      : session_(&session),
        kind_(kind),
        table_(&table),
        policy_(&policy),
        writes_(&session.database().writes(table)),
        module_(session.options().pim),
        store_(module_, table,
               [&] {
                 engine::PimStore::Options o;
                 o.two_crossbar = kind == engine::EngineKind::kTwoXb;
                 o.max_distinct = policy.max_distinct;
                 if (policy.part_of) o.part_of = policy.part_of;
                 return o;
               }()),
        engine_(kind, store_, session.options().host) {
    if (session.options().verbose) {
      std::cerr << "[db] loaded '" << table.name() << "' into PIM ("
                << engine::engine_kind_name(kind) << "): "
                << store_.record_count() << " records, "
                << store_.pages_per_part() << " pages/part\n";
    }
  }

  BackendKind backend() const override { return backend_of(kind_); }
  const rel::Table& target() const override { return *table_; }

  engine::QueryOutput execute(const sql::BoundQuery& q,
                              const engine::ExecOptions& opts) override {
    // The planner (Equation 3) is the only consumer of the fitted models;
    // forced-k and ungrouped queries run model-free, exactly as the seed's
    // ablation benches did. Fit before taking the gate: a fitting campaign
    // under a shared gate would stall writers for its whole duration.
    if (q.has_group_by() && !opts.force_k.has_value()) ensure_models();
    // Fast path: when this store already applied every committed update
    // (the common case in read-mostly serving), skip the writer gate
    // entirely — no other session's update can touch OUR private store, so
    // the gate would only add reader-side shared-lock contention. A commit
    // racing the version check serializes after this read, exactly as if
    // the read had taken the gate first.
    if (writes_->committed.load(std::memory_order_acquire) == applied_) {
      engine::QueryOutput out = engine_.execute(q, opts);
      observed_version_ = applied_;
      return out;
    }
    // Reader side of the writer gate: updates cannot land while this
    // execution runs, and the catch-up below pins which log prefix it sees.
    std::shared_lock gate(writes_->gate);
    catch_up();
    engine::QueryOutput out = engine_.execute(q, opts);
    observed_version_ = applied_;
    return out;
  }

  UpdateResult execute_update(const sql::BoundUpdate& update,
                              const engine::ExecOptions&) override {
    // Writer side: exclusive gate = no in-flight reads on this table while
    // crossbar data mutates, and the log append is a total order.
    std::unique_lock gate(writes_->gate);
    catch_up();
    validate_parts(update);
    UpdateResult result;
    {
      const auto mutation = store_.lock_mutation();
      result.stats =
          engine::pim_update(store_, session_->options().host, update.filters,
                             update.attr, update.value);
    }
    // Commit only after the local application succeeded: a throwing update
    // (validation, scratch exhaustion) must not poison the log for replicas.
    writes_->log.push_back(update);
    writes_->committed.store(writes_->log.size(), std::memory_order_release);
    ++applied_;
    observed_version_ = applied_;
    result.data_version = applied_;
    return result;
  }

  /// Catch-up replay outside any timed region (QueryService::warm_up):
  /// brings this worker's private store to the current committed version so
  /// the first served query does not pay the replay.
  void warm() override {
    std::shared_lock gate(writes_->gate);
    catch_up();
  }

  std::uint64_t last_data_version() const override {
    return observed_version_;
  }

  std::string explain(const sql::BoundQuery& q) override {
    return engine::explain_query(q, store_);
  }

  void ensure_models() {
    if (!engine_.models().fitted()) {
      engine_.set_models(session_->models(kind_));
    }
  }

  engine::PimQueryEngine& engine() { return engine_; }

 private:
  /// Replays committed updates this store has not applied yet. Caller holds
  /// the writer gate (shared suffices: only this session's thread touches
  /// this store, and appends require the exclusive gate).
  void catch_up() {
    if (applied_ == writes_->log.size()) return;
    const auto mutation = store_.lock_mutation();
    for (; applied_ < writes_->log.size(); ++applied_) {
      const sql::BoundUpdate& u = writes_->log[applied_];
      engine::pim_update(store_, session_->options().host, u.filters, u.attr,
                         u.value);
    }
  }

  /// The cross-engine replayability rule (see policy_part above).
  void validate_parts(const sql::BoundUpdate& update) const {
    const rel::Schema& schema = table_->schema();
    const int part =
        policy_part(*policy_, schema.attribute(update.attr).name);
    for (const sql::BoundPredicate& p : update.filters) {
      if (p.kind == sql::BoundPredicate::Kind::kAlways ||
          p.kind == sql::BoundPredicate::Kind::kNever) {
        continue;
      }
      if (policy_part(*policy_, schema.attribute(p.attr).name) != part) {
        throw std::invalid_argument(
            "execute_update: WHERE predicates must live in the updated "
            "attribute's part under the table's load policy (Algorithm 1 "
            "computes the select bit in-part)");
      }
    }
  }

  Session* session_;
  engine::EngineKind kind_;
  const rel::Table* table_;
  const LoadPolicy* policy_;
  TableWrites* writes_;
  pim::PimModule module_;
  engine::PimStore store_;
  engine::PimQueryEngine engine_;
  std::uint64_t applied_ = 0;           ///< log prefix applied to store_
  std::uint64_t observed_version_ = 0;  ///< version of the last execution
};

/// The PIM-only execution knobs are meaningless for the host baselines;
/// silently ignoring them would let an ablation pointed at the wrong
/// backend report plausible-looking but meaningless numbers.
void reject_pim_exec_options(BackendKind backend,
                             const engine::ExecOptions& opts) {
  if (opts.force_k.has_value() || opts.skip_host_gb ||
      opts.sim_threads.has_value() || opts.sim_scalar ||
      opts.prune.has_value()) {
    throw std::invalid_argument(
        std::string("execute: backend '") + backend_name(backend) +
        "' does not honor ExecOptions (force_k / skip_host_gb / sim_threads /"
        " sim_scalar / prune are PIM-only)");
  }
}

/// The host baselines scan the immutable catalog table, so once PIM-side
/// updates exist their results would silently diverge from every PIM
/// backend. Refuse instead of serving stale rows.
void reject_updated_table(BackendKind backend, Database& db,
                          const rel::Table& table) {
  if (db.update_version(table) > 0) {
    throw std::runtime_error(
        std::string("execute: backend '") + backend_name(backend) +
        "' reads the immutable catalog table and cannot observe the " +
        "committed PIM updates on '" + table.name() + "'");
  }
}

/// MonetDB-like columnar cost model over the target relation (mnt-join).
class ColumnarExecutor final : public Executor {
 public:
  ColumnarExecutor(Database& db, const rel::Table& table)
      : db_(&db), table_(&table), monet_(no_dimensions_, table) {}

  BackendKind backend() const override { return BackendKind::kColumnar; }
  const rel::Table& target() const override { return *table_; }

  engine::QueryOutput execute(const sql::BoundQuery& q,
                              const engine::ExecOptions& opts) override {
    reject_pim_exec_options(backend(), opts);
    reject_updated_table(backend(), *db_, *table_);
    baseline::BaselineRun run = monet_.execute_prejoined(q);
    engine::QueryOutput out;
    out.rows = std::move(run.rows);
    out.stats.total_ns = run.model_ns;
    out.stats.selected_records = run.selected_records;
    out.stats.selectivity =
        table_->row_count() > 0
            ? static_cast<double>(run.selected_records) / table_->row_count()
            : 0.0;
    return out;
  }

 private:
  Database* db_;
  const rel::Table* table_;
  ssb::SsbData no_dimensions_;  ///< star-plan dimensions unused by mnt-join
  baseline::MonetLikeEngine monet_;
};

/// Scalar reference scan: exact rows, no cost model.
class ReferenceExecutor final : public Executor {
 public:
  ReferenceExecutor(Database& db, const rel::Table& table)
      : db_(&db), table_(&table) {}

  BackendKind backend() const override { return BackendKind::kReference; }
  const rel::Table& target() const override { return *table_; }

  engine::QueryOutput execute(const sql::BoundQuery& q,
                              const engine::ExecOptions& opts) override {
    reject_pim_exec_options(backend(), opts);
    reject_updated_table(backend(), *db_, *table_);
    baseline::ReferenceRun run = baseline::scan_execute(*table_, q);
    engine::QueryOutput out;
    out.rows = std::move(run.rows);
    out.stats.selected_records = run.selected_records;
    out.stats.selectivity =
        table_->row_count() > 0
            ? static_cast<double>(run.selected_records) / table_->row_count()
            : 0.0;
    return out;
  }

 private:
  Database* db_;
  const rel::Table* table_;
};

}  // namespace

engine::FitConfig quick_fit_config() {
  engine::FitConfig fit;
  fit.page_counts = {2, 4};
  fit.ratios = {0.02, 0.2, 0.6};
  fit.s_values = {2, 4};
  fit.n_values = {1, 2};
  return fit;
}

// --- ModelCache ------------------------------------------------------------

ModelCache::ModelCache(std::string dir, std::string tag)
    : dir_(std::move(dir)), tag_(std::move(tag)) {}

std::string ModelCache::cache_path(engine::EngineKind kind,
                                   std::uint64_t fingerprint) const {
  std::ostringstream ss;
  ss << dir_ << "/bbpim_models_" << engine::engine_kind_name(kind) << tag_
     << '_' << fingerprint << ".txt";
  return ss.str();
}

bool ModelCache::contains(engine::EngineKind kind) const {
  std::lock_guard lock(mutex_);
  for (auto it = slots_.lower_bound({kind, 0});
       it != slots_.end() && it->first.first == kind; ++it) {
    if (it->second.ready) return true;
  }
  return false;
}

void ModelCache::put(engine::EngineKind kind, engine::LatencyModels models) {
  std::lock_guard lock(mutex_);
  Slot& slot = slots_[{kind, 0}];
  if (slot.ready) {
    // Resident models are immutable — other threads may hold references
    // into them — so injection only works before first use.
    throw std::logic_error(std::string("ModelCache::put: models for '") +
                           engine::engine_kind_name(kind) +
                           "' already resident");
  }
  slot.models = std::move(models);
  slot.ready = true;
}

std::size_t ModelCache::fit_count() const {
  std::lock_guard lock(mutex_);
  return fits_;
}

engine::LatencyModels ModelCache::load_or_fit(
    engine::EngineKind kind, std::uint64_t fingerprint,
    const pim::PimConfig& pim, const host::HostConfig& host,
    const engine::FitConfig& fit, bool verbose, bool& did_fit) const {
  did_fit = false;
  const std::string path = cache_path(kind, fingerprint);
  if (!dir_.empty()) {
    if (std::ifstream in(path); in.good()) {
      // A cache file is only trusted when it parses cleanly, carries the
      // fingerprint of OUR configuration, and holds a usable (non-empty)
      // model. Anything else — truncation, corruption, a hand-copied file
      // fitted under different configs, the pre-fingerprint format — is a
      // miss.
      try {
        std::uint64_t file_fingerprint = 0;
        engine::LatencyModels loaded =
            engine::LatencyModels::load(in, &file_fingerprint);
        if (loaded.fitted() && file_fingerprint == fingerprint) {
          if (verbose) {
            std::cerr << "[db] loading cached models from " << path << "\n";
          }
          return loaded;
        }
        if (verbose) {
          std::cerr << "[db] stale model cache " << path
                    << (loaded.fitted() ? " (config fingerprint mismatch)"
                                        : " (empty model)")
                    << " — refitting\n";
        }
      } catch (const std::exception& e) {
        if (verbose) {
          std::cerr << "[db] unreadable model cache " << path << " ("
                    << e.what() << ") — refitting\n";
        }
      }
    }
  }
  if (verbose) {
    std::cerr << "[db] fitting latency models for "
              << engine::engine_kind_name(kind) << "...\n";
  }
  engine::LatencyModels models =
      engine::fit_latency_models(kind, pim, host, fit).models;
  did_fit = true;
  if (!dir_.empty()) {
    // Write a temp file and rename it into place (atomic on POSIX) so a
    // concurrent reader never sees a partial write. Writers that race on
    // the same temp name are by construction fitting the same configuration
    // — the campaign is deterministic, so they write identical bytes.
    const std::string tmp = path + ".tmp";
    bool written = false;
    {
      std::ofstream out(tmp);
      if (out.good()) {
        models.save(out, fingerprint);
        written = out.good();
      }
    }
    if (!written || std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
    }
  }
  return models;
}

const engine::LatencyModels& ModelCache::get_or_fit(
    engine::EngineKind kind, const pim::PimConfig& pim,
    const host::HostConfig& host, const engine::FitConfig& fit, bool verbose) {
  const std::uint64_t fingerprint = engine::config_fingerprint(pim, host, fit);
  std::unique_lock lock(mutex_);
  // Explicitly injected models (put) pre-empt fitting for their kind.
  if (const auto it = slots_.find({kind, 0});
      it != slots_.end() && it->second.ready) {
    return it->second.models;
  }
  // Node-based map: the slot reference stays stable across the unlock.
  Slot& slot = slots_[{kind, fingerprint}];
  cv_.wait(lock, [&] { return !slot.busy; });
  if (slot.ready) return slot.models;

  // First caller for this configuration: fit (or load) outside the lock so
  // waiters block on the condition variable instead of serializing behind a
  // held mutex, and so contains()/put() on other slots stay responsive.
  slot.busy = true;
  lock.unlock();
  engine::LatencyModels models;
  bool did_fit = false;
  try {
    models = load_or_fit(kind, fingerprint, pim, host, fit, verbose, did_fit);
  } catch (...) {
    lock.lock();
    slot.busy = false;
    cv_.notify_all();
    throw;
  }
  lock.lock();
  if (did_fit) ++fits_;
  slot.models = std::move(models);
  slot.ready = true;
  slot.busy = false;
  cv_.notify_all();
  return slot.models;
}

// --- PreparedStatement -----------------------------------------------------

ResultSet PreparedStatement::execute(const engine::ExecOptions& opts) const {
  if (session_ == nullptr) {
    throw std::logic_error("PreparedStatement: not prepared by a session");
  }
  return execute(session_->default_backend(), opts);
}

ResultSet PreparedStatement::execute(BackendKind backend,
                                     const engine::ExecOptions& opts) const {
  if (session_ == nullptr) {
    throw std::logic_error("PreparedStatement: not prepared by a session");
  }
  Executor& ex = session_->executor_for(backend, *plan_->target);
  if (plan_->kind == sql::Statement::Kind::kUpdate) {
    const UpdateResult result = ex.execute_update(plan_->update, opts);
    ResultSet rs(result.stats, backend);
    rs.set_data_version(result.data_version);
    return rs;
  }
  engine::QueryOutput out = ex.execute(plan_->bound, opts);
  ResultSet rs(std::move(out),
               result_columns(plan_->bound, plan_->target->schema()), backend);
  rs.set_data_version(ex.last_data_version());
  return rs;
}

// --- Session ---------------------------------------------------------------

UpdateResult Executor::execute_update(const sql::BoundUpdate&,
                                      const engine::ExecOptions&) {
  throw std::invalid_argument(
      std::string("execute: backend '") + backend_name(backend()) +
      "' does not support UPDATE (host baselines read the immutable "
      "catalog table; route updates through a PIM backend)");
}

std::string Executor::explain(const sql::BoundQuery&) {
  throw std::invalid_argument(std::string("explain: backend '") +
                              backend_name(backend()) +
                              "' has no physical plan rendering");
}

Session::Session(Database& db, SessionOptions opts)
    : db_(&db), opts_(std::move(opts)) {
  model_cache_ = opts_.models != nullptr
                     ? opts_.models
                     : std::make_shared<ModelCache>(opts_.model_cache_dir,
                                                    opts_.model_cache_tag);
}

Session::~Session() = default;

PreparedStatement Session::prepare(std::string_view sql_text) {
  std::lock_guard lock(plans_mutex_);
  // Catalog mutations can change FROM resolution; drop plans bound against
  // the old catalog rather than serving a stale target. The version is read
  // once so a registration racing this prepare invalidates on the next call
  // instead of leaving the cache permanently stale.
  const std::uint64_t version = db_->catalog_version();
  if (catalog_version_ != version) {
    plans_.clear();
    catalog_version_ = version;
  }
  auto it = plans_.find(sql_text);
  if (it == plans_.end()) {
    auto plan = std::make_shared<Plan>();
    plan->sql = std::string(sql_text);
    const sql::Statement stmt = sql::parse_statement(plan->sql);
    plan->kind = stmt.kind;
    if (stmt.kind == sql::Statement::Kind::kUpdate) {
      // UPDATE targets resolve like FROM lists: a registered table by name,
      // else the default target (SSB updates name logical source tables the
      // pre-joined relation subsumes).
      const rel::Table& target = db_->resolve_target({stmt.update.table});
      plan->update = sql::bind_update(stmt.update, target.schema());
      plan->target = &target;
    } else {
      const rel::Table& target = db_->resolve_target(stmt.select.from);
      plan->bound = sql::bind(stmt.select, target.schema());
      plan->target = &target;
    }
    it = plans_.emplace(plan->sql, std::move(plan)).first;
  }
  return PreparedStatement(*this, it->second);
}

ResultSet Session::execute(std::string_view sql_text,
                           const engine::ExecOptions& opts) {
  return prepare(sql_text).execute(opts);
}

ResultSet Session::execute(std::string_view sql_text, BackendKind backend,
                           const engine::ExecOptions& opts) {
  return prepare(sql_text).execute(backend, opts);
}

std::string Session::explain(std::string_view sql_text) {
  return explain(sql_text, opts_.default_backend);
}

std::string Session::explain(std::string_view sql_text, BackendKind backend) {
  const PreparedStatement st = prepare(sql_text);
  if (st.is_update()) {
    throw std::invalid_argument(
        "explain: UPDATE statements have no physical plan rendering");
  }
  return executor_for(backend, st.target()).explain(st.bound());
}

void Session::set_default_backend(BackendKind backend) {
  opts_.default_backend = backend;
}

Executor& Session::executor(BackendKind backend) {
  return executor_for(backend, db_->default_target());
}

Executor& Session::executor(BackendKind backend, std::string_view table) {
  return executor_for(backend, db_->table(table));
}

Executor& Session::executor_for(BackendKind backend, const rel::Table& table) {
  const auto key = std::make_pair(backend, &table);
  std::lock_guard lock(executors_mutex_);
  auto it = executors_.find(key);
  if (it != executors_.end()) return *it->second;

  std::unique_ptr<Executor> ex;
  if (const auto kind = engine_kind_of(backend)) {
    ex = std::make_unique<PimExecutor>(*this, *kind, table,
                                       db_->policy_of(table));
  } else if (backend == BackendKind::kColumnar) {
    ex = std::make_unique<ColumnarExecutor>(*db_, table);
  } else {
    ex = std::make_unique<ReferenceExecutor>(*db_, table);
  }
  return *executors_.emplace(key, std::move(ex)).first->second;
}

const engine::LatencyModels& Session::models(engine::EngineKind kind) {
  return model_cache_->get_or_fit(kind, opts_.pim, opts_.host, opts_.fit,
                                  opts_.verbose);
}

void Session::set_models(engine::EngineKind kind, engine::LatencyModels m) {
  model_cache_->put(kind, std::move(m));
}

engine::PimQueryEngine& Session::pim_engine(engine::EngineKind kind) {
  return static_cast<PimExecutor&>(
             executor_for(backend_of(kind), db_->default_target()))
      .engine();
}

engine::PimQueryEngine& Session::pim_engine(engine::EngineKind kind,
                                            std::string_view table) {
  return static_cast<PimExecutor&>(
             executor_for(backend_of(kind), db_->table(table)))
      .engine();
}

}  // namespace bbpim::db
