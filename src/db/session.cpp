#include "db/session.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <shared_mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "baseline/monet.hpp"
#include "baseline/reference.hpp"
#include "db/snapshot_manager.hpp"
#include "engine/explain.hpp"
#include "engine/fault_injector.hpp"
#include "engine/hash_join.hpp"
#include "engine/pim_store.hpp"
#include "engine/prejoin.hpp"
#include "pim/module.hpp"
#include "sql/parser.hpp"
#include "ssb/dbgen.hpp"

namespace bbpim::db {
namespace {

std::vector<ResultSet::Column> result_columns(const sql::BoundQuery& q,
                                              const rel::Schema& schema) {
  std::vector<ResultSet::Column> cols;
  for (const std::size_t attr : q.group_by) {
    const rel::Attribute& a = schema.attribute(attr);
    cols.push_back({a.name, false, a.dict});
  }
  ResultSet::Column agg;
  agg.name = q.agg_alias.empty() ? "agg" : q.agg_alias;
  agg.is_agg = true;
  cols.push_back(std::move(agg));
  return cols;
}

std::vector<ResultSet::Column> join_result_columns(
    const sql::BoundJoin& jp, const std::vector<const rel::Table*>& tables) {
  std::vector<ResultSet::Column> cols;
  for (const sql::BoundColumnRef& g : jp.group_by) {
    const rel::Attribute& a = tables[g.table]->schema().attribute(g.attr);
    cols.push_back({a.name, false, a.dict});
  }
  ResultSet::Column agg;
  agg.name = jp.agg_alias.empty() ? "agg" : jp.agg_alias;
  agg.is_agg = true;
  cols.push_back(std::move(agg));
  return cols;
}

/// PIM backends: a zero-copy view over the table's shared snapshot store.
/// The executor pins the current StoreSnapshot (published by the table's
/// db::SnapshotManager), allocates only private scratch pages in its own
/// module, and serves queries against the snapshot's immutable crossbar
/// data. Updates route through the manager's single builder store; the
/// executor then re-pins the version it produced (read-your-writes).
/// Models are fitted only when a query actually needs the GROUP-BY planner.
class PimExecutor final : public Executor {
 public:
  PimExecutor(Session& session, engine::EngineKind kind,
              const rel::Table& table)
      : session_(&session),
        kind_(kind),
        table_(&table),
        writes_(&session.database().writes(table)),
        manager_(&session.database().snapshot_manager(
            table, kind == engine::EngineKind::kTwoXb,
            session.options().pim)),
        snap_(manager_->acquire(session.options().host)),
        module_(session.options().pim),
        store_(module_, table, manager_->store_options(), snap_),
        engine_(kind, store_, session.options().host) {
    if (session.options().verbose) {
      std::cerr << "[db] pinned '" << table.name() << "' snapshot v"
                << snap_->version() << " ("
                << engine::engine_kind_name(kind) << "): "
                << store_.record_count() << " records, "
                << store_.pages_per_part() << " pages/part\n";
    }
  }

  BackendKind backend() const override { return backend_of(kind_); }
  const rel::Table& target() const override { return *table_; }

  engine::QueryOutput execute(const sql::BoundQuery& q,
                              const engine::ExecOptions& opts) override {
    // The planner (Equation 3) is the only consumer of the fitted models;
    // forced-k and ungrouped queries run model-free, exactly as the seed's
    // ablation benches did.
    if (q.has_group_by() && !opts.force_k.has_value()) ensure_models();
    refresh();
    engine::QueryOutput out = engine_.execute(q, opts);
    observed_version_ = snap_->version();
    return out;
  }

  engine::PimQueryEngine::BatchOutput execute_many(
      const std::vector<const sql::BoundQuery*>& queries,
      const engine::ExecOptions& opts,
      const std::vector<engine::CancelToken>& cancels) override {
    bool grouped = false;
    for (const sql::BoundQuery* q : queries) grouped |= q->has_group_by();
    if (grouped && !opts.force_k.has_value()) ensure_models();
    // One refresh pins ONE snapshot version for the whole batch: every
    // member reads the same prefix of the table's update log, and a commit
    // landing mid-batch is observed by all members or by none.
    refresh();
    engine::PimQueryEngine::BatchOutput out =
        engine_.execute_batch(queries, opts, cancels);
    observed_version_ = snap_->version();
    return out;
  }

  UpdateResult execute_update(const sql::BoundUpdate& update,
                              const engine::ExecOptions&) override {
    UpdateResult result;
    std::uint64_t version = 0;
    result.stats =
        manager_->apply_update(update, session_->options().host, &version);
    // Read-your-writes: re-pin at (at least) the version this update
    // produced before the caller's next read through this executor.
    snap_ = manager_->acquire(session_->options().host);
    store_.adopt(snap_);
    observed_version_ = version;
    result.data_version = version;
    return result;
  }

  std::uint64_t last_data_version() const override {
    return observed_version_;
  }

  engine::ScanOutput execute_scan(
      const std::vector<sql::BoundPredicate>& filters,
      const std::vector<std::size_t>& attrs,
      const engine::ExecOptions& opts) override {
    refresh();
    engine::ScanOutput out = engine_.execute_scan(filters, attrs, opts);
    observed_version_ = snap_->version();
    return out;
  }

  std::string explain(const sql::BoundQuery& q) override {
    return engine::explain_query(q, store_);
  }

  std::string explain_scan(
      const std::vector<sql::BoundPredicate>& filters) override {
    return engine::explain_scan(filters, store_);
  }

  void ensure_models() {
    if (!engine_.models().fitted()) {
      engine_.set_models(session_->models(kind_));
    }
  }

  engine::PimQueryEngine& engine() { return engine_; }

 private:
  /// Re-pins the current snapshot when behind. The fast path is one atomic
  /// load with no locks anywhere: when the table's committed counter equals
  /// the pinned version (the common case in read-mostly serving) the
  /// executor touches neither the writer gate nor the manager — this is
  /// what removed the reader-side contention that made HTAP worker scaling
  /// negative. A commit racing the check serializes after this read.
  void refresh() {
    if (writes_->committed.load(std::memory_order_acquire) !=
        snap_->version()) {
      snap_ = manager_->acquire(session_->options().host);
      store_.adopt(snap_);
    }
  }

  Session* session_;
  engine::EngineKind kind_;
  const rel::Table* table_;
  TableWrites* writes_;
  SnapshotManager* manager_;
  std::shared_ptr<const engine::StoreSnapshot> snap_;  ///< pinned version
  pim::PimModule module_;      ///< scratch pages only (data is the snapshot's)
  engine::PimStore store_;     ///< view over snap_
  engine::PimQueryEngine engine_;
  std::uint64_t observed_version_ = 0;  ///< version of the last execution
};

/// The PIM-only execution knobs are meaningless for the host baselines;
/// silently ignoring them would let an ablation pointed at the wrong
/// backend report plausible-looking but meaningless numbers.
void reject_pim_exec_options(BackendKind backend,
                             const engine::ExecOptions& opts) {
  if (opts.force_k.has_value() || opts.skip_host_gb ||
      opts.sim_threads.has_value() || opts.sim_scalar ||
      opts.prune.has_value()) {
    throw std::invalid_argument(
        std::string("execute: backend '") + backend_name(backend) +
        "' does not honor ExecOptions (force_k / skip_host_gb / sim_threads /"
        " sim_scalar / prune are PIM-only)");
  }
}

/// The host baselines scan the immutable catalog table, so once PIM-side
/// updates exist their results would silently diverge from every PIM
/// backend. Refuse instead of serving stale rows.
void reject_updated_table(BackendKind backend, Database& db,
                          const rel::Table& table) {
  if (db.update_version(table) > 0) {
    throw std::runtime_error(
        std::string("execute: backend '") + backend_name(backend) +
        "' reads the immutable catalog table and cannot observe the " +
        "committed PIM updates on '" + table.name() + "'");
  }
}

/// MonetDB-like columnar cost model over the target relation (mnt-join).
class ColumnarExecutor final : public Executor {
 public:
  ColumnarExecutor(Database& db, const rel::Table& table)
      : db_(&db), table_(&table), monet_(no_dimensions_, table) {}

  BackendKind backend() const override { return BackendKind::kColumnar; }
  const rel::Table& target() const override { return *table_; }

  engine::QueryOutput execute(const sql::BoundQuery& q,
                              const engine::ExecOptions& opts) override {
    reject_pim_exec_options(backend(), opts);
    reject_updated_table(backend(), *db_, *table_);
    baseline::BaselineRun run = monet_.execute_prejoined(q);
    engine::QueryOutput out;
    out.rows = std::move(run.rows);
    out.stats.total_ns = run.model_ns;
    out.stats.selected_records = run.selected_records;
    out.stats.selectivity =
        table_->row_count() > 0
            ? static_cast<double>(run.selected_records) / table_->row_count()
            : 0.0;
    return out;
  }

 private:
  Database* db_;
  const rel::Table* table_;
  ssb::SsbData no_dimensions_;  ///< star-plan dimensions unused by mnt-join
  baseline::MonetLikeEngine monet_;
};

/// Scalar reference scan: exact rows, no cost model.
class ReferenceExecutor final : public Executor {
 public:
  ReferenceExecutor(Database& db, const rel::Table& table)
      : db_(&db), table_(&table) {}

  BackendKind backend() const override { return BackendKind::kReference; }
  const rel::Table& target() const override { return *table_; }

  engine::QueryOutput execute(const sql::BoundQuery& q,
                              const engine::ExecOptions& opts) override {
    reject_pim_exec_options(backend(), opts);
    reject_updated_table(backend(), *db_, *table_);
    baseline::ReferenceRun run = baseline::scan_execute(*table_, q);
    engine::QueryOutput out;
    out.rows = std::move(run.rows);
    out.stats.selected_records = run.selected_records;
    out.stats.selectivity =
        table_->row_count() > 0
            ? static_cast<double>(run.selected_records) / table_->row_count()
            : 0.0;
    return out;
  }

  /// Exact row-at-a-time scan of the catalog table: the oracle half of the
  /// join parity tests. No cost model (stats stay zero).
  engine::ScanOutput execute_scan(
      const std::vector<sql::BoundPredicate>& filters,
      const std::vector<std::size_t>& attrs,
      const engine::ExecOptions& opts) override {
    reject_pim_exec_options(backend(), opts);
    reject_updated_table(backend(), *db_, *table_);
    engine::ScanOutput out;
    out.columns.resize(attrs.size());
    for (std::size_t r = 0; r < table_->row_count(); ++r) {
      bool pass = true;
      for (const sql::BoundPredicate& p : filters) {
        if (p.kind == sql::BoundPredicate::Kind::kAlways) continue;
        if (!p.matches(table_->value(r, p.attr))) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      out.row_ids.push_back(r);
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        out.columns[i].push_back(table_->value(r, attrs[i]));
      }
    }
    out.stats.selected_records = out.row_ids.size();
    out.stats.selectivity =
        table_->row_count() > 0
            ? static_cast<double>(out.row_ids.size()) / table_->row_count()
            : 0.0;
    return out;
  }

 private:
  Database* db_;
  const rel::Table* table_;
};

}  // namespace

engine::FitConfig quick_fit_config() {
  engine::FitConfig fit;
  fit.page_counts = {2, 4};
  fit.ratios = {0.02, 0.2, 0.6};
  fit.s_values = {2, 4};
  fit.n_values = {1, 2};
  return fit;
}

// --- ModelCache ------------------------------------------------------------

ModelCache::ModelCache(std::string dir, std::string tag)
    : dir_(std::move(dir)), tag_(std::move(tag)) {}

std::string ModelCache::cache_path(engine::EngineKind kind,
                                   std::uint64_t fingerprint) const {
  std::ostringstream ss;
  ss << dir_ << "/bbpim_models_" << engine::engine_kind_name(kind) << tag_
     << '_' << fingerprint << ".txt";
  return ss.str();
}

bool ModelCache::contains(engine::EngineKind kind) const {
  std::lock_guard lock(mutex_);
  for (auto it = slots_.lower_bound({kind, 0});
       it != slots_.end() && it->first.first == kind; ++it) {
    if (it->second.ready) return true;
  }
  return false;
}

void ModelCache::put(engine::EngineKind kind, engine::LatencyModels models) {
  std::lock_guard lock(mutex_);
  Slot& slot = slots_[{kind, 0}];
  if (slot.ready) {
    // Resident models are immutable — other threads may hold references
    // into them — so injection only works before first use.
    throw std::logic_error(std::string("ModelCache::put: models for '") +
                           engine::engine_kind_name(kind) +
                           "' already resident");
  }
  slot.models = std::move(models);
  slot.ready = true;
}

std::size_t ModelCache::fit_count() const {
  std::lock_guard lock(mutex_);
  return fits_;
}

engine::LatencyModels ModelCache::load_or_fit(
    engine::EngineKind kind, std::uint64_t fingerprint,
    const pim::PimConfig& pim, const host::HostConfig& host,
    const engine::FitConfig& fit, bool verbose, bool& did_fit) const {
  did_fit = false;
  const std::string path = cache_path(kind, fingerprint);
  if (!dir_.empty()) {
    if (std::ifstream in(path); in.good()) {
      // A cache file is only trusted when it parses cleanly, carries the
      // fingerprint of OUR configuration, and holds a usable (non-empty)
      // model. Anything else — truncation, corruption, a hand-copied file
      // fitted under different configs, the pre-fingerprint format — is a
      // miss.
      try {
        std::uint64_t file_fingerprint = 0;
        engine::LatencyModels loaded =
            engine::LatencyModels::load(in, &file_fingerprint);
        if (loaded.fitted() && file_fingerprint == fingerprint) {
          if (verbose) {
            std::cerr << "[db] loading cached models from " << path << "\n";
          }
          return loaded;
        }
        if (verbose) {
          std::cerr << "[db] stale model cache " << path
                    << (loaded.fitted() ? " (config fingerprint mismatch)"
                                        : " (empty model)")
                    << " — refitting\n";
        }
      } catch (const std::exception& e) {
        if (verbose) {
          std::cerr << "[db] unreadable model cache " << path << " ("
                    << e.what() << ") — refitting\n";
        }
      }
    }
  }
  if (verbose) {
    std::cerr << "[db] fitting latency models for "
              << engine::engine_kind_name(kind) << "...\n";
  }
  engine::LatencyModels models =
      engine::fit_latency_models(kind, pim, host, fit).models;
  did_fit = true;
  if (!dir_.empty()) {
    // Write a temp file and rename it into place (atomic on POSIX) so a
    // concurrent reader never sees a partial write. Writers that race on
    // the same temp name are by construction fitting the same configuration
    // — the campaign is deterministic, so they write identical bytes.
    const std::string tmp = path + ".tmp";
    bool written = false;
    {
      std::ofstream out(tmp);
      if (out.good()) {
        models.save(out, fingerprint);
        written = out.good();
      }
    }
    if (!written || std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
    }
  }
  return models;
}

const engine::LatencyModels& ModelCache::get_or_fit(
    engine::EngineKind kind, const pim::PimConfig& pim,
    const host::HostConfig& host, const engine::FitConfig& fit, bool verbose) {
  const std::uint64_t fingerprint = engine::config_fingerprint(pim, host, fit);
  std::unique_lock lock(mutex_);
  // Explicitly injected models (put) pre-empt fitting for their kind.
  if (const auto it = slots_.find({kind, 0});
      it != slots_.end() && it->second.ready) {
    return it->second.models;
  }
  // Node-based map: the slot reference stays stable across the unlock.
  Slot& slot = slots_[{kind, fingerprint}];
  cv_.wait(lock, [&] { return !slot.busy; });
  if (slot.ready) return slot.models;

  // First caller for this configuration: fit (or load) outside the lock so
  // waiters block on the condition variable instead of serializing behind a
  // held mutex, and so contains()/put() on other slots stay responsive.
  slot.busy = true;
  lock.unlock();
  engine::LatencyModels models;
  bool did_fit = false;
  try {
    models = load_or_fit(kind, fingerprint, pim, host, fit, verbose, did_fit);
  } catch (...) {
    lock.lock();
    slot.busy = false;
    cv_.notify_all();
    throw;
  }
  lock.lock();
  if (did_fit) ++fits_;
  slot.models = std::move(models);
  slot.ready = true;
  slot.busy = false;
  cv_.notify_all();
  return slot.models;
}

// --- PreparedStatement -----------------------------------------------------

ResultSet PreparedStatement::execute(const engine::ExecOptions& opts) const {
  if (session_ == nullptr) {
    throw std::logic_error("PreparedStatement: not prepared by a session");
  }
  return execute(session_->default_backend(), opts);
}

ResultSet PreparedStatement::execute(BackendKind backend,
                                     const engine::ExecOptions& opts) const {
  if (session_ == nullptr) {
    throw std::logic_error("PreparedStatement: not prepared by a session");
  }
  if (plan_->is_join()) {
    return session_->execute_join(*plan_, backend, opts);
  }
  Executor& ex = session_->executor_for(backend, *plan_->target);
  if (plan_->kind == sql::Statement::Kind::kUpdate) {
    const UpdateResult result = ex.execute_update(plan_->update, opts);
    ResultSet rs(result.stats, backend);
    rs.set_data_version(result.data_version);
    return rs;
  }
  engine::QueryOutput out = ex.execute(plan_->bound, opts);
  ResultSet rs(std::move(out),
               result_columns(plan_->bound, plan_->target->schema()), backend);
  rs.set_data_version(ex.last_data_version());
  return rs;
}

// --- Session ---------------------------------------------------------------

UpdateResult Executor::execute_update(const sql::BoundUpdate&,
                                      const engine::ExecOptions&) {
  throw std::invalid_argument(
      std::string("execute: backend '") + backend_name(backend()) +
      "' does not support UPDATE (host baselines read the immutable "
      "catalog table; route updates through a PIM backend)");
}

std::string Executor::explain(const sql::BoundQuery&) {
  throw std::invalid_argument(std::string("explain: backend '") +
                              backend_name(backend()) +
                              "' has no physical plan rendering");
}

engine::ScanOutput Executor::execute_scan(
    const std::vector<sql::BoundPredicate>&, const std::vector<std::size_t>&,
    const engine::ExecOptions&) {
  throw std::invalid_argument(
      std::string("execute: backend '") + backend_name(backend()) +
      "' has no per-table scan path (joins run on PIM or reference "
      "backends; the columnar baseline models pre-joined plans only)");
}

std::string Executor::explain_scan(const std::vector<sql::BoundPredicate>&) {
  throw std::invalid_argument(std::string("explain: backend '") +
                              backend_name(backend()) +
                              "' has no physical plan rendering");
}

engine::PimQueryEngine::BatchOutput Executor::execute_many(
    const std::vector<const sql::BoundQuery*>& queries,
    const engine::ExecOptions& opts,
    const std::vector<engine::CancelToken>& cancels) {
  engine::PimQueryEngine::BatchOutput out;
  out.outputs.resize(queries.size());
  out.errors.resize(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    try {
      if (!cancels.empty() && cancels[i].valid()) {
        engine::ExecOptions member_opts = opts;
        member_opts.cancel = cancels[i];
        out.outputs[i] = execute(*queries[i], member_opts);
      } else {
        out.outputs[i] = execute(*queries[i], opts);
      }
    } catch (...) {
      out.errors[i] = std::current_exception();
    }
  }
  return out;
}

Session::Session(Database& db, SessionOptions opts)
    : db_(&db), opts_(std::move(opts)) {
  model_cache_ = opts_.models != nullptr
                     ? opts_.models
                     : std::make_shared<ModelCache>(opts_.model_cache_dir,
                                                    opts_.model_cache_tag);
}

Session::~Session() = default;

PreparedStatement Session::prepare(std::string_view sql_text) {
  std::lock_guard lock(plans_mutex_);
  // Catalog mutations can change FROM resolution; drop plans bound against
  // the old catalog rather than serving a stale target. The version is read
  // once so a registration racing this prepare invalidates on the next call
  // instead of leaving the cache permanently stale.
  const std::uint64_t version = db_->catalog_version();
  if (catalog_version_ != version) {
    plans_.clear();
    catalog_version_ = version;
  }
  auto it = plans_.find(sql_text);
  if (it == plans_.end()) {
    // Session miss: go through the Database-scope bind-once front door, so
    // N sessions (QueryService workers) racing the same uncached statement
    // bind it exactly once — one binds, the rest block on its claim and
    // leave with the shared plan as cache hits.
    std::shared_ptr<const Plan> plan = db_->find_or_bind(
        sql_text, [&] { return build_plan(sql_text); });
    it = plans_.emplace(plan->sql, std::move(plan)).first;
  }
  return PreparedStatement(*this, it->second);
}

std::shared_ptr<const Plan> Session::build_plan(std::string_view sql_text) {
  // Fault seam: binding sits before any shared state mutates (a throwing
  // bind releases the Database plan-cache claim), so an injected fault here
  // is transient — the service's retry re-binds cleanly.
  engine::fault_point(engine::FaultSeam::kPlanBind);
  auto plan = std::make_shared<Plan>();
  plan->sql = std::string(sql_text);
  const sql::Statement stmt = sql::parse_statement(plan->sql);
  plan->kind = stmt.kind;
  if (stmt.kind == sql::Statement::Kind::kUpdate) {
    // UPDATE targets resolve like FROM lists: a registered table by name,
    // else the default target (SSB updates name logical source tables the
    // pre-joined relation subsumes).
    const rel::Table& target = db_->resolve_target({stmt.update.table});
    plan->update = sql::bind_update(stmt.update, target.schema());
    plan->target = &target;
    return plan;
  }
  // The join path triggers only when EVERY name in a multi-table FROM list
  // is a registered table. Otherwise the seed semantics hold: SSB texts
  // naming logical source tables fall through to the default (pre-joined)
  // target, so the same query runs normalized or pre-joined depending only
  // on what the catalog holds.
  const std::vector<std::string>& from = stmt.select.from;
  bool join_path = from.size() > 1;
  for (const std::string& name : from) {
    if (!db_->has_table(name)) {
      join_path = false;
      break;
    }
  }
  if (join_path) {
    std::vector<sql::JoinTableRef> refs;
    refs.reserve(from.size());
    plan->join_tables.reserve(from.size());
    for (const std::string& name : from) {
      const rel::Table& t = db_->table(name);
      refs.push_back({name, &t.schema(), t.row_count()});
      plan->join_tables.push_back(&t);
    }
    plan->join = sql::bind_join(stmt.select, refs);
    plan->target = plan->join_tables[plan->join.fact];
    return plan;
  }
  const rel::Table& target = db_->resolve_target(stmt.select.from);
  plan->bound = sql::bind(stmt.select, target.schema());
  plan->target = &target;
  return plan;
}

ResultSet Session::execute_join(const Plan& plan, BackendKind backend,
                                const engine::ExecOptions& opts) {
  const sql::BoundJoin& jp = plan.join;
  const std::vector<std::vector<std::size_t>> attrs =
      engine::join_scan_attrs(jp);

  // Resolve the abort token ONCE for the whole join: the deadline covers
  // every per-table scan plus the host build/probe, not each scan afresh.
  engine::ExecOptions scan_opts = opts;
  scan_opts.cancel = engine::resolve_cancel(opts);

  // One snapshot-pinned scan per touched table. The scans run sequentially
  // through this session's executors; each pins exactly one store version,
  // reported per table in the result's table_versions().
  std::vector<engine::JoinScanInput> inputs(jp.table_names.size());
  std::vector<std::pair<std::string, std::uint64_t>> versions;
  versions.reserve(jp.table_names.size());
  engine::QueryStats stats;
  std::uint64_t fact_version = 0;
  for (std::size_t t = 0; t < jp.table_names.size(); ++t) {
    Executor& ex = executor_for(backend, *plan.join_tables[t]);
    engine::ScanOutput scan =
        ex.execute_scan(jp.filters[t], attrs[t], scan_opts);
    versions.emplace_back(jp.table_names[t], ex.last_data_version());
    if (t == jp.fact) {
      fact_version = ex.last_data_version();
      stats.selected_records = scan.stats.selected_records;
      stats.selectivity = scan.stats.selectivity;
    }
    // Scans are independent devices running back to back in the model:
    // latency, energy, and pruning effectiveness all add.
    stats.total_ns += scan.stats.total_ns;
    stats.phases.filter += scan.stats.phases.filter;
    stats.phases.transfer += scan.stats.phases.transfer;
    stats.phases.host_gb += scan.stats.phases.host_gb;
    stats.energy_j += scan.stats.energy_j;
    stats.energy_logic_j += scan.stats.energy_logic_j;
    stats.energy_read_j += scan.stats.energy_read_j;
    stats.energy_write_j += scan.stats.energy_write_j;
    stats.energy_controller_j += scan.stats.energy_controller_j;
    stats.energy_agg_circuit_j += scan.stats.energy_agg_circuit_j;
    stats.peak_chip_w = std::max(stats.peak_chip_w, scan.stats.peak_chip_w);
    stats.host_lines += scan.stats.host_lines;
    stats.pim_requests += scan.stats.pim_requests;
    stats.pages_skipped += scan.stats.pages_skipped;
    stats.pages_synthesized += scan.stats.pages_synthesized;
    stats.crossbars_skipped += scan.stats.crossbars_skipped;
    stats.predicates_short_circuited +=
        scan.stats.predicates_short_circuited;
    stats.filter_cache_hits += scan.stats.filter_cache_hits;
    stats.filter_cache_misses += scan.stats.filter_cache_misses;
    inputs[t].columns = std::move(scan.columns);
  }

  // Host-side partitioned hash join over the survivors; its build/probe CPU
  // time lands in the host-gb phase, the merge/sort in finalize.
  engine::JoinOutput joined =
      engine::hash_join_execute(jp, inputs, opts_.host, scan_opts.cancel);
  stats.phases.host_gb += joined.stats.build_ns + joined.stats.probe_ns;
  stats.phases.finalize += joined.stats.finalize_ns;
  stats.total_ns += joined.stats.build_ns + joined.stats.probe_ns +
                    joined.stats.finalize_ns;

  engine::QueryOutput out;
  out.rows = std::move(joined.rows);
  out.stats = stats;
  ResultSet rs(std::move(out), join_result_columns(jp, plan.join_tables),
               backend);
  rs.set_data_version(fact_version);
  rs.set_table_versions(std::move(versions));
  return rs;
}

ResultSet Session::execute(std::string_view sql_text,
                           const engine::ExecOptions& opts) {
  return prepare(sql_text).execute(opts);
}

ResultSet Session::execute(std::string_view sql_text, BackendKind backend,
                           const engine::ExecOptions& opts) {
  return prepare(sql_text).execute(backend, opts);
}

std::vector<Session::BatchItem> Session::execute_batch(
    const std::vector<std::string>& sqls, const engine::ExecOptions& opts,
    const std::vector<engine::CancelToken>& cancels) {
  return execute_batch(sqls, opts_.default_backend, opts, cancels);
}

std::vector<Session::BatchItem> Session::execute_batch(
    const std::vector<std::string>& sqls, BackendKind backend,
    const engine::ExecOptions& opts,
    const std::vector<engine::CancelToken>& cancels) {
  if (!cancels.empty() && cancels.size() != sqls.size()) {
    throw std::invalid_argument(
        "Session::execute_batch: cancels must be empty or one per statement");
  }
  const auto token_of = [&](std::size_t i) {
    return i < cancels.size() ? cancels[i] : engine::CancelToken{};
  };
  std::vector<BatchItem> items(sqls.size());

  // Front end, per statement: a text that fails to parse or bind carries
  // its own error without touching its batchmates.
  std::vector<std::shared_ptr<const Plan>> plans(sqls.size());
  for (std::size_t i = 0; i < sqls.size(); ++i) {
    try {
      plans[i] = prepare(sqls[i]).plan_;
    } catch (...) {
      items[i].error = std::current_exception();
    }
  }
  const auto batchable = [&](std::size_t i) {
    return items[i].error == nullptr && plans[i] != nullptr &&
           plans[i]->kind == sql::Statement::Kind::kSelect &&
           !plans[i]->is_join();
  };

  // Admission: single-table SELECTs group by target table (backend and
  // options are uniform across the call); a mixed-table batch splits into
  // one group per table. Groups form in first-statement order.
  struct Group {
    const rel::Table* target = nullptr;
    std::vector<std::size_t> members;  ///< item indices, statement order
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < sqls.size(); ++i) {
    if (!batchable(i)) continue;
    Group* g = nullptr;
    for (Group& cand : groups) {
      if (cand.target == plans[i]->target) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back({plans[i]->target, {}});
      g = &groups.back();
    }
    g->members.push_back(i);
  }

  for (Group& g : groups) {
    // Duplicate texts share one plan (the cache interns by SQL text); the
    // engine executes each unique plan once and every duplicate copies the
    // result — the cheapest scan is the one that never runs. Members that
    // carry their own abort token are never interned: a cancelled member
    // must not take a duplicate's result (or fate) with it.
    std::vector<const Plan*> unique;
    std::vector<engine::CancelToken> unique_cancels;
    std::vector<std::size_t> slot_of(g.members.size());
    for (std::size_t m = 0; m < g.members.size(); ++m) {
      const std::size_t i = g.members[m];
      const Plan* p = plans[i].get();
      const engine::CancelToken tok = token_of(i);
      std::size_t u = unique.size();
      if (!tok.valid()) {
        for (u = 0; u < unique.size(); ++u) {
          if (unique[u] == p && !unique_cancels[u].valid()) break;
        }
      }
      if (u == unique.size()) {
        unique.push_back(p);
        unique_cancels.push_back(tok);
      }
      slot_of[m] = u;
    }
    std::vector<const sql::BoundQuery*> queries;
    queries.reserve(unique.size());
    for (const Plan* p : unique) queries.push_back(&p->bound);

    std::vector<std::size_t> dup_count(unique.size(), 0);
    for (const std::size_t u : slot_of) ++dup_count[u];

    bool any_token = false;
    for (const engine::CancelToken& t : unique_cancels) any_token |= t.valid();
    if (!any_token) unique_cancels.clear();

    Executor& ex = executor_for(backend, *g.target);
    engine::PimQueryEngine::BatchOutput out =
        ex.execute_many(queries, opts, unique_cancels);
    const std::uint64_t version = ex.last_data_version();
    for (std::size_t m = 0; m < g.members.size(); ++m) {
      const std::size_t i = g.members[m];
      if (out.errors[slot_of[m]] != nullptr) {
        items[i].error = out.errors[slot_of[m]];
        continue;
      }
      engine::QueryOutput qo = out.outputs[slot_of[m]];
      // batched_queries counts the statements whose answers this execution
      // produced. A fused member served the whole group (duplicates ride
      // along); an unfused one (engine fell back, or a singleton) still
      // served its own duplicates. 0 = genuinely solo, today's path.
      if (qo.stats.batched_queries > 0) {
        qo.stats.batched_queries = g.members.size();
      } else if (dup_count[slot_of[m]] > 1) {
        qo.stats.batched_queries = dup_count[slot_of[m]];
      }
      ResultSet rs(std::move(qo),
                   result_columns(plans[i]->bound, plans[i]->target->schema()),
                   backend);
      rs.set_data_version(version);
      items[i].result = std::move(rs);
    }
  }

  // Everything that cannot share a scan (UPDATEs, joins) runs after the
  // groups, in statement order, exactly as a plain execute() would.
  for (std::size_t i = 0; i < sqls.size(); ++i) {
    if (items[i].error != nullptr || plans[i] == nullptr || batchable(i)) {
      continue;
    }
    try {
      const engine::CancelToken tok = token_of(i);
      if (tok.valid()) {
        engine::ExecOptions member_opts = opts;
        member_opts.cancel = tok;
        items[i].result =
            PreparedStatement(*this, plans[i]).execute(backend, member_opts);
      } else {
        items[i].result = PreparedStatement(*this, plans[i]).execute(backend,
                                                                     opts);
      }
    } catch (...) {
      items[i].error = std::current_exception();
    }
  }
  return items;
}

std::string Session::explain(std::string_view sql_text) {
  return explain(sql_text, opts_.default_backend);
}

std::string Session::explain(std::string_view sql_text, BackendKind backend) {
  const PreparedStatement st = prepare(sql_text);
  if (st.is_update()) {
    throw std::invalid_argument(
        "explain: UPDATE statements have no physical plan rendering");
  }
  if (st.is_join()) {
    const Plan& plan = *st.plan_;
    std::ostringstream ss;
    engine::explain_join_tree(plan.join, plan.join_tables, ss);
    for (std::size_t t = 0; t < plan.join.table_names.size(); ++t) {
      ss << "-- scan " << plan.join.table_names[t] << " --\n"
         << executor_for(backend, *plan.join_tables[t])
                .explain_scan(plan.join.filters[t]);
    }
    return ss.str();
  }
  return executor_for(backend, st.target()).explain(st.bound());
}

void Session::set_default_backend(BackendKind backend) {
  opts_.default_backend = backend;
}

Executor& Session::executor(BackendKind backend) {
  return executor_for(backend, db_->default_target());
}

Executor& Session::executor(BackendKind backend, std::string_view table) {
  return executor_for(backend, db_->table(table));
}

Executor& Session::executor_for(BackendKind backend, const rel::Table& table) {
  const auto key = std::make_pair(backend, &table);
  std::lock_guard lock(executors_mutex_);
  auto it = executors_.find(key);
  if (it != executors_.end()) return *it->second;

  std::unique_ptr<Executor> ex;
  if (const auto kind = engine_kind_of(backend)) {
    ex = std::make_unique<PimExecutor>(*this, *kind, table);
  } else if (backend == BackendKind::kColumnar) {
    ex = std::make_unique<ColumnarExecutor>(*db_, table);
  } else {
    ex = std::make_unique<ReferenceExecutor>(*db_, table);
  }
  return *executors_.emplace(key, std::move(ex)).first->second;
}

const engine::LatencyModels& Session::models(engine::EngineKind kind) {
  return model_cache_->get_or_fit(kind, opts_.pim, opts_.host, opts_.fit,
                                  opts_.verbose);
}

void Session::set_models(engine::EngineKind kind, engine::LatencyModels m) {
  model_cache_->put(kind, std::move(m));
}

engine::PimQueryEngine& Session::pim_engine(engine::EngineKind kind) {
  return static_cast<PimExecutor&>(
             executor_for(backend_of(kind), db_->default_target()))
      .engine();
}

engine::PimQueryEngine& Session::pim_engine(engine::EngineKind kind,
                                            std::string_view table) {
  return static_cast<PimExecutor&>(
             executor_for(backend_of(kind), db_->table(table)))
      .engine();
}

}  // namespace bbpim::db
