// Database: the catalog of the bbpim::db facade.
//
// Holds the registered relations (owned, or attached by reference when the
// caller keeps ownership) together with each table's PIM load policy — how
// a session places it into crossbars when a PIM backend first touches it.
// Query targets resolve against the catalog by FROM-list name; SSB-style
// star queries whose FROM lists only logical source tables fall back to the
// default target (the pre-joined relation in the paper's setup).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "pim/config.hpp"
#include "relational/table.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::db {

struct SessionOptions;
class Session;
class SnapshotManager;
struct Plan;

/// How a table is placed into PIM when a session loads it.
struct LoadPolicy {
  /// Distinct-value statistics cap (PimStore::Options::max_distinct).
  std::size_t max_distinct = 4096;
  /// Two-crossbar part assignment; nullptr = the store's default SSB rule
  /// (fact "lo_*" attributes in part 0, dimension attributes in part 1).
  std::function<int(const std::string&)> part_of;
};

/// Per-table write coordination for the SQL UPDATE path.
///
/// The catalog's registered tables are immutable, but their PIM-resident
/// copies are not: Algorithm-1 updates rewrite crossbar data in place, and
/// every session (and every QueryService worker) owns a PRIVATE store of
/// the table. TableWrites is how those copies stay one logical relation:
///
///   - `gate` is the writer gate. An update holds it exclusively — no read
///     anywhere observes a half-applied update, and the log append point is
///     a total order over updates. Reads hold it shared for their whole
///     execution (catch-up replay + simulated query).
///   - `log` is the ordered update history. A store that has applied the
///     first k entries is at data version k; executors replay the missing
///     suffix into their own store before executing (lazy catch-up), so a
///     store built or idle while updates landed converges deterministically.
///   - `committed` mirrors log.size() atomically (bumped after the append,
///     still under the exclusive gate). It exists so a reader whose private
///     store is already current can see that WITHOUT touching the gate: the
///     read then proceeds gate-free — its store needs no replay and no other
///     session's update can touch it — which removes the reader-side
///     shared-lock contention that made read-mostly HTAP scaling negative.
///     A reader that observes a stale `committed` simply serializes before
///     the in-flight update, exactly like a reader that grabbed the shared
///     gate first.
///
/// Guarded by `gate`: read `log` under a shared lock, append under an
/// exclusive one. `committed` is lock-free.
struct TableWrites {
  mutable std::shared_mutex gate;
  std::vector<sql::BoundUpdate> log;
  std::atomic<std::uint64_t> committed{0};
};

/// Thread-safe: catalog lookups take a shared lock, mutations an exclusive
/// one, so any number of sessions (or QueryService workers) can resolve
/// targets while tables are being registered. Registered tables themselves
/// are immutable through the catalog.
class Database {
 public:
  // Constructor/destructor out of line: SnapshotManager is incomplete here,
  // and an inline defaulted special member would instantiate the snapshots_
  // map's destructor (needed for unwinding) in every including TU.
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  /// Movable while no session is connected (sessions hold a pointer) and no
  /// other thread is touching either operand.
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  /// Registers (and takes ownership of) a relation under `table.name()`.
  /// The first registered table becomes the default query target.
  /// Throws std::invalid_argument for unnamed or duplicate names.
  const rel::Table& register_table(rel::Table table, LoadPolicy policy = {});

  /// Registers a caller-owned relation (must outlive the database).
  const rel::Table& attach_table(const rel::Table& table,
                                 LoadPolicy policy = {});

  bool has_table(std::string_view name) const;
  /// Throws std::invalid_argument for unknown names.
  const rel::Table& table(std::string_view name) const;
  const LoadPolicy& policy(std::string_view name) const;
  const LoadPolicy& policy_of(const rel::Table& table) const;
  /// Registration order.
  std::vector<std::string> table_names() const;

  /// Default query target for FROM lists naming no registered table.
  void set_default_target(std::string_view name);
  const rel::Table& default_target() const;

  /// Resolution rule for a statement's FROM list: the first name registered
  /// in the catalog wins; otherwise the default target. Throws
  /// std::invalid_argument when nothing resolves (empty catalog).
  const rel::Table& resolve_target(const std::vector<std::string>& from) const;

  /// Bumped on every catalog mutation (registration, default-target change);
  /// sessions use it to invalidate plans whose FROM resolution could change.
  std::uint64_t catalog_version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Write-coordination state of a registered/attached table (created on
  /// first use; address stable for the database's lifetime). Accepts the
  /// exact table reference held in the catalog.
  TableWrites& writes(const rel::Table& table);

  /// Updates committed against `table` so far (its current data version).
  /// Lock-free (reads TableWrites::committed).
  std::uint64_t update_version(const rel::Table& table);

  /// The shared snapshot manager for `table` under one PIM placement
  /// (one-xb vs two-xb) and module configuration: every executor of every
  /// session on this database serves that combination from ONE builder
  /// store's published snapshots. Created on first use; address stable for
  /// the database's lifetime.
  SnapshotManager& snapshot_manager(const rel::Table& table, bool two_crossbar,
                                    const pim::PimConfig& pim);

  // --- bound-plan cache ----------------------------------------------------
  // Database-scope: N sessions (QueryService workers) preparing the same SQL
  // text bind it ONCE — the first session's plan is shared by all. Keyed by
  // exact SQL text; the whole cache is invalidated when the catalog version
  // moves (registration / default-target change can alter FROM resolution),
  // so a cached plan is always bound against the current catalog.

  /// The cached plan for `sql`, or null. Counts a hit when found.
  std::shared_ptr<const Plan> find_plan(std::string_view sql);
  /// Publishes a freshly bound plan (first writer wins on a race).
  void cache_plan(std::shared_ptr<const Plan> plan);
  /// The bind-once front door of the cache: returns the cached plan for
  /// `sql`, or runs `bind` to produce, publish, and return it. When N
  /// workers race an uncached text, exactly ONE runs `bind` — the rest
  /// block on its claim and leave as cache hits, so a statement is bound
  /// once per catalog version no matter how many workers prepare it. A
  /// throwing `bind` releases the claim (the exception propagates to its
  /// caller; the next waiter retries the bind).
  std::shared_ptr<const Plan> find_or_bind(
      std::string_view sql,
      const std::function<std::shared_ptr<const Plan>()>& bind);
  std::size_t plan_cache_size();
  /// find_plan calls that returned a plan (the observable half of the
  /// prepare-once guarantee across workers).
  std::uint64_t plan_cache_hits() const {
    return plan_hits_.load(std::memory_order_relaxed);
  }

  /// Opens a session over this catalog (must not outlive the database).
  Session connect();
  Session connect(SessionOptions opts);

 private:
  struct Entry {
    std::unique_ptr<rel::Table> owned;  ///< null for attached tables
    const rel::Table* table = nullptr;
    LoadPolicy policy;
  };

  const rel::Table& add(Entry entry);
  /// Caller must hold mutex_ (shared or exclusive).
  const Entry& entry_locked(std::string_view name) const;

  mutable std::shared_mutex mutex_;
  std::map<std::string, Entry, std::less<>> tables_;
  std::vector<std::string> order_;
  std::string default_target_;
  std::atomic<std::uint64_t> version_{0};
  /// Lazily created per-table write state; unique_ptr keeps addresses
  /// stable across map growth. Guarded by writes_mutex_ (creation only —
  /// TableWrites guards itself afterwards).
  std::mutex writes_mutex_;
  std::map<const rel::Table*, std::unique_ptr<TableWrites>> writes_;
  /// Lazily created per-(table, placement, config) snapshot managers;
  /// unique_ptr keeps addresses stable. Guarded by snapshots_mutex_
  /// (creation only — managers synchronize themselves afterwards).
  std::mutex snapshots_mutex_;
  std::map<std::tuple<const rel::Table*, bool, std::uint64_t>,
           std::unique_ptr<SnapshotManager>>
      snapshots_;
  /// Shared bound plans keyed by SQL text, valid for catalog version
  /// plans_version_ (lazily cleared when the catalog moves). Guarded by
  /// plans_mutex_; hit counting is lock-free.
  std::mutex plans_mutex_;
  std::map<std::string, std::shared_ptr<const Plan>, std::less<>> plans_;
  std::uint64_t plans_version_ = 0;
  std::atomic<std::uint64_t> plan_hits_{0};
  /// SQL texts a find_or_bind caller is currently binding (its claim);
  /// guarded by plans_mutex_, waited on via plans_cv_.
  std::set<std::string, std::less<>> binding_;
  std::condition_variable plans_cv_;
};

}  // namespace bbpim::db
