// QueryService: concurrent query serving over one Database.
//
// A fixed pool of std::thread workers drains a FIFO task queue; each worker
// owns a private Session (per-worker session affinity), so the stateful PIM
// executors — private scratch the simulator mutates per query — are never
// shared across threads. What IS shared is thread-safe: the Database
// catalog (shared-locked reads), one ModelCache (fit-once under lock: N
// workers needing the same engine kind trigger exactly one fitting
// campaign), and the per-table snapshot store — every worker's executor
// pins the same immutable StoreSnapshot for its data version, so there is
// no per-worker data replica and no catch-up replay. The simulator is
// deterministic, so a query returns byte-identical rows and stats no
// matter which worker serves it.
//
//   db::QueryService service(database, {.workers = 4});
//   std::future<db::ResultSet> f = service.submit(
//       "SELECT region, SUM(qty) FROM sales GROUP BY region");
//   db::ResultSet rs = f.get();      // rethrows parse/bind/exec errors
//
// Overload safety (all off by default — the defaults serve exactly like the
// pre-admission service):
//   - AdmissionOptions bounds the queue; a full queue rejects, blocks, or
//     sheds the longest-waiting statement depending on the policy.
//   - ExecOptions::deadline_us starts the statement's deadline clock at
//     submit(), so time spent queued counts; workers settle already-expired
//     statements with engine::QueryTimeout without executing them, and the
//     engine aborts in-flight ones cooperatively at phase boundaries.
//   - Failures classified transient (engine::TransientFault) are retried
//     with capped exponential backoff within RetryOptions' budget.
//   - shutdown() settles still-queued statements with ServiceStopped;
//     statements a worker already picked up complete normally.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "db/backend.hpp"
#include "db/database.hpp"
#include "db/errors.hpp"
#include "db/result_set.hpp"
#include "db/session.hpp"
#include "engine/cancel.hpp"
#include "engine/query_exec.hpp"

namespace bbpim::db {

/// What submit() does when the bounded queue is full.
enum class OverloadPolicy {
  /// Refuse the new statement immediately with OverloadError.
  kReject,
  /// Block the submitter until a slot frees (producer backpressure), up to
  /// AdmissionOptions::block_timeout_us; then OverloadError.
  kBlock,
  /// Admit the new statement by dropping the longest-waiting queued one,
  /// settling its future with OverloadError.
  kShedOldest,
};

/// Bounded admission. Internal work (warm_up's barrier tasks) bypasses
/// admission entirely and never counts against the depth.
struct AdmissionOptions {
  /// Most statements that may wait in the queue. 0 = unbounded (the
  /// pre-admission behavior).
  std::size_t max_queue_depth = 0;
  OverloadPolicy policy = OverloadPolicy::kReject;
  /// kBlock only: how long a submitter waits for a slot before the service
  /// gives up and rejects.
  std::uint64_t block_timeout_us = 1'000'000;
};

/// Retry budget for failures classified transient (engine::TransientFault
/// and subclasses — fault-injection faults, recoverable device hiccups).
/// Anything else is permanent and settles the future on first throw.
struct RetryOptions {
  /// Re-executions after the first attempt. 0 disables retry.
  std::size_t max_retries = 2;
  /// Backoff before retry k (1-based): min(base << (k-1), cap) microseconds.
  std::uint64_t backoff_base_us = 200;
  std::uint64_t backoff_cap_us = 5'000;
};

/// Shared-scan admission (the batch former). When enabled, a worker that
/// pops a submitted statement gathers the other in-flight statements with a
/// matching (backend, options) signature — waiting out a small window for
/// stragglers when the queue runs dry — and serves the whole set through
/// Session::execute_batch: single-table SELECTs over one table fuse into
/// ONE pass over its pages, duplicates of one statement execute once, and
/// everything else runs exactly as today. Per-statement results and errors
/// land on each submitter's future as usual; rows and semantic stats are
/// byte-identical to unbatched serving. Off by default — solo executions
/// then stay byte-identical to the pre-batching service, modeled
/// time/energy included.
struct SharedScanOptions {
  bool enabled = false;
  /// Most statements one fused pass may serve.
  std::size_t max_batch = 8;
  /// How long the batch former keeps waiting for companions once it holds
  /// at least one statement and the queue is empty.
  std::uint64_t gather_window_us = 200;
  /// Graceful degradation: when admission is bounded and the queue has
  /// filled past half its depth, the gather window is multiplied by this
  /// factor — wider gathers fuse more statements per page pass, raising
  /// throughput before the service has to shed. 1 (or unbounded admission)
  /// disables the boost.
  std::size_t overload_window_boost = 4;
};

struct QueryServiceOptions {
  /// Worker threads (each with a private Session). 0 = hardware concurrency
  /// (at least 1).
  std::size_t workers = 0;
  /// Template for every worker's session. When `session.models` is null one
  /// shared ModelCache is created from `model_cache_dir`/`model_cache_tag`
  /// and injected into all workers, preserving fit-once across the pool.
  SessionOptions session;
  /// Shared-scan batched execution of concurrent submissions.
  SharedScanOptions shared_scan;
  /// Bounded admission; unbounded by default.
  AdmissionOptions admission;
  /// Transient-failure retry budget.
  RetryOptions retry;
};

class QueryService {
 public:
  /// Robustness telemetry since construction (monotonic, mutex-consistent).
  struct Counters {
    std::size_t rejected = 0;      ///< admissions refused (kReject, or kBlock
                                   ///< wait timeout)
    std::size_t shed = 0;          ///< queued statements dropped (kShedOldest)
    std::size_t timed_out = 0;     ///< futures settled with QueryTimeout
    std::size_t cancelled = 0;     ///< futures settled with QueryCancelled
    std::size_t retries = 0;       ///< transient-failure re-executions
    std::size_t degraded_gathers = 0;  ///< gathers run with the boosted window
    std::size_t peak_queue_depth = 0;  ///< high-water mark of queue_depth()
  };

  explicit QueryService(Database& db, QueryServiceOptions opts = {});
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // --- asynchronous serving ----------------------------------------------
  /// Enqueues one statement on the default backend — SELECT or UPDATE; the
  /// pool serves mixed read/write traffic. An UPDATE executed by any worker
  /// goes through the table's SnapshotManager: Algorithm 1 runs once in the
  /// shared builder store under the exclusive writer gate, commits to the
  /// per-table update log, and publishes a copy-on-write successor
  /// snapshot. Other workers keep serving their pinned snapshot untouched
  /// and re-pin (a pointer swap, no replay) before their next execution on
  /// that table, so reads anywhere observe a consistent log prefix
  /// (reported by ResultSet::data_version). The future delivers the
  /// ResultSet, or rethrows whatever the statement raised on the worker.
  /// Throws ServiceStopped once shutdown() has been called, OverloadError
  /// when bounded admission refuses the statement; `opts.deadline_us` (when
  /// nonzero) starts counting here, queue wait included.
  std::future<ResultSet> submit(std::string sql_text,
                                const engine::ExecOptions& opts = {});
  std::future<ResultSet> submit(std::string sql_text, BackendKind backend,
                                const engine::ExecOptions& opts = {});

  // --- synchronous batches -----------------------------------------------
  /// Submits the whole batch, then blocks; results come back in input
  /// order. The first failing query's exception is rethrown after the
  /// remaining queries finished (workers never die with the batch).
  std::vector<ResultSet> execute_batch(std::span<const std::string> sqls);
  std::vector<ResultSet> execute_batch(std::span<const std::string> sqls,
                                       BackendKind backend);

  /// Blocks until EVERY worker has built its executor for the default
  /// target on `backend` — the one shared snapshot-store load, per-worker
  /// scratch allocation, and the one shared model fit all happen here, not
  /// inside the first timed queries. Benches call this before the clock
  /// starts. (There is no per-worker replay to warm any more: workers pin
  /// immutable snapshots and re-pin in O(crossbars) when behind.)
  void warm_up(BackendKind backend);

  /// Stops intake, settles still-queued statements with ServiceStopped
  /// (statements already picked up by a worker complete normally), joins
  /// the workers. Idempotent; the destructor calls it.
  void shutdown();

  std::size_t worker_count() const { return sessions_.size(); }
  /// Queries completed (successfully or not) since construction. Rejected
  /// and shed statements never executed and are counted in counters(), not
  /// here.
  std::size_t executed_count() const;
  /// Statements currently waiting in the queue (internal work excluded).
  std::size_t queue_depth() const;
  Counters counters() const;
  const std::shared_ptr<ModelCache>& model_cache() const {
    return model_cache_;
  }

 private:
  struct Task {
    std::function<ResultSet(Session&)> run;
    std::promise<ResultSet> result;
    /// Shared-scan admission metadata; set by submit() only (warm-up and
    /// other internal tasks never fuse).
    bool batchable = false;
    std::string sql;
    bool has_backend = false;
    BackendKind backend = BackendKind::kOneXb;
    engine::ExecOptions opts;
    /// Internal pool maintenance (warm_up): bypasses admission, survives
    /// shutdown's queue sweep (a WarmBarrier member that never ran would
    /// park its siblings forever), carries no serving timings.
    bool internal = false;
    /// Deadline/cancellation token, armed at submit() so queue wait counts
    /// against the deadline. Invalid when the statement has neither.
    engine::CancelToken cancel;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point dequeued;
  };

  std::future<ResultSet> enqueue(Task task);
  /// Blocks on every future in order; rethrows the first failure only after
  /// the whole set completed (workers never die with a batch).
  static std::vector<ResultSet> drain(
      std::vector<std::future<ResultSet>> futures);
  void worker_loop(std::size_t index);
  /// Serves >= 2 gathered statements through session.execute_batch and
  /// settles each task's promise (counting every member in executed_).
  void serve_batch(Session& session, std::vector<Task>& batch);
  /// Executes `task` with the transient-retry budget and settles its
  /// promise. `consumed_attempts` counts executions that already failed
  /// transiently elsewhere (a batch member retried solo) against the budget.
  void run_task(Session& session, Task& task,
                std::size_t consumed_attempts = 0);
  void settle_success(Task& task, ResultSet rs);
  /// Settles with `error`, counting it (timed_out/cancelled/executed_).
  void settle_error(Task& task, std::exception_ptr error);

  Database* db_;
  QueryServiceOptions opts_;
  std::shared_ptr<ModelCache> model_cache_;
  /// One session per worker, index-aligned with workers_; built before the
  /// threads start and only ever touched by its own worker afterwards.
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  /// kBlock submitters park here; workers signal after dequeuing.
  std::condition_variable queue_not_full_;
  std::deque<Task> queue_;
  bool accepting_ = true;
  std::size_t executed_ = 0;
  /// Statements in queue_ that count against admission (== queue_ minus
  /// internal tasks).
  std::size_t external_queued_ = 0;
  Counters counters_;
  /// Serializes warm_up calls: two interleaved warm-up barriers on one FIFO
  /// queue could each hold half the workers forever.
  std::mutex warm_mutex_;
};

}  // namespace bbpim::db
