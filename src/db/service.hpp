// QueryService: concurrent query serving over one Database.
//
// A fixed pool of std::thread workers drains a FIFO task queue; each worker
// owns a private Session (per-worker session affinity), so the stateful PIM
// executors — private scratch the simulator mutates per query — are never
// shared across threads. What IS shared is thread-safe: the Database
// catalog (shared-locked reads), one ModelCache (fit-once under lock: N
// workers needing the same engine kind trigger exactly one fitting
// campaign), and the per-table snapshot store — every worker's executor
// pins the same immutable StoreSnapshot for its data version, so there is
// no per-worker data replica and no catch-up replay. The simulator is
// deterministic, so a query returns byte-identical rows and stats no
// matter which worker serves it.
//
//   db::QueryService service(database, {.workers = 4});
//   std::future<db::ResultSet> f = service.submit(
//       "SELECT region, SUM(qty) FROM sales GROUP BY region");
//   db::ResultSet rs = f.get();      // rethrows parse/bind/exec errors
//
// Destruction is graceful: already-submitted work is drained before the
// workers join (call shutdown() explicitly for the same behavior earlier).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "db/backend.hpp"
#include "db/database.hpp"
#include "db/result_set.hpp"
#include "db/session.hpp"
#include "engine/query_exec.hpp"

namespace bbpim::db {

/// Shared-scan admission (the batch former). When enabled, a worker that
/// pops a submitted statement gathers the other in-flight statements with a
/// matching (backend, options) signature — waiting out a small window for
/// stragglers when the queue runs dry — and serves the whole set through
/// Session::execute_batch: single-table SELECTs over one table fuse into
/// ONE pass over its pages, duplicates of one statement execute once, and
/// everything else runs exactly as today. Per-statement results and errors
/// land on each submitter's future as usual; rows and semantic stats are
/// byte-identical to unbatched serving. Off by default — solo executions
/// then stay byte-identical to the pre-batching service, modeled
/// time/energy included.
struct SharedScanOptions {
  bool enabled = false;
  /// Most statements one fused pass may serve.
  std::size_t max_batch = 8;
  /// How long the batch former keeps waiting for companions once it holds
  /// at least one statement and the queue is empty.
  std::uint64_t gather_window_us = 200;
};

struct QueryServiceOptions {
  /// Worker threads (each with a private Session). 0 = hardware concurrency
  /// (at least 1).
  std::size_t workers = 0;
  /// Template for every worker's session. When `session.models` is null one
  /// shared ModelCache is created from `model_cache_dir`/`model_cache_tag`
  /// and injected into all workers, preserving fit-once across the pool.
  SessionOptions session;
  /// Shared-scan batched execution of concurrent submissions.
  SharedScanOptions shared_scan;
};

class QueryService {
 public:
  explicit QueryService(Database& db, QueryServiceOptions opts = {});
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // --- asynchronous serving ----------------------------------------------
  /// Enqueues one statement on the default backend — SELECT or UPDATE; the
  /// pool serves mixed read/write traffic. An UPDATE executed by any worker
  /// goes through the table's SnapshotManager: Algorithm 1 runs once in the
  /// shared builder store under the exclusive writer gate, commits to the
  /// per-table update log, and publishes a copy-on-write successor
  /// snapshot. Other workers keep serving their pinned snapshot untouched
  /// and re-pin (a pointer swap, no replay) before their next execution on
  /// that table, so reads anywhere observe a consistent log prefix
  /// (reported by ResultSet::data_version). The future delivers the
  /// ResultSet, or rethrows whatever the statement raised on the worker.
  /// Throws std::runtime_error once shutdown() has been called.
  std::future<ResultSet> submit(std::string sql_text,
                                const engine::ExecOptions& opts = {});
  std::future<ResultSet> submit(std::string sql_text, BackendKind backend,
                                const engine::ExecOptions& opts = {});

  // --- synchronous batches -----------------------------------------------
  /// Submits the whole batch, then blocks; results come back in input
  /// order. The first failing query's exception is rethrown after the
  /// remaining queries finished (workers never die with the batch).
  std::vector<ResultSet> execute_batch(std::span<const std::string> sqls);
  std::vector<ResultSet> execute_batch(std::span<const std::string> sqls,
                                       BackendKind backend);

  /// Blocks until EVERY worker has built its executor for the default
  /// target on `backend` — the one shared snapshot-store load, per-worker
  /// scratch allocation, and the one shared model fit all happen here, not
  /// inside the first timed queries. Benches call this before the clock
  /// starts. (There is no per-worker replay to warm any more: workers pin
  /// immutable snapshots and re-pin in O(crossbars) when behind.)
  void warm_up(BackendKind backend);

  /// Stops intake, drains already-queued work, joins the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  std::size_t worker_count() const { return sessions_.size(); }
  /// Queries completed (successfully or not) since construction.
  std::size_t executed_count() const;
  const std::shared_ptr<ModelCache>& model_cache() const {
    return model_cache_;
  }

 private:
  struct Task {
    std::function<ResultSet(Session&)> run;
    std::promise<ResultSet> result;
    /// Shared-scan admission metadata; set by submit() only (warm-up and
    /// other internal tasks never fuse).
    bool batchable = false;
    std::string sql;
    bool has_backend = false;
    BackendKind backend = BackendKind::kOneXb;
    engine::ExecOptions opts;
  };

  std::future<ResultSet> enqueue(Task task);
  /// Blocks on every future in order; rethrows the first failure only after
  /// the whole set completed (workers never die with a batch).
  static std::vector<ResultSet> drain(
      std::vector<std::future<ResultSet>> futures);
  void worker_loop(std::size_t index);
  /// Serves >= 2 gathered statements through session.execute_batch and
  /// settles each task's promise (counting every member in executed_).
  void serve_batch(Session& session, std::vector<Task>& batch);

  Database* db_;
  QueryServiceOptions opts_;
  std::shared_ptr<ModelCache> model_cache_;
  /// One session per worker, index-aligned with workers_; built before the
  /// threads start and only ever touched by its own worker afterwards.
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<Task> queue_;
  bool accepting_ = true;
  std::size_t executed_ = 0;
  /// Serializes warm_up calls: two interleaved warm-up barriers on one FIFO
  /// queue could each hold half the workers forever.
  std::mutex warm_mutex_;
};

}  // namespace bbpim::db
