#include "ssb/dbgen.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "engine/prejoin.hpp"
#include "ssb/names.hpp"

namespace bbpim::ssb {
namespace {

constexpr std::size_t kDays = 2555;  // 7 years x 365 (leap days ignored)
constexpr std::uint32_t kMonthLen[12] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
constexpr std::uint32_t kMaxPartPrice = 20000;
constexpr std::uint32_t kMinPartPrice = 90;

std::shared_ptr<const rel::Dictionary> make_dict(
    std::vector<std::string> values) {
  return std::make_shared<const rel::Dictionary>(
      rel::Dictionary::from_values(std::move(values)));
}

template <typename Range>
std::shared_ptr<const rel::Dictionary> make_dict_of(const Range& range) {
  std::vector<std::string> values;
  for (const auto& v : range) values.emplace_back(v);
  return make_dict(std::move(values));
}

rel::Attribute int_attr(std::string name, std::uint64_t max_value) {
  return {std::move(name), rel::DataType::kInt, rel::bits_for_max(max_value),
          nullptr};
}

rel::Attribute str_attr(std::string name,
                        std::shared_ptr<const rel::Dictionary> dict) {
  const std::uint32_t bits = dict->code_bits();
  return {std::move(name), rel::DataType::kString, bits, std::move(dict)};
}

std::uint64_t code_of(const rel::Attribute& attr, const std::string& value) {
  const auto c = attr.dict->code(value);
  if (!c) {
    throw std::logic_error("dbgen: value '" + value + "' missing from dict of " +
                           attr.name);
  }
  return *c;
}

struct DateParts {
  std::uint32_t year, month /*1..12*/, day /*1..31*/, day_of_year /*1..365*/;
};

DateParts split_date(std::size_t day_index) {
  DateParts d;
  d.year = static_cast<std::uint32_t>(1992 + day_index / 365);
  std::uint32_t diy = static_cast<std::uint32_t>(day_index % 365);
  d.day_of_year = diy + 1;
  d.month = 1;
  for (std::uint32_t m = 0; m < 12; ++m) {
    if (diy < kMonthLen[m]) {
      d.month = m + 1;
      d.day = diy + 1;
      return d;
    }
    diy -= kMonthLen[m];
  }
  throw std::logic_error("split_date: bad day index");
}

std::string iso_date(const DateParts& d) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04u-%02u-%02u", d.year, d.month, d.day);
  return buf;
}

std::string yearmonth(const DateParts& d) {
  return std::string(kMonthAbbrev[d.month - 1]) + std::to_string(d.year);
}

std::string season_of(std::uint32_t month) {
  if (month == 12) return std::string(kSeasons[4]);  // Christmas
  if (month <= 2) return std::string(kSeasons[0]);   // Winter
  if (month <= 5) return std::string(kSeasons[1]);   // Spring
  if (month <= 8) return std::string(kSeasons[2]);   // Summer
  return std::string(kSeasons[3]);                   // Fall
}

std::string random_address(Rng& rng) {
  static const char* const kStreets[] = {"Oak", "Main", "Pine", "Maple",
                                         "Cedar", "Elm", "Lake", "Hill"};
  return std::to_string(1 + rng.next_below(9999)) + " " +
         kStreets[rng.next_below(8)] + " St.";
}

std::string random_phone(std::size_t nation, Rng& rng) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%02zu-%03llu-%03llu-%04llu", 10 + nation,
                static_cast<unsigned long long>(100 + rng.next_below(900)),
                static_cast<unsigned long long>(100 + rng.next_below(900)),
                static_cast<unsigned long long>(1000 + rng.next_below(9000)));
  return buf;
}

}  // namespace

SsbData generate(const SsbConfig& cfg) {
  if (cfg.scale_factor <= 0) {
    throw std::invalid_argument("generate: non-positive scale factor");
  }
  const double sf = cfg.scale_factor;
  const std::size_t customers =
      std::max<std::size_t>(200, static_cast<std::size_t>(30000 * sf));
  const std::size_t suppliers =
      std::max<std::size_t>(40, static_cast<std::size_t>(2000 * sf));
  const std::size_t parts =
      sf <= 1.0 ? std::max<std::size_t>(400,
                                        static_cast<std::size_t>(200000 * sf))
                : static_cast<std::size_t>(200000 * (1.0 + std::log2(sf)));
  const std::size_t orders =
      std::max<std::size_t>(250, static_cast<std::size_t>(1500000 * sf));
  constexpr std::size_t kLinesPerOrder = 4;

  Rng root(cfg.seed);
  Rng rng_cust = root.fork(1);
  Rng rng_supp = root.fork(2);
  Rng rng_part = root.fork(3);
  Rng rng_lo = root.fork(4);

  // --- shared dictionaries --------------------------------------------------
  const auto region_dict = make_dict_of(kRegions);
  const auto nation_dict = make_dict_of(kNations);
  const auto city_dict = make_dict(city_names());

  // ==========================================================================
  // DATE
  // ==========================================================================
  rel::Table date_table = [&] {
    std::vector<std::string> dates, yearmonths;
    for (std::size_t d = 0; d < kDays; ++d) {
      const DateParts p = split_date(d);
      dates.push_back(iso_date(p));
      yearmonths.push_back(yearmonth(p));
    }
    std::vector<rel::Attribute> attrs;
    attrs.push_back(int_attr("d_datekey", kDays - 1));
    attrs.push_back(str_attr("d_date", make_dict(dates)));
    attrs.push_back(str_attr("d_dayofweek", make_dict_of(kDaysOfWeek)));
    attrs.push_back(str_attr("d_month", make_dict_of(kMonths)));
    attrs.push_back(int_attr("d_year", 1998));
    attrs.push_back(int_attr("d_yearmonthnum", 199812));
    attrs.push_back(str_attr("d_yearmonth", make_dict(yearmonths)));
    attrs.push_back(int_attr("d_daynuminweek", 7));
    attrs.push_back(int_attr("d_daynuminmonth", 31));
    attrs.push_back(int_attr("d_daynuminyear", 365));
    attrs.push_back(int_attr("d_monthnuminyear", 12));
    attrs.push_back(int_attr("d_weeknuminyear", 53));
    attrs.push_back(str_attr("d_sellingseason", make_dict_of(kSeasons)));
    attrs.push_back(int_attr("d_lastdayinweekfl", 1));
    attrs.push_back(int_attr("d_lastdayinmonthfl", 1));
    attrs.push_back(int_attr("d_holidayfl", 1));
    attrs.push_back(int_attr("d_weekdayfl", 1));
    rel::Table t(rel::Schema(std::move(attrs)), "date");
    t.reserve(kDays);
    for (std::size_t d = 0; d < kDays; ++d) {
      const DateParts p = split_date(d);
      const std::uint32_t dow = static_cast<std::uint32_t>(d % 7);
      const std::uint64_t row[] = {
          d,
          code_of(t.schema().attribute(1), iso_date(p)),
          code_of(t.schema().attribute(2), std::string(kDaysOfWeek[dow])),
          code_of(t.schema().attribute(3), std::string(kMonths[p.month - 1])),
          p.year,
          static_cast<std::uint64_t>(p.year) * 100 + p.month,
          code_of(t.schema().attribute(6), yearmonth(p)),
          dow + 1,
          p.day,
          p.day_of_year,
          p.month,
          (p.day_of_year - 1) / 7 + 1,
          code_of(t.schema().attribute(12), season_of(p.month)),
          dow == 6 ? 1ULL : 0ULL,
          p.day == kMonthLen[p.month - 1] ? 1ULL : 0ULL,
          (p.day_of_year == 1 || p.day_of_year == 359) ? 1ULL : 0ULL,
          dow < 5 ? 1ULL : 0ULL,
      };
      t.append_row(row);
    }
    return t;
  }();

  // ==========================================================================
  // CUSTOMER — city drawn from the Zipf hierarchy.
  // ==========================================================================
  const ZipfSampler city_zipf(250, cfg.zipf_theta);
  rel::Table customer_table = [&] {
    std::vector<std::string> names, addresses, phones;
    std::vector<std::size_t> city_ranks(customers);
    for (std::size_t i = 0; i < customers; ++i) {
      const std::size_t rank = city_zipf.sample(rng_cust);
      city_ranks[i] = rank;
      char nbuf[32];
      std::snprintf(nbuf, sizeof nbuf, "Customer#%09zu", i + 1);
      names.emplace_back(nbuf);
      addresses.push_back(random_address(rng_cust));
      phones.push_back(random_phone(city_nation(rank), rng_cust));
    }
    std::vector<rel::Attribute> attrs;
    attrs.push_back(int_attr("c_custkey", customers));
    attrs.push_back(str_attr("c_name", make_dict(names)));
    attrs.push_back(str_attr("c_address", make_dict(addresses)));
    attrs.push_back(str_attr("c_city", city_dict));
    attrs.push_back(str_attr("c_nation", nation_dict));
    attrs.push_back(str_attr("c_region", region_dict));
    attrs.push_back(str_attr("c_phone", make_dict(phones)));
    attrs.push_back(str_attr("c_mktsegment", make_dict_of(kMktSegments)));
    rel::Table t(rel::Schema(std::move(attrs)), "customer");
    t.reserve(customers);
    for (std::size_t i = 0; i < customers; ++i) {
      const std::size_t rank = city_ranks[i];
      const std::uint64_t row[] = {
          i + 1,
          code_of(t.schema().attribute(1), names[i]),
          code_of(t.schema().attribute(2), addresses[i]),
          code_of(t.schema().attribute(3), city_name(rank)),
          code_of(t.schema().attribute(4),
                  std::string(kNations[city_nation(rank)])),
          code_of(t.schema().attribute(5),
                  std::string(kRegions[city_region(rank)])),
          code_of(t.schema().attribute(6), phones[i]),
          rng_cust.next_below(kMktSegments.size()),
      };
      t.append_row(row);
    }
    return t;
  }();

  // ==========================================================================
  // SUPPLIER — same hierarchy, independent Zipf stream.
  // ==========================================================================
  rel::Table supplier_table = [&] {
    std::vector<std::string> names, addresses, phones;
    std::vector<std::size_t> city_ranks(suppliers);
    for (std::size_t i = 0; i < suppliers; ++i) {
      const std::size_t rank = city_zipf.sample(rng_supp);
      city_ranks[i] = rank;
      char nbuf[32];
      std::snprintf(nbuf, sizeof nbuf, "Supplier#%09zu", i + 1);
      names.emplace_back(nbuf);
      addresses.push_back(random_address(rng_supp));
      phones.push_back(random_phone(city_nation(rank), rng_supp));
    }
    std::vector<rel::Attribute> attrs;
    attrs.push_back(int_attr("s_suppkey", suppliers));
    attrs.push_back(str_attr("s_name", make_dict(names)));
    attrs.push_back(str_attr("s_address", make_dict(addresses)));
    attrs.push_back(str_attr("s_city", city_dict));
    attrs.push_back(str_attr("s_nation", nation_dict));
    attrs.push_back(str_attr("s_region", region_dict));
    attrs.push_back(str_attr("s_phone", make_dict(phones)));
    rel::Table t(rel::Schema(std::move(attrs)), "supplier");
    t.reserve(suppliers);
    for (std::size_t i = 0; i < suppliers; ++i) {
      const std::size_t rank = city_ranks[i];
      const std::uint64_t row[] = {
          i + 1,
          code_of(t.schema().attribute(1), names[i]),
          code_of(t.schema().attribute(2), addresses[i]),
          code_of(t.schema().attribute(3), city_name(rank)),
          code_of(t.schema().attribute(4),
                  std::string(kNations[city_nation(rank)])),
          code_of(t.schema().attribute(5),
                  std::string(kRegions[city_region(rank)])),
          code_of(t.schema().attribute(6), phones[i]),
      };
      t.append_row(row);
    }
    return t;
  }();

  // ==========================================================================
  // PART — brand drawn from the Zipf hierarchy; price kept for lineorder.
  // ==========================================================================
  const ZipfSampler brand_zipf(1000, cfg.zipf_theta);
  std::vector<std::uint32_t> part_price(parts);
  rel::Table part_table = [&] {
    std::vector<std::string> mfgrs, categories, brands;
    for (std::size_t c = 0; c < 25; ++c) categories.push_back(category_name(c));
    for (std::size_t m = 0; m < 25; ++m) mfgrs.push_back(mfgr_name(m));
    for (std::size_t b = 0; b < 1000; ++b) brands.push_back(brand_name(b));
    std::vector<std::string> part_names;
    const auto& colors = part_colors();
    for (const std::string& c1 : colors) {
      for (const std::string& c2 : colors) {
        if (&c1 != &c2) part_names.push_back(c1 + " " + c2);
      }
    }
    std::vector<rel::Attribute> attrs;
    attrs.push_back(int_attr("p_partkey", parts));
    attrs.push_back(str_attr("p_name", make_dict(part_names)));
    attrs.push_back(str_attr("p_mfgr", make_dict(mfgrs)));
    attrs.push_back(str_attr("p_category", make_dict(categories)));
    attrs.push_back(str_attr("p_brand1", make_dict(brands)));
    attrs.push_back(str_attr("p_color", make_dict_of(colors)));
    attrs.push_back(str_attr("p_type", make_dict_of(part_types())));
    attrs.push_back(int_attr("p_size", 50));
    attrs.push_back(str_attr("p_container", make_dict_of(part_containers())));
    rel::Table t(rel::Schema(std::move(attrs)), "part");
    t.reserve(parts);
    const auto& types = part_types();
    const auto& containers = part_containers();
    for (std::size_t i = 0; i < parts; ++i) {
      const std::size_t rank = brand_zipf.sample(rng_part);
      const std::size_t color1 = rng_part.next_below(colors.size());
      std::size_t color2 = rng_part.next_below(colors.size());
      if (color2 == color1) color2 = (color2 + 1) % colors.size();
      part_price[i] = static_cast<std::uint32_t>(
          kMinPartPrice + rng_part.next_below(kMaxPartPrice - kMinPartPrice));
      const std::uint64_t row[] = {
          i + 1,
          code_of(t.schema().attribute(1),
                  colors[color1] + " " + colors[color2]),
          code_of(t.schema().attribute(2), mfgr_name(rank % 25)),
          code_of(t.schema().attribute(3), category_name(rank % 25)),
          code_of(t.schema().attribute(4), brand_name(rank)),
          rng_part.next_below(colors.size()),
          rng_part.next_below(types.size()),
          1 + rng_part.next_below(50),
          rng_part.next_below(containers.size()),
      };
      t.append_row(row);
    }
    return t;
  }();

  // ==========================================================================
  // LINEORDER — uniform foreign keys and filter attributes; skew enters
  // through the dimension hierarchies above.
  // ==========================================================================
  rel::Table lineorder_table = [&] {
    const std::uint64_t max_ext = 50ULL * kMaxPartPrice;
    std::vector<rel::Attribute> attrs;
    attrs.push_back(int_attr("lo_orderkey", orders));
    attrs.push_back(int_attr("lo_linenumber", kLinesPerOrder));
    attrs.push_back(int_attr("lo_custkey", customers));
    attrs.push_back(int_attr("lo_partkey", parts));
    attrs.push_back(int_attr("lo_suppkey", suppliers));
    attrs.push_back(int_attr("lo_orderdate", kDays - 1));
    attrs.push_back(str_attr("lo_orderpriority", make_dict_of(kOrderPriorities)));
    attrs.push_back(int_attr("lo_shippriority", 1));
    attrs.push_back(int_attr("lo_quantity", 50));
    attrs.push_back(int_attr("lo_extendedprice", max_ext));
    attrs.push_back(int_attr("lo_ordtotalprice", max_ext * kLinesPerOrder));
    attrs.push_back(int_attr("lo_discount", 10));
    attrs.push_back(int_attr("lo_revenue", max_ext));
    attrs.push_back(int_attr("lo_supplycost", 1000 + kMaxPartPrice * 55 / 100));
    attrs.push_back(int_attr("lo_tax", 8));
    attrs.push_back(int_attr("lo_commitdate", kDays - 1));
    attrs.push_back(str_attr("lo_shipmode", make_dict_of(kShipModes)));
    rel::Table t(rel::Schema(std::move(attrs)), "lineorder");
    t.reserve(orders * kLinesPerOrder);

    struct Line {
      std::uint64_t part, supp, quantity, price, discount, tax, shipmode;
    };
    std::array<Line, kLinesPerOrder> lines;
    for (std::size_t o = 0; o < orders; ++o) {
      const std::uint64_t orderdate = rng_lo.next_below(kDays);
      const std::uint64_t custkey = 1 + rng_lo.next_below(customers);
      const std::uint64_t priority = rng_lo.next_below(kOrderPriorities.size());
      std::uint64_t ordtotal = 0;
      for (auto& ln : lines) {
        ln.part = 1 + rng_lo.next_below(parts);
        ln.supp = 1 + rng_lo.next_below(suppliers);
        ln.quantity = 1 + rng_lo.next_below(50);
        ln.discount = rng_lo.next_below(11);
        ln.tax = rng_lo.next_below(9);
        ln.shipmode = rng_lo.next_below(kShipModes.size());
        ln.price = ln.quantity * part_price[ln.part - 1];
        ordtotal += ln.price;
      }
      const std::uint64_t commitdate =
          std::min<std::uint64_t>(kDays - 1, orderdate + 30 +
                                                 rng_lo.next_below(61));
      for (std::size_t l = 0; l < kLinesPerOrder; ++l) {
        const Line& ln = lines[l];
        const std::uint64_t revenue = ln.price * (100 - ln.discount) / 100;
        const std::uint64_t supplycost =
            1000 + part_price[ln.part - 1] * 55 / 100;
        const std::uint64_t row[] = {
            o + 1,      l + 1,      custkey,      ln.part,
            ln.supp,    orderdate,  priority,     0,
            ln.quantity, ln.price,  ordtotal,     ln.discount,
            revenue,    supplycost, ln.tax,       commitdate,
            ln.shipmode,
        };
        t.append_row(row);
      }
    }
    return t;
  }();

  return SsbData{std::move(date_table), std::move(customer_table),
                 std::move(supplier_table), std::move(part_table),
                 std::move(lineorder_table)};
}

rel::Table prejoin_ssb(const SsbData& data) {
  const engine::DimensionSpec specs[] = {
      {&data.date, "lo_orderdate", "d_datekey", {}},
      {&data.customer, "lo_custkey", "c_custkey", {"c_name", "c_address"}},
      {&data.supplier, "lo_suppkey", "s_suppkey", {"s_name", "s_address"}},
      {&data.part, "lo_partkey", "p_partkey", {}},
  };
  return engine::prejoin(data.lineorder, specs, "ssb_prejoined");
}

}  // namespace bbpim::ssb
