// Star Schema Benchmark data generation (Section V-A).
//
// Generates the SSB star schema at a configurable scale factor with the
// skewed population of Rabl et al. [15]: GROUP-BY identifier hierarchies
// (customer/supplier city -> nation -> region; part brand -> category ->
// mfgr) are drawn from a Zipf distribution whose ranks interleave the
// hierarchy, so leaf subgroup sizes are heavily skewed — what the hybrid
// GROUP-BY technique exploits — while the coarse attributes the queries
// filter on keep their uniform selectivities (region 1/5, nation 1/25),
// matching the paper's "similar query selectivity" requirement without
// changing the query constants. Filter attributes (dates, quantity,
// discount) are uniform.
#pragma once

#include <cstdint>

#include "relational/table.hpp"

namespace bbpim::ssb {

struct SsbConfig {
  /// Scale factor: lineorder has 6,000,000 * sf rows (as 1,500,000 * sf
  /// orders of 4 lines), customer 30,000 * sf, supplier 2,000 * sf,
  /// part 200,000 * min(sf, 1) * (1 + log2(max(sf, 1))), date 2555 days.
  double scale_factor = 0.2;
  /// Zipf exponent for the skewed hierarchies (0 = uniform).
  double zipf_theta = 0.75;
  std::uint64_t seed = 42;
};

struct SsbData {
  rel::Table date;
  rel::Table customer;
  rel::Table supplier;
  rel::Table part;
  rel::Table lineorder;
};

/// Generates the five relations. Deterministic for a given config.
SsbData generate(const SsbConfig& cfg);

/// The paper's pre-joined relation: lineorder equi-joined with all four
/// dimensions on their keys, dropping the NAME and ADDRESS attributes of
/// CUSTOMER and SUPPLIER so a record fits one crossbar row (Section V-A).
rel::Table prejoin_ssb(const SsbData& data);

}  // namespace bbpim::ssb
