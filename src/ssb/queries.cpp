#include "ssb/queries.hpp"

#include <array>
#include <stdexcept>
#include <string>

namespace bbpim::ssb {
namespace {

constexpr std::array<SsbQuery, 13> kQueries = {{
    {"1.1",
     "SELECT SUM(lo_extendedprice * lo_discount) AS revenue "
     "FROM lineorder, date "
     "WHERE lo_orderdate = d_datekey AND d_year = 1993 "
     "AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25;",
     2.3e-2, 1},
    {"1.2",
     "SELECT SUM(lo_extendedprice * lo_discount) AS revenue "
     "FROM lineorder, date "
     "WHERE lo_orderdate = d_datekey AND d_yearmonthnum = 199401 "
     "AND lo_discount BETWEEN 4 AND 6 AND lo_quantity BETWEEN 26 AND 35;",
     6.6e-4, 1},
    {"1.3",
     "SELECT SUM(lo_extendedprice * lo_discount) AS revenue "
     "FROM lineorder, date "
     "WHERE lo_orderdate = d_datekey AND d_weeknuminyear = 6 AND d_year = 1994 "
     "AND lo_discount BETWEEN 5 AND 7 AND lo_quantity BETWEEN 26 AND 35;",
     8.4e-5, 1},
    {"2.1",
     "SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1 "
     "FROM lineorder, date, part, supplier "
     "WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey "
     "AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12' "
     "AND s_region = 'AMERICA' "
     "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1;",
     1.2e-2, 280},
    {"2.2",
     "SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1 "
     "FROM lineorder, date, part, supplier "
     "WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey "
     "AND lo_suppkey = s_suppkey "
     "AND p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228' AND s_region = 'ASIA' "
     "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1;",
     1.6e-3, 56},
    {"2.3",
     "SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1 "
     "FROM lineorder, date, part, supplier "
     "WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey "
     "AND lo_suppkey = s_suppkey AND p_brand1 = 'MFGR#2221' "
     "AND s_region = 'EUROPE' "
     "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1;",
     2e-4, 7},
    {"3.1",
     "SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue "
     "FROM customer, lineorder, supplier, date "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_orderdate = d_datekey AND c_region = 'ASIA' "
     "AND s_region = 'ASIA' AND d_year >= 1992 AND d_year <= 1997 "
     "GROUP BY c_nation, s_nation, d_year "
     "ORDER BY d_year ASC, revenue DESC;",
     3.4e-2, 150},
    {"3.2",
     "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue "
     "FROM customer, lineorder, supplier, date "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_orderdate = d_datekey AND c_nation = 'UNITED STATES' "
     "AND s_nation = 'UNITED STATES' AND d_year >= 1992 AND d_year <= 1997 "
     "GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC;",
     1.3e-3, 600},
    {"3.3",
     "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue "
     "FROM customer, lineorder, supplier, date "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_orderdate = d_datekey "
     "AND c_city IN ('UNITED KI1', 'UNITED KI5') "
     "AND s_city IN ('UNITED KI1', 'UNITED KI5') "
     "AND d_year >= 1992 AND d_year <= 1997 "
     "GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC;",
     4.7e-5, 24},
    {"3.4",
     "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue "
     "FROM customer, lineorder, supplier, date "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_orderdate = d_datekey "
     "AND c_city IN ('UNITED KI1', 'UNITED KI5') "
     "AND s_city IN ('UNITED KI1', 'UNITED KI5') AND d_yearmonth = 'Dec1997' "
     "GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC;",
     6.6e-7, 4},
    {"4.1",
     "SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit "
     "FROM date, customer, supplier, part, lineorder "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_partkey = p_partkey AND lo_orderdate = d_datekey "
     "AND c_region = 'AMERICA' AND s_region = 'AMERICA' "
     "AND p_mfgr IN ('MFGR#1', 'MFGR#2') "
     "GROUP BY d_year, c_nation ORDER BY d_year, c_nation;",
     2e-2, 35},
    {"4.2",
     "SELECT d_year, s_nation, p_category, "
     "SUM(lo_revenue - lo_supplycost) AS profit "
     "FROM date, customer, supplier, part, lineorder "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_partkey = p_partkey AND lo_orderdate = d_datekey "
     "AND c_region = 'AMERICA' AND s_region = 'AMERICA' "
     "AND d_year IN (1997, 1998) AND p_mfgr IN ('MFGR#1', 'MFGR#2') "
     "GROUP BY d_year, s_nation, p_category "
     "ORDER BY d_year, s_nation, p_category;",
     2.3e-3, 50},
    {"4.3",
     "SELECT d_year, s_city, p_brand1, "
     "SUM(lo_revenue - lo_supplycost) AS profit "
     "FROM date, customer, supplier, part, lineorder "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_partkey = p_partkey AND lo_orderdate = d_datekey "
     "AND s_nation = 'UNITED STATES' AND d_year IN (1997, 1998) "
     "AND p_category = 'MFGR#14' "
     "GROUP BY d_year, s_city, p_brand1 ORDER BY d_year, s_city, p_brand1;",
     9.1e-5, 800},
}};

}  // namespace

std::span<const SsbQuery> queries() { return kQueries; }

const SsbQuery& query(std::string_view id) {
  for (const SsbQuery& q : kQueries) {
    if (q.id == id) return q;
  }
  throw std::out_of_range("unknown SSB query " + std::string(id));
}

}  // namespace bbpim::ssb
