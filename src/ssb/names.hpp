// SSB name domains (nations, regions, colors, types, containers, ...).
//
// The 25 nations are ordered so that nation index % 5 gives the region —
// each region has exactly five nations, so the rank-interleaved Zipf
// assignment of DESIGN.md keeps region selectivity at ~1/5 while leaf
// subgroups (cities, brands) stay skewed.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bbpim::ssb {

inline constexpr std::array<std::string_view, 5> kRegions = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

/// Nation i belongs to region i % 5.
inline constexpr std::array<std::string_view, 25> kNations = {
    "ALGERIA",    "ARGENTINA", "CHINA",     "FRANCE",         "EGYPT",
    "ETHIOPIA",   "BRAZIL",    "INDIA",     "GERMANY",        "IRAN",
    "KENYA",      "CANADA",    "INDONESIA", "ROMANIA",        "IRAQ",
    "MOROCCO",    "PERU",      "JAPAN",     "RUSSIA",         "JORDAN",
    "MOZAMBIQUE", "UNITED STATES", "VIETNAM", "UNITED KINGDOM",
    "SAUDI ARABIA"};

inline constexpr std::array<std::string_view, 7> kDaysOfWeek = {
    "Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
    "Saturday"};

inline constexpr std::array<std::string_view, 12> kMonths = {
    "January", "February", "March",     "April",   "May",      "June",
    "July",    "August",   "September", "October", "November", "December"};

inline constexpr std::array<std::string_view, 12> kMonthAbbrev = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

inline constexpr std::array<std::string_view, 5> kSeasons = {
    "Winter", "Spring", "Summer", "Fall", "Christmas"};

inline constexpr std::array<std::string_view, 5> kMktSegments = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"};

inline constexpr std::array<std::string_view, 5> kOrderPriorities = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};

inline constexpr std::array<std::string_view, 7> kShipModes = {
    "AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"};

/// 92 part colors (TPC-H's color vocabulary).
const std::vector<std::string>& part_colors();

/// 150 part types ("STANDARD ANODIZED TIN", ...).
const std::vector<std::string>& part_types();

/// 40 containers ("SM CASE", ...).
const std::vector<std::string>& part_containers();

/// 250 city names: first 9 characters of the nation padded with '#', plus a
/// digit 0-9 (SSB convention, e.g. "UNITED KI1"). City rank r belongs to
/// nation r % 25 and carries digit r / 25.
std::vector<std::string> city_names();

/// City rank -> name / nation index / region index.
std::string city_name(std::size_t rank);
inline std::size_t city_nation(std::size_t rank) { return rank % 25; }
inline std::size_t city_region(std::size_t rank) { return rank % 5; }

/// Brand rank (0..999) -> names. Category = rank % 25 ("MFGR#mc"),
/// manufacturer = category % 5 ("MFGR#m"), brand number = rank / 25 + 1.
std::string mfgr_name(std::size_t category);
std::string category_name(std::size_t category);
std::string brand_name(std::size_t rank);

}  // namespace bbpim::ssb
