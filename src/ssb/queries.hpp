// The 13 Star Schema Benchmark queries (O'Neil et al. [12]).
//
// SQL text follows the SSB specification with two mechanical rewrites:
// OR-pairs become IN lists (q4.1/q4.2: "x = a OR x = b" -> "x IN (a, b)"),
// matching the subset our front-end accepts while selecting identical rows.
// Query constants are unchanged — the skewed generator was designed so the
// paper's selectivities hold without retuning (see DESIGN.md).
#pragma once

#include <span>
#include <string_view>

namespace bbpim::ssb {

struct SsbQuery {
  std::string_view id;   ///< "1.1" .. "4.3"
  std::string_view sql;
  /// Selectivity the paper reports for this query (Table II), for the
  /// comparison column of the query-summary bench.
  double paper_selectivity;
  /// "Total subgroups" from Table II (0 = no GROUP BY).
  std::size_t paper_total_subgroups;
};

/// All 13 queries in paper order.
std::span<const SsbQuery> queries();

/// Lookup by id; throws std::out_of_range for unknown ids.
const SsbQuery& query(std::string_view id);

}  // namespace bbpim::ssb
