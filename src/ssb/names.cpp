#include "ssb/names.hpp"

namespace bbpim::ssb {
namespace {

const char* const kColorList[] = {
    "almond",    "antique",   "aquamarine", "azure",     "beige",
    "bisque",    "black",     "blanched",   "blue",      "blush",
    "brown",     "burlywood", "burnished",  "chartreuse", "chiffon",
    "chocolate", "coral",     "cornflower", "cornsilk",  "cream",
    "cyan",      "dark",      "deep",       "dim",       "dodger",
    "drab",      "firebrick", "floral",     "forest",    "frosted",
    "gainsboro", "ghost",     "goldenrod",  "green",     "grey",
    "honeydew",  "hot",       "indian",     "ivory",     "khaki",
    "lace",      "lavender",  "lawn",       "lemon",     "light",
    "lime",      "linen",     "magenta",    "maroon",    "medium",
    "metallic",  "midnight",  "mint",       "misty",     "moccasin",
    "navajo",    "navy",      "olive",      "orange",    "orchid",
    "pale",      "papaya",    "peach",      "peru",      "pink",
    "plum",      "powder",    "puff",       "purple",    "red",
    "rose",      "rosy",      "royal",      "saddle",    "salmon",
    "sandy",     "seashell",  "sienna",     "sky",       "slate",
    "smoke",     "snow",      "spring",     "steel",     "tan",
    "thistle",   "tomato",    "turquoise",  "violet",    "wheat",
    "white",     "yellow"};

const char* const kTypeSyllable1[] = {"STANDARD", "SMALL",   "MEDIUM",
                                      "LARGE",    "ECONOMY", "PROMO"};
const char* const kTypeSyllable2[] = {"ANODIZED", "BURNISHED", "PLATED",
                                      "POLISHED", "BRUSHED"};
const char* const kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                      "COPPER"};

const char* const kContainerSyllable1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* const kContainerSyllable2[] = {"CASE", "BOX",  "BAG", "JAR",
                                           "PKG",  "PACK", "CAN", "DRUM"};

}  // namespace

const std::vector<std::string>& part_colors() {
  static const std::vector<std::string> colors(std::begin(kColorList),
                                               std::end(kColorList));
  return colors;
}

const std::vector<std::string>& part_types() {
  static const std::vector<std::string> types = [] {
    std::vector<std::string> out;
    for (const char* s1 : kTypeSyllable1) {
      for (const char* s2 : kTypeSyllable2) {
        for (const char* s3 : kTypeSyllable3) {
          out.push_back(std::string(s1) + " " + s2 + " " + s3);
        }
      }
    }
    return out;
  }();
  return types;
}

const std::vector<std::string>& part_containers() {
  static const std::vector<std::string> containers = [] {
    std::vector<std::string> out;
    for (const char* s1 : kContainerSyllable1) {
      for (const char* s2 : kContainerSyllable2) {
        out.push_back(std::string(s1) + " " + s2);
      }
    }
    return out;
  }();
  return containers;
}

std::string city_name(std::size_t rank) {
  std::string prefix(kNations[city_nation(rank)].substr(0, 9));
  prefix.resize(9, ' ');  // pad short nations to the fixed 9-char prefix
  return prefix + static_cast<char>('0' + rank / 25);
}

std::vector<std::string> city_names() {
  std::vector<std::string> out;
  out.reserve(250);
  for (std::size_t r = 0; r < 250; ++r) out.push_back(city_name(r));
  return out;
}

std::string mfgr_name(std::size_t category) {
  return "MFGR#" + std::to_string(category / 5 + 1);
}

std::string category_name(std::size_t category) {
  return mfgr_name(category) + std::to_string(category % 5 + 1);
}

std::string brand_name(std::size_t rank) {
  return category_name(rank % 25) + std::to_string(rank / 25 + 1);
}

}  // namespace bbpim::ssb
