// Recursive-descent parser for the SSB SQL subset.
#pragma once

#include <string_view>

#include "sql/ast.hpp"

namespace bbpim::sql {

/// Parses one SELECT statement; throws std::invalid_argument with offset
/// information on syntax errors (including for UPDATE input — callers that
/// accept both kinds use parse_statement).
SelectStmt parse(std::string_view sql);

/// Parses one UPDATE <table> SET <col> = <literal> [WHERE ...] statement.
UpdateStmt parse_update(std::string_view sql);

/// Parses either statement kind, dispatching on the leading keyword.
Statement parse_statement(std::string_view sql);

}  // namespace bbpim::sql
