// Recursive-descent parser for the SSB SQL subset.
#pragma once

#include <string_view>

#include "sql/ast.hpp"

namespace bbpim::sql {

/// Parses one SELECT statement; throws std::invalid_argument with offset
/// information on syntax errors.
SelectStmt parse(std::string_view sql);

}  // namespace bbpim::sql
