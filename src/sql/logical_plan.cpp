#include "sql/logical_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbpim::sql {

bool BoundPredicate::matches(std::uint64_t value) const {
  switch (kind) {
    case Kind::kEq: return value == v1;
    case Kind::kLt: return value < v1;
    case Kind::kLe: return value <= v1;
    case Kind::kGt: return value > v1;
    case Kind::kGe: return value >= v1;
    case Kind::kBetween: return v1 <= value && value <= v2;
    case Kind::kIn:
      return std::find(in_values.begin(), in_values.end(), value) !=
             in_values.end();
    case Kind::kNever: return false;
    case Kind::kAlways: return true;
  }
  return false;
}

std::uint64_t BoundAggExpr::eval(std::uint64_t va, std::uint64_t vb) const {
  switch (kind) {
    case Expr::Kind::kColumn: return va;
    case Expr::Kind::kMul: return va * vb;
    case Expr::Kind::kSub: return va - vb;
    case Expr::Kind::kAdd: return va + vb;
  }
  return va;
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("SQL bind error: " + what);
}

std::size_t resolve(const rel::Schema& schema, const std::string& name) {
  const auto idx = schema.index_of(name);
  if (idx) return *idx;
  // Qualified name against a single-table schema: the pre-joined relation
  // subsumes the logical source tables, so any qualifier resolves by its
  // column part.
  if (const auto dot = name.find('.'); dot != std::string::npos) {
    const auto suffix = schema.index_of(name.substr(dot + 1));
    if (suffix) return *suffix;
  }
  fail("unknown column '" + name + "'");
}

std::uint64_t domain_max(const rel::Attribute& a) {
  return a.bits >= 64 ? ~0ULL : (1ULL << a.bits) - 1;
}

/// Binds one literal against an attribute; returns nullopt when a string
/// literal has no code (callers turn that into kNever / range clamping).
std::optional<std::uint64_t> bind_exact_literal(const rel::Attribute& a,
                                                const Literal& lit) {
  if (a.type == rel::DataType::kInt) {
    if (lit.kind != Literal::Kind::kInt) {
      fail("string literal compared with integer column '" + a.name + "'");
    }
    if (lit.int_value < 0) return std::nullopt;
    return static_cast<std::uint64_t>(lit.int_value);
  }
  if (lit.kind != Literal::Kind::kString) {
    fail("integer literal compared with string column '" + a.name + "'");
  }
  return a.dict->code(lit.str_value);
}

BoundPredicate bind_cmp(const rel::Schema& schema, const Predicate& p) {
  BoundPredicate b;
  b.attr = resolve(schema, p.column);
  const rel::Attribute& a = schema.attribute(b.attr);

  if (a.type == rel::DataType::kInt) {
    if (p.v1.kind != Literal::Kind::kInt) {
      fail("string literal compared with integer column '" + a.name + "'");
    }
    const std::int64_t v = p.v1.int_value;
    if (v < 0) {
      // Unsigned domains: x < negative is never true; x >= negative always.
      const bool lower_ops = p.op == CmpOp::kLt || p.op == CmpOp::kLe ||
                             p.op == CmpOp::kEq;
      b.kind = lower_ops ? BoundPredicate::Kind::kNever
                         : BoundPredicate::Kind::kAlways;
      return b;
    }
    b.v1 = static_cast<std::uint64_t>(v);
    switch (p.op) {
      case CmpOp::kEq: b.kind = BoundPredicate::Kind::kEq; break;
      case CmpOp::kLt: b.kind = BoundPredicate::Kind::kLt; break;
      case CmpOp::kLe: b.kind = BoundPredicate::Kind::kLe; break;
      case CmpOp::kGt: b.kind = BoundPredicate::Kind::kGt; break;
      case CmpOp::kGe: b.kind = BoundPredicate::Kind::kGe; break;
    }
    return b;
  }

  // String column: range semantics via the order-preserving dictionary.
  if (p.v1.kind != Literal::Kind::kString) {
    fail("integer literal compared with string column '" + a.name + "'");
  }
  const rel::Dictionary& dict = *a.dict;
  const std::uint64_t n = dict.size();
  switch (p.op) {
    case CmpOp::kEq: {
      const auto code = dict.code(p.v1.str_value);
      if (!code) {
        b.kind = BoundPredicate::Kind::kNever;
      } else {
        b.kind = BoundPredicate::Kind::kEq;
        b.v1 = *code;
      }
      return b;
    }
    case CmpOp::kLt: {
      const std::uint64_t lb = dict.code_lower_bound(p.v1.str_value);
      if (lb == 0) {
        b.kind = BoundPredicate::Kind::kNever;
      } else {
        b.kind = BoundPredicate::Kind::kLt;
        b.v1 = lb;
      }
      return b;
    }
    case CmpOp::kLe: {
      const std::uint64_t ub = dict.code_upper_bound(p.v1.str_value);
      if (ub == 0) {
        b.kind = BoundPredicate::Kind::kNever;
      } else if (ub >= n) {
        b.kind = BoundPredicate::Kind::kAlways;
      } else {
        b.kind = BoundPredicate::Kind::kLt;
        b.v1 = ub;
      }
      return b;
    }
    case CmpOp::kGt: {
      const std::uint64_t ub = dict.code_upper_bound(p.v1.str_value);
      if (ub >= n) {
        b.kind = BoundPredicate::Kind::kNever;
      } else {
        b.kind = BoundPredicate::Kind::kGe;
        b.v1 = ub;
      }
      return b;
    }
    case CmpOp::kGe: {
      const std::uint64_t lb = dict.code_lower_bound(p.v1.str_value);
      if (lb >= n) {
        b.kind = BoundPredicate::Kind::kNever;
      } else if (lb == 0) {
        b.kind = BoundPredicate::Kind::kAlways;
      } else {
        b.kind = BoundPredicate::Kind::kGe;
        b.v1 = lb;
      }
      return b;
    }
  }
  fail("unreachable comparison");
}

BoundPredicate bind_between(const rel::Schema& schema, const Predicate& p) {
  BoundPredicate b;
  b.attr = resolve(schema, p.column);
  const rel::Attribute& a = schema.attribute(b.attr);

  std::uint64_t lo = 0, hi = 0;
  if (a.type == rel::DataType::kInt) {
    if (p.v1.kind != Literal::Kind::kInt || p.v2.kind != Literal::Kind::kInt) {
      fail("BETWEEN bounds must be integers for column '" + a.name + "'");
    }
    if (p.v2.int_value < 0 || p.v2.int_value < p.v1.int_value) {
      b.kind = BoundPredicate::Kind::kNever;
      return b;
    }
    lo = p.v1.int_value < 0 ? 0 : static_cast<std::uint64_t>(p.v1.int_value);
    hi = static_cast<std::uint64_t>(p.v2.int_value);
  } else {
    if (p.v1.kind != Literal::Kind::kString ||
        p.v2.kind != Literal::Kind::kString) {
      fail("BETWEEN bounds must be strings for column '" + a.name + "'");
    }
    const rel::Dictionary& dict = *a.dict;
    const std::uint64_t lb = dict.code_lower_bound(p.v1.str_value);
    const std::uint64_t ub = dict.code_upper_bound(p.v2.str_value);
    if (lb >= ub) {
      b.kind = BoundPredicate::Kind::kNever;
      return b;
    }
    lo = lb;
    hi = ub - 1;
  }
  if (lo == 0 && hi >= domain_max(a)) {
    b.kind = BoundPredicate::Kind::kAlways;
  } else {
    b.kind = BoundPredicate::Kind::kBetween;
    b.v1 = lo;
    b.v2 = hi;
  }
  return b;
}

BoundPredicate bind_in(const rel::Schema& schema, const Predicate& p) {
  BoundPredicate b;
  b.attr = resolve(schema, p.column);
  const rel::Attribute& a = schema.attribute(b.attr);
  for (const Literal& lit : p.in_list) {
    const auto code = bind_exact_literal(a, lit);
    if (code) b.in_values.push_back(*code);
  }
  std::sort(b.in_values.begin(), b.in_values.end());
  b.in_values.erase(std::unique(b.in_values.begin(), b.in_values.end()),
                    b.in_values.end());
  if (b.in_values.empty()) {
    b.kind = BoundPredicate::Kind::kNever;
  } else if (b.in_values.size() == 1) {
    b.kind = BoundPredicate::Kind::kEq;
    b.v1 = b.in_values[0];
    b.in_values.clear();
  } else {
    b.kind = BoundPredicate::Kind::kIn;
  }
  return b;
}

// ---- multi-table resolution ------------------------------------------------

/// Resolves an (optionally qualified) column against the FROM list.
BoundColumnRef resolve_multi(const std::vector<JoinTableRef>& tables,
                             const std::string& name) {
  if (const auto dot = name.find('.'); dot != std::string::npos) {
    const std::string tbl = name.substr(0, dot);
    const std::string col = name.substr(dot + 1);
    for (std::size_t t = 0; t < tables.size(); ++t) {
      if (tables[t].name != tbl) continue;
      const auto idx = tables[t].schema->index_of(col);
      if (!idx) fail("unknown column '" + col + "' in table '" + tbl + "'");
      return {t, *idx};
    }
    fail("unknown table '" + tbl + "' in column reference '" + name + "'");
  }
  std::optional<BoundColumnRef> found;
  for (std::size_t t = 0; t < tables.size(); ++t) {
    const auto idx = tables[t].schema->index_of(name);
    if (!idx) continue;
    if (found) {
      fail("ambiguous column '" + name + "': present in tables '" +
           tables[found->table].name + "' and '" + tables[t].name +
           "' — qualify it as <table>." + name);
    }
    found = BoundColumnRef{t, *idx};
  }
  if (!found) fail("unknown column '" + name + "' in any FROM table");
  return *found;
}

/// Binds one non-join WHERE predicate against the table its column lives
/// in; reports that table via `table_out`. Reuses the single-table literal
/// folding by rewriting the (possibly qualified) name to the plain
/// attribute name, which is unique within one schema.
BoundPredicate bind_filter(const std::vector<JoinTableRef>& tables,
                           const Predicate& p, std::size_t* table_out) {
  const BoundColumnRef ref = resolve_multi(tables, p.column);
  const rel::Schema& schema = *tables[ref.table].schema;
  Predicate local = p;
  local.column = schema.attribute(ref.attr).name;
  *table_out = ref.table;
  switch (p.kind) {
    case Predicate::Kind::kCmp: return bind_cmp(schema, local);
    case Predicate::Kind::kBetween: return bind_between(schema, local);
    case Predicate::Kind::kIn: return bind_in(schema, local);
    case Predicate::Kind::kJoinEq: break;
  }
  fail("unreachable filter kind");
}

}  // namespace

BoundQuery bind(const SelectStmt& stmt, const rel::Schema& schema) {
  BoundQuery q;

  // WHERE conjunction.
  for (const Predicate& p : stmt.where) {
    switch (p.kind) {
      case Predicate::Kind::kJoinEq:
        q.join_predicates.emplace_back(p.column, p.join_right);
        break;
      case Predicate::Kind::kCmp:
        q.filters.push_back(bind_cmp(schema, p));
        break;
      case Predicate::Kind::kBetween:
        q.filters.push_back(bind_between(schema, p));
        break;
      case Predicate::Kind::kIn:
        q.filters.push_back(bind_in(schema, p));
        break;
    }
  }

  // GROUP BY columns.
  for (const std::string& col : stmt.group_by) {
    q.group_by.push_back(resolve(schema, col));
  }

  // SELECT items: exactly one aggregate; plain columns must be grouped.
  bool have_agg = false;
  for (const SelectItem& item : stmt.items) {
    if (item.func == AggFunc::kNone) {
      const std::size_t idx = resolve(schema, item.expr.col_a);
      if (std::find(q.group_by.begin(), q.group_by.end(), idx) ==
          q.group_by.end()) {
        fail("column '" + item.expr.col_a + "' is not in GROUP BY");
      }
      continue;
    }
    if (have_agg) fail("only one aggregate per query is supported");
    have_agg = true;
    q.agg_func = item.func;
    q.agg_alias = item.alias;
    if (item.func == AggFunc::kCount && item.expr.col_a.empty()) {
      q.agg_expr.kind = Expr::Kind::kColumn;  // COUNT(*): expr unused
    } else {
      q.agg_expr.kind = item.expr.kind;
      q.agg_expr.a = resolve(schema, item.expr.col_a);
      if (item.expr.kind != Expr::Kind::kColumn) {
        q.agg_expr.b = resolve(schema, item.expr.col_b);
      }
    }
  }
  if (!have_agg) fail("query must contain an aggregate");

  for (const OrderItem& item : stmt.order_by) {
    BoundOrderItem bo;
    bo.desc = item.desc;
    if (!q.agg_alias.empty() && item.column == q.agg_alias) {
      bo.is_agg = true;
    } else {
      const std::size_t idx = resolve(schema, item.column);
      const auto it = std::find(q.group_by.begin(), q.group_by.end(), idx);
      if (it == q.group_by.end()) {
        fail("ORDER BY column '" + item.column + "' is not in GROUP BY");
      }
      bo.group_pos = static_cast<std::size_t>(it - q.group_by.begin());
    }
    q.order_by.push_back(bo);
  }
  return q;
}

BoundUpdate bind_update(const UpdateStmt& stmt, const rel::Schema& schema) {
  BoundUpdate u;
  u.attr = resolve(schema, stmt.column);
  const rel::Attribute& a = schema.attribute(u.attr);

  // SET value through the attribute's encoding. Unlike WHERE literals —
  // where an absent dictionary value folds to kNever — an unencodable SET
  // value is an error: writing it would produce records no decode can read.
  if (a.type == rel::DataType::kInt) {
    if (stmt.value.kind != Literal::Kind::kInt) {
      fail("string value assigned to integer column '" + a.name + "'");
    }
    if (stmt.value.int_value < 0 ||
        static_cast<std::uint64_t>(stmt.value.int_value) > domain_max(a)) {
      fail("value " + std::to_string(stmt.value.int_value) +
           " outside the domain of column '" + a.name + "'");
    }
    u.value = static_cast<std::uint64_t>(stmt.value.int_value);
  } else {
    if (stmt.value.kind != Literal::Kind::kString) {
      fail("integer value assigned to string column '" + a.name + "'");
    }
    const auto code = a.dict->code(stmt.value.str_value);
    if (!code) {
      fail("value '" + stmt.value.str_value +
           "' has no dictionary code for column '" + a.name + "'");
    }
    u.value = *code;
  }

  for (const Predicate& p : stmt.where) {
    switch (p.kind) {
      case Predicate::Kind::kJoinEq:
        fail("UPDATE does not support join predicates");
      case Predicate::Kind::kCmp:
        u.filters.push_back(bind_cmp(schema, p));
        break;
      case Predicate::Kind::kBetween:
        u.filters.push_back(bind_between(schema, p));
        break;
      case Predicate::Kind::kIn:
        u.filters.push_back(bind_in(schema, p));
        break;
    }
  }
  return u;
}

BoundJoin bind_join(const SelectStmt& stmt,
                    const std::vector<JoinTableRef>& tables) {
  if (tables.size() < 2) fail("join binding needs at least two tables");
  for (std::size_t i = 0; i < tables.size(); ++i) {
    for (std::size_t j = i + 1; j < tables.size(); ++j) {
      if (tables[i].name == tables[j].name) {
        fail("duplicate table '" + tables[i].name +
             "' in FROM: self-joins are not supported");
      }
    }
  }

  BoundJoin q;
  q.filters.resize(tables.size());
  for (const JoinTableRef& t : tables) q.table_names.push_back(t.name);

  // Split the WHERE conjunction into per-table filters and join key pairs.
  struct KeyPair {
    BoundColumnRef left, right;
  };
  std::vector<KeyPair> keys;
  for (const Predicate& p : stmt.where) {
    if (p.kind != Predicate::Kind::kJoinEq) {
      std::size_t t = 0;
      BoundPredicate b = bind_filter(tables, p, &t);
      q.filters[t].push_back(b);
      continue;
    }
    const BoundColumnRef l = resolve_multi(tables, p.column);
    const BoundColumnRef r = resolve_multi(tables, p.join_right);
    if (l.table == r.table) {
      fail("join predicate '" + p.column + " = " + p.join_right +
           "' relates two columns of table '" + tables[l.table].name + "'");
    }
    const rel::Attribute& la = tables[l.table].schema->attribute(l.attr);
    const rel::Attribute& ra = tables[r.table].schema->attribute(r.attr);
    // Codes only compare as values when the encodings agree: integers
    // directly, strings through one shared dictionary.
    if (la.type != ra.type ||
        (la.type == rel::DataType::kString && la.dict != ra.dict)) {
      fail("join keys '" + p.column + "' and '" + p.join_right +
           "' have incomparable encodings");
    }
    keys.push_back({l, r});
  }
  if (keys.empty()) {
    fail("multi-table query has no join predicate: cross joins are not "
         "supported");
  }

  // Fact = the table every join predicate touches (star shape); on a tie
  // (two tables, one join pair) the larger relation probes.
  std::vector<std::size_t> touched(tables.size(), 0);
  for (const KeyPair& k : keys) {
    ++touched[k.left.table];
    ++touched[k.right.table];
  }
  std::size_t fact = tables.size();
  for (std::size_t t = 0; t < tables.size(); ++t) {
    if (touched[t] != keys.size()) continue;
    if (fact == tables.size() ||
        tables[t].row_count > tables[fact].row_count) {
      fact = t;
    }
  }
  if (fact == tables.size()) {
    fail("only star-shaped join graphs are supported (one fact table "
         "equi-joined to every dimension)");
  }
  q.fact = fact;

  // Group key pairs per dimension (composite keys), first-appearance order.
  for (const KeyPair& k : keys) {
    const BoundColumnRef fact_side = k.left.table == fact ? k.left : k.right;
    const BoundColumnRef dim_side = k.left.table == fact ? k.right : k.left;
    BoundBuildSide* build = nullptr;
    for (BoundBuildSide& b : q.builds) {
      if (b.table == dim_side.table) build = &b;
    }
    if (build == nullptr) {
      q.builds.push_back({dim_side.table, {}, {}});
      build = &q.builds.back();
    }
    build->fact_attrs.push_back(fact_side.attr);
    build->dim_attrs.push_back(dim_side.attr);
  }
  for (std::size_t t = 0; t < tables.size(); ++t) {
    if (t == fact) continue;
    const bool joined =
        std::any_of(q.builds.begin(), q.builds.end(),
                    [&](const BoundBuildSide& b) { return b.table == t; });
    if (!joined) {
      fail("table '" + tables[t].name + "' has no join predicate connecting "
           "it to fact '" + tables[fact].name +
           "': cross joins are not supported");
    }
  }
  // Probe order: most-filtered dimensions first so fact survivors fall out
  // of the probe cascade early; ties go to the smaller build side.
  std::stable_sort(q.builds.begin(), q.builds.end(),
                   [&](const BoundBuildSide& a, const BoundBuildSide& b) {
                     const std::size_t fa = q.filters[a.table].size();
                     const std::size_t fb = q.filters[b.table].size();
                     if (fa != fb) return fa > fb;
                     return tables[a.table].row_count <
                            tables[b.table].row_count;
                   });

  // GROUP BY columns.
  for (const std::string& col : stmt.group_by) {
    q.group_by.push_back(resolve_multi(tables, col));
  }

  // SELECT items: exactly one aggregate; plain columns must be grouped.
  bool have_agg = false;
  for (const SelectItem& item : stmt.items) {
    if (item.func == AggFunc::kNone) {
      const BoundColumnRef ref = resolve_multi(tables, item.expr.col_a);
      if (std::find(q.group_by.begin(), q.group_by.end(), ref) ==
          q.group_by.end()) {
        fail("column '" + item.expr.col_a + "' is not in GROUP BY");
      }
      continue;
    }
    if (have_agg) fail("only one aggregate per query is supported");
    have_agg = true;
    q.agg_func = item.func;
    q.agg_alias = item.alias;
    if (item.func == AggFunc::kCount && item.expr.col_a.empty()) {
      q.agg_kind = Expr::Kind::kColumn;  // COUNT(*): operands unused
    } else {
      q.agg_kind = item.expr.kind;
      q.agg_a = resolve_multi(tables, item.expr.col_a);
      if (item.expr.kind != Expr::Kind::kColumn) {
        q.agg_b = resolve_multi(tables, item.expr.col_b);
      }
    }
  }
  if (!have_agg) fail("query must contain an aggregate");

  // ORDER BY: the aggregate's alias or a GROUP BY column.
  for (const OrderItem& item : stmt.order_by) {
    BoundOrderItem bo;
    bo.desc = item.desc;
    if (!q.agg_alias.empty() && item.column == q.agg_alias) {
      bo.is_agg = true;
    } else {
      const BoundColumnRef ref = resolve_multi(tables, item.column);
      const auto it = std::find(q.group_by.begin(), q.group_by.end(), ref);
      if (it == q.group_by.end()) {
        fail("ORDER BY column '" + item.column + "' is not in GROUP BY");
      }
      bo.group_pos = static_cast<std::size_t>(it - q.group_by.begin());
    }
    q.order_by.push_back(bo);
  }
  return q;
}

}  // namespace bbpim::sql
