#include "sql/parser.hpp"

#include <stdexcept>

#include "sql/lexer.hpp"

namespace bbpim::sql {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view sql) : toks_(lex(sql)) {}

  SelectStmt parse_select() {
    expect_keyword("SELECT");
    SelectStmt stmt;
    stmt.items.push_back(parse_item());
    while (accept(TokKind::kComma)) stmt.items.push_back(parse_item());

    expect_keyword("FROM");
    stmt.from.push_back(expect_ident());
    while (accept(TokKind::kComma)) stmt.from.push_back(expect_ident());

    if (accept_keyword("WHERE")) {
      stmt.where.push_back(parse_predicate());
      while (accept_keyword("AND")) stmt.where.push_back(parse_predicate());
    }
    if (accept_keyword("GROUP")) {
      expect_keyword("BY");
      stmt.group_by.push_back(expect_column());
      while (accept(TokKind::kComma)) stmt.group_by.push_back(expect_column());
    }
    if (accept_keyword("ORDER")) {
      expect_keyword("BY");
      stmt.order_by.push_back(parse_order_col());
      while (accept(TokKind::kComma)) stmt.order_by.push_back(parse_order_col());
    }
    accept(TokKind::kSemi);
    if (cur().kind != TokKind::kEnd) fail("trailing tokens");
    return stmt;
  }

  UpdateStmt parse_update() {
    expect_keyword("UPDATE");
    UpdateStmt stmt;
    stmt.table = expect_ident();
    expect_keyword("SET");
    stmt.column = expect_ident();
    expect(TokKind::kEq, "'='");
    stmt.value = parse_literal();
    if (accept_keyword("WHERE")) {
      stmt.where.push_back(parse_predicate());
      while (accept_keyword("AND")) stmt.where.push_back(parse_predicate());
    }
    accept(TokKind::kSemi);
    if (cur().kind != TokKind::kEnd) fail("trailing tokens");
    return stmt;
  }

  bool starts_update() const {
    return cur().kind == TokKind::kKeyword && cur().text == "UPDATE";
  }

 private:
  const Token& cur() const { return toks_[pos_]; }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("SQL parse error at offset " +
                                std::to_string(cur().pos) + ": " + what);
  }

  bool accept(TokKind k) {
    if (cur().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool accept_keyword(std::string_view kw) {
    if (cur().kind == TokKind::kKeyword && cur().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(TokKind k, const char* what) {
    if (!accept(k)) fail(std::string("expected ") + what);
  }

  void expect_keyword(std::string_view kw) {
    if (!accept_keyword(kw)) fail("expected keyword " + std::string(kw));
  }

  std::string expect_ident() {
    if (cur().kind != TokKind::kIdent) fail("expected identifier");
    return toks_[pos_++].text;
  }

  // Column reference, optionally qualified: `col` or `table.col`, stored as
  // one dotted name (binders split on the dot).
  std::string expect_column() {
    std::string name = expect_ident();
    if (accept(TokKind::kDot)) {
      name += '.';
      name += expect_ident();
    }
    return name;
  }

  OrderItem parse_order_col() {
    OrderItem item;
    item.column = expect_column();
    if (!accept_keyword("ASC") && accept_keyword("DESC")) item.desc = true;
    return item;
  }

  SelectItem parse_item() {
    SelectItem item;
    if (cur().kind == TokKind::kKeyword &&
        (cur().text == "SUM" || cur().text == "MIN" || cur().text == "MAX" ||
         cur().text == "COUNT")) {
      const std::string fn = toks_[pos_++].text;
      item.func = fn == "SUM"   ? AggFunc::kSum
                  : fn == "MIN" ? AggFunc::kMin
                  : fn == "MAX" ? AggFunc::kMax
                                : AggFunc::kCount;
      expect(TokKind::kLParen, "'('");
      if (item.func == AggFunc::kCount && accept(TokKind::kStar)) {
        item.expr.kind = Expr::Kind::kColumn;
        item.expr.col_a.clear();  // COUNT(*)
      } else {
        item.expr = parse_expr();
      }
      expect(TokKind::kRParen, "')'");
    } else {
      item.expr.kind = Expr::Kind::kColumn;
      item.expr.col_a = expect_column();
    }
    if (accept_keyword("AS")) item.alias = expect_ident();
    return item;
  }

  Expr parse_expr() {
    Expr e;
    e.col_a = expect_column();
    if (accept(TokKind::kStar)) {
      e.kind = Expr::Kind::kMul;
      e.col_b = expect_column();
    } else if (accept(TokKind::kMinus)) {
      e.kind = Expr::Kind::kSub;
      e.col_b = expect_column();
    } else if (accept(TokKind::kPlus)) {
      e.kind = Expr::Kind::kAdd;
      e.col_b = expect_column();
    } else {
      e.kind = Expr::Kind::kColumn;
    }
    return e;
  }

  Literal parse_literal() {
    if (cur().kind == TokKind::kInt) {
      return Literal::of_int(toks_[pos_++].int_value);
    }
    if (cur().kind == TokKind::kString) {
      return Literal::of_string(toks_[pos_++].text);
    }
    fail("expected literal");
  }

  static CmpOp flip(CmpOp op) {
    switch (op) {
      case CmpOp::kLt: return CmpOp::kGt;
      case CmpOp::kLe: return CmpOp::kGe;
      case CmpOp::kGt: return CmpOp::kLt;
      case CmpOp::kGe: return CmpOp::kLe;
      case CmpOp::kEq: return CmpOp::kEq;
    }
    return CmpOp::kEq;
  }

  bool peek_cmp(CmpOp* op) const {
    switch (cur().kind) {
      case TokKind::kEq: *op = CmpOp::kEq; return true;
      case TokKind::kLt: *op = CmpOp::kLt; return true;
      case TokKind::kLe: *op = CmpOp::kLe; return true;
      case TokKind::kGt: *op = CmpOp::kGt; return true;
      case TokKind::kGe: *op = CmpOp::kGe; return true;
      default: return false;
    }
  }

  Predicate parse_predicate() {
    Predicate p;
    // Literal-first comparison: 10 <= lo_quantity
    if (cur().kind == TokKind::kInt || cur().kind == TokKind::kString) {
      const Literal lit = parse_literal();
      CmpOp op;
      if (!peek_cmp(&op)) fail("expected comparison operator");
      ++pos_;
      p.kind = Predicate::Kind::kCmp;
      p.column = expect_column();
      p.op = flip(op);
      p.v1 = lit;
      return p;
    }

    p.column = expect_column();
    if (accept_keyword("BETWEEN")) {
      p.kind = Predicate::Kind::kBetween;
      p.v1 = parse_literal();
      expect_keyword("AND");
      p.v2 = parse_literal();
      return p;
    }
    if (accept_keyword("IN")) {
      p.kind = Predicate::Kind::kIn;
      expect(TokKind::kLParen, "'('");
      p.in_list.push_back(parse_literal());
      while (accept(TokKind::kComma)) p.in_list.push_back(parse_literal());
      expect(TokKind::kRParen, "')'");
      return p;
    }
    CmpOp op;
    if (!peek_cmp(&op)) fail("expected comparison operator");
    ++pos_;
    if (cur().kind == TokKind::kIdent) {
      // column = column -> join predicate (SSB only joins with equality)
      if (op != CmpOp::kEq) fail("only equality joins are supported");
      p.kind = Predicate::Kind::kJoinEq;
      p.join_right = expect_column();
      return p;
    }
    p.kind = Predicate::Kind::kCmp;
    p.op = op;
    p.v1 = parse_literal();
    return p;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

SelectStmt parse(std::string_view sql) { return Parser(sql).parse_select(); }

UpdateStmt parse_update(std::string_view sql) {
  return Parser(sql).parse_update();
}

Statement parse_statement(std::string_view sql) {
  Parser parser(sql);
  Statement stmt;
  if (parser.starts_update()) {
    stmt.kind = Statement::Kind::kUpdate;
    stmt.update = parser.parse_update();
  } else {
    stmt.kind = Statement::Kind::kSelect;
    stmt.select = parser.parse_select();
  }
  return stmt;
}

}  // namespace bbpim::sql
