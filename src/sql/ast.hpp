// Abstract syntax for the SSB SQL subset.
//
// The paper compiles SSB's SQL offline into C++ query programs; this
// repository's equivalent is a small front-end covering the grammar SSB
// needs: SELECT items (group columns and SUM/MIN/MAX/COUNT over a column,
// product, sum, or difference), FROM lists, WHERE conjunctions of
// column-vs-literal comparisons, BETWEEN, IN, and column-equality join
// predicates, GROUP BY and ORDER BY. Column references may be qualified
// (`lineorder.lo_orderdate`); they are carried as one dotted string and
// split by the binders, so the AST shape is the same either way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bbpim::sql {

struct Literal {
  enum class Kind : std::uint8_t { kInt, kString };
  Kind kind = Kind::kInt;
  std::int64_t int_value = 0;
  std::string str_value;

  static Literal of_int(std::int64_t v) { return {Kind::kInt, v, {}}; }
  static Literal of_string(std::string v) {
    return {Kind::kString, 0, std::move(v)};
  }
};

/// Arithmetic over at most two columns — all SSB aggregates are a column,
/// a product (Q1.x), or a difference (Q4.x).
struct Expr {
  enum class Kind : std::uint8_t { kColumn, kMul, kSub, kAdd };
  Kind kind = Kind::kColumn;
  std::string col_a;
  std::string col_b;  // empty for kColumn
};

enum class AggFunc : std::uint8_t { kNone, kSum, kMin, kMax, kCount };

struct SelectItem {
  AggFunc func = AggFunc::kNone;  ///< kNone = plain (group) column
  Expr expr;
  std::string alias;  ///< optional AS name
};

enum class CmpOp : std::uint8_t { kEq, kLt, kLe, kGt, kGe };

struct Predicate {
  enum class Kind : std::uint8_t { kCmp, kBetween, kIn, kJoinEq };
  Kind kind = Kind::kCmp;
  std::string column;       ///< left column
  CmpOp op = CmpOp::kEq;    ///< kCmp only
  Literal v1;               ///< kCmp value / BETWEEN low
  Literal v2;               ///< BETWEEN high
  std::vector<Literal> in_list;
  std::string join_right;   ///< kJoinEq: right column
};

struct OrderItem {
  std::string column;  ///< group column name or the aggregate's alias
  bool desc = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<std::string> from;
  std::vector<Predicate> where;  ///< implicit conjunction
  std::vector<std::string> group_by;
  std::vector<OrderItem> order_by;
};

/// UPDATE <table> SET <column> = <literal> [WHERE <conjunction>].
/// The single-assignment form is exactly what Algorithm 1 executes in PIM:
/// one attribute, one new value, a filter selecting the rows to rewrite.
struct UpdateStmt {
  std::string table;
  std::string column;
  Literal value;
  std::vector<Predicate> where;  ///< implicit conjunction
};

/// One parsed statement of either kind (what Session::prepare consumes).
struct Statement {
  enum class Kind : std::uint8_t { kSelect, kUpdate };
  Kind kind = Kind::kSelect;
  SelectStmt select;  ///< kSelect only
  UpdateStmt update;  ///< kUpdate only
};

}  // namespace bbpim::sql
