// Binding SQL to a schema: the logical query plan.
//
// The binder resolves column names against a relation schema (for the PIM
// engine that is always the pre-joined relation), folds string literals to
// order-preserving dictionary codes, and normalizes predicates so that the
// back-ends (PIM filter compiler, columnar baseline, reference executor)
// share one representation. Join-equality predicates are carried separately:
// the pre-joined engines drop them (the join is materialized), the star-
// schema baseline uses them to plan hash joins.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "relational/schema.hpp"
#include "sql/ast.hpp"

namespace bbpim::sql {

/// A normalized single-attribute predicate over dictionary codes.
struct BoundPredicate {
  enum class Kind : std::uint8_t {
    kEq,
    kLt,
    kLe,
    kGt,
    kGe,
    kBetween,  ///< v1 <= x <= v2
    kIn,
    kNever,    ///< statically false (e.g. literal outside the dictionary)
    kAlways,   ///< statically true  (e.g. BETWEEN spanning the whole domain)
  };
  Kind kind = Kind::kAlways;
  std::size_t attr = 0;
  std::uint64_t v1 = 0;
  std::uint64_t v2 = 0;
  std::vector<std::uint64_t> in_values;

  /// Evaluates against a record's attribute code (reference semantics that
  /// the PIM micro-programs are tested against).
  bool matches(std::uint64_t value) const;
};

/// The aggregated expression: a column, a product, or a difference.
struct BoundAggExpr {
  Expr::Kind kind = Expr::Kind::kColumn;
  std::size_t a = 0;
  std::size_t b = 0;  // kMul/kSub/kAdd only

  /// Exact evaluation over attribute codes.
  std::uint64_t eval(std::uint64_t va, std::uint64_t vb) const;
};

/// ORDER BY item: a group column (by index) or the aggregate value.
struct BoundOrderItem {
  bool is_agg = false;
  std::size_t group_pos = 0;  ///< position within group_by (not attr index)
  bool desc = false;
};

struct BoundQuery {
  std::vector<BoundPredicate> filters;  ///< conjunction
  std::vector<std::size_t> group_by;    ///< attr indices
  AggFunc agg_func = AggFunc::kSum;
  BoundAggExpr agg_expr;                ///< unused for COUNT(*)
  std::vector<BoundOrderItem> order_by;
  std::string agg_alias;

  /// Join predicates in SQL text form (left/right column names), preserved
  /// for the star-schema baseline planner.
  std::vector<std::pair<std::string, std::string>> join_predicates;

  bool has_group_by() const { return !group_by.empty(); }
};

/// Binds a parsed statement against the (pre-joined) schema.
/// Throws std::invalid_argument for unknown columns, type mismatches, more
/// than one aggregate, or aggregates mixed with non-grouped columns.
BoundQuery bind(const SelectStmt& stmt, const rel::Schema& schema);

/// A bound UPDATE: the target attribute, the new value as an attribute code,
/// and the WHERE conjunction in the same normalized form SELECTs use. This
/// is the unit the db facade's per-table update log stores and replays, so
/// it must be self-contained and schema-relative (no table pointers).
struct BoundUpdate {
  std::size_t attr = 0;
  std::uint64_t value = 0;  ///< encoded (dictionary code for strings)
  std::vector<BoundPredicate> filters;  ///< conjunction
};

/// Binds an UPDATE against the schema. The SET value is validated through
/// the attribute's encoding: a string with no dictionary code, a negative
/// integer, or an integer outside the attribute's packed-bit domain is
/// rejected with std::invalid_argument — never silently written as an
/// undecodable record. Join predicates in the WHERE clause are rejected.
BoundUpdate bind_update(const UpdateStmt& stmt, const rel::Schema& schema);

}  // namespace bbpim::sql
