// Binding SQL to a schema: the logical query plan.
//
// The binder resolves column names against a relation schema (for the PIM
// engine that is always the pre-joined relation), folds string literals to
// order-preserving dictionary codes, and normalizes predicates so that the
// back-ends (PIM filter compiler, columnar baseline, reference executor)
// share one representation. Join-equality predicates are carried separately:
// the pre-joined engines drop them (the join is materialized), the star-
// schema baseline uses them to plan hash joins.
//
// `bind_join` is the multi-table binder: it resolves (optionally qualified)
// columns against a FROM list of registered tables, splits the WHERE
// conjunction into per-table filter sets plus equi-join key pairs, and emits
// a star join tree — build hash tables on the filtered dimensions, probe
// with fact survivors (engine/hash_join executes it on the host over
// per-table PIM scan results).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "relational/schema.hpp"
#include "sql/ast.hpp"

namespace bbpim::sql {

/// A normalized single-attribute predicate over dictionary codes.
struct BoundPredicate {
  enum class Kind : std::uint8_t {
    kEq,
    kLt,
    kLe,
    kGt,
    kGe,
    kBetween,  ///< v1 <= x <= v2
    kIn,
    kNever,    ///< statically false (e.g. literal outside the dictionary)
    kAlways,   ///< statically true  (e.g. BETWEEN spanning the whole domain)
  };
  Kind kind = Kind::kAlways;
  std::size_t attr = 0;
  std::uint64_t v1 = 0;
  std::uint64_t v2 = 0;
  std::vector<std::uint64_t> in_values;

  /// Evaluates against a record's attribute code (reference semantics that
  /// the PIM micro-programs are tested against).
  bool matches(std::uint64_t value) const;
};

/// The aggregated expression: a column, a product, or a difference.
struct BoundAggExpr {
  Expr::Kind kind = Expr::Kind::kColumn;
  std::size_t a = 0;
  std::size_t b = 0;  // kMul/kSub/kAdd only

  /// Exact evaluation over attribute codes.
  std::uint64_t eval(std::uint64_t va, std::uint64_t vb) const;
};

/// ORDER BY item: a group column (by index) or the aggregate value.
struct BoundOrderItem {
  bool is_agg = false;
  std::size_t group_pos = 0;  ///< position within group_by (not attr index)
  bool desc = false;
};

struct BoundQuery {
  std::vector<BoundPredicate> filters;  ///< conjunction
  std::vector<std::size_t> group_by;    ///< attr indices
  AggFunc agg_func = AggFunc::kSum;
  BoundAggExpr agg_expr;                ///< unused for COUNT(*)
  std::vector<BoundOrderItem> order_by;
  std::string agg_alias;

  /// Join predicates in SQL text form (left/right column names), preserved
  /// for the star-schema baseline planner.
  std::vector<std::pair<std::string, std::string>> join_predicates;

  bool has_group_by() const { return !group_by.empty(); }
};

/// Binds a parsed statement against the (pre-joined) schema.
/// Throws std::invalid_argument for unknown columns, type mismatches, more
/// than one aggregate, or aggregates mixed with non-grouped columns.
BoundQuery bind(const SelectStmt& stmt, const rel::Schema& schema);

/// A bound UPDATE: the target attribute, the new value as an attribute code,
/// and the WHERE conjunction in the same normalized form SELECTs use. This
/// is the unit the db facade's per-table update log stores and replays, so
/// it must be self-contained and schema-relative (no table pointers).
struct BoundUpdate {
  std::size_t attr = 0;
  std::uint64_t value = 0;  ///< encoded (dictionary code for strings)
  std::vector<BoundPredicate> filters;  ///< conjunction
};

/// Binds an UPDATE against the schema. The SET value is validated through
/// the attribute's encoding: a string with no dictionary code, a negative
/// integer, or an integer outside the attribute's packed-bit domain is
/// rejected with std::invalid_argument — never silently written as an
/// undecodable record. Join predicates in the WHERE clause are rejected.
BoundUpdate bind_update(const UpdateStmt& stmt, const rel::Schema& schema);

/// One table of a multi-table FROM list as the join binder sees it.
struct JoinTableRef {
  std::string name;
  const rel::Schema* schema = nullptr;
  std::size_t row_count = 0;  ///< fact detection: the larger relation probes
};

/// A column resolved against the FROM list: (table position, attr index).
struct BoundColumnRef {
  std::size_t table = 0;
  std::size_t attr = 0;
  bool operator==(const BoundColumnRef&) const = default;
};

/// One build side of the star join: a dimension with the key attribute
/// pairs connecting it to the fact (composite keys keep the vectors
/// aligned: fact_attrs[i] probes dim_attrs[i]).
struct BoundBuildSide {
  std::size_t table = 0;  ///< dimension position in the FROM list
  std::vector<std::size_t> fact_attrs;
  std::vector<std::size_t> dim_attrs;
};

/// A bound multi-table star query: per-table filter conjunctions (each in
/// the same BoundPredicate form the PIM filter compiler consumes), the join
/// tree, and grouping/aggregation/ordering over joined rows.
struct BoundJoin {
  std::vector<std::string> table_names;  ///< FROM order, aligned with filters
  std::vector<std::vector<BoundPredicate>> filters;
  std::size_t fact = 0;                ///< probe side
  std::vector<BoundBuildSide> builds;  ///< probe order: most filtered first
  std::vector<BoundColumnRef> group_by;
  AggFunc agg_func = AggFunc::kSum;
  Expr::Kind agg_kind = Expr::Kind::kColumn;
  BoundColumnRef agg_a;  ///< unused for COUNT(*)
  BoundColumnRef agg_b;  ///< kMul/kSub/kAdd only
  std::string agg_alias;
  std::vector<BoundOrderItem> order_by;

  bool has_group_by() const { return !group_by.empty(); }
};

/// Binds a multi-table SELECT against the FROM list. Unqualified columns
/// resolve by schema search (ambiguity across tables is an error; qualify
/// as table.column); join predicates must form a star — one fact table
/// equi-joined to every dimension. Throws std::invalid_argument with a
/// "SQL bind error:" message otherwise (unknown qualifier, ambiguous or
/// unknown column, same-table or non-star join, cross join, incomparable
/// key types, self-join via duplicate FROM entries).
BoundJoin bind_join(const SelectStmt& stmt,
                    const std::vector<JoinTableRef>& tables);

}  // namespace bbpim::sql
