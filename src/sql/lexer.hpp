// SQL tokenizer for the SSB subset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bbpim::sql {

enum class TokKind : std::uint8_t {
  kIdent,    // column / table names (stored lowercased)
  kKeyword,  // SELECT, FROM, ... (stored uppercased)
  kInt,
  kString,   // '...' literal, quotes stripped
  kComma,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kDot,      // qualified column names: table.column
  kEq,
  kLt,
  kLe,
  kGt,
  kGe,
  kSemi,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;          // ident/keyword/string payload
  std::int64_t int_value = 0;
  std::size_t pos = 0;       // byte offset, for error messages
};

/// Tokenizes a statement; throws std::invalid_argument with position info on
/// malformed input (unterminated string, stray character).
std::vector<Token> lex(std::string_view sql);

}  // namespace bbpim::sql
