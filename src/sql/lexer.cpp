#include "sql/lexer.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

namespace bbpim::sql {
namespace {

const std::array<std::string_view, 18> kKeywords = {
    "SELECT", "FROM", "WHERE",   "AND", "GROUP",  "BY",  "ORDER",
    "ASC",    "DESC", "AS",      "IN",  "SUM",    "MIN", "MAX",
    "COUNT",  "SET",  "BETWEEN", "UPDATE"};

bool is_keyword(std::string_view upper) {
  for (std::string_view k : kKeywords) {
    if (k == upper) return true;
  }
  return false;
}

[[noreturn]] void fail(std::string_view what, std::size_t pos) {
  throw std::invalid_argument("SQL lex error at offset " + std::to_string(pos) +
                              ": " + std::string(what));
}

}  // namespace

std::vector<Token> lex(std::string_view sql) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        word.push_back(sql[i++]);
      }
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(
          static_cast<unsigned char>(ch)));
      if (is_keyword(upper)) {
        out.push_back({TokKind::kKeyword, upper, 0, start});
      } else {
        std::string lower = word;
        for (char& ch : lower) ch = static_cast<char>(std::tolower(
            static_cast<unsigned char>(ch)));
        out.push_back({TokKind::kIdent, lower, 0, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
        v = v * 10 + (sql[i++] - '0');
      }
      out.push_back({TokKind::kInt, {}, v, start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string s;
      while (i < n && sql[i] != '\'') s.push_back(sql[i++]);
      if (i == n) fail("unterminated string literal", start);
      ++i;  // closing quote
      out.push_back({TokKind::kString, std::move(s), 0, start});
      continue;
    }
    auto single = [&](TokKind k) {
      out.push_back({k, {}, 0, start});
      ++i;
    };
    switch (c) {
      case ',': single(TokKind::kComma); break;
      case '(': single(TokKind::kLParen); break;
      case ')': single(TokKind::kRParen); break;
      case '*': single(TokKind::kStar); break;
      case '.': single(TokKind::kDot); break;
      case '+': single(TokKind::kPlus); break;
      case '-': single(TokKind::kMinus); break;
      case ';': single(TokKind::kSemi); break;
      case '=': single(TokKind::kEq); break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          out.push_back({TokKind::kLe, {}, 0, start});
          i += 2;
        } else {
          single(TokKind::kLt);
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          out.push_back({TokKind::kGe, {}, 0, start});
          i += 2;
        } else {
          single(TokKind::kGt);
        }
        break;
      default:
        fail("unexpected character", start);
    }
  }
  out.push_back({TokKind::kEnd, {}, 0, n});
  return out;
}

}  // namespace bbpim::sql
