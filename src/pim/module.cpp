#include "pim/module.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbpim::pim {

std::size_t PimModule::allocate_pages(std::size_t n, std::uint32_t data_cols) {
  const std::size_t first = pages_.size();
  if ((pages_.size() + n) * cfg_.page_bytes() > cfg_.capacity_bytes) {
    throw std::runtime_error("PimModule: capacity exceeded");
  }
  for (std::size_t i = 0; i < n; ++i) {
    pages_.emplace_back(first + i, cfg_, data_cols);
  }
  return first;
}

std::uint64_t PimModule::read_record_field(std::size_t page_idx,
                                           std::uint32_t record,
                                           const Field& f) const {
  const Page& p = pages_.at(page_idx);
  const Page::RecordCoord c = p.locate(record);
  return p.crossbar(c.crossbar).read_row_bits(c.row, f.offset, f.width);
}

void PimModule::write_record_field(std::size_t page_idx, std::uint32_t record,
                                   const Field& f, std::uint64_t value) {
  Page& p = pages_.at(page_idx);
  const Page::RecordCoord c = p.locate(record);
  p.crossbar(c.crossbar).write_row_bits(c.row, f.offset, f.width, value);
}

std::uint64_t PimModule::max_row_writes() const {
  std::uint64_t worst = 0;
  for (const Page& p : pages_) {
    for (std::uint32_t x = 0; x < p.crossbar_count(); ++x) {
      worst = std::max(worst, p.crossbar(x).max_row_writes());
    }
  }
  return worst;
}

void PimModule::reset_wear() {
  for (Page& p : pages_) {
    for (std::uint32_t x = 0; x < p.crossbar_count(); ++x) {
      p.crossbar(x).reset_wear();
    }
  }
}

}  // namespace bbpim::pim
