// Micro-program builders: predicates and arithmetic as NOR-only sequences.
//
// Bulk-bitwise PIM computes with MAGIC-style gates: NOR is native, NOT is a
// one-input NOR, and every gate output column must be initialized (a write
// cycle) before the gate executes. The builders below compose comparison
// predicates (=, <, <=, >, >=, BETWEEN, IN), bit-column logic, ripple-carry
// add/sub, shift-add multiply, and the paper's Algorithm 1 (PIM MUX used for
// UPDATE on pre-joined relations) out of those primitives. Emitted cycle
// counts are exactly what the cost model charges — nothing is hand-waved.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pim/microop.hpp"

namespace bbpim::pim {

/// A contiguous bit field within a crossbar row (attribute or scratch).
struct Field {
  std::uint16_t offset = 0;
  std::uint16_t width = 0;
};

/// Marks kInit0/kInit1 ops whose output column is overwritten by a later op
/// of the same program before any op reads it. A MAGIC gate drives every
/// cell of its output column, so such initializations have no observable
/// functional effect — the fused interpreter skips their word loop while
/// the cost model still charges the cycle (time, energy, wear). In the
/// INIT+gate idiom every builder emits, roughly half of a program's ops
/// qualify. Computed in one backward pass; mask[i] == 1 means skippable.
std::vector<std::uint8_t> dead_init_mask(const MicroProgram& prog);

/// Free-list allocator over the scratch column region of a row layout.
class ColumnAlloc {
 public:
  /// Scratch region is [begin, end).
  ColumnAlloc(std::uint16_t begin, std::uint16_t end);

  /// Allocates one scratch column; throws std::runtime_error when exhausted.
  std::uint16_t alloc();
  /// Returns a column to the pool.
  void release(std::uint16_t col);

  /// Marks a specific column in use — replaying a cached compilation's
  /// allocator effect (the result column a memoized filter program left
  /// allocated). Throws std::logic_error when the column is already taken.
  void acquire(std::uint16_t col);

  /// Digest of the current in-use set (and region bounds). Allocation is a
  /// pure function of this state, so two allocators with equal state hand
  /// out identical columns for identical request sequences.
  std::uint64_t state_fingerprint() const;

  /// Verbatim (collision-free) encoding of the same state — bounds plus the
  /// in-use bitmap in hex. What the compiled-filter cache keys on: a hash
  /// collision there would replay a program compiled for a different
  /// allocator state.
  std::string state_key() const;

  /// Allocates `width` columns (not necessarily contiguous is NOT acceptable
  /// for fields read by the aggregation circuit, so this returns a contiguous
  /// run; throws when fragmentation prevents it).
  Field alloc_field(std::uint16_t width);
  void release_field(const Field& f);

  /// Allocates one full read-chunk-aligned field of `chunk_bits` columns.
  /// Host chunk-granular writes (e.g. the two-xb transfer column) clobber
  /// every cell of the chunk, so the whole chunk must be reserved.
  Field alloc_aligned_chunk(std::uint16_t chunk_bits);

  std::size_t available() const;
  std::uint16_t begin() const { return begin_; }
  std::uint16_t end() const { return end_; }

 private:
  std::uint16_t begin_;
  std::uint16_t end_;
  std::vector<bool> in_use_;  // indexed by col - begin_
};

/// Emits micro-ops into a program, managing scratch columns.
///
/// Methods returning a column id transfer ownership of that scratch column to
/// the caller, who must `release()` it (or hand it to another emit call that
/// documents consumption). Internal temporaries are released automatically.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(ColumnAlloc& alloc) : alloc_(alloc) {}

  // --- Gate-level helpers (each INIT1 + gate = 2 cycles) -------------------
  std::uint16_t emit_not(std::uint16_t a);
  std::uint16_t emit_nor(std::uint16_t a, std::uint16_t b);
  std::uint16_t emit_or(std::uint16_t a, std::uint16_t b);
  std::uint16_t emit_and(std::uint16_t a, std::uint16_t b);
  /// a AND (NOT b)
  std::uint16_t emit_andnot(std::uint16_t a, std::uint16_t b);
  std::uint16_t emit_xor(std::uint16_t a, std::uint16_t b);
  std::uint16_t emit_xnor(std::uint16_t a, std::uint16_t b);
  /// Sets a column to a constant across all rows (1 cycle).
  std::uint16_t emit_const(bool value);
  /// Copies a bit column into a fresh scratch column (2 NOTs = 4 cycles).
  std::uint16_t emit_copy(std::uint16_t a);
  /// Overwrites existing column `dst` with `src` (2 NOTs through a temp).
  void emit_copy_into(std::uint16_t src, std::uint16_t dst);

  // --- Predicates over fields (unsigned immediates) -------------------------
  /// result = (field == value)
  std::uint16_t emit_eq_const(const Field& f, std::uint64_t value);
  /// result = (field < value); value may exceed field range.
  std::uint16_t emit_lt_const(const Field& f, std::uint64_t value);
  /// result = (field <= value)
  std::uint16_t emit_le_const(const Field& f, std::uint64_t value);
  /// result = (field > value)
  std::uint16_t emit_gt_const(const Field& f, std::uint64_t value);
  /// result = (field >= value)
  std::uint16_t emit_ge_const(const Field& f, std::uint64_t value);
  /// result = (lo <= field AND field <= hi)
  std::uint16_t emit_between_const(const Field& f, std::uint64_t lo,
                                   std::uint64_t hi);
  /// result = OR_i (field == values[i])
  std::uint16_t emit_in_set(const Field& f, std::span<const std::uint64_t> values);

  // --- Field arithmetic (unsigned, two's-complement internals) --------------
  /// dst = a + b, ripple carry; dst.width may exceed both operand widths.
  void emit_add(const Field& a, const Field& b, const Field& dst);
  /// dst = a - b (wraps modulo 2^dst.width; callers guarantee a >= b).
  void emit_sub(const Field& a, const Field& b, const Field& dst);
  /// dst = a * b via shift-add over b's bits; dst.width >= a.width + b.width
  /// is required for an exact product.
  void emit_mul(const Field& a, const Field& b, const Field& dst);

  // --- Algorithm 1 of the paper ---------------------------------------------
  /// For all rows: field <- value where select=1, unchanged where select=0.
  /// Pure PIM (no host reads): per bit, v = v OR s (c_i=1) / v AND NOT s.
  void emit_mux_const(const Field& f, std::uint64_t value,
                      std::uint16_t select_col);

  /// Zeroes a whole field (used to clear accumulators; 1 cycle per column).
  void emit_clear_field(const Field& f);

  void release(std::uint16_t col) { alloc_.release(col); }

  const MicroProgram& program() const { return prog_; }
  MicroProgram take() { return std::move(prog_); }
  std::size_t cycle_count() const { return prog_.size(); }

 private:
  /// Fresh initialized-to-1 output column for a MAGIC gate.
  std::uint16_t fresh();

  ColumnAlloc& alloc_;
  MicroProgram prog_;
};

}  // namespace bbpim::pim
