// A PIM hugepage: the unit of PIM request targeting.
//
// One 2 MB hugepage spans 32 crossbars, striped 4-per-chip across the 8
// chips of the module. All crossbars of a page execute the same micro-op
// sequence concurrently (Section II-B), which is where bulk-bitwise
// parallelism comes from. Record i of a page lives in crossbar i/1024,
// row i%1024.
#pragma once

#include <cstdint>
#include <vector>

#include "pim/config.hpp"
#include "pim/crossbar.hpp"

namespace bbpim::pim {

class Page {
 public:
  /// `data_cols` splits every crossbar of the page into a shareable data
  /// segment and private scratch (see Crossbar); the default keeps the
  /// whole crossbar as data.
  Page(std::size_t id, const PimConfig& cfg,
       std::uint32_t data_cols = PimConfig::kAllData)
      : id_(id) {
    if (data_cols == PimConfig::kAllData) data_cols = cfg.crossbar_cols;
    crossbars_.reserve(cfg.crossbars_per_page);
    for (std::uint32_t i = 0; i < cfg.crossbars_per_page; ++i) {
      crossbars_.emplace_back(cfg.crossbar_rows, cfg.crossbar_cols, data_cols);
    }
  }

  std::size_t id() const { return id_; }
  std::uint32_t crossbar_count() const {
    return static_cast<std::uint32_t>(crossbars_.size());
  }
  Crossbar& crossbar(std::uint32_t i) { return crossbars_.at(i); }
  const Crossbar& crossbar(std::uint32_t i) const { return crossbars_.at(i); }

  std::uint32_t records() const {
    return crossbar_count() * crossbars_[0].rows();
  }

  /// Crossbar / row coordinates of a record index within this page.
  struct RecordCoord {
    std::uint32_t crossbar;
    std::uint32_t row;
  };
  RecordCoord locate(std::uint32_t record) const {
    const std::uint32_t rows = crossbars_[0].rows();
    return {record / rows, record % rows};
  }

 private:
  std::size_t id_;
  std::vector<Crossbar> crossbars_;
};

}  // namespace bbpim::pim
