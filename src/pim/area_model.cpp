#include "pim/area_model.hpp"

namespace bbpim::pim {

AreaBreakdown compute_area(const PimConfig& cfg, const AreaParams& params) {
  const double um2_to_mm2 = 1e-6;
  const std::uint64_t chip_bytes = cfg.capacity_bytes / cfg.chips;
  const std::uint64_t crossbars_per_chip =
      chip_bytes / (cfg.crossbar_bits() / 8);
  const std::uint64_t banks_per_chip =
      crossbars_per_chip / params.crossbars_per_bank;
  // Every page has a dedicated controller on every chip (Section II-B), so a
  // chip carries one controller per module page.
  const std::uint64_t controllers_per_chip = cfg.pages_in_module();

  const AreaMm2 crossbars =
      static_cast<double>(crossbars_per_chip) * params.crossbar_um2 * um2_to_mm2;
  const AreaMm2 periph = static_cast<double>(crossbars_per_chip) *
                         params.crossbar_periph_um2 * um2_to_mm2;
  const AreaMm2 agg = params.include_agg_circuit
                          ? static_cast<double>(crossbars_per_chip) *
                                params.agg_circuit_um2 * um2_to_mm2
                          : 0.0;
  const AreaMm2 bank = static_cast<double>(banks_per_chip) *
                       params.bank_periph_um2 * um2_to_mm2;
  const AreaMm2 ctrl = static_cast<double>(controllers_per_chip) *
                       params.controller_um2 * um2_to_mm2;

  const AreaMm2 active = crossbars + periph + agg + bank + ctrl;
  const AreaMm2 wires =
      params.wire_fraction / (1.0 - params.wire_fraction) * active;
  const AreaMm2 total = active + wires;

  AreaBreakdown out;
  out.chip_total_mm2 = total;
  out.module_total_mm2 = total * cfg.chips;
  auto push = [&](const std::string& name, AreaMm2 a) {
    out.components.push_back({name, a, total > 0 ? 100.0 * a / total : 0.0});
  };
  push("Crossbar peripherals", periph);
  push("Crossbars", crossbars);
  push("Bank peripherals", bank);
  push("Aggregation circuits", agg);
  push("PIM controllers", ctrl);
  push("Wires", wires);
  return out;
}

}  // namespace bbpim::pim
