#include "pim/technology.hpp"

#include <stdexcept>

namespace bbpim::pim {

const char* technology_name(Technology tech) {
  switch (tech) {
    case Technology::kRram: return "RRAM";
    case Technology::kDram: return "DRAM";
    case Technology::kPcm: return "PCM";
  }
  return "?";
}

double technology_endurance_writes(Technology tech) {
  switch (tech) {
    case Technology::kRram: return 1e12;  // [22]
    case Technology::kDram: return 1e17;  // effectively unlimited
    case Technology::kPcm: return 1e9;    // typical published PCM endurance
  }
  throw std::invalid_argument("technology_endurance_writes: bad technology");
}

PimConfig technology_config(Technology tech) {
  PimConfig cfg;  // the paper's RRAM Table I by default
  switch (tech) {
    case Technology::kRram:
      break;
    case Technology::kDram:
      // Ambit-style: one bulk op = a triple-row-activation sequence
      // (ACT-ACT-PRE, ~3x tRAS), cheap charge-based ops, fast writes.
      cfg.logic_cycle_ns = 105.0;
      cfg.read_cycle_ns = 15.0;
      cfg.write_cycle_ns = 15.0;
      cfg.logic_energy_fj_per_bit = 25.0;
      cfg.read_energy_pj_per_bit = 0.35;
      cfg.write_energy_pj_per_bit = 0.35;
      break;
    case Technology::kPcm:
      // Pinatubo-style: reads comparable to RRAM, SET/RESET writes are the
      // pain point (energy and latency), logic via modified sense amps.
      cfg.logic_cycle_ns = 60.0;
      cfg.read_cycle_ns = 30.0;
      cfg.write_cycle_ns = 150.0;
      cfg.logic_energy_fj_per_bit = 120.0;
      cfg.read_energy_pj_per_bit = 1.1;
      cfg.write_energy_pj_per_bit = 16.8;
      break;
  }
  return cfg;
}

}  // namespace bbpim::pim
