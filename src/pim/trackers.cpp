#include "pim/trackers.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbpim::pim {

EnergyBreakdown energy_breakdown(const EnergyMeter& meter) {
  EnergyBreakdown b;
  b.total = meter.total();
  b.logic = meter.of(EnergyCat::kLogic);
  b.read = meter.of(EnergyCat::kRead);
  b.write = meter.of(EnergyCat::kWrite);
  b.controller = meter.of(EnergyCat::kController);
  b.agg_circuit = meter.of(EnergyCat::kAggCircuit);
  return b;
}

void PowerTracker::add_interval(TimeNs start_ns, TimeNs end_ns, PowerW watts) {
  if (end_ns < start_ns) {
    throw std::invalid_argument("PowerTracker: negative interval");
  }
  if (end_ns == start_ns || watts == 0.0) return;
  events_.push_back({start_ns, watts});
  events_.push_back({end_ns, -watts});
}

PowerW PowerTracker::peak_module_w() const {
  std::vector<Event> sorted = events_;
  std::sort(sorted.begin(), sorted.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;  // process removals first at equal time
  });
  PowerW cur = 0, peak = 0;
  for (const Event& e : sorted) {
    cur += e.delta;
    peak = std::max(peak, cur);
  }
  return peak;
}

}  // namespace bbpim::pim
