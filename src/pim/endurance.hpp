// Endurance / lifetime modeling (Fig. 9 and the lifetime headline).
//
// Memristive cells wear out with writes; every MAGIC cycle writes its
// output column (one cell per row), so compute itself consumes lifetime.
// Following the paper: wear-leveling distributes a row's writes uniformly
// over its cells, so the per-cell write rate is the worst row's writes per
// query divided by the row width, times the query rate.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "pim/config.hpp"

namespace bbpim::pim {

/// Published RRAM endurance: ~1e12 writes per cell [22].
inline constexpr double kRramEnduranceWrites = 1e12;

struct EnduranceReport {
  /// Writes one cell absorbs per query execution (after row leveling).
  double writes_per_cell_per_query = 0;
  /// Queries per second at 100% duty cycle.
  double queries_per_second = 0;
  /// Fig. 9 metric: per-cell writes over `horizon_years` back-to-back.
  double writes_over_horizon = 0;
  /// Years until the budget is exhausted at 100% duty cycle.
  double lifetime_years = 0;
  bool within_budget = false;
};

/// Computes the report for a query with worst-row write count
/// `max_row_writes` and latency `query_ns`, on `cfg`'s row geometry.
EnduranceReport endurance_report(std::uint64_t max_row_writes,
                                 TimeNs query_ns, const PimConfig& cfg,
                                 double horizon_years = 10.0,
                                 double budget_writes = kRramEnduranceWrites);

}  // namespace bbpim::pim
