// NVSim-style analytic chip area model (Fig. 5 of the paper).
//
// The paper synthesized the aggregation circuit (TSMC 28 nm, Synopsys DC +
// Cadence Innovus) and extended NVSim with PIM controllers and per-crossbar
// aggregation circuits, arriving at a 346 mm^2 chip whose breakdown Fig. 5
// reports. We encode those synthesized unit areas as defaults of a
// parametric model: component counts derive from the module geometry, so
// changing chips/crossbar size/ALU presence re-derives the budget.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "pim/config.hpp"

namespace bbpim::pim {

/// Unit areas (um^2 per instance) calibrated to the paper's synthesis.
struct AreaParams {
  double crossbar_um2 = 1016.0;        ///< one 1024x512 RRAM mat
  double crossbar_periph_um2 = 2133.0; ///< decoders/SAs/drivers per mat
  double agg_circuit_um2 = 734.0;      ///< synthesized SUM/MIN/MAX ALU
  double bank_periph_um2 = 63600.0;    ///< per bank (shared I/O, buffers)
  double controller_um2 = 1445.0;      ///< one PIM page controller
  double wire_fraction = 0.0076;       ///< global wiring share of total
  std::uint32_t crossbars_per_bank = 64;
  bool include_agg_circuit = true;     ///< false models the PIMDB chip
};

/// One line of the Fig. 5 breakdown.
struct AreaComponent {
  std::string name;
  AreaMm2 area_mm2 = 0;
  double percent = 0;
};

struct AreaBreakdown {
  std::vector<AreaComponent> components;
  AreaMm2 chip_total_mm2 = 0;
  AreaMm2 module_total_mm2 = 0;  ///< chip total x chips
};

/// Computes the per-chip breakdown for a module configuration.
AreaBreakdown compute_area(const PimConfig& cfg, const AreaParams& params = {});

}  // namespace bbpim::pim
