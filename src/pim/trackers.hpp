// Energy and peak-power accounting for the PIM module.
//
// Figures 7 and 8 of the paper report per-query PIM module energy and the
// peak power drawn by a single PIM chip. EnergyMeter accumulates dynamic and
// active-component energy by category; PowerTracker collects time intervals
// of module activity and computes the worst instantaneous overlap.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace bbpim::pim {

/// Where the joules went — used by the energy bench to explain Fig. 7.
enum class EnergyCat : std::size_t {
  kLogic = 0,      ///< bulk-bitwise MAGIC cycles
  kRead,           ///< crossbar reads (host lines, result columns, agg reads)
  kWrite,          ///< crossbar writes (results, column writes, updates)
  kController,     ///< PIM controllers while executing requests
  kAggCircuit,     ///< aggregation circuits while active
  kCount
};

/// Accumulates module energy by category.
///
/// A journaling meter (EnergyMeter(true)) additionally records every add()
/// in order so a parallel simulation worker's private accumulation can be
/// replayed into a shared meter afterwards. Replaying per-chunk journals in
/// chunk order reproduces the serial run's exact floating-point add
/// sequence, which is what keeps parallel energy totals bit-identical to
/// serial ones (category-wise merging would reassociate the sums).
class EnergyMeter {
 public:
  EnergyMeter() = default;
  explicit EnergyMeter(bool journal) : journal_(journal) {}

  void add(EnergyCat cat, EnergyJ joules) {
    by_cat_[static_cast<std::size_t>(cat)] += joules;
    if (journal_) log_.push_back({cat, joules});
  }
  EnergyJ total() const {
    EnergyJ t = 0;
    for (EnergyJ e : by_cat_) t += e;
    return t;
  }
  EnergyJ of(EnergyCat cat) const {
    return by_cat_[static_cast<std::size_t>(cat)];
  }
  void reset() {
    by_cat_.fill(0.0);
    log_.clear();
  }

  /// Re-applies this journaling meter's adds, in order, onto `dst`.
  void replay_into(EnergyMeter& dst) const {
    for (const Entry& e : log_) dst.add(e.cat, e.joules);
  }

 private:
  struct Entry {
    EnergyCat cat;
    EnergyJ joules;
  };
  std::array<EnergyJ, static_cast<std::size_t>(EnergyCat::kCount)> by_cat_{};
  bool journal_ = false;
  std::vector<Entry> log_;
};

/// Category totals of one meter in a single struct — the export format the
/// engine's QueryStats and UpdateStats share, so new accounting consumers
/// (the UPDATE path, future request classes) cannot drift from the query
/// path's category mapping.
struct EnergyBreakdown {
  EnergyJ total = 0;
  EnergyJ logic = 0;
  EnergyJ read = 0;
  EnergyJ write = 0;
  EnergyJ controller = 0;
  EnergyJ agg_circuit = 0;
};

EnergyBreakdown energy_breakdown(const EnergyMeter& meter);

/// Sweep-line peak power over recorded activity intervals.
///
/// Pages are striped uniformly across all chips, so per-chip power is the
/// module power divided by the chip count.
class PowerTracker {
 public:
  /// Records that the module drew `watts` during [start, end).
  void add_interval(TimeNs start_ns, TimeNs end_ns, PowerW watts);

  /// Maximum instantaneous module power across all recorded intervals.
  PowerW peak_module_w() const;

  std::size_t interval_count() const { return events_.size() / 2; }
  void reset() { events_.clear(); }

 private:
  struct Event {
    TimeNs t;
    PowerW delta;
  };
  std::vector<Event> events_;
};

}  // namespace bbpim::pim
