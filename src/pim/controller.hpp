// The per-page PIM controller: macro-request execution with cost traces.
//
// The host talks to the module in macro requests (a whole filter program, a
// whole aggregation pass, a packed result-column read/write). Each page has
// a dedicated controller on every chip (Section II-B); a controller decodes
// the request into the basic-cycle sequence and drives all 32 crossbars of
// its page concurrently. Functional effects apply immediately; the returned
// trace carries duration, dynamic energy and average power so the host-side
// scheduler (src/host/pipeline) can build the query timeline.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/units.hpp"
#include "pim/agg_circuit.hpp"
#include "pim/config.hpp"
#include "pim/microcode.hpp"
#include "pim/page.hpp"
#include "pim/trackers.hpp"

namespace bbpim::pim {

/// Request classes pipeline differently (Section V-A discussion in
/// DESIGN.md): bulk logic is power-limited to a shallow outstanding window,
/// read-class requests (aggregation, column streaming) may pipeline deeper.
enum class RequestClass : std::uint8_t {
  kLogic,
  kAggregate,
  kColumnRead,
  kColumnWrite,
};

/// Cost record for one macro request on one page.
struct RequestTrace {
  RequestClass cls = RequestClass::kLogic;
  TimeNs duration_ns = 0;
  EnergyJ energy_j = 0;
  /// Average module power while the request runs (energy/duration).
  PowerW avg_power_w = 0;

  void finalize_power() {
    avg_power_w = duration_ns > 0
                      ? energy_j / units::ns_to_sec(duration_ns)
                      : 0.0;
  }
};

/// Aggregation macro request (one subgroup, one page).
struct AggRequest {
  Field value;             ///< aggregated attribute field
  std::uint16_t select_col = 0;  ///< filter-result bit column
  AggOp op = AggOp::kSum;
  Field result;            ///< where each crossbar's circuit writes its result
  std::uint32_t result_row = 0;
  bool with_count = false; ///< also write the selected-row count
  Field count;             ///< count destination (when with_count)
};

/// Cost-only trace for a bulk logic sequence of `cycles` on a page of
/// `crossbars` crossbars (used by the PIMDB bit-serial aggregation path and
/// the model fitter, which price sequences without materializing programs).
RequestTrace logic_trace_cost(const PimConfig& cfg, std::uint64_t cycles,
                              std::uint32_t crossbars);

// The `vectorized` flags below select between the fast simulation kernels
// (fused interpreter with dead-init elision, word-level column packing,
// select-word-skipping aggregation) and the original scalar loops. Both
// produce bit-identical functional results and identical cost traces; the
// scalar path exists as the measured baseline of bench/sim_speed and as the
// oracle the kernel-equivalence tests compare against.

struct WordOp;  // pim/wordeval.hpp

/// Executes a micro-program on every crossbar of the page (bulk logic).
/// When `words` (the program's semantic twin, see pim/wordeval.hpp) is
/// given and the vectorized kernels are on, the functional effect is
/// computed word-level while the cost trace still charges the gate
/// program's cycles.
RequestTrace execute_program(Page& page, const MicroProgram& prog,
                             const PimConfig& cfg, EnergyMeter* meter,
                             bool vectorized = true,
                             const std::vector<WordOp>* words = nullptr);

/// Folded functional outcome of one page's aggregation request: crossbar
/// results combined with the request's op (masked exactly as the written
/// result fields would read back) and counts summed. Lets the vectorized
/// engine skip re-reading the per-crossbar result fields.
struct PageAggResult {
  std::uint64_t value = 0;
  std::uint64_t count = 0;
};

/// Runs the aggregation circuits of all crossbars of the page in parallel.
RequestTrace execute_aggregate(Page& page, const AggRequest& req,
                               const PimConfig& cfg, EnergyMeter* meter,
                               bool vectorized = true,
                               PageAggResult* folded = nullptr);

/// Streams one bit column of every crossbar to the host, packed
/// (CONCEPT-style column reads). Record order: crossbar-major, then row.
/// `line_ns` is the host-side cost of transferring one 64 B line.
RequestTrace read_bit_column(Page& page, std::uint16_t col, TimeNs line_ns,
                             const PimConfig& cfg, EnergyMeter* meter,
                             BitVec* out, bool vectorized = true);

/// Writes a packed bit vector into one bit column of every crossbar
/// (used for two-xb intermediate-result transfer and bulk loads).
RequestTrace write_bit_column(Page& page, std::uint16_t col,
                              const BitVec& bits, TimeNs line_ns,
                              const PimConfig& cfg, EnergyMeter* meter,
                              bool vectorized = true);

}  // namespace bbpim::pim
