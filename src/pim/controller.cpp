#include "pim/controller.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "pim/wordeval.hpp"

namespace bbpim::pim {
namespace {

/// Energy drawn by the page's controllers (one per chip) over a duration.
EnergyJ controller_energy(const PimConfig& cfg, TimeNs duration_ns) {
  return cfg.controller_power_uw * units::kWattPerUw * cfg.chips *
         units::ns_to_sec(duration_ns);
}

}  // namespace

RequestTrace logic_trace_cost(const PimConfig& cfg, std::uint64_t cycles,
                              std::uint32_t crossbars) {
  RequestTrace t;
  t.cls = RequestClass::kLogic;
  t.duration_ns = static_cast<double>(cycles) * cfg.logic_cycle_ns;
  t.energy_j = static_cast<double>(cycles) * crossbars *
                   cfg.logic_cycle_energy_j() +
               controller_energy(cfg, t.duration_ns);
  t.finalize_power();
  return t;
}

RequestTrace execute_program(Page& page, const MicroProgram& prog,
                             const PimConfig& cfg, EnergyMeter* meter,
                             bool vectorized, const std::vector<WordOp>* words) {
  if (vectorized && words != nullptr) {
    // Word-level semantics; the gate program's cycles still pay the wear.
    for (std::uint32_t i = 0; i < page.crossbar_count(); ++i) {
      Crossbar& xb = page.crossbar(i);
      execute_words(xb, *words);
      xb.add_uniform_wear(prog.size());
    }
  } else if (vectorized) {
    // One dead-init analysis serves all crossbars of the page.
    const std::vector<std::uint8_t> dead = dead_init_mask(prog);
    for (std::uint32_t i = 0; i < page.crossbar_count(); ++i) {
      page.crossbar(i).execute_fused(prog, dead);
    }
  } else {
    for (std::uint32_t i = 0; i < page.crossbar_count(); ++i) {
      page.crossbar(i).execute(prog);
    }
  }
  RequestTrace t =
      logic_trace_cost(cfg, prog.size(), page.crossbar_count());
  if (meter != nullptr) {
    const EnergyJ ctrl = controller_energy(cfg, t.duration_ns);
    meter->add(EnergyCat::kLogic, t.energy_j - ctrl);
    meter->add(EnergyCat::kController, ctrl);
  }
  return t;
}

RequestTrace execute_aggregate(Page& page, const AggRequest& req,
                               const PimConfig& cfg, EnergyMeter* meter,
                               bool vectorized, PageAggResult* folded) {
  RequestTrace t;
  t.cls = RequestClass::kAggregate;
  EnergyJ agg_energy = 0;
  AggCircuitCost cost;
  const std::uint64_t value_max =
      req.value.width >= 64 ? ~0ULL : (1ULL << req.value.width) - 1;
  const std::uint64_t result_mask =
      req.result.width >= 64 ? ~0ULL : (1ULL << req.result.width) - 1;
  const std::uint64_t count_mask =
      req.count.width >= 64 ? ~0ULL : (1ULL << req.count.width) - 1;
  if (folded != nullptr) {
    folded->value = req.op == AggOp::kMin ? value_max : 0;
    folded->count = 0;
  }
  for (std::uint32_t i = 0; i < page.crossbar_count(); ++i) {
    std::uint64_t count = 0;
    const std::uint64_t acc = run_agg_circuit(
        page.crossbar(i), req.value, req.select_col, req.op, req.result,
        req.result_row, cfg, &cost, req.with_count ? &req.count : nullptr,
        vectorized, folded != nullptr ? &count : nullptr);
    if (folded != nullptr) {
      // Masked exactly as the written result field reads back.
      folded->value = agg_fold(req.op, folded->value, acc & result_mask);
      if (req.with_count) folded->count += count & count_mask;
    }
    agg_energy += cost.energy_j;
  }
  // All circuits run in parallel; page duration is one crossbar's duration.
  t.duration_ns = cost.duration_ns;
  const EnergyJ ctrl = controller_energy(cfg, t.duration_ns);
  if (meter != nullptr) {
    meter->add(EnergyCat::kAggCircuit, agg_energy);
    meter->add(EnergyCat::kController, ctrl);
  }
  t.energy_j = agg_energy + ctrl;
  t.finalize_power();
  return t;
}

RequestTrace read_bit_column(Page& page, std::uint16_t col, TimeNs line_ns,
                             const PimConfig& cfg, EnergyMeter* meter,
                             BitVec* out, bool vectorized) {
  const std::uint32_t rows = page.crossbar(0).rows();
  const std::uint32_t reads_per_xbar = (rows + cfg.read_bits - 1) / cfg.read_bits;

  if (out != nullptr) {
    *out = BitVec(page.records());
    if (vectorized) {
      // Record order is crossbar-major and rows are a multiple of 64, so
      // crossbar x's column occupies a word-aligned slice of the output.
      const std::uint32_t words = page.crossbar(0).words_per_column();
      std::uint64_t* dst = out->words().data();
      for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
        const std::uint64_t* src = page.crossbar(x).column_data(col);
        std::copy(src, src + words, dst + static_cast<std::size_t>(x) * words);
      }
    } else {
      for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
        const BitVec colbits = page.crossbar(x).column(col);
        for (std::uint32_t r = 0; r < rows; ++r) {
          if (colbits.get(r)) {
            out->set(static_cast<std::size_t>(x) * rows + r, true);
          }
        }
      }
    }
  }

  RequestTrace t;
  t.cls = RequestClass::kColumnRead;
  // One 64 B line carries the 16-bit chunk holding the column's bit from
  // each of the 32 crossbars of one row: reading a bit column costs one
  // line per page row (the paper's "filter result read" cost). The internal
  // 16-bit chunk reads overlap with the line stream.
  const std::uint32_t lines = rows;
  t.duration_ns = static_cast<double>(lines) * line_ns;
  const EnergyJ read_e = static_cast<double>(page.crossbar_count()) * rows *
                         cfg.read_energy_j();
  (void)reads_per_xbar;
  const EnergyJ ctrl = controller_energy(cfg, t.duration_ns);
  if (meter != nullptr) {
    meter->add(EnergyCat::kRead, read_e);
    meter->add(EnergyCat::kController, ctrl);
  }
  t.energy_j = read_e + ctrl;
  t.finalize_power();
  return t;
}

RequestTrace write_bit_column(Page& page, std::uint16_t col,
                              const BitVec& bits, TimeNs line_ns,
                              const PimConfig& cfg, EnergyMeter* meter,
                              bool vectorized) {
  const std::uint32_t rows = page.crossbar(0).rows();
  if (bits.size() != page.records()) {
    throw std::invalid_argument("write_bit_column: size mismatch");
  }
  for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
    BitVec colbits(rows);
    if (vectorized) {
      const std::uint32_t words = page.crossbar(0).words_per_column();
      const std::uint64_t* src =
          bits.words().data() + static_cast<std::size_t>(x) * words;
      std::copy(src, src + words, colbits.words().begin());
    } else {
      for (std::uint32_t r = 0; r < rows; ++r) {
        if (bits.get(static_cast<std::size_t>(x) * rows + r)) {
          colbits.set(r, true);
        }
      }
    }
    page.crossbar(x).write_column(col, colbits);
  }

  RequestTrace t;
  t.cls = RequestClass::kColumnWrite;
  // Host writes arrive one line per row; each line rewrites the full 16-bit
  // chunk containing the target bit in every crossbar (write granularity),
  // which both the energy and the wear account for.
  for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
    page.crossbar(x).add_uniform_wear(cfg.read_bits - 1);  // +1 in write_column
  }
  t.duration_ns = static_cast<double>(rows) * line_ns + cfg.write_cycle_ns;
  const EnergyJ write_e = static_cast<double>(page.crossbar_count()) *
                          cfg.write_energy_j(static_cast<std::uint64_t>(rows) *
                                             cfg.read_bits);
  const EnergyJ ctrl = controller_energy(cfg, t.duration_ns);
  if (meter != nullptr) {
    meter->add(EnergyCat::kWrite, write_e);
    meter->add(EnergyCat::kController, ctrl);
  }
  t.energy_j = write_e + ctrl;
  t.finalize_power();
  return t;
}

}  // namespace bbpim::pim
