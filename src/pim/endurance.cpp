#include "pim/endurance.hpp"

#include <stdexcept>

namespace bbpim::pim {

EnduranceReport endurance_report(std::uint64_t max_row_writes,
                                 TimeNs query_ns, const PimConfig& cfg,
                                 double horizon_years, double budget_writes) {
  if (query_ns <= 0) {
    throw std::invalid_argument("endurance_report: non-positive latency");
  }
  EnduranceReport r;
  r.writes_per_cell_per_query =
      static_cast<double>(max_row_writes) / cfg.crossbar_cols;
  r.queries_per_second = units::kNsPerSec / query_ns;
  const double per_year = r.writes_per_cell_per_query * r.queries_per_second *
                          units::kSecondsPerYear;
  r.writes_over_horizon = per_year * horizon_years;
  r.lifetime_years = per_year > 0 ? budget_writes / per_year : 1e300;
  r.within_budget = r.writes_over_horizon <= budget_writes;
  return r;
}

}  // namespace bbpim::pim
