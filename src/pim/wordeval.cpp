#include "pim/wordeval.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbpim::pim {
namespace {

std::uint64_t field_max(const Field& f) {
  return f.width >= 64 ? ~0ULL : (1ULL << f.width) - 1;
}

void fill_words(std::uint64_t* dst, std::uint32_t words, std::uint64_t value) {
  std::fill(dst, dst + words, value);
}

/// Hoisted per-bit column pointers of a field (width <= 64 by Field).
struct FieldCols {
  const std::uint64_t* cols[64];
  FieldCols(const Crossbar& xb, const Field& f) {
    for (std::uint32_t i = 0; i < f.width; ++i) {
      cols[i] = xb.column_data(f.offset + i);
    }
  }
};

/// dst = (field == v), matching emit_eq_const (out-of-range -> all false).
void eval_eq(const Crossbar& xb, const Field& f, std::uint64_t v,
             std::uint64_t* dst, std::uint32_t words) {
  if (v > field_max(f)) {
    fill_words(dst, words, 0);
    return;
  }
  const FieldCols fc(xb, f);
  for (std::uint32_t w = 0; w < words; ++w) {
    std::uint64_t m = ~0ULL;
    for (std::uint32_t i = 0; i < f.width; ++i) {
      const std::uint64_t c = fc.cols[i][w];
      m &= ((v >> i) & 1ULL) ? c : ~c;
    }
    dst[w] = m;
  }
}

/// dst = (field < v), matching emit_lt_const's MSB-first prefix scan.
void eval_lt(const Crossbar& xb, const Field& f, std::uint64_t v,
             std::uint64_t* dst, std::uint32_t words) {
  if (v == 0) {
    fill_words(dst, words, 0);
    return;
  }
  if (v > field_max(f)) {
    fill_words(dst, words, ~0ULL);
    return;
  }
  const FieldCols fc(xb, f);
  for (std::uint32_t w = 0; w < words; ++w) {
    std::uint64_t eq = ~0ULL;
    std::uint64_t lt = 0;
    for (std::uint32_t i = f.width; i-- > 0;) {
      const std::uint64_t c = fc.cols[i][w];
      if ((v >> i) & 1ULL) {
        lt |= eq & ~c;
        eq &= c;
      } else {
        eq &= ~c;
      }
    }
    dst[w] = lt;
  }
}

/// dst = (field <= v), via lt(v + 1) exactly as emit_le_const.
void eval_le(const Crossbar& xb, const Field& f, std::uint64_t v,
             std::uint64_t* dst, std::uint32_t words) {
  if (v >= field_max(f)) {
    fill_words(dst, words, ~0ULL);
    return;
  }
  eval_lt(xb, f, v + 1, dst, words);
}

}  // namespace

WordOp word_predicate(const sql::BoundPredicate& p, const Field& f,
                      std::uint16_t out) {
  using Kind = sql::BoundPredicate::Kind;
  switch (p.kind) {
    case Kind::kEq: return WordOp::predicate(WordOp::Kind::kEq, f, p.v1, 0, out);
    case Kind::kLt: return WordOp::predicate(WordOp::Kind::kLt, f, p.v1, 0, out);
    case Kind::kLe: return WordOp::predicate(WordOp::Kind::kLe, f, p.v1, 0, out);
    case Kind::kGt: return WordOp::predicate(WordOp::Kind::kGt, f, p.v1, 0, out);
    case Kind::kGe: return WordOp::predicate(WordOp::Kind::kGe, f, p.v1, 0, out);
    case Kind::kBetween:
      return WordOp::predicate(WordOp::Kind::kBetween, f, p.v1, p.v2, out);
    case Kind::kIn: return WordOp::in_set(f, p.in_values, out);
    case Kind::kNever: return WordOp::const0(out);
    case Kind::kAlways: return WordOp::const1(out);
  }
  throw std::logic_error("word_predicate: unhandled kind");
}

void execute_words(Crossbar& xb, const WordProgram& prog) {
  const std::uint32_t words = xb.words_per_column();
  // Stack scratch for the common geometries (<= 4096 rows); heap fallback.
  std::uint64_t stack_scratch[64];
  std::vector<std::uint64_t> heap_scratch;
  std::uint64_t* scratch_ptr = stack_scratch;
  if (words > 64) {
    heap_scratch.resize(words);
    scratch_ptr = heap_scratch.data();
  }
  std::span<std::uint64_t> scratch(scratch_ptr, words);
  for (const WordOp& op : prog) {
    std::uint64_t* out = xb.column_data_mut(op.out);
    switch (op.kind) {
      case WordOp::Kind::kConst0:
        fill_words(out, words, 0);
        break;
      case WordOp::Kind::kConst1:
        fill_words(out, words, ~0ULL);
        break;
      case WordOp::Kind::kCopy: {
        const std::uint64_t* a = xb.column_data(op.a);
        std::copy(a, a + words, out);
        break;
      }
      case WordOp::Kind::kNot: {
        const std::uint64_t* a = xb.column_data(op.a);
        for (std::uint32_t w = 0; w < words; ++w) out[w] = ~a[w];
        break;
      }
      case WordOp::Kind::kAnd: {
        const std::uint64_t* a = xb.column_data(op.a);
        const std::uint64_t* b = xb.column_data(op.b);
        for (std::uint32_t w = 0; w < words; ++w) out[w] = a[w] & b[w];
        break;
      }
      case WordOp::Kind::kOr: {
        const std::uint64_t* a = xb.column_data(op.a);
        const std::uint64_t* b = xb.column_data(op.b);
        for (std::uint32_t w = 0; w < words; ++w) out[w] = a[w] | b[w];
        break;
      }
      case WordOp::Kind::kNor: {
        const std::uint64_t* a = xb.column_data(op.a);
        const std::uint64_t* b = xb.column_data(op.b);
        for (std::uint32_t w = 0; w < words; ++w) out[w] = ~(a[w] | b[w]);
        break;
      }
      case WordOp::Kind::kAndNot: {
        const std::uint64_t* a = xb.column_data(op.a);
        const std::uint64_t* b = xb.column_data(op.b);
        for (std::uint32_t w = 0; w < words; ++w) out[w] = a[w] & ~b[w];
        break;
      }
      case WordOp::Kind::kXor: {
        const std::uint64_t* a = xb.column_data(op.a);
        const std::uint64_t* b = xb.column_data(op.b);
        for (std::uint32_t w = 0; w < words; ++w) out[w] = a[w] ^ b[w];
        break;
      }
      case WordOp::Kind::kXnor: {
        const std::uint64_t* a = xb.column_data(op.a);
        const std::uint64_t* b = xb.column_data(op.b);
        for (std::uint32_t w = 0; w < words; ++w) out[w] = ~(a[w] ^ b[w]);
        break;
      }
      case WordOp::Kind::kEq:
        eval_eq(xb, op.f, op.v1, out, words);
        break;
      case WordOp::Kind::kLt:
        eval_lt(xb, op.f, op.v1, out, words);
        break;
      case WordOp::Kind::kLe:
        eval_le(xb, op.f, op.v1, out, words);
        break;
      case WordOp::Kind::kGt:
        eval_le(xb, op.f, op.v1, out, words);
        for (std::uint32_t w = 0; w < words; ++w) out[w] = ~out[w];
        break;
      case WordOp::Kind::kGe:
        eval_lt(xb, op.f, op.v1, out, words);
        for (std::uint32_t w = 0; w < words; ++w) out[w] = ~out[w];
        break;
      case WordOp::Kind::kBetween:
        // Mirrors emit_between_const's case split.
        if (op.v1 > op.v2) {
          fill_words(out, words, 0);
        } else if (op.v1 == 0) {
          eval_le(xb, op.f, op.v2, out, words);
        } else if (op.v2 >= field_max(op.f)) {
          eval_lt(xb, op.f, op.v1, out, words);
          for (std::uint32_t w = 0; w < words; ++w) out[w] = ~out[w];
        } else {
          eval_lt(xb, op.f, op.v1, out, words);  // ge = NOT lt
          eval_le(xb, op.f, op.v2, scratch.data(), words);
          for (std::uint32_t w = 0; w < words; ++w) {
            out[w] = ~out[w] & scratch[w];
          }
        }
        break;
      case WordOp::Kind::kIn:
        if (op.values.empty()) {
          fill_words(out, words, 0);
        } else {
          eval_eq(xb, op.f, op.values[0], out, words);
          for (std::size_t i = 1; i < op.values.size(); ++i) {
            eval_eq(xb, op.f, op.values[i], scratch.data(), words);
            for (std::uint32_t w = 0; w < words; ++w) out[w] |= scratch[w];
          }
        }
        break;
    }
  }
}

}  // namespace bbpim::pim
