// The PIM module: a rank of 8 PIM-enabled chips used as main memory.
//
// Owns the functional pages actually backing relations (the 32 GB capacity
// figure matters for area/static modeling only — pages are materialized on
// demand). Provides host-visible record reads at cache-line granularity,
// including the line geometry that produces the paper's 32x read
// amplification, and module-wide wear accounting for Fig. 9.
#pragma once

#include <cstdint>
#include <deque>

#include "pim/config.hpp"
#include "pim/microcode.hpp"
#include "pim/page.hpp"

namespace bbpim::pim {

/// Identifies one 64 B host line inside the module: chunk `chunk` of the
/// records at row `row` in all 32 crossbars of page `page`.
struct LineAddr {
  std::uint32_t page = 0;
  std::uint32_t row = 0;
  std::uint32_t chunk = 0;

  friend bool operator==(const LineAddr&, const LineAddr&) = default;
};

class PimModule {
 public:
  explicit PimModule(PimConfig cfg = {}) : cfg_(cfg) {}

  const PimConfig& config() const { return cfg_; }

  /// Materializes `n` fresh pages; returns the index of the first.
  /// `data_cols` (see Crossbar) bounds the shareable data segment of every
  /// crossbar in the new pages; the default keeps whole crossbars as data.
  std::size_t allocate_pages(std::size_t n,
                             std::uint32_t data_cols = PimConfig::kAllData);

  std::size_t page_count() const { return pages_.size(); }
  Page& page(std::size_t i) { return pages_.at(i); }
  const Page& page(std::size_t i) const { return pages_.at(i); }

  /// Functional read of one record field (record index is page-local,
  /// crossbar-major). Timing is charged by the host memory model per unique
  /// line touched — see host::ReadSet.
  std::uint64_t read_record_field(std::size_t page_idx, std::uint32_t record,
                                  const Field& f) const;

  /// Functional write of one record field (bulk load / UPDATE paths).
  void write_record_field(std::size_t page_idx, std::uint32_t record,
                          const Field& f, std::uint64_t value);

  /// The unique host line holding chunk `chunk` of `record` in `page`.
  LineAddr line_of(std::uint32_t page_idx, std::uint32_t record,
                   std::uint32_t chunk) const {
    const Page& p = pages_.at(page_idx);
    return LineAddr{page_idx, p.locate(record).row, chunk};
  }

  // --- Wear accounting (Fig. 9) --------------------------------------------
  /// Worst-case writes experienced by a single crossbar row anywhere.
  std::uint64_t max_row_writes() const;
  void reset_wear();

 private:
  PimConfig cfg_;
  std::deque<Page> pages_;  // deque keeps references stable across allocs
};

}  // namespace bbpim::pim
