#include "pim/agg_circuit.hpp"

#include <array>
#include <bit>
#include <stdexcept>

namespace bbpim::pim {

std::uint32_t chunk_span(const Field& f, const PimConfig& cfg) {
  const std::uint32_t first = f.offset / cfg.read_bits;
  const std::uint32_t last = (f.offset + f.width - 1) / cfg.read_bits;
  return last - first + 1;
}

std::uint64_t compute_aggregate(const Crossbar& xb, const Field& value_field,
                                std::uint16_t select_col, AggOp op,
                                std::uint64_t* selected_count,
                                bool vectorized) {
  if (value_field.width == 0 || value_field.width > 64) {
    throw std::invalid_argument("compute_aggregate: bad value width");
  }
  const std::uint64_t value_max =
      value_field.width >= 64 ? ~0ULL : (1ULL << value_field.width) - 1;
  std::uint64_t acc = (op == AggOp::kMin) ? value_max : 0;
  std::uint64_t count = 0;

  if (vectorized) {
    const std::uint32_t words = xb.words_per_column();
    const std::uint64_t* select = xb.column_data(select_col);
    std::array<const std::uint64_t*, 64> value_cols;
    for (std::uint32_t i = 0; i < value_field.width; ++i) {
      value_cols[i] = xb.column_data(value_field.offset + i);
    }
    for (std::uint32_t w = 0; w < words; ++w) {
      std::uint64_t sel = select[w];
      count += static_cast<std::uint64_t>(std::popcount(sel));
      while (sel != 0) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(sel));
        sel &= sel - 1;
        std::uint64_t v = 0;
        for (std::uint32_t i = 0; i < value_field.width; ++i) {
          v |= ((value_cols[i][w] >> bit) & 1ULL) << i;
        }
        switch (op) {
          case AggOp::kSum: acc += v; break;
          case AggOp::kMin: acc = v < acc ? v : acc; break;
          case AggOp::kMax: acc = v > acc ? v : acc; break;
        }
      }
    }
  } else {
    for (std::uint32_t row = 0; row < xb.rows(); ++row) {
      if (!xb.bit(row, select_col)) continue;
      ++count;
      const std::uint64_t v =
          xb.read_row_bits(row, value_field.offset, value_field.width);
      switch (op) {
        case AggOp::kSum: acc += v; break;
        case AggOp::kMin: acc = v < acc ? v : acc; break;
        case AggOp::kMax: acc = v > acc ? v : acc; break;
      }
    }
  }
  if (selected_count != nullptr) *selected_count = count;
  return acc;
}

std::uint64_t run_agg_circuit(Crossbar& xb, const Field& value_field,
                              std::uint16_t select_col, AggOp op,
                              const Field& result_field,
                              std::uint32_t result_row, const PimConfig& cfg,
                              AggCircuitCost* cost, const Field* count_field,
                              bool vectorized, std::uint64_t* out_count) {
  if (result_field.width == 0 || result_field.width > 64) {
    throw std::invalid_argument("run_agg_circuit: bad result width");
  }
  std::uint64_t count = 0;
  const std::uint64_t acc =
      compute_aggregate(xb, value_field, select_col, op, &count, vectorized);
  if (out_count != nullptr) *out_count = count;

  // Result write-back through the modified write logic (counts wear).
  const std::uint64_t result_mask =
      result_field.width >= 64 ? ~0ULL : (1ULL << result_field.width) - 1;
  xb.write_row_bits(result_row, result_field.offset, result_field.width,
                    acc & result_mask);
  std::uint32_t result_chunks = chunk_span(result_field, cfg);
  std::uint64_t write_bits = result_field.width;
  if (count_field != nullptr) {
    const std::uint64_t count_mask =
        count_field->width >= 64 ? ~0ULL : (1ULL << count_field->width) - 1;
    xb.write_row_bits(result_row, count_field->offset, count_field->width,
                      count & count_mask);
    result_chunks += chunk_span(*count_field, cfg);
    write_bits += count_field->width;
  }

  if (cost != nullptr) {
    const std::uint32_t n = chunk_span(value_field, cfg);
    cost->value_reads = xb.rows() * n;
    // The select column streams alongside: 1024 bits / 16-bit reads.
    cost->select_reads = (xb.rows() + cfg.read_bits - 1) / cfg.read_bits;
    cost->result_writes = result_chunks;
    cost->duration_ns =
        (cost->value_reads + cost->select_reads) * cfg.read_cycle_ns +
        cost->result_writes * cfg.write_cycle_ns;
    cost->energy_j =
        (cost->value_reads + cost->select_reads) * cfg.read_energy_j() +
        cfg.write_energy_j(write_bits) +
        cfg.agg_circuit_power_uw * units::kWattPerUw *
            units::ns_to_sec(cost->duration_ns);
  }
  return acc;
}

}  // namespace bbpim::pim
