// Memory-technology presets for the PIM module.
//
// Bulk-bitwise PIM has been proposed on several substrates (Section II-B):
// memristive RRAM (the paper's system, MAGIC-style NOR), DRAM
// (Ambit/SIMDRAM-style triple-row activation), and PCM (Pinatubo-style).
// These presets re-parameterize PimConfig so the ablation bench can show
// how the paper's conclusions shift with the technology: DRAM's slower
// logic cycle but effectively unlimited endurance, PCM's expensive writes.
// Geometry (crossbar/page/chip counts) is held constant so query plans and
// functional behaviour are identical — only costs move.
#pragma once

#include <string>

#include "pim/config.hpp"

namespace bbpim::pim {

enum class Technology { kRram, kDram, kPcm };

const char* technology_name(Technology tech);

/// Endurance budget (writes per cell) for a technology.
double technology_endurance_writes(Technology tech);

/// PimConfig preset for a technology. kRram returns the paper's Table I.
PimConfig technology_config(Technology tech);

}  // namespace bbpim::pim
