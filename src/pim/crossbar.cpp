#include "pim/crossbar.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace bbpim::pim {

namespace {
/// Dimension checks must run before the segment allocations in the member
/// initializer list (cols - data_cols underflows on bad input).
std::uint32_t checked_data_cols(std::uint32_t rows, std::uint32_t cols,
                                std::uint32_t data_cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Crossbar: zero dimension");
  }
  if (rows % 64 != 0) {
    throw std::invalid_argument("Crossbar: rows must be a multiple of 64");
  }
  if (data_cols > cols) {
    throw std::invalid_argument("Crossbar: data_cols exceeds cols");
  }
  return data_cols;
}
}  // namespace

Crossbar::Crossbar(std::uint32_t rows, std::uint32_t cols)
    : Crossbar(rows, cols, cols) {}

Crossbar::Crossbar(std::uint32_t rows, std::uint32_t cols,
                   std::uint32_t data_cols)
    : rows_(rows),
      cols_(cols),
      data_cols_(checked_data_cols(rows, cols, data_cols)),
      words_per_col_((rows + kWordBits - 1) / kWordBits),
      data_(std::make_shared<std::vector<std::uint64_t>>(
          static_cast<std::size_t>(data_cols) * words_per_col_, 0)),
      scratch_(static_cast<std::size_t>(cols - data_cols) * words_per_col_,
               0) {}

void Crossbar::detach_data() {
  data_ = std::make_shared<std::vector<std::uint64_t>>(*data_);
}

void Crossbar::adopt_data(CrossbarSegment seg) {
  if (!seg || seg->size() != data_->size()) {
    throw std::invalid_argument("Crossbar::adopt_data: segment mismatch");
  }
  assert(staged_.empty());
  data_ = std::move(seg);
}

std::uint64_t* Crossbar::find_staged(std::uint32_t col) {
  for (auto& [c, buf] : staged_) {
    if (c == col) return buf.data();
  }
  return nullptr;
}

const std::uint64_t* Crossbar::find_staged(std::uint32_t col) const {
  for (const auto& [c, buf] : staged_) {
    if (c == col) return buf.data();
  }
  return nullptr;
}

std::uint64_t* Crossbar::stage_col(std::uint32_t col) {
  const std::uint64_t* src = column_words(col);
  staged_.emplace_back(col,
                       std::vector<std::uint64_t>(src, src + words_per_col_));
  return staged_.back().second.data();
}

std::uint64_t* Crossbar::exec_out(std::uint32_t col) {
  if (col < data_cols_) {
    // A column already staged stays staged even if the segment meanwhile
    // became exclusively ours — reconcile applies staged writes last, so a
    // direct write here would be overwritten with stale bits.
    if (std::uint64_t* s = find_staged(col)) return s;
    if (data_.use_count() > 1) return stage_col(col);
  }
  return column_words(col);
}

const std::uint64_t* Crossbar::exec_in(std::uint32_t col) const {
  if (!staged_.empty() && col < data_cols_) {
    if (const std::uint64_t* s = find_staged(col)) return s;
  }
  return column_words(col);
}

void Crossbar::reconcile_staged() {
  if (staged_.empty()) return;
  bool changed = false;
  for (const auto& [col, buf] : staged_) {
    const std::uint64_t* cur = column_words(col);
    if (!std::equal(buf.begin(), buf.end(), cur)) {
      changed = true;
      break;
    }
  }
  if (changed) {
    detach_data();
    for (const auto& [col, buf] : staged_) {
      std::copy(buf.begin(), buf.end(), column_words(col));
    }
  }
  staged_.clear();
}

void Crossbar::execute_op(const MicroOp& op) {
  assert(op.out < cols_);
  // Resolve the output first: staging may grow staged_, which would
  // invalidate input pointers resolved earlier.
  std::uint64_t* out = exec_out(op.out);
  switch (op.kind) {
    case MicroOpKind::kInit0:
      std::fill(out, out + words_per_col_, 0ULL);
      break;
    case MicroOpKind::kInit1:
      std::fill(out, out + words_per_col_, ~0ULL);
      break;
    case MicroOpKind::kNot: {
      assert(op.a < cols_);
      const std::uint64_t* a = exec_in(op.a);
      for (std::uint32_t w = 0; w < words_per_col_; ++w) out[w] = ~a[w];
      break;
    }
    case MicroOpKind::kNor: {
      assert(op.a < cols_ && op.b < cols_);
      const std::uint64_t* a = exec_in(op.a);
      const std::uint64_t* b = exec_in(op.b);
      for (std::uint32_t w = 0; w < words_per_col_; ++w) out[w] = ~(a[w] | b[w]);
      break;
    }
  }
}

void Crossbar::execute(const MicroOp& op) {
  execute_op(op);
  ++uniform_row_writes_;
  reconcile_staged();
}

void Crossbar::execute(const MicroProgram& prog) {
  for (const MicroOp& op : prog) execute_op(op);
  uniform_row_writes_ += prog.size();
  reconcile_staged();
}

void Crossbar::execute_fused(const MicroProgram& prog,
                             std::span<const std::uint8_t> skip_init) {
  assert(skip_init.empty() || skip_init.size() == prog.size());
  for (std::size_t i = 0; i < prog.size(); ++i) {
    if (!skip_init.empty() && skip_init[i]) continue;
    execute_op(prog[i]);
  }
  // Skipped inits are still executed cycles: same wear as the per-op path.
  uniform_row_writes_ += prog.size();
  reconcile_staged();
}

std::uint64_t Crossbar::read_row_bits(std::uint32_t row, std::uint32_t offset,
                                      std::uint32_t width) const {
  if (width == 0 || width > 64 || offset + width > cols_ || row >= rows_) {
    throw std::out_of_range("Crossbar::read_row_bits");
  }
  const std::uint32_t word = row / kWordBits;
  const std::uint32_t bit = row % kWordBits;
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < width; ++i) {
    v |= ((column_words(offset + i)[word] >> bit) & 1ULL) << i;
  }
  return v;
}

void Crossbar::write_row_bits(std::uint32_t row, std::uint32_t offset,
                              std::uint32_t width, std::uint64_t value) {
  if (width == 0 || width > 64 || offset + width > cols_ || row >= rows_) {
    throw std::out_of_range("Crossbar::write_row_bits");
  }
  // Wear first: the row is driven whether or not the bits change.
  if (extra_row_writes_.empty()) extra_row_writes_.resize(rows_, 0);
  extra_row_writes_[row] += width;
  max_extra_row_writes_ =
      std::max<std::uint64_t>(max_extra_row_writes_, extra_row_writes_[row]);
  if (offset < data_cols_ && data_.use_count() > 1) {
    const std::uint64_t masked =
        width == 64 ? value : value & ((1ULL << width) - 1);
    if (read_row_bits(row, offset, width) == masked) return;
    detach_data();
  }
  const std::uint32_t word = row / kWordBits;
  const std::uint64_t mask = 1ULL << (row % kWordBits);
  for (std::uint32_t i = 0; i < width; ++i) {
    std::uint64_t* w = column_words(offset + i) + word;
    if ((value >> i) & 1ULL)
      *w |= mask;
    else
      *w &= ~mask;
  }
}

BitVec Crossbar::column(std::uint32_t col) const {
  if (col >= cols_) throw std::out_of_range("Crossbar::column");
  BitVec bv(rows_);
  const std::uint64_t* src = column_words(col);
  std::copy(src, src + words_per_col_, bv.words().begin());
  return bv;
}

std::size_t Crossbar::column_popcount(std::uint32_t col) const {
  if (col >= cols_) throw std::out_of_range("Crossbar::column_popcount");
  const std::uint64_t* src = column_words(col);
  std::size_t n = 0;
  for (std::uint32_t w = 0; w < words_per_col_; ++w) {
    n += static_cast<std::size_t>(std::popcount(src[w]));
  }
  return n;
}

void Crossbar::write_column(std::uint32_t col, const BitVec& bits) {
  if (col >= cols_) throw std::out_of_range("Crossbar::write_column");
  if (bits.size() != rows_) {
    throw std::invalid_argument("Crossbar::write_column: size mismatch");
  }
  ++uniform_row_writes_;
  if (col < data_cols_ && data_.use_count() > 1) {
    if (std::equal(bits.words().begin(), bits.words().end(),
                   column_words(col))) {
      return;
    }
    detach_data();
  }
  std::uint64_t* dst = column_words(col);
  std::copy(bits.words().begin(), bits.words().end(), dst);
}

bool Crossbar::bit(std::uint32_t row, std::uint32_t col) const {
  if (row >= rows_ || col >= cols_) throw std::out_of_range("Crossbar::bit");
  return (column_words(col)[row / kWordBits] >> (row % kWordBits)) & 1ULL;
}

void Crossbar::set_bit(std::uint32_t row, std::uint32_t col, bool v) {
  if (row >= rows_ || col >= cols_) throw std::out_of_range("Crossbar::set_bit");
  if (col < data_cols_ && data_.use_count() > 1) {
    if (bit(row, col) == v) return;
    detach_data();
  }
  std::uint64_t* w = column_words(col) + row / kWordBits;
  const std::uint64_t mask = 1ULL << (row % kWordBits);
  if (v)
    *w |= mask;
  else
    *w &= ~mask;
}

void Crossbar::reset_wear() {
  uniform_row_writes_ = 0;
  max_extra_row_writes_ = 0;
  extra_row_writes_.clear();
}

}  // namespace bbpim::pim
