#include "pim/crossbar.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace bbpim::pim {

Crossbar::Crossbar(std::uint32_t rows, std::uint32_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_col_((rows + kWordBits - 1) / kWordBits),
      words_(static_cast<std::size_t>(cols) * words_per_col_, 0) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Crossbar: zero dimension");
  }
  if (rows % kWordBits != 0) {
    throw std::invalid_argument("Crossbar: rows must be a multiple of 64");
  }
}

void Crossbar::execute(const MicroOp& op) {
  assert(op.out < cols_);
  std::uint64_t* out = column_words(op.out);
  switch (op.kind) {
    case MicroOpKind::kInit0:
      std::fill(out, out + words_per_col_, 0ULL);
      break;
    case MicroOpKind::kInit1:
      std::fill(out, out + words_per_col_, ~0ULL);
      break;
    case MicroOpKind::kNot: {
      assert(op.a < cols_);
      const std::uint64_t* a = column_words(op.a);
      for (std::uint32_t w = 0; w < words_per_col_; ++w) out[w] = ~a[w];
      break;
    }
    case MicroOpKind::kNor: {
      assert(op.a < cols_ && op.b < cols_);
      const std::uint64_t* a = column_words(op.a);
      const std::uint64_t* b = column_words(op.b);
      for (std::uint32_t w = 0; w < words_per_col_; ++w) out[w] = ~(a[w] | b[w]);
      break;
    }
  }
  ++uniform_row_writes_;
}

void Crossbar::execute(const MicroProgram& prog) {
  for (const MicroOp& op : prog) execute(op);
}

void Crossbar::execute_fused(const MicroProgram& prog,
                             std::span<const std::uint8_t> skip_init) {
  assert(skip_init.empty() || skip_init.size() == prog.size());
  const std::uint32_t words = words_per_col_;
  for (std::size_t i = 0; i < prog.size(); ++i) {
    if (!skip_init.empty() && skip_init[i]) continue;
    const MicroOp& op = prog[i];
    assert(op.out < cols_);
    std::uint64_t* out = column_words(op.out);
    switch (op.kind) {
      case MicroOpKind::kInit0:
        std::fill(out, out + words, 0ULL);
        break;
      case MicroOpKind::kInit1:
        std::fill(out, out + words, ~0ULL);
        break;
      case MicroOpKind::kNot: {
        assert(op.a < cols_);
        const std::uint64_t* a = column_words(op.a);
        for (std::uint32_t w = 0; w < words; ++w) out[w] = ~a[w];
        break;
      }
      case MicroOpKind::kNor: {
        assert(op.a < cols_ && op.b < cols_);
        const std::uint64_t* a = column_words(op.a);
        const std::uint64_t* b = column_words(op.b);
        for (std::uint32_t w = 0; w < words; ++w) out[w] = ~(a[w] | b[w]);
        break;
      }
    }
  }
  // Skipped inits are still executed cycles: same wear as the per-op path.
  uniform_row_writes_ += prog.size();
}

std::uint64_t Crossbar::read_row_bits(std::uint32_t row, std::uint32_t offset,
                                      std::uint32_t width) const {
  if (width == 0 || width > 64 || offset + width > cols_ || row >= rows_) {
    throw std::out_of_range("Crossbar::read_row_bits");
  }
  const std::uint32_t word = row / kWordBits;
  const std::uint32_t bit = row % kWordBits;
  const std::uint64_t* col = column_words(offset) + word;
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < width; ++i, col += words_per_col_) {
    v |= ((*col >> bit) & 1ULL) << i;
  }
  return v;
}

void Crossbar::write_row_bits(std::uint32_t row, std::uint32_t offset,
                              std::uint32_t width, std::uint64_t value) {
  if (width == 0 || width > 64 || offset + width > cols_ || row >= rows_) {
    throw std::out_of_range("Crossbar::write_row_bits");
  }
  const std::uint32_t word = row / kWordBits;
  const std::uint32_t bit = row % kWordBits;
  const std::uint64_t mask = 1ULL << bit;
  std::uint64_t* col = column_words(offset) + word;
  for (std::uint32_t i = 0; i < width; ++i, col += words_per_col_) {
    if ((value >> i) & 1ULL)
      *col |= mask;
    else
      *col &= ~mask;
  }
  if (extra_row_writes_.empty()) extra_row_writes_.resize(rows_, 0);
  extra_row_writes_[row] += width;
  max_extra_row_writes_ =
      std::max<std::uint64_t>(max_extra_row_writes_, extra_row_writes_[row]);
}

BitVec Crossbar::column(std::uint32_t col) const {
  if (col >= cols_) throw std::out_of_range("Crossbar::column");
  BitVec bv(rows_);
  const std::uint64_t* src = column_words(col);
  std::copy(src, src + words_per_col_, bv.words().begin());
  return bv;
}

std::size_t Crossbar::column_popcount(std::uint32_t col) const {
  if (col >= cols_) throw std::out_of_range("Crossbar::column_popcount");
  const std::uint64_t* src = column_words(col);
  std::size_t n = 0;
  for (std::uint32_t w = 0; w < words_per_col_; ++w) {
    n += static_cast<std::size_t>(std::popcount(src[w]));
  }
  return n;
}

void Crossbar::write_column(std::uint32_t col, const BitVec& bits) {
  if (col >= cols_) throw std::out_of_range("Crossbar::write_column");
  if (bits.size() != rows_) {
    throw std::invalid_argument("Crossbar::write_column: size mismatch");
  }
  std::uint64_t* dst = column_words(col);
  std::copy(bits.words().begin(), bits.words().end(), dst);
  ++uniform_row_writes_;
}

bool Crossbar::bit(std::uint32_t row, std::uint32_t col) const {
  if (row >= rows_ || col >= cols_) throw std::out_of_range("Crossbar::bit");
  return (column_words(col)[row / kWordBits] >> (row % kWordBits)) & 1ULL;
}

void Crossbar::set_bit(std::uint32_t row, std::uint32_t col, bool v) {
  if (row >= rows_ || col >= cols_) throw std::out_of_range("Crossbar::set_bit");
  std::uint64_t* w = column_words(col) + row / kWordBits;
  const std::uint64_t mask = 1ULL << (row % kWordBits);
  if (v)
    *w |= mask;
  else
    *w &= ~mask;
}

void Crossbar::reset_wear() {
  uniform_row_writes_ = 0;
  max_extra_row_writes_ = 0;
  extra_row_writes_.clear();
}

}  // namespace bbpim::pim
