// PIM module configuration — Table I of the paper.
//
// Geometry, timing, energy, and power parameters of the RRAM bulk-bitwise
// PIM module. All defaults reproduce the paper's evaluated system: a 32 GB
// module of 8 chips, 1024x512 crossbars, 2 MB hugepages (32 crossbars),
// 16-bit fixed crossbar reads, 30 ns bulk logic cycle, MAGIC-style energy.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace bbpim::pim {

/// Static description of the PIM module (Table I, "Single RRAM PIM Module").
struct PimConfig {
  /// Sentinel for Page / PimModule::allocate_pages `data_cols`: the whole
  /// crossbar is the shareable data segment (no private scratch split).
  static constexpr std::uint32_t kAllData = 0xFFFFFFFFu;

  // --- Geometry -----------------------------------------------------------
  std::uint32_t crossbar_rows = 1024;   ///< records per crossbar
  std::uint32_t crossbar_cols = 512;    ///< bits per record row
  std::uint32_t crossbars_per_page = 32;  ///< 2 MB hugepage
  std::uint32_t chips = 8;              ///< page striped 4 crossbars/chip
  std::uint64_t capacity_bytes = 32ULL << 30;  ///< 32 GB module
  std::uint32_t read_bits = 16;         ///< fixed crossbar read width [16]

  // --- Timing --------------------------------------------------------------
  TimeNs logic_cycle_ns = 30.0;     ///< one bulk-bitwise (MAGIC) op [5]
  TimeNs read_cycle_ns = 30.0;      ///< one 16-bit internal crossbar read
  TimeNs write_cycle_ns = 100.0;    ///< one 16-bit internal crossbar write

  // --- Energy (dynamic) ----------------------------------------------------
  /// MAGIC logic energy per computed output bit [20]. One bulk cycle computes
  /// `crossbar_rows` gates per crossbar (one output column).
  double logic_energy_fj_per_bit = 81.6;
  double read_energy_pj_per_bit = 0.84;   ///< crossbar read energy [5]
  double write_energy_pj_per_bit = 6.9;   ///< crossbar write energy [5]

  // --- Power (active components) -------------------------------------------
  double agg_circuit_power_uw = 25.4;   ///< one aggregation circuit, active
  double controller_power_uw = 126.0;   ///< one PIM controller, active [1]

  // --- Derived geometry -----------------------------------------------------
  std::uint32_t records_per_page() const {
    return crossbar_rows * crossbars_per_page;
  }
  std::uint64_t crossbar_bits() const {
    return static_cast<std::uint64_t>(crossbar_rows) * crossbar_cols;
  }
  std::uint64_t page_bytes() const {
    return crossbar_bits() * crossbars_per_page / 8;
  }
  std::uint64_t pages_in_module() const {
    return capacity_bytes / page_bytes();
  }
  std::uint32_t chunks_per_row() const { return crossbar_cols / read_bits; }
  /// A 64 B host cache line carries one 16-bit chunk from each of the 32
  /// crossbars of a page row — the 32x read amplification of Section V-B.
  std::uint32_t line_bytes() const {
    return crossbars_per_page * read_bits / 8;
  }

  // --- Energy helpers -------------------------------------------------------
  /// Energy of one bulk logic cycle on one crossbar (one gate per row).
  EnergyJ logic_cycle_energy_j() const {
    return static_cast<double>(crossbar_rows) * logic_energy_fj_per_bit *
           units::kJoulePerFj;
  }
  /// Energy of one fixed-width (16-bit) crossbar read.
  EnergyJ read_energy_j() const {
    return read_bits * read_energy_pj_per_bit * units::kJoulePerPj;
  }
  /// Energy of writing `bits` cells.
  EnergyJ write_energy_j(std::uint64_t bits) const {
    return static_cast<double>(bits) * write_energy_pj_per_bit *
           units::kJoulePerPj;
  }
};

}  // namespace bbpim::pim
