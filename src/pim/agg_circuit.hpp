// The per-crossbar aggregation circuit (Fig. 3 of the paper).
//
// A small CMOS ALU sits on the crossbar read path. During an aggregation
// PIM request it serially reads the aggregated attribute of every row
// (16 bits per read cycle), masks rows whose select bit is 0, accumulates
// SUM/MIN/MAX, and finally writes the result back into a designated field of
// the crossbar through the modified write logic. The host then fetches the
// per-crossbar results with ordinary memory reads.
//
// This is what differentiates the paper's system ("one-xb"/"two-xb") from
// the PIMDB baseline, which performs aggregation purely with bulk-bitwise
// logic (see src/pimdb).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "pim/config.hpp"
#include "pim/crossbar.hpp"
#include "pim/microcode.hpp"

namespace bbpim::pim {

/// Aggregation operations supported by the circuit's ALU (Section IV).
enum class AggOp : std::uint8_t { kSum, kMin, kMax };

/// Folds one unsigned value into an accumulator under `op` (SUM wraps mod
/// 2^64). Every result fold in the simulator — circuit outputs, readbacks,
/// page partials — routes through this helper so the scalar and vectorized
/// paths cannot diverge.
inline std::uint64_t agg_fold(AggOp op, std::uint64_t acc, std::uint64_t v) {
  switch (op) {
    case AggOp::kSum: return acc + v;
    case AggOp::kMin: return v < acc ? v : acc;
    case AggOp::kMax: return v > acc ? v : acc;
  }
  return acc;
}

/// Cost of one crossbar's aggregation pass (all crossbars of a page run in
/// parallel, each with its own circuit, so page cost equals crossbar cost).
struct AggCircuitCost {
  TimeNs duration_ns = 0;
  EnergyJ energy_j = 0;
  std::uint32_t value_reads = 0;   ///< 16-bit reads of the aggregated field
  std::uint32_t select_reads = 0;  ///< 16-bit reads of the select column
  std::uint32_t result_writes = 0; ///< 16-bit result write cycles
};

/// Number of 16-bit read cycles needed to stream one row's copy of `f`
/// (the paper's `n`: fields are chunk-aligned by the layout, but we compute
/// the true chunk span so misaligned fields are charged honestly).
std::uint32_t chunk_span(const Field& f, const PimConfig& cfg);

/// Functional aggregation semantics (exactly what the serial ALU computes):
/// rows whose `select_col` bit is 0 are masked out; SUM/MAX over an empty
/// selection return 0, MIN returns the field's max value. `selected_count`
/// (optional) receives the number of selected rows.
///
/// `vectorized` walks the select column word-by-word and visits only set
/// bits (whole zero words are skipped), extracting values from hoisted
/// column-word pointers; the scalar path streams every row. Both visit
/// selected rows in ascending order and return identical results — the
/// modeled circuit cost (charged by run_agg_circuit) is unaffected either
/// way, since the real ALU streams all rows regardless of the selection.
std::uint64_t compute_aggregate(const Crossbar& xb, const Field& value_field,
                                std::uint16_t select_col, AggOp op,
                                std::uint64_t* selected_count,
                                bool vectorized = true);

/// Runs the aggregation circuit on one crossbar.
///
/// The result is written to `result_field` at `result_row` (width <= 64) and
/// also returned. When `count_field` is non-null the circuit also writes the
/// selected-row count there (it streams the select column anyway; the count
/// is one extra result chunk), letting the host distinguish empty subgroups.
/// `out_count` (optional) receives the selected-row count the circuit
/// computed, before any count-field masking — callers folding results
/// without a readback use it together with the returned value.
std::uint64_t run_agg_circuit(Crossbar& xb, const Field& value_field,
                              std::uint16_t select_col, AggOp op,
                              const Field& result_field,
                              std::uint32_t result_row, const PimConfig& cfg,
                              AggCircuitCost* cost,
                              const Field* count_field = nullptr,
                              bool vectorized = true,
                              std::uint64_t* out_count = nullptr);

}  // namespace bbpim::pim
