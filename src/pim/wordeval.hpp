// Word-level semantic evaluation of compiled predicate programs.
//
// The gate-level MicroProgram stays the costed artifact — its cycle count is
// what the latency/energy/wear models charge, exactly as the hardware would
// run it. But simulating every MAGIC gate is a slow way to compute what a
// predicate program *means*: an eq/lt/between over a w-bit field costs
// O(w) NOR cycles of 1024 rows each, while the same boolean function over a
// packed 64-row word is a handful of word ops. A WordProgram is the
// semantic twin of a builder-produced MicroProgram: one op per top-level
// ProgramBuilder emission, writing the same output column with the same
// boolean function of the same inputs. Scratch temporaries internal to a
// composite emission are never materialized — MAGIC programs initialize
// every gate output before driving it, so no later op (or program) can
// observe them.
//
// Built alongside the gate program by the filter compiler and the engine's
// inline program constructions; executed per crossbar by execute_words.
// Equivalence against the gate interpreter is pinned by unit tests and the
// scalar-vs-vectorized determinism suite.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pim/crossbar.hpp"
#include "pim/microcode.hpp"
#include "sql/logical_plan.hpp"

namespace bbpim::pim {

/// One word-parallel operation; out/a/b are crossbar column ids.
struct WordOp {
  enum class Kind : std::uint8_t {
    kConst0,
    kConst1,
    kCopy,     ///< out = a
    kNot,      ///< out = NOT a
    kAnd,      ///< out = a AND b
    kOr,       ///< out = a OR b
    kNor,      ///< out = NOT (a OR b)
    kAndNot,   ///< out = a AND NOT b
    kXor,      ///< out = a XOR b
    kXnor,     ///< out = NOT (a XOR b)
    kEq,       ///< out = (field == v1)
    kLt,       ///< out = (field < v1)
    kLe,       ///< out = (field <= v1)
    kGt,       ///< out = (field > v1)
    kGe,       ///< out = (field >= v1)
    kBetween,  ///< out = (v1 <= field AND field <= v2)
    kIn,       ///< out = OR_i (field == values[i])
  };

  Kind kind;
  std::uint16_t out = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  Field f{};
  std::uint64_t v1 = 0;
  std::uint64_t v2 = 0;
  std::vector<std::uint64_t> values;  ///< kIn only

  static WordOp const0(std::uint16_t out) {
    return {Kind::kConst0, out, 0, 0, {}, 0, 0, {}};
  }
  static WordOp const1(std::uint16_t out) {
    return {Kind::kConst1, out, 0, 0, {}, 0, 0, {}};
  }
  static WordOp copy(std::uint16_t a, std::uint16_t out) {
    return {Kind::kCopy, out, a, 0, {}, 0, 0, {}};
  }
  static WordOp not_op(std::uint16_t a, std::uint16_t out) {
    return {Kind::kNot, out, a, 0, {}, 0, 0, {}};
  }
  static WordOp and_op(std::uint16_t a, std::uint16_t b, std::uint16_t out) {
    return {Kind::kAnd, out, a, b, {}, 0, 0, {}};
  }
  static WordOp or_op(std::uint16_t a, std::uint16_t b, std::uint16_t out) {
    return {Kind::kOr, out, a, b, {}, 0, 0, {}};
  }
  static WordOp andnot_op(std::uint16_t a, std::uint16_t b, std::uint16_t out) {
    return {Kind::kAndNot, out, a, b, {}, 0, 0, {}};
  }
  static WordOp predicate(Kind kind, const Field& f, std::uint64_t v1,
                          std::uint64_t v2, std::uint16_t out) {
    return {kind, out, 0, 0, f, v1, v2, {}};
  }
  static WordOp in_set(const Field& f, std::vector<std::uint64_t> values,
                       std::uint16_t out) {
    return {Kind::kIn, out, 0, 0, f, 0, 0, std::move(values)};
  }
};

using WordProgram = std::vector<WordOp>;

/// Semantic twin of a bound predicate lowered by the filter compiler:
/// matches the boolean function of the corresponding emit_* call (including
/// the out-of-range and degenerate-range edge cases).
WordOp word_predicate(const sql::BoundPredicate& p, const Field& f,
                      std::uint16_t out);

/// Evaluates a WordProgram on one crossbar: each op writes its output
/// column's packed words. No wear is recorded — the caller charges the gate
/// program's cycles (see Crossbar::add_uniform_wear).
void execute_words(Crossbar& xb, const WordProgram& prog);

}  // namespace bbpim::pim
