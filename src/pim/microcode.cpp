#include "pim/microcode.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bbpim::pim {

// ---------------------------------------------------------------------------
// ColumnAlloc
// ---------------------------------------------------------------------------

ColumnAlloc::ColumnAlloc(std::uint16_t begin, std::uint16_t end)
    : begin_(begin), end_(end), in_use_(end > begin ? end - begin : 0, false) {
  if (end <= begin) throw std::invalid_argument("ColumnAlloc: empty region");
}

std::uint16_t ColumnAlloc::alloc() {
  for (std::size_t i = 0; i < in_use_.size(); ++i) {
    if (!in_use_[i]) {
      in_use_[i] = true;
      return static_cast<std::uint16_t>(begin_ + i);
    }
  }
  throw std::runtime_error("ColumnAlloc: scratch columns exhausted");
}

void ColumnAlloc::release(std::uint16_t col) {
  if (col < begin_ || col >= end_) {
    throw std::out_of_range("ColumnAlloc::release: not a scratch column");
  }
  if (!in_use_[col - begin_]) {
    throw std::logic_error("ColumnAlloc::release: double release");
  }
  in_use_[col - begin_] = false;
}

void ColumnAlloc::acquire(std::uint16_t col) {
  if (col < begin_ || col >= end_) {
    throw std::out_of_range("ColumnAlloc::acquire: not a scratch column");
  }
  if (in_use_[col - begin_]) {
    throw std::logic_error("ColumnAlloc::acquire: column already in use");
  }
  in_use_[col - begin_] = true;
}

std::string ColumnAlloc::state_key() const {
  std::string key;
  key.reserve(16 + in_use_.size() / 4);
  key += std::to_string(begin_);
  key += ':';
  key += std::to_string(end_);
  key += ':';
  std::uint8_t nibble = 0;
  for (std::size_t i = 0; i < in_use_.size(); ++i) {
    nibble = static_cast<std::uint8_t>((nibble << 1) | (in_use_[i] ? 1 : 0));
    if ((i & 3) == 3 || i + 1 == in_use_.size()) {
      key += "0123456789abcdef"[nibble];
      nibble = 0;
    }
  }
  return key;
}

std::uint64_t ColumnAlloc::state_fingerprint() const {
  std::uint64_t hash = 14695981039346656037ULL;
  auto mix = [&hash](std::uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ULL;
  };
  mix(begin_);
  mix(end_);
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < in_use_.size(); ++i) {
    word = (word << 1) | static_cast<std::uint64_t>(in_use_[i]);
    if ((i & 63) == 63) {
      mix(word);
      word = 0;
    }
  }
  mix(word);
  return hash;
}

Field ColumnAlloc::alloc_field(std::uint16_t width) {
  if (width == 0) throw std::invalid_argument("ColumnAlloc: zero-width field");
  const std::size_t n = in_use_.size();
  std::size_t run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    run = in_use_[i] ? 0 : run + 1;
    if (run == width) {
      const std::size_t start = i + 1 - width;
      for (std::size_t j = start; j <= i; ++j) in_use_[j] = true;
      return Field{static_cast<std::uint16_t>(begin_ + start), width};
    }
  }
  throw std::runtime_error("ColumnAlloc: no contiguous scratch run");
}

Field ColumnAlloc::alloc_aligned_chunk(std::uint16_t chunk_bits) {
  if (chunk_bits == 0) throw std::invalid_argument("ColumnAlloc: zero chunk");
  // First chunk boundary at or after begin_.
  std::uint16_t start = static_cast<std::uint16_t>(
      (begin_ + chunk_bits - 1) / chunk_bits * chunk_bits);
  for (; start + chunk_bits <= end_; start += chunk_bits) {
    bool free_run = true;
    for (std::uint16_t i = 0; i < chunk_bits; ++i) {
      if (in_use_[start + i - begin_]) {
        free_run = false;
        break;
      }
    }
    if (free_run) {
      for (std::uint16_t i = 0; i < chunk_bits; ++i) {
        in_use_[start + i - begin_] = true;
      }
      return Field{start, chunk_bits};
    }
  }
  throw std::runtime_error("ColumnAlloc: no aligned chunk available");
}

void ColumnAlloc::release_field(const Field& f) {
  for (std::uint16_t i = 0; i < f.width; ++i) {
    release(static_cast<std::uint16_t>(f.offset + i));
  }
}

std::vector<std::uint8_t> dead_init_mask(const MicroProgram& prog) {
  std::vector<std::uint8_t> dead(prog.size(), 0);
  if (prog.empty()) return dead;
  std::uint16_t max_col = 0;
  for (const MicroOp& op : prog) {
    max_col = std::max({max_col, op.a, op.b, op.out});
  }

  // Backward sweep: next_access[c] is the first access to column c after the
  // current scan point (0 = none, 1 = read, 2 = write). An init is dead iff
  // that first access is a write; "none" keeps it alive — the column may be
  // the program's result, read by the host afterwards.
  enum : std::uint8_t { kNone = 0, kRead = 1, kWrite = 2 };
  std::vector<std::uint8_t> next_access(max_col + 1, kNone);
  for (std::size_t i = prog.size(); i-- > 0;) {
    const MicroOp& op = prog[i];
    if (op.kind == MicroOpKind::kInit0 || op.kind == MicroOpKind::kInit1) {
      dead[i] = next_access[op.out] == kWrite;
    }
    // Within one op the inputs are read before the output is driven, so a
    // column that is both input and output counts as read-first.
    next_access[op.out] = kWrite;
    if (op.kind == MicroOpKind::kNot) {
      next_access[op.a] = kRead;
    } else if (op.kind == MicroOpKind::kNor) {
      next_access[op.a] = kRead;
      next_access[op.b] = kRead;
    }
  }
  return dead;
}

std::size_t ColumnAlloc::available() const {
  std::size_t n = 0;
  for (bool b : in_use_) n += !b;
  return n;
}

// ---------------------------------------------------------------------------
// ProgramBuilder: gate-level helpers
// ---------------------------------------------------------------------------

std::uint16_t ProgramBuilder::fresh() {
  const std::uint16_t col = alloc_.alloc();
  prog_.push_back(MicroOp::init1(col));
  return col;
}

std::uint16_t ProgramBuilder::emit_not(std::uint16_t a) {
  const std::uint16_t t = fresh();
  prog_.push_back(MicroOp::not_op(a, t));
  return t;
}

std::uint16_t ProgramBuilder::emit_nor(std::uint16_t a, std::uint16_t b) {
  const std::uint16_t t = fresh();
  prog_.push_back(MicroOp::nor_op(a, b, t));
  return t;
}

std::uint16_t ProgramBuilder::emit_or(std::uint16_t a, std::uint16_t b) {
  const std::uint16_t n = emit_nor(a, b);
  const std::uint16_t r = emit_not(n);
  release(n);
  return r;
}

std::uint16_t ProgramBuilder::emit_and(std::uint16_t a, std::uint16_t b) {
  const std::uint16_t na = emit_not(a);
  const std::uint16_t nb = emit_not(b);
  const std::uint16_t r = emit_nor(na, nb);
  release(na);
  release(nb);
  return r;
}

std::uint16_t ProgramBuilder::emit_andnot(std::uint16_t a, std::uint16_t b) {
  // a AND NOT b == NOR(NOT a, b)
  const std::uint16_t na = emit_not(a);
  const std::uint16_t r = emit_nor(na, b);
  release(na);
  return r;
}

std::uint16_t ProgramBuilder::emit_xnor(std::uint16_t a, std::uint16_t b) {
  const std::uint16_t n1 = emit_nor(a, b);
  const std::uint16_t n2 = emit_nor(a, n1);
  const std::uint16_t n3 = emit_nor(b, n1);
  const std::uint16_t r = emit_nor(n2, n3);
  release(n1);
  release(n2);
  release(n3);
  return r;
}

std::uint16_t ProgramBuilder::emit_xor(std::uint16_t a, std::uint16_t b) {
  const std::uint16_t x = emit_xnor(a, b);
  const std::uint16_t r = emit_not(x);
  release(x);
  return r;
}

std::uint16_t ProgramBuilder::emit_const(bool value) {
  const std::uint16_t t = alloc_.alloc();
  prog_.push_back(value ? MicroOp::init1(t) : MicroOp::init0(t));
  return t;
}

std::uint16_t ProgramBuilder::emit_copy(std::uint16_t a) {
  const std::uint16_t n = emit_not(a);
  const std::uint16_t r = emit_not(n);
  release(n);
  return r;
}

void ProgramBuilder::emit_copy_into(std::uint16_t src, std::uint16_t dst) {
  const std::uint16_t n = emit_not(src);
  prog_.push_back(MicroOp::init1(dst));
  prog_.push_back(MicroOp::not_op(n, dst));
  release(n);
}

// ---------------------------------------------------------------------------
// Predicates
// ---------------------------------------------------------------------------

namespace {
/// Largest value representable by a field (width <= 64).
std::uint64_t field_max(const Field& f) {
  return f.width >= 64 ? ~0ULL : (1ULL << f.width) - 1;
}
}  // namespace

std::uint16_t ProgramBuilder::emit_eq_const(const Field& f, std::uint64_t value) {
  if (f.width == 0 || f.width > 64) {
    throw std::invalid_argument("emit_eq_const: bad field width");
  }
  if (value > field_max(f)) return emit_const(false);

  // eq = NOT (OR_i mismatch_i); mismatch_i = a_i XOR c_i, which is a_i for
  // c_i = 0 and NOT a_i for c_i = 1.
  std::uint16_t acc = 0;
  bool have_acc = false;
  for (std::uint16_t i = 0; i < f.width; ++i) {
    const std::uint16_t col = static_cast<std::uint16_t>(f.offset + i);
    const bool ci = (value >> i) & 1ULL;
    std::uint16_t term = 0;
    bool term_owned = false;
    if (ci) {
      term = emit_not(col);
      term_owned = true;
    } else {
      term = col;
    }
    if (!have_acc) {
      acc = term_owned ? term : emit_copy(term);
      have_acc = true;
    } else {
      const std::uint16_t next = emit_or(acc, term);
      release(acc);
      if (term_owned) release(term);
      acc = next;
    }
  }
  const std::uint16_t r = emit_not(acc);
  release(acc);
  return r;
}

std::uint16_t ProgramBuilder::emit_lt_const(const Field& f, std::uint64_t value) {
  if (f.width == 0 || f.width > 64) {
    throw std::invalid_argument("emit_lt_const: bad field width");
  }
  if (value == 0) return emit_const(false);
  if (value > field_max(f)) return emit_const(true);

  // MSB-first scan keeping eq_prefix ("all higher bits equal to the
  // constant") and lt_acc ("already strictly below").
  std::uint16_t eq_prefix = 0;
  bool eq_owned = false;
  bool eq_is_one = true;  // implicit constant 1 before the first bit
  std::uint16_t lt_acc = 0;
  bool have_lt = false;

  for (int i = static_cast<int>(f.width) - 1; i >= 0; --i) {
    const std::uint16_t col = static_cast<std::uint16_t>(f.offset + i);
    const bool ci = (value >> i) & 1ULL;
    if (ci) {
      // a_i = 0 while prefix equal -> strictly less.
      std::uint16_t term;
      if (eq_is_one) {
        term = emit_not(col);
      } else {
        term = emit_andnot(eq_prefix, col);
      }
      if (!have_lt) {
        lt_acc = term;
        have_lt = true;
      } else {
        const std::uint16_t next = emit_or(lt_acc, term);
        release(lt_acc);
        release(term);
        lt_acc = next;
      }
      // Staying equal requires a_i = 1.
      if (eq_is_one) {
        eq_prefix = col;
        eq_owned = false;
        eq_is_one = false;
      } else {
        const std::uint16_t next = emit_and(eq_prefix, col);
        if (eq_owned) release(eq_prefix);
        eq_prefix = next;
        eq_owned = true;
      }
    } else {
      // Staying equal requires a_i = 0.
      if (eq_is_one) {
        eq_prefix = emit_not(col);
        eq_owned = true;
        eq_is_one = false;
      } else {
        const std::uint16_t next = emit_andnot(eq_prefix, col);
        if (eq_owned) release(eq_prefix);
        eq_prefix = next;
        eq_owned = true;
      }
    }
  }
  if (eq_owned) release(eq_prefix);
  if (!have_lt) return emit_const(false);
  return lt_acc;
}

std::uint16_t ProgramBuilder::emit_le_const(const Field& f, std::uint64_t value) {
  if (value >= field_max(f)) return emit_const(true);
  return emit_lt_const(f, value + 1);
}

std::uint16_t ProgramBuilder::emit_gt_const(const Field& f, std::uint64_t value) {
  const std::uint16_t le = emit_le_const(f, value);
  const std::uint16_t r = emit_not(le);
  release(le);
  return r;
}

std::uint16_t ProgramBuilder::emit_ge_const(const Field& f, std::uint64_t value) {
  const std::uint16_t lt = emit_lt_const(f, value);
  const std::uint16_t r = emit_not(lt);
  release(lt);
  return r;
}

std::uint16_t ProgramBuilder::emit_between_const(const Field& f,
                                                 std::uint64_t lo,
                                                 std::uint64_t hi) {
  if (lo > hi) return emit_const(false);
  if (lo == 0) return emit_le_const(f, hi);
  if (hi >= field_max(f)) return emit_ge_const(f, lo);
  const std::uint16_t ge = emit_ge_const(f, lo);
  const std::uint16_t le = emit_le_const(f, hi);
  const std::uint16_t r = emit_and(ge, le);
  release(ge);
  release(le);
  return r;
}

std::uint16_t ProgramBuilder::emit_in_set(const Field& f,
                                          std::span<const std::uint64_t> values) {
  if (values.empty()) return emit_const(false);
  std::uint16_t acc = emit_eq_const(f, values[0]);
  for (std::size_t i = 1; i < values.size(); ++i) {
    const std::uint16_t eq = emit_eq_const(f, values[i]);
    const std::uint16_t next = emit_or(acc, eq);
    release(acc);
    release(eq);
    acc = next;
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

namespace {

bool fields_overlap(const Field& a, const Field& b) {
  return a.offset < b.offset + b.width && b.offset < a.offset + a.width;
}

}  // namespace

/// Constant-folded reference to an operand bit: a real column or a known 0/1.
struct BitRef {
  enum class Kind : std::uint8_t { kZero, kOne, kCol };
  Kind kind = Kind::kZero;
  std::uint16_t col = 0;
  bool owned = false;

  static BitRef zero() { return {}; }
  static BitRef one() { return {Kind::kOne, 0, false}; }
  static BitRef column(std::uint16_t c, bool owned = false) {
    return {Kind::kCol, c, owned};
  }
};

namespace {

void release_ref(ProgramBuilder& pb, BitRef& r) {
  if (r.kind == BitRef::Kind::kCol && r.owned) {
    pb.release(r.col);
    r.owned = false;
  }
}

/// Pass-through helper: the result aliases `x`, so scratch ownership moves to
/// the result (the caller still calls release_ref on `x`, now a no-op).
BitRef steal(BitRef& x) {
  BitRef r = x;
  x.owned = false;
  return r;
}

BitRef ref_not(ProgramBuilder& pb, const BitRef& x) {
  switch (x.kind) {
    case BitRef::Kind::kZero: return BitRef::one();
    case BitRef::Kind::kOne: return BitRef::zero();
    case BitRef::Kind::kCol: return BitRef::column(pb.emit_not(x.col), true);
  }
  return BitRef::zero();
}

BitRef ref_xor(ProgramBuilder& pb, BitRef& x, BitRef& y) {
  if (x.kind == BitRef::Kind::kZero) return steal(y);
  if (y.kind == BitRef::Kind::kZero) return steal(x);
  if (x.kind == BitRef::Kind::kOne && y.kind == BitRef::Kind::kOne) {
    return BitRef::zero();
  }
  if (x.kind == BitRef::Kind::kOne) return ref_not(pb, y);
  if (y.kind == BitRef::Kind::kOne) return ref_not(pb, x);
  return BitRef::column(pb.emit_xor(x.col, y.col), true);
}

BitRef ref_and(ProgramBuilder& pb, BitRef& x, BitRef& y) {
  if (x.kind == BitRef::Kind::kZero || y.kind == BitRef::Kind::kZero) {
    return BitRef::zero();
  }
  if (x.kind == BitRef::Kind::kOne) return steal(y);
  if (y.kind == BitRef::Kind::kOne) return steal(x);
  return BitRef::column(pb.emit_and(x.col, y.col), true);
}

BitRef ref_or(ProgramBuilder& pb, BitRef& x, BitRef& y) {
  if (x.kind == BitRef::Kind::kOne || y.kind == BitRef::Kind::kOne) {
    return BitRef::one();
  }
  if (x.kind == BitRef::Kind::kZero) return steal(y);
  if (y.kind == BitRef::Kind::kZero) return steal(x);
  return BitRef::column(pb.emit_or(x.col, y.col), true);
}

/// Majority of three (the ripple carry).
BitRef ref_maj(ProgramBuilder& pb, BitRef& a, BitRef& b, BitRef& c) {
  BitRef ab = ref_and(pb, a, b);
  BitRef aob = ref_or(pb, a, b);
  BitRef cab = ref_and(pb, c, aob);
  BitRef r = ref_or(pb, ab, cab);
  release_ref(pb, ab);
  release_ref(pb, aob);
  release_ref(pb, cab);
  return r;
}

/// Writes a BitRef value into an arbitrary destination column.
void ref_store(ProgramBuilder& pb, const BitRef& v, std::uint16_t dst,
               MicroProgram& prog) {
  switch (v.kind) {
    case BitRef::Kind::kZero:
      prog.push_back(MicroOp::init0(dst));
      break;
    case BitRef::Kind::kOne:
      prog.push_back(MicroOp::init1(dst));
      break;
    case BitRef::Kind::kCol:
      pb.emit_copy_into(v.col, dst);
      break;
  }
}

BitRef operand_bit(const Field& f, std::uint16_t i) {
  if (i >= f.width) return BitRef::zero();
  return BitRef::column(static_cast<std::uint16_t>(f.offset + i), false);
}

}  // namespace

void ProgramBuilder::emit_add(const Field& a, const Field& b, const Field& dst) {
  if (fields_overlap(a, dst) || fields_overlap(b, dst)) {
    throw std::invalid_argument("emit_add: destination overlaps an operand");
  }
  BitRef carry = BitRef::zero();
  for (std::uint16_t i = 0; i < dst.width; ++i) {
    BitRef ai = operand_bit(a, i);
    BitRef bi = operand_bit(b, i);
    BitRef x = ref_xor(*this, ai, bi);
    BitRef s = ref_xor(*this, x, carry);
    BitRef c_next = ref_maj(*this, ai, bi, carry);
    ref_store(*this, s, static_cast<std::uint16_t>(dst.offset + i), prog_);
    release_ref(*this, x);
    release_ref(*this, s);
    release_ref(*this, carry);
    carry = c_next;
  }
  release_ref(*this, carry);
}

void ProgramBuilder::emit_sub(const Field& a, const Field& b, const Field& dst) {
  if (fields_overlap(a, dst) || fields_overlap(b, dst)) {
    throw std::invalid_argument("emit_sub: destination overlaps an operand");
  }
  // a - b = a + NOT(b) + 1 in two's complement; absent b bits invert to 1.
  BitRef carry = BitRef::one();
  for (std::uint16_t i = 0; i < dst.width; ++i) {
    BitRef ai = operand_bit(a, i);
    BitRef bi_raw = operand_bit(b, i);
    BitRef bi = ref_not(*this, bi_raw);
    BitRef x = ref_xor(*this, ai, bi);
    BitRef s = ref_xor(*this, x, carry);
    BitRef c_next = ref_maj(*this, ai, bi, carry);
    ref_store(*this, s, static_cast<std::uint16_t>(dst.offset + i), prog_);
    release_ref(*this, x);
    release_ref(*this, s);
    release_ref(*this, bi);
    release_ref(*this, carry);
    carry = c_next;
  }
  release_ref(*this, carry);
}

void ProgramBuilder::emit_mul(const Field& a, const Field& b, const Field& dst) {
  if (fields_overlap(a, dst) || fields_overlap(b, dst)) {
    throw std::invalid_argument("emit_mul: destination overlaps an operand");
  }
  emit_clear_field(dst);
  // Shift-add: for each multiplier bit, acc[i..] += (a AND b_i).
  for (std::uint16_t i = 0; i < b.width && i < dst.width; ++i) {
    const std::uint16_t bi = static_cast<std::uint16_t>(b.offset + i);
    BitRef carry = BitRef::zero();
    for (std::uint16_t j = 0; i + j < dst.width; ++j) {
      const std::uint16_t dcol = static_cast<std::uint16_t>(dst.offset + i + j);
      BitRef pj;  // partial-product bit: a_j AND b_i
      if (j < a.width) {
        pj = BitRef::column(
            emit_and(static_cast<std::uint16_t>(a.offset + j), bi), true);
      } else {
        pj = BitRef::zero();
      }
      if (pj.kind == BitRef::Kind::kZero && carry.kind == BitRef::Kind::kZero) {
        break;  // nothing further to propagate
      }
      BitRef acc = BitRef::column(dcol, false);
      BitRef x = ref_xor(*this, acc, pj);
      BitRef s = ref_xor(*this, x, carry);
      BitRef c_next = ref_maj(*this, acc, pj, carry);
      ref_store(*this, s, dcol, prog_);
      release_ref(*this, x);
      release_ref(*this, s);
      release_ref(*this, pj);
      release_ref(*this, carry);
      carry = c_next;
    }
    release_ref(*this, carry);
  }
}

void ProgramBuilder::emit_mux_const(const Field& f, std::uint64_t value,
                                    std::uint16_t select_col) {
  // Algorithm 1: v_i <- v_i OR s when c_i = 1, v_i <- v_i AND NOT s otherwise.
  for (std::uint16_t i = 0; i < f.width; ++i) {
    const std::uint16_t vcol = static_cast<std::uint16_t>(f.offset + i);
    std::uint16_t t;
    if ((value >> i) & 1ULL) {
      t = emit_or(vcol, select_col);
    } else {
      t = emit_andnot(vcol, select_col);
    }
    emit_copy_into(t, vcol);
    release(t);
  }
}

void ProgramBuilder::emit_clear_field(const Field& f) {
  for (std::uint16_t i = 0; i < f.width; ++i) {
    prog_.push_back(MicroOp::init0(static_cast<std::uint16_t>(f.offset + i)));
  }
}

}  // namespace bbpim::pim
