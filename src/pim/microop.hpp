// The bulk-bitwise micro-operation set.
//
// A micro-op is one 30 ns MAGIC-style cycle applied column-wise to a whole
// crossbar: every row computes the same 1- or 2-input gate into an output
// column cell. Memristive MAGIC provides NOR natively (NOT is a 1-input
// NOR); initialization of the output column is itself a write cycle, which
// we expose as kInit0/kInit1 so that op counts, energy, and wear stay honest.
#pragma once

#include <cstdint>
#include <vector>

namespace bbpim::pim {

/// One column-parallel memristive cycle.
enum class MicroOpKind : std::uint8_t {
  kInit0,  ///< out <- 0 across all rows (output column initialization)
  kInit1,  ///< out <- 1 across all rows
  kNot,    ///< out <- NOT a        (1-input MAGIC NOR)
  kNor,    ///< out <- NOR(a, b)    (native MAGIC gate)
};

/// Column indices are bit positions within a crossbar row.
struct MicroOp {
  MicroOpKind kind;
  std::uint16_t a = 0;    ///< first input column (unused for init)
  std::uint16_t b = 0;    ///< second input column (kNor only)
  std::uint16_t out = 0;  ///< output column

  static MicroOp init0(std::uint16_t out) { return {MicroOpKind::kInit0, 0, 0, out}; }
  static MicroOp init1(std::uint16_t out) { return {MicroOpKind::kInit1, 0, 0, out}; }
  static MicroOp not_op(std::uint16_t a, std::uint16_t out) {
    return {MicroOpKind::kNot, a, 0, out};
  }
  static MicroOp nor_op(std::uint16_t a, std::uint16_t b, std::uint16_t out) {
    return {MicroOpKind::kNor, a, b, out};
  }
};

/// A straight-line sequence of micro-ops, broadcast by a PIM controller to
/// all crossbars of a page. Each op costs one logic cycle and writes the
/// output column once per row (wear).
using MicroProgram = std::vector<MicroOp>;

}  // namespace bbpim::pim
