// Functional model of one memristive crossbar array.
//
// The crossbar stores real bits (column-major, 64-bit packed) and executes
// bulk-bitwise micro-ops exactly: a NOR micro-op really NORs two 1024-bit
// columns. Query answers produced by the simulator are therefore exact and
// are checked against a scalar reference in the tests. Cost (time, energy,
// wear) is accounted one level up, by the PIM controller.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/bitvec.hpp"
#include "pim/microop.hpp"

namespace bbpim::pim {

/// A rows x cols bit matrix with column-parallel logic.
class Crossbar {
 public:
  Crossbar(std::uint32_t rows, std::uint32_t cols);

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }

  /// Executes one micro-op across all rows. Bumps the uniform wear counter
  /// (every micro-op writes its output column: one cell per row).
  void execute(const MicroOp& op);

  /// Executes a whole program.
  void execute(const MicroProgram& prog);

  /// Fused program interpreter: per-op dispatch is hoisted out of the word
  /// loop and ops marked in `skip_init` (dead output-column initializations,
  /// see pim::dead_init_mask) skip their functional write — a MAGIC gate
  /// drives every cell of its output column, so an INIT that is overwritten
  /// before any read has no observable effect. Wear accounting is identical
  /// to execute(): every op, skipped or not, is one write cycle per row.
  /// `skip_init` must be empty or sized to the program.
  void execute_fused(const MicroProgram& prog,
                     std::span<const std::uint8_t> skip_init);

  /// Reads `width` bits (<= 64) of one row starting at bit `offset`.
  std::uint64_t read_row_bits(std::uint32_t row, std::uint32_t offset,
                              std::uint32_t width) const;

  /// Writes `width` bits (<= 64) of one row; bumps per-row wear.
  void write_row_bits(std::uint32_t row, std::uint32_t offset,
                      std::uint32_t width, std::uint64_t value);

  /// Snapshot of a full column as a BitVec of `rows()` bits.
  BitVec column(std::uint32_t col) const;

  /// Number of set bits in a column, computed on the packed words directly
  /// (no BitVec materialization).
  std::size_t column_popcount(std::uint32_t col) const;

  /// Read-only view of a column's packed words (words_per_column() of them;
  /// rows are a multiple of 64, so there are no tail bits). Used by the
  /// word-level column transfer and aggregation kernels. Inline: these sit
  /// in the innermost simulation loops.
  const std::uint64_t* column_data(std::uint32_t col) const {
    if (col >= cols_) throw std::out_of_range("Crossbar::column_data");
    return column_words(col);
  }
  std::uint32_t words_per_column() const { return words_per_col_; }

  /// Mutable word view of a column — the word-level evaluator's write path
  /// (pim/wordeval). Deliberately records no wear: the caller charges the
  /// equivalent gate program's cycles via add_uniform_wear.
  std::uint64_t* column_data_mut(std::uint32_t col) {
    if (col >= cols_) throw std::out_of_range("Crossbar::column_data_mut");
    return column_words(col);
  }

  /// Overwrites a full column (used by the CONCEPT-style packed column write
  /// path when the host pushes a bit-vector into the PIM module). Counts one
  /// write per row (uniform wear).
  void write_column(std::uint32_t col, const BitVec& bits);

  /// Single-bit accessors (test/diagnostic use).
  bool bit(std::uint32_t row, std::uint32_t col) const;
  void set_bit(std::uint32_t row, std::uint32_t col, bool v);

  // --- Wear accounting ------------------------------------------------------
  /// Writes applied uniformly to every row (one per executed micro-op).
  std::uint64_t uniform_row_writes() const { return uniform_row_writes_; }
  /// Largest per-row extra write count (row writes from host/agg results).
  /// O(1): per-row counts only grow, so a running maximum maintained at
  /// write time equals the scan — wear is read once per query, but written
  /// per crossbar per aggregation pass.
  std::uint64_t max_extra_row_writes() const { return max_extra_row_writes_; }
  /// Worst-case writes experienced by any single row of this crossbar.
  std::uint64_t max_row_writes() const {
    return uniform_row_writes_ + max_extra_row_writes();
  }
  /// Zeroes wear counters (used when measuring a single query).
  void reset_wear();

  /// Adds extra uniform per-row writes (chunk-granular host writes rewrite
  /// neighbouring cells of the target bit).
  void add_uniform_wear(std::uint64_t writes_per_row) {
    uniform_row_writes_ += writes_per_row;
  }

 private:
  static constexpr std::uint32_t kWordBits = 64;

  std::uint64_t* column_words(std::uint32_t col) {
    return words_.data() + static_cast<std::size_t>(col) * words_per_col_;
  }
  const std::uint64_t* column_words(std::uint32_t col) const {
    return words_.data() + static_cast<std::size_t>(col) * words_per_col_;
  }

  std::uint32_t rows_;
  std::uint32_t cols_;
  std::uint32_t words_per_col_;
  std::vector<std::uint64_t> words_;  // column-major

  std::uint64_t uniform_row_writes_ = 0;
  std::uint64_t max_extra_row_writes_ = 0;
  std::vector<std::uint32_t> extra_row_writes_;  // lazily sized to rows_
};

}  // namespace bbpim::pim
