// Functional model of one memristive crossbar array.
//
// The crossbar stores real bits (column-major, 64-bit packed) and executes
// bulk-bitwise micro-ops exactly: a NOR micro-op really NORs two 1024-bit
// columns. Query answers produced by the simulator are therefore exact and
// are checked against a scalar reference in the tests. Cost (time, energy,
// wear) is accounted one level up, by the PIM controller.
//
// Storage is split at `data_cols` into two segments. The DATA segment
// (columns [0, data_cols)) holds record bits and is reference-counted: any
// number of crossbars — and the immutable store snapshots of
// engine/snapshot_store — may share one segment, and a write detaches a
// private copy first (copy-on-write). The SCRATCH segment (columns
// [data_cols, cols)) holds filter results, transfer staging and aggregation
// outputs; it is always private to this crossbar. Detaching is value-aware
// at program granularity: while the segment is shared, micro-op writes to
// data columns are staged in a side buffer and reconciled once when the
// program ends — the segment is cloned only if the program's net effect
// changed the bits. That matters because the Algorithm-1 MUX rewrites every
// row of the target field (unselected rows with their current value, via an
// INIT1 + NOT pair whose intermediate state always differs), so an UPDATE
// clones only the crossbars holding a selected record. By default
// data_cols == cols: the whole crossbar is data and, with no sharing, every
// write takes the plain in-place path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/bitvec.hpp"
#include "pim/microop.hpp"

namespace bbpim::pim {

/// A shareable data segment: the packed words of columns [0, data_cols).
using CrossbarSegment = std::shared_ptr<std::vector<std::uint64_t>>;

/// A rows x cols bit matrix with column-parallel logic.
class Crossbar {
 public:
  Crossbar(std::uint32_t rows, std::uint32_t cols);
  /// Split storage: columns [0, data_cols) live in the shareable data
  /// segment, the rest in private scratch. data_cols may equal cols (all
  /// data, no scratch segment) but must not exceed it.
  Crossbar(std::uint32_t rows, std::uint32_t cols, std::uint32_t data_cols);

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::uint32_t data_cols() const { return data_cols_; }

  /// Executes one micro-op across all rows. Bumps the uniform wear counter
  /// (every micro-op writes its output column: one cell per row).
  void execute(const MicroOp& op);

  /// Executes a whole program.
  void execute(const MicroProgram& prog);

  /// Fused program interpreter: per-op dispatch is hoisted out of the word
  /// loop and ops marked in `skip_init` (dead output-column initializations,
  /// see pim::dead_init_mask) skip their functional write — a MAGIC gate
  /// drives every cell of its output column, so an INIT that is overwritten
  /// before any read has no observable effect. Wear accounting is identical
  /// to execute(): every op, skipped or not, is one write cycle per row.
  /// `skip_init` must be empty or sized to the program.
  void execute_fused(const MicroProgram& prog,
                     std::span<const std::uint8_t> skip_init);

  /// Reads `width` bits (<= 64) of one row starting at bit `offset`.
  std::uint64_t read_row_bits(std::uint32_t row, std::uint32_t offset,
                              std::uint32_t width) const;

  /// Writes `width` bits (<= 64) of one row; bumps per-row wear.
  void write_row_bits(std::uint32_t row, std::uint32_t offset,
                      std::uint32_t width, std::uint64_t value);

  /// Snapshot of a full column as a BitVec of `rows()` bits.
  BitVec column(std::uint32_t col) const;

  /// Number of set bits in a column, computed on the packed words directly
  /// (no BitVec materialization).
  std::size_t column_popcount(std::uint32_t col) const;

  /// Read-only view of a column's packed words (words_per_column() of them;
  /// rows are a multiple of 64, so there are no tail bits). Used by the
  /// word-level column transfer and aggregation kernels. Inline: these sit
  /// in the innermost simulation loops.
  const std::uint64_t* column_data(std::uint32_t col) const {
    if (col >= cols_) throw std::out_of_range("Crossbar::column_data");
    return column_words(col);
  }
  std::uint32_t words_per_column() const { return words_per_col_; }

  /// Mutable word view of a column — the word-level evaluator's write path
  /// (pim/wordeval). Deliberately records no wear: the caller charges the
  /// equivalent gate program's cycles via add_uniform_wear. Data columns
  /// detach a shared segment unconditionally (the caller's writes cannot be
  /// compared against the current contents from here).
  std::uint64_t* column_data_mut(std::uint32_t col) {
    if (col >= cols_) throw std::out_of_range("Crossbar::column_data_mut");
    if (col < data_cols_ && data_.use_count() > 1) detach_data();
    return column_words(col);
  }

  /// Overwrites a full column (used by the CONCEPT-style packed column write
  /// path when the host pushes a bit-vector into the PIM module). Counts one
  /// write per row (uniform wear).
  void write_column(std::uint32_t col, const BitVec& bits);

  /// Single-bit accessors (test/diagnostic use).
  bool bit(std::uint32_t row, std::uint32_t col) const;
  void set_bit(std::uint32_t row, std::uint32_t col, bool v);

  // --- Data-segment sharing (engine/snapshot_store) -------------------------
  /// The data segment, shareable with other crossbars/snapshots. Holders
  /// must treat the words as immutable; this crossbar detaches before any
  /// mutating access while the segment is shared.
  const CrossbarSegment& data_segment() const { return data_; }
  /// Replaces the data segment with `seg` (same size required). The view
  /// path of engine::PimStore uses this to point a worker's crossbars at a
  /// store snapshot's immutable data.
  void adopt_data(CrossbarSegment seg);
  /// True while the data segment is shared with at least one other holder.
  bool data_shared() const { return data_.use_count() > 1; }

  // --- Wear accounting ------------------------------------------------------
  /// Writes applied uniformly to every row (one per executed micro-op).
  std::uint64_t uniform_row_writes() const { return uniform_row_writes_; }
  /// Largest per-row extra write count (row writes from host/agg results).
  /// O(1): per-row counts only grow, so a running maximum maintained at
  /// write time equals the scan — wear is read once per query, but written
  /// per crossbar per aggregation pass.
  std::uint64_t max_extra_row_writes() const { return max_extra_row_writes_; }
  /// Worst-case writes experienced by any single row of this crossbar.
  std::uint64_t max_row_writes() const {
    return uniform_row_writes_ + max_extra_row_writes();
  }
  /// Zeroes wear counters (used when measuring a single query).
  void reset_wear();

  /// Adds extra uniform per-row writes (chunk-granular host writes rewrite
  /// neighbouring cells of the target bit).
  void add_uniform_wear(std::uint64_t writes_per_row) {
    uniform_row_writes_ += writes_per_row;
  }

 private:
  static constexpr std::uint32_t kWordBits = 64;

  std::uint64_t* column_words(std::uint32_t col) {
    return col < data_cols_
               ? data_->data() + static_cast<std::size_t>(col) * words_per_col_
               : scratch_.data() +
                     static_cast<std::size_t>(col - data_cols_) * words_per_col_;
  }
  const std::uint64_t* column_words(std::uint32_t col) const {
    return col < data_cols_
               ? data_->data() + static_cast<std::size_t>(col) * words_per_col_
               : scratch_.data() +
                     static_cast<std::size_t>(col - data_cols_) * words_per_col_;
  }

  /// Clones the data segment so this crossbar owns it exclusively.
  void detach_data();

  /// Functional execution of one micro-op; wear is the caller's business.
  /// While the data segment is shared, writes to data columns land in the
  /// staging buffer and reads consult it, so a program observes its own
  /// intermediate states without touching the shared words.
  void execute_op(const MicroOp& op);
  /// Output/input column resolution for execute_op (staging-aware).
  std::uint64_t* exec_out(std::uint32_t col);
  const std::uint64_t* exec_in(std::uint32_t col) const;
  /// Staged buffer for `col`, or nullptr if the column is not staged.
  std::uint64_t* find_staged(std::uint32_t col);
  const std::uint64_t* find_staged(std::uint32_t col) const;
  /// Stages `col`: copies its current words into a fresh buffer.
  std::uint64_t* stage_col(std::uint32_t col);
  /// Ends a program: if any staged column's net value differs from the
  /// shared segment, detaches and applies the staged writes; otherwise the
  /// shared segment is kept untouched. Always clears the staging buffer.
  void reconcile_staged();

  std::uint32_t rows_;
  std::uint32_t cols_;
  std::uint32_t data_cols_;
  std::uint32_t words_per_col_;
  CrossbarSegment data_;                 // columns [0, data_cols), column-major
  std::vector<std::uint64_t> scratch_;   // columns [data_cols, cols)
  // Program-scoped staging of writes to shared data columns: (column,
  // words). Empty except mid-program while the segment is shared; small —
  // one entry per target-field bit of an UPDATE's MUX.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint64_t>>> staged_;

  std::uint64_t uniform_row_writes_ = 0;
  std::uint64_t max_extra_row_writes_ = 0;
  std::vector<std::uint32_t> extra_row_writes_;  // lazily sized to rows_
};

}  // namespace bbpim::pim
