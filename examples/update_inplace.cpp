// Maintaining a pre-joined relation with Algorithm 1 (Section III).
//
// Pre-joining duplicates each dimension value into every matching fact
// record, which normally makes UPDATE expensive. This example renames a
// supplier city across the whole pre-joined SSB relation with one SQL
// statement — UPDATE ... SET ... WHERE through the db facade, which routes
// it to the paper's PIM MUX (a filter program plus one conditional write
// per attribute bit, zero host reads) under the Database writer gate —
// and verifies the mutated store record by record.
//
//   ./examples/update_inplace
#include <iostream>

#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "db/db.hpp"
#include "ssb/dbgen.hpp"

int main() {
  using namespace bbpim;

  ssb::SsbConfig gen;
  gen.scale_factor = 0.05;
  const ssb::SsbData data = ssb::generate(gen);

  db::Database database;
  const rel::Table& prejoined =
      database.register_table(ssb::prejoin_ssb(data));
  db::Session session(database);

  const std::size_t s_city = *prejoined.schema().index_of("s_city");
  const auto& dict = *prejoined.schema().attribute(s_city).dict;
  const std::uint64_t old_code = *dict.code("UNITED ST0");
  const std::uint64_t new_code = *dict.code("UNITED ST9");

  std::size_t expected = 0;
  for (std::size_t r = 0; r < prejoined.row_count(); ++r) {
    expected += prejoined.value(r, s_city) == old_code;
  }
  const char* sql =
      "UPDATE ssb_prejoined SET s_city = 'UNITED ST9' "
      "WHERE s_city = 'UNITED ST0'";
  std::cout << sql << "\n(" << expected << " of " << prejoined.row_count()
            << " records hold the duplicated value)\n\n";

  const db::ResultSet rs = session.execute(sql, db::BackendKind::kOneXb);
  const engine::UpdateStats& st = rs.update_stats();

  TablePrinter t({"Metric", "PIM (Algorithm 1)", "Host read-modify-write"});
  t.add_row({"Updated records", std::to_string(st.updated_records), "same"});
  t.add_row({"Latency",
             TablePrinter::fmt(units::ns_to_ms(st.total_ns), 3) + " ms",
             TablePrinter::fmt(units::ns_to_ms(st.host_path_estimate_ns), 3) +
                 " ms"});
  t.add_row({"Host lines read", std::to_string(st.host_lines_read),
             "filter bits + 2/record"});
  t.add_row({"Bulk-bitwise cycles/page", std::to_string(st.cycles), "0"});
  t.add_row({"Data version", std::to_string(rs.data_version()), "-"});
  t.print(std::cout);

  // Verify the crossbar store against the immutable source relation.
  std::cout << "\nVerifying the mutated store record by record... ";
  engine::PimStore& store =
      session.pim_engine(engine::EngineKind::kOneXb).store();
  bool ok = st.updated_records == expected;
  for (std::size_t r = 0; r < prejoined.row_count() && ok; ++r) {
    const std::uint64_t before = prejoined.value(r, s_city);
    const std::uint64_t after = store.read_attr(r, s_city);
    ok = after == (before == old_code ? new_code : before);
  }
  std::cout << (ok ? "OK — every duplicated copy updated, nothing else "
                     "touched.\n"
                   : "MISMATCH!\n");
  return ok ? 0 : 1;
}
