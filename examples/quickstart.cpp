// Quickstart: load a relation into bulk-bitwise PIM and run SQL on it.
//
// The five-line version of the paper's system: register a table with a
// bbpim::db::Database, open a Session, and execute SQL — the facade parses,
// binds, loads the relation into the simulated PIM module, fits the
// Section-IV latency models once (cached for the session), and returns a
// dictionary-decoded ResultSet carrying the simulated execution costs.
//
//   ./examples/quickstart
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "db/db.hpp"

int main() {
  using namespace bbpim;

  // 1. A relation: product sales with a dictionary-encoded region.
  auto region_dict = std::make_shared<const rel::Dictionary>(
      rel::Dictionary::from_values({"AMERICA", "ASIA", "EUROPE"}));
  rel::Table sales(
      rel::Schema({{"product", rel::DataType::kInt, 10, nullptr},
                   {"region", rel::DataType::kString, 2, region_dict},
                   {"quantity", rel::DataType::kInt, 6, nullptr},
                   {"price", rel::DataType::kInt, 12, nullptr}}),
      "sales");
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t row[] = {rng.next_below(1000), rng.next_below(3),
                                 1 + rng.next_below(50), rng.next_below(4096)};
    sales.append_row(row);
  }

  // 2. Register it and open a session. The session lazily loads the table
  //    into the PIM module (Table I geometry by default) and fits the
  //    latency models that drive the GROUP-BY planner — no manual wiring.
  db::Database database;
  database.register_table(std::move(sales));
  db::Session session(database);

  // 3. SQL in, results + simulated costs out.
  const char* sql_text =
      "SELECT region, SUM(quantity * price) AS revenue FROM sales "
      "WHERE quantity BETWEEN 10 AND 40 AND product < 500 "
      "GROUP BY region ORDER BY revenue DESC";
  std::cout << "Query: " << sql_text << "\n\n";
  std::cout << session.explain(sql_text) << "\n";
  const db::ResultSet rs = session.execute(sql_text);

  TablePrinter t({rs.column_name(0), rs.column_name(1)});
  for (std::size_t i = 0; i < rs.row_count(); ++i) {
    t.add_row({rs.text(i, 0), rs.text(i, 1)});
  }
  t.print(std::cout);

  const auto& st = rs.stats();
  std::cout << "\nSimulated execution: "
            << TablePrinter::fmt(units::ns_to_ms(st.total_ns), 3) << " ms, "
            << TablePrinter::fmt(st.energy_j * 1e3, 3) << " mJ, peak "
            << TablePrinter::fmt(st.peak_chip_w, 2) << " W/chip\n";
  std::cout << "Selected " << st.selected_records << " records (selectivity "
            << TablePrinter::fmt_sci(st.selectivity, 2) << "); planner sent "
            << st.pim_subgroups << " of " << st.total_subgroups
            << " subgroups to the PIM aggregation circuit\n";
  return 0;
}
