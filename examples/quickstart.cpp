// Quickstart: load a relation into bulk-bitwise PIM and run SQL on it.
//
// Builds a small sales table, loads it into a simulated PIM module (one
// record per crossbar row), compiles a SQL query to bulk-bitwise filter
// programs + aggregation-circuit passes, and prints the result with the
// simulated execution costs.
//
//   ./examples/quickstart
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "engine/explain.hpp"
#include "engine/model_fitter.hpp"
#include "engine/pim_store.hpp"
#include "engine/query_exec.hpp"
#include "pim/module.hpp"
#include "sql/parser.hpp"

int main() {
  using namespace bbpim;

  // 1. A relation: product sales with a dictionary-encoded region.
  auto region_dict = std::make_shared<const rel::Dictionary>(
      rel::Dictionary::from_values({"AMERICA", "ASIA", "EUROPE"}));
  rel::Table sales(
      rel::Schema({{"product", rel::DataType::kInt, 10, nullptr},
                   {"region", rel::DataType::kString, 2, region_dict},
                   {"quantity", rel::DataType::kInt, 6, nullptr},
                   {"price", rel::DataType::kInt, 12, nullptr}}),
      "sales");
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t row[] = {rng.next_below(1000), rng.next_below(3),
                                 1 + rng.next_below(50), rng.next_below(4096)};
    sales.append_row(row);
  }

  // 2. Load it into the PIM module (Table I geometry by default).
  pim::PimModule module;
  engine::PimStore store(module, sales);
  std::cout << "Loaded " << store.record_count() << " records into "
            << store.pages_per_part() << " hugepages ("
            << sales.schema().record_bits() << " bits/record)\n";

  // 3. Fit the Section-IV latency models once (drives the GROUP-BY planner).
  const host::HostConfig hcfg;
  engine::FitConfig fit;
  fit.page_counts = {2, 4};
  fit.ratios = {0.02, 0.2, 0.6};
  fit.s_values = {2, 3};
  fit.n_values = {1, 2};
  engine::PimQueryEngine engine(
      engine::EngineKind::kOneXb, store, hcfg,
      engine::fit_latency_models(engine::EngineKind::kOneXb, module.config(),
                                 hcfg, fit)
          .models);

  // 4. SQL in, results + simulated costs out.
  const char* sql_text =
      "SELECT region, SUM(quantity * price) AS revenue FROM sales "
      "WHERE quantity BETWEEN 10 AND 40 AND product < 500 "
      "GROUP BY region ORDER BY revenue DESC";
  std::cout << "\nQuery: " << sql_text << "\n\n";
  const sql::BoundQuery q = sql::bind(sql::parse(sql_text), sales.schema());
  std::cout << engine::explain_query(q, store) << "\n";
  const engine::QueryOutput out = engine.execute(q);

  TablePrinter t({"region", "revenue"});
  for (const auto& row : out.rows) {
    t.add_row({region_dict->value(row.group[0]), std::to_string(row.agg)});
  }
  t.print(std::cout);

  const auto& st = out.stats;
  std::cout << "\nSimulated execution: "
            << TablePrinter::fmt(units::ns_to_ms(st.total_ns), 3) << " ms, "
            << TablePrinter::fmt(st.energy_j * 1e3, 3) << " mJ, peak "
            << TablePrinter::fmt(st.peak_chip_w, 2) << " W/chip\n";
  std::cout << "Selected " << st.selected_records << " records (selectivity "
            << TablePrinter::fmt_sci(st.selectivity, 2) << "); planner sent "
            << st.pim_subgroups << " of " << st.total_subgroups
            << " subgroups to the PIM aggregation circuit\n";
  return 0;
}
