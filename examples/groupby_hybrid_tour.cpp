// A tour of the hybrid GROUP-BY machinery (Section IV).
//
// Shows each ingredient on a real SSB query: the fitted latency model
// lookup tables (Fig. 4), the subgroup-size estimate from sampling one 2 MB
// page, the Equation-3 curve T_gb(k), and the planner's chosen split — then
// executes both the chosen plan and the two fixed policies to show the
// hybrid winning.
//
//   ./examples/groupby_hybrid_tour
#include <algorithm>
#include <iostream>

#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "engine/groupby.hpp"
#include "engine/model_fitter.hpp"
#include "engine/pim_store.hpp"
#include "engine/query_exec.hpp"
#include "pim/module.hpp"
#include "sql/parser.hpp"
#include "ssb/dbgen.hpp"
#include "ssb/queries.hpp"

int main() {
  using namespace bbpim;

  ssb::SsbConfig gen;
  gen.scale_factor = 0.1;
  const ssb::SsbData data = ssb::generate(gen);
  const rel::Table prejoined = ssb::prejoin_ssb(data);
  pim::PimModule module;
  engine::PimStore store(module, prejoined);
  const host::HostConfig hcfg;

  std::cout << "== Step 1: fit the empirical latency models (Fig. 4) ==\n";
  engine::FitConfig fit;
  fit.page_counts = {2, 4, 6};
  fit.ratios = {0.01, 0.05, 0.2, 0.5};
  fit.s_values = {2, 3, 4};
  fit.n_values = {1, 2};
  const engine::ModelFitResult fitted = engine::fit_latency_models(
      engine::EngineKind::kOneXb, module.config(), hcfg, fit);
  TablePrinter m({"model", "key", "coefficients", "R^2"});
  for (const auto& [s, f] : fitted.models.host_slope) {
    m.add_row({"T_host-gb slope", "s=" + std::to_string(s),
               "a=" + TablePrinter::fmt(units::ns_to_ms(f.a), 4) +
                   " b=" + TablePrinter::fmt(units::ns_to_ms(f.b), 4) +
                   " [ms/page]",
               TablePrinter::fmt(f.r2, 3)});
  }
  for (const auto& [n, f] : fitted.models.pim_gb) {
    m.add_row({"T_pim-gb", "n=" + std::to_string(n),
               "slope=" + TablePrinter::fmt(units::ns_to_ms(f.slope), 4) +
                   " const=" + TablePrinter::fmt(units::ns_to_ms(f.intercept), 4) +
                   " [ms]",
               TablePrinter::fmt(f.r2, 3)});
  }
  m.print(std::cout);

  engine::PimQueryEngine eng(engine::EngineKind::kOneXb, store, hcfg,
                             fitted.models);
  const auto& q = ssb::query("2.2");
  std::cout << "\n== Step 2: run SSB Q2.2 and inspect the plan ==\n"
            << q.sql << "\n\n";
  const sql::BoundQuery bound = sql::bind(sql::parse(q.sql), prejoined.schema());
  const engine::QueryOutput out = eng.execute(bound);
  const auto& st = out.stats;
  std::cout << "Sampled one 2 MB page: found " << st.sampled_subgroups
            << " of " << st.total_subgroups
            << " potential subgroups; estimated selectivity "
            << TablePrinter::fmt_sci(st.selectivity_estimate, 2) << "\n";
  std::cout << "Top estimated subgroup masses:";
  for (std::size_t i = 0; i < std::min<std::size_t>(6, st.candidate_masses.size());
       ++i) {
    std::cout << " " << TablePrinter::fmt(st.candidate_masses[i], 3);
  }
  std::cout << " ... (Zipf skew: a few large, many small)\n";

  std::cout << "\n== Step 3: the Equation-3 curve T_gb(k) ==\n";
  engine::GroupByPlanInput in;
  in.pages = static_cast<double>(store.pages_per_part());
  in.n = st.n_chunks;
  in.s = st.s_chunks;
  in.selectivity_est = st.selectivity_estimate;
  in.candidates_complete = st.candidates_complete;
  for (const double mass : st.candidate_masses) {
    engine::GroupCandidate c;
    c.est_mass = mass;
    in.candidates.push_back(c);
  }
  const engine::GroupByPlan plan = engine::choose_k(fitted.models, in);
  TablePrinter curve({"k", "predicted T_gb [ms]", ""});
  for (std::size_t k = 0; k < plan.t_of_k.size();
       k += std::max<std::size_t>(1, plan.t_of_k.size() / 10)) {
    curve.add_row({std::to_string(k),
                   TablePrinter::fmt(units::ns_to_ms(plan.t_of_k[k]), 3),
                   k == plan.k ? "<== argmin" : ""});
  }
  curve.print(std::cout);
  std::cout << "Planner chose k=" << st.pim_subgroups << " (model argmin "
            << plan.k << ")\n";

  std::cout << "\n== Step 4: hybrid vs fixed policies ==\n";
  engine::ExecOptions host_only;
  host_only.force_k = 0;
  engine::ExecOptions pim_all;
  pim_all.force_k = st.total_subgroups;
  const auto t_hybrid = st.total_ns;
  const auto t_host = eng.execute(bound, host_only).stats.total_ns;
  const auto t_pim = eng.execute(bound, pim_all).stats.total_ns;
  TablePrinter res({"policy", "latency [ms]"});
  res.add_row({"pure host-gb (k=0)",
               TablePrinter::fmt(units::ns_to_ms(t_host), 3)});
  res.add_row({"pure pim-gb (k=kmax)",
               TablePrinter::fmt(units::ns_to_ms(t_pim), 3)});
  res.add_row({"hybrid (planner)",
               TablePrinter::fmt(units::ns_to_ms(t_hybrid), 3)});
  res.print(std::cout);
  std::cout << "\nThe hybrid never loses to either fixed policy; at larger "
               "relation sizes (paper: M=1831 pages) the gap widens.\n";
  return 0;
}
