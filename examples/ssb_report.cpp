// SSB analytics session on PIM: the paper's end-to-end flow.
//
// Generates the Star Schema Benchmark, pre-joins the star (Section III),
// loads the pre-joined relation into PIM, and runs one query from each SSB
// query group, printing result rows next to the MonetDB-like baseline and
// the simulated costs. A compact tour of deliverable (a) on the paper's own
// workload.
//
//   ./examples/ssb_report            (scale factor 0.05)
//   BBPIM_SF=0.2 ./examples/ssb_report
#include <cstdlib>
#include <iostream>

#include "baseline/monet.hpp"
#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "engine/model_fitter.hpp"
#include "engine/pim_store.hpp"
#include "engine/query_exec.hpp"
#include "pim/module.hpp"
#include "sql/parser.hpp"
#include "ssb/dbgen.hpp"
#include "ssb/queries.hpp"

int main() {
  using namespace bbpim;

  ssb::SsbConfig gen;
  gen.scale_factor = 0.05;
  if (const char* sf = std::getenv("BBPIM_SF")) gen.scale_factor = std::atof(sf);
  std::cout << "Generating SSB at sf=" << gen.scale_factor << "...\n";
  const ssb::SsbData data = ssb::generate(gen);
  const rel::Table prejoined = ssb::prejoin_ssb(data);
  std::cout << "Pre-joined relation: " << prejoined.row_count()
            << " records x " << prejoined.schema().attribute_count()
            << " attributes = " << prejoined.schema().record_bits()
            << " bits/record (fits one 512-bit crossbar row)\n\n";

  pim::PimModule module;
  engine::PimStore store(module, prejoined);
  const host::HostConfig hcfg;
  engine::FitConfig fit;
  fit.page_counts = {2, 4};
  fit.ratios = {0.02, 0.2, 0.6};
  fit.s_values = {2, 4};
  fit.n_values = {1, 2};
  engine::PimQueryEngine pim_engine(
      engine::EngineKind::kOneXb, store, hcfg,
      engine::fit_latency_models(engine::EngineKind::kOneXb, module.config(),
                                 hcfg, fit)
          .models);
  baseline::MonetLikeEngine monet(data, prejoined);

  for (const char* id : {"1.1", "2.2", "3.2", "4.1"}) {
    const auto& q = ssb::query(id);
    std::cout << "=== SSB Q" << id << " ===\n" << q.sql << "\n";
    const sql::BoundQuery bound =
        sql::bind(sql::parse(q.sql), prejoined.schema());
    const engine::QueryOutput out = pim_engine.execute(bound);
    const baseline::BaselineRun mnt = monet.execute_prejoined(bound);

    // Print up to five result rows, dictionary-decoded.
    TablePrinter t([&] {
      std::vector<std::string> headers;
      for (const std::size_t a : bound.group_by) {
        headers.push_back(prejoined.schema().attribute(a).name);
      }
      headers.push_back(bound.agg_alias.empty() ? "agg" : bound.agg_alias);
      return headers;
    }());
    for (std::size_t i = 0; i < out.rows.size() && i < 5; ++i) {
      std::vector<std::string> cells;
      for (std::size_t g = 0; g < bound.group_by.size(); ++g) {
        const auto& attr = prejoined.schema().attribute(bound.group_by[g]);
        cells.push_back(attr.type == rel::DataType::kString
                            ? attr.dict->value(out.rows[i].group[g])
                            : std::to_string(out.rows[i].group[g]));
      }
      cells.push_back(std::to_string(out.rows[i].agg));
      t.add_row(std::move(cells));
    }
    t.print(std::cout);
    if (out.rows.size() > 5) {
      std::cout << "... (" << out.rows.size() << " rows total)\n";
    }
    std::cout << "PIM (one_xb): "
              << TablePrinter::fmt(units::ns_to_ms(out.stats.total_ns), 3)
              << " ms | MonetDB-like (pre-joined): "
              << TablePrinter::fmt(units::ns_to_ms(mnt.model_ns), 3)
              << " ms | results match: "
              << (out.rows.size() == mnt.rows.size() ? "yes" : "NO") << "\n\n";
  }
  return 0;
}
