// SSB analytics session on PIM: the paper's end-to-end flow.
//
// Generates the Star Schema Benchmark, pre-joins the star (Section III),
// registers the pre-joined relation with a bbpim::db::Database, and runs
// one query from each SSB query group through the session — the PIM backend
// next to the MonetDB-like columnar baseline — printing dictionary-decoded
// result rows and the simulated costs. A compact tour of deliverable (a)
// on the paper's own workload.
//
//   ./examples/ssb_report            (scale factor 0.05)
//   BBPIM_SF=0.2 ./examples/ssb_report
#include <cstdlib>
#include <iostream>

#include "common/table_printer.hpp"
#include "common/units.hpp"
#include "db/db.hpp"
#include "ssb/dbgen.hpp"
#include "ssb/queries.hpp"

int main() {
  using namespace bbpim;

  ssb::SsbConfig gen;
  gen.scale_factor = 0.05;
  if (const char* sf = std::getenv("BBPIM_SF")) gen.scale_factor = std::atof(sf);
  std::cout << "Generating SSB at sf=" << gen.scale_factor << "...\n";
  const ssb::SsbData data = ssb::generate(gen);

  db::Database database;
  const rel::Table& prejoined =
      database.register_table(ssb::prejoin_ssb(data));
  std::cout << "Pre-joined relation: " << prejoined.row_count()
            << " records x " << prejoined.schema().attribute_count()
            << " attributes = " << prejoined.schema().record_bits()
            << " bits/record (fits one 512-bit crossbar row)\n\n";

  db::Session session = database.connect();

  for (const char* id : {"1.1", "2.2", "3.2", "4.1"}) {
    const auto& q = ssb::query(id);
    std::cout << "=== SSB Q" << id << " ===\n" << q.sql << "\n";
    const db::PreparedStatement stmt = session.prepare(q.sql);
    const db::ResultSet pim = stmt.execute(db::BackendKind::kOneXb);
    const db::ResultSet mnt = stmt.execute(db::BackendKind::kColumnar);

    // Print up to five result rows, dictionary-decoded.
    TablePrinter t([&] {
      std::vector<std::string> headers;
      for (std::size_t c = 0; c < pim.column_count(); ++c) {
        headers.push_back(pim.column_name(c));
      }
      return headers;
    }());
    for (std::size_t i = 0; i < pim.row_count() && i < 5; ++i) {
      std::vector<std::string> cells;
      for (std::size_t c = 0; c < pim.column_count(); ++c) {
        cells.push_back(pim.text(i, c));
      }
      t.add_row(std::move(cells));
    }
    t.print(std::cout);
    if (pim.row_count() > 5) {
      std::cout << "... (" << pim.row_count() << " rows total)\n";
    }
    std::cout << "PIM (one_xb): "
              << TablePrinter::fmt(units::ns_to_ms(pim.stats().total_ns), 3)
              << " ms | MonetDB-like (pre-joined): "
              << TablePrinter::fmt(units::ns_to_ms(mnt.stats().total_ns), 3)
              << " ms | results match: "
              << (pim.row_count() == mnt.row_count() ? "yes" : "NO") << "\n\n";
  }
  return 0;
}
