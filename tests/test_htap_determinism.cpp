// Mixed-workload (HTAP) determinism: N reader threads + concurrent updaters
// through db::QueryService must be indistinguishable from a serial oracle
// that replays the same committed update order — same rows, same simulated
// stats per query, same final table contents — at any simulation thread
// count (the PR-3 guarantee extends to the write path).
//
// The writer gate makes every execution observe a log prefix; the prefix
// length rides on ResultSet::data_version. The oracle interleaves the same
// statements serially at those versions and compares field-by-field.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/db.hpp"
#include "engine_test_util.hpp"

namespace bbpim {
namespace {

db::LoadPolicy synthetic_policy() {
  db::LoadPolicy policy;
  policy.part_of = [](const std::string& name) {
    return name.rfind("f_", 0) == 0 ? 0 : 1;
  };
  return policy;
}

db::SessionOptions fast_options(std::uint32_t sim_threads) {
  db::SessionOptions opts;
  opts.pim = testutil::small_pim_config();
  opts.pim.crossbar_cols = 256;
  opts.host.sim_threads = sim_threads;
  return opts;
}

/// Byte-exact equality over every QueryStats field (determinism means
/// bit-identity, so doubles compare with ==).
void expect_stats_equal(const engine::QueryStats& a,
                        const engine::QueryStats& b, const std::string& what) {
  EXPECT_EQ(a.total_ns, b.total_ns) << what;
  EXPECT_EQ(a.phases.filter, b.phases.filter) << what;
  EXPECT_EQ(a.phases.transfer, b.phases.transfer) << what;
  EXPECT_EQ(a.phases.sample, b.phases.sample) << what;
  EXPECT_EQ(a.phases.plan, b.phases.plan) << what;
  EXPECT_EQ(a.phases.pim_gb, b.phases.pim_gb) << what;
  EXPECT_EQ(a.phases.host_gb, b.phases.host_gb) << what;
  EXPECT_EQ(a.phases.finalize, b.phases.finalize) << what;
  EXPECT_EQ(a.energy_j, b.energy_j) << what;
  EXPECT_EQ(a.peak_chip_w, b.peak_chip_w) << what;
  EXPECT_EQ(a.wear_row_writes, b.wear_row_writes) << what;
  EXPECT_EQ(a.selected_records, b.selected_records) << what;
  EXPECT_EQ(a.total_subgroups, b.total_subgroups) << what;
  EXPECT_EQ(a.pim_subgroups, b.pim_subgroups) << what;
  EXPECT_EQ(a.host_lines, b.host_lines) << what;
  EXPECT_EQ(a.pim_requests, b.pim_requests) << what;
}

void expect_update_stats_equal(const engine::UpdateStats& a,
                               const engine::UpdateStats& b,
                               const std::string& what) {
  EXPECT_EQ(a.total_ns, b.total_ns) << what;
  EXPECT_EQ(a.energy_j, b.energy_j) << what;
  EXPECT_EQ(a.energy_logic_j, b.energy_logic_j) << what;
  EXPECT_EQ(a.peak_chip_w, b.peak_chip_w) << what;
  EXPECT_EQ(a.wear_row_writes, b.wear_row_writes) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.updated_records, b.updated_records) << what;
  EXPECT_EQ(a.host_path_estimate_ns, b.host_path_estimate_ns) << what;
}

struct Submitted {
  std::string sql;
  bool is_update = false;
  std::future<db::ResultSet> future;
};

struct Completed {
  std::string sql;
  bool is_update = false;
  db::ResultSet result;
};

void run_mixed_workload_and_check(std::uint32_t sim_threads) {
  SCOPED_TRACE("sim_threads=" + std::to_string(sim_threads));
  const db::SessionOptions opts = fast_options(sim_threads);
  // One model cache across pool and oracle: sim_threads is excluded from
  // config fingerprints, so all runs share a single fitting campaign.
  static auto shared_models = std::make_shared<db::ModelCache>();

  db::Database database;
  database.register_table(testutil::make_synthetic_table(700, 123),
                          synthetic_policy());
  db::QueryServiceOptions service_opts;
  service_opts.workers = 4;
  service_opts.session = opts;
  service_opts.session.models = shared_models;
  db::QueryService service(database, service_opts);
  service.warm_up(db::BackendKind::kOneXb);

  // The mix: every 4th statement mutates; reads span ungrouped counts and
  // planner-driven grouped sums. Update values stay in-domain and in-part.
  const std::string reads[] = {
      "SELECT COUNT(*) FROM t WHERE d_tag = 2",
      "SELECT f_gid, SUM(f_val) FROM t GROUP BY f_gid ORDER BY f_gid",
      "SELECT COUNT(*) FROM t WHERE f_key < 2000",
      "SELECT SUM(f_val) FROM t WHERE d_tag >= 4",
  };
  const std::string updates[] = {
      "UPDATE t SET d_tag = 7 WHERE d_tag = 1",
      "UPDATE t SET f_val2 = 11 WHERE f_gid = 2",
      "UPDATE t SET d_tag = 1 WHERE d_tag = 6",
      "UPDATE t SET f_val2 = 3 WHERE f_val2 = 11",
      "UPDATE t SET d_tag = 5 WHERE d_tag = 7",
      "UPDATE t SET f_val2 = 30 WHERE f_gid = 0",
  };

  std::vector<Submitted> submitted;
  std::size_t u = 0, r = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    const bool is_update = i % 4 == 3;
    const std::string& sql =
        is_update ? updates[u++ % std::size(updates)]
                  : reads[r++ % std::size(reads)];
    submitted.push_back({sql, is_update, service.submit(sql)});
  }

  std::vector<Completed> completed;
  for (Submitted& s : submitted) {
    completed.push_back({s.sql, s.is_update, s.future.get()});
  }
  service.shutdown();

  // Recover the committed order from the update results' log positions.
  std::map<std::uint64_t, const Completed*> update_by_version;
  for (const Completed& c : completed) {
    if (c.is_update) {
      ASSERT_TRUE(c.result.is_update());
      ASSERT_GT(c.result.data_version(), 0u);
      ASSERT_TRUE(
          update_by_version.emplace(c.result.data_version(), &c).second)
          << "two updates committed at one version";
    }
  }
  // Reads sorted by the version they observed.
  std::vector<const Completed*> read_order;
  for (const Completed& c : completed) {
    if (!c.is_update) read_order.push_back(&c);
  }
  std::sort(read_order.begin(), read_order.end(),
            [](const Completed* a, const Completed* b) {
              return a->result.data_version() < b->result.data_version();
            });

  // Serial oracle: one session, one thread, replaying the committed order
  // and executing each read at the version it observed.
  db::Database oracle_db;
  oracle_db.register_table(testutil::make_synthetic_table(700, 123),
                           synthetic_policy());
  db::SessionOptions oracle_opts = opts;
  oracle_opts.models = shared_models;
  db::Session oracle(oracle_db, oracle_opts);

  std::uint64_t version = 0;
  std::size_t next_read = 0;
  const std::uint64_t final_version = update_by_version.size();
  while (version <= final_version) {
    while (next_read < read_order.size() &&
           read_order[next_read]->result.data_version() == version) {
      const Completed& c = *read_order[next_read++];
      const db::ResultSet serial =
          oracle.execute(c.sql, db::BackendKind::kOneXb);
      const std::string what =
          c.sql + " @v" + std::to_string(version);
      EXPECT_EQ(serial.rows(), c.result.rows()) << what;
      expect_stats_equal(serial.stats(), c.result.stats(), what);
    }
    if (version == final_version) break;
    const Completed& up = *update_by_version.at(version + 1);
    const db::ResultSet serial_up =
        oracle.execute(up.sql, db::BackendKind::kOneXb);
    EXPECT_EQ(serial_up.data_version(), version + 1);
    expect_update_stats_equal(serial_up.update_stats(),
                              up.result.update_stats(),
                              up.sql + " @v" + std::to_string(version + 1));
    ++version;
  }
  EXPECT_EQ(next_read, read_order.size());

  // Final table contents: a fresh session over the concurrent database
  // catches up to the full log; its store must match the oracle's.
  db::Session replayer(database, oracle_opts);
  replayer.execute("SELECT COUNT(*) FROM t", db::BackendKind::kOneXb);
  EXPECT_EQ(replayer.pim_engine(engine::EngineKind::kOneXb)
                .store()
                .contents_checksum(),
            oracle.pim_engine(engine::EngineKind::kOneXb)
                .store()
                .contents_checksum());
}

TEST(HtapDeterminism, MixedWorkloadMatchesSerialOracle1Thread) {
  run_mixed_workload_and_check(1);
}

TEST(HtapDeterminism, MixedWorkloadMatchesSerialOracle2Threads) {
  run_mixed_workload_and_check(2);
}

TEST(HtapDeterminism, MixedWorkloadMatchesSerialOracle8Threads) {
  run_mixed_workload_and_check(8);
}

}  // namespace
}  // namespace bbpim
