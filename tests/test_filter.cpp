// Tests for the filter compiler: WHERE conjunctions lowered to bulk-bitwise
// programs, checked against scalar evaluation on every record, including
// validity-bit handling on partial pages and per-part compilation.
#include <gtest/gtest.h>

#include "engine/filter_compiler.hpp"
#include "engine_test_util.hpp"
#include "pim/controller.hpp"

namespace bbpim::engine {
namespace {

using testutil::EngineFixture;

/// Executes a compiled filter on all pages and collects the result bits.
std::vector<bool> run_filter(PimStore& store, int part,
                             const CompiledFilter& f) {
  std::vector<bool> out;
  for (std::size_t p = 0; p < store.pages_per_part(); ++p) {
    pim::Page& page = store.page(part, p);
    for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
      page.crossbar(x).execute(f.program);
    }
    for (std::uint32_t i = 0; i < store.records_per_page(); ++i) {
      const auto c = page.locate(i);
      out.push_back(page.crossbar(c.crossbar).bit(c.row, f.result_col));
    }
  }
  return out;
}

bool scalar_matches(const rel::Table& t, std::size_t row,
                    const std::vector<sql::BoundPredicate>& filters) {
  for (const auto& p : filters) {
    if (p.kind == sql::BoundPredicate::Kind::kAlways) continue;
    if (!p.matches(t.value(row, p.attr))) return false;
  }
  return true;
}

TEST(FilterCompiler, ConjunctionMatchesScalar) {
  EngineFixture fx(EngineKind::kOneXb, 700, 21);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT SUM(f_val) FROM t WHERE f_key < 2000 AND f_gid BETWEEN 1 AND 3 "
      "AND f_val2 >= 10");
  pim::ColumnAlloc alloc = fx.store->layout(0).make_alloc();
  const CompiledFilter f = compile_filter(q.filters, fx.store->layout(0), alloc);
  EXPECT_EQ(f.predicate_count, 3u);
  EXPECT_FALSE(f.program.empty());

  const std::vector<bool> got = run_filter(*fx.store, 0, f);
  for (std::size_t r = 0; r < fx.table->row_count(); ++r) {
    ASSERT_EQ(got[r], scalar_matches(*fx.table, r, q.filters)) << "row " << r;
  }
  // Padding rows on the tail page must never pass (validity bit).
  for (std::size_t r = fx.table->row_count(); r < got.size(); ++r) {
    ASSERT_FALSE(got[r]) << "padding row " << r;
  }
  alloc.release(f.result_col);
  EXPECT_EQ(alloc.available(),
            static_cast<std::size_t>(fx.store->layout(0).scratch_cols()));
}

TEST(FilterCompiler, EmptyConjunctionIsValidityCopy) {
  EngineFixture fx(EngineKind::kOneXb, 300, 22);
  pim::ColumnAlloc alloc = fx.store->layout(0).make_alloc();
  const CompiledFilter f = compile_filter({}, fx.store->layout(0), alloc);
  EXPECT_EQ(f.predicate_count, 0u);
  const std::vector<bool> got = run_filter(*fx.store, 0, f);
  for (std::size_t r = 0; r < got.size(); ++r) {
    ASSERT_EQ(got[r], r < fx.table->row_count());
  }
}

TEST(FilterCompiler, NeverPredicateSelectsNothing) {
  EngineFixture fx(EngineKind::kOneXb, 300, 23);
  sql::BoundPredicate never;
  never.kind = sql::BoundPredicate::Kind::kNever;
  pim::ColumnAlloc alloc = fx.store->layout(0).make_alloc();
  const CompiledFilter f =
      compile_filter({never}, fx.store->layout(0), alloc);
  for (const bool b : run_filter(*fx.store, 0, f)) ASSERT_FALSE(b);
}

TEST(FilterCompiler, PerPartCompilationSkipsForeignAttrs) {
  EngineFixture fx(EngineKind::kTwoXb, 400, 24);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT SUM(f_val) FROM t WHERE f_key < 3000 AND d_tag = 2");
  // Part 0 sees only the f_key predicate; part 1 only the d_tag one.
  pim::ColumnAlloc a0 = fx.store->layout(0).make_alloc();
  pim::ColumnAlloc a1 = fx.store->layout(1).make_alloc();
  const CompiledFilter f0 = compile_filter(q.filters, fx.store->layout(0), a0);
  const CompiledFilter f1 = compile_filter(q.filters, fx.store->layout(1), a1);
  EXPECT_EQ(f0.predicate_count, 1u);
  EXPECT_EQ(f1.predicate_count, 1u);

  const std::vector<bool> g0 = run_filter(*fx.store, 0, f0);
  const std::vector<bool> g1 = run_filter(*fx.store, 1, f1);
  for (std::size_t r = 0; r < fx.table->row_count(); ++r) {
    ASSERT_EQ(g0[r] && g1[r], scalar_matches(*fx.table, r, q.filters));
  }
}

TEST(GroupMatch, EqualityOnKeyMatchesScalar) {
  EngineFixture fx(EngineKind::kOneXb, 300, 25);
  pim::ColumnAlloc alloc = fx.store->layout(0).make_alloc();
  const std::vector<std::size_t> attrs = {1, 4};  // f_gid, d_tag
  const std::vector<std::uint64_t> key = {2, 2};
  const CompiledFilter f =
      compile_group_match(attrs, key, fx.store->layout(0), alloc);
  EXPECT_EQ(f.predicate_count, 2u);
  const std::vector<bool> got = run_filter(*fx.store, 0, f);
  for (std::size_t r = 0; r < fx.table->row_count(); ++r) {
    const bool expect =
        fx.table->value(r, 1) == 2 && fx.table->value(r, 4) == 2;
    ASSERT_EQ(got[r], expect);
  }
}

}  // namespace
}  // namespace bbpim::engine
