// Tests for the filter compiler: WHERE conjunctions lowered to bulk-bitwise
// programs, checked against scalar evaluation on every record, including
// validity-bit handling on partial pages and per-part compilation.
#include <gtest/gtest.h>

#include "engine/filter_compiler.hpp"
#include "engine_test_util.hpp"
#include "pim/controller.hpp"

namespace bbpim::engine {
namespace {

using testutil::EngineFixture;

/// Executes a compiled filter on all pages and collects the result bits.
std::vector<bool> run_filter(PimStore& store, int part,
                             const CompiledFilter& f) {
  std::vector<bool> out;
  for (std::size_t p = 0; p < store.pages_per_part(); ++p) {
    pim::Page& page = store.page(part, p);
    for (std::uint32_t x = 0; x < page.crossbar_count(); ++x) {
      page.crossbar(x).execute(f.program);
    }
    for (std::uint32_t i = 0; i < store.records_per_page(); ++i) {
      const auto c = page.locate(i);
      out.push_back(page.crossbar(c.crossbar).bit(c.row, f.result_col));
    }
  }
  return out;
}

bool scalar_matches(const rel::Table& t, std::size_t row,
                    const std::vector<sql::BoundPredicate>& filters) {
  for (const auto& p : filters) {
    if (p.kind == sql::BoundPredicate::Kind::kAlways) continue;
    if (!p.matches(t.value(row, p.attr))) return false;
  }
  return true;
}

TEST(FilterCompiler, ConjunctionMatchesScalar) {
  EngineFixture fx(EngineKind::kOneXb, 700, 21);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT SUM(f_val) FROM t WHERE f_key < 2000 AND f_gid BETWEEN 1 AND 3 "
      "AND f_val2 >= 10");
  pim::ColumnAlloc alloc = fx.store->layout(0).make_alloc();
  const CompiledFilter f = compile_filter(q.filters, fx.store->layout(0), alloc);
  EXPECT_EQ(f.predicate_count, 3u);
  EXPECT_FALSE(f.program.empty());

  const std::vector<bool> got = run_filter(*fx.store, 0, f);
  for (std::size_t r = 0; r < fx.table->row_count(); ++r) {
    ASSERT_EQ(got[r], scalar_matches(*fx.table, r, q.filters)) << "row " << r;
  }
  // Padding rows on the tail page must never pass (validity bit).
  for (std::size_t r = fx.table->row_count(); r < got.size(); ++r) {
    ASSERT_FALSE(got[r]) << "padding row " << r;
  }
  alloc.release(f.result_col);
  EXPECT_EQ(alloc.available(),
            static_cast<std::size_t>(fx.store->layout(0).scratch_cols()));
}

TEST(FilterCompiler, EmptyConjunctionIsValidityCopy) {
  EngineFixture fx(EngineKind::kOneXb, 300, 22);
  pim::ColumnAlloc alloc = fx.store->layout(0).make_alloc();
  const CompiledFilter f = compile_filter({}, fx.store->layout(0), alloc);
  EXPECT_EQ(f.predicate_count, 0u);
  const std::vector<bool> got = run_filter(*fx.store, 0, f);
  for (std::size_t r = 0; r < got.size(); ++r) {
    ASSERT_EQ(got[r], r < fx.table->row_count());
  }
}

TEST(FilterCompiler, NeverPredicateSelectsNothing) {
  EngineFixture fx(EngineKind::kOneXb, 300, 23);
  sql::BoundPredicate never;
  never.kind = sql::BoundPredicate::Kind::kNever;
  pim::ColumnAlloc alloc = fx.store->layout(0).make_alloc();
  const CompiledFilter f =
      compile_filter({never}, fx.store->layout(0), alloc);
  for (const bool b : run_filter(*fx.store, 0, f)) ASSERT_FALSE(b);
}

TEST(FilterCompiler, PerPartCompilationSkipsForeignAttrs) {
  EngineFixture fx(EngineKind::kTwoXb, 400, 24);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT SUM(f_val) FROM t WHERE f_key < 3000 AND d_tag = 2");
  // Part 0 sees only the f_key predicate; part 1 only the d_tag one.
  pim::ColumnAlloc a0 = fx.store->layout(0).make_alloc();
  pim::ColumnAlloc a1 = fx.store->layout(1).make_alloc();
  const CompiledFilter f0 = compile_filter(q.filters, fx.store->layout(0), a0);
  const CompiledFilter f1 = compile_filter(q.filters, fx.store->layout(1), a1);
  EXPECT_EQ(f0.predicate_count, 1u);
  EXPECT_EQ(f1.predicate_count, 1u);

  const std::vector<bool> g0 = run_filter(*fx.store, 0, f0);
  const std::vector<bool> g1 = run_filter(*fx.store, 1, f1);
  for (std::size_t r = 0; r < fx.table->row_count(); ++r) {
    ASSERT_EQ(g0[r] && g1[r], scalar_matches(*fx.table, r, q.filters));
  }
}

TEST(FilterCompiler, WordProgramMatchesGateProgram) {
  // The word-level semantic twin must reproduce the gate program's result
  // column bit for bit, across every predicate kind and edge case.
  EngineFixture fx(EngineKind::kOneXb, 500, 29);
  const std::vector<std::string> wheres = {
      "f_key = 100",
      "f_key < 2000",
      "f_key <= 2000 AND f_gid >= 2",
      "f_gid > 3",
      "f_key BETWEEN 100 AND 3000",
      "f_gid IN (1, 3, 5)",
      "f_key = 999999",  // out of range -> never
      "f_key >= 0",      // always true on the domain
      "f_val2 < 50 AND d_tag = 2 AND f_gid BETWEEN 0 AND 9",
  };
  for (const std::string& where : wheres) {
    const sql::BoundQuery q =
        fx.bind_sql("SELECT SUM(f_val) FROM t WHERE " + where);
    pim::ColumnAlloc alloc = fx.store->layout(0).make_alloc();
    const CompiledFilter f = compile_filter(q.filters, fx.store->layout(0), alloc);
    for (std::uint32_t x = 0; x < 2; ++x) {
      pim::Crossbar gate = fx.store->page(0, 0).crossbar(x);
      pim::Crossbar word = gate;
      gate.execute(f.program);
      pim::execute_words(word, f.words);
      EXPECT_EQ(word.column(f.result_col), gate.column(f.result_col))
          << "WHERE " << where << " crossbar " << x;
    }
  }

  // Group matches too (the pim-gb hot path).
  pim::ColumnAlloc alloc = fx.store->layout(0).make_alloc();
  const CompiledFilter m = compile_group_match(
      {1, 4}, {2, 2}, fx.store->layout(0), alloc);
  pim::Crossbar gate = fx.store->page(0, 0).crossbar(0);
  pim::Crossbar word = gate;
  gate.execute(m.program);
  pim::execute_words(word, m.words);
  EXPECT_EQ(word.column(m.result_col), gate.column(m.result_col));
}

TEST(FilterCompiler, NeverPredicateOnForeignPartAttr) {
  // A statically-false predicate is compiled on every part (each part's
  // result column must be false), including parts that do not hold the
  // predicate's attribute — the field lookup must not be consulted.
  EngineFixture fx(EngineKind::kTwoXb, 300, 27);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT SUM(f_val) FROM t WHERE d_tag BETWEEN 5 AND 2");  // lo > hi
  const engine::QueryOutput out = fx.engine->execute(q);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0].agg, 0);
  EXPECT_EQ(out.stats.selected_records, 0u);
}

TEST(FilterCache, HitReplaysAllocatorEffectAndSkipsRecompile) {
  EngineFixture fx(EngineKind::kOneXb, 300, 23);
  const sql::BoundQuery q =
      fx.bind_sql("SELECT SUM(f_val) FROM t WHERE f_key < 1500 AND f_gid = 2");
  FilterCache cache;

  pim::ColumnAlloc a1 = fx.store->layout(0).make_alloc();
  const auto first = cache.get_or_compile(q.filters, 0, fx.store->layout(0), a1);
  EXPECT_EQ(cache.miss_count(), 1u);
  EXPECT_EQ(cache.hit_count(), 0u);

  // Same predicates against an identically fresh allocator: a hit that
  // leaves the allocator in the exact state a recompilation would have.
  pim::ColumnAlloc a2 = fx.store->layout(0).make_alloc();
  const auto second =
      cache.get_or_compile(q.filters, 0, fx.store->layout(0), a2);
  EXPECT_EQ(cache.hit_count(), 1u);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(a2.available(), a1.available());
  EXPECT_EQ(a2.state_fingerprint(), a1.state_fingerprint());
  // The result column is owned: releasing it restores a fresh allocator.
  a2.release(second->result_col);
  EXPECT_EQ(a2.state_fingerprint(),
            fx.store->layout(0).make_alloc().state_fingerprint());

  // A different allocator state (column taken up front) is a different key —
  // the cached program's scratch columns would be unsafe to replay there.
  pim::ColumnAlloc a3 = fx.store->layout(0).make_alloc();
  a3.alloc();
  const auto third = cache.get_or_compile(q.filters, 0, fx.store->layout(0), a3);
  EXPECT_EQ(cache.miss_count(), 2u);

  // Different predicates miss too.
  const sql::BoundQuery q2 =
      fx.bind_sql("SELECT SUM(f_val) FROM t WHERE f_key < 1501 AND f_gid = 2");
  pim::ColumnAlloc a4 = fx.store->layout(0).make_alloc();
  cache.get_or_compile(q2.filters, 0, fx.store->layout(0), a4);
  EXPECT_EQ(cache.miss_count(), 3u);

  // Cached and recompiled programs select identical records.
  const std::vector<bool> got = run_filter(*fx.store, 0, *second);
  for (std::size_t r = 0; r < fx.table->row_count(); ++r) {
    ASSERT_EQ(got[r], scalar_matches(*fx.table, r, q.filters));
  }
}

TEST(ColumnAlloc, AcquireMarksSpecificColumn) {
  pim::ColumnAlloc alloc(10, 20);
  alloc.acquire(14);
  EXPECT_THROW(alloc.acquire(14), std::logic_error);
  EXPECT_THROW(alloc.acquire(9), std::out_of_range);
  EXPECT_THROW(alloc.acquire(20), std::out_of_range);
  // First-fit allocation steps around the acquired column.
  for (std::uint16_t c = 10; c < 20; ++c) {
    if (c == 14) continue;
    EXPECT_EQ(alloc.alloc(), c);
  }
  EXPECT_THROW(alloc.alloc(), std::runtime_error);
  alloc.release(14);
  EXPECT_EQ(alloc.alloc(), 14);
}

TEST(GroupMatch, EqualityOnKeyMatchesScalar) {
  EngineFixture fx(EngineKind::kOneXb, 300, 25);
  pim::ColumnAlloc alloc = fx.store->layout(0).make_alloc();
  const std::vector<std::size_t> attrs = {1, 4};  // f_gid, d_tag
  const std::vector<std::uint64_t> key = {2, 2};
  const CompiledFilter f =
      compile_group_match(attrs, key, fx.store->layout(0), alloc);
  EXPECT_EQ(f.predicate_count, 2u);
  const std::vector<bool> got = run_filter(*fx.store, 0, f);
  for (std::size_t r = 0; r < fx.table->row_count(); ++r) {
    const bool expect =
        fx.table->value(r, 1) == 2 && fx.table->value(r, 4) == 2;
    ASSERT_EQ(got[r], expect);
  }
}

}  // namespace
}  // namespace bbpim::engine
