// Randomized query fuzzing: the strongest correctness net in the suite.
//
// Generates hundreds of random-but-valid queries (random predicate
// conjunctions over every comparison kind, random GROUP BY sets, random
// aggregate expressions and functions, random ORDER BY) against randomized
// synthetic relations, and checks every engine variant and every forced
// pim/host split against the scalar reference. Any divergence in the
// microcode builders, the layout, the aggregation passes, or the planner's
// bookkeeping shows up here.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/reference.hpp"
#include "engine/prejoin.hpp"
#include "engine_test_util.hpp"

namespace bbpim::engine {
namespace {

using baseline::scan_execute;

/// Builds a random BoundQuery directly (no SQL detour) over the synthetic
/// schema of engine_test_util.hpp:
///   0 f_key:12  1 f_gid:4  2 f_val:10  3 f_val2:6  4 d_tag:3
sql::BoundQuery random_query(Rng& rng) {
  sql::BoundQuery q;

  // --- WHERE: 0-3 random predicates --------------------------------------
  const std::size_t n_preds = rng.next_below(4);
  for (std::size_t i = 0; i < n_preds; ++i) {
    sql::BoundPredicate p;
    const std::size_t attr = rng.next_below(5);
    const std::uint32_t bits[] = {12, 4, 10, 6, 3};
    const std::uint64_t max = (1ULL << bits[attr]) - 1;
    p.attr = attr;
    switch (rng.next_below(7)) {
      case 0: p.kind = sql::BoundPredicate::Kind::kEq; break;
      case 1: p.kind = sql::BoundPredicate::Kind::kLt; break;
      case 2: p.kind = sql::BoundPredicate::Kind::kLe; break;
      case 3: p.kind = sql::BoundPredicate::Kind::kGt; break;
      case 4: p.kind = sql::BoundPredicate::Kind::kGe; break;
      case 5: p.kind = sql::BoundPredicate::Kind::kBetween; break;
      default: p.kind = sql::BoundPredicate::Kind::kIn; break;
    }
    p.v1 = rng.next_below(max + 1);
    if (p.kind == sql::BoundPredicate::Kind::kBetween) {
      p.v2 = rng.next_below(max + 1);
      if (p.v2 < p.v1) std::swap(p.v1, p.v2);
    }
    if (p.kind == sql::BoundPredicate::Kind::kIn) {
      const std::size_t n = 1 + rng.next_below(4);
      for (std::size_t j = 0; j < n; ++j) {
        p.in_values.push_back(rng.next_below(max + 1));
      }
      std::sort(p.in_values.begin(), p.in_values.end());
      p.in_values.erase(
          std::unique(p.in_values.begin(), p.in_values.end()),
          p.in_values.end());
    }
    q.filters.push_back(std::move(p));
  }

  // --- GROUP BY: subset of the low-cardinality attrs ----------------------
  if (rng.next_below(4) != 0) {  // 75% of queries group
    if (rng.next_below(2)) q.group_by.push_back(1);  // f_gid
    if (rng.next_below(2)) q.group_by.push_back(4);  // d_tag
    if (q.group_by.empty()) q.group_by.push_back(rng.next_below(2) ? 1 : 4);
  }

  // --- Aggregate -----------------------------------------------------------
  switch (rng.next_below(6)) {
    case 0:
      q.agg_func = sql::AggFunc::kCount;
      break;
    case 1:
      q.agg_func = sql::AggFunc::kMin;
      q.agg_expr = {sql::Expr::Kind::kColumn, 2, 0};
      break;
    case 2:
      q.agg_func = sql::AggFunc::kMax;
      q.agg_expr = {sql::Expr::Kind::kColumn, 2, 0};
      break;
    case 3:
      q.agg_func = sql::AggFunc::kSum;
      q.agg_expr = {sql::Expr::Kind::kMul, 2, 3};  // f_val * f_val2
      break;
    case 4:
      q.agg_func = sql::AggFunc::kSum;
      q.agg_expr = {sql::Expr::Kind::kSub, 2, 3};
      break;
    default:
      q.agg_func = sql::AggFunc::kSum;
      q.agg_expr = {sql::Expr::Kind::kColumn, 2, 0};
      break;
  }

  // --- ORDER BY -------------------------------------------------------------
  for (std::size_t g = 0; g < q.group_by.size(); ++g) {
    if (rng.next_below(2)) {
      q.order_by.push_back({false, g, rng.next_below(2) == 0});
    }
  }
  if (!q.group_by.empty() && rng.next_below(3) == 0) {
    q.order_by.push_back({true, 0, true});  // agg desc
  }
  return q;
}

std::string describe(const sql::BoundQuery& q) {
  std::ostringstream ss;
  ss << "filters=" << q.filters.size() << " group_by={";
  for (const std::size_t g : q.group_by) ss << g << ",";
  ss << "} agg=" << static_cast<int>(q.agg_func)
     << " expr_kind=" << static_cast<int>(q.agg_expr.kind);
  return ss.str();
}

class FuzzCase : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCase, AllEnginesMatchReference) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t rows = 300 + rng.next_below(700);

  for (const EngineKind kind : engine::kAllEngineKinds) {
    testutil::EngineFixture fx(kind, rows, seed);
    for (int qi = 0; qi < 6; ++qi) {
      const sql::BoundQuery q = random_query(rng);
      const auto ref = scan_execute(*fx.table, q);
      // Random forced split exercises pim-gb, host-gb, and mixed paths.
      ExecOptions opts;
      opts.force_k = rng.next_below(4) == 0
                         ? std::size_t{1000}  // clamp to kmax: pure pim
                         : rng.next_below(5);
      const QueryOutput out = fx.engine->execute(q, opts);
      ASSERT_EQ(out.rows.size(), ref.rows.size())
          << engine_kind_name(kind) << " seed=" << seed << " " << describe(q);
      for (std::size_t i = 0; i < out.rows.size(); ++i) {
        ASSERT_EQ(out.rows[i].group, ref.rows[i].group)
            << engine_kind_name(kind) << " seed=" << seed << " row=" << i
            << " " << describe(q);
        ASSERT_EQ(out.rows[i].agg, ref.rows[i].agg)
            << engine_kind_name(kind) << " seed=" << seed << " row=" << i
            << " " << describe(q);
      }
      ASSERT_EQ(out.stats.selected_records, ref.selected_records);

      // Zone-map pruning parity: same query, prune on — rows must be
      // byte-identical, result-semantic stats must match exactly, and when
      // the sketches found nothing to skip the cost stats must be
      // bit-identical too (pages that execute run the exact same programs).
      ExecOptions pruned = opts;
      pruned.prune = true;
      const QueryOutput pr = fx.engine->execute(q, pruned);
      ASSERT_EQ(pr.rows.size(), out.rows.size())
          << "prune " << engine_kind_name(kind) << " seed=" << seed << " "
          << describe(q);
      for (std::size_t i = 0; i < pr.rows.size(); ++i) {
        ASSERT_EQ(pr.rows[i].group, out.rows[i].group) << "prune row " << i;
        ASSERT_EQ(pr.rows[i].agg, out.rows[i].agg) << "prune row " << i;
      }
      ASSERT_EQ(pr.stats.selected_records, out.stats.selected_records);
      ASSERT_EQ(pr.stats.selectivity, out.stats.selectivity);
      ASSERT_EQ(pr.stats.total_subgroups, out.stats.total_subgroups);
      ASSERT_EQ(pr.stats.sampled_subgroups, out.stats.sampled_subgroups);
      ASSERT_EQ(pr.stats.pim_subgroups, out.stats.pim_subgroups);
      ASSERT_EQ(pr.stats.n_chunks, out.stats.n_chunks);
      ASSERT_EQ(pr.stats.s_chunks, out.stats.s_chunks);
      ASSERT_EQ(pr.stats.selectivity_estimate, out.stats.selectivity_estimate);
      ASSERT_EQ(pr.stats.candidates_complete, out.stats.candidates_complete);
      ASSERT_EQ(pr.stats.candidate_masses, out.stats.candidate_masses);
      ASSERT_LE(pr.stats.total_ns, out.stats.total_ns);
      ASSERT_LE(pr.stats.energy_j, out.stats.energy_j);
      ASSERT_LE(pr.stats.pim_requests, out.stats.pim_requests);
      if (pr.stats.pages_skipped == 0 && pr.stats.pages_synthesized == 0 &&
          pr.stats.group_pages_skipped == 0) {
        // Nothing pruned: every page executed, so every cost field is
        // bit-identical ("identical stats on the pages that execute").
        ASSERT_EQ(pr.stats.total_ns, out.stats.total_ns)
            << engine_kind_name(kind) << " seed=" << seed << " "
            << describe(q);
        ASSERT_EQ(pr.stats.energy_j, out.stats.energy_j);
        ASSERT_EQ(pr.stats.wear_row_writes, out.stats.wear_row_writes);
        ASSERT_EQ(pr.stats.peak_chip_w, out.stats.peak_chip_w);
        ASSERT_EQ(pr.stats.host_lines, out.stats.host_lines);
        ASSERT_EQ(pr.stats.pim_requests, out.stats.pim_requests);
      }
    }
  }
}

/// A fuzzed UPDATE-then-query sequence that a stale zone-map sketch would
/// fail: the update writes values the sketches previously refuted, so a
/// pruned re-run that skipped the rewritten pages would lose rows.
TEST_P(FuzzCase, PrunedQueriesStayExactAcrossUpdates) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 3);
  const std::size_t rows = 300 + rng.next_below(500);

  testutil::EngineFixture fx(EngineKind::kOneXb, rows, seed);
  for (int round = 0; round < 3; ++round) {
    // UPDATE f_val2 <- a fresh value on a random f_key range (same part).
    const std::uint64_t value = 50 + rng.next_below(14);  // 50..63: new codes
    sql::BoundPredicate where;
    where.kind = sql::BoundPredicate::Kind::kBetween;
    where.attr = 0;  // f_key
    where.v1 = rng.next_below(2048);
    where.v2 = where.v1 + 1024 + rng.next_below(1024);  // >= 1/4 of the domain
    {
      const auto lock = fx.store->lock_mutation();
      pim_update(*fx.store, fx.hcfg, {where}, /*attr=*/3, value);
    }

    // The query targets the updated value: stale sketches would skip the
    // rewritten crossbars and report too few rows.
    sql::BoundQuery q;
    sql::BoundPredicate eq;
    eq.kind = sql::BoundPredicate::Kind::kEq;
    eq.attr = 3;
    eq.v1 = value;
    q.filters.push_back(eq);
    q.agg_func = sql::AggFunc::kCount;

    ExecOptions off;
    ExecOptions on;
    on.prune = true;
    const QueryOutput a = fx.engine->execute(q, off);
    const QueryOutput b = fx.engine->execute(q, on);
    ASSERT_EQ(a.rows.size(), b.rows.size()) << "seed=" << seed;
    ASSERT_EQ(a.rows.at(0).agg, b.rows.at(0).agg)
        << "seed=" << seed << " round=" << round << " value=" << value;
    ASSERT_EQ(a.stats.selected_records, b.stats.selected_records);
    ASSERT_GT(b.stats.selected_records, 0u);  // the update really landed
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCase,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace bbpim::engine
