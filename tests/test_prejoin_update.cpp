// Tests for pre-joining (Section III) and the Algorithm-1 PIM UPDATE.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/prejoin.hpp"
#include "engine_test_util.hpp"

namespace bbpim::engine {
namespace {

rel::Table make_fact() {
  rel::Table t(rel::Schema({{"f_id", rel::DataType::kInt, 8, nullptr},
                            {"f_fk", rel::DataType::kInt, 4, nullptr},
                            {"f_val", rel::DataType::kInt, 10, nullptr}}),
               "fact");
  Rng rng(7);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t row[] = {i, 1 + rng.next_below(8), rng.next_below(1000)};
    t.append_row(row);
  }
  return t;
}

rel::Table make_dim() {
  auto dict = std::make_shared<const rel::Dictionary>(
      rel::Dictionary::from_values({"red", "green", "blue", "black", "white",
                                    "cyan", "pink", "grey"}));
  rel::Table t(rel::Schema({{"d_key", rel::DataType::kInt, 4, nullptr},
                            {"d_color", rel::DataType::kString, 3, dict},
                            {"d_score", rel::DataType::kInt, 6, nullptr},
                            {"d_note", rel::DataType::kInt, 5, nullptr}}),
               "dim");
  for (std::uint64_t k = 1; k <= 8; ++k) {
    const std::uint64_t row[] = {k, k - 1, k * 7 % 64, k};
    t.append_row(row);
  }
  return t;
}

TEST(Prejoin, JoinsOneToOneAndCarriesAttrs) {
  const rel::Table fact = make_fact();
  const rel::Table dim = make_dim();
  const DimensionSpec specs[] = {{&dim, "f_fk", "d_key", {"d_note"}}};
  const rel::Table joined = prejoin(fact, specs);

  // Same cardinality as the fact side; fk kept, dim key and excluded
  // attributes dropped.
  EXPECT_EQ(joined.row_count(), fact.row_count());
  EXPECT_EQ(joined.schema().attribute_count(), 5u);  // 3 fact + color + score
  EXPECT_TRUE(joined.schema().index_of("f_fk").has_value());
  EXPECT_FALSE(joined.schema().index_of("d_key").has_value());
  EXPECT_FALSE(joined.schema().index_of("d_note").has_value());

  const std::size_t color = *joined.schema().index_of("d_color");
  const std::size_t score = *joined.schema().index_of("d_score");
  for (std::size_t r = 0; r < joined.row_count(); ++r) {
    const std::uint64_t fk = fact.value(r, 1);
    EXPECT_EQ(joined.value(r, color), dim.value(fk - 1, 1));
    EXPECT_EQ(joined.value(r, score), dim.value(fk - 1, 2));
  }
}

TEST(Prejoin, DanglingKeyAndDuplicatesRejected) {
  rel::Table fact = make_fact();
  const std::uint64_t bad[] = {200, 15, 3};  // fk 15 has no dimension row
  fact.append_row(bad);
  const rel::Table dim = make_dim();
  const DimensionSpec specs[] = {{&dim, "f_fk", "d_key", {}}};
  EXPECT_THROW(prejoin(fact, specs), std::runtime_error);

  rel::Table dup = make_dim();
  const std::uint64_t dup_row[] = {3, 0, 0, 0};
  dup.append_row(dup_row);
  const DimensionSpec specs2[] = {{&dup, "f_fk", "d_key", {}}};
  EXPECT_THROW(prejoin(make_fact(), specs2), std::invalid_argument);
}

TEST(PimUpdate, Algorithm1UpdatesSelectedRowsOnly) {
  testutil::EngineFixture fx(engine::EngineKind::kOneXb, 700, 61);
  // UPDATE t SET d_tag = 6 WHERE d_tag = 2 (a duplicated dimension value).
  const sql::BoundQuery q =
      fx.bind_sql("SELECT SUM(f_val) FROM t WHERE d_tag = 2");
  std::size_t expected_updates = 0;
  for (std::size_t r = 0; r < fx.table->row_count(); ++r) {
    expected_updates += fx.table->value(r, 4) == 2;
  }

  const UpdateStats stats = [&] {
    const auto lock = fx.store->lock_mutation();
    return pim_update(*fx.store, fx.hcfg, q.filters, 4, 6);
  }();
  EXPECT_EQ(stats.updated_records, expected_updates);
  EXPECT_EQ(stats.host_lines_read, 0u);  // the whole point of Algorithm 1
  EXPECT_GT(stats.total_ns, 0.0);
  EXPECT_GT(stats.energy_j, 0.0);
  // Algorithm 1 is pure in-array logic: all dynamic energy is MAGIC cycles
  // (plus controllers), never host-side column writes.
  EXPECT_GT(stats.energy_logic_j, 0.0);
  EXPECT_EQ(stats.energy_write_j, 0.0);
  EXPECT_GT(stats.energy_controller_j, 0.0);
  EXPECT_GT(stats.peak_chip_w, 0.0);
  EXPECT_GT(stats.wear_row_writes, 0u);
  EXPECT_GT(stats.host_path_estimate_ns, 0.0);
  EXPECT_EQ(fx.store->data_version(), 1u);  // one mutation noted

  // Functional verification: old value gone, new value where expected.
  for (std::size_t r = 0; r < fx.table->row_count(); ++r) {
    const std::uint64_t before = fx.table->value(r, 4);
    const std::uint64_t after = fx.store->read_attr(r, 4);
    EXPECT_EQ(after, before == 2 ? 6u : before) << "row " << r;
  }
}

TEST(PimUpdate, ValueOverflowAndCrossPartRejected) {
  testutil::EngineFixture fx(engine::EngineKind::kOneXb, 300, 62);
  {
    const auto lock = fx.store->lock_mutation();
    EXPECT_THROW(pim_update(*fx.store, fx.hcfg, {}, 4, 8),  // 3-bit attr
                 std::invalid_argument);
  }

  testutil::EngineFixture two(engine::EngineKind::kTwoXb, 300, 62);
  const sql::BoundQuery q = two.bind_sql(
      "SELECT SUM(f_val) FROM t WHERE f_key < 100");  // predicate on part 0
  {
    const auto lock = two.store->lock_mutation();
    EXPECT_THROW(pim_update(*two.store, two.hcfg, q.filters, 4, 1),  // on 1
                 std::invalid_argument);
  }
}

TEST(PimUpdate, UndecodableDictionaryCodeRejected) {
  // d_color's dictionary has 8 values (codes 0..7) packed into 3 bits; a
  // dictionary of 6 would accept code 7 by raw width alone. Shrink the
  // domain to expose the gap between field width and encoding.
  auto dict = std::make_shared<const rel::Dictionary>(
      rel::Dictionary::from_values({"red", "green", "blue", "black", "white",
                                    "cyan"}));
  rel::Table t(rel::Schema({{"key", rel::DataType::kInt, 8, nullptr},
                            {"color", rel::DataType::kString, 3, dict}}),
               "paints");
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t row[] = {i, i % 6};
    t.append_row(row);
  }
  pim::PimModule module(testutil::small_pim_config());
  engine::PimStore store(module, t);
  const host::HostConfig hcfg;
  const auto lock = store.lock_mutation();
  // Codes 6 and 7 fit the 3-bit field but decode to nothing.
  EXPECT_THROW(pim_update(store, hcfg, {}, 1, 6), std::invalid_argument);
  EXPECT_THROW(pim_update(store, hcfg, {}, 1, 7), std::invalid_argument);
  // A valid code is accepted.
  const UpdateStats st = pim_update(store, hcfg, {}, 1, 5);
  EXPECT_EQ(st.updated_records, 64u);
}

TEST(PimUpdate, NoMatchIsNoOp) {
  testutil::EngineFixture fx(engine::EngineKind::kOneXb, 300, 63);
  sql::BoundPredicate never;
  never.kind = sql::BoundPredicate::Kind::kNever;
  const auto lock = fx.store->lock_mutation();
  const UpdateStats stats = pim_update(*fx.store, fx.hcfg, {never}, 4, 5);
  EXPECT_EQ(stats.updated_records, 0u);
  EXPECT_EQ(fx.store->data_version(), 0u);  // nothing changed, caches warm
  for (std::size_t r = 0; r < fx.table->row_count(); ++r) {
    EXPECT_EQ(fx.store->read_attr(r, 4), fx.table->value(r, 4));
  }
}

TEST(PimUpdate, MutationRefreshesDistinctStats) {
  testutil::EngineFixture fx(engine::EngineKind::kOneXb, 400, 64);
  // d_tag holds gid % 7, so 7 never occurs and fits the 3-bit field.
  const auto& before = fx.store->distinct_values(4);
  ASSERT_TRUE(before.has_value());
  EXPECT_TRUE(std::find(before->begin(), before->end(), 7u) == before->end());

  const sql::BoundQuery q = fx.bind_sql("SELECT SUM(f_val) FROM t WHERE d_tag = 2");
  {
    const auto lock = fx.store->lock_mutation();
    pim_update(*fx.store, fx.hcfg, q.filters, 4, 7);
  }
  const auto& after = fx.store->distinct_values(4);
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(std::find(after->begin(), after->end(), 7u) != after->end());
  EXPECT_TRUE(std::find(after->begin(), after->end(), 2u) == after->end());
  EXPECT_GE(fx.store->filter_cache().invalidation_count(), 1u);
}

}  // namespace
}  // namespace bbpim::engine
