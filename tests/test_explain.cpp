// Tests for the EXPLAIN facility and the micro-program disassembler.
#include <gtest/gtest.h>

#include <sstream>

#include "engine/explain.hpp"
#include "engine_test_util.hpp"

namespace bbpim::engine {
namespace {

TEST(Disassemble, RendersEveryOpKind) {
  pim::MicroProgram prog = {
      pim::MicroOp::init1(200),
      pim::MicroOp::nor_op(3, 7, 200),
      pim::MicroOp::init0(201),
      pim::MicroOp::not_op(200, 201),
  };
  std::ostringstream os;
  disassemble(prog, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("INIT1"), std::string::npos);
  EXPECT_NE(s.find("INIT0"), std::string::npos);
  EXPECT_NE(s.find("NOR"), std::string::npos);
  EXPECT_NE(s.find("NOT"), std::string::npos);
  EXPECT_NE(s.find("-> c200"), std::string::npos);
  EXPECT_NE(s.find("-> c201"), std::string::npos);
  // One line per op.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Explain, OneXbPlanMentionsEverything) {
  testutil::EngineFixture fx(EngineKind::kOneXb, 300, 90);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT f_gid, SUM(f_val * f_val2) AS x FROM t "
      "WHERE f_key BETWEEN 100 AND 3000 AND d_tag IN (1, 2) "
      "GROUP BY f_gid ORDER BY f_gid");
  const std::string plan = explain_query(q, *fx.store);
  EXPECT_NE(plan.find("one-xb"), std::string::npos);
  EXPECT_NE(plan.find("FILTER part 0: 2 predicate(s)"), std::string::npos);
  EXPECT_NE(plan.find("100 <= f_key <= 3000"), std::string::npos);
  EXPECT_NE(plan.find("d_tag IN {1,2}"), std::string::npos);
  EXPECT_NE(plan.find("masked passes"), std::string::npos);
  EXPECT_NE(plan.find("GROUP BY: f_gid"), std::string::npos);
  EXPECT_NE(plan.find("Equation 3"), std::string::npos);
  EXPECT_EQ(plan.find("TRANSFER"), std::string::npos);  // one part
}

TEST(Explain, TwoXbPlanShowsTransferAndParts) {
  testutil::EngineFixture fx(EngineKind::kTwoXb, 300, 91);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT d_tag, SUM(f_val) AS s FROM t WHERE f_key < 1000 AND d_tag > 1 "
      "GROUP BY d_tag");
  const std::string plan = explain_query(q, *fx.store);
  EXPECT_NE(plan.find("two-xb"), std::string::npos);
  EXPECT_NE(plan.find("FILTER part 0: 1 predicate(s)"), std::string::npos);
  EXPECT_NE(plan.find("FILTER part 1: 1 predicate(s)"), std::string::npos);
  EXPECT_NE(plan.find("TRANSFER"), std::string::npos);
  EXPECT_NE(plan.find("d_tag(part 1)"), std::string::npos);
}

TEST(Explain, NoGroupByAndLinearity) {
  testutil::EngineFixture fx(EngineKind::kOneXb, 300, 92);
  const sql::BoundQuery q =
      fx.bind_sql("SELECT SUM(f_val - f_val2) AS d FROM t");
  const std::string plan = explain_query(q, *fx.store);
  EXPECT_NE(plan.find("2 passes by linearity"), std::string::npos);
  EXPECT_NE(plan.find("NO GROUP BY"), std::string::npos);
}

TEST(Explain, CountAndMin) {
  testutil::EngineFixture fx(EngineKind::kOneXb, 300, 93);
  const std::string count_plan = explain_query(
      fx.bind_sql("SELECT COUNT(*) AS c FROM t WHERE f_key < 10"), *fx.store);
  EXPECT_NE(count_plan.find("COUNT via SUM of the select column"),
            std::string::npos);
  const std::string min_plan = explain_query(
      fx.bind_sql("SELECT f_gid, MIN(f_val) AS m FROM t GROUP BY f_gid"),
      *fx.store);
  EXPECT_NE(min_plan.find("MIN(f_val): 1 circuit pass"), std::string::npos);
}

}  // namespace
}  // namespace bbpim::engine
