// Tests for the relational substrate: order-preserving dictionaries,
// schemas, and column-major tables.
#include <gtest/gtest.h>

#include <memory>

#include "relational/dictionary.hpp"
#include "relational/schema.hpp"
#include "relational/table.hpp"

namespace bbpim::rel {
namespace {

TEST(Dictionary, OrderPreservingCodes) {
  Dictionary d = Dictionary::from_values({"banana", "apple", "cherry", "apple"});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(*d.code("apple"), 0u);
  EXPECT_EQ(*d.code("banana"), 1u);
  EXPECT_EQ(*d.code("cherry"), 2u);
  EXPECT_FALSE(d.code("durian").has_value());
  EXPECT_EQ(d.value(1), "banana");
  EXPECT_THROW(d.value(3), std::out_of_range);
}

TEST(Dictionary, RangeBounds) {
  Dictionary d = Dictionary::from_values({"b", "d", "f"});
  EXPECT_EQ(d.code_lower_bound("a"), 0u);
  EXPECT_EQ(d.code_lower_bound("b"), 0u);
  EXPECT_EQ(d.code_lower_bound("c"), 1u);
  EXPECT_EQ(d.code_lower_bound("g"), 3u);
  EXPECT_EQ(d.code_upper_bound("b"), 1u);
  EXPECT_EQ(d.code_upper_bound("e"), 2u);
  EXPECT_EQ(d.code_upper_bound("a"), 0u);
}

TEST(Dictionary, CodeBits) {
  EXPECT_EQ(Dictionary::from_values({"a"}).code_bits(), 1u);
  EXPECT_EQ(Dictionary::from_values({"a", "b"}).code_bits(), 1u);
  EXPECT_EQ(Dictionary::from_values({"a", "b", "c"}).code_bits(), 2u);
  std::vector<std::string> many;
  for (int i = 0; i < 257; ++i) many.push_back("v" + std::to_string(i));
  EXPECT_EQ(Dictionary::from_values(many).code_bits(), 9u);
}

TEST(SchemaTest, ValidationAndLookup) {
  auto dict = std::make_shared<const Dictionary>(
      Dictionary::from_values({"x", "y"}));
  Schema s({{"a", DataType::kInt, 8, nullptr},
            {"b", DataType::kString, 1, dict}});
  EXPECT_EQ(s.attribute_count(), 2u);
  EXPECT_EQ(*s.index_of("b"), 1u);
  EXPECT_FALSE(s.index_of("zzz").has_value());
  EXPECT_EQ(s.record_bits(), 9u);

  EXPECT_THROW(Schema({{"a", DataType::kInt, 0, nullptr}}),
               std::invalid_argument);
  EXPECT_THROW(Schema({{"a", DataType::kString, 4, nullptr}}),
               std::invalid_argument);
  EXPECT_THROW(Schema({{"a", DataType::kInt, 4, nullptr},
                       {"a", DataType::kInt, 4, nullptr}}),
               std::invalid_argument);
}

TEST(SchemaTest, BitsForMax) {
  EXPECT_EQ(bits_for_max(0), 1u);
  EXPECT_EQ(bits_for_max(1), 1u);
  EXPECT_EQ(bits_for_max(2), 2u);
  EXPECT_EQ(bits_for_max(255), 8u);
  EXPECT_EQ(bits_for_max(256), 9u);
}

TEST(TableTest, AppendAndAccess) {
  auto dict = std::make_shared<const Dictionary>(
      Dictionary::from_values({"hi", "lo"}));
  Table t(Schema({{"k", DataType::kInt, 10, nullptr},
                  {"s", DataType::kString, 1, dict}}),
          "demo");
  const std::uint64_t r0[] = {5, 0};
  const std::uint64_t r1[] = {1023, 1};
  t.append_row(r0);
  t.append_row(r1);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.value(1, 0), 1023u);
  EXPECT_EQ(t.display(0, 1), "hi");
  EXPECT_EQ(t.display(1, 0), "1023");
  EXPECT_EQ(t.column(0).size(), 2u);

  const std::uint64_t overflow[] = {1024, 0};
  EXPECT_THROW(t.append_row(overflow), std::invalid_argument);
  const std::uint64_t wrong_arity[] = {1};
  EXPECT_THROW(t.append_row(wrong_arity), std::invalid_argument);
}

}  // namespace
}  // namespace bbpim::rel
