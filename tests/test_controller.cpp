// Tests for the page controller (macro requests + cost traces), the module
// (allocation, wear, line geometry), the power tracker, and the host-side
// request scheduler.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "host/pipeline.hpp"
#include "pim/controller.hpp"
#include "pim/module.hpp"
#include "pim/trackers.hpp"

namespace bbpim {
namespace {

using pim::EnergyCat;
using pim::EnergyMeter;
using pim::PimConfig;
using pim::PimModule;
using pim::PowerTracker;
using pim::RequestTrace;

PimConfig small_config() {
  PimConfig cfg;
  cfg.crossbar_rows = 64;
  cfg.crossbar_cols = 64;
  cfg.crossbars_per_page = 4;
  cfg.capacity_bytes = 1ULL << 26;
  return cfg;
}

TEST(PimModule, AllocationAndCapacity) {
  PimConfig cfg = small_config();
  PimModule m(cfg);
  EXPECT_EQ(m.page_count(), 0u);
  const std::size_t base = m.allocate_pages(3);
  EXPECT_EQ(base, 0u);
  EXPECT_EQ(m.page_count(), 3u);
  EXPECT_EQ(m.allocate_pages(2), 3u);
  EXPECT_EQ(m.page(4).id(), 4u);
  // Exceeding capacity throws.
  const std::size_t max_pages = cfg.capacity_bytes / cfg.page_bytes();
  EXPECT_THROW(m.allocate_pages(max_pages), std::runtime_error);
}

TEST(PimModule, RecordFieldRoundTripAndWear) {
  PimModule m(small_config());
  m.allocate_pages(2);
  const pim::Field f{10, 12};
  m.write_record_field(1, 70, f, 0xABC);  // record 70 -> crossbar 1, row 6
  EXPECT_EQ(m.read_record_field(1, 70, f), 0xABCu);
  EXPECT_GT(m.max_row_writes(), 0u);
  m.reset_wear();
  EXPECT_EQ(m.max_row_writes(), 0u);
}

TEST(Controller, ExecuteProgramCostsAndRuns) {
  const PimConfig cfg = small_config();
  PimModule m(cfg);
  m.allocate_pages(1);
  pim::MicroProgram prog = {pim::MicroOp::init1(20),
                            pim::MicroOp::nor_op(0, 1, 20),
                            pim::MicroOp::init1(21),
                            pim::MicroOp::not_op(20, 21)};
  EnergyMeter meter;
  const RequestTrace t = pim::execute_program(m.page(0), prog, cfg, &meter);
  EXPECT_EQ(t.cls, pim::RequestClass::kLogic);
  EXPECT_DOUBLE_EQ(t.duration_ns, 4 * cfg.logic_cycle_ns);
  EXPECT_GT(meter.of(EnergyCat::kLogic), 0.0);
  EXPECT_GT(meter.of(EnergyCat::kController), 0.0);
  EXPECT_NEAR(t.energy_j,
              meter.of(EnergyCat::kLogic) + meter.of(EnergyCat::kController),
              1e-18);
  // Functional effect happened on every crossbar.
  for (std::uint32_t x = 0; x < m.page(0).crossbar_count(); ++x) {
    EXPECT_EQ(m.page(0).crossbar(x).uniform_row_writes(), 4u);
  }
}

TEST(Controller, LogicTraceCostMatchesExecute) {
  const PimConfig cfg = small_config();
  const RequestTrace t = pim::logic_trace_cost(cfg, 10, 4);
  EXPECT_DOUBLE_EQ(t.duration_ns, 10 * cfg.logic_cycle_ns);
  EXPECT_GT(t.avg_power_w, 0.0);
}

TEST(Controller, BitColumnRoundTripThroughHost) {
  const PimConfig cfg = small_config();
  PimModule m(cfg);
  m.allocate_pages(2);
  Rng rng(5);
  BitVec bits(m.page(0).records());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits.set(i, rng.next_double() < 0.3);
  }
  EnergyMeter meter;
  const RequestTrace w =
      pim::write_bit_column(m.page(0), 33, bits, 50.0, cfg, &meter);
  EXPECT_EQ(w.cls, pim::RequestClass::kColumnWrite);
  EXPECT_GT(meter.of(EnergyCat::kWrite), 0.0);

  BitVec out;
  const RequestTrace r =
      pim::read_bit_column(m.page(0), 33, 50.0, cfg, &meter, &out);
  EXPECT_EQ(r.cls, pim::RequestClass::kColumnRead);
  EXPECT_EQ(out, bits);
  // Reading a bit column costs one line per page row.
  EXPECT_DOUBLE_EQ(r.duration_ns, cfg.crossbar_rows * 50.0);
}

TEST(PowerTracker, PeakIsWorstOverlap) {
  PowerTracker t;
  t.add_interval(0, 10, 2.0);
  t.add_interval(5, 15, 3.0);
  t.add_interval(12, 20, 1.0);
  EXPECT_DOUBLE_EQ(t.peak_module_w(), 5.0);
  // Touching intervals don't stack: removal processed before insertion.
  PowerTracker t2;
  t2.add_interval(0, 10, 4.0);
  t2.add_interval(10, 20, 4.0);
  EXPECT_DOUBLE_EQ(t2.peak_module_w(), 4.0);
  EXPECT_THROW(t2.add_interval(5, 1, 1.0), std::invalid_argument);
}

TEST(Scheduler, UnboundedWindowPipelines) {
  // 8 requests of 100 ns across 4 threads (2 each), issue gap 10 ns:
  // per thread: last issued at 10 ns, done at 110 ns.
  std::vector<RequestTrace> traces(8);
  for (auto& t : traces) {
    t.duration_ns = 100;
    t.avg_power_w = 1.0;
  }
  host::ScheduleParams p;
  p.threads = 4;
  p.window = 0;
  p.issue_gap_ns = 10;
  PowerTracker tracker;
  const TimeNs end = host::schedule_requests(traces, p, 0.0, &tracker);
  EXPECT_DOUBLE_EQ(end, 110.0);
  // All 8 overlap around t=50: peak 8 W.
  EXPECT_DOUBLE_EQ(tracker.peak_module_w(), 8.0);
}

TEST(Scheduler, WindowSerializesAndCapsPower) {
  std::vector<RequestTrace> traces(4);
  for (auto& t : traces) {
    t.duration_ns = 100;
    t.avg_power_w = 1.0;
  }
  host::ScheduleParams p;
  p.threads = 1;
  p.window = 1;  // fully serial
  p.issue_gap_ns = 0;
  PowerTracker tracker;
  const TimeNs end = host::schedule_requests(traces, p, 0.0, &tracker);
  EXPECT_DOUBLE_EQ(end, 400.0);
  EXPECT_DOUBLE_EQ(tracker.peak_module_w(), 1.0);
}

TEST(Scheduler, PhaseStartOffsetsEverything) {
  std::vector<RequestTrace> traces(1);
  traces[0].duration_ns = 50;
  host::ScheduleParams p;
  p.threads = 4;
  const TimeNs end = host::schedule_requests(traces, p, 1000.0, nullptr);
  EXPECT_DOUBLE_EQ(end, 1050.0);
  EXPECT_DOUBLE_EQ(host::schedule_requests({}, p, 7.0, nullptr), 7.0);
}

TEST(EnergyMeterTest, CategoriesAndReset) {
  EnergyMeter m;
  m.add(EnergyCat::kLogic, 1.0);
  m.add(EnergyCat::kRead, 0.5);
  EXPECT_DOUBLE_EQ(m.total(), 1.5);
  EXPECT_DOUBLE_EQ(m.of(EnergyCat::kLogic), 1.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.total(), 0.0);
}

}  // namespace
}  // namespace bbpim
