// Property tests for the host-side models (scheduler, unique-line read
// set), the parametric area model, and the PIMDB bit-serial cost phases.
#include <gtest/gtest.h>

#include "host/pipeline.hpp"
#include "host/read_set.hpp"
#include "pim/area_model.hpp"
#include "pimdb/bitserial.hpp"

namespace bbpim {
namespace {

// ---------------------------------------------------------------------------
// Scheduler properties
// ---------------------------------------------------------------------------

std::vector<pim::RequestTrace> uniform_traces(std::size_t n, double dur) {
  std::vector<pim::RequestTrace> t(n);
  for (auto& x : t) {
    x.duration_ns = dur;
    x.avg_power_w = 1.0;
  }
  return t;
}

TEST(SchedulerProps, DeeperWindowNeverSlower) {
  const auto traces = uniform_traces(64, 500);
  host::ScheduleParams p;
  p.threads = 4;
  p.issue_gap_ns = 100;
  double prev = 1e18;
  for (const std::uint32_t w : {1u, 2u, 4u, 8u, 16u, 0u}) {
    p.window = w;
    const TimeNs end = host::schedule_requests(traces, p, 0, nullptr);
    EXPECT_LE(end, prev) << "window " << w;
    prev = end;
  }
}

TEST(SchedulerProps, MoreThreadsNeverSlower) {
  const auto traces = uniform_traces(63, 700);
  host::ScheduleParams p;
  p.window = 2;
  p.issue_gap_ns = 50;
  double prev = 1e18;
  for (const std::uint32_t th : {1u, 2u, 4u, 8u}) {
    p.threads = th;
    const TimeNs end = host::schedule_requests(traces, p, 0, nullptr);
    EXPECT_LE(end, prev) << "threads " << th;
    prev = end;
  }
}

TEST(SchedulerProps, LatencyLinearInPagesWhenUnbounded) {
  // The Fig. 4 premise: phase latency grows linearly with the page count.
  host::ScheduleParams p;
  p.threads = 4;
  p.window = 0;
  p.issue_gap_ns = 100;
  const TimeNs t1 = host::schedule_requests(uniform_traces(40, 300), p, 0,
                                            nullptr);
  const TimeNs t2 = host::schedule_requests(uniform_traces(80, 300), p, 0,
                                            nullptr);
  const TimeNs t3 = host::schedule_requests(uniform_traces(160, 300), p, 0,
                                            nullptr);
  EXPECT_NEAR(t3 - t2, 2 * (t2 - t1), 1e-6);
}

// ---------------------------------------------------------------------------
// ReadSet: dedup and the read-amplification-sharing effect
// ---------------------------------------------------------------------------

TEST(ReadSetProps, DedupesLines) {
  host::ReadSet rs(4);
  rs.touch(0, 10, 3);
  rs.touch(0, 10, 3);  // same line
  rs.touch(0, 10, 4);
  rs.touch(1, 10, 3);
  EXPECT_EQ(rs.unique_lines(), 3u);
  EXPECT_EQ(rs.per_page_lines()[0], 2u);
  EXPECT_EQ(rs.per_page_lines()[1], 1u);
  EXPECT_THROW(rs.touch(9, 0, 0), std::out_of_range);
}

TEST(ReadSetProps, SharingIsSublinear) {
  // Two records in the same page row share their lines; records in
  // different rows don't. This is the concavity behind the a*sqrt(r)+b fit.
  host::ReadSet shared(1), spread(1);
  for (std::uint32_t rec = 0; rec < 16; ++rec) {
    shared.touch(0, /*row=*/5, /*chunk=*/0);      // all in one row
    spread.touch(0, /*row=*/rec, /*chunk=*/0);    // one per row
  }
  EXPECT_EQ(shared.unique_lines(), 1u);
  EXPECT_EQ(spread.unique_lines(), 16u);
}

TEST(ReadSetProps, PhaseTimeUsesWorstThread) {
  host::HostConfig cfg;
  cfg.threads = 2;
  cfg.line_random_ns = 100;
  host::ReadSet rs(4);  // pages 0,1 -> thread 0; 2,3 -> thread 1
  rs.touch(0, 0, 0);
  rs.touch(0, 1, 0);
  rs.touch(0, 2, 0);
  rs.touch(3, 0, 0);
  EXPECT_DOUBLE_EQ(rs.phase_time_ns(cfg), 300.0);  // thread 0 has 3 lines
}

// ---------------------------------------------------------------------------
// Area model parametrics
// ---------------------------------------------------------------------------

TEST(AreaModelProps, ComponentsSumToTotal) {
  const pim::PimConfig cfg;
  const pim::AreaBreakdown b = pim::compute_area(cfg);
  double sum = 0, pct = 0;
  for (const auto& c : b.components) {
    sum += c.area_mm2;
    pct += c.percent;
  }
  EXPECT_NEAR(sum, b.chip_total_mm2, 1e-9);
  EXPECT_NEAR(pct, 100.0, 1e-9);
  EXPECT_NEAR(b.module_total_mm2, b.chip_total_mm2 * cfg.chips, 1e-9);
}

TEST(AreaModelProps, ScalesWithCapacityAndAblatesAlu) {
  pim::PimConfig cfg;
  const pim::AreaBreakdown full = pim::compute_area(cfg);
  pim::PimConfig half = cfg;
  half.capacity_bytes = cfg.capacity_bytes / 2;
  const pim::AreaBreakdown small = pim::compute_area(half);
  EXPECT_LT(small.chip_total_mm2, full.chip_total_mm2);

  pim::AreaParams no_alu;
  no_alu.include_agg_circuit = false;
  const pim::AreaBreakdown pimdb_chip = pim::compute_area(cfg, no_alu);
  EXPECT_LT(pimdb_chip.chip_total_mm2, full.chip_total_mm2);
  for (const auto& c : pimdb_chip.components) {
    if (c.name == "Aggregation circuits") EXPECT_DOUBLE_EQ(c.area_mm2, 0.0);
  }
}

TEST(AreaModelProps, MatchesPaperBreakdown) {
  const pim::AreaBreakdown b = pim::compute_area(pim::PimConfig{});
  EXPECT_NEAR(b.chip_total_mm2, 346.0, 2.0);
  for (const auto& c : b.components) {
    if (c.name == "Aggregation circuits") EXPECT_NEAR(c.percent, 13.9, 0.2);
    if (c.name == "Crossbars") EXPECT_NEAR(c.percent, 19.24, 0.2);
    if (c.name == "PIM controllers") EXPECT_NEAR(c.percent, 6.84, 0.2);
  }
}

// ---------------------------------------------------------------------------
// PIMDB bit-serial cost structure
// ---------------------------------------------------------------------------

TEST(BitSerialProps, PhasesSumAndGrow) {
  const auto phases = pimdb::bitserial_agg_phases(16, 1024, pim::AggOp::kSum);
  EXPECT_EQ(phases.size(), 11u);  // mask + log2(1024) levels
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    sum += phases[i];
    if (i >= 2) EXPECT_GE(phases[i], phases[i - 1]);  // SUM widths grow
  }
  EXPECT_EQ(sum, pimdb::bitserial_agg_cycles(16, 1024, pim::AggOp::kSum));
}

TEST(BitSerialProps, SumCostsMoreThanMinAtWidth) {
  // The adder chain is pricier than compare+select per level.
  EXPECT_GT(pimdb::bitserial_agg_cycles(32, 1024, pim::AggOp::kSum),
            pimdb::bitserial_agg_cycles(32, 1024, pim::AggOp::kMin));
}

TEST(BitSerialProps, MonotoneInWidthAndRows) {
  EXPECT_GT(pimdb::bitserial_agg_cycles(32, 1024, pim::AggOp::kSum),
            pimdb::bitserial_agg_cycles(16, 1024, pim::AggOp::kSum));
  EXPECT_GT(pimdb::bitserial_agg_cycles(16, 1024, pim::AggOp::kSum),
            pimdb::bitserial_agg_cycles(16, 256, pim::AggOp::kSum));
}

TEST(BitSerialProps, DwarfsTheAggregationCircuit) {
  // The paper's whole point: the circuit replaces thousands of bulk cycles
  // with ~1k serial reads.
  const pim::PimConfig cfg;
  const double bit_serial_ns =
      pimdb::bitserial_agg_duration_ns(16, 1024, pim::AggOp::kSum, cfg);
  const double circuit_ns = (1024 * 1 + 64) * cfg.read_cycle_ns;
  EXPECT_GT(bit_serial_ns, 5 * circuit_ns);
}

TEST(BitSerialProps, Validation) {
  EXPECT_THROW(pimdb::bitserial_agg_phases(0, 1024, pim::AggOp::kSum),
               std::invalid_argument);
  EXPECT_THROW(pimdb::bitserial_agg_phases(16, 1000, pim::AggOp::kSum),
               std::invalid_argument);  // not a power of two
}

}  // namespace
}  // namespace bbpim
