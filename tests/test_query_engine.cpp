// End-to-end correctness of the PIM query executor.
//
// Every engine variant (one-xb, two-xb, pimdb) must produce exactly the
// reference executor's rows for every query shape — no-group-by, group-by
// with any forced pim/host split (k = 0, 1, all), SUM over columns,
// products, differences, COUNT, MIN, MAX. Cost accounting sanity (positive
// phase times, energy categories, wear) is asserted alongside.
#include <gtest/gtest.h>

#include "baseline/reference.hpp"
#include "engine_test_util.hpp"

namespace bbpim::engine {
namespace {

using baseline::scan_execute;
using testutil::EngineFixture;

void expect_same_rows(const std::vector<ResultRow>& got,
                      const std::vector<ResultRow>& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].group, want[i].group) << what << " row " << i;
    EXPECT_EQ(got[i].agg, want[i].agg) << what << " row " << i;
  }
}

struct EngineCase {
  EngineKind kind;
  std::size_t force_k;
};

class AllEnginesAllSplits : public ::testing::TestWithParam<EngineCase> {};

TEST_P(AllEnginesAllSplits, GroupByMatchesReference) {
  const auto [kind, force_k] = GetParam();
  EngineFixture fx(kind, 900, 31);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT f_gid, SUM(f_val) AS total FROM t WHERE f_key < 2048 "
      "GROUP BY f_gid ORDER BY f_gid");
  ExecOptions opts;
  opts.force_k = force_k;
  const QueryOutput out = fx.engine->execute(q, opts);
  const auto ref = scan_execute(*fx.table, q);
  expect_same_rows(out.rows, ref.rows,
                   std::string(engine_kind_name(kind)) + " k=" +
                       std::to_string(force_k));
  EXPECT_EQ(out.stats.selected_records, ref.selected_records);
  EXPECT_EQ(out.stats.pim_subgroups, std::min(force_k, out.stats.total_subgroups));
}

INSTANTIATE_TEST_SUITE_P(
    Splits, AllEnginesAllSplits,
    ::testing::Values(EngineCase{EngineKind::kOneXb, 0},
                      EngineCase{EngineKind::kOneXb, 1},
                      EngineCase{EngineKind::kOneXb, 3},
                      EngineCase{EngineKind::kOneXb, 100},
                      EngineCase{EngineKind::kTwoXb, 0},
                      EngineCase{EngineKind::kTwoXb, 2},
                      EngineCase{EngineKind::kTwoXb, 100},
                      EngineCase{EngineKind::kPimdb, 0},
                      EngineCase{EngineKind::kPimdb, 2},
                      EngineCase{EngineKind::kPimdb, 100}));

TEST(QueryEngine, NoGroupBySumProduct) {
  // SUM(a*b) exercises the per-multiplier-bit decomposition passes.
  for (const EngineKind kind :
       {EngineKind::kOneXb, EngineKind::kTwoXb, EngineKind::kPimdb}) {
    EngineFixture fx(kind, 700, 32);
    const sql::BoundQuery q = fx.bind_sql(
        "SELECT SUM(f_val * f_val2) AS x FROM t WHERE f_gid BETWEEN 1 AND 5");
    const QueryOutput out = fx.engine->execute(q);
    const auto ref = scan_execute(*fx.table, q);
    expect_same_rows(out.rows, ref.rows, engine_kind_name(kind));
  }
}

TEST(QueryEngine, NoGroupByDifference) {
  EngineFixture fx(EngineKind::kOneXb, 500, 33);
  // f_val - f_val2 can go negative per record; SUM must still be exact.
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT SUM(f_val - f_val2) AS x FROM t WHERE f_key >= 100");
  const QueryOutput out = fx.engine->execute(q);
  expect_same_rows(out.rows, scan_execute(*fx.table, q).rows, "sub");
}

TEST(QueryEngine, GroupByProductDecompositionWithGroups) {
  EngineFixture fx(EngineKind::kOneXb, 800, 34);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT f_gid, SUM(f_val * f_val2) AS x FROM t WHERE f_key < 3000 "
      "GROUP BY f_gid ORDER BY f_gid");
  for (const std::size_t k : {std::size_t{0}, std::size_t{2}, std::size_t{100}}) {
    ExecOptions opts;
    opts.force_k = k;
    const QueryOutput out = fx.engine->execute(q, opts);
    expect_same_rows(out.rows, scan_execute(*fx.table, q).rows,
                     "mul k=" + std::to_string(k));
  }
}

TEST(QueryEngine, CountMinMax) {
  EngineFixture fx(EngineKind::kOneXb, 600, 35);
  {
    const sql::BoundQuery q = fx.bind_sql(
        "SELECT f_gid, COUNT(*) AS c FROM t WHERE f_val < 600 "
        "GROUP BY f_gid ORDER BY f_gid");
    ExecOptions opts;
    opts.force_k = 2;
    expect_same_rows(fx.engine->execute(q, opts).rows,
                     scan_execute(*fx.table, q).rows, "count");
  }
  {
    const sql::BoundQuery q = fx.bind_sql(
        "SELECT f_gid, MIN(f_val) AS m FROM t WHERE f_key < 3500 "
        "GROUP BY f_gid ORDER BY f_gid");
    ExecOptions opts;
    opts.force_k = 100;
    expect_same_rows(fx.engine->execute(q, opts).rows,
                     scan_execute(*fx.table, q).rows, "min");
  }
  {
    const sql::BoundQuery q = fx.bind_sql(
        "SELECT f_gid, MAX(f_val) AS m FROM t GROUP BY f_gid ORDER BY f_gid");
    ExecOptions opts;
    opts.force_k = 0;
    expect_same_rows(fx.engine->execute(q, opts).rows,
                     scan_execute(*fx.table, q).rows, "max");
  }
}

TEST(QueryEngine, EmptySelection) {
  EngineFixture fx(EngineKind::kOneXb, 400, 36);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT f_gid, SUM(f_val) AS s FROM t WHERE f_key < 0 "
      "GROUP BY f_gid ORDER BY f_gid");
  ExecOptions opts;
  opts.force_k = 0;
  const QueryOutput out = fx.engine->execute(q, opts);
  EXPECT_TRUE(out.rows.empty());
  EXPECT_EQ(out.stats.selected_records, 0u);

  const sql::BoundQuery q2 =
      fx.bind_sql("SELECT SUM(f_val) AS s FROM t WHERE f_key < 0");
  const QueryOutput out2 = fx.engine->execute(q2);
  ASSERT_EQ(out2.rows.size(), 1u);  // no-group-by always yields one row
  EXPECT_EQ(out2.rows[0].agg, 0);
}

TEST(QueryEngine, OrderByAggDescending) {
  EngineFixture fx(EngineKind::kOneXb, 800, 37);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT f_gid, d_tag, SUM(f_val) AS s FROM t WHERE f_key < 3000 "
      "GROUP BY f_gid, d_tag ORDER BY d_tag ASC, s DESC");
  ExecOptions opts;
  opts.force_k = 0;
  const QueryOutput out = fx.engine->execute(q, opts);
  expect_same_rows(out.rows, scan_execute(*fx.table, q).rows, "order");
  for (std::size_t i = 1; i < out.rows.size(); ++i) {
    const auto& a = out.rows[i - 1];
    const auto& b = out.rows[i];
    ASSERT_LE(a.group[1], b.group[1]);
    if (a.group[1] == b.group[1]) ASSERT_GE(a.agg, b.agg);
  }
}

TEST(QueryEngine, AccountingSanity) {
  EngineFixture fx(EngineKind::kOneXb, 900, 38);
  const sql::BoundQuery q = fx.bind_sql(
      "SELECT f_gid, SUM(f_val) AS s FROM t WHERE f_key < 2048 "
      "GROUP BY f_gid ORDER BY f_gid");
  ExecOptions opts;
  opts.force_k = 2;
  const QueryOutput out = fx.engine->execute(q, opts);
  const QueryStats& st = out.stats;
  EXPECT_GT(st.total_ns, 0.0);
  EXPECT_NEAR(st.total_ns, st.phases.total(), 1e-6);
  EXPECT_GT(st.phases.filter, 0.0);
  EXPECT_GT(st.phases.sample, 0.0);
  EXPECT_GT(st.phases.pim_gb, 0.0);
  EXPECT_GT(st.phases.host_gb, 0.0);
  EXPECT_GT(st.energy_j, 0.0);
  EXPECT_GT(st.energy_logic_j, 0.0);
  EXPECT_GT(st.energy_read_j, 0.0);
  EXPECT_NEAR(st.energy_j,
              st.energy_logic_j + st.energy_read_j + st.energy_write_j +
                  st.energy_controller_j + st.energy_agg_circuit_j,
              st.energy_j * 1e-9);
  EXPECT_GT(st.peak_chip_w, 0.0);
  EXPECT_GT(st.wear_row_writes, 0u);
  EXPECT_GT(st.pim_requests, 0u);
  EXPECT_GT(st.host_lines, 0u);
  EXPECT_NEAR(st.selectivity,
              static_cast<double>(st.selected_records) / 900.0, 1e-12);
}

TEST(QueryEngine, PimdbCostsMoreThanCircuit) {
  // Same query, same forced split: the bit-serial baseline must burn more
  // aggregation time, energy, and wear than the aggregation circuit.
  const sql::BoundQuery* q_ptr = nullptr;
  QueryStats one, pimdb;
  {
    EngineFixture fx(EngineKind::kOneXb, 900, 39);
    const sql::BoundQuery q = fx.bind_sql(
        "SELECT f_gid, SUM(f_val) AS s FROM t GROUP BY f_gid ORDER BY f_gid");
    (void)q_ptr;
    ExecOptions opts;
    opts.force_k = 5;
    opts.skip_host_gb = true;
    one = fx.engine->execute(q, opts).stats;
  }
  {
    EngineFixture fx(EngineKind::kPimdb, 900, 39);
    const sql::BoundQuery q = fx.bind_sql(
        "SELECT f_gid, SUM(f_val) AS s FROM t GROUP BY f_gid ORDER BY f_gid");
    ExecOptions opts;
    opts.force_k = 5;
    opts.skip_host_gb = true;
    pimdb = fx.engine->execute(q, opts).stats;
  }
  EXPECT_GT(pimdb.phases.pim_gb, one.phases.pim_gb);
  EXPECT_GT(pimdb.energy_logic_j, one.energy_logic_j);
  EXPECT_GT(pimdb.wear_row_writes, one.wear_row_writes);
}

TEST(QueryEngine, TwoXbPaysTransferOverhead) {
  QueryStats one, two;
  {
    EngineFixture fx(EngineKind::kOneXb, 900, 40);
    const sql::BoundQuery q = fx.bind_sql(
        "SELECT d_tag, SUM(f_val) AS s FROM t WHERE f_key < 2048 "
        "GROUP BY d_tag ORDER BY d_tag");
    ExecOptions opts;
    opts.force_k = 2;
    one = fx.engine->execute(q, opts).stats;
  }
  {
    EngineFixture fx(EngineKind::kTwoXb, 900, 40);
    const sql::BoundQuery q = fx.bind_sql(
        "SELECT d_tag, SUM(f_val) AS s FROM t WHERE f_key < 2048 "
        "GROUP BY d_tag ORDER BY d_tag");
    ExecOptions opts;
    opts.force_k = 2;
    two = fx.engine->execute(q, opts).stats;
  }
  EXPECT_DOUBLE_EQ(one.phases.transfer, 0.0);
  EXPECT_GT(two.phases.transfer, 0.0);
  EXPECT_GT(two.total_ns, one.total_ns);
}

TEST(QueryEngine, MismatchedStoreKindRejected) {
  pim::PimConfig cfg = testutil::small_pim_config();
  pim::PimModule module(cfg);
  const rel::Table t = testutil::make_synthetic_table(100, 41);
  PimStore one_part(module, t);
  EXPECT_THROW(PimQueryEngine(EngineKind::kTwoXb, one_part, host::HostConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bbpim::engine
