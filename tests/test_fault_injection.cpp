// Deterministic fault injection across every named seam: a transient fault
// is retried by the service within its budget and the caller still gets the
// exact rows; an exhausted budget surfaces the typed TransientFault; a
// fatal fault surfaces immediately with zero retries; and a fault striking
// one member of a fused shared-scan batch never disturbs its batchmates'
// rows or semantic stats (the fused pass falls back to solo execution and
// says so via batch_fallbacks). Seeded injectors make every firing pattern
// reproducible. Run under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "db/db.hpp"
#include "engine/cancel.hpp"
#include "engine/fault_injector.hpp"
#include "engine_test_util.hpp"

namespace bbpim {
namespace {

db::LoadPolicy synthetic_policy() {
  db::LoadPolicy policy;
  policy.part_of = [](const std::string& name) {
    return name.rfind("f_", 0) == 0 ? 0 : 1;
  };
  return policy;
}

db::SessionOptions fast_options() {
  db::SessionOptions opts;
  opts.pim = testutil::small_pim_config();
  opts.pim.crossbar_cols = 256;
  opts.verbose = false;
  return opts;
}

db::QueryServiceOptions service_options() {
  db::QueryServiceOptions opts;
  opts.workers = 1;
  opts.session = fast_options();
  opts.retry.max_retries = 2;
  opts.retry.backoff_base_us = 100;  // keep retried tests fast
  return opts;
}

void expect_rows_equal(const db::ResultSet& got, const db::ResultSet& want,
                       const std::string& what) {
  ASSERT_EQ(got.row_count(), want.row_count()) << what;
  ASSERT_EQ(got.column_count(), want.column_count()) << what;
  for (std::size_t r = 0; r < got.row_count(); ++r) {
    for (std::size_t c = 0; c < got.column_count(); ++c) {
      EXPECT_EQ(got.code(r, c), want.code(r, c))
          << what << " row " << r << " col " << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Injector mechanics
// ---------------------------------------------------------------------------

TEST(FaultInjector, NthAndEveryCountingIsExact) {
  engine::FaultInjector fi;
  engine::FaultRule rule;
  rule.nth = 2;
  rule.every = 3;  // fires on traversals 2, 5, 8, ...
  fi.arm(engine::FaultSeam::kCrossbarVisit, rule);

  std::vector<std::size_t> fired_at;
  for (std::size_t i = 1; i <= 9; ++i) {
    try {
      fi.traverse(engine::FaultSeam::kCrossbarVisit);
    } catch (const engine::InjectedFault&) {
      fired_at.push_back(i);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<std::size_t>{2, 5, 8}));
  EXPECT_EQ(fi.traversals(engine::FaultSeam::kCrossbarVisit), 9u);
  EXPECT_EQ(fi.fired(engine::FaultSeam::kCrossbarVisit), 3u);
  // Other seams were never touched.
  EXPECT_EQ(fi.traversals(engine::FaultSeam::kReadback), 0u);
}

TEST(FaultInjector, ProbabilisticFiringIsSeedDeterministic) {
  const auto pattern = [](std::uint64_t seed) {
    engine::FaultInjector fi(seed);
    engine::FaultRule rule;
    rule.probability = 0.3;
    fi.arm(engine::FaultSeam::kReadback, rule);
    std::vector<bool> fired;
    for (std::size_t i = 0; i < 64; ++i) {
      try {
        fi.traverse(engine::FaultSeam::kReadback);
        fired.push_back(false);
      } catch (const engine::InjectedFault&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  const std::vector<bool> a = pattern(42);
  EXPECT_EQ(a, pattern(42)) << "same seed, same firing pattern";
  EXPECT_NE(a, pattern(43)) << "different seed, different pattern";
  EXPECT_NE(a, std::vector<bool>(64, false)) << "p=0.3 over 64 draws fired";
}

TEST(FaultInjector, StallOnlyRuleNeverThrows) {
  engine::FaultInjector fi;
  engine::FaultRule rule;
  rule.stall_us = 10;  // slow-device model: delays, never fails
  fi.arm(engine::FaultSeam::kSnapshotPin, rule);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NO_THROW(fi.traverse(engine::FaultSeam::kSnapshotPin));
  }
  EXPECT_EQ(fi.fired(engine::FaultSeam::kSnapshotPin), 0u);
}

TEST(FaultInjector, UninstalledSeamsAreInert) {
  // No ScopedFaultInjection anywhere: production seams are free no-ops.
  EXPECT_NO_THROW(engine::fault_point(engine::FaultSeam::kPlanBind));
  EXPECT_NO_THROW(engine::fault_point(engine::FaultSeam::kUpdateCommit));
}

// ---------------------------------------------------------------------------
// Every seam, end to end through the service's retry loop
// ---------------------------------------------------------------------------

struct SeamCase {
  engine::FaultSeam seam;
  const char* sql;
  bool is_update;
  bool force_k0;  ///< route the grouped query through host-gb readback
};

const SeamCase kSeamCases[] = {
    {engine::FaultSeam::kPlanBind,
     "SELECT SUM(f_val) AS s FROM synthetic WHERE f_key < 1024", false, false},
    {engine::FaultSeam::kSnapshotPin,
     "SELECT SUM(f_val) AS s FROM synthetic WHERE f_key < 1024", false, false},
    {engine::FaultSeam::kCrossbarVisit,
     "SELECT COUNT(*) FROM synthetic WHERE f_key < 2048", false, false},
    {engine::FaultSeam::kReadback,
     "SELECT f_gid, SUM(f_val) AS s FROM synthetic "
     "WHERE f_key < 2048 GROUP BY f_gid ORDER BY s DESC",
     false, true},
    {engine::FaultSeam::kUpdateCommit,
     "UPDATE synthetic SET f_val = 7 WHERE f_key < 256", true, false},
};

TEST(FaultInjection, TransientFaultAtEverySeamRetriesToTheExactAnswer) {
  for (const SeamCase& c : kSeamCases) {
    SCOPED_TRACE(engine::fault_seam_name(c.seam));
    engine::ExecOptions eopts;
    if (c.force_k0) eopts.force_k = 0;

    // The oracle: the same statement on an identical database, no faults.
    db::Database reference_db;
    reference_db.register_table(testutil::make_synthetic_table(400, 13),
                                synthetic_policy());
    db::Session reference(reference_db, fast_options());
    const db::ResultSet want = reference.execute(c.sql, eopts);

    db::Database database;
    database.register_table(testutil::make_synthetic_table(400, 13),
                            synthetic_policy());
    db::QueryService service(database, service_options());

    engine::FaultInjector fi;
    engine::FaultRule rule;
    rule.nth = 1;  // first traversal fails, the retry's traversal succeeds
    fi.arm(c.seam, rule);
    engine::ScopedFaultInjection scope(fi);

    const db::ResultSet got = service.submit(c.sql, eopts).get();
    EXPECT_GE(fi.fired(c.seam), 1u);
    EXPECT_GE(service.counters().retries, 1u);
    if (c.is_update) {
      EXPECT_EQ(got.updated_records(), want.updated_records());
      EXPECT_EQ(got.data_version(), 1u)
          << "retried update must commit exactly once";
    } else {
      expect_rows_equal(got, want, c.sql);
    }
  }
}

TEST(FaultInjection, ExhaustedRetryBudgetSurfacesTransientFault) {
  db::Database database;
  database.register_table(testutil::make_synthetic_table(400, 13),
                          synthetic_policy());
  db::QueryService service(database, service_options());

  engine::FaultInjector fi;
  engine::FaultRule rule;
  rule.nth = 1;
  rule.every = 1;  // every traversal fails: no retry can ever succeed
  fi.arm(engine::FaultSeam::kCrossbarVisit, rule);
  engine::ScopedFaultInjection scope(fi);

  std::future<db::ResultSet> f =
      service.submit("SELECT COUNT(*) FROM synthetic WHERE f_key < 1024");
  EXPECT_THROW(f.get(), engine::TransientFault);
  EXPECT_EQ(service.counters().retries, service_options().retry.max_retries);
}

TEST(FaultInjection, FatalFaultSurfacesImmediatelyWithoutRetry) {
  db::Database database;
  database.register_table(testutil::make_synthetic_table(400, 13),
                          synthetic_policy());
  db::QueryService service(database, service_options());

  engine::FaultInjector fi;
  engine::FaultRule rule;
  rule.nth = 1;
  rule.transient = false;
  fi.arm(engine::FaultSeam::kCrossbarVisit, rule);
  engine::ScopedFaultInjection scope(fi);

  std::future<db::ResultSet> f =
      service.submit("SELECT COUNT(*) FROM synthetic WHERE f_key < 1024");
  EXPECT_THROW(f.get(), engine::InjectedFatalFault);
  EXPECT_EQ(service.counters().retries, 0u);
  EXPECT_EQ(fi.fired(engine::FaultSeam::kCrossbarVisit), 1u);

  // The worker survived: the pool keeps serving after the fatal statement.
  const db::ResultSet rs =
      service.submit("SELECT COUNT(*) FROM synthetic WHERE f_key < 1024")
          .get();
  EXPECT_EQ(rs.row_count(), 1u);
}

// ---------------------------------------------------------------------------
// Batch-member isolation under injected faults
// ---------------------------------------------------------------------------

TEST(FaultInjection, FusedBatchMemberFaultNeverCorruptsBatchmates) {
  const std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM synthetic WHERE f_key < 512",
      "SELECT SUM(f_val) AS s FROM synthetic WHERE f_key < 1024",
      "SELECT SUM(f_val2) AS s FROM synthetic WHERE f_gid < 4",
  };

  db::Database reference_db;
  reference_db.register_table(testutil::make_synthetic_table(400, 13),
                              synthetic_policy());
  db::Session reference(reference_db, fast_options());
  std::vector<db::ResultSet> want;
  for (const std::string& sql : sqls) want.push_back(reference.execute(sql));

  db::Database database;
  database.register_table(testutil::make_synthetic_table(400, 13),
                          synthetic_policy());
  db::Session session(database, fast_options());
  // Bind the plans and build the executor before arming: the fault must
  // strike the fused filter pass itself, not the front end.
  session.execute(sqls[0]);

  engine::FaultInjector fi;
  engine::FaultRule rule;
  rule.nth = 1;  // first fused crossbar visit dies; the solo reruns are clean
  fi.arm(engine::FaultSeam::kCrossbarVisit, rule);
  engine::ScopedFaultInjection scope(fi);

  std::vector<db::Session::BatchItem> items = session.execute_batch(sqls);
  ASSERT_EQ(items.size(), sqls.size());
  EXPECT_EQ(fi.fired(engine::FaultSeam::kCrossbarVisit), 1u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(items[i].error == nullptr) << sqls[i];
    expect_rows_equal(items[i].result, want[i], sqls[i]);
    // Every member was served by the fused pass' solo fallback — and the
    // result says so.
    EXPECT_EQ(items[i].result.batch_fallbacks(), 1u) << sqls[i];
  }
}

}  // namespace
}  // namespace bbpim
