// Tests for the per-crossbar aggregation circuit (Fig. 3): functional
// SUM/MIN/MAX with select masking, count reporting, result write-back, and
// the read/write cost accounting.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pim/agg_circuit.hpp"
#include "pim/config.hpp"
#include "pim/crossbar.hpp"

namespace bbpim::pim {
namespace {

class AggCircuitTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kRows = 256;
  PimConfig cfg_;
  Crossbar xb_{kRows, 128};
  Field value_{0, 20};
  std::uint16_t select_ = 64;
  Field result_{80, 30};
  Field count_{112, 9};

  std::vector<std::uint64_t> populate(double select_ratio, Rng& rng) {
    std::vector<std::uint64_t> selected;
    for (std::uint32_t r = 0; r < kRows; ++r) {
      const std::uint64_t v = rng.next_below(1ULL << 20);
      xb_.write_row_bits(r, value_.offset, value_.width, v);
      const bool sel = rng.next_double() < select_ratio;
      xb_.set_bit(r, select_, sel);
      if (sel) selected.push_back(v);
    }
    return selected;
  }
};

TEST_F(AggCircuitTest, SumMatchesScalarAndWritesBack) {
  Rng rng(1);
  const auto selected = populate(0.4, rng);
  std::uint64_t expected = 0;
  for (const std::uint64_t v : selected) expected += v;

  AggCircuitCost cost;
  const std::uint64_t got = run_agg_circuit(
      xb_, value_, select_, AggOp::kSum, result_, 0, cfg_, &cost, &count_);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(xb_.read_row_bits(0, result_.offset, result_.width),
            expected & ((1ULL << 30) - 1));
  EXPECT_EQ(xb_.read_row_bits(0, count_.offset, count_.width),
            selected.size());
}

TEST_F(AggCircuitTest, MinMaxMatchScalar) {
  Rng rng(2);
  const auto selected = populate(0.3, rng);
  ASSERT_FALSE(selected.empty());
  std::uint64_t mn = ~0ULL, mx = 0;
  for (const std::uint64_t v : selected) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_EQ(run_agg_circuit(xb_, value_, select_, AggOp::kMin, result_, 0,
                            cfg_, nullptr),
            mn);
  EXPECT_EQ(run_agg_circuit(xb_, value_, select_, AggOp::kMax, result_, 0,
                            cfg_, nullptr),
            mx);
}

TEST_F(AggCircuitTest, EmptySelectionSentinels) {
  Rng rng(3);
  populate(0.0, rng);
  std::uint64_t count = 77;
  EXPECT_EQ(compute_aggregate(xb_, value_, select_, AggOp::kSum, &count), 0u);
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(compute_aggregate(xb_, value_, select_, AggOp::kMin, nullptr),
            (1ULL << 20) - 1);
  EXPECT_EQ(compute_aggregate(xb_, value_, select_, AggOp::kMax, nullptr), 0u);
}

TEST_F(AggCircuitTest, CostModelCountsReads) {
  Rng rng(4);
  populate(0.5, rng);
  AggCircuitCost cost;
  run_agg_circuit(xb_, value_, select_, AggOp::kSum, result_, 0, cfg_, &cost);
  // value spans 2 chunks (bits 0..19); select column = rows/16 reads.
  EXPECT_EQ(cost.value_reads, kRows * 2);
  EXPECT_EQ(cost.select_reads, kRows / cfg_.read_bits);
  EXPECT_EQ(cost.result_writes, chunk_span(result_, cfg_));
  EXPECT_GT(cost.duration_ns, 0.0);
  EXPECT_GT(cost.energy_j, 0.0);

  // Adding the count output costs extra result chunks.
  AggCircuitCost cost2;
  run_agg_circuit(xb_, value_, select_, AggOp::kSum, result_, 0, cfg_, &cost2,
                  &count_);
  EXPECT_GT(cost2.result_writes, cost.result_writes);
}

TEST_F(AggCircuitTest, VectorizedAggregateMatchesScalar) {
  // The word-skipping kernel must agree with the row-streaming oracle on
  // value, count, and empty-selection sentinels, across ops and densities.
  Rng rng(42);
  for (const double ratio : {0.0, 0.02, 0.5, 1.0}) {
    populate(ratio, rng);
    for (const AggOp op : {AggOp::kSum, AggOp::kMin, AggOp::kMax}) {
      std::uint64_t scalar_count = 0, vector_count = 0;
      const std::uint64_t scalar = compute_aggregate(
          xb_, value_, select_, op, &scalar_count, /*vectorized=*/false);
      const std::uint64_t vectorized = compute_aggregate(
          xb_, value_, select_, op, &vector_count, /*vectorized=*/true);
      EXPECT_EQ(vectorized, scalar)
          << "ratio " << ratio << " op " << static_cast<int>(op);
      EXPECT_EQ(vector_count, scalar_count);
    }
  }
}

TEST(ChunkSpan, HonestForMisalignedFields) {
  PimConfig cfg;
  EXPECT_EQ(chunk_span(Field{0, 16}, cfg), 1u);
  EXPECT_EQ(chunk_span(Field{0, 17}, cfg), 2u);
  EXPECT_EQ(chunk_span(Field{15, 2}, cfg), 2u);  // straddles a boundary
  EXPECT_EQ(chunk_span(Field{16, 16}, cfg), 1u);
  EXPECT_EQ(chunk_span(Field{8, 32}, cfg), 3u);
}

TEST(AggCircuit, RejectsBadWidths) {
  PimConfig cfg;
  Crossbar xb(64, 32);
  EXPECT_THROW(run_agg_circuit(xb, Field{0, 0}, 1, AggOp::kSum, Field{8, 8}, 0,
                               cfg, nullptr),
               std::invalid_argument);
  EXPECT_THROW(compute_aggregate(xb, Field{0, 0}, 1, AggOp::kSum, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace bbpim::pim
