// Unit tests for the crossbar functional model: column logic, row access,
// and wear accounting.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pim/crossbar.hpp"

namespace bbpim::pim {
namespace {

TEST(Crossbar, ConstructionValidation) {
  EXPECT_THROW(Crossbar(0, 8), std::invalid_argument);
  EXPECT_THROW(Crossbar(100, 8), std::invalid_argument);  // not multiple of 64
  Crossbar xb(128, 32);
  EXPECT_EQ(xb.rows(), 128u);
  EXPECT_EQ(xb.cols(), 32u);
}

TEST(Crossbar, RowReadWriteRoundTrip) {
  Crossbar xb(128, 64);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t row = static_cast<std::uint32_t>(rng.next_below(128));
    const std::uint32_t width = 1 + static_cast<std::uint32_t>(rng.next_below(40));
    const std::uint32_t offset =
        static_cast<std::uint32_t>(rng.next_below(64 - width));
    const std::uint64_t value = rng.next_u64() & ((width >= 64) ? ~0ULL : ((1ULL << width) - 1));
    xb.write_row_bits(row, offset, width, value);
    EXPECT_EQ(xb.read_row_bits(row, offset, width), value);
  }
}

TEST(Crossbar, RowAccessBoundsChecked) {
  Crossbar xb(64, 16);
  EXPECT_THROW(xb.read_row_bits(64, 0, 4), std::out_of_range);
  EXPECT_THROW(xb.read_row_bits(0, 14, 4), std::out_of_range);
  EXPECT_THROW(xb.write_row_bits(0, 0, 0, 0), std::out_of_range);
}

TEST(Crossbar, MicroOpsComputeExactly) {
  Crossbar xb(64, 8);
  // Set column 0 = pattern A, column 1 = pattern B via row writes.
  for (std::uint32_t r = 0; r < 64; ++r) {
    xb.set_bit(r, 0, (r % 2) == 0);
    xb.set_bit(r, 1, (r % 3) == 0);
  }
  xb.execute(MicroOp::init1(2));
  xb.execute(MicroOp::nor_op(0, 1, 2));
  xb.execute(MicroOp::init1(3));
  xb.execute(MicroOp::not_op(0, 3));
  xb.execute(MicroOp::init0(4));
  for (std::uint32_t r = 0; r < 64; ++r) {
    const bool a = (r % 2) == 0;
    const bool b = (r % 3) == 0;
    EXPECT_EQ(xb.bit(r, 2), !(a || b)) << "row " << r;
    EXPECT_EQ(xb.bit(r, 3), !a) << "row " << r;
    EXPECT_FALSE(xb.bit(r, 4));
  }
}

TEST(Crossbar, ColumnSnapshotMatchesBits) {
  Crossbar xb(128, 4);
  for (std::uint32_t r = 0; r < 128; r += 5) xb.set_bit(r, 2, true);
  const BitVec col = xb.column(2);
  EXPECT_EQ(col.size(), 128u);
  for (std::uint32_t r = 0; r < 128; ++r) {
    EXPECT_EQ(col.get(r), (r % 5) == 0);
  }
}

TEST(Crossbar, WriteColumnRoundTrip) {
  Crossbar xb(128, 4);
  BitVec bits(128);
  for (std::uint32_t r = 0; r < 128; r += 3) bits.set(r, true);
  xb.write_column(1, bits);
  EXPECT_EQ(xb.column(1), bits);
  BitVec wrong(64);
  EXPECT_THROW(xb.write_column(1, wrong), std::invalid_argument);
}

TEST(Crossbar, WearAccounting) {
  Crossbar xb(64, 8);
  EXPECT_EQ(xb.max_row_writes(), 0u);
  // Every micro-op writes its output column once per row.
  xb.execute(MicroOp::init1(2));
  xb.execute(MicroOp::not_op(0, 2));
  EXPECT_EQ(xb.uniform_row_writes(), 2u);
  // Row writes add per-row extras.
  xb.write_row_bits(5, 0, 4, 0xF);
  EXPECT_EQ(xb.max_extra_row_writes(), 4u);
  EXPECT_EQ(xb.max_row_writes(), 6u);
  // Column writes and explicit uniform wear.
  xb.write_column(3, BitVec(64));
  xb.add_uniform_wear(10);
  EXPECT_EQ(xb.uniform_row_writes(), 13u);
  xb.reset_wear();
  EXPECT_EQ(xb.max_row_writes(), 0u);
}

}  // namespace
}  // namespace bbpim::pim
