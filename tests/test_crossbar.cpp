// Unit tests for the crossbar functional model: column logic, row access,
// and wear accounting.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pim/crossbar.hpp"
#include "pim/microcode.hpp"

namespace bbpim::pim {
namespace {

TEST(Crossbar, ConstructionValidation) {
  EXPECT_THROW(Crossbar(0, 8), std::invalid_argument);
  EXPECT_THROW(Crossbar(100, 8), std::invalid_argument);  // not multiple of 64
  Crossbar xb(128, 32);
  EXPECT_EQ(xb.rows(), 128u);
  EXPECT_EQ(xb.cols(), 32u);
}

TEST(Crossbar, RowReadWriteRoundTrip) {
  Crossbar xb(128, 64);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t row = static_cast<std::uint32_t>(rng.next_below(128));
    const std::uint32_t width = 1 + static_cast<std::uint32_t>(rng.next_below(40));
    const std::uint32_t offset =
        static_cast<std::uint32_t>(rng.next_below(64 - width));
    const std::uint64_t value = rng.next_u64() & ((width >= 64) ? ~0ULL : ((1ULL << width) - 1));
    xb.write_row_bits(row, offset, width, value);
    EXPECT_EQ(xb.read_row_bits(row, offset, width), value);
  }
}

TEST(Crossbar, RowAccessBoundsChecked) {
  Crossbar xb(64, 16);
  EXPECT_THROW(xb.read_row_bits(64, 0, 4), std::out_of_range);
  EXPECT_THROW(xb.read_row_bits(0, 14, 4), std::out_of_range);
  EXPECT_THROW(xb.write_row_bits(0, 0, 0, 0), std::out_of_range);
}

TEST(Crossbar, MicroOpsComputeExactly) {
  Crossbar xb(64, 8);
  // Set column 0 = pattern A, column 1 = pattern B via row writes.
  for (std::uint32_t r = 0; r < 64; ++r) {
    xb.set_bit(r, 0, (r % 2) == 0);
    xb.set_bit(r, 1, (r % 3) == 0);
  }
  xb.execute(MicroOp::init1(2));
  xb.execute(MicroOp::nor_op(0, 1, 2));
  xb.execute(MicroOp::init1(3));
  xb.execute(MicroOp::not_op(0, 3));
  xb.execute(MicroOp::init0(4));
  for (std::uint32_t r = 0; r < 64; ++r) {
    const bool a = (r % 2) == 0;
    const bool b = (r % 3) == 0;
    EXPECT_EQ(xb.bit(r, 2), !(a || b)) << "row " << r;
    EXPECT_EQ(xb.bit(r, 3), !a) << "row " << r;
    EXPECT_FALSE(xb.bit(r, 4));
  }
}

TEST(Crossbar, ColumnSnapshotMatchesBits) {
  Crossbar xb(128, 4);
  for (std::uint32_t r = 0; r < 128; r += 5) xb.set_bit(r, 2, true);
  const BitVec col = xb.column(2);
  EXPECT_EQ(col.size(), 128u);
  for (std::uint32_t r = 0; r < 128; ++r) {
    EXPECT_EQ(col.get(r), (r % 5) == 0);
  }
}

TEST(Crossbar, WriteColumnRoundTrip) {
  Crossbar xb(128, 4);
  BitVec bits(128);
  for (std::uint32_t r = 0; r < 128; r += 3) bits.set(r, true);
  xb.write_column(1, bits);
  EXPECT_EQ(xb.column(1), bits);
  BitVec wrong(64);
  EXPECT_THROW(xb.write_column(1, wrong), std::invalid_argument);
}

TEST(Crossbar, ColumnPopcountAndDataMatchSnapshot) {
  Crossbar xb(192, 6);
  Rng rng(9);
  for (std::uint32_t r = 0; r < 192; ++r) {
    xb.set_bit(r, 3, rng.next_double() < 0.3);
  }
  EXPECT_EQ(xb.column_popcount(3), xb.column(3).popcount());
  EXPECT_EQ(xb.words_per_column(), 3u);
  const std::uint64_t* words = xb.column_data(3);
  const BitVec snapshot = xb.column(3);
  for (std::uint32_t w = 0; w < xb.words_per_column(); ++w) {
    EXPECT_EQ(words[w], snapshot.words()[w]);
  }
  EXPECT_THROW(xb.column_popcount(6), std::out_of_range);
  EXPECT_THROW(xb.column_data(6), std::out_of_range);
}

/// Random program over `cols` columns mixing the INIT+gate idiom with inits
/// that ARE read later (constants) and double initializations.
MicroProgram random_program(Rng& rng, std::uint16_t cols, std::size_t ops) {
  MicroProgram prog;
  auto col = [&] { return static_cast<std::uint16_t>(rng.next_below(cols)); };
  for (std::size_t i = 0; i < ops; ++i) {
    switch (rng.next_below(5)) {
      case 0: prog.push_back(MicroOp::init0(col())); break;
      case 1: prog.push_back(MicroOp::init1(col())); break;
      case 2: prog.push_back(MicroOp::not_op(col(), col())); break;
      default: {
        // Mostly the canonical INIT1 + NOR pair.
        const std::uint16_t out = col();
        prog.push_back(MicroOp::init1(out));
        prog.push_back(MicroOp::nor_op(col(), col(), out));
        break;
      }
    }
  }
  return prog;
}

TEST(Crossbar, FusedExecuteMatchesPerOpInterpreter) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    constexpr std::uint16_t kCols = 24;
    Crossbar per_op(128, kCols);
    Crossbar fused(128, kCols);
    for (std::uint32_t r = 0; r < 128; ++r) {
      for (std::uint16_t c = 0; c < kCols; ++c) {
        const bool v = rng.next_double() < 0.5;
        per_op.set_bit(r, c, v);
        fused.set_bit(r, c, v);
      }
    }
    const MicroProgram prog = random_program(rng, kCols, 40);
    const std::vector<std::uint8_t> dead = dead_init_mask(prog);
    per_op.execute(prog);
    fused.execute_fused(prog, dead);
    for (std::uint16_t c = 0; c < kCols; ++c) {
      EXPECT_EQ(fused.column(c), per_op.column(c))
          << "trial " << trial << " col " << c;
    }
    EXPECT_EQ(fused.uniform_row_writes(), per_op.uniform_row_writes());
    EXPECT_EQ(fused.max_row_writes(), per_op.max_row_writes());
  }
}

TEST(DeadInitMask, OnlyOverwrittenBeforeReadIsDead) {
  MicroProgram prog;
  prog.push_back(MicroOp::init1(2));        // dead: NOR below drives col 2
  prog.push_back(MicroOp::nor_op(0, 1, 2)); // gate
  prog.push_back(MicroOp::init1(3));        // live: read as an input below
  prog.push_back(MicroOp::init1(4));        // dead: NOR below drives col 4
  prog.push_back(MicroOp::nor_op(3, 2, 4)); // reads col 3's initialization
  prog.push_back(MicroOp::init0(5));        // live: never overwritten (result)
  const std::vector<std::uint8_t> dead = dead_init_mask(prog);
  EXPECT_EQ(dead, (std::vector<std::uint8_t>{1, 0, 0, 1, 0, 0}));
}

TEST(DeadInitMask, ReadBeforeLaterWriteKeepsInit) {
  MicroProgram prog;
  prog.push_back(MicroOp::init1(2));        // live: NOT reads col 2 first...
  prog.push_back(MicroOp::not_op(2, 3));
  prog.push_back(MicroOp::init0(2));        // ...then col 2 is re-initialized
  const std::vector<std::uint8_t> dead = dead_init_mask(prog);
  EXPECT_EQ(dead, (std::vector<std::uint8_t>{0, 0, 0}));

  // Back-to-back inits: the first one is dead.
  MicroProgram twice;
  twice.push_back(MicroOp::init1(1));
  twice.push_back(MicroOp::init0(1));
  EXPECT_EQ(dead_init_mask(twice), (std::vector<std::uint8_t>{1, 0}));
}

TEST(Crossbar, WearAccounting) {
  Crossbar xb(64, 8);
  EXPECT_EQ(xb.max_row_writes(), 0u);
  // Every micro-op writes its output column once per row.
  xb.execute(MicroOp::init1(2));
  xb.execute(MicroOp::not_op(0, 2));
  EXPECT_EQ(xb.uniform_row_writes(), 2u);
  // Row writes add per-row extras.
  xb.write_row_bits(5, 0, 4, 0xF);
  EXPECT_EQ(xb.max_extra_row_writes(), 4u);
  EXPECT_EQ(xb.max_row_writes(), 6u);
  // Column writes and explicit uniform wear.
  xb.write_column(3, BitVec(64));
  xb.add_uniform_wear(10);
  EXPECT_EQ(xb.uniform_row_writes(), 13u);
  xb.reset_wear();
  EXPECT_EQ(xb.max_row_writes(), 0u);
}

}  // namespace
}  // namespace bbpim::pim
