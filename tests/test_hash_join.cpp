// Tests for the multi-table join path: normalized SSB flights 1-4 must be
// row-identical to the pre-joined execution (the acceptance bar of the
// normalized schema), on the reference backend for all 13 queries and on
// the one-xb PIM engine end to end. Plus the host hash join's duplicate-key
// cross product, empty build sides, the Database-scope plan cache, EXPLAIN
// of the join tree, and the backends that must refuse.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "db/db.hpp"
#include "ssb/dbgen.hpp"
#include "ssb/queries.hpp"

namespace bbpim {
namespace {

/// One SSB world at a tiny scale factor, both catalogs: the normalized star
/// schema (all five tables registered -> join path) and the paper's
/// pre-joined relation (only it registered -> seed path). Generated once
/// for the whole binary.
struct JoinWorld {
  ssb::SsbData data;
  rel::Table prejoined;
  db::Database normalized;
  db::Database prejoined_db;

  JoinWorld() {
    ssb::SsbConfig cfg;
    cfg.scale_factor = 0.01;
    data = ssb::generate(cfg);
    prejoined = ssb::prejoin_ssb(data);
    normalized.attach_table(data.lineorder);
    normalized.attach_table(data.date);
    normalized.attach_table(data.customer);
    normalized.attach_table(data.supplier);
    normalized.attach_table(data.part);
    prejoined_db.attach_table(prejoined);
  }
};

JoinWorld& world() {
  static JoinWorld w;
  return w;
}

TEST(HashJoin, AllQueriesMatchPrejoinedOnReference) {
  JoinWorld& w = world();
  db::Session join_session(w.normalized);
  db::Session pre_session(w.prejoined_db);
  for (const ssb::SsbQuery& q : ssb::queries()) {
    const db::ResultSet joined =
        join_session.execute(q.sql, db::BackendKind::kReference);
    const db::ResultSet pre =
        pre_session.execute(q.sql, db::BackendKind::kReference);
    EXPECT_EQ(joined.rows(), pre.rows()) << "q" << q.id;
    // One pinned version per FROM table, all at the unmutated version 0.
    EXPECT_GE(joined.table_versions().size(), 2u) << "q" << q.id;
    for (const auto& [name, version] : joined.table_versions()) {
      EXPECT_EQ(version, 0u) << "q" << q.id << " table " << name;
    }
    EXPECT_TRUE(pre.table_versions().empty()) << "q" << q.id;
  }
}

TEST(HashJoin, AllQueriesMatchReferenceOnOneXbPim) {
  JoinWorld& w = world();
  db::Session session(w.normalized);
  for (const ssb::SsbQuery& q : ssb::queries()) {
    const db::ResultSet pim = session.execute(q.sql, db::BackendKind::kOneXb);
    const db::ResultSet ref =
        session.execute(q.sql, db::BackendKind::kReference);
    EXPECT_EQ(pim.rows(), ref.rows()) << "q" << q.id;
    // The PIM arm models its per-table scans; cost must be present.
    EXPECT_GT(pim.stats().total_ns, 0.0) << "q" << q.id;
    EXPECT_GT(pim.stats().phases.filter, 0.0) << "q" << q.id;
  }
}

TEST(HashJoin, DuplicateBuildKeysYieldCrossProduct) {
  // A "dimension" with duplicate keys: each matching fact row must join
  // with every duplicate (odometer over the match lists).
  rel::Schema fact_schema{{{"fk", rel::DataType::kInt, 8, nullptr},
                           {"v", rel::DataType::kInt, 8, nullptr}}};
  rel::Table fact(fact_schema, "fact");
  fact.append_row(std::vector<std::uint64_t>{1, 10});
  fact.append_row(std::vector<std::uint64_t>{2, 20});

  rel::Schema dim_schema{{{"dk", rel::DataType::kInt, 8, nullptr},
                          {"w", rel::DataType::kInt, 8, nullptr}}};
  rel::Table dim(dim_schema, "dim");
  dim.append_row(std::vector<std::uint64_t>{1, 1});
  dim.append_row(std::vector<std::uint64_t>{1, 2});  // duplicate key 1
  dim.append_row(std::vector<std::uint64_t>{2, 3});

  db::Database database;
  database.register_table(std::move(fact));
  database.register_table(std::move(dim));
  db::Session session(database);

  // fk=1 matches twice, fk=2 once: SUM(v) = 10 + 10 + 20 = 40.
  const db::ResultSet rs = session.execute(
      "SELECT SUM(v) AS s FROM fact, dim WHERE fk = dk",
      db::BackendKind::kReference);
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.integer(0, 0), 40);

  // Grouping on the duplicate side sees both duplicate rows.
  const db::ResultSet grouped = session.execute(
      "SELECT w, SUM(v) AS s FROM fact, dim WHERE fk = dk GROUP BY w "
      "ORDER BY w",
      db::BackendKind::kReference);
  ASSERT_EQ(grouped.row_count(), 3u);
  EXPECT_EQ(grouped.integer(0, 0), 1);
  EXPECT_EQ(grouped.integer(0, 1), 10);
  EXPECT_EQ(grouped.integer(1, 0), 2);
  EXPECT_EQ(grouped.integer(1, 1), 10);
  EXPECT_EQ(grouped.integer(2, 0), 3);
  EXPECT_EQ(grouped.integer(2, 1), 20);
}

TEST(HashJoin, EmptyBuildSideYieldsEmptyJoin) {
  JoinWorld& w = world();
  db::Session session(w.normalized);
  // No date row has d_year = 1900: the build side is empty, every probe
  // misses, and the ungrouped aggregate returns the single zero row the
  // single-table engines produce for an empty selection.
  const db::ResultSet rs = session.execute(
      "SELECT SUM(lo_extendedprice) AS s FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey AND d_year = 1900",
      db::BackendKind::kReference);
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.integer(0, 0), 0);
}

TEST(HashJoin, QualifiedColumnsRunOnBothCatalogs) {
  JoinWorld& w = world();
  // Fully qualified text: binds through the join planner on the normalized
  // catalog and through the qualifier-dropping single-table binder on the
  // pre-joined one — same rows either way.
  const std::string sql =
      "SELECT d_year, SUM(lineorder.lo_extendedprice) AS rev "
      "FROM lineorder, date "
      "WHERE lineorder.lo_orderdate = date.d_datekey "
      "AND date.d_year = 1993 AND lineorder.lo_discount BETWEEN 1 AND 3 "
      "GROUP BY d_year ORDER BY d_year";
  db::Session join_session(w.normalized);
  db::Session pre_session(w.prejoined_db);
  const db::ResultSet joined =
      join_session.execute(sql, db::BackendKind::kReference);
  const db::ResultSet pre =
      pre_session.execute(sql, db::BackendKind::kReference);
  EXPECT_EQ(joined.rows(), pre.rows());
  ASSERT_GE(joined.row_count(), 1u);
}

TEST(HashJoin, DatabasePlanCacheSharesAcrossSessions) {
  JoinWorld& w = world();
  db::Database database;
  database.attach_table(w.data.lineorder);
  database.attach_table(w.data.date);
  const std::string sql = std::string(ssb::query("1.1").sql);

  db::Session s1(database);
  db::Session s2(database);
  const std::uint64_t hits_before = database.plan_cache_hits();
  s1.prepare(sql);
  EXPECT_EQ(database.plan_cache_size(), 1u);
  s2.prepare(sql);  // second session: Database-cache hit, no rebind
  EXPECT_EQ(database.plan_cache_size(), 1u);
  EXPECT_EQ(database.plan_cache_hits(), hits_before + 1);
  // Re-preparing in the same session hits the session cache, not the
  // database's.
  s2.prepare(sql);
  EXPECT_EQ(database.plan_cache_hits(), hits_before + 1);

  // Catalog mutation invalidates: the next prepare rebinds.
  database.attach_table(w.data.customer);
  s1.prepare(sql);
  EXPECT_EQ(database.plan_cache_size(), 1u);
  EXPECT_EQ(database.plan_cache_hits(), hits_before + 1);
}

TEST(HashJoin, ExplainRendersJoinTreeAndPerTableScans) {
  JoinWorld& w = world();
  db::Session session(w.normalized);
  const std::string plan = session.explain(std::string(ssb::query("3.1").sql),
                                           db::BackendKind::kOneXb);
  EXPECT_NE(plan.find("join plan: star over fact 'lineorder'"),
            std::string::npos);
  EXPECT_NE(plan.find("BUILD date"), std::string::npos);
  EXPECT_NE(plan.find("PROBE lineorder"), std::string::npos);
  EXPECT_NE(plan.find("-- scan customer --"), std::string::npos);
  EXPECT_NE(plan.find("ZONE MAP"), std::string::npos);
  EXPECT_NE(plan.find("GROUP BY:"), std::string::npos);
}

TEST(HashJoin, ColumnarBackendRefusesJoins) {
  JoinWorld& w = world();
  db::Session session(w.normalized);
  EXPECT_THROW(session.execute(std::string(ssb::query("1.1").sql),
                               db::BackendKind::kColumnar),
               std::invalid_argument);
}

TEST(HashJoin, PreparedStatementAccessors) {
  JoinWorld& w = world();
  db::Session session(w.normalized);
  db::PreparedStatement st = session.prepare(std::string(ssb::query("2.1").sql));
  EXPECT_TRUE(st.is_join());
  EXPECT_FALSE(st.is_update());
  EXPECT_EQ(st.target().name(), "lineorder");  // join fact
  EXPECT_EQ(st.join().table_names.size(), 4u);
  EXPECT_THROW(st.bound(), std::logic_error);

  db::Session pre_session(w.prejoined_db);
  db::PreparedStatement single =
      pre_session.prepare(std::string(ssb::query("2.1").sql));
  EXPECT_FALSE(single.is_join());
  EXPECT_THROW(single.join(), std::logic_error);
}

}  // namespace
}  // namespace bbpim
